file(REMOVE_RECURSE
  "CMakeFiles/analyze_scene.dir/analyze_scene.cpp.o"
  "CMakeFiles/analyze_scene.dir/analyze_scene.cpp.o.d"
  "analyze_scene"
  "analyze_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
