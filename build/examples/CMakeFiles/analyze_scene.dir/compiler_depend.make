# Empty compiler generated dependencies file for analyze_scene.
# This may be replaced when dependencies are built.
