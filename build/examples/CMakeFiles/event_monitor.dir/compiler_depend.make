# Empty compiler generated dependencies file for event_monitor.
# This may be replaced when dependencies are built.
