file(REMOVE_RECURSE
  "CMakeFiles/event_monitor.dir/event_monitor.cpp.o"
  "CMakeFiles/event_monitor.dir/event_monitor.cpp.o.d"
  "event_monitor"
  "event_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
