# Empty compiler generated dependencies file for smart_restaurant.
# This may be replaced when dependencies are built.
