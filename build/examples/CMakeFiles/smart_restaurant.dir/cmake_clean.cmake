file(REMOVE_RECURSE
  "CMakeFiles/smart_restaurant.dir/smart_restaurant.cpp.o"
  "CMakeFiles/smart_restaurant.dir/smart_restaurant.cpp.o.d"
  "smart_restaurant"
  "smart_restaurant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_restaurant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
