file(REMOVE_RECURSE
  "CMakeFiles/meeting_prototype.dir/meeting_prototype.cpp.o"
  "CMakeFiles/meeting_prototype.dir/meeting_prototype.cpp.o.d"
  "meeting_prototype"
  "meeting_prototype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meeting_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
