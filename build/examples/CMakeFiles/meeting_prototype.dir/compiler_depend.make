# Empty compiler generated dependencies file for meeting_prototype.
# This may be replaced when dependencies are built.
