# Empty compiler generated dependencies file for sociology_study.
# This may be replaced when dependencies are built.
