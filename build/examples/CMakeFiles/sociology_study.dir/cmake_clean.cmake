file(REMOVE_RECURSE
  "CMakeFiles/sociology_study.dir/sociology_study.cpp.o"
  "CMakeFiles/sociology_study.dir/sociology_study.cpp.o.d"
  "sociology_study"
  "sociology_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sociology_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
