file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_lookat_t10.dir/bench_fig7_lookat_t10.cc.o"
  "CMakeFiles/bench_fig7_lookat_t10.dir/bench_fig7_lookat_t10.cc.o.d"
  "bench_fig7_lookat_t10"
  "bench_fig7_lookat_t10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_lookat_t10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
