# Empty compiler generated dependencies file for bench_fig7_lookat_t10.
# This may be replaced when dependencies are built.
