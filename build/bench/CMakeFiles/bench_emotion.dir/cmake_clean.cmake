file(REMOVE_RECURSE
  "CMakeFiles/bench_emotion.dir/bench_emotion.cc.o"
  "CMakeFiles/bench_emotion.dir/bench_emotion.cc.o.d"
  "bench_emotion"
  "bench_emotion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_emotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
