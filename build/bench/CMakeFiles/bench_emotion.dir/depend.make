# Empty dependencies file for bench_emotion.
# This may be replaced when dependencies are built.
