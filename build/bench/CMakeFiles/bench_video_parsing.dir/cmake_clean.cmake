file(REMOVE_RECURSE
  "CMakeFiles/bench_video_parsing.dir/bench_video_parsing.cc.o"
  "CMakeFiles/bench_video_parsing.dir/bench_video_parsing.cc.o.d"
  "bench_video_parsing"
  "bench_video_parsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_video_parsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
