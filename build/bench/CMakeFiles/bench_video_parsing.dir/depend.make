# Empty dependencies file for bench_video_parsing.
# This may be replaced when dependencies are built.
