# Empty compiler generated dependencies file for bench_eye_contact.
# This may be replaced when dependencies are built.
