file(REMOVE_RECURSE
  "CMakeFiles/bench_eye_contact.dir/bench_eye_contact.cc.o"
  "CMakeFiles/bench_eye_contact.dir/bench_eye_contact.cc.o.d"
  "bench_eye_contact"
  "bench_eye_contact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eye_contact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
