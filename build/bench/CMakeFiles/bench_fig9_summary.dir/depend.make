# Empty dependencies file for bench_fig9_summary.
# This may be replaced when dependencies are built.
