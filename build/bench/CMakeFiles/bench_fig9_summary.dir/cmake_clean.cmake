file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_summary.dir/bench_fig9_summary.cc.o"
  "CMakeFiles/bench_fig9_summary.dir/bench_fig9_summary.cc.o.d"
  "bench_fig9_summary"
  "bench_fig9_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
