# Empty dependencies file for bench_fig8_lookat_t15.
# This may be replaced when dependencies are built.
