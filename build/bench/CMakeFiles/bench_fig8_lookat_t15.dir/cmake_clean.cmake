file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_lookat_t15.dir/bench_fig8_lookat_t15.cc.o"
  "CMakeFiles/bench_fig8_lookat_t15.dir/bench_fig8_lookat_t15.cc.o.d"
  "bench_fig8_lookat_t15"
  "bench_fig8_lookat_t15.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_lookat_t15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
