# Empty compiler generated dependencies file for bench_activity_baseline.
# This may be replaced when dependencies are built.
