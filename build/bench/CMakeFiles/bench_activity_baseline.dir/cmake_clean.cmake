file(REMOVE_RECURSE
  "CMakeFiles/bench_activity_baseline.dir/bench_activity_baseline.cc.o"
  "CMakeFiles/bench_activity_baseline.dir/bench_activity_baseline.cc.o.d"
  "bench_activity_baseline"
  "bench_activity_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_activity_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
