// Tests for the sharded event corpus: shard lifecycle (begin / resume /
// seal / register), manifest durability, scope filtering, shard
// pruning exactness, and the acceptance drill — a cross-event query
// over a 100-event corpus must be bit-identical to querying each
// event's repository serially, with or without a thread pool.

#include "metadata/corpus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "metadata/query_parser.h"

namespace dievent {
namespace {

std::string FreshCorpusDir(const std::string& name) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = testing::TempDir() + "/" + name;
  if (fs->Exists(dir)) {
    auto names = fs->ListDir(dir);
    EXPECT_TRUE(names.ok());
    for (const std::string& n : names.value()) {
      const std::string path = JoinPath(dir, n);
      auto nested = fs->ListDir(path);
      if (nested.ok()) {  // a shard directory: wipe contents, then rmdir
        for (const std::string& inner : nested.value()) {
          EXPECT_TRUE(fs->Remove(JoinPath(path, inner)).ok());
        }
        EXPECT_TRUE(fs->RemoveDir(path).ok());
      } else {
        EXPECT_TRUE(fs->Remove(path).ok());
      }
    }
  }
  return dir;
}

EventContext Context(int event) {
  EventContext ctx;
  ctx.event_id = StrFormat("event-%03d", event);
  ctx.location = event % 2 == 0 ? "sala roja" : "terrace";
  ctx.occasion = event % 3 == 0 ? "birthday" : "dinner";
  ctx.date = StrFormat("2026-08-%02d", event % 28 + 1);
  ctx.num_participants = 3 + event % 3;
  return ctx;
}

/// One event's records: `frames` frames starting at `first_frame`, in
/// the event's own time window (disjoint across events), look-at edges
/// varying per (event, frame).
RecordBatch EventBatch(int event, int frames, int first_frame = 0) {
  RecordBatch batch;
  const int n = 3 + event % 3;
  const double offset = event * 100.0;
  for (int i = 0; i < frames; ++i) {
    const int f = first_frame + i;
    LookAtMatrix m(n);
    m.Set(0, 1 + (event + f) % (n - 1), true);
    if ((event + f) % 2 == 0) m.Set(1, 0, true);
    batch.lookat.push_back(
        LookAtRecord::FromMatrix(f, offset + f * 0.5, m));
    OverallEmotionRecord oe;
    oe.frame = f;
    oe.timestamp_s = offset + f * 0.5;
    oe.overall_happiness = (event % 10) * 0.1 + f * 0.01;
    oe.mean_valence = 0.2;
    oe.observed = n;
    batch.overall.push_back(oe);
  }
  return batch;
}

void IngestAndSeal(EventCorpus* corpus, int event, int frames) {
  const EventContext ctx = Context(event);
  auto store = corpus->BeginShard(ctx.event_id);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE(store.value()->SetContext(ctx).ok());
  ASSERT_TRUE(store.value()->SetFps(2.0).ok());
  ASSERT_TRUE(store.value()->AppendBatch(EventBatch(event, frames)).ok());
  Status sealed = corpus->SealShard(ctx.event_id);
  ASSERT_TRUE(sealed.ok()) << sealed.ToString();
}

/// The serial oracle: load every in-scope shard directly and evaluate
/// the frame query against each repository, no corpus machinery.
std::vector<EventMatches> SerialOracle(const std::string& dir,
                                       const EventCorpus& corpus,
                                       const CorpusQuerySpec& spec) {
  std::vector<EventMatches> events;
  for (const ShardIndexEntry& entry : corpus.shards()) {
    if (!EventCorpus::ShardInScope(entry, spec.scope)) continue;
    auto repo = DurableEventStore::LoadState(FileSystem::Default(),
                                            JoinPath(dir, entry.dir));
    EXPECT_TRUE(repo.ok()) << repo.status().ToString();
    EventMatches em;
    em.event_id = entry.event_id;
    em.shard_dir = entry.dir;
    em.frames = Query(&repo.value(), spec.frame).Execute();
    events.push_back(std::move(em));
  }
  std::sort(events.begin(), events.end(),
            [](const EventMatches& a, const EventMatches& b) {
              return a.event_id != b.event_id ? a.event_id < b.event_id
                                              : a.shard_dir < b.shard_dir;
            });
  return events;
}

void ExpectSameMatches(const CorpusQueryResult& got,
                       const std::vector<EventMatches>& want) {
  ASSERT_EQ(got.events.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.events[i].event_id, want[i].event_id);
    EXPECT_EQ(got.events[i].shard_dir, want[i].shard_dir);
    EXPECT_EQ(got.events[i].frames, want[i].frames)
        << "event " << want[i].event_id;
  }
}

TEST(CorpusTest, SealMakesShardVisibleAndDurable) {
  const std::string dir = FreshCorpusDir("corpus_seal");
  {
    auto corpus = EventCorpus::Open(dir);
    ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
    EXPECT_TRUE(corpus.value()->shards().empty());
    IngestAndSeal(corpus.value().get(), 0, 10);
    auto shards = corpus.value()->shards();
    ASSERT_EQ(shards.size(), 1u);
    EXPECT_EQ(shards[0].event_id, "event-000");
    EXPECT_EQ(shards[0].records, 20u);  // 10 look-at + 10 overall
    ASSERT_TRUE(shards[0].time_bounds.has_value());
    EXPECT_DOUBLE_EQ(shards[0].time_bounds->first, 0.0);
    EXPECT_DOUBLE_EQ(shards[0].time_bounds->second, 4.5);
    EXPECT_EQ(shards[0].max_lookat_n, 3);
  }
  // A fresh corpus instance sees the same manifest from disk.
  auto corpus = EventCorpus::Open(dir);
  ASSERT_TRUE(corpus.ok());
  ASSERT_EQ(corpus.value()->shards().size(), 1u);
  auto result = corpus.value()->Query(CorpusQuerySpec{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().events.size(), 1u);
  EXPECT_EQ(result.value().events[0].frames.size(), 10u);
}

TEST(CorpusTest, BeginShardRejectsDuplicatesAndSealedEvents) {
  const std::string dir = FreshCorpusDir("corpus_dup");
  auto corpus = EventCorpus::Open(dir);
  ASSERT_TRUE(corpus.ok());
  auto store = corpus.value()->BeginShard("event-000");
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(corpus.value()->BeginShard("event-000").status().code() ==
              StatusCode::kAlreadyExists);
  ASSERT_TRUE(store.value()->SetContext(Context(0)).ok());
  ASSERT_TRUE(corpus.value()->SealShard("event-000").ok());
  EXPECT_TRUE(corpus.value()->BeginShard("event-000").status().code() ==
              StatusCode::kAlreadyExists);
  // Sealed shards are read-only.
  EXPECT_TRUE(corpus.value()->ResumeShard("event-000").status().code() ==
              StatusCode::kFailedPrecondition);
  EXPECT_TRUE(corpus.value()->SealShard("event-000").code() ==
              StatusCode::kNotFound);
}

TEST(CorpusTest, ResumeRecoversAnUnsealedShardAcrossReopen) {
  const std::string dir = FreshCorpusDir("corpus_resume");
  {
    auto corpus = EventCorpus::Open(dir);
    ASSERT_TRUE(corpus.ok());
    auto store = corpus.value()->BeginShard("event-007");
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->SetContext(Context(7)).ok());
    ASSERT_TRUE(store.value()->AppendBatch(EventBatch(7, 5)).ok());
    // Corpus destroyed without sealing: the shard stays invisible but
    // its records are journaled.
  }
  auto corpus = EventCorpus::Open(dir);
  ASSERT_TRUE(corpus.ok());
  EXPECT_TRUE(corpus.value()->shards().empty());
  EXPECT_EQ(corpus.value()->ResumeShard("event-404").status().code(),
            StatusCode::kNotFound);
  auto resumed = corpus.value()->ResumeShard("event-007");
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value()->repository().lookat_records().size(), 5u);
  ASSERT_TRUE(resumed.value()->AppendBatch(EventBatch(7, 5, 5)).ok());
  ASSERT_TRUE(corpus.value()->SealShard("event-007").ok());
  auto shards = corpus.value()->shards();
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].event_id, "event-007");
}

TEST(CorpusTest, RegisterShardPublishesExternalStoreAndRefreshes) {
  const std::string dir = FreshCorpusDir("corpus_register");
  auto corpus = EventCorpus::Open(dir);
  ASSERT_TRUE(corpus.ok());

  // An externally written store inside the corpus root (what the fleet
  // scheduler produces per tenant).
  const std::string store_dir = JoinPath(dir, "tenant-3");
  {
    auto store = DurableEventStore::Open(store_dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->SetContext(Context(3)).ok());
    ASSERT_TRUE(store.value()->AppendBatch(EventBatch(3, 8)).ok());
    ASSERT_TRUE(store.value()->Close().ok());
  }
  ASSERT_TRUE(corpus.value()->RegisterShard(store_dir).ok());
  auto shards = corpus.value()->shards();
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].dir, "tenant-3");  // root-relative: relocatable
  EXPECT_EQ(shards[0].event_id, "event-003");
  EXPECT_EQ(shards[0].max_lookat_n, 3 + 3 % 3);

  // Re-registering after more writes refreshes the entry in place.
  {
    auto store = DurableEventStore::Open(store_dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->AppendBatch(EventBatch(3, 8, 8)).ok());
    ASSERT_TRUE(store.value()->Close().ok());
  }
  ASSERT_TRUE(corpus.value()->RegisterShard(store_dir).ok());
  shards = corpus.value()->shards();
  ASSERT_EQ(shards.size(), 1u);
  auto result = corpus.value()->Query(CorpusQuerySpec{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().events.size(), 1u);
  EXPECT_EQ(result.value().events[0].frames.size(), 16u);
}

TEST(CorpusTest, ScopePredicatesFilterAgainstTheManifestAlone) {
  const std::string dir = FreshCorpusDir("corpus_scope");
  auto corpus = EventCorpus::Open(dir);
  ASSERT_TRUE(corpus.ok());
  for (int e = 0; e < 6; ++e) IngestAndSeal(corpus.value().get(), e, 4);

  auto query = [&](const std::string& text) {
    auto spec = ParseCorpusQuery(text);
    EXPECT_TRUE(spec.ok()) << text;
    auto result = corpus.value()->Query(spec.value());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.value();
  };

  EXPECT_EQ(query("events").events.size(), 6u);
  EXPECT_EQ(query("events where venue = \"sala roja\"").events.size(), 3u);
  EXPECT_EQ(query("events where occasion = \"birthday\"").events.size(),
            2u);
  EXPECT_EQ(query("events where event = \"event-004\"").events.size(), 1u);
  EXPECT_EQ(query("events where date = \"2026-08-02\"").events.size(), 1u);
  // num_participants cycles 3,4,5: exactly 4 of 6 events have >= 4.
  EXPECT_EQ(query("events where participants >= 4").events.size(), 4u);
  EXPECT_EQ(
      query("events where venue = \"terrace\" & participants >= 5")
          .events.size(),
      1u);
  EXPECT_EQ(query("events where venue = \"atlantis\"").events.size(), 0u);
}

TEST(CorpusTest, PruningRulesAreExact) {
  ShardIndexEntry entry;
  entry.time_bounds = {{100.0, 149.5}};
  entry.max_lookat_n = 4;

  // Disjoint time ranges prune; overlapping ones do not (inclusive
  // bounds, half-open query interval).
  QuerySpec spec;
  spec.time_range = {{0.0, 100.0}};  // [0, 100) vs [100, 149.5]
  EXPECT_TRUE(EventCorpus::CanPruneShard(entry, spec));
  spec.time_range = {{149.6, 500.0}};
  EXPECT_TRUE(EventCorpus::CanPruneShard(entry, spec));
  spec.time_range = {{149.5, 500.0}};  // touches the last record
  EXPECT_FALSE(EventCorpus::CanPruneShard(entry, spec));
  spec.time_range = {{0.0, 100.1}};
  EXPECT_FALSE(EventCorpus::CanPruneShard(entry, spec));

  // Participant references beyond the largest look-at matrix prune.
  spec = QuerySpec{};
  spec.looking.push_back({0, 3});  // P4: the matrix has ids 0..3
  EXPECT_FALSE(EventCorpus::CanPruneShard(entry, spec));
  spec.looking.back() = {0, 4};  // P5: no record can satisfy it
  EXPECT_TRUE(EventCorpus::CanPruneShard(entry, spec));
  spec = QuerySpec{};
  spec.anyone_at.push_back(4);
  EXPECT_TRUE(EventCorpus::CanPruneShard(entry, spec));
  // `feeling` must NOT prune: emotion records carry their own ids,
  // unbounded by the look-at matrix.
  spec = QuerySpec{};
  spec.feeling.push_back({9, Emotion::kHappy});
  EXPECT_FALSE(EventCorpus::CanPruneShard(entry, spec));

  // A shard with no look-at records can never match a frame query.
  ShardIndexEntry empty;
  EXPECT_TRUE(EventCorpus::CanPruneShard(empty, QuerySpec{}));
}

TEST(CorpusTest, HundredEventQueryIsBitIdenticalToSerialOracle) {
  const std::string dir = FreshCorpusDir("corpus_hundred");
  ThreadPool pool(4);
  CorpusOptions options;
  options.pool = &pool;
  auto corpus = EventCorpus::Open(dir, options);
  ASSERT_TRUE(corpus.ok());
  for (int e = 0; e < 100; ++e) IngestAndSeal(corpus.value().get(), e, 6);
  ASSERT_EQ(corpus.value()->shards().size(), 100u);

  const char* queries[] = {
      "events",
      "events : look(P1, P2)",
      "events : time[1000, 2000)",
      "events : time[1000, 2000) & look(P2, P1)",
      "events where venue = \"terrace\" : look(P1, P3)",
      "events where participants >= 5 : oh >= 0.5",
      "events : watched(P1) & valence >= 0",
  };
  for (const char* text : queries) {
    SCOPED_TRACE(text);
    auto spec = ParseCorpusQuery(text);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    const auto oracle = SerialOracle(dir, *corpus.value(), spec.value());

    // Parallel fan-out over the pool.
    auto parallel = corpus.value()->Query(spec.value());
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectSameMatches(parallel.value(), oracle);
    EXPECT_EQ(parallel.value().shards_pruned +
                  parallel.value().shards_opened,
              parallel.value().shards_in_scope);

    // Serial evaluation (no pool) through a fresh corpus: same bytes.
    auto serial_corpus = EventCorpus::Open(dir);
    ASSERT_TRUE(serial_corpus.ok());
    auto serial = serial_corpus.value()->Query(spec.value());
    ASSERT_TRUE(serial.ok());
    ExpectSameMatches(serial.value(), oracle);
    EXPECT_EQ(serial.value().shards_pruned,
              parallel.value().shards_pruned);
  }

  // The disjoint-window query actually exercised pruning.
  auto spec = ParseCorpusQuery("events : time[1000, 2000)");
  ASSERT_TRUE(spec.ok());
  auto result = corpus.value()->Query(spec.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().shards_in_scope, 100u);
  EXPECT_EQ(result.value().shards_opened, 10u);
  EXPECT_EQ(result.value().shards_pruned, 90u);
  EXPECT_EQ(result.value().total_frames, 60u);
}

TEST(CorpusTest, SceneRollUpDisablesPruningAtZeroCoverage) {
  const std::string dir = FreshCorpusDir("corpus_scenes");
  auto corpus = EventCorpus::Open(dir);
  ASSERT_TRUE(corpus.ok());
  for (int e = 0; e < 3; ++e) {
    const EventContext ctx = Context(e);
    auto store = corpus.value()->BeginShard(ctx.event_id);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->SetContext(ctx).ok());
    ASSERT_TRUE(store.value()->AppendBatch(EventBatch(e, 6)).ok());
    VideoStructure vs;
    vs.num_frames = 6;
    vs.fps = 2.0;
    SceneSegment scene;
    scene.shots.push_back(Shot{0, 6, {0}});
    vs.scenes.push_back(scene);
    ASSERT_TRUE(store.value()->SetVideoStructure(vs).ok());
    ASSERT_TRUE(corpus.value()->SealShard(ctx.event_id).ok());
  }

  // A time window over event 1 only: events 0 and 2 are prunable.
  auto spec = ParseCorpusQuery("events : time[100, 200)");
  ASSERT_TRUE(spec.ok());
  CorpusQueryOptions with_scenes;
  with_scenes.scenes = true;
  with_scenes.min_coverage = 0.5;
  auto pruned = corpus.value()->Query(spec.value(), with_scenes);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned.value().shards_pruned, 2u);

  // min_coverage == 0 matches every scene even with zero matching
  // frames, so pruning must be off and every event must report its
  // scene.
  with_scenes.min_coverage = 0.0;
  auto all = corpus.value()->Query(spec.value(), with_scenes);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().shards_pruned, 0u);
  EXPECT_EQ(all.value().shards_opened, 3u);
  for (const EventMatches& em : all.value().events) {
    EXPECT_EQ(em.scenes.size(), 1u) << em.event_id;
  }
}

TEST(CorpusTest, ShardDirNamesAreSanitized) {
  EXPECT_EQ(ShardDirName("event-001"), "shard-event-001");
  EXPECT_EQ(ShardDirName("a b/c"), "shard-a_b_c");
  EXPECT_EQ(ShardDirName(""), "shard-event");
  EXPECT_EQ(ShardDirName("x.y_z-9"), "shard-x.y_z-9");
}

TEST(CorpusTest, DamagedManifestIsCorruptionNotAPartialLoad) {
  const std::string dir = FreshCorpusDir("corpus_damage");
  {
    auto corpus = EventCorpus::Open(dir);
    ASSERT_TRUE(corpus.ok());
    IngestAndSeal(corpus.value().get(), 0, 4);
  }
  FileSystem* fs = FileSystem::Default();
  const std::string path = JoinPath(dir, kManifestFileName);
  auto data = fs->ReadFile(path);
  ASSERT_TRUE(data.ok());
  std::string damaged = data.value();
  damaged[damaged.size() / 2] ^= 0x40;
  ASSERT_TRUE(AtomicWriteFile(fs, path, damaged).ok());
  auto corpus = EventCorpus::Open(dir);
  ASSERT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace dievent
