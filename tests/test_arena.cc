// Tests for the per-frame bump arena: alignment guarantees, reset/reuse
// without heap growth, the ArenaVector adapter, and (under ASan) that
// Reset() poisons reclaimed regions so stale pointers fault loudly.

#include "common/arena.h"

#include <cstdint>
#include <cstring>

#include "gtest/gtest.h"

namespace dievent {
namespace {

bool IsAligned(const void* p, size_t align) {
  return reinterpret_cast<uintptr_t>(p) % align == 0;
}

TEST(Arena, RespectsRequestedAlignment) {
  Arena arena(1024);
  // Interleave odd sizes with strict alignments so the bump pointer lands
  // on unaligned offsets between requests.
  for (int i = 0; i < 50; ++i) {
    char* c = static_cast<char*>(arena.Allocate(1, 1));
    *c = 'x';
    void* p64 = arena.Allocate(24, 64);
    EXPECT_TRUE(IsAligned(p64, 64));
    double* d = arena.AllocateArray<double>(3);
    EXPECT_TRUE(IsAligned(d, alignof(double)));
    void* p16 = arena.Allocate(7, 16);
    EXPECT_TRUE(IsAligned(p16, 16));
  }
}

TEST(Arena, AllocationsAreDisjointAndWritable) {
  Arena arena(256);  // small blocks force the chain to grow
  std::vector<uint8_t*> ptrs;
  for (int i = 0; i < 32; ++i) {
    uint8_t* p = arena.AllocateArray<uint8_t>(100);
    std::memset(p, i, 100);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 32; ++i) {
    for (int j = 0; j < 100; ++j) {
      ASSERT_EQ(i, ptrs[i][j]) << "allocation " << i << " byte " << j;
    }
  }
}

TEST(Arena, ZeroByteRequestsReturnValidPointers) {
  Arena arena;
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  EXPECT_NE(nullptr, a);
  EXPECT_NE(nullptr, b);
  EXPECT_NE(a, b);
}

TEST(Arena, OversizedRequestGetsDedicatedBlock) {
  Arena arena(1024);
  uint8_t* big = arena.AllocateArray<uint8_t>(10000);
  std::memset(big, 0xAB, 10000);
  EXPECT_EQ(0xAB, big[9999]);
  EXPECT_GE(arena.bytes_reserved(), size_t{10000});
}

TEST(Arena, ResetReusesBlocksWithoutGrowth) {
  Arena arena(64 * 1024);
  // Warm up: one frame's worth of allocations.
  auto one_frame = [&arena]() {
    arena.Reset();
    arena.AllocateArray<uint8_t>(640 * 48);
    arena.AllocateArray<int32_t>(640 * 12);
    arena.AllocateArray<float>(2124);
  };
  one_frame();
  const size_t reserved = arena.bytes_reserved();
  const size_t blocks = arena.block_count();
  ASSERT_GT(reserved, size_t{0});
  // Steady state: identical frames must not grow the chain.
  for (int frame = 0; frame < 100; ++frame) one_frame();
  EXPECT_EQ(reserved, arena.bytes_reserved());
  EXPECT_EQ(blocks, arena.block_count());
}

TEST(Arena, ResetReturnsSameAddressesInSteadyState) {
  Arena arena;
  arena.Reset();
  void* first = arena.Allocate(128, 16);
  arena.Reset();
  void* again = arena.Allocate(128, 16);
  EXPECT_EQ(first, again);
}

TEST(Arena, BytesAllocatedTracksFrameAndResets) {
  Arena arena;
  arena.Allocate(100);
  arena.Allocate(28);
  EXPECT_EQ(size_t{128}, arena.bytes_allocated());
  arena.Reset();
  EXPECT_EQ(size_t{0}, arena.bytes_allocated());
}

TEST(ArenaVector, GrowsOnArenaMemory) {
  Arena arena;
  ArenaVector<int32_t> v{ArenaAllocator<int32_t>(&arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  ASSERT_EQ(size_t{1000}, v.size());
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(i, v[i]);
  // All growth came from the arena, including the abandoned buffers.
  EXPECT_GE(arena.bytes_allocated(), 1000 * sizeof(int32_t));
}

TEST(ArenaVector, AllocatorsCompareByArena) {
  Arena a, b;
  EXPECT_EQ(ArenaAllocator<int>(&a), ArenaAllocator<int>(&a));
  EXPECT_NE(ArenaAllocator<int>(&a), ArenaAllocator<int>(&b));
}

#if defined(DIEVENT_ARENA_ASAN)
// Under ASan the arena poisons reclaimed regions: reading a stale pointer
// after Reset() must die with a use-after-poison report rather than
// silently aliasing the next frame's data.
TEST(ArenaAsanDeathTest, ReadAfterResetFaults) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Arena arena;
        volatile uint8_t* stale = arena.AllocateArray<uint8_t>(64);
        stale[0] = 1;
        arena.Reset();
        // use-after-poison
        uint8_t v = stale[0];
        (void)v;
      },
      "use-after-poison");
}

TEST(ArenaAsanDeathTest, NeverAllocatedRegionIsPoisoned) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Arena arena;
        volatile uint8_t* p = arena.AllocateArray<uint8_t>(8);
        // Past the handed-out 8 bytes but inside the backing block.
        uint8_t v = p[64];
        (void)v;
      },
      "use-after-poison");
}
#endif  // DIEVENT_ARENA_ASAN

}  // namespace
}  // namespace dievent
