// End-to-end integration: the full DiEvent pipeline (render -> vision ->
// multilayer analysis -> metadata repository -> queries) on the paper's
// prototype scenario, plus persistence round trips.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "sim/scenario.h"

namespace dievent {
namespace {

constexpr int kP1 = 0, kP2 = 1, kP3 = 2, kP4 = 3;

/// One shared full run (vision mode, every 5th frame) reused across tests;
/// building it once keeps the suite fast.
struct FullRun {
  DiningScene scene = MakeMeetingScenario();
  MetadataRepository repo;
  DiEventReport report;

  FullRun() {
    PipelineOptions opt;
    opt.mode = PipelineMode::kFullVision;
    opt.frame_stride = 5;
    opt.eye_contact.angular_tolerance_deg = 12.0;
    opt.analyze_emotions = true;
    opt.emotion.samples_per_class = 100;
    opt.emotion.train.epochs = 30;
    opt.parse_video = true;
    DiEventPipeline pipeline(&scene, opt);
    auto result = pipeline.Run(&repo);
    EXPECT_TRUE(result.ok()) << result.status();
    if (result.ok()) report = result.TakeValue();
  }
};

FullRun& SharedRun() {
  static FullRun* run = new FullRun();
  return *run;
}

TEST(Integration, VisionPipelineRecoversDominance) {
  const DiEventReport& report = SharedRun().report;
  EXPECT_EQ(report.frames_processed, 122);
  // The paper's headline finding survives the full vision stack:
  // P1 (yellow) dominates the meeting (maximum column sum), and the
  // single largest directed count is P2 -> P1 (as in the ground truth,
  // where it is 430 of 610 frames).
  EXPECT_EQ(report.dominant_participant, kP1);
  long long best = -1;
  int best_x = -1, best_y = -1;
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 4; ++y) {
      if (report.summary.At(x, y) > best) {
        best = report.summary.At(x, y);
        best_x = x;
        best_y = y;
      }
    }
  }
  EXPECT_EQ(best_x, kP2);
  EXPECT_EQ(best_y, kP1);
}

TEST(Integration, VisionAccuracyIsReported) {
  const PipelineAccuracy& acc = SharedRun().report.accuracy;
  EXPECT_GT(acc.detection_coverage, 0.9);
  EXPECT_GT(acc.lookat_cell_accuracy, 0.85);
  EXPECT_GT(acc.edge_precision, 0.7);
  EXPECT_GT(acc.edge_recall, 0.7);
  EXPECT_LT(acc.mean_position_error_m, 0.15);
  EXPECT_GT(acc.emotion_accuracy, 0.4);  // 7-way, small far faces
}

TEST(Integration, MeetingParsesAsSingleShot) {
  const DiEventReport& report = SharedRun().report;
  // One continuous recording: one scene, one shot.
  EXPECT_EQ(report.structure.NumShots(), 1);
  EXPECT_EQ(report.structure.scenes.size(), 1u);
}

TEST(Integration, RepositoryIsQueryable) {
  MetadataRepository& repo = SharedRun().repo;
  EXPECT_EQ(repo.lookat_records().size(), 122u);
  EXPECT_EQ(repo.overall_records().size(), 122u);
  EXPECT_GT(repo.emotion_records().size(), 200u);

  // Around t=10s (Fig. 7) the repository must report P1<->P3 contact.
  auto ec_frames =
      Query(&repo).EyeContact(kP1, kP3).TimeRange(8.0, 12.0).Execute();
  EXPECT_GT(ec_frames.size(), 5u);

  // Around t=15s (Fig. 8) everyone watches P1.
  auto attention =
      Query(&repo).AnyoneLookingAt(kP1).TimeRange(14.0, 16.0).Execute();
  EXPECT_GT(attention.size(), 3u);
}

TEST(Integration, EyeContactEpisodesSurfaceP1P3) {
  const DiEventReport& report = SharedRun().report;
  bool found = false;
  for (const auto& ep : report.eye_contact_episodes) {
    if (ep.a == kP1 && ep.b == kP3 && ep.Length() > 50) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Integration, RepositoryPersistsAndReloads) {
  MetadataRepository& repo = SharedRun().repo;
  std::string path = testing::TempDir() + "/integration.dmr";
  ASSERT_TRUE(repo.Save(path).ok());
  auto loaded = MetadataRepository::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().lookat_records().size(),
            repo.lookat_records().size());
  // Queries work identically on the reloaded repository.
  auto a = Query(&repo).EyeContact(kP1, kP3).Execute();
  auto b = Query(&loaded.value()).EyeContact(kP1, kP3).Execute();
  EXPECT_EQ(a.size(), b.size());
}

TEST(Integration, GroundTruthModeIsExactOnTheSameScenario) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt;
  opt.mode = PipelineMode::kGroundTruth;
  opt.parse_video = false;
  DiEventPipeline pipeline(&scene, opt);
  MetadataRepository repo;
  auto report = pipeline.Run(&repo);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().summary.At(kP1, kP3), 357);
  // The vision run's P1->P3 rate should be within 20% of exact
  // (1/5th sampling and estimator noise both included).
  double exact_rate = 357.0 / 610.0;
  double vision_rate =
      static_cast<double>(SharedRun().report.summary.At(kP1, kP3)) /
      SharedRun().report.frames_processed;
  EXPECT_NEAR(vision_rate, exact_rate, 0.2 * exact_rate);
}

TEST(Integration, EmotionTimelineReflectsScript) {
  // P1 scripted happy 5-15 s, P3 happy 10-20 s: overall happiness around
  // t=12 s must exceed the happiness around t=30 s (all neutral).
  const DiEventReport& report = SharedRun().report;
  double mid = 0, late = 0;
  int mid_n = 0, late_n = 0;
  for (const auto& oe : report.emotion_timeline) {
    if (oe.timestamp_s > 11 && oe.timestamp_s < 14) {
      mid += oe.overall_happiness;
      ++mid_n;
    }
    if (oe.timestamp_s > 28 && oe.timestamp_s < 38) {
      late += oe.overall_happiness;
      ++late_n;
    }
  }
  ASSERT_GT(mid_n, 0);
  ASSERT_GT(late_n, 0);
  EXPECT_GT(mid / mid_n, late / late_n + 0.15);
}

}  // namespace
}  // namespace dievent
