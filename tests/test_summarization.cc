// Tests for video summarization (framework component 6).

#include "metadata/summarization.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

LookAtRecord Rec(int frame, double t, int n,
                 std::vector<std::pair<int, int>> edges) {
  LookAtMatrix m(n);
  for (auto [a, b] : edges) m.Set(a, b, true);
  return LookAtRecord::FromMatrix(frame, t, m);
}

/// 100 frames: quiet until 40, P1<->P2 eye contact during [40, 60),
/// group attention on P3 during [70, 90).
MetadataRepository EventfulRepo() {
  MetadataRepository repo;
  repo.set_fps(10.0);
  for (int f = 0; f < 100; ++f) {
    std::vector<std::pair<int, int>> edges;
    if (f >= 40 && f < 60) {
      edges.push_back({0, 1});
      edges.push_back({1, 0});
    }
    if (f >= 70 && f < 90) {
      edges.push_back({0, 2});
      edges.push_back({1, 2});
      edges.push_back({3, 2});
    }
    EXPECT_TRUE(repo.AddLookAt(Rec(f, f / 10.0, 4, edges)).ok());
    OverallEmotionRecord oe;
    oe.frame = f;
    oe.timestamp_s = f / 10.0;
    oe.overall_happiness = f >= 40 && f < 60 ? 0.8 : 0.1;
    oe.observed = 4;
    EXPECT_TRUE(repo.AddOverallEmotion(oe).ok());
  }
  return repo;
}

VideoStructure StructureWithKeyFrames(std::vector<int> key_frames,
                                      int num_frames) {
  VideoStructure vs;
  vs.num_frames = num_frames;
  vs.fps = 10.0;
  SceneSegment scene;
  Shot shot{0, num_frames, std::move(key_frames)};
  scene.shots.push_back(shot);
  vs.scenes.push_back(scene);
  return vs;
}

TEST(Summarizer, PrefersEventfulKeyFrames) {
  MetadataRepository repo = EventfulRepo();
  VideoStructure vs = StructureWithKeyFrames({5, 25, 45, 75}, 100);
  SummaryOptions opt;
  opt.max_entries = 2;
  VideoSummarizer summarizer(opt);
  auto summary = summarizer.Summarize(vs, {}, repo);
  ASSERT_TRUE(summary.ok()) << summary.status();
  ASSERT_EQ(summary.value().size(), 2u);
  // The two eventful key frames (EC onset at ~40, attention at ~75) win
  // over the quiet ones.
  EXPECT_EQ(summary.value()[0].frame, 45);
  EXPECT_EQ(summary.value()[1].frame, 75);
  EXPECT_FALSE(summary.value()[0].reason.empty());
}

TEST(Summarizer, ReasonsNameTheEvents) {
  MetadataRepository repo = EventfulRepo();
  EventContext ctx;
  ctx.participant_names = {"P1", "P2", "P3", "P4"};
  repo.SetContext(ctx);
  VideoStructure vs = StructureWithKeyFrames({45, 75}, 100);
  VideoSummarizer summarizer;
  auto summary = summarizer.Summarize(vs, {}, repo);
  ASSERT_TRUE(summary.ok());
  ASSERT_EQ(summary.value().size(), 2u);
  EXPECT_NE(summary.value()[0].reason.find("eye contact"),
            std::string::npos);
  EXPECT_NE(summary.value()[1].reason.find("attention"),
            std::string::npos);
  EXPECT_NE(summary.value()[1].reason.find("P3"), std::string::npos);
}

TEST(Summarizer, EntriesSortedByFrameWithTimestamps) {
  MetadataRepository repo = EventfulRepo();
  VideoStructure vs = StructureWithKeyFrames({75, 45, 5}, 100);
  SummaryOptions opt;
  opt.max_entries = 3;
  opt.min_score = 0.0;
  auto summary = VideoSummarizer(opt).Summarize(vs, {}, repo);
  ASSERT_TRUE(summary.ok());
  for (size_t i = 1; i < summary.value().size(); ++i) {
    EXPECT_LT(summary.value()[i - 1].frame, summary.value()[i].frame);
  }
  for (const auto& e : summary.value()) {
    EXPECT_NEAR(e.timestamp_s, e.frame / 10.0, 1e-9);
  }
}

TEST(Summarizer, VisualNoveltyBreaksTiesWhenSignaturesGiven) {
  // Two semantically-equal quiet key frames; one visually distinct. With
  // signatures, the summary picks visually diverse frames.
  MetadataRepository repo;
  repo.set_fps(10.0);
  for (int f = 0; f < 30; ++f) {
    EXPECT_TRUE(repo.AddLookAt(Rec(f, f / 10.0, 2, {})).ok());
  }
  std::vector<Histogram> sigs(30);
  for (int f = 0; f < 30; ++f) {
    sigs[f].bins = {1.0, 0.0};
  }
  sigs[20].bins = {0.0, 1.0};  // frame 20 looks different
  VideoStructure vs = StructureWithKeyFrames({0, 10, 20}, 30);
  SummaryOptions opt;
  opt.max_entries = 2;
  opt.min_score = 0.0;
  auto summary = VideoSummarizer(opt).Summarize(vs, sigs, repo);
  ASSERT_TRUE(summary.ok());
  ASSERT_EQ(summary.value().size(), 2u);
  bool has_20 = summary.value()[0].frame == 20 ||
                summary.value()[1].frame == 20;
  EXPECT_TRUE(has_20);
}

TEST(Summarizer, MinScoreCutsQuietFrames) {
  MetadataRepository repo;
  repo.set_fps(10.0);
  for (int f = 0; f < 20; ++f) {
    EXPECT_TRUE(repo.AddLookAt(Rec(f, f / 10.0, 2, {})).ok());
  }
  VideoStructure vs = StructureWithKeyFrames({0, 10}, 20);
  SummaryOptions opt;
  opt.max_entries = 5;
  opt.min_score = 0.5;  // nothing semantic, no signatures -> below cut
  auto summary = VideoSummarizer(opt).Summarize(vs, {}, repo);
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary.value().empty());
}

TEST(Summarizer, ValidatesOptionsAndHandlesEmpty) {
  MetadataRepository repo;
  SummaryOptions bad;
  bad.max_entries = 0;
  EXPECT_FALSE(
      VideoSummarizer(bad).Summarize({}, {}, repo).ok());
  auto empty = VideoSummarizer().Summarize({}, {}, repo);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

}  // namespace
}  // namespace dievent
