// Crash drills for the durable event store and the checkpointed
// pipeline: the writer is killed at every journal frame boundary (and
// torn mid-frame between boundaries) across many seeds, with and
// without a simulated power cut, and recovery must land on EXACTLY the
// acknowledged state — zero acked-record loss, zero duplicate replay —
// and a resumed pipeline run must be bit-identical to an uninterrupted
// one.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/pipeline.h"
#include "io/faulty_file.h"
#include "metadata/durable_store.h"
#include "sim/scenario.h"

namespace dievent {
namespace {

std::string FreshDir(const std::string& name) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = testing::TempDir() + "/" + name;
  if (fs->Exists(dir)) {
    auto names = fs->ListDir(dir);
    EXPECT_TRUE(names.ok()) << names.status().ToString();
    for (const std::string& n : names.value()) {
      EXPECT_TRUE(fs->Remove(JoinPath(dir, n)).ok());
    }
  }
  return dir;
}

/// Serializes a repository's logical state (sequence-independent): the
/// byte-identity oracle for "recovered exactly the acked records".
std::string StateBytes(const MetadataRepository& repo,
                       const std::string& scratch_name) {
  FileSystem* fs = FileSystem::Default();
  const std::string path = testing::TempDir() + "/" + scratch_name;
  EXPECT_TRUE(repo.Save(fs, path, 0).ok());
  auto data = fs->ReadFile(path);
  EXPECT_TRUE(data.ok());
  EXPECT_TRUE(fs->Remove(path).ok());
  return data.value();
}

// --- the mutation schedule -----------------------------------------------
// A fixed sequence of store mutations, every record a pure function of
// (seed, step), with a mid-run checkpoint. Each schedule step can be
// applied to a DurableEventStore (journaled) or to a bare repository
// (the expected-state oracle).

constexpr int kFramesPerDrill = 3;
constexpr int kCheckpointAfterStep = 7;  // between frame 1 and frame 2

EventContext DrillContext(uint64_t seed) {
  EventContext ctx;
  ctx.event_id = StrFormat("drill-%llu", (unsigned long long)seed);
  ctx.location = "lab";
  ctx.date = "2026-08-08";
  ctx.occasion = "crash drill";
  ctx.menu = {"bits"};
  ctx.temperature_c = 20.0 + seed;
  ctx.num_participants = 3;
  ctx.participant_names = {"A", "B", "C"};
  return ctx;
}

LookAtRecord DrillLookAt(uint64_t seed, int f) {
  LookAtMatrix m(3);
  m.Set(0, (f + static_cast<int>(seed)) % 2 + 1, true);
  m.Set(1, 0, true);
  return LookAtRecord::FromMatrix(f, f * 0.1, m);
}

EmotionRecord DrillEmotion(uint64_t seed, int f) {
  EmotionRecord er;
  er.frame = f;
  er.timestamp_s = f * 0.1;
  er.participant = (f + static_cast<int>(seed)) % 3;
  er.emotion = Emotion::kHappy;
  er.confidence = 0.5 + 0.01 * ((seed + f) % 7);
  return er;
}

OverallEmotionRecord DrillOverall(uint64_t seed, int f) {
  OverallEmotionRecord oe;
  oe.frame = f;
  oe.timestamp_s = f * 0.1;
  oe.overall_happiness = 0.3 + 0.01 * f + 0.001 * seed;
  oe.mean_valence = 0.1 * f;
  oe.observed = 3;
  return oe;
}

/// Total schedule steps: context, fps, 3 records per frame, plus the
/// mid-run checkpoint step.
constexpr int kDrillSteps = 2 + 3 * kFramesPerDrill + 1;

/// Applies schedule step `step` to the store. Checkpoint steps mutate
/// no state; every other step journals exactly one record.
Status ApplyStepToStore(uint64_t seed, int step, DurableEventStore* store) {
  if (step == kCheckpointAfterStep) return store->Checkpoint();
  const int s = step > kCheckpointAfterStep ? step - 1 : step;
  if (s == 0) return store->SetContext(DrillContext(seed));
  if (s == 1) return store->SetFps(12.5);
  const int f = (s - 2) / 3;
  switch ((s - 2) % 3) {
    case 0:
      return store->AddLookAt(DrillLookAt(seed, f));
    case 1:
      return store->AddEmotion(DrillEmotion(seed, f));
    default:
      return store->AddOverallEmotion(DrillOverall(seed, f));
  }
}

/// Mirror of ApplyStepToStore against the in-memory oracle.
void ApplyStepToRepo(uint64_t seed, int step, MetadataRepository* repo) {
  if (step == kCheckpointAfterStep) return;
  const int s = step > kCheckpointAfterStep ? step - 1 : step;
  if (s == 0) {
    repo->SetContext(DrillContext(seed));
    return;
  }
  if (s == 1) {
    repo->set_fps(12.5);
    return;
  }
  const int f = (s - 2) / 3;
  switch ((s - 2) % 3) {
    case 0:
      ASSERT_TRUE(repo->AddLookAt(DrillLookAt(seed, f)).ok());
      break;
    case 1:
      ASSERT_TRUE(repo->AddEmotion(DrillEmotion(seed, f)).ok());
      break;
    default:
      ASSERT_TRUE(repo->AddOverallEmotion(DrillOverall(seed, f)).ok());
      break;
  }
}

TEST(CrashDrill, EveryFrameBoundaryEverySeedZeroLossZeroDuplicates) {
  FileSystem* base = FileSystem::Default();
  int drills = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    // Probe run: learn the global byte offset after every schedule step
    // — these are the journal frame boundaries (the checkpoint step's
    // boundary spans the snapshot + fresh-segment bytes).
    std::vector<long long> boundaries;
    {
      const std::string dir =
          FreshDir(StrFormat("drill_probe_%llu", (unsigned long long)seed));
      FaultyFileSystem probe_fs(base, FileFaultSpec{});
      DurableStoreOptions options;
      options.fs = &probe_fs;
      auto store = DurableEventStore::Open(dir, options);
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      boundaries.push_back(probe_fs.bytes_appended());  // post-open
      for (int step = 0; step < kDrillSteps; ++step) {
        ASSERT_TRUE(ApplyStepToStore(seed, step, store.value().get()).ok());
        boundaries.push_back(probe_fs.bytes_appended());
      }
      ASSERT_TRUE(store.value()->Close().ok());
    }

    // Crash points: every boundary, plus a tear a few bytes into the
    // append that follows it.
    std::vector<long long> crash_points;
    for (size_t i = 0; i < boundaries.size(); ++i) {
      crash_points.push_back(boundaries[i]);
      if (i + 1 < boundaries.size() && boundaries[i + 1] > boundaries[i]) {
        crash_points.push_back(
            boundaries[i] +
            std::min<long long>(3, boundaries[i + 1] - boundaries[i] - 1));
      }
    }
    std::sort(crash_points.begin(), crash_points.end());
    crash_points.erase(
        std::unique(crash_points.begin(), crash_points.end()),
        crash_points.end());

    for (size_t ci = 0; ci < crash_points.size(); ++ci) {
      const long long crash_at = crash_points[ci];
      SCOPED_TRACE(StrFormat("seed %llu crash_after_bytes %lld",
                             (unsigned long long)seed, crash_at));
      const std::string dir =
          FreshDir(StrFormat("drill_%llu_%zu", (unsigned long long)seed, ci));
      FileFaultSpec spec;
      spec.seed = seed;
      spec.crash_after_bytes = crash_at;
      FaultyFileSystem faulty(base, spec);
      DurableStoreOptions options;
      options.fs = &faulty;

      int acked_steps = 0;
      {
        auto store = DurableEventStore::Open(dir, options);
        if (store.ok()) {
          for (int step = 0; step < kDrillSteps; ++step) {
            Status s = ApplyStepToStore(seed, step, store.value().get());
            if (!s.ok()) break;  // the crash: the writer is dead
            ++acked_steps;
          }
          // Kill the process image: no Close, no final sync.
          store.value().reset();
        }
      }
      // Half the drills power-cut on top of the kill; with
      // FsyncPolicy::kEveryRecord (the default) acked == synced, so
      // the outcome must not change.
      if (ci % 2 == 1) ASSERT_TRUE(faulty.LoseUnsyncedData().ok());

      // Recovery on the healthy filesystem.
      auto recovered = DurableEventStore::Open(dir);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      EXPECT_TRUE(recovered.value()->broken().ok());

      MetadataRepository expected;
      for (int step = 0; step < acked_steps; ++step) {
        ApplyStepToRepo(seed, step, &expected);
      }
      // Byte-identical logical state: every acknowledged record is
      // present exactly once, nothing more, nothing less.
      EXPECT_EQ(StateBytes(recovered.value()->repository(), "drill_got"),
                StateBytes(expected, "drill_want"));

      // The recovered store is live again: it must accept new writes.
      EXPECT_TRUE(recovered.value()->SetFps(99.0).ok());
      ++drills;
    }
  }
  // ≥ 8 seeds × (steps + tears): the drill actually covered the matrix.
  EXPECT_GE(drills, 8 * kDrillSteps);
}

// --- pipeline checkpointed resume ----------------------------------------

PipelineOptions DrillPipelineOptions(DurableEventStore* store) {
  PipelineOptions opt;
  opt.mode = PipelineMode::kGroundTruth;
  opt.parse_video = false;
  opt.frame_stride = 10;
  opt.store = store;
  opt.checkpoint_every_frames = 7;
  return opt;
}

/// Ground-truth run over the meeting scenario with a store attached;
/// returns Run's status and fills `repo`.
Status RunPipeline(DiningScene* scene, DurableEventStore* store,
                   MetadataRepository* repo, DiEventReport* report_out) {
  DiEventPipeline pipeline(scene, DrillPipelineOptions(store));
  auto report = pipeline.Run(repo);
  if (report.ok() && report_out != nullptr) {
    *report_out = report.value();
  }
  return report.status();
}

TEST(CrashDrill, PipelineResumeIsBitIdenticalToUninterruptedRun) {
  DiningScene scene = MakeMeetingScenario();
  FileSystem* base = FileSystem::Default();

  // Reference: one uninterrupted checkpointed run.
  std::string want;
  long long total_bytes = 0;
  {
    const std::string dir = FreshDir("pipe_uninterrupted");
    FaultyFileSystem meter(base, FileFaultSpec{});
    DurableStoreOptions options;
    options.fs = &meter;
    auto store = DurableEventStore::Open(dir, options);
    ASSERT_TRUE(store.ok());
    MetadataRepository repo;
    ASSERT_TRUE(
        RunPipeline(&scene, store.value().get(), &repo, nullptr).ok());
    ASSERT_TRUE(store.value()->Close().ok());
    want = StateBytes(repo, "pipe_want");
    total_bytes = meter.bytes_appended();
  }
  ASSERT_GT(total_bytes, 0);

  // Kill the writer at several points of the run — early, mid, late —
  // then recover and resume. The resumed run must converge to the same
  // bytes.
  const long long kill_points[] = {total_bytes / 7, total_bytes / 3,
                                   (2 * total_bytes) / 3,
                                   total_bytes - 40};
  int resumed_runs = 0;
  for (long long kill_at : kill_points) {
    SCOPED_TRACE(StrFormat("kill at byte %lld of %lld", kill_at,
                           total_bytes));
    const std::string dir =
        FreshDir(StrFormat("pipe_crash_%lld", kill_at));
    {
      FileFaultSpec spec;
      spec.crash_after_bytes = kill_at;
      FaultyFileSystem faulty(base, spec);
      DurableStoreOptions options;
      options.fs = &faulty;
      auto store = DurableEventStore::Open(dir, options);
      ASSERT_TRUE(store.ok());
      MetadataRepository repo;
      Status s = RunPipeline(&scene, store.value().get(), &repo, nullptr);
      ASSERT_FALSE(s.ok()) << "crash byte never reached";
      store.value().reset();  // killed, not closed
      ASSERT_TRUE(faulty.LoseUnsyncedData().ok());  // power cut too
    }
    // Recover + resume on the healthy filesystem.
    auto store = DurableEventStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    MetadataRepository repo;
    DiEventReport report;
    Status s = RunPipeline(&scene, store.value().get(), &repo, &report);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_TRUE(store.value()->Close().ok());
    EXPECT_EQ(StateBytes(repo, "pipe_got"), want);
    if (report.degradation.resumed_from_frame >= 0) {
      ++resumed_runs;
      EXPECT_GT(report.degradation.resume_reused_frames, 0);
    }
    // The resume must also be visible end-to-end: re-opening the store
    // yields the same bytes again (the final checkpoint folded it).
    auto final_store = DurableEventStore::Open(dir);
    ASSERT_TRUE(final_store.ok());
    EXPECT_EQ(StateBytes(final_store.value()->repository(), "pipe_disk"),
              want);
  }
  EXPECT_GT(resumed_runs, 0) << "no kill point exercised an actual resume";
}

TEST(CrashDrill, RerunOverACompleteStoreIsANoOpResume) {
  DiningScene scene = MakeMeetingScenario();
  const std::string dir = FreshDir("pipe_rerun");
  std::string want;
  {
    auto store = DurableEventStore::Open(dir);
    ASSERT_TRUE(store.ok());
    MetadataRepository repo;
    ASSERT_TRUE(
        RunPipeline(&scene, store.value().get(), &repo, nullptr).ok());
    ASSERT_TRUE(store.value()->Close().ok());
    want = StateBytes(repo, "rerun_want");
  }
  auto store = DurableEventStore::Open(dir);
  ASSERT_TRUE(store.ok());
  MetadataRepository repo;
  DiEventReport report;
  ASSERT_TRUE(
      RunPipeline(&scene, store.value().get(), &repo, &report).ok());
  EXPECT_EQ(StateBytes(repo, "rerun_got"), want);
  EXPECT_GE(report.degradation.resumed_from_frame, 0);
  EXPECT_EQ(report.degradation.resume_reused_frames,
            report.frames_processed);
  // No frame was reprocessed; the summary still matches a full run.
  EXPECT_EQ(report.frames_processed, 61);
}

}  // namespace
}  // namespace dievent
