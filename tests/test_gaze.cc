#include "vision/gaze_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "render/face_renderer.h"
#include "vision/face_detector.h"
#include "vision/landmarks.h"

namespace dievent {
namespace {

std::optional<Vec3> EstimateFor(double gx, double gy, int size) {
  ImageRgb crop = RenderFaceCrop(size, Emotion::kNeutral, 1.0, gx, gy);
  FaceDetector det;
  auto found = det.Detect(crop);
  if (found.size() != 1) return std::nullopt;
  LandmarkLocalizer loc;
  FaceLandmarks lm = loc.Localize(crop, found[0]);
  GazeEstimator ge;
  return ge.EstimateCameraGaze(found[0], lm);
}

TEST(GazeEstimator, RecoversRenderedGazeLargeFace) {
  for (double gx : {-0.6, -0.3, 0.0, 0.3, 0.6}) {
    for (double gy : {-0.4, 0.0, 0.4}) {
      auto est = EstimateFor(gx, gy, 160);
      ASSERT_TRUE(est.has_value()) << gx << "," << gy;
      double gz = -std::sqrt(std::max(0.0, 1 - gx * gx - gy * gy));
      double err = RadToDeg(AngleBetween(*est, Vec3{gx, gy, gz}));
      EXPECT_LT(err, 4.0) << gx << "," << gy;
    }
  }
}

TEST(GazeEstimator, ModerateFaceStillUsable) {
  // ~r=18 px, the typical size in the 640x480 meeting views.
  for (double gx : {-0.5, 0.0, 0.5}) {
    auto est = EstimateFor(gx, 0.0, 40);
    ASSERT_TRUE(est.has_value());
    double gz = -std::sqrt(1 - gx * gx);
    EXPECT_LT(RadToDeg(AngleBetween(*est, Vec3{gx, 0, gz})), 15.0);
  }
}

TEST(GazeEstimator, OutputIsUnitAndTowardCamera) {
  auto est = EstimateFor(0.2, -0.1, 100);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->Norm(), 1.0, 1e-9);
  EXPECT_LT(est->z, 0.0);
}

TEST(GazeEstimator, InvalidLandmarksRejected) {
  GazeEstimator ge;
  FaceDetection det;
  det.radius_px = 30;
  FaceLandmarks lm;  // eyes_valid = false
  EXPECT_FALSE(ge.EstimateCameraGaze(det, lm).has_value());
  // Tiny eye radius also rejected.
  FaceDetection tiny;
  tiny.radius_px = 2.0;
  FaceLandmarks lm2;
  lm2.eyes_valid = true;
  EXPECT_FALSE(ge.EstimateCameraGaze(tiny, lm2).has_value());
}

TEST(GazeEstimator, WorldGazeAppliesExtrinsics) {
  // Camera rotated 90 deg about Z: camera-frame gaze maps accordingly.
  ImageRgb crop = RenderFaceCrop(160, Emotion::kNeutral, 1.0, 0.0, 0.0);
  FaceDetector det;
  auto found = det.Detect(crop);
  ASSERT_EQ(found.size(), 1u);
  LandmarkLocalizer loc;
  FaceLandmarks lm = loc.Localize(crop, found[0]);
  GazeEstimator ge;
  CameraModel cam("c", Intrinsics{},
                  Pose::LookAt({0, 0, 1}, {5, 0, 1}));  // +x view, z-up
  auto world = ge.EstimateWorldGaze(cam, found[0], lm);
  ASSERT_TRUE(world.has_value());
  // Straight-at-camera gaze (0,0,-1) in camera frame = -x in world.
  EXPECT_NEAR(world->x, -1.0, 0.05);
  EXPECT_NEAR(world->Norm(), 1.0, 1e-9);
}

TEST(GazeEstimator, ClampsExtremeOffsets) {
  // Saturated gaze (|g| = 1) still yields a unit vector without NaN.
  auto est = EstimateFor(0.95, 0.0, 120);
  ASSERT_TRUE(est.has_value());
  EXPECT_FALSE(std::isnan(est->x));
  EXPECT_NEAR(est->Norm(), 1.0, 1e-9);
  EXPECT_GT(est->x, 0.7);
}

}  // namespace
}  // namespace dievent
