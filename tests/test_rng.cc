#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace dievent {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(0.0, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowCoversRangeWithoutOverflow) {
  Rng rng(6);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit in 1000 draws
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(Rng, GaussianMomentsAreSane) {
  Rng rng(9);
  const int n = 100000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianScalesAndShifts) {
  Rng rng(10);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

}  // namespace
}  // namespace dievent
