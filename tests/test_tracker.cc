#include "ml/tracker.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

FaceDetection Det(double cx, double cy, double r = 15) {
  FaceDetection d;
  d.center_px = {cx, cy};
  d.radius_px = r;
  d.bbox = BBox{static_cast<int>(cx - r), static_cast<int>(cy - 0.9 * r),
                static_cast<int>(2 * r), static_cast<int>(1.9 * r)};
  d.score = 0.8;
  return d;
}

TEST(Tracker, BirthsOnFirstFrame) {
  MultiTracker t;
  auto& tracks = t.Update(0, {Det(100, 100), Det(300, 200)});
  EXPECT_EQ(tracks.size(), 2u);
  EXPECT_EQ(tracks[0].hits, 1);
  // Not confirmed yet (min_hits = 2 default).
  EXPECT_TRUE(t.ConfirmedTracks().empty());
}

TEST(Tracker, AssociatesAcrossFramesAndConfirms) {
  MultiTracker t;
  t.Update(0, {Det(100, 100)});
  int id0 = t.tracks()[0].track_id;
  t.Update(1, {Det(104, 102)});
  ASSERT_EQ(t.tracks().size(), 1u);
  EXPECT_EQ(t.tracks()[0].track_id, id0);
  EXPECT_EQ(t.tracks()[0].hits, 2);
  EXPECT_EQ(t.ConfirmedTracks().size(), 1u);
}

TEST(Tracker, TracksTwoTargetsWithoutSwapping) {
  MultiTracker t;
  // Two heads moving toward each other, never overlapping.
  for (int f = 0; f < 10; ++f) {
    t.Update(f, {Det(100 + f * 5, 100), Det(300 - f * 5, 100)});
  }
  ASSERT_EQ(t.tracks().size(), 2u);
  // The track that started left is still the left one.
  const Track& a = t.tracks()[0];
  const Track& b = t.tracks()[1];
  EXPECT_LT(std::min(a.center_px.x, b.center_px.x), 160);
  EXPECT_EQ(a.hits, 10);
  EXPECT_EQ(b.hits, 10);
}

TEST(Tracker, CoastsThroughMissesThenDies) {
  TrackerOptions opt;
  opt.max_misses = 3;
  MultiTracker t(opt);
  t.Update(0, {Det(100, 100)});
  t.Update(1, {Det(105, 100)});
  for (int f = 2; f < 5; ++f) {
    t.Update(f, {});
    ASSERT_EQ(t.tracks().size(), 1u) << f;
    EXPECT_EQ(t.tracks()[0].misses, f - 1);
  }
  t.Update(5, {});
  EXPECT_TRUE(t.tracks().empty());
}

TEST(Tracker, ReacquiresAfterShortDropout) {
  MultiTracker t;
  t.Update(0, {Det(100, 100)});
  t.Update(1, {Det(106, 100)});  // velocity ~6 px/frame
  int id = t.tracks()[0].track_id;
  t.Update(2, {});               // dropout; coasting predicts ~112
  t.Update(3, {Det(118, 100)});  // matches the coasted position
  ASSERT_EQ(t.tracks().size(), 1u);
  EXPECT_EQ(t.tracks()[0].track_id, id);
  EXPECT_EQ(t.tracks()[0].misses, 0);
}

TEST(Tracker, CarriesIdentityAcrossRecognitionDropouts) {
  MultiTracker t;
  t.Update(0, {Det(100, 100)}, {2});
  EXPECT_EQ(t.tracks()[0].identity, 2);
  // Recognition failed this frame (-1): the track keeps identity 2.
  t.Update(1, {Det(103, 101)}, {-1});
  EXPECT_EQ(t.tracks()[0].identity, 2);
  int track_id = t.last_detection_track_ids()[0];
  EXPECT_EQ(t.IdentityOfTrack(track_id), 2);
}

TEST(Tracker, LastDetectionTrackIdsCoverBirths) {
  MultiTracker t;
  t.Update(0, {Det(100, 100), Det(300, 100)});
  auto ids = t.last_detection_track_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_NE(ids[0], ids[1]);
  EXPECT_GE(ids[0], 0);
}

TEST(Tracker, GatingPreventsAbsurdJumps) {
  MultiTracker t;
  t.Update(0, {Det(100, 100)});
  // A detection on the other side of the frame is not the same head.
  t.Update(1, {Det(600, 400)});
  EXPECT_EQ(t.tracks().size(), 2u);
}

TEST(Tracker, ResetClearsState) {
  MultiTracker t;
  t.Update(0, {Det(1, 1)});
  t.Reset();
  EXPECT_TRUE(t.tracks().empty());
  t.Update(0, {Det(1, 1)});
  EXPECT_EQ(t.tracks()[0].track_id, 0);  // ids restart
}

TEST(Tracker, UnknownIdentityOfDeadTrack) {
  MultiTracker t;
  EXPECT_EQ(t.IdentityOfTrack(99), -1);
}

}  // namespace
}  // namespace dievent
