// Parameterized property sweeps across the core invariants: geometry
// frame-independence, analysis/summary algebra, repository round trips,
// tracker behaviour under dropout, and histogram metric axioms — each
// checked across a sweep of configurations rather than one hand-picked
// case.

#include <gtest/gtest.h>

#include "analysis/eye_contact.h"
#include "core/pipeline.h"
#include "image/histogram.h"
#include "ml/tracker.h"
#include "sim/scenario.h"

namespace dievent {
namespace {

// ---------------------------------------------------------------------------
// Eye-contact invariants across group sizes.

class EyeContactProperties : public testing::TestWithParam<int> {};

TEST_P(EyeContactProperties, LookAtMatrixInvariants) {
  const int n = GetParam();
  Rng rng(1000 + n);
  DiningScene scene = MakeRandomScenario(n, 60, 10.0, &rng);
  EyeContactDetector det;
  LookAtSummary summary(n);
  for (int f = 0; f < scene.num_frames(); f += 6) {
    auto states = scene.StateAt(scene.TimeOfFrame(f));
    std::vector<ParticipantGeometry> people(n);
    for (int i = 0; i < n; ++i) {
      people[i].head_position = states[i].head_position;
      people[i].gaze_direction = states[i].gaze_direction;
    }
    LookAtMatrix m = det.ComputeLookAt(people);
    // (1) Zero diagonal, by the paper's definition.
    for (int i = 0; i < n; ++i) EXPECT_FALSE(m.At(i, i));
    // (2) Every EC pair implies both directed edges.
    for (auto [a, b] : m.EyeContactPairs()) {
      EXPECT_TRUE(m.At(a, b));
      EXPECT_TRUE(m.At(b, a));
    }
    // (3) Each participant looks at most at one person (a single ray
    //     cannot pierce two disjoint head spheres in this seating
    //     geometry... it can graze two if aligned; allow <= 2).
    for (int i = 0; i < n; ++i) {
      int out = 0;
      for (int j = 0; j < n; ++j) {
        if (i != j && m.At(i, j)) ++out;
      }
      EXPECT_LE(out, 2);
    }
    ASSERT_TRUE(summary.Accumulate(m).ok());
  }
  // (4) Summary totals: sum of row sums == sum of column sums == total
  //     directed looks.
  long long rows = 0, cols = 0;
  for (int i = 0; i < n; ++i) {
    rows += summary.RowSum(i);
    cols += summary.ColumnSum(i);
  }
  EXPECT_EQ(rows, cols);
}

TEST_P(EyeContactProperties, FrameIndependenceOfLookAt) {
  // The look-at matrix must be identical no matter which rig camera's
  // frame the observations are expressed in (paper Eq. 2's purpose).
  const int n = GetParam();
  Rng rng(2000 + n);
  DiningScene scene = MakeRandomScenario(n, 30, 10.0, &rng);
  EyeContactDetector det;
  for (int f = 0; f < 30; f += 7) {
    auto states = scene.StateAt(scene.TimeOfFrame(f));
    std::vector<ParticipantGeometry> world(n);
    std::vector<CameraFrameGeometry> observed(n);
    for (int i = 0; i < n; ++i) {
      world[i].head_position = states[i].head_position;
      world[i].gaze_direction = states[i].gaze_direction;
      observed[i].camera_index =
          static_cast<int>(rng.NextBelow(scene.rig().NumCameras()));
      const Pose& cam_T_world =
          scene.rig().camera(observed[i].camera_index).camera_from_world();
      observed[i].head_position =
          cam_T_world.TransformPoint(states[i].head_position);
      observed[i].gaze_direction =
          cam_T_world.TransformDirection(states[i].gaze_direction);
    }
    LookAtMatrix reference = det.ComputeLookAt(world);
    for (int ref = 0; ref < scene.rig().NumCameras(); ++ref) {
      auto m = det.ComputeLookAtInCameraFrame(scene.rig(), ref, observed);
      ASSERT_TRUE(m.ok());
      EXPECT_TRUE(m.value() == reference) << "camera " << ref;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, EyeContactProperties,
                         testing::Values(2, 3, 4, 5, 6, 8, 10));

// ---------------------------------------------------------------------------
// Ground-truth pipeline invariants across scenario shapes.

struct PipelineParam {
  int participants;
  int frames;
  double fps;
};

class PipelineProperties : public testing::TestWithParam<PipelineParam> {};

TEST_P(PipelineProperties, RepositoryMatchesReport) {
  const PipelineParam p = GetParam();
  Rng rng(31 * p.participants + p.frames);
  DiningScene scene =
      MakeRandomScenario(p.participants, p.frames, p.fps, &rng);
  PipelineOptions opt;
  opt.mode = PipelineMode::kGroundTruth;
  opt.parse_video = false;
  MetadataRepository repo;
  auto report = DiEventPipeline(&scene, opt).Run(&repo);
  ASSERT_TRUE(report.ok()) << report.status();

  // One look-at record per frame, in order, with consistent timestamps.
  ASSERT_EQ(repo.lookat_records().size(),
            static_cast<size_t>(p.frames));
  for (int f = 1; f < p.frames; ++f) {
    EXPECT_LT(repo.lookat_records()[f - 1].frame,
              repo.lookat_records()[f].frame);
  }
  // The report's summary equals re-summarizing the repository.
  LookAtSummary resummed = repo.Summarize();
  for (int x = 0; x < p.participants; ++x) {
    for (int y = 0; y < p.participants; ++y) {
      EXPECT_EQ(resummed.At(x, y), report.value().summary.At(x, y));
    }
  }
  // Dominance is the argmax column, recomputed independently.
  long long best = -1;
  int best_col = -1;
  for (int y = 0; y < p.participants; ++y) {
    if (resummed.ColumnSum(y) > best) {
      best = resummed.ColumnSum(y);
      best_col = y;
    }
  }
  EXPECT_EQ(report.value().dominant_participant, best_col);
  // Save/load round trip preserves every record count. The path is
  // per-parameter: ctest runs each instance as its own process, so a
  // shared file would race under a parallel suite.
  std::string path = testing::TempDir() +
                     "/prop_repo_" + std::to_string(p.participants) + "_" +
                     std::to_string(p.frames) + ".dmr";
  ASSERT_TRUE(repo.Save(path).ok());
  auto loaded = MetadataRepository::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().TotalRecords(), repo.TotalRecords());
}

INSTANTIATE_TEST_SUITE_P(
    ScenarioShapes, PipelineProperties,
    testing::Values(PipelineParam{2, 40, 10.0}, PipelineParam{3, 80, 15.25},
                    PipelineParam{5, 50, 25.0}, PipelineParam{8, 30, 10.0}));

// ---------------------------------------------------------------------------
// Histogram metric axioms across bin resolutions and binning modes.

struct HistogramParam {
  int bins;
  bool soft;
};

class HistogramProperties
    : public testing::TestWithParam<HistogramParam> {};

TEST_P(HistogramProperties, MetricAxiomsHold) {
  const auto [bins, soft] = GetParam();
  Rng rng(bins * 2 + soft);
  auto random_image = [&] {
    ImageRgb img(24, 24, 3);
    for (uint8_t& v : img.data())
      v = static_cast<uint8_t>(rng.NextBelow(256));
    return img;
  };
  for (int trial = 0; trial < 10; ++trial) {
    Histogram a = ComputeColorHistogram(random_image(), bins, soft);
    Histogram b = ComputeColorHistogram(random_image(), bins, soft);
    // Normalization.
    double total = 0;
    for (double v : a.bins) total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Identity of indiscernibles (distance side).
    EXPECT_NEAR(ChiSquareDistance(a, a), 0.0, 1e-12);
    EXPECT_NEAR(L1Distance(a, a), 0.0, 1e-12);
    EXPECT_NEAR(IntersectionSimilarity(a, a), 1.0, 1e-9);
    // Symmetry.
    EXPECT_DOUBLE_EQ(ChiSquareDistance(a, b), ChiSquareDistance(b, a));
    EXPECT_DOUBLE_EQ(L1Distance(a, b), L1Distance(b, a));
    // Bounds.
    EXPECT_GE(L1Distance(a, b), 0.0);
    EXPECT_LE(L1Distance(a, b), 2.0 + 1e-9);
    EXPECT_LE(ChiSquareDistance(a, b), 2.0 + 1e-9);
    double inter = IntersectionSimilarity(a, b);
    EXPECT_GE(inter, 0.0);
    EXPECT_LE(inter, 1.0 + 1e-9);
    // Intersection/L1 duality: inter = 1 - L1/2 for normalized inputs.
    EXPECT_NEAR(inter, 1.0 - L1Distance(a, b) / 2.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BinModes, HistogramProperties,
    testing::Values(HistogramParam{4, false}, HistogramParam{4, true},
                    HistogramParam{8, false}, HistogramParam{8, true},
                    HistogramParam{16, false}, HistogramParam{16, true}));

// ---------------------------------------------------------------------------
// Tracker stability under detection dropout.

class TrackerDropout : public testing::TestWithParam<double> {};

TEST_P(TrackerDropout, IdentityPersistsThroughMissedDetections) {
  const double drop_rate = GetParam();
  Rng rng(static_cast<uint64_t>(drop_rate * 1000) + 5);
  TrackerOptions opt;
  opt.max_misses = 10;
  MultiTracker tracker(opt);
  // Two targets on smooth trajectories with random dropouts.
  int stable_frames = 0;
  for (int f = 0; f < 200; ++f) {
    std::vector<FaceDetection> dets;
    std::vector<int> ids;
    auto add = [&](double cx, double cy, int identity) {
      if (rng.NextDouble() < drop_rate) return;  // dropout
      FaceDetection d;
      d.center_px = {cx, cy};
      d.radius_px = 15;
      d.bbox = BBox{static_cast<int>(cx - 15), static_cast<int>(cy - 14),
                    30, 28};
      dets.push_back(d);
      ids.push_back(identity);
    };
    add(100 + f * 1.5, 100 + 20 * std::sin(f * 0.05), 0);
    add(500 - f * 1.5, 300, 1);
    tracker.Update(f, dets, ids);
    // Property: never more live tracks than true targets (no duplicate
    // births while the original track coasts), and identities never swap.
    EXPECT_LE(tracker.tracks().size(), 2u) << "frame " << f;
    for (const Track& t : tracker.tracks()) {
      if (t.identity == 0) {
        EXPECT_LT(t.center_px.y, 200) << "frame " << f;
      } else if (t.identity == 1) {
        EXPECT_GT(t.center_px.y, 200) << "frame " << f;
      }
    }
    if (tracker.tracks().size() == 2) ++stable_frames;
  }
  // The tracker holds both targets most of the time even with dropouts.
  EXPECT_GT(stable_frames, 150);
}

INSTANTIATE_TEST_SUITE_P(DropRates, TrackerDropout,
                         testing::Values(0.0, 0.1, 0.2, 0.3));

// ---------------------------------------------------------------------------
// Scenario script algebra: frame phases tile the timeline exactly.

class PhasedScenarioProperties
    : public testing::TestWithParam<int> {};

TEST_P(PhasedScenarioProperties, PhaseLabelsTileTimeline) {
  const int n = GetParam();
  Rng rng(600 + n);
  std::vector<std::pair<DiningPhase, double>> phases = {
      {DiningPhase::kEating, 8},
      {DiningPhase::kDiscussion, 12},
      {DiningPhase::kPresentation, 10},
      {DiningPhase::kEating, 6},
  };
  PhasedScene phased = MakePhasedDinnerScenario(n, phases, 10.0, &rng);
  EXPECT_EQ(phased.scene.num_frames(), 360);
  ASSERT_EQ(phased.frame_phase.size(), 360u);
  // Phase boundaries land exactly where the durations say.
  EXPECT_EQ(phased.frame_phase[0], DiningPhase::kEating);
  EXPECT_EQ(phased.frame_phase[79], DiningPhase::kEating);
  EXPECT_EQ(phased.frame_phase[80], DiningPhase::kDiscussion);
  EXPECT_EQ(phased.frame_phase[199], DiningPhase::kDiscussion);
  EXPECT_EQ(phased.frame_phase[200], DiningPhase::kPresentation);
  EXPECT_EQ(phased.frame_phase[300], DiningPhase::kEating);
  // Gaze scripts are valid for every participant (all targets resolve).
  for (int f = 0; f < 360; f += 17) {
    auto states = phased.scene.StateAt(phased.scene.TimeOfFrame(f));
    for (const auto& s : states) {
      EXPECT_NEAR(s.gaze_direction.Norm(), 1.0, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, PhasedScenarioProperties,
                         testing::Values(3, 4, 6, 8));

}  // namespace
}  // namespace dievent
