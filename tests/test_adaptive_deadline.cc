// Adaptive-deadline tests: the P² streaming quantile estimator is pinned
// on its exactness properties (order statistics below five samples,
// constants forever), the controller's warmup/clamp/transition logic is
// pinned in isolation, and the full loop — supervisor feeding healthy
// read latencies, deadline tightening then relaxing — runs under SimClock
// with exact, load-independent expected values.

#include "video/adaptive_deadline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/quantile.h"
#include "video/acquisition_supervisor.h"
#include "video/video_source.h"

namespace dievent {
namespace {

// --- P² quantile ---------------------------------------------------------

TEST(P2Quantile, ExactOrderStatisticBelowFiveSamples) {
  P2Quantile median(0.5);
  EXPECT_EQ(median.count(), 0);
  EXPECT_EQ(median.Estimate(), 0.0);
  median.Add(30.0);
  EXPECT_EQ(median.Estimate(), 30.0);
  median.Add(10.0);
  // Nearest rank: ceil(0.5 * 2) = 1st smallest.
  EXPECT_EQ(median.Estimate(), 10.0);
  median.Add(20.0);
  EXPECT_EQ(median.Estimate(), 20.0);  // 2nd of {10, 20, 30}
  median.Add(40.0);
  EXPECT_EQ(median.Estimate(), 20.0);  // 2nd of {10, 20, 30, 40}
  EXPECT_EQ(median.count(), 4);
}

TEST(P2Quantile, ConstantStreamIsEstimatedExactly) {
  P2Quantile p90(0.9);
  for (int i = 0; i < 1000; ++i) {
    p90.Add(0.02);
    EXPECT_EQ(p90.Estimate(), 0.02) << "sample " << i;
  }
  EXPECT_EQ(p90.count(), 1000);
}

TEST(P2Quantile, TracksTheTargetQuantileOfARamp) {
  // 1..1000 in order: P90 of the stream is 900; P² approximates it. The
  // classic accuracy expectation for this benign input is within a few
  // percent.
  P2Quantile p90(0.9);
  for (int i = 1; i <= 1000; ++i) p90.Add(static_cast<double>(i));
  EXPECT_NEAR(p90.Estimate(), 900.0, 30.0);
}

TEST(P2Quantile, ShiftedInputMovesTheEstimate) {
  P2Quantile p90(0.9);
  for (int i = 0; i < 50; ++i) p90.Add(0.02);
  for (int i = 0; i < 200; ++i) p90.Add(0.03);
  // After a long run at the new level the high percentile sits there.
  EXPECT_NEAR(p90.Estimate(), 0.03, 0.002);
}

// --- controller ----------------------------------------------------------

AdaptiveDeadlineOptions ControllerOptions() {
  AdaptiveDeadlineOptions options;
  options.enabled = true;
  options.min_deadline_s = 0.01;
  options.max_deadline_s = 0.05;
  options.quantile = 0.9;
  options.headroom = 2.0;
  options.warmup_reads = 8;
  return options;
}

TEST(AdaptiveDeadlineController, HoldsTheInitialDeadlineThroughWarmup) {
  AdaptiveDeadlineController controller(ControllerOptions(), 0.05);
  for (int i = 0; i < 7; ++i) {
    controller.RecordHealthy(0.001);
    EXPECT_EQ(controller.deadline_s(), 0.05) << "read " << i;
  }
  EXPECT_EQ(controller.tightened(), 0);
  controller.RecordHealthy(0.001);  // 8th read: warmup over
  EXPECT_EQ(controller.deadline_s(), 0.01);  // 2 * 0.001 clamps to min
  EXPECT_EQ(controller.tightened(), 1);
  EXPECT_EQ(controller.healthy_samples(), 8);
}

TEST(AdaptiveDeadlineController, TightensAndRelaxesWithExactTargets) {
  AdaptiveDeadlineController controller(ControllerOptions(), 0.05);
  for (int i = 0; i < 10; ++i) controller.RecordHealthy(0.02);
  // Constant latencies estimate exactly; headroom doubles them.
  EXPECT_EQ(controller.deadline_s(), 0.04);
  EXPECT_GE(controller.tightened(), 1);
  EXPECT_EQ(controller.relaxed(), 0);
  for (int i = 0; i < 60; ++i) controller.RecordHealthy(0.03);
  // 2 x P90 crosses the cap; the clamp makes the relaxed value exact.
  EXPECT_EQ(controller.deadline_s(), 0.05);
  EXPECT_GE(controller.relaxed(), 1);
}

TEST(AdaptiveDeadlineController, ClampsToTheConfiguredBounds) {
  // Constant streams keep the estimate exact, so each bound is hit dead
  // on. (One controller fed both streams in sequence would test P²
  // convergence after a regime change instead — a property the estimator
  // deliberately trades away for O(1) memory.)
  AdaptiveDeadlineController slow(ControllerOptions(), 0.03);
  for (int i = 0; i < 20; ++i) slow.RecordHealthy(10.0);
  EXPECT_EQ(slow.deadline_s(), 0.05);  // never past max

  AdaptiveDeadlineController fast(ControllerOptions(), 0.03);
  for (int i = 0; i < 20; ++i) fast.RecordHealthy(1e-6);
  EXPECT_EQ(fast.deadline_s(), 0.01);  // never below min
}

// --- supervisor loop under SimClock --------------------------------------

/// A camera whose reads take a settable simulated latency: GetFrame sleeps
/// on the injected clock, so under SimClock the measured latency is the
/// configured value exactly — no scheduling noise.
class SlowSource : public VideoSource {
 public:
  SlowSource(VirtualClock* clock, int frames, double fps)
      : clock_(clock), frames_(frames), fps_(fps) {}

  void set_latency_s(double s) { latency_s_.store(s); }

  int NumFrames() const override { return frames_; }
  double Fps() const override { return fps_; }
  Result<VideoFrame> GetFrame(int index) override {
    clock_->SleepFor(VirtualClock::FromSeconds(latency_s_.load()));
    VideoFrame f;
    f.index = index;
    f.timestamp_s = index / fps_;
    f.image = ImageRgb(4, 4, 3);
    return f;
  }

 private:
  VirtualClock* clock_;
  const int frames_;
  const double fps_;
  std::atomic<double> latency_s_{0.0};
};

TEST(AdaptiveDeadlineSupervisor, DeadlineTightensThenRelaxesExactly) {
  // The acceptance scenario: a camera whose healthy latency is 20ms
  // tightens the 50ms starting deadline to exactly 2 x 20ms; when the
  // latency shifts to 30ms (still inside the tightened deadline, so reads
  // keep succeeding and keep feeding the estimator), the target crosses
  // the cap and the deadline relaxes to exactly the 50ms bound. All under
  // SimClock auto-advance: the values hold on any machine at any load.
  SimClock::Options sim_options;
  sim_options.auto_advance = true;
  SimClock sim(sim_options);

  SlowSource source(&sim, 200, 25.0);
  SupervisorOptions options;
  options.read_deadline_s = 0.05;
  options.clock = &sim;
  options.adaptive = ControllerOptions();
  AcquisitionSupervisor supervisor({&source}, options);

  ASSERT_EQ(supervisor.NumCameras(), 1);
  EXPECT_EQ(supervisor.camera_deadline_s(0), 0.05);
  const AdaptiveDeadlineController* controller =
      supervisor.deadline_controller(0);
  ASSERT_NE(controller, nullptr);

  // Phase 1: constant 20ms reads. Every read succeeds (20 < 50ms) with a
  // latency of exactly the simulated sleep, so after warmup the deadline
  // is exactly headroom x the (duration-quantized) latency.
  source.set_latency_s(0.02);
  int frame = 0;
  for (int i = 0; i < 10; ++i, ++frame) {
    std::vector<AcquisitionSupervisor::ReadOutcome> out =
        supervisor.Read(frame, {1});
    ASSERT_TRUE(out[0].ok()) << "frame " << frame << ": " << out[0].error;
    EXPECT_EQ(out[0].latency_s,
              VirtualClock::ToSeconds(VirtualClock::FromSeconds(0.02)));
  }
  const double tightened =
      2.0 * VirtualClock::ToSeconds(VirtualClock::FromSeconds(0.02));
  EXPECT_EQ(supervisor.camera_deadline_s(0), tightened);
  EXPECT_LT(supervisor.camera_deadline_s(0), 0.05);
  EXPECT_GE(controller->tightened(), 1);
  EXPECT_EQ(controller->relaxed(), 0);

  // Phase 2: latency shifts to 30ms — under the tightened ~40ms deadline,
  // so reads still succeed and the estimator sees the shift. Once
  // 2 x P90 crosses the 50ms cap the clamp relaxes the deadline to the
  // bound exactly.
  source.set_latency_s(0.03);
  for (int i = 0; i < 60; ++i, ++frame) {
    std::vector<AcquisitionSupervisor::ReadOutcome> out =
        supervisor.Read(frame, {1});
    ASSERT_TRUE(out[0].ok()) << "frame " << frame << ": " << out[0].error;
  }
  EXPECT_EQ(supervisor.camera_deadline_s(0), 0.05);
  EXPECT_GE(controller->relaxed(), 1);

  // The whole run took simulated, not wall, time: 10 reads at 20ms plus
  // 60 at 30ms, compared in integer duration space so it is exact.
  EXPECT_EQ(sim.Now().time_since_epoch(),
            10 * VirtualClock::FromSeconds(0.02) +
                60 * VirtualClock::FromSeconds(0.03));

  // No read ever missed: the tightened deadline stayed above the latency.
  EXPECT_EQ(supervisor.stats(0).deadline_misses, 0);
}

TEST(AdaptiveDeadlineSupervisor, DisabledAdaptiveKeepsTheStaticDeadline) {
  SimClock::Options sim_options;
  sim_options.auto_advance = true;
  SimClock sim(sim_options);
  SlowSource source(&sim, 50, 25.0);
  SupervisorOptions options;
  options.read_deadline_s = 0.05;
  options.clock = &sim;
  AcquisitionSupervisor supervisor({&source}, options);
  source.set_latency_s(0.001);
  for (int f = 0; f < 10; ++f) {
    std::vector<AcquisitionSupervisor::ReadOutcome> out =
        supervisor.Read(f, {1});
    ASSERT_TRUE(out[0].ok());
  }
  EXPECT_EQ(supervisor.camera_deadline_s(0), 0.05);
  EXPECT_EQ(supervisor.deadline_controller(0), nullptr);
}

TEST(AdaptiveDeadlinePolicy, CreateValidatesTheOptions) {
  auto make = [](AcquisitionPolicy policy) {
    std::vector<std::unique_ptr<VideoSource>> sources;
    sources.push_back(
        std::make_unique<MemoryVideoSource>(std::vector<ImageRgb>(4), 10.0));
    return MultiCameraSource::Create(std::move(sources), policy);
  };

  AcquisitionPolicy good;
  good.read_deadline_s = 0.05;
  good.adaptive_deadline.enabled = true;
  good.adaptive_deadline.min_deadline_s = 0.01;
  good.adaptive_deadline.max_deadline_s = 0.05;
  EXPECT_TRUE(make(good).ok());

  AcquisitionPolicy unbounded = good;
  unbounded.read_deadline_s = 0.0;  // adaptive needs a starting point
  EXPECT_EQ(make(unbounded).status().code(), StatusCode::kInvalidArgument);

  AcquisitionPolicy inverted = good;
  inverted.adaptive_deadline.min_deadline_s = 0.2;  // min > max
  EXPECT_EQ(make(inverted).status().code(), StatusCode::kInvalidArgument);

  AcquisitionPolicy bad_quantile = good;
  bad_quantile.adaptive_deadline.quantile = 1.0;
  EXPECT_EQ(make(bad_quantile).status().code(),
            StatusCode::kInvalidArgument);

  AcquisitionPolicy bad_feedback;
  bad_feedback.drift_feedback.enabled = true;
  bad_feedback.drift_feedback.min_frames = 0;
  EXPECT_EQ(make(bad_feedback).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dievent
