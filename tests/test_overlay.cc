#include "vision/overlay.h"

#include <gtest/gtest.h>

#include "render/scene_renderer.h"
#include "sim/scenario.h"
#include "vision/face_analyzer.h"

namespace dievent {
namespace {

int CountColor(const ImageRgb& img, const Rgb& c) {
  int n = 0;
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x)
      if (GetRgb(img, x, y) == c) ++n;
  return n;
}

FaceObservation SimpleObservation(bool front, bool gaze) {
  FaceObservation obs;
  obs.detection.bbox = BBox{40, 40, 40, 38};
  obs.detection.center_px = {60, 60};
  obs.detection.radius_px = 20;
  obs.detection.front_facing = front;
  obs.identity = 2;
  if (gaze) {
    obs.has_gaze = true;
    obs.gaze_camera = Vec3{0.7, 0.0, -0.71};
  }
  return obs;
}

TEST(Overlay, DrawsBoxInClassColor) {
  ImageRgb frame(160, 120, 3);
  OverlayOptions opt;
  ImageRgb front = RenderOverlay(frame, {SimpleObservation(true, false)},
                                 opt);
  EXPECT_GT(CountColor(front, opt.box_color_front), 100);
  EXPECT_EQ(CountColor(front, opt.box_color_back), 0);
  ImageRgb back = RenderOverlay(frame, {SimpleObservation(false, false)},
                                opt);
  EXPECT_GT(CountColor(back, opt.box_color_back), 100);
}

TEST(Overlay, GazeArrowOnlyWhenPresent) {
  ImageRgb frame(160, 120, 3);
  OverlayOptions opt;
  ImageRgb with = RenderOverlay(frame, {SimpleObservation(true, true)},
                                opt);
  ImageRgb without = RenderOverlay(frame, {SimpleObservation(true, false)},
                                   opt);
  EXPECT_GT(CountColor(with, opt.gaze_color), 20);
  EXPECT_EQ(CountColor(without, opt.gaze_color), 0);
}

TEST(Overlay, OptionsDisableLayers) {
  ImageRgb frame(160, 120, 3);
  OverlayOptions opt;
  opt.draw_gaze = false;
  opt.draw_identity = false;
  ImageRgb img = RenderOverlay(frame, {SimpleObservation(true, true)}, opt);
  EXPECT_EQ(CountColor(img, opt.gaze_color), 0);
}

TEST(Overlay, OriginalFrameUntouched) {
  ImageRgb frame(160, 120, 3);
  ImageRgb copy = frame;
  (void)RenderOverlay(frame, {SimpleObservation(true, true)});
  EXPECT_TRUE(frame == copy);
}

TEST(DrawLabel, RendersGlyphPixels) {
  ImageRgb frame(60, 20, 3);
  DrawLabel(&frame, {2, 2}, "P3", Rgb{255, 255, 255});
  int lit = CountColor(frame, Rgb{255, 255, 255});
  EXPECT_GT(lit, 15);
  EXPECT_LT(lit, 70);
  // Unknown glyphs are skipped, not drawn as garbage.
  ImageRgb frame2(60, 20, 3);
  DrawLabel(&frame2, {2, 2}, "!?", Rgb{255, 255, 255});
  EXPECT_EQ(CountColor(frame2, Rgb{255, 255, 255}), 0);
}

TEST(Overlay, EndToEndOnRenderedScene) {
  // The overlay of a real analyzed frame draws something for every
  // participant without crashing at the borders.
  DiningScene scene = MakeMeetingScenario();
  ImageRgb frame = RenderViewAt(scene, 10.0, 1, RenderOptions{});
  FaceAnalyzer analyzer;
  auto obs = analyzer.Analyze(scene.rig().camera(1), 1, frame);
  ASSERT_EQ(obs.size(), 4u);
  OverlayOptions opt;
  ImageRgb annotated = RenderOverlay(frame, obs, opt);
  EXPECT_FALSE(annotated == frame);
  EXPECT_GT(CountColor(annotated, opt.box_color_front), 50);
}

}  // namespace
}  // namespace dievent
