// Corpus crash drills: the batched-ingest writer is power-cut at every
// journal frame boundary (and torn mid-frame) across seeds. Recovery
// must land on exactly the acknowledged batches — zero acked-record
// loss, zero duplicate replay — and every query over the recovered
// shard must be bit-identical to the uninterrupted oracle. A separate
// drill kills SealShard between shard data and the manifest rename:
// the corpus must come back as if the seal never happened, and a
// re-seal must publish the identical shard.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "io/faulty_file.h"
#include "metadata/corpus.h"
#include "metadata/durable_store.h"
#include "metadata/query_parser.h"

namespace dievent {
namespace {

std::string FreshDir(const std::string& name) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = testing::TempDir() + "/" + name;
  if (fs->Exists(dir)) {
    auto names = fs->ListDir(dir);
    EXPECT_TRUE(names.ok());
    for (const std::string& n : names.value()) {
      const std::string path = JoinPath(dir, n);
      auto nested = fs->ListDir(path);
      if (nested.ok()) {  // a shard directory: wipe contents, then rmdir
        for (const std::string& inner : nested.value()) {
          EXPECT_TRUE(fs->Remove(JoinPath(path, inner)).ok());
        }
        EXPECT_TRUE(fs->RemoveDir(path).ok());
      } else {
        EXPECT_TRUE(fs->Remove(path).ok());
      }
    }
  }
  return dir;
}

std::string StateBytes(const MetadataRepository& repo,
                       const std::string& scratch_name) {
  FileSystem* fs = FileSystem::Default();
  const std::string path = testing::TempDir() + "/" + scratch_name;
  EXPECT_TRUE(repo.Save(fs, path, 0).ok());
  auto data = fs->ReadFile(path);
  EXPECT_TRUE(data.ok());
  EXPECT_TRUE(fs->Remove(path).ok());
  return data.value();
}

// --- the batched mutation schedule ---------------------------------------
// A fixed sequence of store mutations where most steps are multi-record
// AppendBatch calls (1-4 records each, mixed types), every record a
// pure function of (seed, step), with a mid-run checkpoint. A batch is
// the atomicity unit: after a crash, either all of its records
// survived or none did.

constexpr int kDrillBatches = 6;
constexpr int kCheckpointAfterStep = 4;  // after batches 0-2
constexpr int kDrillSteps = 1 + kDrillBatches + 1;  // context + checkpoint

LookAtRecord DrillLookAt(uint64_t seed, int f) {
  LookAtMatrix m(4);
  m.Set(0, (f + static_cast<int>(seed)) % 3 + 1, true);
  if ((f + static_cast<int>(seed)) % 2 == 0) m.Set(1, 0, true);
  return LookAtRecord::FromMatrix(f, f * 0.1, m);
}

OverallEmotionRecord DrillOverall(uint64_t seed, int f) {
  OverallEmotionRecord oe;
  oe.frame = f;
  oe.timestamp_s = f * 0.1;
  oe.overall_happiness = 0.2 + 0.05 * f + 0.001 * seed;
  oe.mean_valence = 0.03 * f - 0.1;
  oe.observed = 4;
  return oe;
}

EmotionRecord DrillEmotion(uint64_t seed, int f) {
  EmotionRecord er;
  er.frame = f;
  er.timestamp_s = f * 0.1;
  er.participant = (f + static_cast<int>(seed)) % 4;
  er.emotion = Emotion::kHappy;
  er.confidence = 0.6 + 0.01 * ((seed + f) % 5);
  return er;
}

EventContext DrillContext(uint64_t seed) {
  EventContext ctx;
  ctx.event_id = StrFormat("drill-%llu", (unsigned long long)seed);
  ctx.location = "lab";
  ctx.occasion = "corpus drill";
  ctx.num_participants = 4;
  return ctx;
}

/// Batch `b` of the schedule: 1-4 records, mixed types, frames strictly
/// increasing across batches (3 frames per batch keeps ordering valid).
RecordBatch DrillBatch(uint64_t seed, int b) {
  RecordBatch batch;
  const int base = 3 * b;
  batch.lookat.push_back(DrillLookAt(seed, base));
  if (b % 2 == 0) batch.lookat.push_back(DrillLookAt(seed, base + 1));
  batch.overall.push_back(DrillOverall(seed, base));
  if (b % 3 == 0) batch.emotions.push_back(DrillEmotion(seed, base));
  return batch;
}

Status ApplyStepToStore(uint64_t seed, int step, DurableEventStore* store) {
  if (step == 0) return store->SetContext(DrillContext(seed));
  if (step == kCheckpointAfterStep) return store->Checkpoint();
  const int b = (step < kCheckpointAfterStep ? step : step - 1) - 1;
  return store->AppendBatch(DrillBatch(seed, b));
}

void ApplyStepToRepo(uint64_t seed, int step, MetadataRepository* repo) {
  if (step == 0) {
    repo->SetContext(DrillContext(seed));
    return;
  }
  if (step == kCheckpointAfterStep) return;
  const int b = (step < kCheckpointAfterStep ? step : step - 1) - 1;
  const RecordBatch batch = DrillBatch(seed, b);
  for (const LookAtRecord& r : batch.lookat) {
    ASSERT_TRUE(repo->AddLookAt(r).ok());
  }
  for (const EmotionRecord& r : batch.emotions) {
    ASSERT_TRUE(repo->AddEmotion(r).ok());
  }
  for (const OverallEmotionRecord& r : batch.overall) {
    ASSERT_TRUE(repo->AddOverallEmotion(r).ok());
  }
}

/// Frame queries every drill verifies; together they touch every
/// predicate family and the time index.
std::vector<FrameMatch> RunQuery(const MetadataRepository& repo,
                                 const char* text) {
  auto query = ParseQuery(text, &repo);
  EXPECT_TRUE(query.ok()) << text << ": " << query.status().ToString();
  return query.ok() ? query.value().Execute() : std::vector<FrameMatch>{};
}

void ExpectQueriesBitIdentical(const MetadataRepository& got,
                               const MetadataRepository& want) {
  for (const char* text :
       {"look(P1, P2)", "watched(P1)", "oh >= 0.4", "time[0.2, 1.1)",
        "feel(P1, happy)", "time[0.3, 0.9) & valence >= -0.05"}) {
    EXPECT_EQ(RunQuery(got, text), RunQuery(want, text)) << text;
  }
}

TEST(CorpusDrill, BatchedIngestPowerCutAtEveryFrameBoundary) {
  FileSystem* base = FileSystem::Default();
  int drills = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    // Probe run: the journal frame boundaries are the byte offsets
    // after each acked step.
    std::vector<long long> boundaries;
    {
      const std::string dir = FreshDir(
          StrFormat("corpus_drill_probe_%llu", (unsigned long long)seed));
      FaultyFileSystem probe_fs(base, FileFaultSpec{});
      DurableStoreOptions options;
      options.fs = &probe_fs;
      auto store = DurableEventStore::Open(dir, options);
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      boundaries.push_back(probe_fs.bytes_appended());
      for (int step = 0; step < kDrillSteps; ++step) {
        ASSERT_TRUE(ApplyStepToStore(seed, step, store.value().get()).ok());
        boundaries.push_back(probe_fs.bytes_appended());
      }
      ASSERT_TRUE(store.value()->Close().ok());
    }

    // Crash points: every boundary plus a tear a few bytes into the
    // following append — a torn batch frame must vanish on recovery.
    std::vector<long long> crash_points;
    for (size_t i = 0; i < boundaries.size(); ++i) {
      crash_points.push_back(boundaries[i]);
      if (i + 1 < boundaries.size() && boundaries[i + 1] > boundaries[i]) {
        crash_points.push_back(
            boundaries[i] +
            std::min<long long>(3, boundaries[i + 1] - boundaries[i] - 1));
      }
    }
    std::sort(crash_points.begin(), crash_points.end());
    crash_points.erase(
        std::unique(crash_points.begin(), crash_points.end()),
        crash_points.end());

    for (size_t ci = 0; ci < crash_points.size(); ++ci) {
      const long long crash_at = crash_points[ci];
      SCOPED_TRACE(StrFormat("seed %llu crash_after_bytes %lld",
                             (unsigned long long)seed, crash_at));
      const std::string dir = FreshDir(StrFormat(
          "corpus_drill_%llu_%zu", (unsigned long long)seed, ci));
      FileFaultSpec spec;
      spec.seed = seed;
      spec.crash_after_bytes = crash_at;
      FaultyFileSystem faulty(base, spec);
      DurableStoreOptions options;
      options.fs = &faulty;

      int acked_steps = 0;
      {
        auto store = DurableEventStore::Open(dir, options);
        if (store.ok()) {
          for (int step = 0; step < kDrillSteps; ++step) {
            Status s = ApplyStepToStore(seed, step, store.value().get());
            if (!s.ok()) break;  // the crash: the writer is dead
            ++acked_steps;
          }
          store.value().reset();  // killed, not closed
        }
      }
      // Every other drill also loses unsynced data: AppendBatch syncs
      // once per batch (FsyncPolicy::kEveryRecord), so acked == synced
      // and the power cut must not change the outcome.
      if (ci % 2 == 1) {
        ASSERT_TRUE(faulty.LoseUnsyncedData().ok());
      }

      auto recovered = DurableEventStore::Open(dir);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      EXPECT_TRUE(recovered.value()->broken().ok());

      MetadataRepository expected;
      for (int step = 0; step < acked_steps; ++step) {
        ApplyStepToRepo(seed, step, &expected);
      }
      // Zero acked loss, zero dupes: the recovered logical state is
      // byte-identical to replaying exactly the acked batches.
      EXPECT_EQ(
          StateBytes(recovered.value()->repository(), "corpus_drill_got"),
          StateBytes(expected, "corpus_drill_want"));
      ExpectQueriesBitIdentical(recovered.value()->repository(), expected);

      // A recovered store accepts new batches.
      RecordBatch tail;
      tail.lookat.push_back(DrillLookAt(seed, 1000));
      EXPECT_TRUE(recovered.value()->AppendBatch(tail).ok());
      ++drills;
    }
  }
  EXPECT_GE(drills, 6 * kDrillSteps);
}

TEST(CorpusDrill, SealCrashLeavesCorpusAsIfSealNeverHappened) {
  FileSystem* base = FileSystem::Default();
  const uint64_t seed = 11;

  // Oracle: an uninterrupted ingest + seal, and its query results.
  std::string want_state;
  std::vector<FrameMatch> want_matches;
  long long total_bytes = 0;
  {
    const std::string dir = FreshDir("corpus_seal_oracle");
    FaultyFileSystem meter(base, FileFaultSpec{});
    CorpusOptions options;
    options.fs = &meter;
    auto corpus = EventCorpus::Open(dir, options);
    ASSERT_TRUE(corpus.ok());
    auto store = corpus.value()->BeginShard(DrillContext(seed).event_id);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->SetContext(DrillContext(seed)).ok());
    for (int b = 0; b < kDrillBatches; ++b) {
      ASSERT_TRUE(store.value()->AppendBatch(DrillBatch(seed, b)).ok());
    }
    ASSERT_TRUE(
        corpus.value()->SealShard(DrillContext(seed).event_id).ok());
    total_bytes = meter.bytes_appended();

    auto spec = ParseCorpusQuery("events : look(P1, P2)");
    ASSERT_TRUE(spec.ok());
    auto result = corpus.value()->Query(spec.value());
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.value().events.size(), 1u);
    want_matches = result.value().events[0].frames;
    ASSERT_FALSE(want_matches.empty());
    auto repo = DurableEventStore::LoadState(
        base, JoinPath(dir, result.value().events[0].shard_dir));
    ASSERT_TRUE(repo.ok());
    want_state = StateBytes(repo.value(), "seal_oracle_state");
  }
  ASSERT_GT(total_bytes, 0);

  // Kill the whole ingest+seal at several byte offsets — including
  // inside the seal's checkpoint and manifest write — then recover.
  int seal_crashes = 0;
  for (long long crash_at = total_bytes - 1; crash_at > 0;
       crash_at -= std::max<long long>(1, total_bytes / 17)) {
    SCOPED_TRACE(StrFormat("crash at byte %lld of %lld", crash_at,
                           total_bytes));
    const std::string dir =
        FreshDir(StrFormat("corpus_seal_crash_%lld", crash_at));
    bool sealed = false;
    {
      FileFaultSpec spec;
      spec.seed = seed;
      spec.crash_after_bytes = crash_at;
      FaultyFileSystem faulty(base, spec);
      CorpusOptions options;
      options.fs = &faulty;
      auto corpus = EventCorpus::Open(dir, options);
      if (corpus.ok()) {
        auto store =
            corpus.value()->BeginShard(DrillContext(seed).event_id);
        if (store.ok()) {
          bool ok = store.value()->SetContext(DrillContext(seed)).ok();
          for (int b = 0; ok && b < kDrillBatches; ++b) {
            ok = store.value()->AppendBatch(DrillBatch(seed, b)).ok();
          }
          if (ok) {
            sealed =
                corpus.value()->SealShard(DrillContext(seed).event_id).ok();
          }
        }
      }
      ASSERT_TRUE(faulty.LoseUnsyncedData().ok());  // power cut too
    }

    // Recovery on the healthy filesystem: either the seal completed and
    // the shard answers queries, or the corpus looks as if the seal
    // never happened — then resume + re-seal must converge to the
    // oracle.
    auto corpus = EventCorpus::Open(dir);
    ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
    if (!sealed) {
      EXPECT_TRUE(corpus.value()->shards().empty())
          << "unsealed shard leaked into the manifest";
      ++seal_crashes;
      auto resumed =
          corpus.value()->ResumeShard(DrillContext(seed).event_id);
      if (!resumed.ok()) {
        // Crashed before the shard directory existed; start over.
        ASSERT_EQ(resumed.status().code(), StatusCode::kNotFound);
        auto store =
            corpus.value()->BeginShard(DrillContext(seed).event_id);
        ASSERT_TRUE(store.ok());
        resumed = store;
      }
      // Re-drive the schedule idempotently: batches are atomic, so the
      // recovered shard holds a prefix of them — append the rest.
      ASSERT_TRUE(resumed.value()->SetContext(DrillContext(seed)).ok());
      const auto& lookat = resumed.value()->repository().lookat_records();
      const int recovered_batches =
          lookat.empty() ? 0 : lookat.back().frame / 3 + 1;
      for (int b = recovered_batches; b < kDrillBatches; ++b) {
        ASSERT_TRUE(
            resumed.value()->AppendBatch(DrillBatch(seed, b)).ok());
      }
      ASSERT_TRUE(
          corpus.value()->SealShard(DrillContext(seed).event_id).ok());
    }
    auto spec = ParseCorpusQuery("events : look(P1, P2)");
    ASSERT_TRUE(spec.ok());
    auto result = corpus.value()->Query(spec.value());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result.value().events.size(), 1u);
    EXPECT_EQ(result.value().events[0].frames, want_matches);
    auto repo = DurableEventStore::LoadState(
        base, JoinPath(dir, result.value().events[0].shard_dir));
    ASSERT_TRUE(repo.ok());
    EXPECT_EQ(StateBytes(repo.value(), "seal_crash_state"), want_state);
  }
  EXPECT_GT(seal_crashes, 0) << "no crash point interrupted the seal";
}

}  // namespace
}  // namespace dievent
