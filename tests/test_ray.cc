// Tests for ray-sphere intersection — paper Eq. 3-5, the core of eye
// contact detection.

#include "geometry/ray.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace dievent {
namespace {

TEST(RaySphere, HeadOnHitHasSymmetricRoots) {
  Ray ray{{0, 0, 0}, {1, 0, 0}};
  Sphere s{{5, 0, 0}, 1.0};
  auto hit = IntersectRaySphere(ray, s);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->d_near, 4.0, 1e-12);
  EXPECT_NEAR(hit->d_far, 6.0, 1e-12);
}

TEST(RaySphere, NonUnitDirectionScalesRoots) {
  // Paper Eq. 5 divides by ||l||^2, so non-unit directions must work.
  Ray ray{{0, 0, 0}, {2, 0, 0}};
  Sphere s{{5, 0, 0}, 1.0};
  auto hit = IntersectRaySphere(ray, s);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->d_near, 2.0, 1e-12);
  EXPECT_NEAR(hit->d_far, 3.0, 1e-12);
  EXPECT_NEAR((ray.At(hit->d_near) - s.center).Norm(), s.radius, 1e-9);
}

TEST(RaySphere, MissReturnsNullopt) {
  Ray ray{{0, 0, 0}, {1, 0, 0}};
  Sphere s{{5, 3, 0}, 1.0};
  EXPECT_FALSE(IntersectRaySphere(ray, s).has_value());
}

TEST(RaySphere, TangentCountsAsMiss) {
  // The paper: w must be strictly positive; tangency is "not looking".
  Ray ray{{0, 1, 0}, {1, 0, 0}};
  Sphere s{{5, 0, 0}, 1.0};
  EXPECT_FALSE(IntersectRaySphere(ray, s).has_value());
}

TEST(RaySphere, ZeroDirectionIsRejected) {
  Ray ray{{0, 0, 0}, {0, 0, 0}};
  Sphere s{{1, 0, 0}, 10.0};
  EXPECT_FALSE(IntersectRaySphere(ray, s).has_value());
}

TEST(RaySphere, SphereBehindOriginHasNegativeRoots) {
  Ray ray{{0, 0, 0}, {1, 0, 0}};
  Sphere s{{-5, 0, 0}, 1.0};
  auto hit = IntersectRaySphere(ray, s);
  ASSERT_TRUE(hit.has_value());
  EXPECT_LT(hit->d_far, 0.0);
}

TEST(LooksAt, TrueForTargetInFront) {
  EXPECT_TRUE(LooksAt(Ray{{0, 0, 0}, {1, 0, 0}}, Sphere{{3, 0, 0}, 0.2}));
}

TEST(LooksAt, FalseForTargetBehind) {
  EXPECT_FALSE(LooksAt(Ray{{0, 0, 0}, {1, 0, 0}}, Sphere{{-3, 0, 0}, 0.2}));
}

TEST(LooksAt, FalseWhenGazeGrazesPast) {
  // Slightly more than the angular radius off-target.
  Sphere head{{2, 0, 0}, 0.12};
  double angular_radius = std::asin(0.12 / 2.0);
  double off = angular_radius * 1.05;
  Ray gaze{{0, 0, 0}, {std::cos(off), std::sin(off), 0}};
  EXPECT_FALSE(LooksAt(gaze, head));
  Ray gaze_on{{0, 0, 0}, {std::cos(angular_radius * 0.9),
                          std::sin(angular_radius * 0.9), 0}};
  EXPECT_TRUE(LooksAt(gaze_on, head));
}

TEST(LooksAt, TrueWhenOriginInsideSphere) {
  EXPECT_TRUE(LooksAt(Ray{{0, 0, 0}, {0, 1, 0}}, Sphere{{0, 0, 0}, 1.0}));
}

TEST(Ray, TransformedMapsOriginAndDirectionDifferently) {
  Pose p(Mat3::RotZ(DegToRad(90)), {10, 0, 0});
  Ray r{{1, 0, 0}, {1, 0, 0}};
  Ray tr = r.Transformed(p);
  EXPECT_NEAR(tr.origin.x, 10, 1e-12);
  EXPECT_NEAR(tr.origin.y, 1, 1e-12);
  EXPECT_NEAR(tr.direction.x, 0, 1e-12);
  EXPECT_NEAR(tr.direction.y, 1, 1e-12);
}

TEST(RaySphere, TransformInvariance) {
  // Paper Eq. 2: the look-at predicate must be frame-independent — the
  // whole point of transforming into a common reference frame.
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    Ray ray{{rng.Uniform(-2, 2), rng.Uniform(-2, 2), rng.Uniform(-2, 2)},
            {rng.Uniform(-1, 1), rng.Uniform(-1, 1), rng.Uniform(-1, 1)}};
    if (ray.direction.Norm() < 1e-3) continue;
    Sphere s{{rng.Uniform(-3, 3), rng.Uniform(-3, 3), rng.Uniform(-3, 3)},
             rng.Uniform(0.05, 0.5)};
    Vec3 axis{rng.Uniform(-1, 1), rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    if (axis.Norm() < 1e-3) axis = {0, 0, 1};
    Pose p = Pose::FromQuaternion(
        Quaternion::FromAxisAngle(axis, rng.Uniform(-3, 3)),
        {rng.Uniform(-5, 5), rng.Uniform(-5, 5), rng.Uniform(-5, 5)});
    Sphere ts{p.TransformPoint(s.center), s.radius};
    EXPECT_EQ(LooksAt(ray, s), LooksAt(ray.Transformed(p), ts)) << i;
  }
}

TEST(Sphere, ContainsBoundaryAndInterior) {
  Sphere s{{0, 0, 0}, 1.0};
  EXPECT_TRUE(s.Contains({0.5, 0, 0}));
  EXPECT_TRUE(s.Contains({1.0, 0, 0}));
  EXPECT_FALSE(s.Contains({1.01, 0, 0}));
}

}  // namespace
}  // namespace dievent
