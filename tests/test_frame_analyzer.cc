// Tests for the adoption path: frames on disk -> ImageSequenceSource ->
// FrameAnalyzer -> look-at matrices, with no simulator in the loop at
// analysis time.

#include "core/frame_analyzer.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/strings.h"
#include "image/pnm_io.h"
#include "render/scene_renderer.h"
#include "sim/scenario.h"
#include "video/image_sequence_source.h"

namespace dievent {
namespace {

std::vector<ParticipantProfile> Profiles(const DiningScene& scene) {
  std::vector<ParticipantProfile> out;
  for (const auto& p : scene.participants()) out.push_back(p.profile);
  return out;
}

TEST(FrameAnalyzer, CreateValidates) {
  DiningScene scene = MakeMeetingScenario();
  auto profiles = Profiles(scene);
  EXPECT_FALSE(
      FrameAnalyzer::Create(nullptr, profiles, {}).ok());
  EXPECT_FALSE(FrameAnalyzer::Create(&scene.rig(), {}, {}).ok());
  EXPECT_FALSE(
      FrameAnalyzer::Create(&scene.rig(), profiles, {}, {0, 17}).ok());
  EXPECT_TRUE(FrameAnalyzer::Create(&scene.rig(), profiles, {}).ok());
}

TEST(FrameAnalyzer, AnalyzeChecksFrameCount) {
  DiningScene scene = MakeMeetingScenario();
  auto analyzer =
      FrameAnalyzer::Create(&scene.rig(), Profiles(scene), {});
  ASSERT_TRUE(analyzer.ok());
  std::vector<ImageRgb> wrong(2, ImageRgb(8, 8, 3));
  EXPECT_EQ(analyzer.value().Analyze(0, wrong).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameAnalyzer, MatchesGroundTruthOnRenderedFrames) {
  DiningScene scene = MakeMeetingScenario();
  FrameAnalyzerOptions opt;
  opt.eye_contact.angular_tolerance_deg = 12.0;
  auto analyzer =
      FrameAnalyzer::Create(&scene.rig(), Profiles(scene), opt);
  ASSERT_TRUE(analyzer.ok());
  for (double t : {10.0, 15.0}) {
    std::vector<ImageRgb> frames;
    for (int c = 0; c < 4; ++c) {
      frames.push_back(RenderViewAt(scene, t, c, RenderOptions{}));
    }
    auto analysis = analyzer.value().Analyze(
        static_cast<int>(t * scene.fps()), frames);
    ASSERT_TRUE(analysis.ok()) << analysis.status();
    auto gt = scene.GroundTruthLookAt(t);
    for (int x = 0; x < 4; ++x) {
      for (int y = 0; y < 4; ++y) {
        if (x != y) {
          EXPECT_EQ(analysis.value().lookat.At(x, y), gt[x][y])
              << t << " " << x << "->" << y;
        }
      }
    }
    EXPECT_EQ(analysis.value().per_camera.size(), 4u);
  }
}

TEST(FrameAnalyzer, CameraSubsetWorks) {
  DiningScene scene = MakeMeetingScenario();
  FrameAnalyzerOptions opt;
  opt.eye_contact.angular_tolerance_deg = 12.0;
  auto analyzer = FrameAnalyzer::Create(&scene.rig(), Profiles(scene),
                                        opt, {0, 2});
  ASSERT_TRUE(analyzer.ok());
  EXPECT_EQ(analyzer.value().cameras(), (std::vector<int>{0, 2}));
  std::vector<ImageRgb> frames = {
      RenderViewAt(scene, 10.0, 0, RenderOptions{}),
      RenderViewAt(scene, 10.0, 2, RenderOptions{})};
  auto analysis = analyzer.value().Analyze(152, frames);
  ASSERT_TRUE(analysis.ok());
  // Two opposite cameras still recover the Fig. 7 configuration.
  EXPECT_TRUE(analysis.value().lookat.At(0, 2));
  EXPECT_TRUE(analysis.value().lookat.At(2, 0));
}

TEST(ImageSequenceSource, OpenValidates) {
  EXPECT_FALSE(ImageSequenceSource::Open("no_placeholder.ppm", 10).ok());
  EXPECT_FALSE(
      ImageSequenceSource::Open("/nope/frame_%04d.ppm", 10).ok());
  EXPECT_FALSE(ImageSequenceSource::Open("f_%d.ppm", 0.0).ok());
}

TEST(ImageSequenceSource, EndToEndFromDisk) {
  // Render 5 frames of camera 1 to disk, reopen them as a sequence, and
  // analyze — the full real-footage workflow.
  DiningScene scene = MakeMeetingScenario();
  std::string dir = testing::TempDir() + "/seq";
  std::filesystem::create_directories(dir);
  const double fps = scene.fps();
  for (int f = 0; f < 5; ++f) {
    ImageRgb frame =
        RenderViewAt(scene, (150 + f) / fps, 1, RenderOptions{});
    ASSERT_TRUE(
        WritePpm(frame, dir + StrFormat("/cam1_%04d.ppm", f)).ok());
  }
  auto source = ImageSequenceSource::Open(dir + "/cam1_%04d.ppm", fps);
  ASSERT_TRUE(source.ok()) << source.status();
  EXPECT_EQ(source.value().NumFrames(), 5);
  auto frame = source.value().GetFrame(3);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().image.width(), 640);
  EXPECT_NEAR(frame.value().timestamp_s, 3 / fps, 1e-9);
  EXPECT_FALSE(source.value().GetFrame(5).ok());

  // Single-camera analysis of the on-disk frames.
  FrameAnalyzerOptions opt;
  opt.eye_contact.angular_tolerance_deg = 12.0;
  auto analyzer = FrameAnalyzer::Create(&scene.rig(), Profiles(scene),
                                        opt, {1});
  ASSERT_TRUE(analyzer.ok());
  auto analysis =
      analyzer.value().Analyze(0, {source.value().GetFrame(0).value().image});
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis.value().per_camera[0].size(), 4u);  // all heads seen
}

TEST(FrameAnalyzer, ResetTrackingRestartsTrackIds) {
  DiningScene scene = MakeMeetingScenario();
  auto analyzer =
      FrameAnalyzer::Create(&scene.rig(), Profiles(scene), {}, {0});
  ASSERT_TRUE(analyzer.ok());
  std::vector<ImageRgb> frames = {
      RenderViewAt(scene, 1.0, 0, RenderOptions{})};
  ASSERT_TRUE(analyzer.value().Analyze(0, frames).ok());
  analyzer.value().ResetTracking();
  // Re-analyzing frame 0 after reset must not blow up or double-track.
  auto again = analyzer.value().Analyze(0, frames);
  ASSERT_TRUE(again.ok());
}

}  // namespace
}  // namespace dievent
