#include "metadata/event_collection.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/pipeline.h"
#include "sim/scenario.h"

namespace dievent {
namespace {

MetadataRepository EventWithMood(const std::string& id, Emotion mood,
                                 int frames) {
  MetadataRepository repo;
  EventContext ctx;
  ctx.event_id = id;
  ctx.num_participants = 2;
  ctx.participant_names = {"A", "B"};
  repo.SetContext(ctx);
  repo.set_fps(10.0);
  for (int f = 0; f < frames; ++f) {
    LookAtMatrix m(2);
    if (f < frames / 2) {
      m.Set(0, 1, true);
      m.Set(1, 0, true);
    }
    EXPECT_TRUE(
        repo.AddLookAt(LookAtRecord::FromMatrix(f, f / 10.0, m)).ok());
    OverallEmotionRecord oe;
    oe.frame = f;
    oe.timestamp_s = f / 10.0;
    oe.overall_happiness = mood == Emotion::kHappy ? 1.0 : 0.0;
    oe.mean_valence = EmotionValence(mood);
    oe.observed = 2;
    EXPECT_TRUE(repo.AddOverallEmotion(oe).ok());
  }
  return repo;
}

TEST(EventStats, AggregatesOneEvent) {
  MetadataRepository repo = EventWithMood("good-night", Emotion::kHappy,
                                          100);
  EventStats stats = ComputeEventStats(repo);
  EXPECT_EQ(stats.event_id, "good-night");
  EXPECT_EQ(stats.frames, 100);
  EXPECT_NEAR(stats.duration_s, 10.0, 1e-9);
  EXPECT_NEAR(stats.mean_overall_happiness, 1.0, 1e-9);
  EXPECT_NEAR(stats.mean_valence, 1.0, 1e-9);
  // EC on the first 50 frames = 5 seconds.
  EXPECT_NEAR(stats.eye_contact_s, 5.0, 0.2);
  EXPECT_EQ(stats.dominant, "A");  // ties break to lower id
}

TEST(EventCollection, RanksBySatisfaction) {
  EventCollection collection;
  collection.Add(
      ComputeEventStats(EventWithMood("sad", Emotion::kSad, 50)));
  collection.Add(
      ComputeEventStats(EventWithMood("happy", Emotion::kHappy, 50)));
  collection.Add(
      ComputeEventStats(EventWithMood("flat", Emotion::kNeutral, 50)));
  auto ranked = collection.RankedBySatisfaction();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].event_id, "happy");
  EXPECT_EQ(ranked[1].event_id, "flat");
  EXPECT_EQ(ranked[2].event_id, "sad");
}

TEST(EventCollection, ComparisonTableListsAllEvents) {
  EventCollection collection;
  collection.Add(
      ComputeEventStats(EventWithMood("tue", Emotion::kHappy, 30)));
  collection.Add(
      ComputeEventStats(EventWithMood("wed", Emotion::kSad, 30)));
  std::string table = collection.ComparisonTable();
  EXPECT_NE(table.find("tue"), std::string::npos);
  EXPECT_NE(table.find("wed"), std::string::npos);
  EXPECT_NE(table.find("dominant"), std::string::npos);
}

TEST(EventCollection, LoadDirectoryRoundTrip) {
  std::string dir = testing::TempDir() + "/events";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(EventWithMood("e1", Emotion::kHappy, 40)
                  .Save(dir + "/e1.dmr")
                  .ok());
  ASSERT_TRUE(
      EventWithMood("e2", Emotion::kSad, 40).Save(dir + "/e2.dmr").ok());
  // Non-.dmr and corrupt files must be skipped.
  std::ofstream(dir + "/notes.txt") << "ignore me";
  std::ofstream(dir + "/broken.dmr") << "not a repo";

  EventCollection collection;
  auto loaded = collection.LoadDirectory(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value(), 2);
  EXPECT_EQ(collection.NumEvents(), 2);
}

TEST(EventCollection, LoadDirectoryErrors) {
  EventCollection collection;
  EXPECT_EQ(collection.LoadDirectory("/no/such/dir").status().code(),
            StatusCode::kIoError);
  // A directory with only corrupt .dmr files is a Corruption error.
  std::string dir = testing::TempDir() + "/broken_events";
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/a.dmr") << "garbage";
  EXPECT_EQ(collection.LoadDirectory(dir).status().code(),
            StatusCode::kCorruption);
}

TEST(EventCollection, EndToEndWithPipeline) {
  // Two pipeline runs of different emotional scripts rank correctly.
  auto run = [](double duration) {
    DiningScene scene = MakeDinnerScenario(4, duration, 10.0);
    PipelineOptions opt;
    opt.mode = PipelineMode::kGroundTruth;
    opt.parse_video = false;
    MetadataRepository repo;
    auto report = DiEventPipeline(&scene, opt).Run(&repo);
    EXPECT_TRUE(report.ok());
    return repo;
  };
  MetadataRepository a = run(30.0);
  EventCollection collection;
  EventStats stats = ComputeEventStats(a);
  EXPECT_EQ(stats.participants, 4);
  EXPECT_GT(stats.frames, 0);
  collection.Add(stats);
  EXPECT_EQ(collection.NumEvents(), 1);
}

}  // namespace
}  // namespace dievent
