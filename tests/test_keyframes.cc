#include "video/keyframes.h"

#include <gtest/gtest.h>

#include "video/shot_detection.h"

namespace dievent {
namespace {

Histogram Solid(double a, double b) {
  Histogram h;
  h.bins = {a, b, 1.0 - a - b};
  return h;
}

TEST(KeyFrames, StaticShotYieldsOneKeyFrame) {
  std::vector<Histogram> sigs(20, Solid(0.5, 0.3));
  Shot shot{0, 20, {}};
  auto keys = ExtractKeyFrames(sigs, shot, KeyFrameOptions{});
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], 0);
}

TEST(KeyFrames, DriftTriggersNewKeyFrames) {
  std::vector<Histogram> sigs;
  for (int i = 0; i < 30; ++i) {
    sigs.push_back(Solid(0.9 - 0.03 * i, 0.05));  // steady drift
  }
  Shot shot{0, 30, {}};
  KeyFrameOptions opt;
  opt.drift_threshold = 0.1;
  auto keys = ExtractKeyFrames(sigs, shot, opt);
  EXPECT_GT(keys.size(), 2u);
  EXPECT_EQ(keys[0], 0);
  // Keys are strictly increasing and within the shot.
  for (size_t i = 1; i < keys.size(); ++i) {
    EXPECT_GT(keys[i], keys[i - 1]);
    EXPECT_LT(keys[i], 30);
  }
}

TEST(KeyFrames, CapLimitsCount) {
  std::vector<Histogram> sigs;
  for (int i = 0; i < 50; ++i) sigs.push_back(Solid(i % 2 ? 0.9 : 0.1, 0.05));
  Shot shot{0, 50, {}};
  KeyFrameOptions opt;
  opt.drift_threshold = 0.05;
  opt.max_key_frames_per_shot = 3;
  auto keys = ExtractKeyFrames(sigs, shot, opt);
  EXPECT_EQ(keys.size(), 3u);
}

TEST(KeyFrames, RespectsShotBounds) {
  std::vector<Histogram> sigs;
  for (int i = 0; i < 30; ++i) sigs.push_back(Solid(i < 15 ? 0.9 : 0.1, 0.05));
  Shot shot{15, 30, {}};
  auto keys = ExtractKeyFrames(sigs, shot, KeyFrameOptions{});
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys[0], 15);
  for (int k : keys) {
    EXPECT_GE(k, 15);
    EXPECT_LT(k, 30);
  }
}

TEST(KeyFrames, DegenerateShotsYieldNothing) {
  std::vector<Histogram> sigs(5, Solid(0.5, 0.3));
  EXPECT_TRUE(ExtractKeyFrames(sigs, Shot{3, 3, {}}, {}).empty());
  EXPECT_TRUE(ExtractKeyFrames(sigs, Shot{0, 10, {}}, {}).empty());
}

TEST(KeyFrames, SourceOverloadChecksBounds) {
  std::vector<ImageRgb> frames(4, ImageRgb(8, 8, 3));
  MemoryVideoSource src(std::move(frames), 10.0);
  Shot bad{0, 10, {}};
  EXPECT_EQ(ExtractKeyFrames(&src, bad, {}).status().code(),
            StatusCode::kOutOfRange);
  Shot good{0, 4, {}};
  auto keys = ExtractKeyFrames(&src, good, {});
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys.value().size(), 1u);
}

}  // namespace
}  // namespace dievent
