#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

namespace dievent {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ClampsThreadCount) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < 50; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  // Zero / single-element cases.
  pool.ParallelFor(0, [&](int) { FAIL(); });
  std::atomic<int> one{0};
  pool.ParallelFor(1, [&](int i) { one.fetch_add(i + 1); });
  EXPECT_EQ(one.load(), 1);
}

TEST(ThreadPool, ActuallyRunsConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  pool.ParallelFor(4, [&](int) {
    int now = concurrent.fetch_add(1) + 1;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    concurrent.fetch_sub(1);
  });
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPool, WaitWithNothingPendingReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
    // No explicit Wait: destruction must still run everything.
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.ParallelFor(10, [&](int) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(TaskGroup, WaitsOnlyForItsOwnTasks) {
  ThreadPool pool(2);
  std::atomic<int> slow{0};
  std::atomic<int> fast{0};
  TaskGroup slow_group(&pool);
  // A slow unrelated task submitted straight to the pool must not hold
  // up the group's Wait.
  pool.Submit([&slow] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    slow.fetch_add(1);
  });
  for (int i = 0; i < 8; ++i) {
    slow_group.Submit([&fast] { fast.fetch_add(1); });
  }
  slow_group.Wait();
  EXPECT_EQ(fast.load(), 8);
  pool.Wait();
  EXPECT_EQ(slow.load(), 1);
}

TEST(TaskGroup, WaitWithNothingSubmittedReturns) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.Wait();  // must not hang
  group.Wait();  // idempotent
  SUCCEED();
}

TEST(TaskGroup, DestructorWaits) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  {
    TaskGroup group(&pool);
    for (int i = 0; i < 10; ++i) {
      group.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
    // No explicit Wait: destruction must block until every task ran.
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(TaskGroup, ManyConcurrentGroupsRetireIndependently) {
  // The pipelined executor keeps one group per in-flight frame; stress
  // the create/submit/wait/destroy cycle with interleaved lifetimes.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::unique_ptr<TaskGroup>> groups;
  for (int round = 0; round < 50; ++round) {
    groups.push_back(std::make_unique<TaskGroup>(&pool));
    for (int i = 0; i < 4; ++i) {
      groups.back()->Submit([&total] { total.fetch_add(1); });
    }
    if (groups.size() >= 4) {
      groups.front()->Wait();
      groups.erase(groups.begin());
    }
  }
  groups.clear();  // destructors wait for the stragglers
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, ConcurrentParallelForBatchesFromManyThreads) {
  // ParallelFor is built on TaskGroup, so concurrent batches must only
  // block on their own iterations (exercised under TSan by the
  // sanitize build).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(400);
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&pool, &hits, s] {
      for (int batch = 0; batch < 5; ++batch) {
        pool.ParallelFor(20, [&hits, s, batch](int i) {
          hits[(s * 5 + batch) * 20 + i].fetch_add(1);
        });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (int i = 0; i < 400; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

}  // namespace
}  // namespace dievent
