#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

namespace dievent {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ClampsThreadCount) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < 50; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  // Zero / single-element cases.
  pool.ParallelFor(0, [&](int) { FAIL(); });
  std::atomic<int> one{0};
  pool.ParallelFor(1, [&](int i) { one.fetch_add(i + 1); });
  EXPECT_EQ(one.load(), 1);
}

TEST(ThreadPool, ActuallyRunsConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  pool.ParallelFor(4, [&](int) {
    int now = concurrent.fetch_add(1) + 1;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    concurrent.fetch_sub(1);
  });
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPool, WaitWithNothingPendingReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
    // No explicit Wait: destruction must still run everything.
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.ParallelFor(10, [&](int) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace dievent
