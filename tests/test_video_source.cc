#include "video/video_source.h"

#include <gtest/gtest.h>

#include "sim/scenario.h"
#include "video/synthetic_source.h"

namespace dievent {
namespace {

std::vector<ImageRgb> ThreeFrames() {
  std::vector<ImageRgb> frames;
  for (int i = 0; i < 3; ++i) {
    ImageRgb f(4, 4, 3);
    f.Fill(static_cast<uint8_t>(i * 10));
    frames.push_back(std::move(f));
  }
  return frames;
}

TEST(MemoryVideoSource, ServesFramesWithTimestamps) {
  MemoryVideoSource src(ThreeFrames(), 10.0);
  EXPECT_EQ(src.NumFrames(), 3);
  EXPECT_DOUBLE_EQ(src.Fps(), 10.0);
  auto f1 = src.GetFrame(1);
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(f1.value().index, 1);
  EXPECT_DOUBLE_EQ(f1.value().timestamp_s, 0.1);
  EXPECT_EQ(f1.value().image.at(0, 0, 0), 10);
}

TEST(MemoryVideoSource, OutOfRangeIsError) {
  MemoryVideoSource src(ThreeFrames(), 10.0);
  EXPECT_EQ(src.GetFrame(-1).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(src.GetFrame(3).status().code(), StatusCode::kOutOfRange);
}

TEST(MultiCameraSource, RequiresSynchronizedSources) {
  std::vector<std::unique_ptr<VideoSource>> ok_sources;
  ok_sources.push_back(
      std::make_unique<MemoryVideoSource>(ThreeFrames(), 10.0));
  ok_sources.push_back(
      std::make_unique<MemoryVideoSource>(ThreeFrames(), 10.0));
  EXPECT_TRUE(MultiCameraSource::Create(std::move(ok_sources)).ok());

  std::vector<std::unique_ptr<VideoSource>> bad_fps;
  bad_fps.push_back(
      std::make_unique<MemoryVideoSource>(ThreeFrames(), 10.0));
  bad_fps.push_back(
      std::make_unique<MemoryVideoSource>(ThreeFrames(), 25.0));
  auto mismatch = MultiCameraSource::Create(std::move(bad_fps));
  ASSERT_FALSE(mismatch.ok());
  // The observed rates must be in the message so a degraded-rig log is
  // actionable.
  EXPECT_NE(mismatch.status().message().find("25"), std::string::npos);
  EXPECT_NE(mismatch.status().message().find("10"), std::string::npos);

  EXPECT_FALSE(MultiCameraSource::Create({}).ok());
}

TEST(MultiCameraSource, FpsComparisonToleratesEncoderRounding) {
  // Exact != on doubles would reject 10.0 vs 10.0 + 1e-9 — the same
  // nominal rate with container rounding.
  std::vector<std::unique_ptr<VideoSource>> sources;
  sources.push_back(
      std::make_unique<MemoryVideoSource>(ThreeFrames(), 10.0));
  sources.push_back(
      std::make_unique<MemoryVideoSource>(ThreeFrames(), 10.0 + 1e-9));
  EXPECT_TRUE(MultiCameraSource::Create(std::move(sources)).ok());
}

TEST(MultiCameraSource, GetFramesReturnsOnePerCamera) {
  std::vector<std::unique_ptr<VideoSource>> sources;
  sources.push_back(
      std::make_unique<MemoryVideoSource>(ThreeFrames(), 10.0));
  sources.push_back(
      std::make_unique<MemoryVideoSource>(ThreeFrames(), 10.0));
  auto multi = MultiCameraSource::Create(std::move(sources));
  ASSERT_TRUE(multi.ok());
  auto set = multi.value().GetFrames(2);
  ASSERT_TRUE(set.ok());
  ASSERT_EQ(set.value().NumCameras(), 2);
  EXPECT_TRUE(set.value().FullyHealthy());
  EXPECT_EQ(set.value().NumUsable(), 2);
  EXPECT_EQ(set.value().cameras[0].status, CameraFrameStatus::kFresh);
  EXPECT_EQ(set.value().cameras[0].frame.index, 2);
  EXPECT_EQ(set.value().cameras[1].frame.index, 2);

  EXPECT_EQ(multi.value().GetFrames(3).status().code(),
            StatusCode::kOutOfRange);
}

TEST(SyntheticVideoSource, MatchesSceneDimensions) {
  DiningScene scene = MakeMeetingScenario();
  SyntheticVideoSource src(&scene, 0);
  EXPECT_EQ(src.NumFrames(), 610);
  EXPECT_DOUBLE_EQ(src.Fps(), 15.25);
  auto f = src.GetFrame(0);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value().image.width(), 640);
}

TEST(SyntheticVideoSource, DeterministicWithoutNoise) {
  DiningScene scene = MakeMeetingScenario();
  SyntheticVideoSource a(&scene, 0), b(&scene, 0);
  EXPECT_TRUE(a.GetFrame(7).value().image == b.GetFrame(7).value().image);
}

TEST(SyntheticVideoSource, NoiseSeedReproducible) {
  DiningScene scene = MakeMeetingScenario();
  RenderOptions opt;
  opt.noise_sigma = 5.0;
  SyntheticVideoSource a(&scene, 0, opt, {}, 123);
  SyntheticVideoSource b(&scene, 0, opt, {}, 123);
  SyntheticVideoSource c(&scene, 0, opt, {}, 456);
  EXPECT_TRUE(a.GetFrame(5).value().image == b.GetFrame(5).value().image);
  EXPECT_FALSE(a.GetFrame(5).value().image == c.GetFrame(5).value().image);
}

TEST(SyntheticVideoSource, BackgroundScriptChangesFrames) {
  DiningScene scene = MakeMeetingScenario();
  RenderScripts scripts;
  ASSERT_TRUE(scripts.background.Add(0.0, 1.0, Rgb{10, 10, 10}).ok());
  ASSERT_TRUE(scripts.background.Add(1.0, 2.0, Rgb{200, 200, 200}).ok());
  SyntheticVideoSource src(&scene, 0, RenderOptions{}, scripts);
  ImageRgb early = src.GetFrame(0).value().image;
  ImageRgb late = src.GetFrame(20).value().image;  // t = 1.31 s
  EXPECT_EQ(GetRgb(early, 0, 0), (Rgb{10, 10, 10}));
  EXPECT_EQ(GetRgb(late, 0, 0), (Rgb{200, 200, 200}));
}

TEST(SyntheticVideoSource, ForAllCamerasBuildsSynchronizedBundle) {
  DiningScene scene = MakeMeetingScenario();
  auto multi = SyntheticVideoSource::ForAllCameras(&scene);
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi.value().NumCameras(), 4);
  EXPECT_EQ(multi.value().NumFrames(), 610);
}

}  // namespace
}  // namespace dievent
