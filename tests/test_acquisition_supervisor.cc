// Async acquisition supervisor tests: a stalled camera must cost the
// caller the configured deadline (not the stall), the watchdog must
// interrupt and replace a wedged reader, readmission cooldowns must grow
// under the backoff schedule, and delivered timestamps must land back on
// the master clock. The SPSC queue and backoff primitives are pinned
// directly.

#include "video/acquisition_supervisor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "analysis/eye_contact.h"
#include "common/backoff.h"
#include "common/spsc_queue.h"
#include "video/clock_resync.h"
#include "video/fault_injection.h"
#include "video/parser.h"
#include "video/video_source.h"

namespace dievent {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<ImageRgb> GrayFrames(int n, int w = 8, int h = 8) {
  std::vector<ImageRgb> frames;
  for (int i = 0; i < n; ++i) {
    ImageRgb f(w, h, 3);
    f.Fill(static_cast<uint8_t>(10 + i));
    frames.push_back(std::move(f));
  }
  return frames;
}

std::unique_ptr<VideoSource> Camera(FaultSpec spec, int n = 50) {
  return std::make_unique<FaultyVideoSource>(
      std::make_unique<MemoryVideoSource>(GrayFrames(n), 10.0), spec);
}

// --- SPSC queue ----------------------------------------------------------

TEST(SpscQueue, FifoOrderAndCapacity) {
  SpscQueue<int> q(4);
  EXPECT_TRUE(q.EmptyApprox());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(int(i)));
  EXPECT_FALSE(q.TryPush(99));  // full
  EXPECT_EQ(q.SizeApprox(), 4u);
  for (int i = 0; i < 4; ++i) {
    auto v = q.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(SpscQueue, SurvivesConcurrentProducerConsumer) {
  SpscQueue<int> q(8);
  constexpr int kCount = 20000;
  std::thread producer([&] {
    for (int i = 0; i < kCount;) {
      if (q.TryPush(int(i))) ++i;
    }
  });
  int expected = 0;
  while (expected < kCount) {
    if (auto v = q.TryPop()) {
      ASSERT_EQ(*v, expected);  // order and value preserved
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(q.EmptyApprox());
}

// --- backoff -------------------------------------------------------------

TEST(Backoff, DeterministicExponentialWithBoundedJitter) {
  BackoffPolicy policy;
  policy.base_s = 0.010;
  policy.max_s = 0.100;
  policy.multiplier = 2.0;
  policy.jitter = 0.5;
  policy.seed = 9;

  EXPECT_EQ(policy.Delay(0, 0, 0), 0.0);
  double prev_nominal = 0.0;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const double d = policy.Delay(attempt, /*stream=*/2, /*op=*/7);
    EXPECT_DOUBLE_EQ(d, policy.Delay(attempt, 2, 7));  // pure function
    const double nominal =
        std::min(policy.max_s, policy.base_s * std::pow(2.0, attempt - 1));
    EXPECT_GE(d, nominal * 0.5);
    EXPECT_LE(d, nominal * 1.5);
    EXPECT_GE(nominal, prev_nominal);
    prev_nominal = nominal;
  }
  // Different streams decorrelate.
  EXPECT_NE(policy.Delay(3, 2, 7), policy.Delay(3, 3, 7));
}

// --- timestamp resampler -------------------------------------------------

TEST(TimestampResampler, RemovesSubHalfPeriodJitterExactly) {
  TimestampResampler resampler(10.0);  // period 0.1s
  for (int f = 0; f < 40; ++f) {
    VideoFrame frame;
    frame.index = f;
    frame.timestamp_s = f * 0.1 + (f % 2 == 0 ? 0.03 : -0.04);
    resampler.Align(f, &frame);
    EXPECT_DOUBLE_EQ(frame.timestamp_s, f * 0.1);
  }
  EXPECT_EQ(resampler.stats().corrections, 40);
  EXPECT_EQ(resampler.stats().misalignments, 0);
  EXPECT_NEAR(resampler.stats().max_jitter_s, 0.04, 1e-12);
  EXPECT_DOUBLE_EQ(resampler.stats().max_residual_s, 0.0);
}

TEST(TimestampResampler, CountsMisalignmentsBeyondHalfPeriod) {
  TimestampResampler resampler(10.0);
  VideoFrame frame;
  frame.index = 5;
  frame.timestamp_s = 5 * 0.1 + 0.12;  // more than one tick off
  resampler.Align(5, &frame);
  EXPECT_DOUBLE_EQ(frame.timestamp_s, 6 * 0.1);  // snapped to nearest tick
  EXPECT_EQ(resampler.stats().misalignments, 1);
}

TEST(TimestampResampler, DriftEstimateTracksConstantSkew) {
  TimestampResampler resampler(10.0, /*drift_alpha=*/0.2);
  for (int f = 0; f < 60; ++f) {
    VideoFrame frame;
    frame.index = f;
    frame.timestamp_s = f * 0.1 + 0.02;  // constant +20ms skew
    resampler.Align(f, &frame);
  }
  EXPECT_NEAR(resampler.stats().drift_estimate_s, 0.02, 1e-4);
}

TEST(TimestampResampler, DriftFeedbackRetunesTheMasterClockMapping) {
  // A purely skewed camera (+20ms on every frame, no jitter) should cost
  // one correction per frame only until the feedback loop folds the skew
  // into the standing clock offset; afterwards the camera reads as clean.
  // drift_alpha = 1 makes the EWMA equal the last deviation, so the
  // retune fires on the first eligible frame and the folded offset is the
  // skew itself up to float residue.
  DriftFeedbackOptions feedback;
  feedback.enabled = true;
  feedback.activation_s = 0.005;
  feedback.min_frames = 10;
  TimestampResampler resampler(10.0, /*drift_alpha=*/1.0, feedback);
  for (int f = 0; f < 30; ++f) {
    VideoFrame frame;
    frame.index = f;
    frame.timestamp_s = f * 0.1 + 0.02;
    resampler.Align(f, &frame);
    if (f >= 10) {
      // Post-retune the offset removes the skew before alignment; the
      // sub-noise-floor residue is delivered uncorrected.
      EXPECT_NEAR(frame.timestamp_s, f * 0.1, 1e-9) << "frame " << f;
    } else {
      EXPECT_DOUBLE_EQ(frame.timestamp_s, f * 0.1) << "frame " << f;
    }
  }
  EXPECT_EQ(resampler.stats().retunes, 1);
  EXPECT_EQ(resampler.stats().corrections, 10);  // frames 0..9 only
  EXPECT_EQ(resampler.stats().misalignments, 0);
  EXPECT_NEAR(resampler.stats().clock_offset_s, 0.02, 1e-12);
  EXPECT_NEAR(resampler.stats().drift_estimate_s, 0.0, 1e-9);
}

TEST(TimestampResampler, DriftFeedbackIsOffByDefault) {
  // Without the opt-in, a constant skew keeps costing a correction per
  // frame and the mapping is never retuned — PR 1 behavior, unchanged.
  TimestampResampler resampler(10.0, /*drift_alpha=*/1.0);
  for (int f = 0; f < 30; ++f) {
    VideoFrame frame;
    frame.index = f;
    frame.timestamp_s = f * 0.1 + 0.02;
    resampler.Align(f, &frame);
  }
  EXPECT_EQ(resampler.stats().retunes, 0);
  EXPECT_DOUBLE_EQ(resampler.stats().clock_offset_s, 0.0);
  EXPECT_EQ(resampler.stats().corrections, 30);
}

// --- deadline conversion -------------------------------------------------

TEST(AcquisitionSupervisor, StalledCameraBecomesDeadlineBoundedHold) {
  // Camera 0 stalls 2s on frame 10; the synchronized read must cost the
  // 50ms deadline, not the stall, and the slot degrades to an ordinary
  // held frame.
  FaultSpec stall;
  stall.stall_windows = {{10, 11}};
  stall.stall_duration_s = 2.0;
  AcquisitionPolicy policy;
  policy.retry_budget = 0;
  policy.hold_last_good = true;
  policy.max_held_age = 5;
  policy.read_deadline_s = 0.05;
  std::vector<std::unique_ptr<VideoSource>> sources;
  sources.push_back(Camera(stall));
  sources.push_back(Camera(FaultSpec{}));
  auto multi = MultiCameraSource::Create(std::move(sources), policy);
  ASSERT_TRUE(multi.ok());

  for (int f = 0; f < 10; ++f) {
    auto set = multi.value().GetFrames(f);
    ASSERT_TRUE(set.ok());
    EXPECT_TRUE(set.value().cameras[0].fresh());
  }

  const Clock::time_point start = Clock::now();
  auto set = multi.value().GetFrames(10);
  const double elapsed = SecondsSince(start);
  ASSERT_TRUE(set.ok());
  EXPECT_LT(elapsed, 1.0);  // bounded by the deadline, not the 2s stall
  EXPECT_EQ(set.value().cameras[0].status, CameraFrameStatus::kHeld);
  EXPECT_EQ(set.value().cameras[0].frame.index, 9);
  EXPECT_TRUE(set.value().cameras[1].fresh());  // healthy camera unaffected
  EXPECT_EQ(set.value().cameras[0].error.code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(multi.value().health(0).failures, 1);
  ASSERT_NE(multi.value().supervisor(), nullptr);
  EXPECT_GE(multi.value().supervisor()->stats(0).deadline_misses, 1);
  EXPECT_EQ(multi.value().supervisor()->stats(1).deadline_misses, 0);
}

TEST(AcquisitionSupervisor, DestructionWithWedgedReaderDoesNotHang) {
  FaultSpec stall;
  stall.stall_windows = {{0, 1}};
  stall.stall_duration_s = 30.0;
  AcquisitionPolicy policy;
  policy.retry_budget = 0;
  policy.read_deadline_s = 0.02;
  std::vector<std::unique_ptr<VideoSource>> sources;
  sources.push_back(Camera(stall));
  const Clock::time_point start = Clock::now();
  {
    auto multi = MultiCameraSource::Create(std::move(sources), policy);
    ASSERT_TRUE(multi.ok());
    auto set = multi.value().GetFrames(0);  // reader now wedged in the stall
    ASSERT_TRUE(set.ok());
    EXPECT_FALSE(set.value().cameras[0].usable());
  }  // destructor interrupts the stall and joins
  EXPECT_LT(SecondsSince(start), 5.0);
}

// --- watchdog restart ----------------------------------------------------

TEST(AcquisitionSupervisor, WatchdogInterruptsAndRestartsWedgedReader) {
  FaultSpec stall;
  stall.stall_windows = {{0, 1}};  // only frame 0 wedges
  stall.stall_duration_s = 30.0;
  AcquisitionPolicy policy;
  policy.retry_budget = 0;
  policy.hold_last_good = false;
  policy.quarantine_after = 1000;  // keep the breaker out of the picture
  policy.read_deadline_s = 0.02;
  policy.watchdog_stall_s = 0.05;
  std::vector<std::unique_ptr<VideoSource>> sources;
  sources.push_back(Camera(stall));
  auto multi = MultiCameraSource::Create(std::move(sources), policy);
  ASSERT_TRUE(multi.ok());

  ASSERT_FALSE(multi.value().GetFrames(0).value().cameras[0].usable());

  // Keep reading; once the reader has been busy past the watchdog
  // threshold it is interrupted, exits, and a fresh reader takes over.
  bool recovered = false;
  for (int f = 1; f < 40 && !recovered; ++f) {
    auto set = multi.value().GetFrames(f);
    ASSERT_TRUE(set.ok());
    recovered = set.value().cameras[0].fresh();
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  }
  EXPECT_TRUE(recovered);

  const AcquisitionSupervisor::ReaderStats stats =
      multi.value().supervisor()->stats(0);
  EXPECT_GE(stats.watchdog_interrupts, 1);
  EXPECT_GE(stats.restarts, 1);
  EXPECT_NE(stats.last_restart_reason.find("wedged"), std::string::npos);
  auto* injector = static_cast<FaultyVideoSource*>(&multi.value().source(0));
  EXPECT_GE(injector->counters().interrupts, 1);
}

// --- backoff-to-readmission sequencing -----------------------------------

TEST(AcquisitionSupervisor, ReadmissionCooldownGrowsWithFailedProbes) {
  // Camera dead until frame 60. With readmit_after=4 and backoff 2.0 the
  // probes land at 4, 12, 28, 60 (cooldowns 4, 8, 16, 32) — and only the
  // last one readmits.
  FaultSpec spec;
  spec.flaky_windows = {{0, 60}};
  AcquisitionPolicy policy;
  policy.retry_budget = 0;
  policy.hold_last_good = false;
  policy.quarantine_after = 1;
  policy.readmit_after = 4;
  policy.readmit_backoff = 2.0;
  std::vector<std::unique_ptr<VideoSource>> sources;
  sources.push_back(Camera(spec, /*n=*/70));
  auto multi = MultiCameraSource::Create(std::move(sources), policy);
  ASSERT_TRUE(multi.ok());
  auto* injector = static_cast<FaultyVideoSource*>(&multi.value().source(0));

  std::vector<int> probed_at;
  long long last_attempts = 0;
  for (int f = 0; f <= 60; ++f) {  // stop at the successful probe
    ASSERT_TRUE(multi.value().GetFrames(f).ok());
    const long long attempts = injector->counters().attempts;
    if (attempts != last_attempts) probed_at.push_back(f);
    last_attempts = attempts;
  }
  EXPECT_EQ(probed_at, (std::vector<int>{0, 4, 12, 28, 60}));
  EXPECT_EQ(multi.value().health(0).readmissions, 1);
  EXPECT_EQ(multi.value().health(0).probe_failures, 0);  // reset on success
  EXPECT_TRUE(multi.value().QuarantinedCameras().empty());
}

TEST(AcquisitionSupervisor, ConstantCooldownIsTheDefault) {
  // readmit_backoff = 1.0 reproduces the pre-supervisor schedule: probes
  // every readmit_after frames.
  FaultSpec spec;
  spec.flaky_windows = {{0, 22}};
  AcquisitionPolicy policy;
  policy.retry_budget = 0;
  policy.hold_last_good = false;
  policy.quarantine_after = 1;
  policy.readmit_after = 5;
  std::vector<std::unique_ptr<VideoSource>> sources;
  sources.push_back(Camera(spec, /*n=*/40));
  auto multi = MultiCameraSource::Create(std::move(sources), policy);
  ASSERT_TRUE(multi.ok());
  auto* injector = static_cast<FaultyVideoSource*>(&multi.value().source(0));

  std::vector<int> probed_at;
  long long last_attempts = 0;
  for (int f = 0; f <= 25; ++f) {  // stop at the successful probe
    ASSERT_TRUE(multi.value().GetFrames(f).ok());
    const long long attempts = injector->counters().attempts;
    if (attempts != last_attempts) probed_at.push_back(f);
    last_attempts = attempts;
  }
  EXPECT_EQ(probed_at, (std::vector<int>{0, 5, 10, 15, 20, 25}));
}

// --- clock re-sync through the synchronized read -------------------------

TEST(AcquisitionSupervisor, ResyncAlignsJitteredCameraToMasterClock) {
  FaultSpec jittery;
  jittery.seed = 17;
  jittery.timestamp_jitter_s = 0.03;  // under half the 0.1s period
  std::vector<std::unique_ptr<VideoSource>> sources;
  sources.push_back(Camera(jittery));
  sources.push_back(Camera(FaultSpec{}));
  auto multi = MultiCameraSource::Create(std::move(sources),
                                         AcquisitionPolicy{});
  ASSERT_TRUE(multi.ok());

  for (int f = 0; f < 30; ++f) {
    auto set = multi.value().GetFrames(f);
    ASSERT_TRUE(set.ok());
    // Jitter below half a frame period is corrected exactly.
    EXPECT_DOUBLE_EQ(set.value().cameras[0].frame.timestamp_s,
                     f * (1.0 / 10.0));
  }
  const TimestampResampler::Stats& stats =
      multi.value().resampler(0).stats();
  EXPECT_GT(stats.corrections, 0);
  EXPECT_EQ(stats.misalignments, 0);
  EXPECT_LE(stats.max_jitter_s, 0.03);
  EXPECT_GT(stats.max_jitter_s, 0.0);
}

TEST(AcquisitionSupervisor, ResyncCanBeDisabled) {
  FaultSpec jittery;
  jittery.seed = 17;
  jittery.timestamp_jitter_s = 0.03;
  AcquisitionPolicy policy;
  policy.resync_timestamps = false;
  std::vector<std::unique_ptr<VideoSource>> sources;
  sources.push_back(Camera(jittery));
  auto multi = MultiCameraSource::Create(std::move(sources), policy);
  ASSERT_TRUE(multi.ok());
  bool saw_jitter = false;
  for (int f = 0; f < 20; ++f) {
    auto set = multi.value().GetFrames(f);
    ASSERT_TRUE(set.ok());
    saw_jitter = saw_jitter || std::abs(set.value().cameras[0].frame.timestamp_s -
                                        f * (1.0 / 10.0)) > 1e-6;
  }
  EXPECT_TRUE(saw_jitter);
  EXPECT_EQ(multi.value().resampler(0).stats().frames_seen, 0);
}

// --- sparse-signature parsing --------------------------------------------

Histogram TwoBin(double a, double b) {
  Histogram h;
  h.bins = {a, b};
  return h;
}

TEST(SparseParsing, InterpolatedGapsPreserveShotTiming) {
  // One hard cut at frame 15. Dropping frames 7-9 must neither shift the
  // boundary (the old behavior compacted the timeline) nor invent a cut
  // inside the interpolated gap.
  VideoParserOptions options;
  options.shot.threshold_mode = ThresholdMode::kFixed;
  options.shot.fixed_threshold = 0.25;
  std::vector<Histogram> dense;
  std::vector<std::optional<Histogram>> sparse;
  for (int f = 0; f < 30; ++f) {
    Histogram h = f < 15 ? TwoBin(1.0, 0.0) : TwoBin(0.0, 1.0);
    dense.push_back(h);
    if (f >= 7 && f <= 9) {
      sparse.push_back(std::nullopt);
    } else {
      sparse.push_back(h);
    }
  }
  VideoParser parser(options);
  VideoStructure reference = parser.ParseFromHistograms(dense, 10.0);
  SparseSignatureInfo info;
  VideoStructure repaired =
      parser.ParseFromSparseHistograms(sparse, 10.0, &info);

  EXPECT_EQ(info.total, 30);
  EXPECT_EQ(info.missing, 3);
  EXPECT_EQ(info.interpolated, 3);
  EXPECT_EQ(info.extrapolated, 0);
  EXPECT_EQ(info.longest_gap, 3);

  std::vector<Shot> ref_shots = reference.AllShots();
  std::vector<Shot> rep_shots = repaired.AllShots();
  ASSERT_EQ(rep_shots.size(), ref_shots.size());
  for (size_t i = 0; i < ref_shots.size(); ++i) {
    EXPECT_EQ(rep_shots[i].begin_frame, ref_shots[i].begin_frame);
    EXPECT_EQ(rep_shots[i].end_frame, ref_shots[i].end_frame);
  }
}

TEST(SparseParsing, LeadingAndTrailingGapsAreClamped) {
  VideoParserOptions options;
  options.shot.threshold_mode = ThresholdMode::kFixed;
  options.shot.fixed_threshold = 0.25;
  std::vector<std::optional<Histogram>> sparse(12);
  for (int f = 3; f < 10; ++f) sparse[f] = TwoBin(1.0, 0.0);
  SparseSignatureInfo info;
  VideoParser parser(options);
  VideoStructure out = parser.ParseFromSparseHistograms(sparse, 10.0, &info);
  EXPECT_EQ(info.missing, 5);
  EXPECT_EQ(info.extrapolated, 5);
  EXPECT_EQ(info.interpolated, 0);
  EXPECT_EQ(out.num_frames, 12);
  EXPECT_EQ(out.NumShots(), 1);  // clamped edges cannot fake a cut
}

TEST(SparseParsing, AllMissingYieldsEmptyStructure) {
  std::vector<std::optional<Histogram>> sparse(6);
  SparseSignatureInfo info;
  VideoParser parser;
  VideoStructure out = parser.ParseFromSparseHistograms(sparse, 10.0, &info);
  EXPECT_EQ(info.missing, 6);
  EXPECT_EQ(out.num_frames, 6);
  EXPECT_EQ(out.NumShots(), 0);
}

// --- episode confidence annotation ---------------------------------------

TEST(EpisodeAnnotation, ConfidenceReflectsAcquisitionHealth) {
  std::vector<EyeContactEpisode> episodes(2);
  episodes[0].a = 0;
  episodes[0].b = 1;
  episodes[0].begin_frame = 0;
  episodes[0].end_frame = 10;
  episodes[1].a = 1;
  episodes[1].b = 2;
  episodes[1].begin_frame = 20;
  episodes[1].end_frame = 24;

  std::vector<FrameHealthRecord> timeline;
  for (int f = 0; f < 10; ++f) {
    AcquisitionFrameHealth h = AcquisitionFrameHealth::kHealthy;
    if (f == 3 || f == 4) h = AcquisitionFrameHealth::kDegraded;
    if (f == 5) h = AcquisitionFrameHealth::kSkipped;
    timeline.push_back({f, h});
  }
  AnnotateEpisodeAcquisition(&episodes, timeline);

  EXPECT_EQ(episodes[0].degraded_frames, 2);
  EXPECT_EQ(episodes[0].skipped_frames, 1);
  EXPECT_DOUBLE_EQ(episodes[0].confidence, 0.7);
  // Episode outside the timeline keeps full confidence.
  EXPECT_EQ(episodes[1].degraded_frames, 0);
  EXPECT_DOUBLE_EQ(episodes[1].confidence, 1.0);
}

}  // namespace
}  // namespace dievent
