// Thread-ownership assertion tests: a ThreadOwner claims on first touch,
// allows the owner forever, aborts on a second thread, and Reset() hands
// the role off cleanly. The SPSC queue's checked producer/consumer
// contract is pinned both ways (legal split use, fatal cross-thread use),
// as is the supervisor's control-thread confinement.

#include "common/thread_ownership.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/spsc_queue.h"
#include "video/acquisition_supervisor.h"
#include "video/video_source.h"

namespace dievent {
namespace {

/// Death tests fork from processes that already run helper threads (the
/// supervisor's readers, the intruder threads); the threadsafe style
/// re-executes the test binary so the child starts clean.
class ThreadsafeDeathStyle : public ::testing::Environment {
 public:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};
const ::testing::Environment* const kDeathStyle =
    ::testing::AddGlobalTestEnvironment(new ThreadsafeDeathStyle);

TEST(ThreadOwner, OwnerMayCheckRepeatedly) {
  ThreadOwner owner("test-role");
  owner.CheckOwned();  // first touch claims
  owner.CheckOwned();
  DCHECK_OWNED_BY(owner);
}

TEST(ThreadOwner, ResetHandsTheRoleToTheNextToucher) {
  ThreadOwner owner("test-role");
  owner.CheckOwned();
  owner.Reset();
  std::thread other([&] { owner.CheckOwned(); });  // new owner, no abort
  other.join();
}

TEST(ThreadOwnerDeathTest, SecondThreadAborts) {
  ThreadOwner owner("contested-role");
  owner.CheckOwned();
  EXPECT_DEATH(
      {
        std::thread intruder([&] { owner.CheckOwned(); });
        intruder.join();
      },
      "thread-ownership violation: role 'contested-role'");
}

TEST(SpscQueueOwnership, DistinctProducerAndConsumerThreadsAreLegal) {
  SpscQueue<int> queue(8);
  std::thread producer([&] {
    for (int i = 0; i < 100;) {
      if (queue.TryPush(int(i))) ++i;
    }
  });
  int expected = 0;
  while (expected < 100) {
    if (auto v = queue.TryPop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
}

TEST(SpscQueueOwnershipDeathTest, SecondProducerThreadAborts) {
  SpscQueue<int> queue(8);
  ASSERT_TRUE(queue.TryPush(1));  // main claims the producer side
  EXPECT_DEATH(
      {
        std::thread intruder([&] { (void)queue.TryPush(2); });
        intruder.join();
      },
      "spsc-producer");
}

TEST(SpscQueueOwnershipDeathTest, SecondConsumerThreadAborts) {
  SpscQueue<int> queue(8);
  (void)queue.TryPop();  // main claims the consumer side
  EXPECT_DEATH(
      {
        std::thread intruder([&] { (void)queue.TryPop(); });
        intruder.join();
      },
      "spsc-consumer");
}

TEST(SpscQueueOwnership, ResetAllowsADeliberateHandoff) {
  SpscQueue<int> queue(8);
  ASSERT_TRUE(queue.TryPush(1));
  queue.ResetProducerOwner();  // externally synchronized handoff point
  std::thread next_producer([&] { ASSERT_TRUE(queue.TryPush(2)); });
  next_producer.join();
}

TEST(SupervisorOwnershipDeathTest, SecondControlThreadAborts) {
  // BeginRead/FinishRead are control-thread confined; a second thread
  // driving reads without ReleaseControl must abort, not corrupt seq_.
  std::vector<ImageRgb> frames(4);
  MemoryVideoSource source(frames, 10.0);
  SupervisorOptions options;
  AcquisitionSupervisor supervisor({&source}, options);
  (void)supervisor.Read(0, {1});  // main claims the control role
  EXPECT_DEATH(
      {
        std::thread intruder([&] { (void)supervisor.Read(1, {1}); });
        intruder.join();
      },
      "supervisor-control");
}

TEST(SupervisorOwnership, ReleaseControlHandsOffTheControlRole) {
  std::vector<ImageRgb> frames(4);
  MemoryVideoSource source(frames, 10.0);
  SupervisorOptions options;
  AcquisitionSupervisor supervisor({&source}, options);
  (void)supervisor.Read(0, {1});
  supervisor.ReleaseControl();  // handoff: spawn happens after the release
  std::thread next_control([&] {
    std::vector<AcquisitionSupervisor::ReadOutcome> out =
        supervisor.Read(1, {1});
    EXPECT_TRUE(out[0].ok());
  });
  next_control.join();
  supervisor.ReleaseControl();  // and back to main (join synchronizes)
  (void)supervisor.Read(2, {1});
}

}  // namespace
}  // namespace dievent
