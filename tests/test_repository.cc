// Tests for the metadata repository (paper Section II-E).

#include "metadata/repository.h"

#include <gtest/gtest.h>

#include <fstream>

namespace dievent {
namespace {

LookAtRecord Rec(int frame, double t, int n,
                 std::vector<std::pair<int, int>> edges) {
  LookAtMatrix m(n);
  for (auto [a, b] : edges) m.Set(a, b, true);
  return LookAtRecord::FromMatrix(frame, t, m);
}

MetadataRepository SmallRepo() {
  MetadataRepository repo;
  EventContext ctx;
  ctx.event_id = "evt-1";
  ctx.location = "room 12";
  ctx.date = "2018-04-16";
  ctx.occasion = "meeting";
  ctx.menu = {"coffee", "biscuits"};
  ctx.temperature_c = 21.5;
  ctx.num_participants = 3;
  ctx.participant_names = {"P1", "P2", "P3"};
  ctx.relations.push_back({0, 1, "colleagues"});
  repo.SetContext(ctx);
  repo.set_fps(10.0);
  // Frames 0-2: P1<->P2 eye contact in 0 and 1, one-way in 2.
  EXPECT_TRUE(repo.AddLookAt(Rec(0, 0.0, 3, {{0, 1}, {1, 0}})).ok());
  EXPECT_TRUE(repo.AddLookAt(Rec(1, 0.1, 3, {{0, 1}, {1, 0}, {2, 0}})).ok());
  EXPECT_TRUE(repo.AddLookAt(Rec(2, 0.2, 3, {{0, 1}})).ok());
  EmotionRecord er;
  er.frame = 1;
  er.timestamp_s = 0.1;
  er.participant = 0;
  er.emotion = Emotion::kHappy;
  er.confidence = 0.8;
  EXPECT_TRUE(repo.AddEmotion(er).ok());
  OverallEmotionRecord oe;
  oe.frame = 1;
  oe.timestamp_s = 0.1;
  oe.overall_happiness = 0.33;
  oe.mean_valence = 0.2;
  oe.observed = 3;
  EXPECT_TRUE(repo.AddOverallEmotion(oe).ok());
  return repo;
}

TEST(Repository, EnforcesFrameOrder) {
  MetadataRepository repo;
  ASSERT_TRUE(repo.AddLookAt(Rec(5, 0.5, 2, {})).ok());
  EXPECT_EQ(repo.AddLookAt(Rec(3, 0.3, 2, {})).code(),
            StatusCode::kFailedPrecondition);
  // Same frame twice is allowed (e.g. per-camera streams merged upstream).
  EXPECT_TRUE(repo.AddLookAt(Rec(5, 0.5, 2, {})).ok());
}

TEST(Repository, RejectsMalformedLookAt) {
  MetadataRepository repo;
  LookAtRecord bad;
  bad.n = 3;
  bad.cells = {1, 0};  // wrong size
  EXPECT_EQ(repo.AddLookAt(bad).code(), StatusCode::kInvalidArgument);
}

TEST(Repository, FindLookAtIndexBinarySearches) {
  MetadataRepository repo = SmallRepo();
  auto idx = repo.FindLookAtIndex(1);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value(), 1);
  EXPECT_EQ(repo.FindLookAtIndex(99).status().code(),
            StatusCode::kNotFound);
}

TEST(Repository, SummarizeMatchesManualCounts) {
  MetadataRepository repo = SmallRepo();
  LookAtSummary all = repo.Summarize();
  EXPECT_EQ(all.At(0, 1), 3);
  EXPECT_EQ(all.At(1, 0), 2);
  EXPECT_EQ(all.At(2, 0), 1);
  EXPECT_EQ(all.frames_accumulated(), 3);
  LookAtSummary ranged = repo.Summarize(1, 3);
  EXPECT_EQ(ranged.At(0, 1), 2);
}

TEST(Repository, PairIndexServesLookups) {
  MetadataRepository repo = SmallRepo();
  const auto& frames01 = repo.FramesWithLook(0, 1);
  EXPECT_EQ(frames01.size(), 3u);
  const auto& frames20 = repo.FramesWithLook(2, 0);
  ASSERT_EQ(frames20.size(), 1u);
  EXPECT_EQ(repo.lookat_records()[frames20[0]].frame, 1);
  EXPECT_TRUE(repo.FramesWithLook(2, 1).empty());
}

TEST(Repository, EyeContactEpisodesMergeAcrossGaps) {
  MetadataRepository repo;
  // EC on frames 0,1, gap at 2, EC on 3; then a long break and EC at 10.
  EXPECT_TRUE(repo.AddLookAt(Rec(0, 0.0, 2, {{0, 1}, {1, 0}})).ok());
  EXPECT_TRUE(repo.AddLookAt(Rec(1, 0.1, 2, {{0, 1}, {1, 0}})).ok());
  EXPECT_TRUE(repo.AddLookAt(Rec(2, 0.2, 2, {{0, 1}})).ok());
  EXPECT_TRUE(repo.AddLookAt(Rec(3, 0.3, 2, {{0, 1}, {1, 0}})).ok());
  EXPECT_TRUE(repo.AddLookAt(Rec(10, 1.0, 2, {{0, 1}, {1, 0}})).ok());
  auto no_gap = repo.EyeContactEpisodes(1, 0);
  ASSERT_EQ(no_gap.size(), 3u);
  EXPECT_EQ(no_gap[0].begin_frame, 0);
  EXPECT_EQ(no_gap[0].end_frame, 2);
  auto gap1 = repo.EyeContactEpisodes(1, 1);
  ASSERT_EQ(gap1.size(), 2u);
  EXPECT_EQ(gap1[0].begin_frame, 0);
  EXPECT_EQ(gap1[0].end_frame, 4);
  auto min_len = repo.EyeContactEpisodes(2, 0);
  ASSERT_EQ(min_len.size(), 1u);  // only the [0, 2) run has length >= 2
}

TEST(Repository, VideoStructureFlattensToShots) {
  MetadataRepository repo;
  VideoStructure vs;
  vs.num_frames = 50;
  vs.fps = 25.0;
  SceneSegment s1, s2;
  s1.shots.push_back(Shot{0, 20, {0, 10}});
  s2.shots.push_back(Shot{20, 35, {20}});
  s2.shots.push_back(Shot{35, 50, {35}});
  vs.scenes = {s1, s2};
  repo.SetVideoStructure(vs);
  EXPECT_EQ(repo.NumScenes(), 2);
  ASSERT_EQ(repo.shots().size(), 3u);
  EXPECT_EQ(repo.shots()[0].scene_index, 0);
  EXPECT_EQ(repo.shots()[2].scene_index, 1);
  EXPECT_EQ(repo.shots()[0].key_frames.size(), 2u);
  EXPECT_DOUBLE_EQ(repo.fps(), 25.0);
}

TEST(Repository, SaveLoadRoundTripsEverything) {
  MetadataRepository repo = SmallRepo();
  VideoStructure vs;
  vs.num_frames = 3;
  vs.fps = 10.0;
  SceneSegment sc;
  sc.shots.push_back(Shot{0, 3, {0}});
  vs.scenes = {sc};
  repo.SetVideoStructure(vs);

  std::string path = testing::TempDir() + "/repo.dmr";
  ASSERT_TRUE(repo.Save(path).ok());
  auto loaded = MetadataRepository::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const MetadataRepository& r = loaded.value();
  EXPECT_EQ(r.context().event_id, "evt-1");
  EXPECT_EQ(r.context().location, "room 12");
  EXPECT_EQ(r.context().menu.size(), 2u);
  EXPECT_EQ(r.context().participant_names[2], "P3");
  ASSERT_EQ(r.context().relations.size(), 1u);
  EXPECT_EQ(r.context().relations[0].relation, "colleagues");
  EXPECT_DOUBLE_EQ(r.context().temperature_c, 21.5);
  EXPECT_EQ(r.lookat_records().size(), 3u);
  EXPECT_TRUE(r.lookat_records()[1].At(2, 0));
  ASSERT_EQ(r.emotion_records().size(), 1u);
  EXPECT_EQ(r.emotion_records()[0].emotion, Emotion::kHappy);
  ASSERT_EQ(r.overall_records().size(), 1u);
  EXPECT_DOUBLE_EQ(r.overall_records()[0].overall_happiness, 0.33);
  ASSERT_EQ(r.shots().size(), 1u);
  EXPECT_EQ(r.NumScenes(), 1);
  EXPECT_DOUBLE_EQ(r.fps(), 10.0);
}

TEST(Repository, LoadRejectsCorruptFiles) {
  std::string path = testing::TempDir() + "/bad.dmr";
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage";
  }
  EXPECT_EQ(MetadataRepository::Load(path).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(MetadataRepository::Load("/no/file").status().code(),
            StatusCode::kIoError);
}

TEST(Repository, LoadRejectsTruncation) {
  MetadataRepository repo = SmallRepo();
  std::string path = testing::TempDir() + "/trunc.dmr";
  ASSERT_TRUE(repo.Save(path).ok());
  // Truncate the file body.
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    std::ofstream out(path, std::ios::binary);
    out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  }
  EXPECT_EQ(MetadataRepository::Load(path).status().code(),
            StatusCode::kCorruption);
}

TEST(Repository, TotalRecordsCounts) {
  MetadataRepository repo = SmallRepo();
  EXPECT_EQ(repo.TotalRecords(), 5u);  // 3 lookat + 1 emotion + 1 overall
}

TEST(Repository, FrameBoundsSpanEveryRecordType) {
  MetadataRepository empty;
  EXPECT_FALSE(empty.FrameBounds().has_value());

  MetadataRepository repo = SmallRepo();  // look-at frames 0..2
  auto bounds = repo.FrameBounds();
  ASSERT_TRUE(bounds.has_value());
  EXPECT_EQ(bounds->first, 0);
  EXPECT_EQ(bounds->second, 2);

  // An emotion record past the look-at range widens the upper bound.
  EmotionRecord er;
  er.frame = 7;
  er.timestamp_s = 0.7;
  er.participant = 1;
  er.emotion = Emotion::kSad;
  er.confidence = 0.5;
  ASSERT_TRUE(repo.AddEmotion(er).ok());
  bounds = repo.FrameBounds();
  ASSERT_TRUE(bounds.has_value());
  EXPECT_EQ(bounds->second, 7);
}

TEST(Repository, LookAtTimeBoundsAreInclusive) {
  MetadataRepository empty;
  EXPECT_FALSE(empty.LookAtTimeBounds().has_value());

  MetadataRepository repo = SmallRepo();
  auto bounds = repo.LookAtTimeBounds();
  ASSERT_TRUE(bounds.has_value());
  EXPECT_DOUBLE_EQ(bounds->first, 0.0);
  EXPECT_DOUBLE_EQ(bounds->second, 0.2);
}

TEST(Repository, LookAtTimeBoundsSurviveNonMonotonicTimestamps) {
  // Frame order is enforced, timestamp order is not (per-camera clock
  // skew): bounds must still be the true min/max.
  MetadataRepository repo;
  ASSERT_TRUE(repo.AddLookAt(Rec(0, 5.0, 2, {})).ok());
  ASSERT_TRUE(repo.AddLookAt(Rec(1, 1.0, 2, {})).ok());
  ASSERT_TRUE(repo.AddLookAt(Rec(2, 3.0, 2, {})).ok());
  auto bounds = repo.LookAtTimeBounds();
  ASSERT_TRUE(bounds.has_value());
  EXPECT_DOUBLE_EQ(bounds->first, 1.0);
  EXPECT_DOUBLE_EQ(bounds->second, 5.0);
}

/// Full-scan oracle: indices whose timestamp falls inside [t0, t1).
std::vector<int> ScanForTime(const MetadataRepository& repo, double t0,
                             double t1) {
  std::vector<int> hits;
  const auto& records = repo.lookat_records();
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].timestamp_s >= t0 && records[i].timestamp_s < t1) {
      hits.push_back(static_cast<int>(i));
    }
  }
  return hits;
}

TEST(Repository, TimeIndexRangeMatchesFullScanWhenMonotonic) {
  MetadataRepository repo;
  for (int f = 0; f < 20; ++f) {
    ASSERT_TRUE(repo.AddLookAt(Rec(f, f * 0.5, 2, {})).ok());
  }
  const std::pair<double, double> windows[] = {
      {0.0, 10.0}, {2.5, 2.5001}, {-5.0, 0.0}, {9.5, 99.0}, {3.0, 3.0}};
  for (auto [t0, t1] : windows) {
    auto [lo, hi] = repo.LookAtIndexRangeForTime(t0, t1);
    const std::vector<int> want = ScanForTime(repo, t0, t1);
    // Monotonic timestamps: the binary-searched range is exact.
    ASSERT_LE(lo, hi);
    std::vector<int> got;
    for (int i = lo; i < hi; ++i) got.push_back(i);
    EXPECT_EQ(got, want) << "[" << t0 << ", " << t1 << ")";
  }
}

TEST(Repository, TimeIndexFallsBackToFullRangeWhenNotMonotonic) {
  MetadataRepository repo;
  ASSERT_TRUE(repo.AddLookAt(Rec(0, 5.0, 2, {})).ok());
  ASSERT_TRUE(repo.AddLookAt(Rec(1, 1.0, 2, {})).ok());
  ASSERT_TRUE(repo.AddLookAt(Rec(2, 3.0, 2, {})).ok());
  auto [lo, hi] = repo.LookAtIndexRangeForTime(2.0, 4.0);
  // The conservative range covers everything; filtering inside it must
  // reproduce the full scan.
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 3);
  std::vector<int> got;
  for (int i = lo; i < hi; ++i) {
    const LookAtRecord& r = repo.lookat_records()[i];
    if (r.timestamp_s >= 2.0 && r.timestamp_s < 4.0) got.push_back(i);
  }
  EXPECT_EQ(got, ScanForTime(repo, 2.0, 4.0));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 2);
}

TEST(Repository, TimeIndexRebuildsAfterNewRecords) {
  MetadataRepository repo;
  ASSERT_TRUE(repo.AddLookAt(Rec(0, 0.0, 2, {})).ok());
  ASSERT_TRUE(repo.AddLookAt(Rec(1, 1.0, 2, {})).ok());
  auto [lo1, hi1] = repo.LookAtIndexRangeForTime(0.0, 10.0);
  EXPECT_EQ(hi1 - lo1, 2);
  // A timestamp regression after the index was built must demote the
  // repository to the conservative full-range answer.
  ASSERT_TRUE(repo.AddLookAt(Rec(2, 0.5, 2, {})).ok());
  auto [lo2, hi2] = repo.LookAtIndexRangeForTime(0.9, 10.0);
  EXPECT_EQ(lo2, 0);
  EXPECT_EQ(hi2, 3);
}

}  // namespace
}  // namespace dievent
