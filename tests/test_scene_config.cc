// Tests for the scene-config text format.

#include "sim/scene_config.h"

#include <gtest/gtest.h>

#include <fstream>

namespace dievent {
namespace {

constexpr const char* kTwoPersonConfig = R"(
# a two-person lunch
fps 10
frames 100
table 0 0 0.75 1.2 0.8
rig facing 4.0 2.5 -15
participant Ana 230 200 40 -0.8 0 1.15
participant Bo  40  80 220  0.8 0 1.15
gaze Ana 0 5 Bo          # mutual chat
gaze Ana 5 10 table
gaze Bo  0 5 Ana
gaze Bo  5 10 away
emotion Ana 0 10 happy 0.8
emotion Bo  2 6 surprise
)";

TEST(SceneConfig, ParsesFullExample) {
  auto scene = ParseSceneConfig(kTwoPersonConfig);
  ASSERT_TRUE(scene.ok()) << scene.status();
  const DiningScene& s = scene.value();
  EXPECT_EQ(s.NumParticipants(), 2);
  EXPECT_EQ(s.rig().NumCameras(), 2);
  EXPECT_DOUBLE_EQ(s.fps(), 10.0);
  EXPECT_EQ(s.num_frames(), 100);
  EXPECT_EQ(s.profile(0).name, "Ana");
  EXPECT_EQ(s.profile(1).marker_color, (Rgb{40, 80, 220}));

  // Scripted behaviour resolves: at t=2 they look at each other.
  auto states = s.StateAt(2.0);
  EXPECT_EQ(states[0].gaze_target, 1);
  EXPECT_EQ(states[1].gaze_target, 0);
  EXPECT_EQ(states[0].emotion, Emotion::kHappy);
  EXPECT_DOUBLE_EQ(states[0].emotion_intensity, 0.8);
  EXPECT_EQ(states[1].emotion, Emotion::kSurprise);
  // At t=7: Ana at the table, Bo looking away (outward).
  states = s.StateAt(7.0);
  EXPECT_EQ(states[0].gaze_target, -1);
  EXPECT_LT(states[0].gaze_direction.z, 0);  // down toward the table
  EXPECT_GT(states[1].gaze_direction.x, 0);  // outward from centre
}

TEST(SceneConfig, ForwardGazeReferencesAllowed) {
  // P1's gaze references P2 before P2 is declared.
  constexpr const char* config = R"(
fps 10
frames 10
participant P1 230 200 40 -1 0 1.15
gaze P1 0 1 P2
participant P2 40 80 220 1 0 1.15
)";
  auto scene = ParseSceneConfig(config);
  ASSERT_TRUE(scene.ok()) << scene.status();
  EXPECT_EQ(scene.value().StateAt(0.5)[0].gaze_target, 1);
}

TEST(SceneConfig, DefaultFrameCountCoversScripts) {
  constexpr const char* config = R"(
fps 10
participant P1 230 200 40 -1 0 1.15
participant P2 40 80 220 1 0 1.15
gaze P1 0 12.5 P2
)";
  auto scene = ParseSceneConfig(config);
  ASSERT_TRUE(scene.ok());
  EXPECT_EQ(scene.value().num_frames(), 125);
  // Default rig when none declared: 4 corners.
  EXPECT_EQ(scene.value().rig().NumCameras(), 4);
}

TEST(SceneConfig, ErrorsCarryLineNumbers) {
  struct Case {
    const char* config;
    const char* expect;
  };
  const Case cases[] = {
      {"bogus 1 2\n", "line 1"},
      {"fps -3\n", "fps must be positive"},
      {"participant P1 999 0 0 0 0 1\n", "0..255"},
      {"fps 10\ngaze P9 0 1 table\n", "unknown participant"},
      {"participant P1 1 2 3 0 0 1\ngaze P1 0 1 Px\n",
       "unknown gaze target"},
      {"participant P1 1 2 3 0 0 1\nemotion P1 0 1 angryish\n",
       "unknown emotion"},
      {"participant P1 1 2 3 0 0 1\nparticipant P1 1 2 3 1 0 1\n",
       "duplicate"},
      {"participant P1 1 2 3 0 0 1\n"
       "participant P2 9 9 9 1 0 1\n"
       "gaze P1 5 3 P2\n",
       "line 3"},
      {"rig diagonal 1 2 3\n", "unknown rig layout"},
      {"participant P1 abc 2 3 0 0 1\n", "expected a number"},
  };
  for (const Case& c : cases) {
    auto scene = ParseSceneConfig(c.config);
    ASSERT_FALSE(scene.ok()) << c.config;
    EXPECT_NE(scene.status().message().find(c.expect), std::string::npos)
        << c.config << " -> " << scene.status();
  }
}

TEST(SceneConfig, FileRoundTrip) {
  std::string path = testing::TempDir() + "/scene.cfg";
  std::ofstream(path) << kTwoPersonConfig;
  auto scene = LoadSceneConfig(path);
  ASSERT_TRUE(scene.ok()) << scene.status();
  EXPECT_EQ(scene.value().NumParticipants(), 2);
  EXPECT_EQ(LoadSceneConfig("/no/such.cfg").status().code(),
            StatusCode::kIoError);
}

TEST(SceneConfig, SerializeParseRoundTrip) {
  auto original = ParseSceneConfig(kTwoPersonConfig);
  ASSERT_TRUE(original.ok());
  std::string serialized = SceneToConfig(original.value());
  auto reparsed = ParseSceneConfig(serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << serialized;
  const DiningScene& a = original.value();
  const DiningScene& b = reparsed.value();
  EXPECT_EQ(a.NumParticipants(), b.NumParticipants());
  EXPECT_EQ(a.num_frames(), b.num_frames());
  for (double t : {1.0, 4.0, 7.0}) {
    auto sa = a.StateAt(t);
    auto sb = b.StateAt(t);
    for (int i = 0; i < a.NumParticipants(); ++i) {
      EXPECT_EQ(sa[i].gaze_target, sb[i].gaze_target) << t << " " << i;
      EXPECT_EQ(sa[i].emotion, sb[i].emotion);
    }
  }
}

}  // namespace
}  // namespace dievent
