// Tests for the multi-camera rig and the paper's iTj calibration queries.

#include "geometry/rig.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

Intrinsics TestK() { return Intrinsics::FromFov(640, 480, DegToRad(70)); }

TEST(Rig, AddAndFindCameras) {
  Rig rig;
  EXPECT_EQ(rig.AddCamera(CameraModel("A", TestK(), Pose::Identity())), 0);
  EXPECT_EQ(rig.AddCamera(CameraModel("B", TestK(), Pose::Identity())), 1);
  EXPECT_EQ(rig.NumCameras(), 2);
  auto idx = rig.FindCamera("B");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value(), 1);
  EXPECT_EQ(rig.FindCamera("C").status().code(), StatusCode::kNotFound);
}

TEST(Rig, CameraFromCameraRoundTrip) {
  Rig rig = Rig::MakeCornerRig(5, 4, 2.5, {0, 0, 1}, TestK());
  // iTj composed with jTi must be identity.
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      Pose round = rig.CameraFromCamera(i, j) * rig.CameraFromCamera(j, i);
      EXPECT_LT(PoseDistance(round, Pose::Identity()), 1e-9);
    }
  }
}

TEST(Rig, CameraFromCameraMapsSharedPoint) {
  // A world point observed in camera j's frame, transformed by iTj, must
  // equal the same point observed in camera i's frame (paper Eq. 1).
  Rig rig = Rig::MakeCornerRig(5, 4, 2.5, {0, 0, 1}, TestK());
  Vec3 world_point{0.3, -0.2, 1.1};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      Vec3 in_j = rig.camera(j).camera_from_world().TransformPoint(
          world_point);
      Vec3 in_i_via_t =
          rig.CameraFromCamera(i, j).TransformPoint(in_j);
      Vec3 in_i = rig.camera(i).camera_from_world().TransformPoint(
          world_point);
      EXPECT_NEAR((in_i_via_t - in_i).Norm(), 0.0, 1e-9);
    }
  }
}

TEST(Rig, FacingPairGeometryMatchesPaper) {
  // Fig. 2: cameras face each other at 2.5 m with -15 deg pitch.
  Rig rig = Rig::MakeFacingPair(5.0, 2.5, -15.0, TestK());
  ASSERT_EQ(rig.NumCameras(), 2);
  EXPECT_NEAR(rig.camera(0).Position().z, 2.5, 1e-12);
  EXPECT_NEAR(rig.camera(1).Position().z, 2.5, 1e-12);
  EXPECT_NEAR((rig.camera(0).Position() - rig.camera(1).Position()).Norm(),
              5.0, 1e-12);
  // Pitch: the view direction makes -15 deg with the horizontal.
  for (int c = 0; c < 2; ++c) {
    Vec3 d = rig.camera(c).ViewDirection();
    double pitch = RadToDeg(std::asin(d.z));
    EXPECT_NEAR(pitch, -15.0, 0.5);
  }
  // They face each other: opposite horizontal directions.
  EXPECT_LT(rig.camera(0).ViewDirection().x *
                rig.camera(1).ViewDirection().x,
            0.0);
}

TEST(Rig, CornerRigSeesTheTable) {
  Rig rig = Rig::MakeCornerRig(5, 4, 2.5, {0, 0, 1}, TestK());
  ASSERT_EQ(rig.NumCameras(), 4);
  for (int c = 0; c < 4; ++c) {
    EXPECT_TRUE(rig.camera(c).IsVisible({0, 0, 1.0}));
    EXPECT_TRUE(rig.camera(c).IsVisible({0.5, 0.5, 1.2}));
    EXPECT_NEAR(rig.camera(c).Position().z, 2.5, 1e-12);
  }
  // Cameras sit on distinct corners.
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      EXPECT_GT(
          (rig.camera(a).Position() - rig.camera(b).Position()).Norm(),
          1.0);
    }
  }
}

TEST(Rig, CornerRigNamesAreC1ToC4) {
  Rig rig = Rig::MakeCornerRig(5, 4, 2.5, {0, 0, 1}, TestK());
  EXPECT_EQ(rig.camera(0).name(), "C1");
  EXPECT_EQ(rig.camera(3).name(), "C4");
}

}  // namespace
}  // namespace dievent
