// Pipeline facade tests: ground-truth mode must reproduce the paper's
// prototype outputs; full-vision mode must track ground truth closely on
// clean frames.

#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace dievent {
namespace {

constexpr int kP1 = 0, kP3 = 2;

PipelineOptions FastVisionOptions() {
  PipelineOptions opt;
  opt.mode = PipelineMode::kFullVision;
  opt.analyze_emotions = false;  // training covered separately
  opt.parse_video = false;
  return opt;
}

TEST(PipelineGroundTruth, ReproducesFig9Summary) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt;
  opt.mode = PipelineMode::kGroundTruth;
  opt.parse_video = false;
  DiEventPipeline pipeline(&scene, opt);
  MetadataRepository repo;
  auto report = pipeline.Run(&repo);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().frames_processed, 610);
  EXPECT_EQ(report.value().summary.At(kP1, kP3), 357);
  EXPECT_EQ(report.value().dominant_participant, kP1);
  EXPECT_EQ(repo.lookat_records().size(), 610u);
  // Emotion layers were stored too (ground-truth mode).
  EXPECT_GT(repo.emotion_records().size(), 0u);
  EXPECT_EQ(repo.overall_records().size(), 610u);
}

TEST(PipelineGroundTruth, EyeContactEpisodesAreDetected) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt;
  opt.mode = PipelineMode::kGroundTruth;
  opt.parse_video = false;
  DiEventPipeline pipeline(&scene, opt);
  MetadataRepository repo;
  auto report = pipeline.Run(&repo);
  ASSERT_TRUE(report.ok()) << report.status();
  // P1<->P3 mutual gaze holds during frames [60, 200) and [330, 437):
  // two episodes involving the pair (0, 2).
  int p1p3 = 0;
  for (const auto& ep : report.value().eye_contact_episodes) {
    if (ep.a == kP1 && ep.b == kP3) {
      ++p1p3;
      EXPECT_GE(ep.Length(), 100);
    }
  }
  EXPECT_EQ(p1p3, 2);
}

TEST(PipelineFullVision, TracksGroundTruthOnCleanFrames) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt = FastVisionOptions();
  opt.frame_stride = 10;  // 61 frames: enough signal, fast enough
  // Iris quantization at 640x480 bounds per-view gaze accuracy around
  // 5-12 deg; the nearest competing head in this layout is ~37 deg away,
  // so this tolerance recovers edges without creating false ones.
  opt.eye_contact.angular_tolerance_deg = 12.0;
  DiEventPipeline pipeline(&scene, opt);
  MetadataRepository repo;
  auto report = pipeline.Run(&repo);
  ASSERT_TRUE(report.ok()) << report.status();
  const PipelineAccuracy& acc = report.value().accuracy;
  EXPECT_GT(acc.detection_coverage, 0.95);
  EXPECT_GT(acc.gaze_coverage, 0.8);
  EXPECT_LT(acc.mean_position_error_m, 0.15);
  EXPECT_LT(acc.mean_gaze_error_deg, 14.0);
  EXPECT_GT(acc.lookat_cell_accuracy, 0.85);
  EXPECT_GT(acc.edge_recall, 0.7);
  EXPECT_GT(acc.edge_precision, 0.7);
}

TEST(PipelineFullVision, RejectsBadOptions) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt = FastVisionOptions();
  opt.frame_stride = 0;
  DiEventPipeline pipeline(&scene, opt);
  MetadataRepository repo;
  auto report = pipeline.Run(&repo);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);

  DiEventPipeline pipeline2(&scene, FastVisionOptions());
  EXPECT_FALSE(pipeline2.Run(nullptr).ok());
}

TEST(PipelineGroundTruth, StrideSkipsFrames) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt;
  opt.mode = PipelineMode::kGroundTruth;
  opt.parse_video = false;
  opt.frame_stride = 5;
  DiEventPipeline pipeline(&scene, opt);
  MetadataRepository repo;
  auto report = pipeline.Run(&repo);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().frames_processed, 122);
  EXPECT_EQ(repo.lookat_records().size(), 122u);
}

TEST(PipelineFullVision, ParallelMatchesSequential) {
  // Per-camera work is independent, so the multi-threaded pipeline must
  // produce bit-identical analysis results.
  DiningScene scene = MakeMeetingScenario();
  auto run = [&scene](int threads) {
    PipelineOptions opt = FastVisionOptions();
    opt.frame_stride = 20;
    opt.eye_contact.angular_tolerance_deg = 12.0;
    opt.num_threads = threads;
    MetadataRepository repo;
    auto report = DiEventPipeline(&scene, opt).Run(&repo);
    EXPECT_TRUE(report.ok()) << report.status();
    return repo;
  };
  MetadataRepository sequential = run(1);
  MetadataRepository parallel = run(4);
  ASSERT_EQ(sequential.lookat_records().size(),
            parallel.lookat_records().size());
  for (size_t i = 0; i < sequential.lookat_records().size(); ++i) {
    EXPECT_TRUE(sequential.lookat_records()[i].cells ==
                parallel.lookat_records()[i].cells)
        << "frame record " << i;
  }
}

TEST(PipelineFullVision, SeatPriorRescuesDisabledRecognizer) {
  // With an impossible reject threshold the appearance recognizer never
  // identifies anyone; the seat prior must carry the analysis instead.
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt = FastVisionOptions();
  opt.frame_stride = 20;
  opt.eye_contact.angular_tolerance_deg = 12.0;
  opt.recognizer_reject_distance = 0.0;  // appearance identity disabled

  MetadataRepository repo;
  auto without = DiEventPipeline(&scene, opt).Run(&repo);
  ASSERT_TRUE(without.ok());
  EXPECT_LT(without.value().accuracy.detection_coverage, 0.05);

  opt.seat_prior_from_scene = true;
  auto with = DiEventPipeline(&scene, opt).Run(&repo);
  ASSERT_TRUE(with.ok());
  EXPECT_GT(with.value().accuracy.detection_coverage, 0.95);
  EXPECT_GT(with.value().accuracy.edge_recall, 0.9);
}

TEST(PipelineFullVision, RejectsUnknownCameraSubset) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt = FastVisionOptions();
  opt.camera_subset = {0, 9};
  MetadataRepository repo;
  EXPECT_EQ(DiEventPipeline(&scene, opt).Run(&repo).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PipelineReport, SummaryStringMentionsDominance) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt;
  opt.mode = PipelineMode::kGroundTruth;
  opt.parse_video = false;
  DiEventPipeline pipeline(&scene, opt);
  MetadataRepository repo;
  auto report = pipeline.Run(&repo);
  ASSERT_TRUE(report.ok());
  std::string s = report.value().Summary();
  EXPECT_NE(s.find("dominant participant: P1"), std::string::npos);
  EXPECT_NE(s.find("look-at summary"), std::string::npos);
}

}  // namespace
}  // namespace dievent
