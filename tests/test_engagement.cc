// Tests for engagement metrics over the gaze layer.

#include "metadata/engagement.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "sim/scenario.h"

namespace dievent {
namespace {

LookAtRecord Rec(int frame, int n,
                 std::vector<std::pair<int, int>> edges) {
  LookAtMatrix m(n);
  for (auto [a, b] : edges) m.Set(a, b, true);
  return LookAtRecord::FromMatrix(frame, frame / 10.0, m);
}

TEST(Engagement, EmptyRepositoryYieldsEmptyReport) {
  MetadataRepository repo;
  EngagementReport report = ComputeEngagement(repo);
  EXPECT_TRUE(report.participants.empty());
  EXPECT_EQ(report.MostEngaged(), -1);
}

TEST(Engagement, CountsPerParticipantFractions) {
  MetadataRepository repo;
  repo.set_fps(10.0);
  EventContext ctx;
  ctx.participant_names = {"A", "B", "C"};
  repo.SetContext(ctx);
  // 4 frames: A<->B contact in 2; C watches A in all 4; C never watched.
  for (int f = 0; f < 4; ++f) {
    std::vector<std::pair<int, int>> edges = {{2, 0}};
    if (f < 2) {
      edges.push_back({0, 1});
      edges.push_back({1, 0});
    }
    ASSERT_TRUE(repo.AddLookAt(Rec(f, 3, edges)).ok());
  }
  EngagementReport report = ComputeEngagement(repo);
  ASSERT_EQ(report.participants.size(), 3u);
  const auto& a = report.participants[0];
  const auto& b = report.participants[1];
  const auto& c = report.participants[2];
  EXPECT_DOUBLE_EQ(a.attention_given, 0.5);     // A looks in 2 of 4
  EXPECT_DOUBLE_EQ(a.attention_received, 1.0);  // B or C watch A always
  EXPECT_DOUBLE_EQ(a.eye_contact, 0.5);
  EXPECT_DOUBLE_EQ(a.reciprocity, 1.0);  // whenever A looked, B returned
  EXPECT_DOUBLE_EQ(b.eye_contact, 0.5);
  EXPECT_DOUBLE_EQ(c.attention_given, 1.0);
  EXPECT_DOUBLE_EQ(c.attention_received, 0.0);
  EXPECT_DOUBLE_EQ(c.reciprocity, 0.0);  // C's gaze never returned
  EXPECT_DOUBLE_EQ(report.group_eye_contact, 0.5);
  EXPECT_DOUBLE_EQ(report.pair_contact[0][1], 0.5);
  EXPECT_DOUBLE_EQ(report.pair_contact[1][0], 0.5);
  EXPECT_DOUBLE_EQ(report.pair_contact[0][2], 0.0);
  // A has the top composite (gives 0.5 + receives 1.0 + ec 0.5).
  EXPECT_EQ(report.MostEngaged(), 0);
}

TEST(Engagement, ToStringNamesEveryone) {
  MetadataRepository repo;
  EventContext ctx;
  ctx.participant_names = {"Ana", "Bo"};
  repo.SetContext(ctx);
  ASSERT_TRUE(repo.AddLookAt(Rec(0, 2, {{0, 1}})).ok());
  std::string s = ComputeEngagement(repo).ToString();
  EXPECT_NE(s.find("Ana"), std::string::npos);
  EXPECT_NE(s.find("Bo"), std::string::npos);
  EXPECT_NE(s.find("reciprocity"), std::string::npos);
}

TEST(Engagement, MeetingPrototypeProfile) {
  // On the paper's prototype, the dominant participant (P1) receives the
  // most attention, and reciprocity is high for the P1-P3 axis.
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt;
  opt.mode = PipelineMode::kGroundTruth;
  opt.parse_video = false;
  MetadataRepository repo;
  ASSERT_TRUE(DiEventPipeline(&scene, opt).Run(&repo).ok());
  EngagementReport report = ComputeEngagement(repo);
  ASSERT_EQ(report.participants.size(), 4u);
  // P1 receives the most attention.
  for (int i = 1; i < 4; ++i) {
    EXPECT_GT(report.participants[0].attention_received,
              report.participants[i].attention_received);
  }
  // The P1-P3 pair holds the most mutual contact.
  double p1p3 = report.pair_contact[0][2];
  EXPECT_GT(p1p3, report.pair_contact[0][1]);
  EXPECT_GT(p1p3, report.pair_contact[1][3]);
  EXPECT_GT(report.group_eye_contact, 0.5);
}

}  // namespace
}  // namespace dievent
