// Tests for extrinsic calibration (recovering the paper's iTj).

#include "geometry/calibration.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/rig.h"

namespace dievent {
namespace {

Pose RandomPose(Rng* rng) {
  Vec3 axis{rng->Uniform(-1, 1), rng->Uniform(-1, 1), rng->Uniform(-1, 1)};
  if (axis.Norm() < 1e-6) axis = {0, 0, 1};
  return Pose::FromQuaternion(
      Quaternion::FromAxisAngle(axis, rng->Uniform(-3, 3)),
      {rng->Uniform(-4, 4), rng->Uniform(-4, 4), rng->Uniform(-4, 4)});
}

TEST(EstimateRigidTransform, ExactRecoveryOnCleanPoints) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    Pose truth = RandomPose(&rng);
    std::vector<Vec3> src, tgt;
    for (int i = 0; i < 10; ++i) {
      Vec3 p{rng.Uniform(-2, 2), rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
      src.push_back(p);
      tgt.push_back(truth.TransformPoint(p));
    }
    auto est = EstimateRigidTransform(src, tgt);
    ASSERT_TRUE(est.ok()) << est.status();
    EXPECT_LT(PoseDistance(est.value(), truth), 1e-6) << trial;
    EXPECT_LT(AlignmentRmse(est.value(), src, tgt), 1e-8);
  }
}

TEST(EstimateRigidTransform, MinimumOfThreePoints) {
  Rng rng(12);
  Pose truth = RandomPose(&rng);
  std::vector<Vec3> src = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  std::vector<Vec3> tgt;
  for (const Vec3& p : src) tgt.push_back(truth.TransformPoint(p));
  auto est = EstimateRigidTransform(src, tgt);
  ASSERT_TRUE(est.ok());
  EXPECT_LT(AlignmentRmse(est.value(), src, tgt), 1e-8);
}

TEST(EstimateRigidTransform, RejectsBadInputs) {
  std::vector<Vec3> two = {{0, 0, 0}, {1, 0, 0}};
  EXPECT_EQ(EstimateRigidTransform(two, two).status().code(),
            StatusCode::kFailedPrecondition);
  std::vector<Vec3> three(3, Vec3{1, 2, 3});
  // Coincident points: rotation unobservable.
  EXPECT_EQ(EstimateRigidTransform(three, three).status().code(),
            StatusCode::kFailedPrecondition);
  std::vector<Vec3> four(4);
  EXPECT_EQ(EstimateRigidTransform(three, four).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EstimateRigidTransform, NoisyRecoveryDegradesGracefully) {
  Rng rng(13);
  Pose truth = RandomPose(&rng);
  std::vector<Vec3> src, tgt;
  const double kNoise = 0.01;
  for (int i = 0; i < 100; ++i) {
    Vec3 p{rng.Uniform(-2, 2), rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
    src.push_back(p);
    Vec3 q = truth.TransformPoint(p);
    tgt.push_back(q + Vec3{rng.Gaussian(0, kNoise),
                           rng.Gaussian(0, kNoise),
                           rng.Gaussian(0, kNoise)});
  }
  auto est = EstimateRigidTransform(src, tgt);
  ASSERT_TRUE(est.ok());
  // With 100 points and 1 cm noise, the estimate is ~mm-accurate.
  EXPECT_LT(PoseDistance(est.value(), truth), 0.02);
  EXPECT_NEAR(AlignmentRmse(est.value(), src, tgt), kNoise * 1.7, 0.01);
}

TEST(EstimateRigidTransform, RotationIsProper) {
  // The estimated rotation must have determinant +1 (no reflections),
  // even for noisy near-planar point sets.
  Rng rng(14);
  Pose truth = RandomPose(&rng);
  std::vector<Vec3> src, tgt;
  for (int i = 0; i < 20; ++i) {
    Vec3 p{rng.Uniform(-2, 2), rng.Uniform(-2, 2), 0.01 * rng.NextDouble()};
    src.push_back(p);
    tgt.push_back(truth.TransformPoint(p) +
                  Vec3{rng.Gaussian(0, 0.005), rng.Gaussian(0, 0.005),
                       rng.Gaussian(0, 0.005)});
  }
  auto est = EstimateRigidTransform(src, tgt);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value().rotation.Determinant(), 1.0, 1e-6);
}

TEST(CameraPairCalibrator, RecoversRigExtrinsics) {
  // The deployment story: head positions observed simultaneously by two
  // cameras calibrate the paper's iTj.
  Rig rig = Rig::MakeCornerRig(5, 4, 2.5, {0, 0, 1},
                               Intrinsics::FromFov(640, 480, DegToRad(70)));
  Rng rng(15);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      CameraPairCalibrator cal;
      for (int k = 0; k < 40; ++k) {
        Vec3 w{rng.Uniform(-1, 1), rng.Uniform(-0.8, 0.8),
               rng.Uniform(0.9, 1.4)};
        cal.AddObservation(
            rig.camera(i).camera_from_world().TransformPoint(w),
            rig.camera(j).camera_from_world().TransformPoint(w));
      }
      auto est = cal.Calibrate();
      ASSERT_TRUE(est.ok());
      EXPECT_LT(PoseDistance(est.value(), rig.CameraFromCamera(i, j)),
                1e-6);
      EXPECT_LT(cal.Residual(est.value()), 1e-8);
    }
  }
}

TEST(CameraPairCalibrator, NeedsThreeObservations) {
  CameraPairCalibrator cal;
  cal.AddObservation({0, 0, 1}, {1, 0, 1});
  cal.AddObservation({0, 1, 1}, {1, 1, 1});
  EXPECT_FALSE(cal.Calibrate().ok());
  EXPECT_EQ(cal.NumObservations(), 2);
  cal.Reset();
  EXPECT_EQ(cal.NumObservations(), 0);
}

}  // namespace
}  // namespace dievent
