#include "video/scene_segmentation.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

Histogram Solid(int which) {
  Histogram h;
  h.bins.assign(4, 0.0);
  h.bins[which] = 1.0;
  return h;
}

/// Builds shots of 10 frames each whose key frame points at a signature
/// chosen from `palette_indices`.
std::pair<std::vector<Shot>, std::vector<Histogram>> MakeShots(
    const std::vector<int>& palette_indices) {
  std::vector<Shot> shots;
  std::vector<Histogram> sigs;
  for (size_t i = 0; i < palette_indices.size(); ++i) {
    int begin = static_cast<int>(i) * 10;
    Shot s{begin, begin + 10, {begin}};
    shots.push_back(s);
    for (int f = 0; f < 10; ++f) sigs.push_back(Solid(palette_indices[i]));
  }
  return {shots, sigs};
}

TEST(SceneSegmentation, IdenticalShotsMergeIntoOneScene) {
  auto [shots, sigs] = MakeShots({0, 0, 0});
  auto scenes = SegmentScenes(shots, sigs, {});
  ASSERT_EQ(scenes.size(), 1u);
  EXPECT_EQ(scenes[0].shots.size(), 3u);
  EXPECT_EQ(scenes[0].begin_frame(), 0);
  EXPECT_EQ(scenes[0].end_frame(), 30);
}

TEST(SceneSegmentation, DistinctShotsStaySeparate) {
  auto [shots, sigs] = MakeShots({0, 1, 2});
  auto scenes = SegmentScenes(shots, sigs, {});
  EXPECT_EQ(scenes.size(), 3u);
}

TEST(SceneSegmentation, AlternatingCameraAnglesMergeViaLookback) {
  // A-B-A-B: shot 3 (A) matches shot 1 (A) two back; with lookback 2 the
  // whole alternation is one scene.
  auto [shots, sigs] = MakeShots({0, 1, 0, 1});
  SceneSegmentationOptions opt;
  opt.lookback_shots = 2;
  auto scenes = SegmentScenes(shots, sigs, opt);
  // First A and B differ -> B starts a new scene; but A again matches the
  // A two back inside... B's scene only contains B so lookback from the
  // B-scene sees only B. Expected: {A}, {B, A, B}? The merge rule looks
  // back within the *current* scene: scene {B} + incoming A: lookback 2
  // covers only B -> no match -> new scene {A}; then incoming B matches
  // nothing in {A} -> new scene. So alternation without a bridging shot
  // stays separate:
  EXPECT_EQ(scenes.size(), 4u);

  // With a lookback window that can reach across once merged, a pattern
  // A-A-B-A keeps the trailing A in the first scene's continuation:
  auto [shots2, sigs2] = MakeShots({0, 0, 1, 0});
  auto scenes2 = SegmentScenes(shots2, sigs2, opt);
  // {A,A} then B unmatched -> {B}; final A vs {B} lookback 1 shot only.
  EXPECT_EQ(scenes2.size(), 3u);
}

TEST(SceneSegmentation, LookbackInsideSceneBridgesInterleaving) {
  // Once a scene contains {A, B}, an incoming A matches the A one-back
  // with lookback 2, keeping interleaved dialogue in a single scene.
  auto [shots, sigs] = MakeShots({0, 0, 1, 0});
  // Force B to merge by lowering the threshold (similar-enough palettes
  // are emulated by reusing signature 0 for shot B's key frame):
  std::vector<Shot> custom = shots;
  // Make shot 2's key frame share some mass with A.
  std::vector<Histogram> csigs = sigs;
  csigs[20].bins = {0.7, 0.3, 0, 0};
  SceneSegmentationOptions opt;
  opt.merge_similarity = 0.6;
  opt.lookback_shots = 2;
  auto scenes = SegmentScenes(custom, csigs, opt);
  ASSERT_EQ(scenes.size(), 1u);
  EXPECT_EQ(scenes[0].shots.size(), 4u);
}

TEST(SceneSegmentation, EmptyInput) {
  EXPECT_TRUE(SegmentScenes({}, {}, {}).empty());
}

TEST(SceneSegmentation, ThresholdControlsMerging) {
  auto [shots, sigs] = MakeShots({0, 0});
  SceneSegmentationOptions strict;
  strict.merge_similarity = 1.01;  // impossible
  EXPECT_EQ(SegmentScenes(shots, sigs, strict).size(), 2u);
  SceneSegmentationOptions lax;
  lax.merge_similarity = 0.0;
  EXPECT_EQ(SegmentScenes(shots, sigs, lax).size(), 1u);
}

}  // namespace
}  // namespace dievent
