#include "render/scene_renderer.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "render/face_renderer.h"
#include "sim/scenario.h"

namespace dievent {
namespace {

int CountNear(const ImageRgb& img, const Rgb& ref, int tol) {
  int n = 0;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      Rgb c = GetRgb(img, x, y);
      if (std::abs(c.r - ref.r) <= tol && std::abs(c.g - ref.g) <= tol &&
          std::abs(c.b - ref.b) <= tol) {
        ++n;
      }
    }
  }
  return n;
}

TEST(SceneRenderer, FrameHasRigResolution) {
  DiningScene scene = MakeMeetingScenario();
  ImageRgb frame = RenderViewAt(scene, 0.0, 0, RenderOptions{});
  EXPECT_EQ(frame.width(), 640);
  EXPECT_EQ(frame.height(), 480);
  EXPECT_EQ(frame.channels(), 3);
}

TEST(SceneRenderer, ContainsFacesAndTable) {
  DiningScene scene = MakeMeetingScenario();
  RenderOptions opt;
  ImageRgb frame = RenderViewAt(scene, 10.0, 0, opt);
  EXPECT_GT(CountNear(frame, face_model::kSkin, 2), 200);
  EXPECT_GT(CountNear(frame, opt.table_color, 2), 2000);
  EXPECT_GT(CountNear(frame, opt.background, 2), 50000);
}

TEST(SceneRenderer, DisableTableRemovesIt) {
  DiningScene scene = MakeMeetingScenario();
  RenderOptions opt;
  opt.draw_table = false;
  ImageRgb frame = RenderViewAt(scene, 10.0, 0, opt);
  EXPECT_EQ(CountNear(frame, opt.table_color, 2), 0);
}

TEST(SceneRenderer, IlluminationScalesBackground) {
  DiningScene scene = MakeMeetingScenario();
  RenderOptions dim;
  dim.illumination = 0.5;
  ImageRgb frame = RenderViewAt(scene, 0.0, 0, dim);
  Rgb corner = GetRgb(frame, 0, 0);
  EXPECT_NEAR(corner.r, dim.background.r * 0.5, 2);
  EXPECT_NEAR(corner.g, dim.background.g * 0.5, 2);
}

TEST(SceneRenderer, NoiseRequiresRng) {
  DiningScene scene = MakeMeetingScenario();
  RenderOptions opt;
  opt.noise_sigma = 10.0;
  ImageRgb clean = RenderViewAt(scene, 0.0, 0, opt, nullptr);
  ImageRgb clean2 = RenderViewAt(scene, 0.0, 0, opt, nullptr);
  EXPECT_TRUE(clean == clean2);
  Rng rng(99);
  ImageRgb noisy = RenderViewAt(scene, 0.0, 0, opt, &rng);
  EXPECT_FALSE(noisy == clean);
}

TEST(SceneRenderer, IsFrontFacingMatchesGazeGeometry) {
  DiningScene scene = MakeMeetingScenario();
  auto states = scene.StateAt(10.0);
  // P1 at (-1,0) looks at P3 at (1,0): away from cameras on the -x wall,
  // towards cameras on the +x wall.
  const CameraModel& c1 = scene.rig().camera(0);  // corner (-2.5, -2)
  const CameraModel& c2 = scene.rig().camera(1);  // corner (+2.5, -2)
  EXPECT_FALSE(IsFrontFacing(c1, states[0]));
  EXPECT_TRUE(IsFrontFacing(c2, states[0]));
}

TEST(SceneRenderer, EveryParticipantFrontalSomewhere) {
  // The prototype's 4-corner rig guarantees at least one frontal view per
  // participant whenever they look at another participant — the paper's
  // reason for using four cameras.
  DiningScene scene = MakeMeetingScenario();
  for (int f = 0; f < scene.num_frames(); f += 25) {
    auto states = scene.StateAt(scene.TimeOfFrame(f));
    for (int i = 0; i < scene.NumParticipants(); ++i) {
      if (states[i].gaze_target < 0) continue;  // looking at the table
      bool frontal = false;
      for (int c = 0; c < scene.rig().NumCameras(); ++c) {
        if (IsFrontFacing(scene.rig().camera(c), states[i])) frontal = true;
      }
      EXPECT_TRUE(frontal) << "frame " << f << " participant " << i;
    }
  }
}

TEST(SceneRenderer, OcclusionDrawsNearFaceOnTop) {
  // Two participants on one viewing ray: the nearer head must occlude.
  Table table;
  std::vector<ScriptedParticipant> people;
  ScriptedParticipant a, b;
  a.profile.id = 0;
  a.profile.name = "near";
  a.profile.marker_color = Rgb{250, 0, 0};
  a.seat_head_position = {1.0, 0, 1.0};
  b.profile.id = 1;
  b.profile.name = "far";
  b.profile.marker_color = Rgb{0, 0, 250};
  b.seat_head_position = {2.0, 0, 1.0};
  people.push_back(a);
  people.push_back(b);
  Rig rig;
  rig.AddCamera(CameraModel("C", Intrinsics::FromFov(640, 480, 1.2),
                            Pose::LookAt({-1, 0, 1.0}, {1, 0, 1.0})));
  auto scene = DiningScene::Create(table, std::move(rig), people, 10, 10);
  ASSERT_TRUE(scene.ok());
  RenderOptions opt;
  opt.draw_table = false;
  ImageRgb frame = RenderViewAt(scene.value(), 0.0, 0, opt);
  // Near (red-capped) head visible; far (blue-capped) fully hidden.
  EXPECT_GT(CountNear(frame, Rgb{250, 0, 0}, 2), 20);
  EXPECT_EQ(CountNear(frame, Rgb{0, 0, 250}, 2), 0);
}

}  // namespace
}  // namespace dievent
