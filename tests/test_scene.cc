#include "sim/scene.h"

#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace dievent {
namespace {

ScriptedParticipant Person(int id, Vec3 seat) {
  ScriptedParticipant p;
  p.profile.id = id;
  p.profile.name = "P" + std::to_string(id + 1);
  p.seat_head_position = seat;
  return p;
}

Rig TwoCameraRig() {
  return Rig::MakeFacingPair(5.0, 2.5, -15.0,
                             Intrinsics::FromFov(640, 480, DegToRad(70)));
}

TEST(DiningScene, CreateValidates) {
  Table table;
  EXPECT_FALSE(
      DiningScene::Create(table, TwoCameraRig(), {}, 10.0, 100).ok());
  std::vector<ScriptedParticipant> people;
  people.push_back(Person(0, {0, 0, 1.2}));
  EXPECT_FALSE(
      DiningScene::Create(table, Rig{}, people, 10.0, 100).ok());
  EXPECT_FALSE(
      DiningScene::Create(table, TwoCameraRig(), people, 0.0, 100).ok());
  EXPECT_FALSE(
      DiningScene::Create(table, TwoCameraRig(), people, 10.0, 0).ok());
  EXPECT_TRUE(
      DiningScene::Create(table, TwoCameraRig(), people, 10.0, 100).ok());
}

TEST(DiningScene, RejectsGazeAtUnknownOrSelf) {
  Table table;
  std::vector<ScriptedParticipant> people;
  people.push_back(Person(0, {-0.5, 0, 1.2}));
  people.push_back(Person(1, {0.5, 0, 1.2}));
  ASSERT_TRUE(people[0].gaze.Add(0, 1, GazeTarget{5}).ok());
  EXPECT_FALSE(
      DiningScene::Create(table, TwoCameraRig(), people, 10.0, 10).ok());

  std::vector<ScriptedParticipant> selfish;
  selfish.push_back(Person(0, {-0.5, 0, 1.2}));
  selfish.push_back(Person(1, {0.5, 0, 1.2}));
  ASSERT_TRUE(selfish[1].gaze.Add(0, 1, GazeTarget{1}).ok());
  EXPECT_FALSE(
      DiningScene::Create(table, TwoCameraRig(), selfish, 10.0, 10).ok());
}

TEST(DiningScene, GazeAimsAtScriptedTarget) {
  Table table;
  std::vector<ScriptedParticipant> people;
  people.push_back(Person(0, {-1, 0, 1.2}));
  people.push_back(Person(1, {1, 0, 1.2}));
  ASSERT_TRUE(people[0].gaze.Add(0.0, 5.0, GazeTarget{1}).ok());
  auto scene =
      DiningScene::Create(table, TwoCameraRig(), people, 10.0, 50);
  ASSERT_TRUE(scene.ok());
  auto states = scene.value().StateAt(1.0);
  EXPECT_EQ(states[0].gaze_target, 1);
  EXPECT_NEAR(states[0].gaze_direction.x, 1.0, 1e-9);
  EXPECT_NEAR(states[0].gaze_direction.y, 0.0, 1e-9);
  // Default gaze (no script): table centre, i.e. downward-ish.
  EXPECT_EQ(states[1].gaze_target, -1);
  EXPECT_LT(states[1].gaze_direction.z, 0.0);
}

TEST(DiningScene, AwayGazePointsOutward) {
  Table table;
  std::vector<ScriptedParticipant> people;
  people.push_back(Person(0, {-1, 0, 1.2}));
  people.push_back(Person(1, {1, 0, 1.2}));
  ASSERT_TRUE(people[0].gaze.Add(0.0, 5.0,
                                 GazeTarget{GazeTarget::kAway}).ok());
  auto scene =
      DiningScene::Create(table, TwoCameraRig(), people, 10.0, 50);
  ASSERT_TRUE(scene.ok());
  auto states = scene.value().StateAt(1.0);
  // Away from the table centre: negative x for the (-1, 0) seat.
  EXPECT_LT(states[0].gaze_direction.x, 0.0);
}

TEST(DiningScene, HeadPoseForwardFollowsGaze) {
  DiningScene scene = MakeMeetingScenario();
  auto states = scene.StateAt(10.0);
  for (const auto& s : states) {
    Vec3 fwd = s.world_from_head.rotation.Col(2);
    EXPECT_NEAR(RadToDeg(AngleBetween(fwd, s.gaze_direction)), 0.0, 1e-6);
  }
}

TEST(DiningScene, GroundTruthLookAtHasZeroDiagonal) {
  DiningScene scene = MakeMeetingScenario();
  auto looks = scene.GroundTruthLookAt(12.3);
  for (size_t i = 0; i < looks.size(); ++i) EXPECT_FALSE(looks[i][i]);
}

TEST(DiningScene, TimeOfFrameRoundTrips) {
  DiningScene scene = MakeMeetingScenario();
  EXPECT_DOUBLE_EQ(scene.TimeOfFrame(0), 0.0);
  EXPECT_NEAR(scene.TimeOfFrame(610), 40.0, 1e-9);
}

}  // namespace
}  // namespace dievent
