// Write-ahead journal: framing, rotation, fsync policies, torn-tail
// salvage, and mid-stream corruption semantics (io/journal.h).

#include "io/journal.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "io/faulty_file.h"

namespace dievent {
namespace {

/// A fresh, empty scratch directory under the gtest temp root.
std::string FreshDir(const std::string& name) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = testing::TempDir() + "/" + name;
  if (fs->Exists(dir)) {
    auto names = fs->ListDir(dir);
    EXPECT_TRUE(names.ok()) << names.status().ToString();
    for (const std::string& n : names.value()) {
      EXPECT_TRUE(fs->Remove(JoinPath(dir, n)).ok());
    }
  } else {
    EXPECT_TRUE(fs->CreateDir(dir).ok());
  }
  return dir;
}

/// Replays `dir`, collecting payloads; asserts the replay status is OK.
std::vector<std::string> Replay(FileSystem* fs, const std::string& dir,
                                JournalReplayInfo* info) {
  std::vector<std::string> payloads;
  Status s = ReplayJournal(
      fs, dir,
      [&](std::string_view p) {
        payloads.emplace_back(p);
        return Status::OK();
      },
      info);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return payloads;
}

TEST(JournalSegmentName, RoundTripsAndRejectsJunk) {
  EXPECT_EQ(JournalSegmentName(42), "journal-000042.wal");
  EXPECT_EQ(ParseJournalSegmentName("journal-000042.wal"), 42);
  EXPECT_EQ(ParseJournalSegmentName("journal-1234567.wal"), 1234567);
  EXPECT_EQ(ParseJournalSegmentName("snapshot.dmr"), -1);
  EXPECT_EQ(ParseJournalSegmentName("journal-.wal"), -1);
  EXPECT_EQ(ParseJournalSegmentName("journal-12x4.wal"), -1);
  EXPECT_EQ(ParseJournalSegmentName("journal-000001.wal.corrupt"), -1);
}

TEST(Journal, RoundTripsInOrderAcrossRotation) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = FreshDir("journal_rotate");
  JournalOptions options;
  options.rotate_bytes = 64;  // force rotation every few records
  auto writer = JournalWriter::Open(fs, dir, 0, options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  std::vector<std::string> want;
  for (int i = 0; i < 20; ++i) {
    want.push_back(StrFormat("record-%02d-%s", i,
                             std::string(i % 7, 'x').c_str()));
    ASSERT_TRUE(writer.value()->Append(want.back()).ok());
  }
  EXPECT_EQ(writer.value()->records_appended(), 20u);
  EXPECT_GT(writer.value()->segments_created(), 1u);
  const uint32_t last_index = writer.value()->segment_index();
  ASSERT_TRUE(writer.value()->Close().ok());

  JournalReplayInfo info;
  EXPECT_EQ(Replay(fs, dir, &info), want);
  EXPECT_EQ(info.records, 20u);
  EXPECT_EQ(info.segments, writer.value()->segments_created());
  EXPECT_FALSE(info.tail_truncated);
  EXPECT_EQ(info.next_segment_index, last_index + 1);
}

TEST(Journal, ReplayOfMissingDirectoryIsEmptyNotAnError) {
  JournalReplayInfo info;
  Status s = ReplayJournal(FileSystem::Default(),
                           testing::TempDir() + "/journal_never_created",
                           [](std::string_view) { return Status::OK(); },
                           &info);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(info.records, 0u);
  EXPECT_EQ(info.segments, 0u);
}

TEST(Journal, TornTailIsSalvagedAndPhysicallyTruncated) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = FreshDir("journal_torn");
  auto writer = JournalWriter::Open(fs, dir, 0, JournalOptions{});
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(writer.value()->Append(StrFormat("rec-%d", i)).ok());
  }
  ASSERT_TRUE(writer.value()->Close().ok());

  // Simulate a crash mid-append: garbage after the last whole frame.
  const std::string seg = JoinPath(dir, JournalSegmentName(0));
  auto size = fs->FileSize(seg);
  ASSERT_TRUE(size.ok());
  {
    auto f = fs->OpenForAppend(seg);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->Append(std::string("\x01\x02\x03", 3)).ok());
    ASSERT_TRUE(f.value()->Close().ok());
  }

  JournalReplayInfo info;
  EXPECT_EQ(Replay(fs, dir, &info).size(), 5u);
  EXPECT_TRUE(info.tail_truncated);
  EXPECT_EQ(info.truncated_segment, JournalSegmentName(0));
  EXPECT_EQ(info.truncate_offset, size.value());
  EXPECT_EQ(info.bytes_discarded, 3u);

  // Truncation restores the exact acknowledged prefix; a second replay
  // is clean.
  ASSERT_TRUE(TruncateTornTail(fs, dir, info).ok());
  EXPECT_EQ(fs->FileSize(seg).value(), size.value());
  JournalReplayInfo again;
  EXPECT_EQ(Replay(fs, dir, &again).size(), 5u);
  EXPECT_FALSE(again.tail_truncated);
}

TEST(Journal, TornPayloadInsideLastRecordSalvagesThePrefix) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = FreshDir("journal_torn_payload");
  auto writer = JournalWriter::Open(fs, dir, 0, JournalOptions{});
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(writer.value()->Append("payload-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(writer.value()->Close().ok());

  // Cut two bytes off the final record's payload.
  const std::string seg = JoinPath(dir, JournalSegmentName(0));
  auto size = fs->FileSize(seg);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(fs->Truncate(seg, size.value() - 2).ok());

  JournalReplayInfo info;
  EXPECT_EQ(Replay(fs, dir, &info).size(), 3u);
  EXPECT_TRUE(info.tail_truncated);
  EXPECT_GT(info.bytes_discarded, 0u);
}

TEST(Journal, MidStreamCorruptionIsFatalNotSalvaged) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = FreshDir("journal_midstream");
  JournalOptions options;
  options.rotate_bytes = 48;  // several segments
  auto writer = JournalWriter::Open(fs, dir, 0, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(writer.value()->Append(StrFormat("seg-rec-%02d", i)).ok());
  }
  ASSERT_TRUE(writer.value()->segments_created() > 1u);
  ASSERT_TRUE(writer.value()->Close().ok());

  // Flip one payload byte in the FIRST segment: damage before the end
  // of the stream can hide acknowledged records, so replay must refuse.
  const std::string seg = JoinPath(dir, JournalSegmentName(0));
  auto data = fs->ReadFile(seg);
  ASSERT_TRUE(data.ok());
  std::string bytes = data.value();
  bytes[bytes.size() - 1] ^= 0x40;
  {
    auto f = fs->OpenForWrite(seg);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->Append(bytes).ok());
    ASSERT_TRUE(f.value()->Close().ok());
  }

  JournalReplayInfo info;
  Status s = ReplayJournal(
      fs, dir, [](std::string_view) { return Status::OK(); }, &info);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("mid-stream"), std::string::npos)
      << s.ToString();
}

TEST(Journal, FsyncPolicyBoundsPowerCutLossExactly) {
  FileSystem* base = FileSystem::Default();
  struct Case {
    const char* name;
    FsyncPolicy fsync;
    int sync_every;
    uint64_t survivors;  // records after a power cut, out of 10
  };
  // kEveryRecord: ack == durable, nothing lost. kEveryN(4): records
  // 1..8 were covered by the two syncs, 9..10 ride in OS buffers and
  // die. kNever: even the segment header was never synced.
  const Case cases[] = {
      {"every_record", FsyncPolicy::kEveryRecord, 32, 10},
      {"every_n", FsyncPolicy::kEveryN, 4, 8},
      {"never", FsyncPolicy::kNever, 32, 0},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string dir = FreshDir(std::string("journal_cut_") + c.name);
    FaultyFileSystem fs(base, FileFaultSpec{});
    JournalOptions options;
    options.fsync = c.fsync;
    options.sync_every = c.sync_every;
    auto writer = JournalWriter::Open(&fs, dir, 0, options);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(writer.value()->Append(StrFormat("r-%d", i)).ok());
    }
    // Crash without Close/Sync, then lose everything unsynced.
    writer.value().reset();
    ASSERT_TRUE(fs.LoseUnsyncedData().ok());

    JournalReplayInfo info;
    EXPECT_EQ(Replay(base, dir, &info).size(), c.survivors);
  }
}

TEST(Journal, InjectedIoErrorsSurfaceAsIoError) {
  FileFaultSpec all_fail;
  all_fail.write_error_probability = 1.0;
  FaultyFileSystem fs(FileSystem::Default(), all_fail);
  auto writer = JournalWriter::Open(&fs, FreshDir("journal_eio"), 0,
                                    JournalOptions{});
  // Even opening fails: the segment header append is itself a write.
  EXPECT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kIoError);
  EXPECT_GT(fs.counters().injected_write_errors, 0);
}

TEST(Journal, AppendBatchIsOneBufferedWriteAndReplaysInOrder) {
  std::vector<std::string> want;
  for (int i = 0; i < 10; ++i) {
    want.push_back(StrFormat("batched-%02d-%s", i,
                             std::string(i % 5, 'y').c_str()));
  }
  std::vector<std::string_view> views(want.begin(), want.end());

  // Same payloads through both paths; count physical appends.
  const std::string batch_dir = FreshDir("journal_batch");
  FaultyFileSystem batch_fs(FileSystem::Default(), FileFaultSpec{});
  auto batch = JournalWriter::Open(&batch_fs, batch_dir, 0, JournalOptions{});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_TRUE(batch.value()->AppendBatch(views).ok());
  EXPECT_EQ(batch.value()->records_appended(), want.size());
  ASSERT_TRUE(batch.value()->Close().ok());

  const std::string serial_dir = FreshDir("journal_batch_serial");
  FaultyFileSystem serial_fs(FileSystem::Default(), FileFaultSpec{});
  auto serial =
      JournalWriter::Open(&serial_fs, serial_dir, 0, JournalOptions{});
  ASSERT_TRUE(serial.ok());
  for (const std::string& p : want) {
    ASSERT_TRUE(serial.value()->Append(p).ok());
  }
  ASSERT_TRUE(serial.value()->Close().ok());

  // Bit-compatible framing: both replay to the same payload sequence...
  JournalReplayInfo info;
  EXPECT_EQ(Replay(FileSystem::Default(), batch_dir, &info), want);
  EXPECT_EQ(Replay(FileSystem::Default(), serial_dir, &info), want);
  // ...but the batch amortized N appends into one buffered write.
  EXPECT_EQ(batch_fs.counters().appends,
            serial_fs.counters().appends -
                static_cast<long long>(want.size()) + 1);
}

TEST(Journal, AppendBatchLandsContiguouslyInOneSegment) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = FreshDir("journal_batch_rotate");
  JournalOptions options;
  options.rotate_bytes = 64;  // far smaller than the batch below
  auto writer = JournalWriter::Open(fs, dir, 0, options);
  ASSERT_TRUE(writer.ok());

  std::vector<std::string> want(12, std::string(16, 'z'));
  std::vector<std::string_view> views(want.begin(), want.end());
  ASSERT_TRUE(writer.value()->AppendBatch(views).ok());
  // Rotation only happens between batches, never inside one.
  EXPECT_EQ(writer.value()->segments_created(), 1u);
  ASSERT_TRUE(writer.value()->Append("after").ok());
  EXPECT_EQ(writer.value()->segments_created(), 2u);
  ASSERT_TRUE(writer.value()->Close().ok());

  want.push_back("after");
  JournalReplayInfo info;
  EXPECT_EQ(Replay(fs, dir, &info), want);
  EXPECT_EQ(info.records, want.size());
}

TEST(Journal, AppendBatchOfNothingIsANoOp) {
  const std::string dir = FreshDir("journal_batch_empty");
  auto writer =
      JournalWriter::Open(FileSystem::Default(), dir, 0, JournalOptions{});
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE(writer.value()->AppendBatch({}).ok());
  EXPECT_EQ(writer.value()->records_appended(), 0u);
  ASSERT_TRUE(writer.value()->Close().ok());
}

TEST(Journal, OversizedRecordIsRejectedUpFront) {
  const std::string dir = FreshDir("journal_oversize");
  auto writer =
      JournalWriter::Open(FileSystem::Default(), dir, 0, JournalOptions{});
  ASSERT_TRUE(writer.ok());
  const std::string huge((64u << 20) + 1, 'x');
  EXPECT_EQ(writer.value()->Append(huge).code(),
            StatusCode::kInvalidArgument);
  // The journal remains usable: the bad record never reached the file.
  EXPECT_TRUE(writer.value()->Append("small").ok());
  ASSERT_TRUE(writer.value()->Close().ok());
  JournalReplayInfo info;
  EXPECT_EQ(Replay(FileSystem::Default(), dir, &info).size(), 1u);
}

}  // namespace
}  // namespace dievent
