// Bounded MPMC work queue: FIFO semantics, capacity backpressure, the
// closed-queue shutdown handshake, a many-producer/many-consumer
// accounting stress, and SimClock integration (a blocked Pop releases
// its pending-work token so simulated time can auto-advance).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mpmc_queue.h"

namespace dievent {
namespace {

TEST(MpmcQueueTest, FifoAndCapacity) {
  MpmcQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_TRUE(q.TryPush(3));
  EXPECT_FALSE(q.TryPush(4)) << "queue is full";
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.max_depth_seen(), 3u);

  std::optional<int> v = q.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  v = q.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 2);
  EXPECT_TRUE(q.TryPush(4));
  v = q.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 3);
  v = q.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 4);
  EXPECT_FALSE(q.TryPop().has_value());
  EXPECT_EQ(q.max_depth_seen(), 3u);
}

TEST(MpmcQueueTest, CapacityClampedToOne) {
  MpmcQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(7));
  EXPECT_FALSE(q.TryPush(8));
}

TEST(MpmcQueueTest, CloseWakesConsumersAfterDrain) {
  MpmcQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.Push(3)) << "push after close fails";
  EXPECT_FALSE(q.TryPush(3));
  // Queued items remain poppable; then the closed queue reports empty.
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(MpmcQueueTest, BlockingPushUnblocksOnPop) {
  MpmcQueue<int> q(1);
  EXPECT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // blocks until the consumer makes room
    pushed.store(true);
  });
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(MpmcQueueTest, CloseUnblocksWaitingProducer) {
  MpmcQueue<int> q(1);
  EXPECT_TRUE(q.Push(1));
  std::thread producer([&] {
    EXPECT_FALSE(q.Push(2)) << "closed while blocked: item dropped";
  });
  q.Close();
  producer.join();
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(MpmcQueueTest, ManyProducersManyConsumersExactAccounting) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 250;
  MpmcQueue<int> q(8);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::vector<int>> received(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&q, &received, c] {
      while (std::optional<int> v = q.Pop()) {
        received[c].push_back(*v);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  // Every pushed item popped exactly once.
  std::multiset<int> all;
  for (const auto& r : received) all.insert(r.begin(), r.end());
  ASSERT_EQ(all.size(), static_cast<size_t>(kProducers * kPerProducer));
  for (int v = 0; v < kProducers * kPerProducer; ++v) {
    EXPECT_EQ(all.count(v), 1u) << "item " << v;
  }
  EXPECT_LE(q.max_depth_seen(), q.capacity());
}

TEST(MpmcQueueTest, BlockedPopReleasesSimClockToken) {
  // A consumer parked in Pop() must not hold simulated time still: the
  // producer's sleep is the only pending deadline, so auto-advance
  // should jump straight to it and the item should arrive at exactly
  // t = 5s.
  SimClock::Options options;
  options.auto_advance = true;
  SimClock clock(options);
  MpmcQueue<int> q(2, &clock);

  clock.AddPendingWork(2);  // one token per thread, credited pre-spawn
  double popped_at_s = -1;
  std::thread consumer([&] {
    std::optional<int> v = q.Pop();
    popped_at_s = clock.NowSeconds();
    EXPECT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42);
    clock.AddPendingWork(-1);
  });
  std::thread producer([&] {
    clock.SleepFor(VirtualClock::FromSeconds(5.0));
    EXPECT_TRUE(q.Push(42));
    clock.AddPendingWork(-1);
  });
  producer.join();
  consumer.join();
  EXPECT_DOUBLE_EQ(popped_at_s, 5.0);
}

}  // namespace
}  // namespace dievent
