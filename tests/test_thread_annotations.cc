// Functional tests for the annotated synchronization shims. The attributes
// themselves are checked by Clang's -Werror=thread-safety (see
// cmake/ThreadSafetyCheck.cmake for the negative-compile proof); these tests
// pin down the runtime behavior the annotations wrap: mutual exclusion,
// scoped release, try-lock semantics, and condition-variable wakeups.

#include "common/thread_annotations.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace dievent {
namespace {

TEST(Mutex, MutualExclusionUnderContention) {
  Mutex mutex;
  long counter = 0;  // guarded by `mutex` (local, so annotated by comment)
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(Mutex, TryLockReportsContention) {
  Mutex mutex;
  mutex.Lock();
  std::thread other([&] { EXPECT_FALSE(mutex.TryLock()); });
  other.join();
  mutex.Unlock();
  ASSERT_TRUE(mutex.TryLock());
  mutex.Unlock();
}

TEST(MutexLock, ReleasesOnScopeExit) {
  Mutex mutex;
  {
    MutexLock lock(mutex);
  }
  ASSERT_TRUE(mutex.TryLock());  // scope exit released it
  mutex.Unlock();
}

TEST(CondVar, WaitWakesOnNotify) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mutex);
    while (!ready) cv.Wait(mutex);
  });
  {
    MutexLock lock(mutex);
    ready = true;
    cv.NotifyOne();
  }
  waiter.join();  // must return; a missed wakeup would hang the test
  SUCCEED();
}

TEST(CondVar, WaitForTimesOutWithoutNotify) {
  Mutex mutex;
  CondVar cv;
  MutexLock lock(mutex);
  const auto status = cv.WaitFor(mutex, std::chrono::milliseconds(5));
  EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(CondVar, WaitUntilHonorsPastDeadline) {
  Mutex mutex;
  CondVar cv;
  MutexLock lock(mutex);
  const auto past = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1);
  EXPECT_EQ(cv.WaitUntil(mutex, past), std::cv_status::timeout);
}

TEST(CondVar, NotifyAllWakesEveryWaiter) {
  Mutex mutex;
  CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mutex);
      while (!go) cv.Wait(mutex);
      ++awake;
    });
  }
  {
    MutexLock lock(mutex);
    go = true;
    cv.NotifyAll();
  }
  for (auto& thread : waiters) thread.join();
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
}  // namespace dievent
