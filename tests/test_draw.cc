#include "image/draw.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

int CountColor(const ImageRgb& img, const Rgb& c) {
  int n = 0;
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x)
      if (GetRgb(img, x, y) == c) ++n;
  return n;
}

constexpr Rgb kRed{255, 0, 0};

TEST(FillRect, CoversExactArea) {
  ImageRgb img(10, 10, 3);
  FillRect(&img, 2, 3, 4, 5, kRed);
  EXPECT_EQ(CountColor(img, kRed), 20);
  EXPECT_EQ(GetRgb(img, 2, 3), kRed);
  EXPECT_EQ(GetRgb(img, 5, 7), kRed);
  EXPECT_NE(GetRgb(img, 6, 3), kRed);
}

TEST(FillRect, ClipsAtBorders) {
  ImageRgb img(4, 4, 3);
  FillRect(&img, -2, -2, 4, 4, kRed);
  EXPECT_EQ(CountColor(img, kRed), 4);  // only the 2x2 inside
  FillRect(&img, 3, 3, 10, 10, kRed);
  EXPECT_EQ(GetRgb(img, 3, 3), kRed);
}

TEST(FillCircle, AreaApproximatesPiR2) {
  ImageRgb img(101, 101, 3);
  FillCircle(&img, 50, 50, 20, kRed);
  int area = CountColor(img, kRed);
  EXPECT_NEAR(area, 3.14159 * 400, 50);
  EXPECT_EQ(GetRgb(img, 50, 50), kRed);
  EXPECT_NE(GetRgb(img, 50 + 21, 50), kRed);
}

TEST(FillEllipse, RespectsRadii) {
  ImageRgb img(101, 101, 3);
  FillEllipse(&img, 50, 50, 30, 10, kRed);
  EXPECT_EQ(GetRgb(img, 79, 50), kRed);
  EXPECT_NE(GetRgb(img, 50, 79), kRed);
  EXPECT_EQ(GetRgb(img, 50, 59), kRed);
}

TEST(FillEllipse, DegenerateRadiiAreNoop) {
  ImageRgb img(10, 10, 3);
  FillEllipse(&img, 5, 5, 0, 5, kRed);
  FillEllipse(&img, 5, 5, 5, -1, kRed);
  EXPECT_EQ(CountColor(img, kRed), 0);
}

TEST(DrawCircle, LeavesInteriorEmpty) {
  ImageRgb img(101, 101, 3);
  DrawCircle(&img, 50, 50, 20, kRed, 2.0);
  EXPECT_NE(GetRgb(img, 50, 50), kRed);
  EXPECT_EQ(GetRgb(img, 70, 50), kRed);
}

TEST(DrawLine, ConnectsEndpoints) {
  ImageRgb img(20, 20, 3);
  DrawLine(&img, {2, 2}, {17, 17}, kRed);
  EXPECT_EQ(GetRgb(img, 2, 2), kRed);
  EXPECT_EQ(GetRgb(img, 17, 17), kRed);
  EXPECT_EQ(GetRgb(img, 10, 10), kRed);
  EXPECT_NE(GetRgb(img, 2, 17), kRed);
}

TEST(DrawLine, ZeroLengthDrawsDot) {
  ImageRgb img(10, 10, 3);
  DrawLine(&img, {5, 5}, {5, 5}, kRed, 3.0);
  EXPECT_EQ(GetRgb(img, 5, 5), kRed);
}

TEST(DrawArrow, HeadStrokesPresent) {
  ImageRgb img(40, 40, 3);
  DrawArrow(&img, {5, 20}, {35, 20}, kRed, 1.0, 8.0);
  EXPECT_EQ(GetRgb(img, 35, 20), kRed);
  // Head strokes rise above and below the shaft near the tip.
  bool above = false, below = false;
  for (int x = 25; x <= 35; ++x) {
    for (int dy = 1; dy <= 5; ++dy) {
      if (GetRgb(img, x, 20 - dy) == kRed) above = true;
      if (GetRgb(img, x, 20 + dy) == kRed) below = true;
    }
  }
  EXPECT_TRUE(above);
  EXPECT_TRUE(below);
}

TEST(FillConvexPolygon, FillsTriangle) {
  ImageRgb img(30, 30, 3);
  FillConvexPolygon(&img, {{5, 5}, {25, 5}, {15, 25}}, kRed);
  EXPECT_EQ(GetRgb(img, 15, 10), kRed);
  EXPECT_NE(GetRgb(img, 5, 25), kRed);
  EXPECT_NE(GetRgb(img, 25, 25), kRed);
}

TEST(FillConvexPolygon, QuadCoversRectangle) {
  ImageRgb img(20, 20, 3);
  FillConvexPolygon(&img, {{3, 3}, {16, 3}, {16, 12}, {3, 12}}, kRed);
  // Interior definitely covered.
  for (int y = 4; y <= 11; ++y)
    for (int x = 4; x <= 15; ++x) EXPECT_EQ(GetRgb(img, x, y), kRed);
  EXPECT_NE(GetRgb(img, 2, 2), kRed);
}

TEST(FillConvexPolygon, FewerThanThreePointsIsNoop) {
  ImageRgb img(10, 10, 3);
  FillConvexPolygon(&img, {{1, 1}, {8, 8}}, kRed);
  EXPECT_EQ(CountColor(img, kRed), 0);
}

}  // namespace
}  // namespace dievent
