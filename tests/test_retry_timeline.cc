// SimClock ports of the acquisition retry-backoff and breaker-cooldown
// timing behavior. The originals in test_fault_injection.cc exercise the
// same paths over the real clock, where the backoff sleeps are real
// (tiny) delays that can only be bounded, not pinned. Here the whole
// retry state machine runs on simulated time, so the tests assert the
// EXACT retry timeline: total simulated time equals the integer-duration
// sum of the BackoffPolicy delays for precisely the retries that
// happened, and nothing else ever advances the clock.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/backoff.h"
#include "common/clock.h"
#include "image/image.h"
#include "video/fault_injection.h"
#include "video/video_source.h"

namespace dievent {
namespace {

std::vector<ImageRgb> GrayFrames(int n, int w = 8, int h = 8) {
  std::vector<ImageRgb> frames;
  for (int i = 0; i < n; ++i) {
    ImageRgb f(w, h, 3);
    f.Fill(static_cast<uint8_t>(10 + i));
    frames.push_back(std::move(f));
  }
  return frames;
}

std::unique_ptr<VideoSource> Camera(FaultSpec spec, SimClock* sim,
                                    int n = 50) {
  return std::make_unique<FaultyVideoSource>(
      std::make_unique<MemoryVideoSource>(GrayFrames(n), 10.0), spec, sim);
}

/// Sum of the backoff delays slept before retries 1..`retries` of
/// (camera, frame), in integer duration space — exactly what the reader
/// thread asks the clock to wait, in order.
VirtualClock::Duration RetrySleep(const BackoffPolicy& backoff, int camera,
                                  int frame, int retries) {
  VirtualClock::Duration total{};
  for (int attempt = 1; attempt <= retries; ++attempt) {
    total += VirtualClock::FromSeconds(backoff.Delay(
        attempt, static_cast<uint64_t>(camera),
        static_cast<uint64_t>(frame)));
  }
  return total;
}

TEST(RetryTimeline, ExhaustedRetriesSleepExactlyTheBackoffSchedule) {
  SimClock::Options sim_options;
  sim_options.auto_advance = true;
  SimClock sim(sim_options);

  FaultSpec spec;
  spec.flaky_windows = {{5, 6}};  // frame 5 fails every attempt
  AcquisitionPolicy policy;
  policy.retry_budget = 3;
  policy.hold_last_good = true;
  policy.quarantine_after = 100;
  policy.clock = &sim;
  policy.retry_backoff.base_s = 0.01;
  policy.retry_backoff.max_s = 0.05;
  policy.retry_backoff.multiplier = 2.0;
  policy.retry_backoff.jitter = 0.5;
  policy.retry_backoff.seed = 11;

  std::vector<std::unique_ptr<VideoSource>> sources;
  sources.push_back(Camera(spec, &sim));
  auto multi = MultiCameraSource::Create(std::move(sources), policy);
  ASSERT_TRUE(multi.ok());

  for (int f = 0; f < 5; ++f) {
    auto set = multi.value().GetFrames(f);
    ASSERT_TRUE(set.ok());
    EXPECT_TRUE(set.value().cameras[0].fresh());
  }
  // Healthy reads never touch the backoff path: zero simulated time.
  EXPECT_EQ(sim.Now().time_since_epoch(), VirtualClock::Duration::zero());

  auto held = multi.value().GetFrames(5);
  ASSERT_TRUE(held.ok());
  EXPECT_EQ(held.value().cameras[0].status, CameraFrameStatus::kHeld);
  EXPECT_EQ(multi.value().health(0).retries, policy.retry_budget);

  // The failing frame burned 1 + retry_budget attempts, sleeping the
  // deterministic backoff delay before each retry — and nothing else.
  EXPECT_EQ(sim.Now().time_since_epoch(),
            RetrySleep(policy.retry_backoff, 0, 5, policy.retry_budget));
}

TEST(RetryTimeline, TransientDropsSpendExactlyTheRetriesTheyNeed) {
  // Port of MultiCameraDegradation.RetryRecoversTransientDrop: random
  // per-attempt drops, deep retry budget. The drop schedule is a pure
  // function of (seed, frame, attempt), so the exact retry timeline —
  // which attempts failed, hence which backoff delays were slept — is
  // recomputable and the simulated clock must land on it precisely.
  SimClock::Options sim_options;
  sim_options.auto_advance = true;
  SimClock sim(sim_options);

  FaultSpec spec;
  spec.seed = 5;
  spec.drop_probability = 0.5;
  AcquisitionPolicy policy;
  policy.retry_budget = 4;
  policy.hold_last_good = false;
  policy.quarantine_after = 100;
  policy.clock = &sim;
  policy.retry_backoff.seed = 3;

  std::vector<std::unique_ptr<VideoSource>> sources;
  sources.push_back(Camera(spec, &sim));
  sources.push_back(Camera(FaultSpec{}, &sim));  // healthy: never sleeps
  auto multi = MultiCameraSource::Create(std::move(sources), policy);
  ASSERT_TRUE(multi.ok());

  VirtualClock::Duration expected{};
  long long expected_retries = 0;
  int retried_frames = 0;
  for (int f = 0; f < 50; ++f) {
    auto set = multi.value().GetFrames(f);
    ASSERT_TRUE(set.ok());
    EXPECT_TRUE(set.value().cameras[1].fresh());
    // Recompute this frame's retry count from the pure drop schedule.
    int failures = 0;
    while (failures <= policy.retry_budget && spec.ShouldDrop(f, failures)) {
      ++failures;
    }
    // One backoff sleep precedes each attempt after the first; the retry
    // stat counts only attempts after the first that FAILED, so a frame
    // recovered on attempt k sleeps k delays but records k-1 retries.
    expected += RetrySleep(policy.retry_backoff, 0, f,
                           std::min(failures, policy.retry_budget));
    expected_retries += std::max(0, failures - 1);
    const CameraFrameStatus status = set.value().cameras[0].status;
    if (failures == 0) {
      EXPECT_EQ(status, CameraFrameStatus::kFresh) << "frame " << f;
    } else if (failures <= policy.retry_budget) {
      EXPECT_EQ(status, CameraFrameStatus::kRetried) << "frame " << f;
      ++retried_frames;
    } else {
      EXPECT_EQ(status, CameraFrameStatus::kMissing) << "frame " << f;
    }
  }
  EXPECT_GT(retried_frames, 0);  // the scenario actually exercised retries
  EXPECT_EQ(multi.value().health(0).retries, expected_retries);
  EXPECT_EQ(sim.Now().time_since_epoch(), expected);
}

TEST(RetryTimeline, BreakerCooldownSpendsTimeOnlyWhileTheBreakerIsClosed) {
  // Port of MultiCameraDegradation.CircuitBreakerQuarantinesAndReadmits
  // with a retry budget: the failing closed-breaker reads (5, 6, 7) each
  // sleep their full backoff schedule; quarantined frames are never read
  // and cost zero simulated time; and half-open probes (17 fails, 27
  // readmits) get exactly ONE attempt, so neither sleeps at all.
  SimClock::Options sim_options;
  sim_options.auto_advance = true;
  SimClock sim(sim_options);

  FaultSpec spec;
  spec.flaky_windows = {{5, 20}};
  AcquisitionPolicy policy;
  policy.retry_budget = 2;
  policy.hold_last_good = false;
  policy.quarantine_after = 3;
  policy.readmit_after = 10;
  policy.clock = &sim;
  policy.retry_backoff.base_s = 0.005;
  policy.retry_backoff.seed = 7;

  std::vector<std::unique_ptr<VideoSource>> sources;
  sources.push_back(Camera(spec, &sim));
  auto multi = MultiCameraSource::Create(std::move(sources), policy);
  ASSERT_TRUE(multi.ok());

  VirtualClock::Duration expected{};
  for (int f = 0; f < 5; ++f) ASSERT_TRUE(multi.value().GetFrames(f).ok());
  EXPECT_EQ(sim.Now().time_since_epoch(), expected);

  // Three consecutive failures open the breaker; each slept both delays.
  EXPECT_EQ(multi.value().GetFrames(5).value().cameras[0].status,
            CameraFrameStatus::kMissing);
  EXPECT_EQ(multi.value().GetFrames(6).value().cameras[0].status,
            CameraFrameStatus::kMissing);
  EXPECT_EQ(multi.value().GetFrames(7).value().cameras[0].status,
            CameraFrameStatus::kQuarantined);
  for (int f : {5, 6, 7}) {
    expected += RetrySleep(policy.retry_backoff, 0, f, policy.retry_budget);
  }
  EXPECT_EQ(sim.Now().time_since_epoch(), expected);

  // Quarantined: the source is not read, the clock does not move.
  for (int f = 8; f < 17; ++f) {
    EXPECT_EQ(multi.value().GetFrames(f).value().cameras[0].status,
              CameraFrameStatus::kQuarantined);
  }
  EXPECT_EQ(sim.Now().time_since_epoch(), expected);

  // Failed probe at 17 (window runs to 20): a probe is a single attempt
  // with no retry budget, so even its failure costs zero simulated time.
  EXPECT_EQ(multi.value().GetFrames(17).value().cameras[0].status,
            CameraFrameStatus::kQuarantined);
  EXPECT_EQ(sim.Now().time_since_epoch(), expected);

  // Successful probe at 27: single attempt decodes, no backoff sleep.
  for (int f = 18; f < 27; ++f) (void)multi.value().GetFrames(f);
  auto back = multi.value().GetFrames(27);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().cameras[0].fresh());
  EXPECT_EQ(multi.value().health(0).readmissions, 1);
  EXPECT_EQ(sim.Now().time_since_epoch(), expected);
}

}  // namespace
}  // namespace dievent
