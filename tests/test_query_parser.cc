// Tests for the textual query language (Section II-E's query vocabulary).

#include "metadata/query_parser.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

LookAtRecord Rec(int frame, double t, int n,
                 std::vector<std::pair<int, int>> edges) {
  LookAtMatrix m(n);
  for (auto [a, b] : edges) m.Set(a, b, true);
  return LookAtRecord::FromMatrix(frame, t, m);
}

/// Same fixture as test_query: 10 frames @ 10 fps, EC(P1,P2) in 2-5,
/// P3->P1 from 4, P1 happy in 0-4, OH ramps 0.0..0.9.
MetadataRepository DemoRepo() {
  MetadataRepository repo;
  repo.set_fps(10.0);
  for (int f = 0; f < 10; ++f) {
    std::vector<std::pair<int, int>> edges;
    if (f >= 2 && f <= 5) {
      edges.push_back({0, 1});
      edges.push_back({1, 0});
    }
    if (f >= 4) edges.push_back({2, 0});
    EXPECT_TRUE(repo.AddLookAt(Rec(f, f / 10.0, 3, edges)).ok());
    if (f <= 4) {
      EmotionRecord er;
      er.frame = f;
      er.timestamp_s = f / 10.0;
      er.participant = 0;
      er.emotion = Emotion::kHappy;
      er.confidence = 1.0;
      EXPECT_TRUE(repo.AddEmotion(er).ok());
    }
    OverallEmotionRecord oe;
    oe.frame = f;
    oe.timestamp_s = f / 10.0;
    oe.overall_happiness = f * 0.1;
    oe.mean_valence = f * 0.1 - 0.5;
    oe.observed = 3;
    EXPECT_TRUE(repo.AddOverallEmotion(oe).ok());
  }
  return repo;
}

size_t Count(const MetadataRepository& repo, std::string_view text) {
  auto query = ParseQuery(text, &repo);
  EXPECT_TRUE(query.ok()) << text << " -> " << query.status();
  if (!query.ok()) return 0;
  return query.value().Execute().size();
}

TEST(QueryParser, SingleTerms) {
  MetadataRepository repo = DemoRepo();
  EXPECT_EQ(Count(repo, "ec(P1, P2)"), 4u);
  EXPECT_EQ(Count(repo, "look(P3, P1)"), 6u);
  EXPECT_EQ(Count(repo, "watched(P1)"), 8u);
  EXPECT_EQ(Count(repo, "feel(P1, happy)"), 5u);
  EXPECT_EQ(Count(repo, "time[0.3, 0.7)"), 4u);
  EXPECT_EQ(Count(repo, "oh >= 0.65"), 3u);
  EXPECT_EQ(Count(repo, "valence >= 0.35"), 1u);
}

TEST(QueryParser, ParticipantSyntaxVariants) {
  MetadataRepository repo = DemoRepo();
  EXPECT_EQ(Count(repo, "ec(1, 2)"), 4u);     // bare 1-based ids
  EXPECT_EQ(Count(repo, "ec(p1, P2)"), 4u);   // mixed case prefix
  EXPECT_EQ(Count(repo, "EC(P1,P2)"), 4u);    // keyword case-insensitive
}

TEST(QueryParser, ConjunctionsInAllSpellings) {
  MetadataRepository repo = DemoRepo();
  EXPECT_EQ(Count(repo, "ec(P1,P2) & feel(P1,happy)"), 3u);
  EXPECT_EQ(Count(repo, "ec(P1,P2) and feel(P1,happy)"), 3u);
  EXPECT_EQ(Count(repo, "ec(P1,P2) && feel(P1,happy)"), 3u);
  EXPECT_EQ(
      Count(repo, "ec(P1,P2) & feel(P1,happy) & time[0.3, 10)"), 2u);
}

TEST(QueryParser, NegativeNumbers) {
  MetadataRepository repo = DemoRepo();
  // valence ramps -0.5 .. 0.4: >= -0.25 matches frames 3..9.
  EXPECT_EQ(Count(repo, "valence >= -0.25"), 7u);
}

TEST(QueryParser, RejectsMalformedQueries) {
  MetadataRepository repo = DemoRepo();
  for (const char* bad : {
           "",
           "ec(P1 P2)",          // missing comma
           "ec(P1,P2",           // unclosed paren
           "stare(P1,P2)",       // unknown keyword
           "feel(P1, angryish)", // unknown emotion
           "time[5, 2)",         // empty range
           "oh > 0.5",           // only >= supported
           "ec(P0, P1)",         // participants start at P1
           "ec(P1,P2) extra",    // trailing garbage without '&'
           "ec(P1,P2) & ",       // dangling conjunction
       }) {
    auto q = ParseQuery(bad, &repo);
    EXPECT_FALSE(q.ok()) << "should reject: " << bad;
    EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  EXPECT_FALSE(ParseQuery("ec(P1,P2)", nullptr).ok());
}

TEST(QueryParser, MatchesBuilderEquivalents) {
  MetadataRepository repo = DemoRepo();
  auto parsed =
      ParseQuery("watched(P1) & time[0.2, 0.8) & oh >= 0.3", &repo);
  ASSERT_TRUE(parsed.ok());
  auto built = Query(&repo)
                   .AnyoneLookingAt(0)
                   .TimeRange(0.2, 0.8)
                   .MinOverallHappiness(0.3)
                   .Execute();
  auto from_text = parsed.value().Execute();
  ASSERT_EQ(from_text.size(), built.size());
  for (size_t i = 0; i < built.size(); ++i) {
    EXPECT_EQ(from_text[i].frame, built[i].frame);
  }
}

TEST(QueryParser, WhitespaceInsensitive) {
  MetadataRepository repo = DemoRepo();
  EXPECT_EQ(Count(repo, "  ec ( P1 , P2 )   &   oh>=0.2  "), 4u);
}

}  // namespace
}  // namespace dievent
