#include "ml/face_recognizer.h"

#include <gtest/gtest.h>

#include "render/face_renderer.h"
#include "render/scene_renderer.h"
#include "sim/scenario.h"
#include "vision/face_detector.h"

namespace dievent {
namespace {

std::vector<ParticipantProfile> MeetingProfiles() {
  DiningScene scene = MakeMeetingScenario();
  std::vector<ParticipantProfile> out;
  for (const auto& p : scene.participants()) out.push_back(p.profile);
  return out;
}

TEST(FaceRecognizer, EnrollValidates) {
  FaceRecognizer rec;
  EXPECT_EQ(rec.Enroll(0, "x", {}).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(rec.Enroll(0, "x", {{1.0, 2.0}}).ok());
  // Multiple views per id are allowed.
  EXPECT_TRUE(rec.Enroll(0, "x", {{5.0, 6.0}}).ok());
  // Inconsistent embedding sizes rejected.
  EXPECT_FALSE(rec.Enroll(1, "y", {{1.0}, {1.0, 2.0}}).ok());
}

TEST(FaceRecognizer, RecognizesAllMeetingParticipantsInScene) {
  DiningScene scene = MakeMeetingScenario();
  FaceRecognizer rec;
  ASSERT_TRUE(rec.EnrollProfiles(MeetingProfiles()).ok());
  EXPECT_EQ(rec.NumEnrolled(), 8);  // 4 identities x {front, back}

  FaceDetector det;
  auto states = scene.StateAt(10.0);
  const CameraModel& cam = scene.rig().camera(0);
  ImageRgb frame = RenderView(scene, states, 0, RenderOptions{});
  int correct = 0, total = 0;
  for (const FaceDetection& d : det.Detect(frame)) {
    IdentityMatch m = rec.Recognize(frame, d);
    ASSERT_GE(m.id, 0);
    // Verify against the participant whose projection is closest.
    double best_dist = 1e9;
    int best_id = -1;
    for (int i = 0; i < scene.NumParticipants(); ++i) {
      auto px = cam.ProjectWorldPoint(states[i].head_position);
      if (px && (d.center_px - *px).Norm() < best_dist) {
        best_dist = (d.center_px - *px).Norm();
        best_id = i;
      }
    }
    ++total;
    if (m.id == best_id) ++correct;
  }
  EXPECT_EQ(total, 4);
  EXPECT_EQ(correct, 4);
}

TEST(FaceRecognizer, RecognitionSurvivesNoise) {
  DiningScene scene = MakeMeetingScenario();
  FaceRecognizer rec;
  ASSERT_TRUE(rec.EnrollProfiles(MeetingProfiles()).ok());
  RenderOptions opt;
  opt.noise_sigma = 6.0;
  Rng rng(13);
  ImageRgb frame = RenderViewAt(scene, 20.0, 1, opt, &rng);
  FaceDetector det;
  int recognized = 0;
  auto dets = det.Detect(frame);
  for (const FaceDetection& d : dets) {
    if (rec.Recognize(frame, d).id >= 0) ++recognized;
  }
  EXPECT_GE(recognized, 3);  // at most one dropout under noise
  EXPECT_EQ(dets.size(), 4u);
}

TEST(FaceRecognizer, RejectsUnknownMarker) {
  FaceRecognizer rec(0.2);
  ASSERT_TRUE(rec.EnrollProfiles(MeetingProfiles()).ok());
  // A participant with a color far from every enrolled marker.
  ImageRgb crop = RenderFaceCrop(64, Emotion::kNeutral, 1.0, 0, 0,
                                 Rgb{255, 0, 255});
  FaceDetector det;
  auto found = det.Detect(crop);
  ASSERT_EQ(found.size(), 1u);
  IdentityMatch m = rec.Recognize(crop, found[0]);
  EXPECT_EQ(m.id, -1);
}

TEST(FaceRecognizer, ConfidenceHigherForCleanMatches) {
  FaceRecognizer rec;
  ASSERT_TRUE(rec.EnrollProfiles(MeetingProfiles()).ok());
  ImageRgb crop = RenderFaceCrop(64, Emotion::kNeutral, 1.0, 0, 0,
                                 Rgb{230, 200, 40});  // P1 yellow
  FaceDetector det;
  auto found = det.Detect(crop);
  ASSERT_EQ(found.size(), 1u);
  IdentityMatch m = rec.Recognize(crop, found[0]);
  EXPECT_EQ(m.id, 0);
  EXPECT_GT(m.confidence, 0.5);
}

TEST(FaceEmbedder, DifferentMarkersFarApart) {
  FaceEmbedder emb;
  FaceDetector det;
  auto embed_marker = [&](Rgb marker) {
    ImageRgb crop = RenderFaceCrop(64, Emotion::kNeutral, 1.0, 0, 0, marker);
    auto found = det.Detect(crop);
    EXPECT_EQ(found.size(), 1u);
    return emb.Embed(crop, found[0]);
  };
  auto a = embed_marker(Rgb{230, 200, 40});
  auto b = embed_marker(Rgb{40, 80, 220});
  auto a2 = embed_marker(Rgb{230, 200, 40});
  double d_ab = 0, d_aa = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    d_ab += (a[i] - b[i]) * (a[i] - b[i]);
    d_aa += (a[i] - a2[i]) * (a[i] - a2[i]);
  }
  EXPECT_GT(std::sqrt(d_ab), 10 * std::sqrt(d_aa) + 0.1);
}

}  // namespace
}  // namespace dievent
