#include "image/pnm_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace dievent {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(PnmIo, PgmRoundTrip) {
  ImageU8 img(7, 5);
  for (int y = 0; y < 5; ++y)
    for (int x = 0; x < 7; ++x)
      img.at(x, y) = static_cast<uint8_t>(x * 30 + y);
  std::string path = TempPath("roundtrip.pgm");
  ASSERT_TRUE(WritePgm(img, path).ok());
  auto back = ReadPgm(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back.value() == img);
}

TEST(PnmIo, PpmRoundTrip) {
  ImageRgb img(3, 4, 3);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 3; ++x)
      PutRgb(&img, x, y,
             Rgb{static_cast<uint8_t>(x * 80), static_cast<uint8_t>(y * 60),
                 200});
  std::string path = TempPath("roundtrip.ppm");
  ASSERT_TRUE(WritePpm(img, path).ok());
  auto back = ReadPpm(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back.value() == img);
}

TEST(PnmIo, WriteRejectsWrongChannelCount) {
  ImageRgb rgb(2, 2, 3);
  EXPECT_EQ(WritePgm(rgb, TempPath("bad.pgm")).code(),
            StatusCode::kInvalidArgument);
  ImageU8 gray(2, 2, 1);
  EXPECT_EQ(WritePpm(gray, TempPath("bad.ppm")).code(),
            StatusCode::kInvalidArgument);
}

TEST(PnmIo, ReadMissingFileIsIoError) {
  EXPECT_EQ(ReadPgm("/nonexistent/nowhere.pgm").status().code(),
            StatusCode::kIoError);
}

TEST(PnmIo, ReadRejectsBadMagic) {
  std::string path = TempPath("badmagic.pgm");
  std::ofstream(path) << "P9\n2 2\n255\nxxxx";
  EXPECT_EQ(ReadPgm(path).status().code(), StatusCode::kCorruption);
}

TEST(PnmIo, ReadRejectsTruncatedPayload) {
  std::string path = TempPath("trunc.pgm");
  std::ofstream(path) << "P5\n10 10\n255\nshort";
  EXPECT_EQ(ReadPgm(path).status().code(), StatusCode::kCorruption);
}

TEST(PnmIo, ReadSkipsComments) {
  std::string path = TempPath("comments.pgm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "P5\n# a comment line\n2 # inline\n1\n255\n";
    out.put(static_cast<char>(42));
    out.put(static_cast<char>(43));
  }
  auto img = ReadPgm(path);
  ASSERT_TRUE(img.ok()) << img.status();
  EXPECT_EQ(img.value().at(0, 0), 42);
  EXPECT_EQ(img.value().at(1, 0), 43);
}

TEST(PnmIo, ReadRejectsNonNumericHeader) {
  std::string path = TempPath("nonnum.pgm");
  std::ofstream(path) << "P5\nabc def\n255\n";
  EXPECT_EQ(ReadPgm(path).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace dievent
