#include "vision/landmarks.h"

#include <gtest/gtest.h>

#include "render/face_renderer.h"
#include "vision/face_detector.h"

namespace dievent {
namespace {

std::pair<ImageRgb, FaceDetection> RenderAndDetect(double gx, double gy,
                                                   int size = 130,
                                                   Emotion e =
                                                       Emotion::kNeutral) {
  ImageRgb crop = RenderFaceCrop(size, e, 1.0, gx, gy);
  FaceDetector det;
  auto found = det.Detect(crop);
  EXPECT_EQ(found.size(), 1u);
  return {crop, found.empty() ? FaceDetection{} : found[0]};
}

TEST(Landmarks, LocatesEyesAndMouthOnFrontalFace) {
  auto [crop, det] = RenderAndDetect(0.0, 0.0);
  LandmarkLocalizer loc;
  FaceLandmarks lm = loc.Localize(crop, det);
  ASSERT_TRUE(lm.eyes_valid);
  ASSERT_TRUE(lm.mouth_valid);
  const double r = det.radius_px;
  // Eyes left/right of centre, above it; mouth below.
  EXPECT_LT(lm.left_eye.x, det.center_px.x);
  EXPECT_GT(lm.right_eye.x, det.center_px.x);
  EXPECT_LT(lm.left_eye.y, det.center_px.y);
  EXPECT_GT(lm.mouth.y, det.center_px.y + 0.2 * r);
  EXPECT_NEAR(lm.mouth.x, det.center_px.x, 0.15 * r);
}

TEST(Landmarks, EyeAnchorsNearModelPositions) {
  auto [crop, det] = RenderAndDetect(0.0, 0.0);
  LandmarkLocalizer loc;
  FaceLandmarks lm = loc.Localize(crop, det);
  ASSERT_TRUE(lm.eyes_valid);
  const double r = det.radius_px;
  Vec2 expected_left{det.center_px.x - face_model::kEyeOffsetX * r,
                     det.center_px.y + face_model::kEyeOffsetY * r};
  EXPECT_NEAR((lm.left_eye - expected_left).Norm(), 0.0, 0.08 * r);
}

TEST(Landmarks, IrisFollowsGazeDirection) {
  LandmarkLocalizer loc;
  auto [crop_l, det_l] = RenderAndDetect(-0.7, 0.0);
  auto [crop_r, det_r] = RenderAndDetect(0.7, 0.0);
  FaceLandmarks left = loc.Localize(crop_l, det_l);
  FaceLandmarks right = loc.Localize(crop_r, det_r);
  ASSERT_TRUE(left.eyes_valid && right.eyes_valid);
  EXPECT_LT(left.left_iris.x - left.left_eye.x,
            right.left_iris.x - right.left_eye.x);
  EXPECT_LT(left.right_iris.x - left.right_eye.x,
            right.right_iris.x - right.right_eye.x);
}

TEST(Landmarks, NonFrontalDetectionInvalid) {
  ImageRgb img(100, 100, 3);
  FaceDetection det;
  det.center_px = {50, 50};
  det.radius_px = 30;
  det.front_facing = false;
  LandmarkLocalizer loc;
  FaceLandmarks lm = loc.Localize(img, det);
  EXPECT_FALSE(lm.eyes_valid);
  EXPECT_FALSE(lm.mouth_valid);
}

TEST(Landmarks, TinyFaceInvalid) {
  ImageRgb img(20, 20, 3);
  FaceDetection det;
  det.center_px = {10, 10};
  det.radius_px = 3.0;
  det.front_facing = true;
  LandmarkLocalizer loc;
  EXPECT_FALSE(loc.Localize(img, det).eyes_valid);
}

TEST(Landmarks, MouthFoundAcrossEmotions) {
  LandmarkLocalizer loc;
  for (Emotion e : kAllEmotions) {
    auto [crop, det] = RenderAndDetect(0.0, 0.0, 130, e);
    FaceLandmarks lm = loc.Localize(crop, det);
    EXPECT_TRUE(lm.mouth_valid) << EmotionName(e);
  }
}

TEST(Landmarks, DarkCapDoesNotPolluteIris) {
  // Regression: a near-black identity cap must not attract the iris
  // centroid (the paper's "black" participant).
  ImageRgb crop = RenderFaceCrop(130, Emotion::kNeutral, 1.0, 0.0, 0.0,
                                 Rgb{30, 30, 30});
  FaceDetector det;
  auto found = det.Detect(crop);
  ASSERT_EQ(found.size(), 1u);
  LandmarkLocalizer loc;
  FaceLandmarks lm = loc.Localize(crop, found[0]);
  ASSERT_TRUE(lm.eyes_valid);
  // Gaze is centred: iris must sit within a fraction of the eye radius
  // of the white centroid.
  double er = face_model::kEyeRadius * found[0].radius_px;
  EXPECT_LT((lm.left_iris - lm.left_eye).Norm(), 0.3 * er);
  EXPECT_LT((lm.right_iris - lm.right_eye).Norm(), 0.3 * er);
}

}  // namespace
}  // namespace dievent
