// Lock-rank tracker tests: the dynamic half of the lock-order discipline
// (src/common/lock_ranks.h, DESIGN.md section 14). Rank-increasing
// acquisition chains and the CondVar wait protocol are pinned as legal;
// out-of-order acquisition, unranked-under-ranked, recursive
// self-acquisition, and waiting on a non-innermost lock each abort with a
// diagnostic naming both ranks. With the tracker compiled out
// (DIEVENT_LOCK_RANKS=OFF) the fatal cases cannot fire, so those tests
// skip — the static checker (tools/lockrank_check.py) still gates order.

#include "common/lock_ranks.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/thread_annotations.h"

namespace dievent {
namespace {

TEST(LockRankTracker, RankIncreasingChainIsLegal) {
  Mutex low{LockRank::kFleetScheduler};
  Mutex mid{LockRank::kReadyQueue};
  Mutex high{LockRank::kLogSink};
  MutexLock a(low);
  MutexLock b(mid);
  MutexLock c(high);
}

TEST(LockRankTracker, ReacquisitionAfterReleaseIsLegal) {
  Mutex low{LockRank::kFleetScheduler};
  Mutex high{LockRank::kLogSink};
  for (int i = 0; i < 3; ++i) {
    MutexLock a(low);
    MutexLock b(high);
  }
  // High-then-release-then-low is not an inversion: nothing is held.
  { MutexLock b(high); }
  { MutexLock a(low); }
}

TEST(LockRankTracker, UnrankedMutexesAreInvisibleWhenNothingRankedIsHeld) {
  Mutex plain_outer;
  Mutex plain_inner;
  MutexLock a(plain_outer);
  MutexLock b(plain_inner);  // unranked nesting carries no order claim
  Mutex ranked{LockRank::kLogSink};
  MutexLock c(ranked);  // ranked under unranked is legal
}

TEST(LockRankTracker, EachThreadHasItsOwnHeldStack) {
  // A rank held on one thread must not constrain another.
  Mutex low{LockRank::kFleetScheduler};
  Mutex high{LockRank::kLogSink};
  MutexLock a(high);
  std::thread other([&] {
    MutexLock b(low);  // would be fatal on the first thread
  });
  other.join();
}

TEST(LockRankTracker, WaitOnInnermostRankedLockIsLegal) {
  Mutex mu{LockRank::kFleetScheduler};
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_EQ(cv.WaitFor(mu, std::chrono::milliseconds(1)),
            std::cv_status::timeout);
}

#if DIEVENT_LOCK_RANKS

// Death tests fork; the threadsafe style re-executes the binary so
// children start clean even when earlier tests spawned threads.
class ThreadsafeDeathStyle : public ::testing::Environment {
 public:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};
const ::testing::Environment* const kDeathStyle =
    ::testing::AddGlobalTestEnvironment(new ThreadsafeDeathStyle);

TEST(LockRankTrackerDeathTest, OutOfOrderAcquisitionAborts) {
  Mutex low{LockRank::kFleetScheduler};
  Mutex high{LockRank::kLogSink};
  EXPECT_DEATH(
      {
        MutexLock a(high);
        MutexLock b(low);
      },
      "lockrank: fatal: rank-decreasing acquisition.*"
      "acquiring kFleetScheduler while innermost held rank is kLogSink");
}

TEST(LockRankTrackerDeathTest, EqualRankAcquisitionAborts) {
  // Two locks of the same rank can deadlock against each other; the
  // discipline requires strict increase.
  Mutex one{LockRank::kAcqReader};
  Mutex two{LockRank::kAcqReader};
  EXPECT_DEATH(
      {
        MutexLock a(one);
        MutexLock b(two);
      },
      "lockrank: fatal: rank-decreasing acquisition");
}

TEST(LockRankTrackerDeathTest, UnrankedUnderRankedAborts) {
  Mutex ranked{LockRank::kFleetScheduler};
  Mutex plain;
  EXPECT_DEATH(
      {
        MutexLock a(ranked);
        MutexLock b(plain);
      },
      "lockrank: fatal: unranked mutex acquired while a ranked mutex "
      "is held");
}

TEST(LockRankTrackerDeathTest, RecursiveAcquisitionAborts) {
  Mutex mu{LockRank::kFleetScheduler};
  EXPECT_DEATH(
      {
        MutexLock a(mu);
        mu.Lock();  // self-deadlock without the tracker
      },
      "lockrank: fatal: recursive acquisition");
}

TEST(LockRankTrackerDeathTest, WaitOnNonInnermostLockAborts) {
  Mutex low{LockRank::kFleetScheduler};
  Mutex high{LockRank::kLogSink};
  CondVar cv;
  EXPECT_DEATH(
      {
        MutexLock a(low);
        MutexLock b(high);
        cv.WaitFor(low, std::chrono::milliseconds(1));
      },
      "lockrank: fatal: condition wait on a mutex that is not the "
      "innermost held lock");
}

#else  // !DIEVENT_LOCK_RANKS

TEST(LockRankTrackerDeathTest, TrackerCompiledOut) {
  GTEST_SKIP() << "DIEVENT_LOCK_RANKS=OFF: runtime tracking disabled; "
                  "lock order is still gated statically by "
                  "tools/lockrank_check.py";
}

#endif  // DIEVENT_LOCK_RANKS

}  // namespace
}  // namespace dievent
