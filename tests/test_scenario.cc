// Tests for the prototype meeting scenario (paper Section III): the
// scripted ground truth must reproduce the published Fig. 7/8/9 facts
// exactly.

#include "sim/scenario.h"

#include <gtest/gtest.h>

#include "analysis/eye_contact.h"
#include "analysis/lookat_matrix.h"

namespace dievent {
namespace {

constexpr int kP1 = 0, kP2 = 1, kP3 = 2, kP4 = 3;

LookAtMatrix GroundTruthMatrix(const DiningScene& scene, double t) {
  auto gt = scene.GroundTruthLookAt(t);
  LookAtMatrix m(static_cast<int>(gt.size()));
  for (size_t x = 0; x < gt.size(); ++x)
    for (size_t y = 0; y < gt.size(); ++y)
      m.Set(static_cast<int>(x), static_cast<int>(y), gt[x][y]);
  return m;
}

TEST(MeetingScenario, HasPrototypeShape) {
  DiningScene scene = MakeMeetingScenario();
  EXPECT_EQ(scene.NumParticipants(), 4);
  EXPECT_EQ(scene.rig().NumCameras(), 4);
  EXPECT_EQ(scene.num_frames(), 610);
  EXPECT_NEAR(scene.DurationSeconds(), 40.0, 1e-9);
  // Cameras at 2.5 m elevation per the paper.
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(scene.rig().camera(c).Position().z, 2.5, 1e-9);
  }
}

TEST(MeetingScenario, Fig7LookAtConfigurationAtT10) {
  DiningScene scene = MakeMeetingScenario();
  LookAtMatrix m = GroundTruthMatrix(scene, 10.0);
  // Fig. 7: yellow (P1) and green (P3) look at each other.
  EXPECT_TRUE(m.At(kP1, kP3));
  EXPECT_TRUE(m.At(kP3, kP1));
  // Black (P4) looks at blue (P2); blue looks at green (P3).
  EXPECT_TRUE(m.At(kP4, kP2));
  EXPECT_TRUE(m.At(kP2, kP3));
  // And nothing else.
  EXPECT_EQ(m.DirectedEdges().size(), 4u);
  // Exactly one eye contact: P1 <-> P3.
  auto pairs = m.EyeContactPairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], std::make_pair(kP1, kP3));
}

TEST(MeetingScenario, Fig8LookAtConfigurationAtT15) {
  DiningScene scene = MakeMeetingScenario();
  LookAtMatrix m = GroundTruthMatrix(scene, 15.0);
  // Fig. 8: green, blue, and black all look at yellow (P1).
  EXPECT_TRUE(m.At(kP2, kP1));
  EXPECT_TRUE(m.At(kP3, kP1));
  EXPECT_TRUE(m.At(kP4, kP1));
  // P1 looks at the table: no outgoing edge.
  EXPECT_FALSE(m.At(kP1, kP2));
  EXPECT_FALSE(m.At(kP1, kP3));
  EXPECT_FALSE(m.At(kP1, kP4));
  EXPECT_EQ(m.DirectedEdges().size(), 3u);
  EXPECT_TRUE(m.EyeContactPairs().empty());
}

TEST(MeetingScenario, Fig9SummaryCounts) {
  DiningScene scene = MakeMeetingScenario();
  LookAtSummary summary(4);
  for (int f = 0; f < scene.num_frames(); ++f) {
    ASSERT_TRUE(
        summary
            .Accumulate(GroundTruthMatrix(scene, scene.TimeOfFrame(f)))
            .ok());
  }
  // The published count: P1 (yellow) looked at P3 (green) 357 times.
  EXPECT_EQ(summary.At(kP1, kP3), 357);
  // Zero diagonal ("the participant couldn't look to himself").
  for (int i = 0; i < 4; ++i) EXPECT_EQ(summary.At(i, i), 0);
  // P1's column sum is the maximum: P1 dominates the meeting.
  EXPECT_EQ(summary.DominantParticipant(), kP1);
  long long p1_col = summary.ColumnSum(kP1);
  for (int y = 1; y < 4; ++y) EXPECT_LT(summary.ColumnSum(y), p1_col);
  // Every frame was accumulated.
  EXPECT_EQ(summary.frames_accumulated(), 610);
}

TEST(MeetingScenario, ScriptedGazeHitsOnlyIntendedTargets) {
  DiningScene scene = MakeMeetingScenario();
  // At every frame, each participant's ground-truth look-at row matches
  // the scripted target (no accidental pass-through hits at this layout).
  for (int f = 0; f < scene.num_frames(); f += 7) {
    double t = scene.TimeOfFrame(f);
    auto states = scene.StateAt(t);
    auto looks = scene.GroundTruthLookAt(t);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        if (i == j) continue;
        EXPECT_EQ(looks[i][j], states[i].gaze_target == j)
            << "frame " << f << " participant " << i << " -> " << j;
      }
    }
  }
}

TEST(DinnerScenario, BuildsWithVariousSizes) {
  for (int n : {2, 4, 6, 8}) {
    DiningScene scene = MakeDinnerScenario(n, 30.0, 10.0);
    EXPECT_EQ(scene.NumParticipants(), n);
    EXPECT_EQ(scene.rig().NumCameras(), 2);
    EXPECT_EQ(scene.num_frames(), 300);
  }
}

TEST(DinnerScenario, EmotionsFollowCourses) {
  DiningScene scene = MakeDinnerScenario(4, 60.0, 10.0);
  auto early = scene.StateAt(5.0);
  auto mid = scene.StateAt(30.0);
  for (const auto& s : early) EXPECT_EQ(s.emotion, Emotion::kNeutral);
  for (const auto& s : mid) EXPECT_EQ(s.emotion, Emotion::kHappy);
}

TEST(RandomScenario, IsDeterministicGivenSeed) {
  Rng rng1(123), rng2(123);
  DiningScene a = MakeRandomScenario(5, 100, 10.0, &rng1);
  DiningScene b = MakeRandomScenario(5, 100, 10.0, &rng2);
  for (int f = 0; f < 100; f += 13) {
    auto sa = a.StateAt(a.TimeOfFrame(f));
    auto sb = b.StateAt(b.TimeOfFrame(f));
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(sa[i].gaze_target, sb[i].gaze_target);
      EXPECT_EQ(sa[i].emotion, sb[i].emotion);
      EXPECT_NEAR((sa[i].head_position - sb[i].head_position).Norm(), 0,
                  1e-12);
    }
  }
}

}  // namespace
}  // namespace dievent
