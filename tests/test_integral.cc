#include "image/integral.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dievent {
namespace {

TEST(IntegralImage, SumsMatchBruteForce) {
  Rng rng(51);
  ImageU8 img(17, 13);
  for (uint8_t& v : img.data()) v = static_cast<uint8_t>(rng.NextBelow(256));
  IntegralImage ii(img);
  for (int trial = 0; trial < 200; ++trial) {
    int x0 = static_cast<int>(rng.NextBelow(17));
    int y0 = static_cast<int>(rng.NextBelow(13));
    int w = static_cast<int>(rng.NextBelow(17 - x0)) + 1;
    int h = static_cast<int>(rng.NextBelow(13 - y0)) + 1;
    uint64_t expect = 0;
    for (int y = y0; y < y0 + h; ++y)
      for (int x = x0; x < x0 + w; ++x) expect += img.at(x, y);
    EXPECT_EQ(ii.Sum(x0, y0, w, h), expect);
  }
}

TEST(IntegralImage, FullImageSum) {
  ImageU8 img(4, 4);
  img.Fill(10);
  IntegralImage ii(img);
  EXPECT_EQ(ii.Sum(0, 0, 4, 4), 160u);
}

TEST(IntegralImage, EmptyWindowIsZero) {
  ImageU8 img(4, 4);
  img.Fill(255);
  IntegralImage ii(img);
  EXPECT_EQ(ii.Sum(2, 2, 0, 0), 0u);
  EXPECT_EQ(ii.Mean(2, 2, 0, 0), 0.0);
}

TEST(IntegralImage, MeanOfUniformIsValue) {
  ImageU8 img(8, 8);
  img.Fill(42);
  IntegralImage ii(img);
  EXPECT_DOUBLE_EQ(ii.Mean(1, 2, 5, 3), 42.0);
}

TEST(IntegralImage, NoOverflowOnLargeBrightImage) {
  ImageU8 img(640, 480);
  img.Fill(255);
  IntegralImage ii(img);
  EXPECT_EQ(ii.Sum(0, 0, 640, 480),
            static_cast<uint64_t>(640) * 480 * 255);
}

}  // namespace
}  // namespace dievent
