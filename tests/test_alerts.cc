// Tests for the alerting functionality (paper conclusion).

#include "analysis/alerts.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

LookAtMatrix Matrix(int n, std::vector<std::pair<int, int>> edges) {
  LookAtMatrix m(n);
  for (auto [a, b] : edges) m.Set(a, b, true);
  return m;
}

std::vector<std::optional<Emotion>> NoEmotions(int n) {
  return std::vector<std::optional<Emotion>>(n);
}

std::vector<std::optional<Emotion>> AllFeel(int n, Emotion e) {
  return std::vector<std::optional<Emotion>>(n, e);
}

TEST(AlertMonitor, EyeContactOnsetAfterDebounce) {
  AlertOptions opt;
  opt.debounce_frames = 3;
  AlertMonitor monitor(4, opt);
  LookAtMatrix ec = Matrix(4, {{0, 2}, {2, 0}});
  LookAtMatrix none(4);
  // Two frames of EC: not yet.
  EXPECT_TRUE(monitor.Update(0, 0.0, ec, NoEmotions(4), nullptr).empty());
  EXPECT_TRUE(monitor.Update(1, 0.1, ec, NoEmotions(4), nullptr).empty());
  // Third frame fires.
  auto fired = monitor.Update(2, 0.2, ec, NoEmotions(4), nullptr);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].type, AlertType::kEyeContactStarted);
  EXPECT_EQ(fired[0].a, 0);
  EXPECT_EQ(fired[0].b, 2);
  // Sustained EC fires nothing further.
  EXPECT_TRUE(monitor.Update(3, 0.3, ec, NoEmotions(4), nullptr).empty());
  // Ending also debounces.
  EXPECT_TRUE(
      monitor.Update(4, 0.4, none, NoEmotions(4), nullptr).empty());
  EXPECT_TRUE(
      monitor.Update(5, 0.5, none, NoEmotions(4), nullptr).empty());
  fired = monitor.Update(6, 0.6, none, NoEmotions(4), nullptr);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].type, AlertType::kEyeContactEnded);
}

TEST(AlertMonitor, SingleFrameFlickerSuppressed) {
  AlertOptions opt;
  opt.debounce_frames = 3;
  AlertMonitor monitor(3, opt);
  LookAtMatrix ec = Matrix(3, {{0, 1}, {1, 0}});
  LookAtMatrix none(3);
  for (int f = 0; f < 20; ++f) {
    // EC only every 3rd frame: never 3 consecutive -> never fires.
    const LookAtMatrix& m = (f % 3 == 0) ? ec : none;
    EXPECT_TRUE(monitor.Update(f, f * 0.1, m, NoEmotions(3), nullptr)
                    .empty())
        << f;
  }
}

TEST(AlertMonitor, EmotionChangeFiresWithOldAndNew) {
  AlertOptions opt;
  opt.debounce_frames = 2;
  AlertMonitor monitor(2, opt);
  LookAtMatrix none(2);
  // Establish the baseline emotion.
  monitor.Update(0, 0.0, none, AllFeel(2, Emotion::kNeutral), nullptr);
  monitor.Update(1, 0.1, none, AllFeel(2, Emotion::kNeutral), nullptr);
  // P0 turns happy for 2 consecutive frames.
  std::vector<std::optional<Emotion>> mixed = {Emotion::kHappy,
                                               Emotion::kNeutral};
  EXPECT_TRUE(monitor.Update(2, 0.2, none, mixed, nullptr).empty());
  auto fired = monitor.Update(3, 0.3, none, mixed, nullptr);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].type, AlertType::kEmotionChanged);
  EXPECT_EQ(fired[0].a, 0);
  EXPECT_EQ(fired[0].from, Emotion::kNeutral);
  EXPECT_EQ(fired[0].to, Emotion::kHappy);
}

TEST(AlertMonitor, UnobservedFramesDoNotResetEmotionState) {
  AlertOptions opt;
  opt.debounce_frames = 2;
  AlertMonitor monitor(1, opt);
  LookAtMatrix none(1);
  monitor.Update(0, 0.0, none, AllFeel(1, Emotion::kNeutral), nullptr);
  monitor.Update(1, 0.1, none, {std::nullopt}, nullptr);  // detector gap
  std::vector<std::optional<Emotion>> sad = {Emotion::kSad};
  monitor.Update(2, 0.2, none, sad, nullptr);
  auto fired = monitor.Update(3, 0.3, none, sad, nullptr);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].from, Emotion::kNeutral);
}

TEST(AlertMonitor, MoodDropAndRecoveryWithHysteresis) {
  AlertMonitor monitor(3, {});
  LookAtMatrix none(3);
  OverallEmotion low;
  low.mean_valence = -0.5;
  OverallEmotion mid;
  mid.mean_valence = -0.1;  // between the two thresholds: no alert
  OverallEmotion high;
  high.mean_valence = 0.3;

  auto fired = monitor.Update(0, 0.0, none, NoEmotions(3), &low);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].type, AlertType::kGroupMoodDrop);
  // Hysteresis: mid-band produces nothing, and a second low does not
  // re-fire.
  EXPECT_TRUE(monitor.Update(1, 0.1, none, NoEmotions(3), &mid).empty());
  EXPECT_TRUE(monitor.Update(2, 0.2, none, NoEmotions(3), &low).empty());
  fired = monitor.Update(3, 0.3, none, NoEmotions(3), &high);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].type, AlertType::kGroupMoodRecovered);
}

TEST(AlertMonitor, AttentionConvergenceAlert) {
  AlertOptions opt;
  opt.debounce_frames = 2;
  AlertMonitor monitor(4, opt);
  LookAtMatrix all_on_p1 = Matrix(4, {{1, 0}, {2, 0}, {3, 0}});
  EXPECT_TRUE(
      monitor.Update(0, 0.0, all_on_p1, NoEmotions(4), nullptr).empty());
  auto fired = monitor.Update(1, 0.1, all_on_p1, NoEmotions(4), nullptr);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].type, AlertType::kAttentionConverged);
  EXPECT_EQ(fired[0].a, 0);
  // Sustained convergence does not re-fire.
  EXPECT_TRUE(
      monitor.Update(2, 0.2, all_on_p1, NoEmotions(4), nullptr).empty());
}

TEST(AlertMonitor, HistoryAccumulatesAndResets) {
  AlertOptions opt;
  opt.debounce_frames = 1;
  AlertMonitor monitor(2, opt);
  LookAtMatrix ec = Matrix(2, {{0, 1}, {1, 0}});
  monitor.Update(0, 0.0, ec, NoEmotions(2), nullptr);
  EXPECT_EQ(monitor.history().size(), 1u);
  monitor.Reset();
  EXPECT_TRUE(monitor.history().empty());
  // After reset the same transition fires again.
  auto fired = monitor.Update(0, 0.0, ec, NoEmotions(2), nullptr);
  EXPECT_EQ(fired.size(), 1u);
}

TEST(Alert, ToStringIsReadable) {
  Alert alert;
  alert.type = AlertType::kEmotionChanged;
  alert.timestamp_s = 12.5;
  alert.a = 1;
  alert.from = Emotion::kNeutral;
  alert.to = Emotion::kHappy;
  std::string s = alert.ToString({"Alice", "Bob"});
  EXPECT_NE(s.find("Bob"), std::string::npos);
  EXPECT_NE(s.find("neutral"), std::string::npos);
  EXPECT_NE(s.find("happy"), std::string::npos);
  EXPECT_NE(s.find("12.5"), std::string::npos);
}

}  // namespace
}  // namespace dievent
