// SimClock-exact fleet-scheduler timelines: admission/dispatch order,
// backoff-retry instants, the watchdog interrupt deadline, and
// shed/defer decisions are all asserted to the exact simulated second.
// Everything here runs on auto-advancing simulated time with one runner
// (max_concurrent = 1), so the whole schedule is a deterministic
// sequence no matter how loaded the test machine is.
//
// Idiom (mirrors test_retry_timeline.cc): submit every job BEFORE
// Start(), so no scheduling happens while the test is still admitting;
// per-frame cost is synthesized by a post_frame_hook that sleeps the
// SimClock; expected instants are recomputed from the same pure
// functions the scheduler uses (BackoffPolicy::Delay).

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <string>

#include "common/clock.h"
#include "fleet/scheduler.h"
#include "io/faulty_file.h"
#include "io/file.h"
#include "sim/scenario.h"

namespace dievent {
namespace {

constexpr double kTolerance = 1e-6;  // ns-rounding slack on instants

std::string FreshStoreDir(const std::string& name) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = testing::TempDir() + "/" + name;
  if (fs->Exists(dir)) {
    auto names = fs->ListDir(dir);
    EXPECT_TRUE(names.ok()) << names.status().ToString();
    for (const std::string& n : names.value()) {
      EXPECT_TRUE(fs->Remove(JoinPath(dir, n)).ok());
    }
  }
  return dir;
}

/// A small ground-truth job: deterministic analysis math only, so all
/// simulated time comes from the injected per-frame sleep.
EventJobSpec QuickJob(const std::string& name, const DiningScene* scene,
                      JobPriority priority) {
  EventJobSpec spec;
  spec.name = name;
  spec.scene = scene;
  spec.priority = priority;
  spec.pipeline.mode = PipelineMode::kGroundTruth;
  spec.pipeline.parse_video = false;
  return spec;
}

/// Attaches a per-frame cost: each committed frame sleeps the clock.
void AddFrameCost(EventJobSpec* spec, SimClock* clock, double cost_s) {
  spec->post_frame_hook = [clock, cost_s](int /*frame*/, double /*t*/) {
    clock->SleepFor(VirtualClock::FromSeconds(cost_s));
  };
}

TEST(SchedulerTimelineTest, DispatchOrderIsPriorityThenFifoExact) {
  SimClock::Options clock_options;
  clock_options.auto_advance = true;
  SimClock clock(clock_options);

  // 4 frames at 10 fps; 1 simulated second per frame.
  const DiningScene scene = MakeDinnerScenario(3, 0.4, 10.0);
  const int frames = scene.num_frames();
  ASSERT_EQ(frames, 4);
  const double job_cost_s = frames * 1.0;

  SchedulerOptions options;
  options.clock = &clock;
  options.max_concurrent = 1;
  EventScheduler scheduler(options);

  EventJobSpec low = QuickJob("low", &scene, JobPriority::kLow);
  EventJobSpec normal_a = QuickJob("normal-a", &scene, JobPriority::kNormal);
  EventJobSpec normal_b = QuickJob("normal-b", &scene, JobPriority::kNormal);
  EventJobSpec high = QuickJob("high", &scene, JobPriority::kHigh);
  for (EventJobSpec* spec : {&low, &normal_a, &normal_b, &high}) {
    AddFrameCost(spec, &clock, 1.0);
  }
  const int id_low = scheduler.Submit(std::move(low));
  const int id_a = scheduler.Submit(std::move(normal_a));
  const int id_b = scheduler.Submit(std::move(normal_b));
  const int id_high = scheduler.Submit(std::move(high));

  ASSERT_TRUE(scheduler.RunUntilDrained().ok());

  // Execution order: high, then the normals in submission order, then
  // low — back to back on the single runner, each exactly 4 s long.
  FleetStats stats = scheduler.stats();
  ASSERT_EQ(stats.completed, 4);
  auto started = [&](int id) {
    const JobStats& job = stats.jobs[id];
    EXPECT_EQ(job.state, JobState::kCompleted) << job.name;
    EXPECT_EQ(job.attempts, 1) << job.name;
    EXPECT_EQ(job.attempt_started_at_s.size(), 1u) << job.name;
    return job.attempt_started_at_s[0];
  };
  EXPECT_NEAR(started(id_high), 0.0, kTolerance);
  EXPECT_NEAR(started(id_a), job_cost_s, kTolerance);
  EXPECT_NEAR(started(id_b), 2 * job_cost_s, kTolerance);
  EXPECT_NEAR(started(id_low), 3 * job_cost_s, kTolerance);
  EXPECT_NEAR(stats.jobs[id_low].completed_at_s, 4 * job_cost_s,
              kTolerance);
  EXPECT_EQ(stats.frames_committed, 4ll * frames);
}

TEST(SchedulerTimelineTest, BackoffRetryInstantsExactAcrossSeeds) {
  // A job whose store filesystem fails every append on attempts 0 and 1
  // and is healed on attempt 2. The two retry instants must land at
  // exactly the BackoffPolicy delays for (attempt, job id) — recomputed
  // here from the same pure function — for several policy seeds.
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    SimClock::Options clock_options;
    clock_options.auto_advance = true;
    SimClock clock(clock_options);

    const DiningScene scene = MakeDinnerScenario(3, 0.3, 10.0);

    SchedulerOptions options;
    options.clock = &clock;
    options.max_concurrent = 1;
    options.max_attempts = 3;
    options.retry_backoff.seed = seed;
    EventScheduler scheduler(options);

    FaultyFileSystem broken_fs(FileSystem::Default(),
                               [] {
                                 FileFaultSpec spec;
                                 spec.write_error_probability = 1.0;
                                 return spec;
                               }());
    EventJobSpec job = QuickJob("flaky", &scene, JobPriority::kNormal);
    job.store_dir = FreshStoreDir("sched_backoff_" + std::to_string(seed));
    job.fs_for_attempt = [&broken_fs](int attempt) -> FileSystem* {
      return attempt < 2 ? &broken_fs : FileSystem::Default();
    };
    const int id = scheduler.Submit(std::move(job));

    ASSERT_TRUE(scheduler.RunUntilDrained().ok());

    // Failures consume no simulated time, so the whole timeline is the
    // two backoff delays laid end to end.
    const double d1 = options.retry_backoff.Delay(1, id, 0);
    const double d2 = options.retry_backoff.Delay(2, id, 0);
    FleetStats stats = scheduler.stats();
    const JobStats& flaky = stats.jobs[id];
    EXPECT_EQ(flaky.state, JobState::kCompleted);
    EXPECT_EQ(flaky.attempts, 3);
    ASSERT_EQ(flaky.attempt_started_at_s.size(), 3u);
    EXPECT_NEAR(flaky.attempt_started_at_s[0], 0.0, kTolerance);
    EXPECT_NEAR(flaky.attempt_started_at_s[1], d1, kTolerance);
    EXPECT_NEAR(flaky.attempt_started_at_s[2], d1 + d2, kTolerance);
    ASSERT_EQ(flaky.retry_scheduled_for_s.size(), 2u);
    EXPECT_NEAR(flaky.retry_scheduled_for_s[0], d1, kTolerance);
    EXPECT_NEAR(flaky.retry_scheduled_for_s[1], d1 + d2, kTolerance);
    EXPECT_EQ(stats.retries, 2);
  }
}

TEST(SchedulerTimelineTest, WatchdogInterruptsAtExactDeadline) {
  SimClock::Options clock_options;
  clock_options.auto_advance = true;
  SimClock clock(clock_options);

  // 6 frames; healthy frames cost 0.5 s, but the first time frame 2
  // commits, the job wedges for 10 s. With a 2 s liveness deadline the
  // watchdog must fire at exactly last_commit + 2 = 3.0 s.
  const DiningScene scene = MakeDinnerScenario(3, 0.6, 10.0);
  ASSERT_EQ(scene.num_frames(), 6);

  SchedulerOptions options;
  options.clock = &clock;
  options.max_concurrent = 1;
  options.watchdog_deadline_s = 2.0;
  options.checkpoint_every_frames = 1;
  options.max_attempts = 3;
  EventScheduler scheduler(options);

  std::atomic<bool> wedged_once{false};
  EventJobSpec job = QuickJob("stuck", &scene, JobPriority::kNormal);
  job.store_dir = FreshStoreDir("sched_watchdog");
  job.post_frame_hook = [&clock, &wedged_once](int frame, double /*t*/) {
    double cost_s = 0.5;
    if (frame == 2 && !wedged_once.exchange(true)) cost_s = 10.0;
    clock.SleepFor(VirtualClock::FromSeconds(cost_s));
  };
  const int id = scheduler.Submit(std::move(job));

  ASSERT_TRUE(scheduler.RunUntilDrained().ok());

  // Attempt 1: commits at 0.0, 0.5, 1.0; wedges until 11.0; the
  // watchdog fires at 3.0; the pipeline observes the cancel at the next
  // frame boundary (11.0) and unwinds with kCancelled.
  FleetStats stats = scheduler.stats();
  const JobStats& stuck = stats.jobs[id];
  ASSERT_EQ(stuck.watchdog_fired_at_s.size(), 1u);
  EXPECT_NEAR(stuck.watchdog_fired_at_s[0], 3.0, kTolerance);
  EXPECT_EQ(stuck.last_error.code(), StatusCode::kCancelled);
  EXPECT_EQ(stats.watchdog_interrupts, 1);

  // Attempt 2 starts after the backoff quarantine and resumes from the
  // checkpoint: frames 0..2 are reused, 3..5 recomputed at 0.5 s each.
  const double d1 = options.retry_backoff.Delay(1, id, 0);
  EXPECT_EQ(stuck.state, JobState::kCompleted);
  EXPECT_EQ(stuck.attempts, 2);
  ASSERT_EQ(stuck.attempt_started_at_s.size(), 2u);
  EXPECT_NEAR(stuck.attempt_started_at_s[1], 11.0 + d1, kTolerance);
  EXPECT_NEAR(stuck.completed_at_s, 11.0 + d1 + 3 * 0.5, kTolerance);
  const EventJobResult* result = scheduler.result(id);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->report.degradation.resumed_from_frame, 2);
  EXPECT_EQ(result->report.degradation.resume_reused_frames, 3);
  EXPECT_EQ(result->report.frames_processed, 6);
}

TEST(SchedulerTimelineTest, ShedsLowPriorityAdmissionsAtThreshold) {
  SimClock::Options clock_options;
  clock_options.auto_advance = true;
  SimClock clock(clock_options);

  const DiningScene scene = MakeDinnerScenario(3, 0.2, 10.0);

  SchedulerOptions options;
  options.clock = &clock;
  options.max_concurrent = 1;
  options.shed_waiting_above = 2;
  EventScheduler scheduler(options);

  // Two normals fill the waiting population to the threshold; the low
  // submission is shed at admission, the high one is not.
  const int id_a =
      scheduler.Submit(QuickJob("a", &scene, JobPriority::kNormal));
  const int id_b =
      scheduler.Submit(QuickJob("b", &scene, JobPriority::kNormal));
  const int id_low =
      scheduler.Submit(QuickJob("low", &scene, JobPriority::kLow));
  const int id_high =
      scheduler.Submit(QuickJob("high", &scene, JobPriority::kHigh));
  EXPECT_EQ(scheduler.job_state(id_low), JobState::kShed);

  ASSERT_TRUE(scheduler.RunUntilDrained().ok())
      << "shed admissions do not fail the drain";

  FleetStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 3);
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.jobs[id_a].state, JobState::kCompleted);
  EXPECT_EQ(stats.jobs[id_b].state, JobState::kCompleted);
  EXPECT_EQ(stats.jobs[id_high].state, JobState::kCompleted);
  EXPECT_EQ(stats.jobs[id_low].state, JobState::kShed);
  EXPECT_EQ(stats.jobs[id_low].attempts, 0) << "a shed job never runs";
  EXPECT_FALSE(stats.jobs[id_low].last_error.ok());
}

TEST(SchedulerTimelineTest, DefersLowPriorityUnderLatencyOverload) {
  SimClock::Options clock_options;
  clock_options.auto_advance = true;
  SimClock clock(clock_options);

  // Two normal jobs commit frames at 0.5 s each, holding the fleet P95
  // above the 0.1 s threshold for the whole run, so the low job — even
  // though it was submitted second — must wait until the fleet drains
  // at t = 5.0. With one runner the timeline is interleaving-free:
  // slow runs [0, 4), quick runs [4, 5), low runs at 5.0.
  const DiningScene slow_scene = MakeDinnerScenario(3, 0.8, 10.0);
  ASSERT_EQ(slow_scene.num_frames(), 8);
  const DiningScene quick_scene = MakeDinnerScenario(3, 0.2, 10.0);
  ASSERT_EQ(quick_scene.num_frames(), 2);

  SchedulerOptions options;
  options.clock = &clock;
  options.max_concurrent = 1;
  options.queue_capacity = 1;
  options.defer_latency_above_s = 0.1;
  options.min_latency_samples = 1;
  EventScheduler scheduler(options);

  EventJobSpec slow = QuickJob("slow", &slow_scene, JobPriority::kNormal);
  AddFrameCost(&slow, &clock, 0.5);
  const int id_slow = scheduler.Submit(std::move(slow));
  EventJobSpec low =
      QuickJob("deferred", &quick_scene, JobPriority::kLow);
  const int id_low = scheduler.Submit(std::move(low));
  EventJobSpec quick =
      QuickJob("quick", &quick_scene, JobPriority::kNormal);
  AddFrameCost(&quick, &clock, 0.5);
  const int id_quick = scheduler.Submit(std::move(quick));

  ASSERT_TRUE(scheduler.RunUntilDrained().ok());

  // The normal job dispatched past the deferred low one; the low job
  // ran only once the fleet went idle (deferral requires something to
  // be running, so overload can never park a low job forever).
  FleetStats stats = scheduler.stats();
  ASSERT_EQ(stats.completed, 3);
  EXPECT_GE(stats.deferred_dispatches, 1);
  ASSERT_EQ(stats.jobs[id_quick].attempt_started_at_s.size(), 1u);
  ASSERT_EQ(stats.jobs[id_low].attempt_started_at_s.size(), 1u);
  EXPECT_NEAR(stats.jobs[id_quick].attempt_started_at_s[0], 4.0,
              kTolerance);
  EXPECT_NEAR(stats.jobs[id_low].attempt_started_at_s[0], 5.0,
              kTolerance);
  EXPECT_GT(stats.jobs[id_slow].frame_latency_quantile_s,
            options.defer_latency_above_s);
}

}  // namespace
}  // namespace dievent
