#include "common/strings.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

TEST(Split, BasicFields) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  auto parts = Split(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoSeparatorYieldsWhole) {
  auto parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Join, RoundTripsWithSplit) {
  std::vector<std::string> v = {"p1", "p2", "p3"};
  EXPECT_EQ(Join(v, "/"), "p1/p2/p3");
  EXPECT_EQ(Join({}, "/"), "");
  EXPECT_EQ(Join({"solo"}, "/"), "solo");
}

TEST(StripWhitespace, TrimsBothEnds) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("nows"), "nows");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(StartsWith("dievent", "die"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("die", "dievent"));
  EXPECT_FALSE(StartsWith("dievent", "event"));
}

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
  // Long outputs survive the two-pass sizing.
  std::string long_out = StrFormat("%0500d", 7);
  EXPECT_EQ(long_out.size(), 500u);
}

}  // namespace
}  // namespace dievent
