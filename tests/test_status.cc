#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/result.h"

namespace dievent {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    std::string_view name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::IoError("f"), StatusCode::kIoError, "IoError"},
      {Status::Corruption("g"), StatusCode::kCorruption, "Corruption"},
      {Status::Unimplemented("h"), StatusCode::kUnimplemented,
       "Unimplemented"},
      {Status::Internal("i"), StatusCode::kInternal, "Internal"},
      {Status::Cancelled("j"), StatusCode::kCancelled, "Cancelled"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(StatusCodeName(c.status.code()), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(Status, WithContextPrefixesMessage) {
  Status s = Status::NotFound("frame 3");
  Status wrapped = s.WithContext("loading video");
  EXPECT_EQ(wrapped.code(), StatusCode::kNotFound);
  EXPECT_EQ(wrapped.message(), "loading video: frame 3");
  // OK statuses pass through untouched.
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

TEST(Status, StreamsToOstream) {
  std::ostringstream os;
  os << Status::IoError("disk gone");
  EXPECT_EQ(os.str(), "IoError: disk gone");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(Status, ReturnNotOkMacroPropagates) {
  auto f = [](bool fail) -> Status {
    DIEVENT_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
    return Status::NotFound("fell through");
  };
  EXPECT_EQ(f(true).code(), StatusCode::kInternal);
  EXPECT_EQ(f(false).code(), StatusCode::kNotFound);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(Result, TakeValueMovesOut) {
  Result<std::string> r = std::string("payload");
  std::string s = r.TakeValue();
  EXPECT_EQ(s, "payload");
}

TEST(Result, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("x");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    DIEVENT_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  ASSERT_TRUE(outer(false).ok());
  EXPECT_EQ(outer(false).value(), 10);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace dievent
