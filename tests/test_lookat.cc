// Tests for the look-at matrix (paper Fig. 4) and its summary (Fig. 9).

#include "analysis/lookat_matrix.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

TEST(LookAtMatrix, SetAndGet) {
  LookAtMatrix m(3);
  EXPECT_EQ(m.size(), 3);
  EXPECT_FALSE(m.At(0, 1));
  m.Set(0, 1, true);
  EXPECT_TRUE(m.At(0, 1));
  EXPECT_FALSE(m.At(1, 0));
  m.Set(0, 1, false);
  EXPECT_FALSE(m.At(0, 1));
}

TEST(LookAtMatrix, EyeContactRequiresMutuality) {
  // Paper: "if the values in both positions (x, y) and (y, x) equal 1,
  // then there is an EC between participants x and y".
  LookAtMatrix m(4);
  m.Set(0, 2, true);
  EXPECT_TRUE(m.EyeContactPairs().empty());
  m.Set(2, 0, true);
  auto pairs = m.EyeContactPairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], std::make_pair(0, 2));
  // Additional one-way edges change nothing.
  m.Set(1, 3, true);
  EXPECT_EQ(m.EyeContactPairs().size(), 1u);
}

TEST(LookAtMatrix, DirectedEdgesEnumeration) {
  LookAtMatrix m(3);
  m.Set(0, 1, true);
  m.Set(2, 1, true);
  auto edges = m.DirectedEdges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], std::make_pair(0, 1));
  EXPECT_EQ(edges[1], std::make_pair(2, 1));
}

TEST(LookAtSummary, AccumulateCountsFrames) {
  LookAtSummary sum(2);
  LookAtMatrix a(2), b(2);
  a.Set(0, 1, true);
  b.Set(0, 1, true);
  b.Set(1, 0, true);
  ASSERT_TRUE(sum.Accumulate(a).ok());
  ASSERT_TRUE(sum.Accumulate(b).ok());
  ASSERT_TRUE(sum.Accumulate(a).ok());
  EXPECT_EQ(sum.frames_accumulated(), 3);
  EXPECT_EQ(sum.At(0, 1), 3);
  EXPECT_EQ(sum.At(1, 0), 1);
  EXPECT_EQ(sum.At(0, 0), 0);
}

TEST(LookAtSummary, RejectsSizeMismatch) {
  LookAtSummary sum(2);
  LookAtMatrix wrong(3);
  EXPECT_EQ(sum.Accumulate(wrong).code(), StatusCode::kInvalidArgument);
}

TEST(LookAtSummary, ColumnAndRowSums) {
  LookAtSummary sum(3);
  LookAtMatrix m(3);
  m.Set(0, 2, true);
  m.Set(1, 2, true);
  m.Set(2, 0, true);
  ASSERT_TRUE(sum.Accumulate(m).ok());
  ASSERT_TRUE(sum.Accumulate(m).ok());
  EXPECT_EQ(sum.ColumnSum(2), 4);  // 0->2 and 1->2, twice
  EXPECT_EQ(sum.ColumnSum(0), 2);
  EXPECT_EQ(sum.ColumnSum(1), 0);
  EXPECT_EQ(sum.RowSum(2), 2);
  EXPECT_EQ(sum.RowSum(0), 2);
}

TEST(LookAtSummary, DominantIsMaxColumn) {
  // The paper's dominance rule: maximum column sum.
  LookAtSummary sum(3);
  LookAtMatrix m(3);
  m.Set(0, 1, true);
  m.Set(2, 1, true);
  ASSERT_TRUE(sum.Accumulate(m).ok());
  EXPECT_EQ(sum.DominantParticipant(), 1);
}

TEST(LookAtSummary, DominantTieBreaksToLowerId) {
  LookAtSummary sum(2);
  EXPECT_EQ(sum.DominantParticipant(), 0);  // all-zero: lowest id
}

TEST(LookAtSummary, ToStringShowsCountsAndNames) {
  LookAtSummary sum(2);
  LookAtMatrix m(2);
  m.Set(0, 1, true);
  for (int i = 0; i < 357; ++i) ASSERT_TRUE(sum.Accumulate(m).ok());
  std::string s = sum.ToString({"P1", "P2"});
  EXPECT_NE(s.find("357"), std::string::npos);
  EXPECT_NE(s.find("P1"), std::string::npos);
  // Default names kick in when none are given.
  std::string s2 = sum.ToString();
  EXPECT_NE(s2.find("P2"), std::string::npos);
}

}  // namespace
}  // namespace dievent
