// End-to-end video parsing (paper Fig. 3 hierarchy).

#include "video/parser.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/scenario.h"
#include "video/synthetic_source.h"

namespace dievent {
namespace {

TEST(VideoParser, SingleShotVideo) {
  std::vector<ImageRgb> frames;
  for (int i = 0; i < 40; ++i) {
    ImageRgb f(32, 32, 3);
    f.Fill(100);
    frames.push_back(std::move(f));
  }
  MemoryVideoSource src(std::move(frames), 25.0);
  VideoParser parser;
  auto vs = parser.Parse(&src);
  ASSERT_TRUE(vs.ok());
  EXPECT_EQ(vs.value().num_frames, 40);
  EXPECT_EQ(vs.value().scenes.size(), 1u);
  EXPECT_EQ(vs.value().NumShots(), 1);
  EXPECT_EQ(vs.value().NumKeyFrames(), 1);
}

TEST(VideoParser, CutsProduceShotsAndScenes) {
  std::vector<ImageRgb> frames;
  Rng rng(77);
  auto push_shot = [&](int n, Rgb color) {
    for (int i = 0; i < n; ++i) {
      ImageRgb f(48, 48, 3);
      for (int y = 0; y < 48; ++y)
        for (int x = 0; x < 48; ++x) PutRgb(&f, x, y, color);
      frames.push_back(std::move(f));
    }
  };
  push_shot(30, Rgb{200, 40, 40});
  push_shot(30, Rgb{40, 200, 40});
  push_shot(30, Rgb{200, 40, 40});  // back to the first setting
  MemoryVideoSource src(std::move(frames), 25.0);
  VideoParser parser;
  auto vs = parser.Parse(&src);
  ASSERT_TRUE(vs.ok());
  EXPECT_EQ(vs.value().NumShots(), 3);
  // Shots tile the frame range.
  auto shots = vs.value().AllShots();
  EXPECT_EQ(shots.front().begin_frame, 0);
  EXPECT_EQ(shots.back().end_frame, 90);
  for (size_t i = 1; i < shots.size(); ++i) {
    EXPECT_EQ(shots[i].begin_frame, shots[i - 1].end_frame);
  }
  // Each shot has at least one key frame.
  for (const auto& s : shots) EXPECT_GE(s.key_frames.size(), 1u);
}

TEST(VideoParser, EmptyHistogramsYieldEmptyStructure) {
  VideoParser parser;
  VideoStructure vs = parser.ParseFromHistograms({}, 25.0);
  EXPECT_EQ(vs.num_frames, 0);
  EXPECT_TRUE(vs.scenes.empty());
}

TEST(VideoParser, MeetingSceneWithScriptedCuts) {
  // Inject two background cuts into the meeting video; the parser must
  // recover three shots.
  DiningScene scene = MakeMeetingScenario();
  RenderScripts scripts;
  ASSERT_TRUE(scripts.background.Add(0.0, 13.0, Rgb{90, 105, 125}).ok());
  ASSERT_TRUE(scripts.background.Add(13.0, 26.0, Rgb{40, 45, 55}).ok());
  ASSERT_TRUE(scripts.background.Add(26.0, 41.0, Rgb{150, 160, 170}).ok());
  SyntheticVideoSource src(&scene, 0, RenderOptions{}, scripts);
  ShotBoundaryDetector det;
  std::vector<Histogram> sigs;
  for (int f = 0; f < src.NumFrames(); f += 2) {
    sigs.push_back(det.Signature(src.GetFrame(f).value().image));
  }
  VideoParser parser;
  VideoStructure vs = parser.ParseFromHistograms(sigs, 15.25 / 2);
  EXPECT_EQ(vs.NumShots(), 3);
}

TEST(VideoStructure, ToStringSummarizes) {
  VideoStructure vs;
  vs.num_frames = 100;
  vs.fps = 25.0;
  SceneSegment scene;
  scene.shots.push_back(Shot{0, 60, {0, 30}});
  scene.shots.push_back(Shot{60, 100, {60}});
  vs.scenes.push_back(scene);
  std::string s = vs.ToString();
  EXPECT_NE(s.find("100 frames"), std::string::npos);
  EXPECT_NE(s.find("2 shot(s)"), std::string::npos);
  EXPECT_NE(s.find("2 key frame(s)"), std::string::npos);
  EXPECT_EQ(vs.NumKeyFrames(), 3);
}

}  // namespace
}  // namespace dievent
