// Concurrent-corpus stress: N writer threads batch-ingest and seal
// their own event shards while M reader threads run cross-event
// queries the whole time. Sealed-only visibility is the correctness
// anchor: every event a reader sees must already be complete, so every
// mid-flight result must equal the serial-replay oracle for exactly
// the events it contains — no torn shards, no partial matches. Run
// under TSan by the fleet-chaos CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "metadata/corpus.h"
#include "metadata/query_parser.h"

namespace dievent {
namespace {

constexpr int kWriters = 4;
constexpr int kEventsPerWriter = 5;
constexpr int kFramesPerEvent = 8;

std::string FreshCorpusDir(const std::string& name) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = testing::TempDir() + "/" + name;
  if (fs->Exists(dir)) {
    auto names = fs->ListDir(dir);
    EXPECT_TRUE(names.ok());
    for (const std::string& n : names.value()) {
      const std::string path = JoinPath(dir, n);
      auto nested = fs->ListDir(path);
      if (nested.ok()) {  // a shard directory: wipe contents, then rmdir
        for (const std::string& inner : nested.value()) {
          EXPECT_TRUE(fs->Remove(JoinPath(path, inner)).ok());
        }
        EXPECT_TRUE(fs->RemoveDir(path).ok());
      } else {
        EXPECT_TRUE(fs->Remove(path).ok());
      }
    }
  }
  return dir;
}

std::string EventId(int event) { return StrFormat("event-%03d", event); }

EventContext Context(int event) {
  EventContext ctx;
  ctx.event_id = EventId(event);
  ctx.location = event % 2 == 0 ? "hall" : "garden";
  ctx.num_participants = 4;
  return ctx;
}

/// Deterministic per-event records; every event lives in its own time
/// window so queries mix pruned and opened shards.
RecordBatch EventBatch(int event, int first_frame, int frames) {
  RecordBatch batch;
  const double offset = event * 50.0;
  for (int i = 0; i < frames; ++i) {
    const int f = first_frame + i;
    LookAtMatrix m(4);
    m.Set(0, (event + f) % 3 + 1, true);
    if ((event + f) % 2 == 0) m.Set(1, 0, true);
    batch.lookat.push_back(
        LookAtRecord::FromMatrix(f, offset + f * 0.25, m));
    OverallEmotionRecord oe;
    oe.frame = f;
    oe.timestamp_s = offset + f * 0.25;
    oe.overall_happiness = 0.1 * (event % 9) + 0.01 * f;
    oe.mean_valence = 0.0;
    oe.observed = 4;
    batch.overall.push_back(oe);
  }
  return batch;
}

/// The serial-replay oracle for one event under `spec`.
std::vector<FrameMatch> OracleMatches(int event, const QuerySpec& spec) {
  MetadataRepository repo;
  repo.SetContext(Context(event));
  const RecordBatch batch = EventBatch(event, 0, kFramesPerEvent);
  for (const LookAtRecord& r : batch.lookat) {
    EXPECT_TRUE(repo.AddLookAt(r).ok());
  }
  for (const OverallEmotionRecord& r : batch.overall) {
    EXPECT_TRUE(repo.AddOverallEmotion(r).ok());
  }
  return Query(&repo, spec).Execute();
}

TEST(CorpusConcurrency, WritersIngestWhileReadersQuery) {
  const std::string dir = FreshCorpusDir("corpus_concurrency");
  ThreadPool pool(3);
  CorpusOptions options;
  options.pool = &pool;
  auto opened = EventCorpus::Open(dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EventCorpus* corpus = opened.value().get();

  const char* query_texts[] = {
      "events : look(P1, P2)",
      "events",
      "events : time[100, 400)",
      "events where venue = \"garden\" : watched(P1)",
  };
  // Parse once up front; readers share the immutable specs.
  std::vector<CorpusQuerySpec> specs;
  for (const char* text : query_texts) {
    auto spec = ParseCorpusQuery(text);
    ASSERT_TRUE(spec.ok()) << text;
    specs.push_back(spec.value());
  }
  // Oracle matches per (event, spec), precomputed serially.
  std::map<std::pair<int, size_t>, std::vector<FrameMatch>> oracle;
  for (int e = 0; e < kWriters * kEventsPerWriter; ++e) {
    for (size_t q = 0; q < specs.size(); ++q) {
      oracle[{e, q}] = OracleMatches(e, specs[q].frame);
    }
  }

  std::atomic<bool> done{false};
  std::atomic<int> sealed{0};
  std::atomic<int> reader_failures{0};
  std::atomic<long long> consistent_results{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([corpus, w, &sealed] {
      for (int i = 0; i < kEventsPerWriter; ++i) {
        const int event = w * kEventsPerWriter + i;
        auto store = corpus->BeginShard(EventId(event));
        ASSERT_TRUE(store.ok()) << store.status().ToString();
        ASSERT_TRUE(store.value()->SetContext(Context(event)).ok());
        // Two batches per shard: batched ingest, mid-shard visibility
        // never leaks (the shard is unsealed until both landed).
        ASSERT_TRUE(
            store.value()
                ->AppendBatch(EventBatch(event, 0, kFramesPerEvent / 2))
                .ok());
        ASSERT_TRUE(store.value()
                        ->AppendBatch(EventBatch(event, kFramesPerEvent / 2,
                                                 kFramesPerEvent -
                                                     kFramesPerEvent / 2))
                        .ok());
        ASSERT_TRUE(corpus->SealShard(EventId(event)).ok());
        sealed.fetch_add(1);
      }
    });
  }

  auto check_result = [&](const CorpusQueryResult& result, size_t q) {
    for (const EventMatches& em : result.events) {
      int event = -1;
      if (std::sscanf(em.event_id.c_str(), "event-%d", &event) != 1) {
        ++reader_failures;
        return;
      }
      auto it = oracle.find({event, q});
      if (it == oracle.end() || em.frames != it->second) {
        ++reader_failures;
        return;
      }
    }
    ++consistent_results;
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      size_t q = static_cast<size_t>(r) % specs.size();
      while (!done.load()) {
        auto result = corpus->Query(specs[q]);
        if (!result.ok()) {
          ++reader_failures;
          break;
        }
        check_result(result.value(), q);
        q = (q + 1) % specs.size();
      }
    });
  }

  for (std::thread& t : writers) t.join();
  done.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(sealed.load(), kWriters * kEventsPerWriter);
  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_GT(consistent_results.load(), 0);

  // Steady state: every query now sees all events, equal to the serial
  // replay oracle event by event.
  for (size_t q = 0; q < specs.size(); ++q) {
    auto result = corpus->Query(specs[q]);
    ASSERT_TRUE(result.ok());
    check_result(result.value(), q);
  }
  EXPECT_EQ(reader_failures.load(), 0);

  // The final full-scope query returns one entry per event.
  auto all = corpus->Query(specs[1]);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().events.size(),
            static_cast<size_t>(kWriters * kEventsPerWriter));
}

}  // namespace
}  // namespace dievent
