#include "image/filter.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

TEST(BoxBlur, PreservesUniformImage) {
  ImageU8 img(9, 9);
  img.Fill(100);
  ImageU8 out = BoxBlur(img, 2);
  for (uint8_t v : out.data()) EXPECT_EQ(v, 100);
}

TEST(BoxBlur, ZeroRadiusIsIdentity) {
  ImageU8 img(5, 5);
  img.at(2, 2) = 200;
  EXPECT_TRUE(BoxBlur(img, 0) == img);
}

TEST(BoxBlur, SpreadsImpulse) {
  ImageU8 img(9, 9);
  img.at(4, 4) = 90;
  ImageU8 out = BoxBlur(img, 1);
  // The 3x3 neighbourhood receives 90/9 = 10 each.
  for (int y = 3; y <= 5; ++y)
    for (int x = 3; x <= 5; ++x) EXPECT_EQ(out.at(x, y), 10);
  EXPECT_EQ(out.at(0, 0), 0);
}

TEST(GaussianBlur, NonPositiveSigmaIsIdentity) {
  ImageU8 img(5, 5);
  img.at(1, 1) = 50;
  EXPECT_TRUE(GaussianBlur(img, 0.0) == img);
  EXPECT_TRUE(GaussianBlur(img, -1.0) == img);
}

TEST(GaussianBlur, ConservesMassApproximately) {
  ImageU8 img(21, 21);
  img.at(10, 10) = 255;
  ImageU8 out = GaussianBlur(img, 1.5);
  long sum_in = 255, sum_out = 0;
  for (uint8_t v : out.data()) sum_out += v;
  // Rounding to u8 loses a little; stay within 30%.
  EXPECT_NEAR(sum_out, sum_in, 0.3 * 255);
  // Peak is at the centre and reduced.
  EXPECT_GT(out.at(10, 10), out.at(12, 10));
  EXPECT_LT(out.at(10, 10), 255);
}

TEST(SobelMagnitude, FlatImageHasNoEdges) {
  ImageU8 img(8, 8);
  img.Fill(128);
  ImageU8 out = SobelMagnitude(img);
  for (uint8_t v : out.data()) EXPECT_EQ(v, 0);
}

TEST(SobelMagnitude, VerticalEdgeDetected) {
  ImageU8 img(10, 10);
  for (int y = 0; y < 10; ++y)
    for (int x = 5; x < 10; ++x) img.at(x, y) = 200;
  ImageU8 out = SobelMagnitude(img);
  // Strong response at the boundary columns, none in the flat interior.
  EXPECT_GT(out.at(5, 5), 100);
  EXPECT_EQ(out.at(2, 5), 0);
  EXPECT_EQ(out.at(8, 5), 0);
}

TEST(Threshold, BinarizesAtCutoff) {
  ImageU8 img(3, 1);
  img.at(0, 0) = 10;
  img.at(1, 0) = 100;
  img.at(2, 0) = 200;
  ImageU8 out = Threshold(img, 100);
  EXPECT_EQ(out.at(0, 0), 0);
  EXPECT_EQ(out.at(1, 0), 255);  // >= threshold
  EXPECT_EQ(out.at(2, 0), 255);
}

}  // namespace
}  // namespace dievent
