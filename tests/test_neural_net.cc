#include "ml/neural_net.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

namespace dievent {
namespace {

/// Two-ring XOR-ish dataset: class is the XOR of sign bits.
std::vector<TrainSample> XorData(int n, Rng* rng) {
  std::vector<TrainSample> out;
  for (int i = 0; i < n; ++i) {
    float x = static_cast<float>(rng->Uniform(-1, 1));
    float y = static_cast<float>(rng->Uniform(-1, 1));
    TrainSample s;
    s.features = {x, y};
    s.label = ((x > 0) != (y > 0)) ? 1 : 0;
    out.push_back(std::move(s));
  }
  return out;
}

TEST(NeuralNet, CreateValidates) {
  Rng rng(1);
  EXPECT_FALSE(NeuralNet::Create({5}, &rng).ok());
  EXPECT_FALSE(NeuralNet::Create({5, 0, 2}, &rng).ok());
  EXPECT_FALSE(NeuralNet::Create({5, 3}, nullptr).ok());
  auto net = NeuralNet::Create({5, 3, 2}, &rng);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net.value().InputSize(), 5);
  EXPECT_EQ(net.value().OutputSize(), 2);
}

TEST(NeuralNet, PredictIsSoftmaxDistribution) {
  Rng rng(2);
  auto net = NeuralNet::Create({4, 8, 3}, &rng);
  ASSERT_TRUE(net.ok());
  auto probs = net.value().Predict({0.1f, -0.2f, 0.3f, 0.4f});
  ASSERT_EQ(probs.size(), 3u);
  float total = 0;
  for (float p : probs) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
    total += p;
  }
  EXPECT_NEAR(total, 1.0f, 1e-5);
}

TEST(NeuralNet, LearnsXor) {
  Rng rng(3);
  auto net = NeuralNet::Create({2, 16, 2}, &rng);
  ASSERT_TRUE(net.ok());
  auto train = XorData(400, &rng);
  TrainOptions opt;
  opt.epochs = 120;
  opt.learning_rate = 0.1;
  auto history = net.value().Train(train, opt, &rng);
  ASSERT_TRUE(history.ok()) << history.status();
  auto test = XorData(200, &rng);
  EXPECT_GT(net.value().Evaluate(test), 0.93);
  // Loss decreased over training.
  EXPECT_LT(history.value().back().mean_loss,
            history.value().front().mean_loss);
}

TEST(NeuralNet, TrainValidatesInputs) {
  Rng rng(4);
  auto net = NeuralNet::Create({2, 4, 2}, &rng);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net.value().Train({}, {}, &rng).status().code(),
            StatusCode::kInvalidArgument);
  TrainSample bad_features;
  bad_features.features = {1.0f, 2.0f, 3.0f};
  bad_features.label = 0;
  EXPECT_FALSE(net.value().Train({bad_features}, {}, &rng).ok());
  TrainSample bad_label;
  bad_label.features = {1.0f, 2.0f};
  bad_label.label = 7;
  EXPECT_FALSE(net.value().Train({bad_label}, {}, &rng).ok());
}

TEST(NeuralNet, TargetLossStopsEarly) {
  Rng rng(5);
  auto net = NeuralNet::Create({2, 16, 2}, &rng);
  ASSERT_TRUE(net.ok());
  auto train = XorData(300, &rng);
  TrainOptions opt;
  opt.epochs = 500;
  opt.learning_rate = 0.1;
  opt.target_loss = 0.3;
  auto history = net.value().Train(train, opt, &rng);
  ASSERT_TRUE(history.ok());
  EXPECT_LT(history.value().size(), 500u);
  EXPECT_LT(history.value().back().mean_loss, 0.3);
}

TEST(NeuralNet, DeterministicGivenSeed) {
  auto run = [] {
    Rng rng(42);
    auto net = NeuralNet::Create({2, 8, 2}, &rng);
    auto train = XorData(100, &rng);
    TrainOptions opt;
    opt.epochs = 5;
    (void)net.value().Train(train, opt, &rng);
    return net.value().Predict({0.5f, -0.5f});
  };
  auto a = run();
  auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(NeuralNet, SaveLoadRoundTrip) {
  Rng rng(6);
  auto net = NeuralNet::Create({3, 5, 2}, &rng);
  ASSERT_TRUE(net.ok());
  std::string path = testing::TempDir() + "/net.bin";
  ASSERT_TRUE(net.value().Save(path).ok());
  auto loaded = NeuralNet::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  std::vector<float> in = {0.3f, -0.7f, 1.1f};
  auto pa = net.value().Predict(in);
  auto pb = loaded.value().Predict(in);
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_FLOAT_EQ(pa[i], pb[i]);
}

TEST(NeuralNet, LoadRejectsGarbage) {
  std::string path = testing::TempDir() + "/garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a network";
  }
  EXPECT_EQ(NeuralNet::Load(path).status().code(), StatusCode::kCorruption);
  EXPECT_EQ(NeuralNet::Load("/no/such/file").status().code(),
            StatusCode::kIoError);
}

TEST(NeuralNet, ClassifyReturnsArgmax) {
  Rng rng(7);
  auto net = NeuralNet::Create({2, 4, 3}, &rng);
  ASSERT_TRUE(net.ok());
  std::vector<float> in = {1.0f, -1.0f};
  auto probs = net.value().Predict(in);
  int cls = net.value().Classify(in);
  for (float p : probs) EXPECT_LE(p, probs[cls]);
}

}  // namespace
}  // namespace dievent
