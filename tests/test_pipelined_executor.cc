// Pipelined streaming executor tests: with worker threads and acquisition
// prefetch enabled, the pipeline must produce byte-identical reports and
// repository contents to the sequential reference executor — on clean
// runs, under injected faults, and on the failure path (a below-quorum
// collapse must fail at the same frame with the same message).

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "sim/scenario.h"

namespace dievent {
namespace {

PipelineOptions BaseOptions() {
  PipelineOptions opt;
  opt.mode = PipelineMode::kFullVision;
  opt.frame_stride = 10;  // 61 frames
  opt.eye_contact.angular_tolerance_deg = 12.0;
  opt.analyze_emotions = false;
  opt.parse_video = false;
  return opt;
}

/// One shared recognizer so no run pays for training (and all runs agree
/// on the network bit for bit).
const EmotionRecognizer& SharedRecognizer() {
  static const EmotionRecognizer* recognizer = [] {
    EmotionRecognizerOptions opt;
    opt.hidden_units = 16;
    opt.samples_per_class = 24;
    opt.train.epochs = 6;
    Rng rng(42);
    auto trained = EmotionRecognizer::Train(opt, &rng);
    EXPECT_TRUE(trained.ok()) << trained.status();
    return new EmotionRecognizer(std::move(trained).TakeValue());
  }();
  return *recognizer;
}

struct RunResult {
  DiEventReport report;
  MetadataRepository repo;
};

RunResult RunPipeline(const DiningScene& scene, PipelineOptions opt, int threads,
              int prefetch) {
  opt.num_threads = threads;
  opt.prefetch_depth = prefetch;
  RunResult out;
  auto report = DiEventPipeline(&scene, opt).Run(&out.repo);
  EXPECT_TRUE(report.ok()) << report.status();
  if (report.ok()) out.report = std::move(report).TakeValue();
  return out;
}

/// Stage timings are wall-clock and differ run to run by construction;
/// everything else in the summary must match byte for byte.
void ZeroTimings(DiEventReport* report) { report->timings = StageTimings{}; }

/// Supervisor mechanism counters (deadline misses, watchdog interrupts,
/// reader restarts, queue depth) measure wall-clock behavior of stalled
/// reads, not folded outcomes; under stall faults they are the only
/// fields allowed to differ between executors.
void ZeroMechanismCounters(DiEventReport* report) {
  report->degradation.deadline_misses = 0;
  report->degradation.watchdog_interrupts = 0;
  report->degradation.reader_restarts = 0;
  report->degradation.max_queue_depth = 0;
}

void ExpectSameRepository(const MetadataRepository& a,
                          const MetadataRepository& b) {
  ASSERT_EQ(a.lookat_records().size(), b.lookat_records().size());
  for (size_t i = 0; i < a.lookat_records().size(); ++i) {
    const LookAtRecord& x = a.lookat_records()[i];
    const LookAtRecord& y = b.lookat_records()[i];
    EXPECT_EQ(x.frame, y.frame) << "lookat record " << i;
    EXPECT_EQ(x.timestamp_s, y.timestamp_s) << "lookat record " << i;
    EXPECT_TRUE(x.cells == y.cells) << "lookat record " << i;
  }
  ASSERT_EQ(a.emotion_records().size(), b.emotion_records().size());
  for (size_t i = 0; i < a.emotion_records().size(); ++i) {
    const EmotionRecord& x = a.emotion_records()[i];
    const EmotionRecord& y = b.emotion_records()[i];
    EXPECT_EQ(x.frame, y.frame) << "emotion record " << i;
    EXPECT_EQ(x.participant, y.participant) << "emotion record " << i;
    EXPECT_EQ(x.emotion, y.emotion) << "emotion record " << i;
    EXPECT_EQ(x.confidence, y.confidence) << "emotion record " << i;
  }
  ASSERT_EQ(a.overall_records().size(), b.overall_records().size());
  for (size_t i = 0; i < a.overall_records().size(); ++i) {
    const OverallEmotionRecord& x = a.overall_records()[i];
    const OverallEmotionRecord& y = b.overall_records()[i];
    EXPECT_EQ(x.frame, y.frame) << "overall record " << i;
    EXPECT_EQ(x.overall_happiness, y.overall_happiness)
        << "overall record " << i;
    EXPECT_EQ(x.mean_valence, y.mean_valence) << "overall record " << i;
    EXPECT_EQ(x.observed, y.observed) << "overall record " << i;
  }
}

void ExpectSameRun(RunResult reference, RunResult candidate) {
  ZeroTimings(&reference.report);
  ZeroTimings(&candidate.report);
  EXPECT_EQ(reference.report.Summary(), candidate.report.Summary());
  EXPECT_EQ(reference.report.frames_processed,
            candidate.report.frames_processed);
  EXPECT_EQ(reference.report.accuracy.lookat_cell_accuracy,
            candidate.report.accuracy.lookat_cell_accuracy);
  EXPECT_EQ(reference.report.accuracy.mean_gaze_error_deg,
            candidate.report.accuracy.mean_gaze_error_deg);
  EXPECT_EQ(reference.report.accuracy.emotion_accuracy,
            candidate.report.accuracy.emotion_accuracy);
  EXPECT_EQ(reference.report.degradation.frames_degraded,
            candidate.report.degradation.frames_degraded);
  EXPECT_EQ(reference.report.degradation.frames_skipped,
            candidate.report.degradation.frames_skipped);
  ExpectSameRepository(reference.repo, candidate.repo);
}

TEST(PipelinedExecutor, CleanRunMatchesSequentialBitForBit) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt = BaseOptions();
  opt.analyze_emotions = true;
  opt.recognizer = &SharedRecognizer();
  opt.parse_video = true;

  RunResult sequential = RunPipeline(scene, opt, /*threads=*/1, /*prefetch=*/0);
  EXPECT_GT(sequential.repo.emotion_records().size(), 0u);
  EXPECT_GT(sequential.report.structure.num_frames, 0);
  // Threads only, prefetch only, and both together must all reproduce
  // the sequential run exactly.
  ExpectSameRun(sequential, RunPipeline(scene, opt, 4, 0));
  ExpectSameRun(sequential, RunPipeline(scene, opt, 1, 4));
  ExpectSameRun(sequential, RunPipeline(scene, opt, 4, 4));
}

TEST(PipelinedExecutor, OutageAndDropFaultsMatchSequential) {
  // Fault folding (retries, hold-last-good, breaker transitions) is part
  // of the determinism contract: the prefetch pump replays the identical
  // admission/read/fold sequence, so even degraded runs match exactly.
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt = BaseOptions();
  opt.camera_faults.resize(4);
  opt.camera_faults[1].seed = 404;
  opt.camera_faults[1].drop_probability = 0.2;
  opt.camera_faults[2].flaky_windows = {{15, 35}};
  opt.camera_faults[3].outage_after_frame = 400;
  opt.acquisition.retry_budget = 1;
  opt.acquisition.min_camera_quorum = 2;
  opt.acquisition.quarantine_after = 2;

  RunResult sequential = RunPipeline(scene, opt, 1, 0);
  EXPECT_GT(sequential.report.degradation.frames_degraded, 0);
  RunResult pipelined = RunPipeline(scene, opt, 4, 4);
  EXPECT_EQ(sequential.report.degradation.camera_drops,
            pipelined.report.degradation.camera_drops);
  EXPECT_EQ(sequential.report.degradation.retries_spent,
            pipelined.report.degradation.retries_spent);
  EXPECT_EQ(sequential.report.degradation.quarantine_events,
            pipelined.report.degradation.quarantine_events);
  ExpectSameRun(std::move(sequential), std::move(pipelined));
}

TEST(PipelinedExecutor, StallFaultsMatchSequentialOutcomes) {
  // A stalled camera is cut off by the read deadline in both executors.
  // The folded outcomes (missing slots, degraded frames, breaker state)
  // must match; only the mechanism counters may differ. Every run gets a
  // fresh auto-advancing SimClock, so the stall and the deadline are
  // simulated: the 0.5s stall costs no wall time, and the verdicts no
  // longer depend on machine load (this test was the suite's one flake
  // under parallel ctest).
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt = BaseOptions();
  opt.frame_stride = 100;  // 7 synchronized reads
  opt.camera_faults.resize(4);
  opt.camera_faults[1].stall_probability = 1.0;
  opt.camera_faults[1].stall_duration_s = 0.5;
  opt.acquisition.read_deadline_s = 0.03;
  opt.acquisition.retry_budget = 0;

  auto run_simulated = [&](int threads, int prefetch) {
    SimClock::Options sim_options;
    sim_options.auto_advance = true;
    SimClock sim(sim_options);
    PipelineOptions sim_opt = opt;
    sim_opt.clock = &sim;
    return RunPipeline(scene, sim_opt, threads, prefetch);
  };
  RunResult sequential = run_simulated(1, 0);
  RunResult pipelined = run_simulated(4, 2);
  EXPECT_GT(sequential.report.degradation.frames_degraded, 0);
  ZeroMechanismCounters(&sequential.report);
  ZeroMechanismCounters(&pipelined.report);
  ExpectSameRun(std::move(sequential), std::move(pipelined));
}

TEST(PipelinedExecutor, CollapseFailsAtTheSameFrameWithTheSameMessage) {
  // Below-quorum collapse: the pipelined executor must drain in-flight
  // frames and surface the identical error — same frame index, same
  // quarantine snapshot — as the sequential one.
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt = BaseOptions();
  opt.camera_faults.resize(4);
  for (auto& spec : opt.camera_faults) spec.outage_after_frame = 100;
  opt.acquisition.min_camera_quorum = 2;
  opt.acquisition.quarantine_after = 2;
  opt.acquisition.readmit_after = 0;  // cameras never come back
  opt.acquisition.max_consecutive_below_quorum = 5;

  auto fail = [&](int threads, int prefetch) {
    PipelineOptions run = opt;
    run.num_threads = threads;
    run.prefetch_depth = prefetch;
    MetadataRepository repo;
    auto report = DiEventPipeline(&scene, run).Run(&repo);
    EXPECT_FALSE(report.ok());
    return report.status();
  };
  Status sequential = fail(1, 0);
  EXPECT_EQ(sequential.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(sequential.message().find("collapsed"), std::string::npos);
  for (auto [threads, prefetch] :
       {std::pair{4, 0}, std::pair{1, 4}, std::pair{4, 4}}) {
    Status pipelined = fail(threads, prefetch);
    EXPECT_EQ(pipelined.code(), sequential.code());
    EXPECT_EQ(pipelined.message(), sequential.message())
        << "threads=" << threads << " prefetch=" << prefetch;
  }
}

TEST(PipelinedExecutor, RejectsNegativePrefetchDepth) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt = BaseOptions();
  opt.prefetch_depth = -1;
  MetadataRepository repo;
  auto report = DiEventPipeline(&scene, opt).Run(&repo);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelinedExecutor, GroundTruthModeIgnoresTheKnobs) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt;
  opt.mode = PipelineMode::kGroundTruth;
  opt.parse_video = false;
  opt.frame_stride = 5;
  opt.num_threads = 4;
  opt.prefetch_depth = 4;
  MetadataRepository repo;
  auto report = DiEventPipeline(&scene, opt).Run(&repo);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().frames_processed, 122);
}

}  // namespace
}  // namespace dievent
