// Property and fuzz tests for the query grammar. Two invariants:
//
//  1. Round-trip: for seeded random specs, parse(print(spec)) == spec
//     and print is a fixpoint (print(parse(print(q))) == print(q)) —
//     for both frame specs and full corpus queries.
//  2. Robustness: malformed input — random bytes, truncations, and
//     splices of valid queries — always returns InvalidArgument and
//     never crashes, throws, or returns a partial spec.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/emotion.h"
#include "common/rng.h"
#include "metadata/query_parser.h"

namespace dievent {
namespace {

// --- generators ----------------------------------------------------------

int RandomParticipant(Rng* rng) {
  // The parser caps participant ids at 4096 (1-based).
  return static_cast<int>(rng->NextBelow(64));
}

double RandomDouble(Rng* rng) {
  switch (rng->NextBelow(4)) {
    case 0:
      return rng->Uniform(-1, 1);
    case 1:
      return static_cast<double>(rng->NextBelow(1000));
    case 2:
      return rng->Uniform(-1e6, 1e6);
    default:
      // Awkward magnitudes: %.17g must still round-trip these exactly.
      return rng->Uniform(-1, 1) * 1e-9;
  }
}

QuerySpec RandomFrameSpec(Rng* rng) {
  QuerySpec spec;
  if (rng->NextBool(0.5)) {
    const double lo = RandomDouble(rng);
    spec.time_range = {lo, lo + 1 + rng->Uniform(0, 100)};
  }
  for (uint64_t i = rng->NextBelow(3); i > 0; --i) {
    spec.looking.push_back({RandomParticipant(rng), RandomParticipant(rng)});
  }
  for (uint64_t i = rng->NextBelow(3); i > 0; --i) {
    spec.eye_contact.push_back(
        {RandomParticipant(rng), RandomParticipant(rng)});
  }
  for (uint64_t i = rng->NextBelow(3); i > 0; --i) {
    spec.feeling.push_back(
        {RandomParticipant(rng),
         kAllEmotions[rng->NextBelow(kNumEmotions)]});
  }
  if (rng->NextBool(0.4)) spec.min_oh = RandomDouble(rng);
  if (rng->NextBool(0.4)) spec.min_valence = RandomDouble(rng);
  for (uint64_t i = rng->NextBelow(3); i > 0; --i) {
    spec.anyone_at.push_back(RandomParticipant(rng));
  }
  return spec;
}

/// Scope strings exercise the quoting escapes: spaces, quotes,
/// backslashes, punctuation.
std::string RandomScopeString(Rng* rng) {
  static const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 _-.,:()&\"\\";
  std::string out;
  const uint64_t len = 1 + rng->NextBelow(12);
  for (uint64_t i = 0; i < len; ++i) {
    out.push_back(alphabet[rng->NextBelow(sizeof(alphabet) - 1)]);
  }
  return out;
}

CorpusQuerySpec RandomCorpusSpec(Rng* rng) {
  CorpusQuerySpec spec;
  if (rng->NextBool(0.4)) spec.scope.event_id = RandomScopeString(rng);
  if (rng->NextBool(0.4)) spec.scope.venue = RandomScopeString(rng);
  if (rng->NextBool(0.3)) spec.scope.occasion = RandomScopeString(rng);
  if (rng->NextBool(0.3)) spec.scope.date = RandomScopeString(rng);
  if (rng->NextBool(0.3)) {
    spec.scope.min_participants = 1 + static_cast<int>(rng->NextBelow(20));
  }
  if (rng->NextBool(0.7)) spec.frame = RandomFrameSpec(rng);
  return spec;
}

// --- round-trip properties -----------------------------------------------

TEST(QueryFuzz, FrameSpecParsePrintParseIsAFixpoint) {
  Rng rng(0xF00D);
  for (int i = 0; i < 500; ++i) {
    const QuerySpec spec = RandomFrameSpec(&rng);
    const std::string printed = FormatQuerySpec(spec);
    SCOPED_TRACE(printed);
    if (spec.Empty()) {
      EXPECT_TRUE(printed.empty());
      continue;
    }
    auto reparsed = ParseQuerySpec(printed);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_TRUE(reparsed.value() == spec);
    EXPECT_EQ(FormatQuerySpec(reparsed.value()), printed);
  }
}

TEST(QueryFuzz, CorpusQueryParsePrintParseIsAFixpoint) {
  Rng rng(0xBEEF);
  for (int i = 0; i < 500; ++i) {
    const CorpusQuerySpec spec = RandomCorpusSpec(&rng);
    const std::string printed = FormatCorpusQuery(spec);
    SCOPED_TRACE(printed);
    auto reparsed = ParseCorpusQuery(printed);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_TRUE(reparsed.value() == spec);
    EXPECT_EQ(FormatCorpusQuery(reparsed.value()), printed);
  }
}

TEST(QueryFuzz, CanonicalSpellingIsCaseAndWhitespaceInsensitive) {
  const char* variants[] = {
      "EC(p1, P2) AND oh >= 0.5",
      "ec(P1,P2)&OH>=0.5",
      "  ec( P1 , P2 )   and   oh   >=   0.5  ",
  };
  auto canon = ParseQuerySpec("ec(P1, P2) & oh >= 0.5");
  ASSERT_TRUE(canon.ok());
  for (const char* text : variants) {
    auto spec = ParseQuerySpec(text);
    ASSERT_TRUE(spec.ok()) << text;
    EXPECT_TRUE(spec.value() == canon.value()) << text;
  }
}

// --- malformed-input fuzzing ---------------------------------------------

/// Every parser outcome a fuzz input is allowed to produce: success or
/// a clean InvalidArgument. Anything else (crash, throw, other code)
/// fails the test.
void ExpectParsesCleanly(const std::string& text) {
  SCOPED_TRACE(text);
  auto frame = ParseQuerySpec(text);
  if (!frame.ok()) {
    EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  }
  auto corpus = ParseCorpusQuery(text);
  if (!corpus.ok()) {
    EXPECT_EQ(corpus.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(QueryFuzz, HandCraftedNastiesNeverCrash) {
  const char* nasties[] = {
      "",
      ".",
      "time[., 2)",
      "time[1, )",
      "time[1, 2",
      "time[999999999999999999999999999999999, 2)",
      "time[1e999, 2)",
      "oh >= .",
      "oh >=",
      "oh >= --5",
      "valence >= 1e-999999",
      "look(P99999999999999999999, P1)",
      "look(P0, P1)",
      "look(P1)",
      "ec(P1, P2",
      "ec(, P2)",
      "feel(P1, bogus)",
      "feel(P1, )",
      "watched()",
      "watched(P1) extra",
      "& ec(P1, P2)",
      "ec(P1, P2) &",
      "ec(P1, P2) and and oh >= 0.5",
      "events where",
      "events where venue",
      "events where venue = ",
      "events where venue = \"unterminated",
      "events where venue = \"escaped\\\" still unterminated",
      "events where venue = bare",
      "events where participants >= ",
      "events where participants >= lots",
      "events where bogus = \"x\"",
      "events :",
      "events : &",
      "events events",
      "where venue = \"x\"",
      "events where context. = \"x\"",
      "events where context.venue >= \"x\"",
      "\xff\xfe garbage \x01",
      "time[nan, inf)",
  };
  for (const char* text : nasties) ExpectParsesCleanly(text);
}

TEST(QueryFuzz, RandomBytesNeverCrash) {
  Rng rng(0xDADA);
  for (int i = 0; i < 2000; ++i) {
    std::string text;
    const uint64_t len = rng.NextBelow(40);
    for (uint64_t j = 0; j < len; ++j) {
      text.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    ExpectParsesCleanly(text);
  }
}

TEST(QueryFuzz, MutatedValidQueriesNeverCrashOrPartiallyParse) {
  const std::string seeds[] = {
      "ec(P1, P3) & time[8, 12) and oh >= 0.25",
      "events where venue = \"sala roja\" & participants >= 4 : "
      "look(P2, P1) & valence >= -0.5",
      "feel(P2, happy) & watched(P4)",
  };
  Rng rng(0xC0FFEE);
  for (int i = 0; i < 2000; ++i) {
    std::string text = seeds[rng.NextBelow(3)];
    switch (rng.NextBelow(4)) {
      case 0:  // truncate
        text.resize(rng.NextBelow(text.size() + 1));
        break;
      case 1: {  // flip one byte
        if (!text.empty()) {
          text[rng.NextBelow(text.size())] =
              static_cast<char>(rng.NextBelow(256));
        }
        break;
      }
      case 2: {  // splice two seeds
        const std::string& other = seeds[rng.NextBelow(3)];
        text = text.substr(0, rng.NextBelow(text.size() + 1)) +
               other.substr(rng.NextBelow(other.size() + 1));
        break;
      }
      default: {  // duplicate a chunk
        const uint64_t at = rng.NextBelow(text.size() + 1);
        text.insert(at, text.substr(0, rng.NextBelow(text.size() + 1)));
        break;
      }
    }
    ExpectParsesCleanly(text);
  }
}

}  // namespace
}  // namespace dievent
