#include "analysis/fusion.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

FaceObservation Obs(int camera, int identity, Vec3 pos_world,
                    double radius_px, bool frontal,
                    Vec3 gaze_world = {0, 0, 0}) {
  FaceObservation o;
  o.camera_index = camera;
  o.identity = identity;
  o.identity_confidence = 1.0;
  o.head_position_world = pos_world;
  o.detection.radius_px = radius_px;
  o.detection.front_facing = frontal;
  if (frontal && gaze_world.Norm() > 0) {
    o.has_gaze = true;
    o.gaze_world = gaze_world.Normalized();
  }
  return o;
}

TEST(Fusion, WeightsPositionsByRadius) {
  // Camera 0 sees the head closer (larger radius) -> more weight.
  std::vector<FaceObservation> obs = {
      Obs(0, 0, {1.0, 0, 0}, 30, false),
      Obs(1, 0, {2.0, 0, 0}, 10, false),
  };
  auto fused = FuseObservations(obs, 1);
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused[0].num_views, 2);
  EXPECT_NEAR(fused[0].geometry.head_position.x, 1.25, 1e-9);
}

TEST(Fusion, BestViewGazeComesFromLargestFrontal) {
  std::vector<FaceObservation> obs = {
      Obs(0, 0, {0, 0, 0}, 12, true, {1, 0, 0}),
      Obs(1, 0, {0, 0, 0}, 25, true, {0, 1, 0}),  // larger -> wins
      Obs(2, 0, {0, 0, 0}, 40, false),            // back view: no gaze
  };
  FusionOptions opt;
  opt.gaze_mode = GazeFusionMode::kBestView;
  auto fused = FuseObservations(obs, 1, opt);
  ASSERT_TRUE(fused[0].geometry.gaze_direction.has_value());
  EXPECT_NEAR(fused[0].geometry.gaze_direction->y, 1.0, 1e-9);
  EXPECT_EQ(fused[0].best_camera, 1);
  EXPECT_EQ(fused[0].num_frontal_views, 2);
}

TEST(Fusion, AverageGazeMode) {
  std::vector<FaceObservation> obs = {
      Obs(0, 0, {0, 0, 0}, 20, true, {1, 0, 0}),
      Obs(1, 0, {0, 0, 0}, 20, true, {0, 1, 0}),
  };
  FusionOptions opt;
  opt.gaze_mode = GazeFusionMode::kAverage;
  auto fused = FuseObservations(obs, 1, opt);
  ASSERT_TRUE(fused[0].geometry.gaze_direction.has_value());
  Vec3 g = *fused[0].geometry.gaze_direction;
  EXPECT_NEAR(g.x, g.y, 1e-9);
  EXPECT_NEAR(g.Norm(), 1.0, 1e-9);
}

TEST(Fusion, UnseenParticipantHasNoViewsOrGaze) {
  std::vector<FaceObservation> obs = {Obs(0, 1, {1, 1, 1}, 15, false)};
  auto fused = FuseObservations(obs, 3);
  EXPECT_EQ(fused[0].num_views, 0);
  EXPECT_FALSE(fused[0].geometry.gaze_direction.has_value());
  EXPECT_EQ(fused[1].num_views, 1);
  EXPECT_EQ(fused[2].num_views, 0);
  EXPECT_EQ(fused[2].best_camera, -1);
}

TEST(Fusion, IgnoresUnidentifiedAndOutOfRange) {
  std::vector<FaceObservation> obs = {
      Obs(0, -1, {9, 9, 9}, 50, true, {1, 0, 0}),
      Obs(0, 7, {9, 9, 9}, 50, true, {1, 0, 0}),  // beyond num_participants
      Obs(0, 0, {1, 0, 0}, 20, false),
  };
  auto fused = FuseObservations(obs, 2);
  EXPECT_EQ(fused[0].num_views, 1);
  EXPECT_EQ(fused[1].num_views, 0);
}

TEST(Fusion, ConfidenceGateFiltersWeakIdentities) {
  FaceObservation weak = Obs(0, 0, {5, 5, 5}, 20, false);
  weak.identity_confidence = 0.1;
  FusionOptions opt;
  opt.min_identity_confidence = 0.5;
  auto fused = FuseObservations({weak}, 1, opt);
  EXPECT_EQ(fused[0].num_views, 0);
}

TEST(Fusion, SeatPriorResolvesUnknownIdentities) {
  FaceObservation unknown = Obs(0, -1, {1.02, 0.03, 1.15}, 20, true,
                                {1, 0, 0});
  unknown.identity_confidence = 0.0;
  FusionOptions opt;
  opt.seat_prior = {{-1.0, 0, 1.15}, {1.0, 0, 1.15}};
  auto fused = FuseObservations({unknown}, 2, opt);
  EXPECT_EQ(fused[0].num_views, 0);
  EXPECT_EQ(fused[1].num_views, 1);  // adopted seat 1
  ASSERT_TRUE(fused[1].geometry.gaze_direction.has_value());
}

TEST(Fusion, SeatPriorRespectsGateRadius) {
  // An unknown head half a metre from every seat stays unknown.
  FaceObservation far_away = Obs(0, -1, {0.0, 3.0, 1.15}, 20, false);
  FusionOptions opt;
  opt.seat_prior = {{-1.0, 0, 1.15}, {1.0, 0, 1.15}};
  opt.seat_radius_m = 0.45;
  auto fused = FuseObservations({far_away}, 2, opt);
  EXPECT_EQ(fused[0].num_views, 0);
  EXPECT_EQ(fused[1].num_views, 0);
}

TEST(Fusion, SeatPriorDoesNotOverrideRecognizer) {
  // A recognized observation sitting near the wrong seat keeps its
  // appearance-based identity.
  FaceObservation recognized = Obs(0, 0, {1.0, 0, 1.15}, 20, false);
  FusionOptions opt;
  opt.seat_prior = {{-1.0, 0, 1.15}, {1.0, 0, 1.15}};
  auto fused = FuseObservations({recognized}, 2, opt);
  EXPECT_EQ(fused[0].num_views, 1);
  EXPECT_EQ(fused[1].num_views, 0);
}

TEST(Fusion, SeatPriorServesMultipleViewsOfOnePerson) {
  // Two cameras, both unidentified, both near seat 0: both observations
  // must fuse into participant 0 (a seat is not "consumed").
  FaceObservation a = Obs(0, -1, {-1.02, 0.01, 1.15}, 18, false);
  FaceObservation b = Obs(1, -1, {-0.97, -0.02, 1.16}, 22, false);
  FusionOptions opt;
  opt.seat_prior = {{-1.0, 0, 1.15}, {1.0, 0, 1.15}};
  auto fused = FuseObservations({a, b}, 2, opt);
  EXPECT_EQ(fused[0].num_views, 2);
}

TEST(Fusion, ToGeometryPreservesOrder) {
  std::vector<FaceObservation> obs = {
      Obs(0, 1, {2, 0, 0}, 20, true, {0, 0, 1}),
      Obs(0, 0, {1, 0, 0}, 20, false),
  };
  auto fused = FuseObservations(obs, 2);
  auto geo = ToGeometry(fused);
  ASSERT_EQ(geo.size(), 2u);
  EXPECT_NEAR(geo[0].head_position.x, 1.0, 1e-9);
  EXPECT_NEAR(geo[1].head_position.x, 2.0, 1e-9);
  EXPECT_TRUE(geo[1].gaze_direction.has_value());
  EXPECT_FALSE(geo[0].gaze_direction.has_value());
}

}  // namespace
}  // namespace dievent
