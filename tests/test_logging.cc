#include "common/logging.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/emotion.h"

namespace dievent {
namespace {

TEST(Logging, ThresholdRoundTrips) {
  LogLevel original = GetLogThreshold();
  SetLogThreshold(LogLevel::kDebug);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kDebug);
  SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);
  SetLogThreshold(original);
}

TEST(Logging, BelowThresholdIsSilent) {
  LogLevel original = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  testing::internal::CaptureStderr();
  DIEVENT_LOG(Info) << "should not appear";
  DIEVENT_LOG(Warning) << "also below";  // kWarning < kError
  std::string err = testing::internal::GetCapturedStderr();
  EXPECT_TRUE(err.empty()) << err;
  SetLogThreshold(original);
}

TEST(Logging, AtOrAboveThresholdEmitsWithLocation) {
  LogLevel original = GetLogThreshold();
  SetLogThreshold(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  DIEVENT_LOG(Error) << "disk " << 42 << " gone";
  std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("ERROR"), std::string::npos);
  EXPECT_NE(err.find("test_logging.cc"), std::string::npos);
  EXPECT_NE(err.find("disk 42 gone"), std::string::npos);
  SetLogThreshold(original);
}

TEST(Logging, SetLogStreamRedirectsAndRestores) {
  LogLevel original = GetLogThreshold();
  SetLogThreshold(LogLevel::kInfo);
  std::ostringstream captured;
  SetLogStream(&captured);
  DIEVENT_LOG(Info) << "redirected " << 7;
  SetLogStream(nullptr);  // back to stderr
  EXPECT_NE(captured.str().find("INFO"), std::string::npos);
  EXPECT_NE(captured.str().find("redirected 7"), std::string::npos);
  testing::internal::CaptureStderr();
  DIEVENT_LOG(Info) << "back on stderr";
  std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("back on stderr"), std::string::npos);
  EXPECT_EQ(captured.str().find("back on stderr"), std::string::npos);
  SetLogThreshold(original);
}

TEST(Logging, ConcurrentStatementsEmitWholeLines) {
  // The sink serializes emission: with many threads logging at once, every
  // captured line must be exactly one complete statement, never a splice.
  LogLevel original = GetLogThreshold();
  SetLogThreshold(LogLevel::kInfo);
  std::ostringstream captured;
  SetLogStream(&captured);
  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 25;
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < kLinesPerThread; ++i) {
          DIEVENT_LOG(Info) << "worker=" << t << " line=" << i << " end";
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  SetLogStream(nullptr);
  std::istringstream lines(captured.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_NE(line.find("worker="), std::string::npos) << line;
    EXPECT_EQ(line.find("worker=", line.find("worker=") + 1),
              std::string::npos)
        << "two statements spliced into one line: " << line;
    EXPECT_EQ(line.rfind(" end"), line.size() - 4) << line;
  }
  EXPECT_EQ(count, kThreads * kLinesPerThread);
  SetLogThreshold(original);
}

TEST(Logging, CheckPassesSilently) {
  testing::internal::CaptureStderr();
  DIEVENT_CHECK(1 + 1 == 2) << "never evaluated";
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(LoggingDeath, CheckFailureAborts) {
  EXPECT_DEATH({ DIEVENT_CHECK(false) << "boom"; }, "Check failed");
}

TEST(EmotionVocabulary, NamesAndValences) {
  EXPECT_EQ(EmotionName(Emotion::kHappy), "happy");
  EXPECT_EQ(EmotionName(Emotion::kDisgust), "disgust");
  EXPECT_EQ(kAllEmotions.size(), static_cast<size_t>(kNumEmotions));
  // Valence signs match intuition and stay in [-1, 1].
  EXPECT_GT(EmotionValence(Emotion::kHappy), 0);
  EXPECT_LT(EmotionValence(Emotion::kSad), 0);
  EXPECT_LT(EmotionValence(Emotion::kAngry), 0);
  EXPECT_EQ(EmotionValence(Emotion::kNeutral), 0);
  for (Emotion e : kAllEmotions) {
    EXPECT_GE(EmotionValence(e), -1.0);
    EXPECT_LE(EmotionValence(e), 1.0);
  }
}

}  // namespace
}  // namespace dievent
