#include "metadata/export.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace dievent {
namespace {

LookAtRecord Rec(int frame, double t, int n,
                 std::vector<std::pair<int, int>> edges) {
  LookAtMatrix m(n);
  for (auto [a, b] : edges) m.Set(a, b, true);
  return LookAtRecord::FromMatrix(frame, t, m);
}

MetadataRepository SmallRepo() {
  MetadataRepository repo;
  EventContext ctx;
  ctx.event_id = "evt-\"quoted\"";
  ctx.location = "room";
  ctx.occasion = "test";
  ctx.num_participants = 3;
  ctx.participant_names = {"Ana", "Bo", "Cy"};
  repo.SetContext(ctx);
  repo.set_fps(10.0);
  EXPECT_TRUE(repo.AddLookAt(Rec(0, 0.0, 3, {{0, 1}, {1, 0}})).ok());
  EXPECT_TRUE(repo.AddLookAt(Rec(1, 0.1, 3, {{0, 1}, {1, 0}})).ok());
  EXPECT_TRUE(repo.AddLookAt(Rec(2, 0.2, 3, {{2, 0}})).ok());
  EmotionRecord er;
  er.frame = 1;
  er.timestamp_s = 0.1;
  er.participant = 2;
  er.emotion = Emotion::kSurprise;
  er.confidence = 0.6;
  EXPECT_TRUE(repo.AddEmotion(er).ok());
  OverallEmotionRecord oe;
  oe.frame = 1;
  oe.timestamp_s = 0.1;
  oe.overall_happiness = 0.25;
  oe.mean_valence = 0.1;
  oe.observed = 3;
  EXPECT_TRUE(repo.AddOverallEmotion(oe).ok());
  return repo;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int CountLines(const std::string& s) {
  int n = 0;
  for (char c : s) {
    if (c == '\n') ++n;
  }
  return n;
}

TEST(Export, LookAtCsvHasOneRowPerEdge) {
  MetadataRepository repo = SmallRepo();
  std::string path = testing::TempDir() + "/lookat.csv";
  ASSERT_TRUE(ExportLookAtCsv(repo, path).ok());
  std::string csv = ReadAll(path);
  EXPECT_EQ(CountLines(csv), 1 + 5);  // header + 2+2+1 edges
  EXPECT_NE(csv.find("frame,timestamp_s,looker,target"),
            std::string::npos);
  EXPECT_NE(csv.find("0,0,Ana,Bo"), std::string::npos);
  EXPECT_NE(csv.find("2,0.2,Cy,Ana"), std::string::npos);
}

TEST(Export, EmotionsCsv) {
  MetadataRepository repo = SmallRepo();
  std::string path = testing::TempDir() + "/emotions.csv";
  ASSERT_TRUE(ExportEmotionsCsv(repo, path).ok());
  std::string csv = ReadAll(path);
  EXPECT_EQ(CountLines(csv), 2);
  EXPECT_NE(csv.find("Cy,surprise,0.6"), std::string::npos);
}

TEST(Export, OverallCsv) {
  MetadataRepository repo = SmallRepo();
  std::string path = testing::TempDir() + "/overall.csv";
  ASSERT_TRUE(ExportOverallCsv(repo, path).ok());
  std::string csv = ReadAll(path);
  EXPECT_EQ(CountLines(csv), 2);
  EXPECT_NE(csv.find("0.25,0.1,3"), std::string::npos);
}

TEST(Export, EpisodesCsvUsesFps) {
  MetadataRepository repo = SmallRepo();
  std::string path = testing::TempDir() + "/episodes.csv";
  ASSERT_TRUE(ExportEpisodesCsv(repo, path, 2, 0).ok());
  std::string csv = ReadAll(path);
  // One episode: Ana<->Bo over frames [0, 2) = 0.2 s at 10 fps.
  EXPECT_EQ(CountLines(csv), 2);
  EXPECT_NE(csv.find("Ana,Bo,0,2,0,0.2,0.2"), std::string::npos);
}

TEST(Export, JsonReportContainsTheStory) {
  MetadataRepository repo = SmallRepo();
  std::string json = EventReportJson(repo);
  EXPECT_NE(json.find("\"event_id\": \"evt-\\\"quoted\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"lookat_summary\""), std::string::npos);
  EXPECT_NE(json.find("\"dominant_participant\""), std::string::npos);
  EXPECT_NE(json.find("\"eye_contact_episodes\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_overall_happiness\": 0.25"),
            std::string::npos);
  // Balanced braces (crude structural check).
  int depth = 0;
  bool negative = false;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    negative |= depth < 0;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(negative);
  // File variant writes the same content.
  std::string path = testing::TempDir() + "/report.json";
  ASSERT_TRUE(ExportEventReportJson(repo, path).ok());
  EXPECT_EQ(ReadAll(path), json);
}

TEST(Export, UnwritablePathIsIoError) {
  MetadataRepository repo = SmallRepo();
  EXPECT_EQ(ExportLookAtCsv(repo, "/nonexistent/x.csv").code(),
            StatusCode::kIoError);
  EXPECT_EQ(ExportEventReportJson(repo, "/nonexistent/x.json").code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace dievent
