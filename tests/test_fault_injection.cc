// Fault-injection harness and graceful-degradation tests: the fault
// schedule must be a pure function of the seed, the acquisition policy
// must absorb transient failures (retry, hold-last-good, circuit
// breaker), and the pipeline must keep analyzing above quorum and fail
// with a descriptive status — not a crash — below it.

#include "video/fault_injection.h"

#include <gtest/gtest.h>

#include <chrono>

#include "core/pipeline.h"
#include "sim/scenario.h"
#include "video/video_source.h"

namespace dievent {
namespace {

// Sanitizer builds run the pipeline several times slower; deadline-based
// tests scale their clocks so a healthy read still fits its budget.
#ifndef __has_feature
#define __has_feature(x) 0  // GCC signals sanitizers via __SANITIZE_*__
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__) || \
    __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr double kTimingSlack = 10.0;
#else
constexpr double kTimingSlack = 1.0;
#endif

std::vector<ImageRgb> GrayFrames(int n, int w = 8, int h = 8) {
  std::vector<ImageRgb> frames;
  for (int i = 0; i < n; ++i) {
    ImageRgb f(w, h, 3);
    f.Fill(static_cast<uint8_t>(10 + i));
    frames.push_back(std::move(f));
  }
  return frames;
}

std::unique_ptr<FaultyVideoSource> MakeFaulty(FaultSpec spec, int n = 50) {
  return std::make_unique<FaultyVideoSource>(
      std::make_unique<MemoryVideoSource>(GrayFrames(n), 10.0), spec);
}

// --- FaultSpec determinism ---------------------------------------------

TEST(FaultSpec, DropScheduleIsDeterministicInSeed) {
  FaultSpec spec;
  spec.seed = 7;
  spec.drop_probability = 0.3;
  FaultSpec same = spec;
  FaultSpec other = spec;
  other.seed = 8;

  int drops = 0, differs = 0;
  for (int f = 0; f < 400; ++f) {
    EXPECT_EQ(spec.ShouldDrop(f, 0), same.ShouldDrop(f, 0));
    EXPECT_EQ(spec.ShouldDrop(f, 1), same.ShouldDrop(f, 1));
    drops += spec.ShouldDrop(f, 0) ? 1 : 0;
    differs += spec.ShouldDrop(f, 0) != other.ShouldDrop(f, 0) ? 1 : 0;
  }
  // Rate matches the probability (loose band) and the seed matters.
  EXPECT_GT(drops, 400 * 0.3 / 2);
  EXPECT_LT(drops, 400 * 0.3 * 2);
  EXPECT_GT(differs, 0);
}

TEST(FaultSpec, RetryAttemptsDrawFreshDecisions) {
  FaultSpec spec;
  spec.seed = 11;
  spec.drop_probability = 0.5;
  // Some frame must fail on attempt 0 but succeed on attempt 1 — that is
  // what gives a retry budget its value.
  bool recovered = false;
  for (int f = 0; f < 100 && !recovered; ++f) {
    recovered = spec.ShouldDrop(f, 0) && !spec.ShouldDrop(f, 1);
  }
  EXPECT_TRUE(recovered);
}

TEST(FaultSpec, OutageAndFlakyWindowsAreSchedules) {
  FaultSpec spec;
  spec.outage_after_frame = 30;
  spec.flaky_windows = {{5, 8}, {12, 13}};
  EXPECT_FALSE(spec.InScheduledOutage(4));
  EXPECT_TRUE(spec.InScheduledOutage(5));
  EXPECT_TRUE(spec.InScheduledOutage(7));
  EXPECT_FALSE(spec.InScheduledOutage(8));
  EXPECT_TRUE(spec.InScheduledOutage(12));
  EXPECT_FALSE(spec.InScheduledOutage(13));
  EXPECT_FALSE(spec.InScheduledOutage(29));
  EXPECT_TRUE(spec.InScheduledOutage(30));
  EXPECT_TRUE(spec.InScheduledOutage(1000));
}

TEST(FaultSpec, TimestampJitterBoundedAndDeterministic) {
  FaultSpec spec;
  spec.seed = 3;
  spec.timestamp_jitter_s = 0.02;
  bool nonzero = false;
  for (int f = 0; f < 50; ++f) {
    double j = spec.TimestampJitter(f);
    EXPECT_LE(std::abs(j), 0.02);
    EXPECT_DOUBLE_EQ(j, spec.TimestampJitter(f));
    nonzero = nonzero || j != 0.0;
  }
  EXPECT_TRUE(nonzero);
}

TEST(FaultSpec, StallScheduleIsDeterministicInSeed) {
  FaultSpec spec;
  spec.seed = 13;
  spec.stall_probability = 0.25;
  spec.stall_windows = {{40, 42}};
  FaultSpec same = spec;
  FaultSpec other = spec;
  other.seed = 14;

  int stalls = 0, differs = 0;
  for (int f = 0; f < 40; ++f) {
    EXPECT_EQ(spec.ShouldStall(f, 0), same.ShouldStall(f, 0));
    stalls += spec.ShouldStall(f, 0) ? 1 : 0;
    differs += spec.ShouldStall(f, 0) != other.ShouldStall(f, 0) ? 1 : 0;
  }
  EXPECT_GT(stalls, 0);
  EXPECT_GT(differs, 0);
  // Windows stall every attempt regardless of the random draw.
  EXPECT_TRUE(spec.ShouldStall(40, 0));
  EXPECT_TRUE(spec.ShouldStall(41, 3));
  EXPECT_FALSE(FaultSpec{}.HasFaults());
  EXPECT_TRUE(spec.HasFaults());
}

// --- FaultyVideoSource --------------------------------------------------

TEST(FaultyVideoSource, HealthyPathIsTransparent) {
  auto src = MakeFaulty(FaultSpec{});
  auto f = src->GetFrame(3);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value().index, 3);
  EXPECT_EQ(f.value().image.at(0, 0, 0), 13);
  EXPECT_DOUBLE_EQ(f.value().timestamp_s, 0.3);
  EXPECT_EQ(src->counters().drops, 0);
}

TEST(FaultyVideoSource, OutageFailsWithIoError) {
  FaultSpec spec;
  spec.outage_after_frame = 10;
  auto src = MakeFaulty(spec);
  EXPECT_TRUE(src->GetFrame(9).ok());
  auto dead = src->GetFrame(10);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kIoError);
  EXPECT_GT(src->counters().outages, 0);
}

TEST(FaultyVideoSource, CorruptionIsReproduciblePerFrame) {
  FaultSpec spec;
  spec.seed = 21;
  spec.corrupt_probability = 1.0;
  spec.corrupt_sigma = 60.0;
  auto a = MakeFaulty(spec);
  auto b = MakeFaulty(spec);
  auto clean = MakeFaulty(FaultSpec{});
  ImageRgb ia = a->GetFrame(4).value().image;
  // Same corruption pattern on every delivery and across instances.
  EXPECT_TRUE(ia == a->GetFrame(4).value().image);
  EXPECT_TRUE(ia == b->GetFrame(4).value().image);
  EXPECT_FALSE(ia == clean->GetFrame(4).value().image);
  EXPECT_EQ(a->counters().corruptions, 2);
  EXPECT_EQ(clean->counters().corruptions, 0);
}

TEST(FaultyVideoSource, StallBlocksAndInterruptCancelsIt) {
  FaultSpec spec;
  spec.stall_windows = {{2, 3}};
  spec.stall_duration_s = 0.05;
  auto src = MakeFaulty(spec);
  // An uncancelled stall elapses and the read still succeeds.
  auto start = std::chrono::steady_clock::now();
  auto f = src->GetFrame(2);
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(f.ok());
  EXPECT_GE(elapsed, 0.04);
  EXPECT_EQ(src->counters().stalls, 1);
  EXPECT_EQ(src->counters().interrupts, 0);

  // A pre-posted interrupt cancels the next stall immediately.
  src->Interrupt();
  start = std::chrono::steady_clock::now();
  auto cancelled = src->GetFrame(2);
  elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, 0.04);
  EXPECT_EQ(src->counters().interrupts, 1);
  // The flag is one-shot: the stall after the cancelled one runs again.
  EXPECT_TRUE(src->GetFrame(2).ok());
  EXPECT_EQ(src->counters().stalls, 3);
}

TEST(FaultyVideoSource, BlackoutZeroesABand) {
  FaultSpec spec;
  spec.corrupt_probability = 1.0;
  spec.corruption = CorruptionModel::kBlackout;
  auto src = MakeFaulty(spec, 5);
  ImageRgb img = src->GetFrame(0).value().image;
  int zero_rows = 0;
  for (int y = 0; y < img.height(); ++y) {
    bool all_zero = true;
    for (int x = 0; x < img.width(); ++x) {
      all_zero = all_zero && img.at(x, y, 0) == 0;
    }
    zero_rows += all_zero ? 1 : 0;
  }
  EXPECT_GE(zero_rows, img.height() / 4);
  EXPECT_LT(zero_rows, img.height());
}

// --- MultiCameraSource degradation -------------------------------------

std::unique_ptr<VideoSource> Camera(FaultSpec spec, int n = 50) {
  return std::make_unique<FaultyVideoSource>(
      std::make_unique<MemoryVideoSource>(GrayFrames(n), 10.0), spec);
}

TEST(MultiCameraDegradation, RetryRecoversTransientDrop) {
  // Drop every first attempt via a spec that fails attempt 0 but not 1:
  // probability 0.5 gives both cases across 50 frames.
  FaultSpec spec;
  spec.seed = 5;
  spec.drop_probability = 0.5;
  AcquisitionPolicy policy;
  policy.retry_budget = 4;  // enough to beat p=0.5^5
  policy.hold_last_good = false;
  policy.quarantine_after = 100;
  std::vector<std::unique_ptr<VideoSource>> sources;
  sources.push_back(Camera(spec));
  sources.push_back(Camera(FaultSpec{}));
  auto multi = MultiCameraSource::Create(std::move(sources), policy);
  ASSERT_TRUE(multi.ok());

  int retried = 0;
  for (int f = 0; f < 50; ++f) {
    auto set = multi.value().GetFrames(f);
    ASSERT_TRUE(set.ok());
    retried +=
        set.value().cameras[0].status == CameraFrameStatus::kRetried ? 1
                                                                     : 0;
    EXPECT_TRUE(set.value().cameras[1].fresh());
  }
  EXPECT_GT(retried, 0);
  EXPECT_GT(multi.value().health(0).retries, 0);
}

TEST(MultiCameraDegradation, HoldsLastGoodFrameThroughFlakyWindow) {
  FaultSpec spec;
  spec.flaky_windows = {{10, 12}};
  AcquisitionPolicy policy;
  policy.retry_budget = 0;
  policy.hold_last_good = true;
  policy.max_held_age = 5;
  policy.quarantine_after = 3;
  std::vector<std::unique_ptr<VideoSource>> sources;
  sources.push_back(Camera(spec));
  auto multi = MultiCameraSource::Create(std::move(sources), policy);
  ASSERT_TRUE(multi.ok());

  for (int f = 0; f < 10; ++f) ASSERT_TRUE(multi.value().GetFrames(f).ok());
  auto held = multi.value().GetFrames(10);
  ASSERT_TRUE(held.ok());
  EXPECT_EQ(held.value().cameras[0].status, CameraFrameStatus::kHeld);
  // The substituted image is frame 9's last good decode.
  EXPECT_EQ(held.value().cameras[0].frame.index, 9);
  EXPECT_EQ(held.value().NumUsable(), 1);
  EXPECT_EQ(held.value().NumFresh(), 0);
  // Error context names the camera and frame.
  EXPECT_NE(held.value().cameras[0].error.message().find("camera 0"),
            std::string::npos);
  EXPECT_NE(held.value().cameras[0].error.message().find("frame 10"),
            std::string::npos);
  // Window over: camera recovers.
  auto back = multi.value().GetFrames(12);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().cameras[0].fresh());
  EXPECT_EQ(multi.value().health(0).held, 1);
}

TEST(MultiCameraDegradation, CircuitBreakerQuarantinesAndReadmits) {
  FaultSpec spec;
  spec.flaky_windows = {{5, 20}};
  AcquisitionPolicy policy;
  policy.retry_budget = 0;
  policy.hold_last_good = false;
  policy.quarantine_after = 3;
  policy.readmit_after = 10;
  std::vector<std::unique_ptr<VideoSource>> sources;
  sources.push_back(Camera(spec));
  auto multi = MultiCameraSource::Create(std::move(sources), policy);
  ASSERT_TRUE(multi.ok());

  for (int f = 0; f < 5; ++f) ASSERT_TRUE(multi.value().GetFrames(f).ok());
  // Frames 5, 6 fail (missing); frame 7 opens the breaker.
  EXPECT_EQ(multi.value().GetFrames(5).value().cameras[0].status,
            CameraFrameStatus::kMissing);
  EXPECT_EQ(multi.value().GetFrames(6).value().cameras[0].status,
            CameraFrameStatus::kMissing);
  EXPECT_EQ(multi.value().GetFrames(7).value().cameras[0].status,
            CameraFrameStatus::kQuarantined);
  EXPECT_EQ(multi.value().QuarantinedCameras(), std::vector<int>{0});
  // While quarantined the source is not even read.
  auto* injector = static_cast<FaultyVideoSource*>(&multi.value().source(0));
  long long attempts_before = injector->counters().attempts;
  EXPECT_EQ(multi.value().GetFrames(8).value().cameras[0].status,
            CameraFrameStatus::kQuarantined);
  EXPECT_EQ(injector->counters().attempts, attempts_before);
  // Cooldown elapses at frame 17 — probe fails (window runs to 20), so the
  // breaker reopens with a fresh cooldown from 17.
  EXPECT_EQ(multi.value().GetFrames(17).value().cameras[0].status,
            CameraFrameStatus::kQuarantined);
  EXPECT_GT(injector->counters().attempts, attempts_before);
  // Next probe at 27 succeeds: camera readmitted.
  auto back = multi.value().GetFrames(27);
  EXPECT_TRUE(back.value().cameras[0].fresh());
  EXPECT_TRUE(multi.value().QuarantinedCameras().empty());
  EXPECT_EQ(multi.value().health(0).readmissions, 1);
  EXPECT_EQ(multi.value().health(0).quarantine_events, 1);
}

// --- pipeline under faults ----------------------------------------------

PipelineOptions FaultPipelineOptions() {
  PipelineOptions opt;
  opt.mode = PipelineMode::kFullVision;
  opt.analyze_emotions = false;
  opt.parse_video = false;
  opt.frame_stride = 10;  // 61 frames
  opt.eye_contact.angular_tolerance_deg = 12.0;
  return opt;
}

TEST(PipelineUnderFaults, DegradedRunStaysCloseToCleanRun) {
  DiningScene scene = MakeMeetingScenario();

  MetadataRepository repo;
  auto clean = DiEventPipeline(&scene, FaultPipelineOptions()).Run(&repo);
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean.value().degradation.frames_degraded, 0);
  EXPECT_EQ(clean.value().degradation.frames_skipped, 0);
  EXPECT_EQ(clean.value().degradation.frames_fully_healthy,
            clean.value().frames_processed);

  // The acceptance scenario: 20% frame drops on one of four cameras.
  PipelineOptions opt = FaultPipelineOptions();
  opt.camera_faults.resize(4);
  opt.camera_faults[1].seed = 404;
  opt.camera_faults[1].drop_probability = 0.2;
  opt.acquisition.retry_budget = 1;
  opt.acquisition.min_camera_quorum = 2;
  auto degraded = DiEventPipeline(&scene, opt).Run(&repo);
  ASSERT_TRUE(degraded.ok()) << degraded.status();

  const DegradationStats& deg = degraded.value().degradation;
  EXPECT_EQ(deg.frames_skipped, 0);  // 3 healthy cameras >> quorum
  EXPECT_GT(deg.camera_drops[1], 0);
  EXPECT_EQ(deg.camera_drops[0], 0);
  EXPECT_GT(deg.retries_spent, 0);
  EXPECT_EQ(deg.frames_degraded + deg.frames_fully_healthy,
            degraded.value().frames_processed);
  EXPECT_EQ(degraded.value().frames_processed,
            clean.value().frames_processed);

  // Losing one camera's frames occasionally must not gut the analysis:
  // edge recall stays within 10% of the fault-free run.
  EXPECT_GE(degraded.value().accuracy.edge_recall,
            0.9 * clean.value().accuracy.edge_recall);
  EXPECT_GE(degraded.value().accuracy.gaze_coverage,
            0.8 * clean.value().accuracy.gaze_coverage);

  // The whole degraded run is reproducible from the seeds.
  auto again = DiEventPipeline(&scene, opt).Run(&repo);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().degradation.frames_degraded,
            deg.frames_degraded);
  EXPECT_EQ(again.value().accuracy.edge_recall,
            degraded.value().accuracy.edge_recall);
}

TEST(PipelineUnderFaults, HeldFramesBridgeAFlakyWindow) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt = FaultPipelineOptions();
  opt.camera_faults.resize(4);
  // With stride 10 the pipeline reads frames 0, 10, 20, ...; a window
  // covering [15, 25) fails exactly the read at frame 20.
  opt.camera_faults[2].flaky_windows = {{15, 25}};
  opt.acquisition.retry_budget = 0;
  opt.acquisition.hold_last_good = true;
  opt.acquisition.max_held_age = 10;
  MetadataRepository repo;
  auto report = DiEventPipeline(&scene, opt).Run(&repo);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().degradation.frames_held, 1);
  EXPECT_EQ(report.value().degradation.frames_degraded, 1);
  EXPECT_NE(report.value().Summary().find("degradation"),
            std::string::npos);
}

TEST(PipelineUnderFaults, BelowQuorumReturnsDescriptiveStatus) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt = FaultPipelineOptions();
  opt.camera_faults.resize(4);
  // Every camera dies at frame 100 — past that no set reaches quorum.
  for (auto& spec : opt.camera_faults) spec.outage_after_frame = 100;
  opt.acquisition.min_camera_quorum = 2;
  opt.acquisition.quarantine_after = 2;
  opt.acquisition.readmit_after = 0;  // cameras never come back
  opt.acquisition.max_consecutive_below_quorum = 5;
  MetadataRepository repo;
  auto report = DiEventPipeline(&scene, opt).Run(&repo);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(report.status().message().find("quorum"), std::string::npos);
  EXPECT_NE(report.status().message().find("quarantined"),
            std::string::npos);
}

TEST(PipelineUnderFaults, AllCamerasDeadFromStartFailsCleanly) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt = FaultPipelineOptions();
  opt.frame_stride = 100;  // 7 reads — fewer than the abort threshold
  opt.camera_faults.resize(4);
  for (auto& spec : opt.camera_faults) spec.outage_after_frame = 0;
  opt.acquisition.max_consecutive_below_quorum = 100;
  MetadataRepository repo;
  auto report = DiEventPipeline(&scene, opt).Run(&repo);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(report.status().message().find("quorum"), std::string::npos);
}

TEST(PipelineUnderFaults, StalledCameraIsBoundedByTheReadDeadline) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt = FaultPipelineOptions();
  opt.frame_stride = 100;  // 7 synchronized reads
  opt.camera_faults.resize(4);
  // Camera 1 stalls on every attempt; without the supervisor each stalled
  // read would serialize the whole frame set for 0.5s.
  opt.camera_faults[1].stall_probability = 1.0;
  opt.camera_faults[1].stall_duration_s = 0.5 * kTimingSlack;
  opt.acquisition.read_deadline_s = 0.03 * kTimingSlack;
  opt.acquisition.retry_budget = 0;
  MetadataRepository repo;
  auto report = DiEventPipeline(&scene, opt).Run(&repo);
  ASSERT_TRUE(report.ok()) << report.status();

  const DegradationStats& deg = report.value().degradation;
  EXPECT_GT(deg.deadline_misses, 0);
  EXPECT_GT(deg.frames_degraded, 0);
  EXPECT_EQ(deg.frames_skipped, 0);  // three healthy cameras carry quorum
  // Bounded by the deadline, not by 7 x 0.5s of stalling.
  EXPECT_LT(report.value().timings.acquisition, 2.0 * kTimingSlack);
  EXPECT_NE(deg.ToString().find("supervisor"), std::string::npos);
}

TEST(PipelineUnderFaults, JitteredClockIsResyncedToMasterClock) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt = FaultPipelineOptions();
  opt.camera_faults.resize(4);
  opt.camera_faults[2].seed = 31;
  opt.camera_faults[2].timestamp_jitter_s = 0.015;
  MetadataRepository repo;
  auto report = DiEventPipeline(&scene, opt).Run(&repo);
  ASSERT_TRUE(report.ok()) << report.status();
  const DegradationStats& deg = report.value().degradation;
  EXPECT_GT(deg.resync_corrections, 0);
  EXPECT_EQ(deg.resync_misalignments, 0);  // jitter stays under half period
  EXPECT_GT(deg.max_timestamp_jitter_s, 0.0);
  EXPECT_LE(deg.max_timestamp_jitter_s, 0.015);
  EXPECT_NE(deg.ToString().find("clock resync"), std::string::npos);
}

TEST(PipelineUnderFaults, ParsingSurvivesReferenceCameraLoss) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt = FaultPipelineOptions();
  opt.parse_video = true;
  opt.camera_faults.resize(4);
  // Camera 0 (the parsing reference) is dead for stride-frames 20 and 30;
  // held frames cannot bridge a 10-frame stride with max_held_age 5, so
  // those slots lose their camera-0 signature entirely.
  opt.camera_faults[0].flaky_windows = {{15, 35}};
  opt.acquisition.retry_budget = 0;
  MetadataRepository repo;
  auto report = DiEventPipeline(&scene, opt).Run(&repo);
  ASSERT_TRUE(report.ok()) << report.status();

  const DegradationStats& deg = report.value().degradation;
  EXPECT_EQ(deg.parse_reference_switches, 2);  // signed by camera 1 instead
  EXPECT_EQ(deg.parse_signatures_missing, 0);
  // The timeline keeps one slot per processed frame — no silent
  // compaction shifting later shot boundaries.
  EXPECT_EQ(report.value().structure.num_frames,
            report.value().frames_processed);
}

TEST(PipelineUnderFaults, EpisodesSpanningAnOutageLoseConfidence) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt = FaultPipelineOptions();
  opt.camera_faults.resize(4);
  // Every camera fails at stride-frame 20: that set is below quorum and
  // skipped, so episodes bridging it were not actually observed there.
  for (auto& spec : opt.camera_faults) spec.flaky_windows = {{15, 25}};
  opt.acquisition.retry_budget = 0;
  opt.acquisition.max_held_age = 0;
  opt.acquisition.hold_last_good = false;
  MetadataRepository repo;
  auto report = DiEventPipeline(&scene, opt).Run(&repo);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().degradation.frames_skipped, 1);

  bool spanning_episode_flagged = true;
  for (const EyeContactEpisode& episode :
       report.value().eye_contact_episodes) {
    EXPECT_GE(episode.confidence, 0.0);
    EXPECT_LE(episode.confidence, 1.0);
    if (episode.begin_frame <= 20 && episode.end_frame > 20) {
      spanning_episode_flagged = spanning_episode_flagged &&
                                 episode.skipped_frames >= 1 &&
                                 episode.confidence < 1.0;
    }
  }
  EXPECT_TRUE(spanning_episode_flagged);
}

TEST(PipelineUnderFaults, RejectsMismatchedFaultSpecCount) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt = FaultPipelineOptions();
  opt.camera_faults.resize(2);  // rig has 4 cameras
  MetadataRepository repo;
  auto report = DiEventPipeline(&scene, opt).Run(&repo);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dievent
