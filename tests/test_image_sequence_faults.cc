// Storage faults injected under ImageSequenceSource: every frame read
// goes through the injected FileSystem, so seeded mid-read EIO and
// short (torn) reads exercise the REAL decoder failure paths — the
// error surface the acquisition retry/breaker machinery consumes.

#include <gtest/gtest.h>

#include <string>

#include "common/strings.h"
#include "image/pnm_io.h"
#include "io/faulty_file.h"
#include "video/image_sequence_source.h"

namespace dievent {
namespace {

/// Writes `n` tiny PPM frames and returns the printf-style pattern.
std::string WriteFrames(const std::string& name, int n) {
  const std::string dir = testing::TempDir() + "/" + name;
  FileSystem* fs = FileSystem::Default();
  if (!fs->Exists(dir)) EXPECT_TRUE(fs->CreateDir(dir).ok());
  for (int i = 0; i < n; ++i) {
    ImageRgb img(6, 4, 3);
    img.Fill(static_cast<uint8_t>(40 + i));
    EXPECT_TRUE(
        WritePpm(img, StrFormat("%s/f_%04d.ppm", dir.c_str(), i)).ok());
  }
  return dir + "/f_%04d.ppm";
}

TEST(ImageSequenceFaults, HealthyFilesystemDecodesEveryFrame) {
  const std::string pattern = WriteFrames("seq_ok", 3);
  FaultyFileSystem fs(FileSystem::Default(), FileFaultSpec{});
  auto source = ImageSequenceSource::Open(pattern, 10.0, 0, &fs);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ(source.value().NumFrames(), 3);
  for (int i = 0; i < 3; ++i) {
    auto frame = source.value().GetFrame(i);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame.value().image.at(0, 0, 0), 40 + i);
    EXPECT_DOUBLE_EQ(frame.value().timestamp_s, i / 10.0);
  }
}

TEST(ImageSequenceFaults, InjectedReadErrorSurfacesAsIoError) {
  const std::string pattern = WriteFrames("seq_eio", 2);
  FileFaultSpec spec;
  spec.read_error_probability = 1.0;
  FaultyFileSystem fs(FileSystem::Default(), spec);
  // Open probes existence only; the poisoned reads hit at GetFrame.
  auto source = ImageSequenceSource::Open(pattern, 10.0, 0, &fs);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  auto frame = source.value().GetFrame(0);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIoError);
  EXPECT_GT(fs.counters().injected_read_errors, 0);
}

TEST(ImageSequenceFaults, TornReadIsCorruptionNeverAPartialImage) {
  const std::string pattern = WriteFrames("seq_torn", 4);
  FileFaultSpec spec;
  spec.seed = 21;
  spec.short_read_probability = 1.0;
  FaultyFileSystem fs(FileSystem::Default(), spec);
  auto source = ImageSequenceSource::Open(pattern, 10.0, 0, &fs);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  int failures = 0;
  for (int i = 0; i < 4; ++i) {
    auto frame = source.value().GetFrame(i);
    if (frame.ok()) continue;  // the torn prefix happened to parse whole
    ++failures;
    // A truncated PPM must decode to a descriptive Corruption — not a
    // crash, not a silently short image.
    EXPECT_EQ(frame.status().code(), StatusCode::kCorruption)
        << frame.status().ToString();
  }
  EXPECT_GT(failures, 0) << "short reads never tore a frame";
  EXPECT_GT(fs.counters().injected_short_reads, 0);
}

TEST(ImageSequenceFaults, IntermittentFaultsOnlyFailTheFaultedReads) {
  const std::string pattern = WriteFrames("seq_flaky", 20);
  FileFaultSpec spec;
  spec.seed = 4;
  spec.read_error_probability = 0.3;
  FaultyFileSystem fs(FileSystem::Default(), spec);
  auto source = ImageSequenceSource::Open(pattern, 10.0, 0, &fs);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  int ok = 0, failed = 0;
  for (int i = 0; i < 20; ++i) {
    auto frame = source.value().GetFrame(i);
    if (frame.ok()) {
      EXPECT_EQ(frame.value().image.at(0, 0, 0), 40 + i);
      ++ok;
    } else {
      EXPECT_EQ(frame.status().code(), StatusCode::kIoError);
      ++failed;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(failed, 0);
  EXPECT_EQ(failed, fs.counters().injected_read_errors);
}

}  // namespace
}  // namespace dievent
