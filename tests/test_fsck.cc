// Scrub / verify / repair drills for dievent_fsck's engine
// (metadata/fsck.h): every injected corruption class must be detected
// in verify mode and fixed — with the repaired store reopening cleanly
// — in repair mode.

#include "metadata/fsck.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "io/file.h"
#include "metadata/durable_store.h"
#include "metadata/record_codec.h"

namespace dievent {
namespace {

std::string FreshDir(const std::string& name) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = testing::TempDir() + "/" + name;
  if (fs->Exists(dir)) {
    auto names = fs->ListDir(dir);
    EXPECT_TRUE(names.ok()) << names.status().ToString();
    for (const std::string& n : names.value()) {
      EXPECT_TRUE(fs->Remove(JoinPath(dir, n)).ok());
    }
  }
  return dir;
}

LookAtRecord La(int frame, int n) {
  LookAtMatrix m(n);
  m.Set(0, 1, true);
  return LookAtRecord::FromMatrix(frame, frame * 0.1, m);
}

/// A store with `frames` look-at records (sequences 1..frames).
void BuildStore(const std::string& dir, int frames,
                const DurableStoreOptions& options = {}) {
  auto store = DurableEventStore::Open(dir, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  for (int f = 0; f < frames; ++f) {
    ASSERT_TRUE(store.value()->AddLookAt(La(f, 3)).ok());
  }
  ASSERT_TRUE(store.value()->Close().ok());
}

bool AnyProblemContains(const FsckReport& report, const std::string& what) {
  for (const std::string& p : report.problems) {
    if (p.find(what) != std::string::npos) return true;
  }
  return false;
}

TEST(Fsck, CleanStoreReportsClean) {
  const std::string dir = FreshDir("fsck_clean");
  BuildStore(dir, 4);
  auto report = RunFsck(FileSystem::Default(), dir);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().clean()) << report.value().ToString();
  EXPECT_FALSE(report.value().snapshot_present);
  EXPECT_EQ(report.value().journal_segments, 1u);
  EXPECT_EQ(report.value().journal_records, 4u);
  EXPECT_NE(report.value().ToString().find("clean"), std::string::npos);
}

TEST(Fsck, MissingDirectoryIsAnEnvironmentalError) {
  auto report = RunFsck(FileSystem::Default(),
                        testing::TempDir() + "/fsck_no_such_dir");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

TEST(Fsck, StrayCheckpointTempDetectedAndRemoved) {
  const std::string dir = FreshDir("fsck_stray");
  BuildStore(dir, 2);
  FileSystem* fs = FileSystem::Default();
  const std::string stray = JoinPath(dir, "snapshot.dmr.tmp");
  {
    auto f = fs->OpenForWrite(stray);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->Append("partial checkpoint").ok());
    ASSERT_TRUE(f.value()->Close().ok());
  }
  // Verify mode detects but does not touch the disk.
  auto verify = RunFsck(fs, dir);
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE(AnyProblemContains(verify.value(), "stray checkpoint temp"));
  EXPECT_TRUE(fs->Exists(stray));

  FsckOptions repair;
  repair.repair = true;
  auto repaired = RunFsck(fs, dir, repair);
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(fs->Exists(stray));
  EXPECT_TRUE(repaired.value().verified) << repaired.value().ToString();
  EXPECT_TRUE(RunFsck(fs, dir).value().clean());
}

TEST(Fsck, TornTailDetectedThenTruncated) {
  const std::string dir = FreshDir("fsck_torn");
  BuildStore(dir, 3);
  FileSystem* fs = FileSystem::Default();
  const std::string seg = JoinPath(dir, JournalSegmentName(0));
  {
    auto f = fs->OpenForAppend(seg);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->Append("half-written frame").ok());
    ASSERT_TRUE(f.value()->Close().ok());
  }
  auto verify = RunFsck(fs, dir);
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE(AnyProblemContains(verify.value(), "torn tail"));
  EXPECT_EQ(verify.value().journal_records, 3u);

  FsckOptions repair;
  repair.repair = true;
  auto repaired = RunFsck(fs, dir, repair);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired.value().verified) << repaired.value().ToString();
  EXPECT_TRUE(RunFsck(fs, dir).value().clean());
  // The acknowledged records survived the repair.
  auto store = DurableEventStore::Open(dir);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->repository().lookat_records().size(), 3u);
}

TEST(Fsck, MidStreamDamageTruncatesAndQuarantinesLaterSegments) {
  const std::string dir = FreshDir("fsck_midstream");
  DurableStoreOptions options;
  options.journal.rotate_bytes = 96;  // force several segments
  BuildStore(dir, 8, options);
  FileSystem* fs = FileSystem::Default();
  auto names = fs->ListDir(dir);
  ASSERT_TRUE(names.ok());
  int segments = 0;
  for (const std::string& n : names.value()) {
    if (ParseJournalSegmentName(n) >= 0) ++segments;
  }
  ASSERT_GT(segments, 2) << "rotate_bytes did not split the journal";

  // Flip a payload byte in the first segment.
  const std::string seg0 = JoinPath(dir, JournalSegmentName(0));
  auto data = fs->ReadFile(seg0);
  ASSERT_TRUE(data.ok());
  std::string bytes = data.value();
  bytes[bytes.size() - 2] ^= 0x10;
  {
    auto f = fs->OpenForWrite(seg0);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->Append(bytes).ok());
    ASSERT_TRUE(f.value()->Close().ok());
  }

  auto verify = RunFsck(fs, dir);
  ASSERT_TRUE(verify.ok());
  EXPECT_FALSE(verify.value().clean());
  EXPECT_TRUE(AnyProblemContains(verify.value(), "checksum mismatch"));
  EXPECT_TRUE(AnyProblemContains(verify.value(), "unreachable past"));

  FsckOptions repair;
  repair.repair = true;
  auto repaired = RunFsck(fs, dir, repair);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired.value().verified) << repaired.value().ToString();
  // Later segments were quarantined, not deleted.
  bool corrupt_seen = false;
  auto after = fs->ListDir(dir);
  ASSERT_TRUE(after.ok());
  for (const std::string& n : after.value()) {
    if (n.find(".corrupt") != std::string::npos) corrupt_seen = true;
  }
  EXPECT_TRUE(corrupt_seen);
  EXPECT_TRUE(RunFsck(fs, dir).value().clean());
  // The surviving prefix still replays.
  auto store = DurableEventStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_GT(store.value()->repository().lookat_records().size(), 0u);
  EXPECT_LT(store.value()->repository().lookat_records().size(), 8u);
}

TEST(Fsck, CorruptSnapshotQuarantinedAndJournalReanchored) {
  const std::string dir = FreshDir("fsck_snapshot");
  FileSystem* fs = FileSystem::Default();
  int post_checkpoint = 0;
  {
    auto store = DurableEventStore::Open(dir);
    ASSERT_TRUE(store.ok());
    for (int f = 0; f < 3; ++f) {
      ASSERT_TRUE(store.value()->AddLookAt(La(f, 3)).ok());
    }
    ASSERT_TRUE(store.value()->Checkpoint().ok());
    for (int f = 3; f < 5; ++f) {
      ASSERT_TRUE(store.value()->AddLookAt(La(f, 3)).ok());
      ++post_checkpoint;
    }
    ASSERT_TRUE(store.value()->Close().ok());
  }
  // Flip a byte inside the snapshot body.
  const std::string snapshot = JoinPath(dir, "snapshot.dmr");
  auto data = fs->ReadFile(snapshot);
  ASSERT_TRUE(data.ok());
  std::string bytes = data.value();
  bytes[bytes.size() / 2] ^= 0x08;
  {
    auto f = fs->OpenForWrite(snapshot);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->Append(bytes).ok());
    ASSERT_TRUE(f.value()->Close().ok());
  }
  // The store itself refuses to open over the corrupt snapshot.
  EXPECT_EQ(DurableEventStore::Open(dir).status().code(),
            StatusCode::kCorruption);

  auto verify = RunFsck(fs, dir);
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE(AnyProblemContains(verify.value(), "snapshot"));
  EXPECT_FALSE(verify.value().snapshot_ok);

  FsckOptions repair;
  repair.repair = true;
  auto repaired = RunFsck(fs, dir, repair);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired.value().verified) << repaired.value().ToString();
  EXPECT_TRUE(fs->Exists(snapshot + ".corrupt"));

  // The re-anchored store serves the surviving post-checkpoint records;
  // the checkpointed prefix is reported lost, never silently invented.
  auto store = DurableEventStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value()->repository().lookat_records().size(),
            static_cast<size_t>(post_checkpoint));
  EXPECT_TRUE(RunFsck(fs, dir).value().clean());
}

TEST(Fsck, StructurallyValidButUndecodablePayloadIsCaught) {
  const std::string dir = FreshDir("fsck_badpayload");
  FileSystem* fs = FileSystem::Default();
  ASSERT_TRUE(fs->CreateDir(dir).ok());
  auto writer = JournalWriter::Open(fs, dir, 0, JournalOptions{});
  ASSERT_TRUE(writer.ok());
  std::string good;
  {
    BinWriter w(&good);
    w.U8(5);  // fps record
    w.U64(1);
    w.F64(25.0);
  }
  ASSERT_TRUE(writer.value()->Append(good).ok());
  std::string bad;
  {
    BinWriter w(&bad);
    w.U8(99);  // no such record type — CRC-valid frame, rotten payload
    w.U64(2);
  }
  ASSERT_TRUE(writer.value()->Append(bad).ok());
  ASSERT_TRUE(writer.value()->Close().ok());

  auto verify = RunFsck(fs, dir);
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE(AnyProblemContains(verify.value(), "unknown journal record"));

  FsckOptions repair;
  repair.repair = true;
  auto repaired = RunFsck(fs, dir, repair);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired.value().verified) << repaired.value().ToString();
  auto store = DurableEventStore::Open(dir);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->repository().fps(), 25.0);
}

}  // namespace
}  // namespace dievent
