// Tests for overall-emotion estimation (paper Fig. 5: OH percentage).

#include "analysis/overall_emotion.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

EmotionObservation Obs(int p, Emotion e, double conf = 1.0) {
  EmotionObservation o;
  o.participant = p;
  o.emotion = e;
  o.confidence = conf;
  return o;
}

EmotionObservation Missing(int p) {
  EmotionObservation o;
  o.participant = p;
  return o;
}

TEST(OverallEmotion, HappinessFractionOfObserved) {
  OverallEmotionOptions opt;
  opt.smoothing_alpha = 1.0;  // raw values
  OverallEmotionEstimator est(opt);
  OverallEmotion oe = est.Update(0, 0.0,
                                 {Obs(0, Emotion::kHappy),
                                  Obs(1, Emotion::kHappy),
                                  Obs(2, Emotion::kSad),
                                  Obs(3, Emotion::kNeutral)});
  EXPECT_EQ(oe.observed, 4);
  EXPECT_DOUBLE_EQ(oe.overall_happiness, 0.5);
  EXPECT_EQ(oe.counts[static_cast<int>(Emotion::kHappy)], 2);
  EXPECT_EQ(oe.counts[static_cast<int>(Emotion::kSad)], 1);
}

TEST(OverallEmotion, MissingObservationsExcluded) {
  OverallEmotionOptions opt;
  opt.smoothing_alpha = 1.0;
  OverallEmotionEstimator est(opt);
  OverallEmotion oe = est.Update(
      0, 0.0, {Obs(0, Emotion::kHappy), Missing(1), Missing(2)});
  EXPECT_EQ(oe.observed, 1);
  EXPECT_DOUBLE_EQ(oe.overall_happiness, 1.0);
}

TEST(OverallEmotion, EmptyFrameIsNeutral) {
  OverallEmotionOptions opt;
  opt.smoothing_alpha = 1.0;
  OverallEmotionEstimator est(opt);
  OverallEmotion oe = est.Update(0, 0.0, {});
  EXPECT_EQ(oe.observed, 0);
  EXPECT_DOUBLE_EQ(oe.overall_happiness, 0.0);
  EXPECT_DOUBLE_EQ(oe.mean_valence, 0.0);
}

TEST(OverallEmotion, ValenceSignsMatchEmotions) {
  OverallEmotionOptions opt;
  opt.smoothing_alpha = 1.0;
  OverallEmotionEstimator happy_est(opt);
  EXPECT_GT(happy_est.Update(0, 0, {Obs(0, Emotion::kHappy)}).mean_valence,
            0.5);
  OverallEmotionEstimator sad_est(opt);
  EXPECT_LT(sad_est.Update(0, 0, {Obs(0, Emotion::kDisgust)}).mean_valence,
            -0.5);
}

TEST(OverallEmotion, ConfidenceWeightsValence) {
  OverallEmotionOptions opt;
  opt.smoothing_alpha = 1.0;
  OverallEmotionEstimator est(opt);
  // A confident happy outweighs an unsure disgust.
  OverallEmotion oe = est.Update(0, 0.0,
                                 {Obs(0, Emotion::kHappy, 0.9),
                                  Obs(1, Emotion::kDisgust, 0.1)});
  EXPECT_GT(oe.mean_valence, 0.0);
}

TEST(OverallEmotion, SmoothingDampsSpikes) {
  OverallEmotionOptions opt;
  opt.smoothing_alpha = 0.25;
  OverallEmotionEstimator est(opt);
  for (int f = 0; f < 10; ++f) {
    est.Update(f, f / 10.0, {Obs(0, Emotion::kNeutral)});
  }
  // A single happy frame cannot jump the smoothed OH to 1.
  OverallEmotion spike = est.Update(10, 1.0, {Obs(0, Emotion::kHappy)});
  EXPECT_GT(spike.overall_happiness, 0.2);
  EXPECT_LT(spike.overall_happiness, 0.35);
}

TEST(OverallEmotion, TimelineAndMeansAccumulate) {
  OverallEmotionOptions opt;
  opt.smoothing_alpha = 1.0;
  OverallEmotionEstimator est(opt);
  est.Update(0, 0.0, {Obs(0, Emotion::kHappy)});
  est.Update(1, 0.1, {Obs(0, Emotion::kSad)});
  ASSERT_EQ(est.timeline().size(), 2u);
  EXPECT_DOUBLE_EQ(est.MeanHappiness(), 0.5);
  EXPECT_NEAR(est.MeanValence(), (1.0 - 0.7) / 2.0, 1e-9);
  est.Reset();
  EXPECT_TRUE(est.timeline().empty());
  EXPECT_DOUBLE_EQ(est.MeanHappiness(), 0.0);
}

}  // namespace
}  // namespace dievent
