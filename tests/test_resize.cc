#include "image/resize.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

TEST(Resize, IdentitySizeKeepsContent) {
  ImageU8 img(6, 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 6; ++x)
      img.at(x, y) = static_cast<uint8_t>(x * 20 + y * 3);
  ImageU8 out = ResizeBilinear(img, 6, 4);
  EXPECT_TRUE(out == img);
}

TEST(Resize, UniformStaysUniform) {
  ImageU8 img(10, 10);
  img.Fill(77);
  for (auto [w, h] : {std::pair{5, 5}, {20, 20}, {3, 17}}) {
    ImageU8 out = ResizeBilinear(img, w, h);
    EXPECT_EQ(out.width(), w);
    EXPECT_EQ(out.height(), h);
    for (uint8_t v : out.data()) EXPECT_EQ(v, 77);
  }
}

TEST(Resize, DownscalePreservesMeanApproximately) {
  ImageU8 img(16, 16);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x)
      img.at(x, y) = static_cast<uint8_t>((x < 8) ? 40 : 200);
  ImageU8 out = ResizeBilinear(img, 4, 4);
  double mean = 0;
  for (uint8_t v : out.data()) mean += v;
  mean /= out.size();
  EXPECT_NEAR(mean, 120.0, 15.0);
}

TEST(Resize, UpscaleInterpolatesGradient) {
  ImageU8 img(2, 1);
  img.at(0, 0) = 0;
  img.at(1, 0) = 200;
  ImageU8 out = ResizeBilinear(img, 8, 1);
  // Monotone non-decreasing across the row.
  for (int x = 1; x < 8; ++x) EXPECT_GE(out.at(x, 0), out.at(x - 1, 0));
  EXPECT_LT(out.at(0, 0), 50);
  EXPECT_GT(out.at(7, 0), 150);
}

TEST(ResizeRgb, ChannelsStayIndependent) {
  ImageRgb img(4, 4, 3);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) PutRgb(&img, x, y, Rgb{200, 10, 90});
  ImageRgb out = ResizeBilinearRgb(img, 9, 2);
  EXPECT_EQ(out.channels(), 3);
  for (int y = 0; y < 2; ++y)
    for (int x = 0; x < 9; ++x)
      EXPECT_EQ(GetRgb(out, x, y), (Rgb{200, 10, 90}));
}

}  // namespace
}  // namespace dievent
