// SimClock tests: stepping wakes exactly the due sleepers, clock-mediated
// waits honor notify-vs-timeout semantics, pending-work tokens gate
// auto-advance, and concurrent waiters are race-free (the suite runs under
// TSan in sanitizer builds). RealClock is pinned only where behavior is
// shared (second conversions, monotonic reads) — everything else about it
// is the standard library's contract.

#include "common/clock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace dievent {
namespace {

TEST(VirtualClock, SecondConversionsRoundTripOnBothClocks) {
  // The conversions are shared statics, but both concrete clocks must keep
  // agreeing on them: a SimClock test asserting `latency == 0.02` is only
  // exact because FromSeconds/ToSeconds round-trip through the duration
  // representation identically everywhere.
  for (double s : {0.0, 1e-9, 0.02, 0.03, 0.5, 1.0, 3600.0}) {
    const VirtualClock::Duration d = RealClock::FromSeconds(s);
    EXPECT_EQ(d, SimClock::FromSeconds(s)) << s;
    EXPECT_EQ(RealClock::ToSeconds(d), SimClock::ToSeconds(d)) << s;
    // Round trip is exact to the duration's resolution (<= 1ns).
    EXPECT_NEAR(VirtualClock::ToSeconds(d), s, 1e-9) << s;
  }
  // Whole nanosecond counts survive exactly.
  EXPECT_EQ(VirtualClock::ToSeconds(VirtualClock::FromSeconds(1.0)), 1.0);
}

TEST(RealClock, NowIsMonotonicAndSingleton) {
  RealClock* clock = RealClock::Get();
  ASSERT_NE(clock, nullptr);
  EXPECT_EQ(clock, RealClock::Get());
  const VirtualClock::TimePoint a = clock->Now();
  const VirtualClock::TimePoint b = clock->Now();
  EXPECT_LE(a, b);
}

TEST(SimClock, StartsAtConfiguredTimeAndOnlyMovesWhenStepped) {
  SimClock::Options options;
  options.start_s = 5.0;
  SimClock sim(options);
  EXPECT_EQ(sim.NowSeconds(), 5.0);
  EXPECT_EQ(sim.NowSeconds(), 5.0);  // reading never advances
  sim.AdvanceBySeconds(2.5);
  EXPECT_EQ(sim.NowSeconds(), 7.5);
  sim.AdvanceTo(VirtualClock::TimePoint{} + VirtualClock::FromSeconds(1.0));
  EXPECT_EQ(sim.NowSeconds(), 7.5);  // steps into the past are ignored
}

TEST(SimClock, StepsWakeExactlyTheDueSleepers) {
  SimClock sim;
  std::vector<double> wake_time(3, -1.0);
  std::vector<std::thread> sleepers;
  for (int i = 0; i < 3; ++i) {
    sleepers.emplace_back([&sim, &wake_time, i] {
      sim.SleepUntil(VirtualClock::TimePoint{} +
                     VirtualClock::FromSeconds(i + 1.0));
      wake_time[i] = sim.NowSeconds();
    });
  }
  sim.AwaitWaiters(3);
  EXPECT_EQ(sim.NumWaiters(), 3);

  sim.AdvanceBySeconds(1.0);  // due: sleeper 0 only
  sleepers[0].join();
  EXPECT_EQ(wake_time[0], 1.0);
  EXPECT_EQ(sim.NumWaiters(), 2);
  EXPECT_EQ(wake_time[1], -1.0);  // not due; still blocked

  // One step past both remaining deadlines wakes both; each observes the
  // stepped time, not its own deadline.
  sim.AdvanceBySeconds(2.0);
  sleepers[1].join();
  sleepers[2].join();
  EXPECT_EQ(wake_time[1], 3.0);
  EXPECT_EQ(wake_time[2], 3.0);
  EXPECT_EQ(sim.NumWaiters(), 0);
}

TEST(SimClock, SleepForBlocksAcrossPartialSteps) {
  SimClock sim;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    sim.SleepFor(VirtualClock::FromSeconds(1.0));
    woke.store(true);
  });
  sim.AwaitWaiters(1);
  sim.AdvanceBySeconds(0.5);  // not due: the sleeper stays registered
  EXPECT_EQ(sim.NumWaiters(), 1);
  EXPECT_FALSE(woke.load());
  sim.AdvanceBySeconds(0.5);
  sleeper.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(sim.NowSeconds(), 1.0);
}

TEST(SimClock, WaitUntilTimesOutWhenTheDeadlineIsReached) {
  SimClock sim;
  Mutex mu;
  CondVar cv;
  std::cv_status status = std::cv_status::no_timeout;
  std::thread waiter([&] {
    MutexLock lock(mu);
    status = sim.WaitUntil(mu, cv, VirtualClock::TimePoint{} +
                                       VirtualClock::FromSeconds(1.0));
  });
  sim.AwaitWaiters(1);
  sim.AdvanceBySeconds(1.0);
  waiter.join();
  EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(SimClock, WaitUntilWithAnElapsedDeadlineNeverBlocks) {
  SimClock sim;
  sim.AdvanceBySeconds(2.0);
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_EQ(sim.WaitUntil(mu, cv, VirtualClock::TimePoint{} +
                                      VirtualClock::FromSeconds(1.0)),
            std::cv_status::timeout);
}

TEST(SimClock, ClockNotifyWakesWaitersBeforeTheirDeadline) {
  SimClock sim;
  Mutex mu;
  CondVar cv;
  std::cv_status status = std::cv_status::timeout;
  std::thread waiter([&] {
    MutexLock lock(mu);
    status = sim.WaitUntil(mu, cv, VirtualClock::TimePoint{} +
                                       VirtualClock::FromSeconds(10.0));
  });
  sim.AwaitWaiters(1);
  {
    MutexLock lock(mu);
    sim.NotifyAll(mu, cv);
  }
  waiter.join();
  EXPECT_EQ(status, std::cv_status::no_timeout);
  EXPECT_EQ(sim.NowSeconds(), 0.0);  // the notify moved no time
}

TEST(SimClock, ClockNotifyWakesUntimedWaits) {
  SimClock sim;
  Mutex mu;
  CondVar cv;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    MutexLock lock(mu);
    sim.Wait(mu, cv);
    woke.store(true);
  });
  sim.AwaitWaiters(1);
  EXPECT_FALSE(woke.load());
  {
    MutexLock lock(mu);
    sim.NotifyAll(mu, cv);
  }
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(SimClock, PendingWorkPinsAutoAdvance) {
  SimClock::Options options;
  options.auto_advance = true;
  SimClock sim(options);
  sim.AddPendingWork(1);  // main's in-flight work pins the clock
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    sim.AddPendingWork(1);  // the sleeper's own unit of work...
    sim.SleepFor(VirtualClock::FromSeconds(1.0));  // ...released while blocked
    woke.store(true);
    sim.AddPendingWork(-1);
  });
  sim.AwaitWaiters(1);
  // Work in flight: the sleeper's registration must not have advanced time.
  EXPECT_EQ(sim.NowSeconds(), 0.0);
  EXPECT_FALSE(woke.load());
  // Releasing main's token makes the system quiescent; auto-advance steps
  // straight to the sleeper's deadline.
  sim.AddPendingWork(-1);
  sleeper.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(sim.NowSeconds(), 1.0);
}

TEST(SimClock, AutoAdvanceStepsToTheEarliestDeadline) {
  // Two units of work, one per sleeper. Time can advance only once both
  // sleepers are blocked, must stop at the earlier deadline while the
  // early sleeper runs (its wake re-credits a token), and may reach the
  // later deadline only after the early sleeper finishes — so both
  // observed wake times are exact regardless of scheduling.
  SimClock::Options options;
  options.auto_advance = true;
  SimClock sim(options);
  sim.AddPendingWork(2);
  double early_wake = -1.0;
  double late_wake = -1.0;
  std::thread late([&] {
    sim.SleepFor(VirtualClock::FromSeconds(5.0));
    late_wake = sim.NowSeconds();
    sim.AddPendingWork(-1);
  });
  std::thread early([&] {
    sim.SleepFor(VirtualClock::FromSeconds(1.0));
    early_wake = sim.NowSeconds();
    sim.AddPendingWork(-1);
  });
  early.join();
  late.join();
  EXPECT_EQ(early_wake, 1.0);  // not 5.0: earliest deadline first
  EXPECT_EQ(late_wake, 5.0);
  EXPECT_EQ(sim.pending_work(), 0);
}

TEST(SimClock, ConcurrentSleepersAreRaceFree) {
  // Stress the registration/step/deregistration paths from many threads at
  // once; under TSan this pins the locking discipline. Auto-advance with a
  // zero token balance means every sleep completes without explicit steps.
  SimClock::Options options;
  options.auto_advance = true;
  SimClock sim(options);
  constexpr int kThreads = 8;
  constexpr int kSleepsPerThread = 200;
  std::vector<std::thread> threads;
  std::atomic<int> completed{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&sim, &completed, i] {
      for (int k = 0; k < kSleepsPerThread; ++k) {
        sim.SleepFor(VirtualClock::FromSeconds(0.001 * (1 + (i + k) % 7)));
        completed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed.load(), kThreads * kSleepsPerThread);
  EXPECT_GT(sim.NowSeconds(), 0.0);
  EXPECT_EQ(sim.NumWaiters(), 0);
}

}  // namespace
}  // namespace dievent
