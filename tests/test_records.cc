#include "metadata/records.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

TEST(LookAtRecord, RoundTripsThroughMatrix) {
  LookAtMatrix m(4);
  m.Set(0, 2, true);
  m.Set(3, 1, true);
  LookAtRecord r = LookAtRecord::FromMatrix(17, 1.7, m);
  EXPECT_EQ(r.frame, 17);
  EXPECT_DOUBLE_EQ(r.timestamp_s, 1.7);
  EXPECT_EQ(r.n, 4);
  EXPECT_TRUE(r.At(0, 2));
  EXPECT_FALSE(r.At(2, 0));
  EXPECT_TRUE(r.ToMatrix() == m);
}

TEST(LookAtRecord, EmptyMatrix) {
  LookAtMatrix m(3);
  LookAtRecord r = LookAtRecord::FromMatrix(0, 0.0, m);
  EXPECT_EQ(r.cells.size(), 9u);
  for (int x = 0; x < 3; ++x)
    for (int y = 0; y < 3; ++y) EXPECT_FALSE(r.At(x, y));
}

TEST(EyeContactEpisode, LengthIsHalfOpen) {
  EyeContactEpisode ep{0, 1, 10, 25};
  EXPECT_EQ(ep.Length(), 15);
}

}  // namespace
}  // namespace dievent
