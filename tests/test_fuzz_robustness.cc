// Adversarial-input robustness: random bytes fed to every parser and
// loader must produce a clean Status, never a crash, hang, or huge
// allocation. (Deterministic pseudo-fuzz: seeds are fixed.)

#include <gtest/gtest.h>

#include <fstream>

#include "common/rng.h"
#include "common/strings.h"
#include "image/pnm_io.h"
#include "io/journal.h"
#include "metadata/durable_store.h"
#include "metadata/fsck.h"
#include "metadata/query_parser.h"
#include "metadata/repository.h"
#include "ml/neural_net.h"

namespace dievent {
namespace {

std::string WriteRandomFile(const std::string& name, size_t size,
                            Rng* rng) {
  std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary);
  for (size_t i = 0; i < size; ++i) {
    out.put(static_cast<char>(rng->NextBelow(256)));
  }
  return path;
}

TEST(FuzzRobustness, RepositoryLoadSurvivesRandomBytes) {
  Rng rng(71);
  for (int trial = 0; trial < 40; ++trial) {
    size_t size = 1 + rng.NextBelow(4096);
    std::string path = WriteRandomFile("fuzz_repo.bin", size, &rng);
    auto result = MetadataRepository::Load(path);
    EXPECT_FALSE(result.ok()) << trial;
  }
}

TEST(FuzzRobustness, RepositoryLoadSurvivesCorruptedValidFile) {
  // Start from a valid file and flip bytes — exercises deeper parse
  // paths than pure noise (magic/version pass, then length fields lie).
  MetadataRepository repo;
  repo.set_fps(10.0);
  LookAtMatrix m(4);
  m.Set(0, 1, true);
  for (int f = 0; f < 20; ++f) {
    ASSERT_TRUE(repo.AddLookAt(LookAtRecord::FromMatrix(f, f / 10.0, m))
                    .ok());
  }
  std::string path = testing::TempDir() + "/fuzz_valid.dmr";
  ASSERT_TRUE(repo.Save(path).ok());
  std::string pristine;
  {
    std::ifstream in(path, std::ios::binary);
    pristine.assign(std::istreambuf_iterator<char>(in), {});
  }
  Rng rng(72);
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = pristine;
    int flips = 1 + static_cast<int>(rng.NextBelow(8));
    for (int i = 0; i < flips; ++i) {
      size_t pos = rng.NextBelow(mutated.size());
      mutated[pos] = static_cast<char>(rng.NextBelow(256));
    }
    std::string mpath = testing::TempDir() + "/fuzz_mut.dmr";
    std::ofstream(mpath, std::ios::binary) << mutated;
    // Must not crash; may or may not load depending on what got hit.
    auto result = MetadataRepository::Load(mpath);
    if (result.ok()) {
      // Whatever loaded must be internally consistent.
      for (const auto& r : result.value().lookat_records()) {
        EXPECT_EQ(r.cells.size(),
                  static_cast<size_t>(r.n) * static_cast<size_t>(r.n));
      }
    }
  }
}

TEST(FuzzRobustness, PnmReaderSurvivesRandomBytes) {
  Rng rng(73);
  for (int trial = 0; trial < 40; ++trial) {
    std::string path =
        WriteRandomFile("fuzz_img.pgm", 1 + rng.NextBelow(2048), &rng);
    (void)ReadPgm(path);
    (void)ReadPpm(path);
  }
  // Header-shaped prefixes with lying dimensions.
  for (const char* header :
       {"P5\n999999999 999999999\n255\n", "P5\n-3 5\n255\n",
        "P6\n2 2\n255\nab", "P5\n\n\n"}) {
    std::string path = testing::TempDir() + "/fuzz_hdr.pgm";
    std::ofstream(path, std::ios::binary) << header;
    EXPECT_FALSE(ReadPgm(path).ok()) << header;
  }
}

TEST(FuzzRobustness, NeuralNetLoadSurvivesRandomBytes) {
  Rng rng(74);
  for (int trial = 0; trial < 40; ++trial) {
    std::string path =
        WriteRandomFile("fuzz_net.bin", 1 + rng.NextBelow(2048), &rng);
    EXPECT_FALSE(NeuralNet::Load(path).ok()) << trial;
  }
  // Valid magic + absurd layer sizes must be rejected, not allocated.
  std::string path = testing::TempDir() + "/fuzz_net2.bin";
  {
    std::ofstream out(path, std::ios::binary);
    uint32_t magic = 0x444E4E31, n = 3;
    uint32_t sizes[3] = {0xFFFFFFFF, 0xFFFFFFFF, 7};
    out.write(reinterpret_cast<char*>(&magic), 4);
    out.write(reinterpret_cast<char*>(&n), 4);
    out.write(reinterpret_cast<char*>(sizes), 12);
  }
  EXPECT_FALSE(NeuralNet::Load(path).ok());
}

// --- durability surfaces -------------------------------------------------

std::string FreshFuzzDir(const std::string& name) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = testing::TempDir() + "/" + name;
  if (fs->Exists(dir)) {
    auto names = fs->ListDir(dir);
    EXPECT_TRUE(names.ok());
    for (const std::string& n : names.value()) {
      EXPECT_TRUE(fs->Remove(JoinPath(dir, n)).ok());
    }
  } else {
    EXPECT_TRUE(fs->CreateDir(dir).ok());
  }
  return dir;
}

/// Builds a store with a snapshot AND live journal segments, then
/// returns every file's pristine bytes.
std::vector<std::pair<std::string, std::string>> BuildPristineStore(
    const std::string& dir) {
  FileSystem* fs = FileSystem::Default();
  auto store = DurableEventStore::Open(dir);
  EXPECT_TRUE(store.ok());
  EXPECT_TRUE(store.value()->SetFps(24.0).ok());
  LookAtMatrix m(3);
  m.Set(0, 1, true);
  for (int f = 0; f < 6; ++f) {
    EXPECT_TRUE(
        store.value()
            ->AddLookAt(LookAtRecord::FromMatrix(f, f / 24.0, m))
            .ok());
    if (f == 2) EXPECT_TRUE(store.value()->Checkpoint().ok());
  }
  EXPECT_TRUE(store.value()->Close().ok());
  std::vector<std::pair<std::string, std::string>> files;
  auto names = fs->ListDir(dir);
  EXPECT_TRUE(names.ok());
  for (const std::string& n : names.value()) {
    auto data = fs->ReadFile(JoinPath(dir, n));
    EXPECT_TRUE(data.ok());
    files.emplace_back(n, data.value());
  }
  return files;
}

TEST(FuzzRobustness, JournalReplaySurvivesRandomSegmentBytes) {
  FileSystem* fs = FileSystem::Default();
  Rng rng(76);
  for (int trial = 0; trial < 40; ++trial) {
    const std::string dir = FreshFuzzDir("fuzz_jrnl");
    std::string bytes;
    size_t size = rng.NextBelow(512);
    for (size_t i = 0; i < size; ++i) {
      bytes.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    ASSERT_TRUE(
        AtomicWriteFile(fs, JoinPath(dir, "journal-000000.wal"), bytes).ok());
    JournalReplayInfo info;
    // Any outcome is fine — salvage or a descriptive Corruption — as
    // long as it is a Status and not a crash or runaway allocation.
    (void)ReplayJournal(
        fs, dir, [](std::string_view) { return Status::OK(); }, &info);
  }
}

TEST(FuzzRobustness, DurableStoreOpenSurvivesBitFlips) {
  FileSystem* fs = FileSystem::Default();
  const std::string pristine_dir = FreshFuzzDir("fuzz_store_src");
  const auto pristine = BuildPristineStore(pristine_dir);
  ASSERT_GE(pristine.size(), 2u);  // snapshot + at least one segment

  Rng rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    const std::string dir = FreshFuzzDir("fuzz_store_mut");
    const size_t victim = rng.NextBelow(pristine.size());
    for (size_t i = 0; i < pristine.size(); ++i) {
      std::string data = pristine[i].second;
      if (i == victim && !data.empty()) {
        int flips = 1 + static_cast<int>(rng.NextBelow(6));
        for (int k = 0; k < flips; ++k) {
          data[rng.NextBelow(data.size())] ^=
              static_cast<char>(1u << rng.NextBelow(8));
        }
      }
      ASSERT_TRUE(
          AtomicWriteFile(fs, JoinPath(dir, pristine[i].first), data).ok());
    }
    auto store = DurableEventStore::Open(dir);
    if (store.ok()) {
      // Whatever survived must be internally consistent.
      for (const auto& r : store.value()->repository().lookat_records()) {
        EXPECT_EQ(r.cells.size(),
                  static_cast<size_t>(r.n) * static_cast<size_t>(r.n));
      }
    } else {
      // Descriptive failure, never an empty message.
      EXPECT_FALSE(store.status().message().empty());
    }
  }
}

TEST(FuzzRobustness, FsckSurvivesAndRepairsBitFlips) {
  FileSystem* fs = FileSystem::Default();
  const std::string pristine_dir = FreshFuzzDir("fuzz_fsck_src");
  const auto pristine = BuildPristineStore(pristine_dir);

  Rng rng(78);
  for (int trial = 0; trial < 40; ++trial) {
    const std::string dir = FreshFuzzDir("fuzz_fsck_mut");
    const size_t victim = rng.NextBelow(pristine.size());
    for (size_t i = 0; i < pristine.size(); ++i) {
      std::string data = pristine[i].second;
      if (i == victim && !data.empty()) {
        data[rng.NextBelow(data.size())] ^=
            static_cast<char>(1u << rng.NextBelow(8));
      }
      ASSERT_TRUE(
          AtomicWriteFile(fs, JoinPath(dir, pristine[i].first), data).ok());
    }
    auto verify = RunFsck(fs, dir, FsckOptions{});
    ASSERT_TRUE(verify.ok()) << verify.status().ToString();
    FsckOptions repair_opts;
    repair_opts.repair = true;
    auto repair = RunFsck(fs, dir, repair_opts);
    ASSERT_TRUE(repair.ok()) << repair.status().ToString();
    // Whatever fsck did, the directory must now open.
    auto store = DurableEventStore::Open(dir);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
  }
}

TEST(FuzzRobustness, QueryParserSurvivesRandomStrings) {
  MetadataRepository repo;
  repo.set_fps(10.0);
  LookAtMatrix m(3);
  ASSERT_TRUE(
      repo.AddLookAt(LookAtRecord::FromMatrix(0, 0.0, m)).ok());
  Rng rng(75);
  const char charset[] = "ecloktimfwandPh0123456789.,()[]>=& ";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    size_t len = rng.NextBelow(40);
    for (size_t i = 0; i < len; ++i) {
      text.push_back(charset[rng.NextBelow(sizeof(charset) - 1)]);
    }
    auto query = ParseQuery(text, &repo);
    if (query.ok()) {
      (void)query.value().Execute();  // anything that parses must run
    }
  }
}

}  // namespace
}  // namespace dievent
