/// \file bad_include.h
/// Lint self-test fixture: include hygiene violations.
/// Never compiled; scanned by `dievent_lint.py --self-test`.

#ifndef WRONG_GUARD_NAME_H  // lint-expect(include-hygiene)
#define WRONG_GUARD_NAME_H

#include <bits/stdc++.h>  // lint-expect(include-hygiene)

#include "../common/status.h"  // lint-expect(include-hygiene)

namespace dievent {

int PlaceholderSoTheHeaderIsNotEmpty();

}  // namespace dievent

#endif  // WRONG_GUARD_NAME_H
