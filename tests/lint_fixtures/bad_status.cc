/// \file bad_status.cc
/// Lint self-test fixture: silently dropped errors.
/// Never compiled; scanned by `dievent_lint.py --self-test`.

#include "common/result.h"
#include "common/status.h"

namespace dievent {

Result<int> LoadBudget();

void DropsTheError() {
  LoadBudget().status();  // lint-expect(status-discard)
}

void DropsViaVariable() {
  Result<int> budget = LoadBudget();
  budget.status();  // lint-expect(status-discard)
}

}  // namespace dievent
