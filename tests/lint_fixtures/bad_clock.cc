/// \file bad_clock.cc
/// Lint self-test fixture: direct chrono clock reads that bypass the
/// injectable VirtualClock (common/clock.h).
/// Never compiled; scanned by `dievent_lint.py --self-test`.

#include <chrono>

namespace dievent {

double UntestableElapsed() {
  auto start = std::chrono::steady_clock::now();  // lint-expect(steady-clock)
  auto stop = std::chrono::steady_clock::now();  // lint-expect(steady-clock)
  return std::chrono::duration<double>(stop - start).count();
}

long long WallClockStamp() {
  using std::chrono::system_clock;
  return system_clock::now().time_since_epoch().count();  // lint-expect(steady-clock)
}

double HighResRead() {
  auto t = std::chrono::high_resolution_clock::now();  // lint-expect(steady-clock)
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double WaivedBenchmarkRead() {
  // Benchmarks measuring real wall time opt out per line:
  auto t = std::chrono::steady_clock::now();  // lint: allow(steady-clock)
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace dievent
