/// \file bad_mutex.h
/// Lint self-test fixture: mutex members that violate the guard rule.
/// Never compiled; scanned by `dievent_lint.py --self-test`.

#ifndef DIEVENT_TESTS_LINT_FIXTURES_BAD_MUTEX_H_
#define DIEVENT_TESTS_LINT_FIXTURES_BAD_MUTEX_H_

#include <mutex>

#include "common/thread_annotations.h"

namespace dievent {

class RawMutexHolder {
 public:
  void Touch();

 private:
  std::mutex mutex_;  // lint-expect(mutex-guard)
  int counter_ = 0;
};

class UnguardedMutexHolder {
 public:
  void Touch();

 private:
  Mutex mutex_;  // lint-expect(mutex-guard)
  int counter_ = 0;  ///< should be GUARDED_BY(mutex_) but is not
};

/// A lock rank is not a guard: the brace-initialized form must still name
/// the state it protects.
class RankedUnguardedMutexHolder {
 public:
  void Touch();

 private:
  Mutex mutex_{LockRank::kLogSink};  // lint-expect(mutex-guard)
  int counter_ = 0;  ///< should be GUARDED_BY(mutex_) but is not
};

}  // namespace dievent

#endif  // DIEVENT_TESTS_LINT_FIXTURES_BAD_MUTEX_H_
