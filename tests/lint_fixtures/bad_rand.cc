/// \file bad_rand.cc
/// Lint self-test fixture: banned sources of nondeterminism.
/// Never compiled; scanned by `dievent_lint.py --self-test`.

#include <cstdlib>
#include <ctime>
#include <random>

namespace dievent {

int NondeterministicChoice() {
  return std::rand() % 4;  // lint-expect(nondeterminism)
}

void SeedFromWallClock() {
  std::srand(time(nullptr));  // lint-expect(nondeterminism)
}

unsigned HardwareEntropy() {
  std::random_device device;  // lint-expect(nondeterminism)
  return device();
}

}  // namespace dievent
