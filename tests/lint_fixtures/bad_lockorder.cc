/// \file bad_lockorder.cc
/// Lock-rank self-test fixture: acquisition orders the check must reject.
/// Never compiled; scanned by `tools/lockrank_check.py --self-test`.
/// (Kept dievent_lint-clean: the lint self-test scans this directory too.)

#include "common/thread_annotations.h"

namespace dievent {

class BadLockOrder {
 public:
  /// Acquires against rank order: the sink-ranked lock is held when the
  /// scheduler-ranked one is taken. This edge is both an order finding
  /// and (with ForwardOk below) one half of a two-lock cycle.
  void BackwardBad() {
    MutexLock outer(sink_like_);
    MutexLock inner(scheduler_like_);  // lockrank-expect(order) // lockrank-expect(cycle)
    ++guarded_a_;
    ++guarded_b_;
  }

  /// Rank-increasing on its own, but combined with BackwardBad the graph
  /// has scheduler -> sink -> scheduler: the cycle finding anchors at the
  /// cycle's first edge site, which is BackwardBad's inner acquisition.
  void ForwardOk() {
    MutexLock outer(scheduler_like_);
    MutexLock inner(sink_like_);
    ++guarded_a_;
    ++guarded_b_;
  }

 private:
  Mutex scheduler_like_{LockRank::kFleetScheduler};
  Mutex sink_like_{LockRank::kLogSink};
  Mutex plain_;  // lockrank-expect(unranked)
  int guarded_a_ GUARDED_BY(scheduler_like_) = 0;
  int guarded_b_ GUARDED_BY(sink_like_) = 0;
  int guarded_c_ GUARDED_BY(plain_) = 0;
};

}  // namespace dievent
