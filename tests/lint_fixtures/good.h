/// \file good.h
/// Lint self-test fixture: the blessed idioms. Must produce zero findings —
/// the self-test fails on any unexpected finding in this file.
/// Never compiled; scanned by `dievent_lint.py --self-test`.

#ifndef DIEVENT_TESTS_LINT_FIXTURES_GOOD_H_
#define DIEVENT_TESTS_LINT_FIXTURES_GOOD_H_

#include <ctime>

#include "common/logging.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dievent {

/// Guarded, ranked mutex: the declared state names its lock and the lock
/// declares its place in the acquisition order (src/common/lock_ranks.h).
class GuardedCounter {
 public:
  void Increment() {
    MutexLock lock(mutex_);
    ++value_;
  }

 private:
  Mutex mutex_{LockRank::kLogSink};
  int value_ GUARDED_BY(mutex_) = 0;
};

/// Waived mutex: serves purely as a notification fence, guards no data,
/// and says so where the lint can see it. Fixture-local, so it also waives
/// the lock-rank discipline with a reason.
class NotifyFence {
 private:
  // lockrank: allow(unranked): fixture-only fence, never built or locked
  Mutex mutex_;  // lint: unguarded (wait/notify fence; guards no data)
  CondVar cv_;
};

/// A deliberate wall-clock read, waived with a reason: log timestamps are
/// presentation only and never feed back into pipeline decisions.
inline long LogTimestamp() {
  return static_cast<long>(time(nullptr));  // lint: allow(nondeterminism)
}

/// The blessed way to drop an error: consume it, log it, say why.
inline void BestEffort(Status status) {
  if (!status.ok()) {
    // Best-effort cleanup; failure here must not mask the primary error.
    DIEVENT_LOG(Warning) << "cleanup failed: " << status;
  }
}

}  // namespace dievent

#endif  // DIEVENT_TESTS_LINT_FIXTURES_GOOD_H_
