/// \file bad_hotpath.cc
/// Lint self-test fixture: per-frame heap allocation inside an annotated
/// hot-path region, plus the blessed arena/scratch idioms that must stay
/// clean and the waiver escape hatch.
/// Never compiled; scanned by `dievent_lint.py --self-test`.

#include <cstdint>
#include <vector>

#include "common/arena.h"

namespace dievent {

void AnalyzeFrame(const uint8_t* pixels, size_t n, Arena* arena) {
  // lint: hot-path-begin(analyze-frame)
  std::vector<uint8_t> mask(n);  // lint-expect(hot-path-alloc)
  uint8_t* arena_mask = arena->AllocateArray<uint8_t>(n);  // fine
  float* scores = new float[n];  // lint-expect(hot-path-alloc)
  std::vector<float> feats;  // lint-expect(hot-path-alloc)
  feats.resize(n);  // lint-expect(hot-path-alloc)
  // References and pointers to vectors someone else owns are fine:
  const std::vector<float>& view = feats;
  std::vector<float>* handle = &feats;
  ArenaVector<int32_t> stack{ArenaAllocator<int32_t>(arena)};  // fine
  // Steady-state-stable growth may waive per line, with a reason:
  feats.resize(n);  // capacity warmed up on frame 0  // lint: allow(hot-path-alloc)
  (void)mask;
  (void)arena_mask;
  (void)scores;
  (void)view;
  (void)handle;
  (void)stack;
  // lint: hot-path-end
}

void OutsideRegionIsUnconstrained(size_t n) {
  // Cold paths allocate freely; the rule only fires inside regions.
  std::vector<double> history(n);
  history.resize(2 * n);
  (void)history;
}

// lint: hot-path-end  // lint-expect(hot-path-alloc)

void Unterminated() {
  // lint: hot-path-begin(leaky-region)  // lint-expect(hot-path-alloc)
}

}  // namespace dievent
