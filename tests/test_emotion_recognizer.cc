// LBP + neural-network emotion recognition (paper Section II-C). Uses a
// reduced configuration so training stays test-suite friendly.

#include "ml/emotion_recognizer.h"

#include <gtest/gtest.h>

#include "render/face_renderer.h"

namespace dievent {
namespace {

EmotionRecognizerOptions SmallOptions() {
  // Production crop/grid (32 px crops lose the thin expression strokes),
  // but a reduced sample budget to keep the test fast (~5 s).
  EmotionRecognizerOptions opt;
  opt.samples_per_class = 100;
  opt.train.epochs = 30;
  opt.train_noise_sigma = 4.0;
  return opt;
}

TEST(EmotionRecognizer, OptionsFeatureSize) {
  EmotionRecognizerOptions opt;
  opt.lbp_grid = 6;
  EXPECT_EQ(opt.FeatureSize(), 6 * 6 * 59);
}

TEST(EmotionRecognizer, TrainValidatesOptions) {
  Rng rng(1);
  EmotionRecognizerOptions bad = SmallOptions();
  bad.crop_size = 8;
  EXPECT_FALSE(EmotionRecognizer::Train(bad, &rng).ok());
  bad = SmallOptions();
  bad.lbp_grid = 24;  // cells < 3 px
  EXPECT_FALSE(EmotionRecognizer::Train(bad, &rng).ok());
  EXPECT_FALSE(EmotionRecognizer::Train(SmallOptions(), nullptr).ok());
}

TEST(EmotionRecognizer, LearnsToSeparateEmotions) {
  Rng rng(2);
  auto rec = EmotionRecognizer::Train(SmallOptions(), &rng);
  ASSERT_TRUE(rec.ok()) << rec.status();
  double acc = rec.value().EvaluateOnRendered(25, &rng);
  // 7 classes, chance = 14%; the heavily-augmented eval set (random
  // marker colors, gaze, intensity, noise) keeps the ceiling below 1.
  EXPECT_GT(acc, 0.6) << "accuracy " << acc;
}

TEST(EmotionRecognizer, CleanCropsClassifiedCorrectly) {
  Rng rng(3);
  auto rec = EmotionRecognizer::Train(SmallOptions(), &rng);
  ASSERT_TRUE(rec.ok());
  int correct = 0;
  for (Emotion e : kAllEmotions) {
    ImageRgb crop = RenderFaceCrop(48, e, 1.0);
    if (rec.value().Recognize(crop).emotion == e) ++correct;
  }
  EXPECT_GE(correct, 6);  // at most one confusion on clean inputs
}

TEST(EmotionRecognizer, RecognizeResizesArbitraryCrops) {
  Rng rng(4);
  auto rec = EmotionRecognizer::Train(SmallOptions(), &rng);
  ASSERT_TRUE(rec.ok());
  // A 57x57 crop (not the training size) still classifies.
  ImageRgb crop = RenderFaceCrop(57, Emotion::kSurprise, 1.0);
  EmotionPrediction p = rec.value().Recognize(crop);
  EXPECT_EQ(p.class_probabilities.size(),
            static_cast<size_t>(kNumEmotions));
  EXPECT_GT(p.confidence, 1.0 / kNumEmotions);
}

TEST(EmotionRecognizer, ConfusionMatrixRowsNormalized) {
  Rng rng(5);
  auto rec = EmotionRecognizer::Train(SmallOptions(), &rng);
  ASSERT_TRUE(rec.ok());
  auto confusion = rec.value().ConfusionOnRendered(10, &rng);
  ASSERT_EQ(confusion.size(), static_cast<size_t>(kNumEmotions));
  for (const auto& row : confusion) {
    double total = 0;
    for (double v : row) total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  // Diagonal dominates on average.
  double diag = 0;
  for (int i = 0; i < kNumEmotions; ++i) diag += confusion[i][i];
  EXPECT_GT(diag / kNumEmotions, 0.5);
}

TEST(EmotionRecognizer, SaveLoadViaNetwork) {
  Rng rng(6);
  auto rec = EmotionRecognizer::Train(SmallOptions(), &rng);
  ASSERT_TRUE(rec.ok());
  std::string path = testing::TempDir() + "/emotion_net.bin";
  ASSERT_TRUE(rec.value().network().Save(path).ok());
  auto net = NeuralNet::Load(path);
  ASSERT_TRUE(net.ok());
  auto rec2 =
      EmotionRecognizer::FromNetwork(SmallOptions(), net.TakeValue());
  ASSERT_TRUE(rec2.ok()) << rec2.status();
  ImageRgb crop = RenderFaceCrop(48, Emotion::kHappy, 1.0);
  EXPECT_EQ(rec.value().Recognize(crop).emotion,
            rec2.value().Recognize(crop).emotion);
}

TEST(EmotionRecognizer, FromNetworkRejectsShapeMismatch) {
  Rng rng(7);
  auto net = NeuralNet::Create({10, 4, kNumEmotions}, &rng);
  ASSERT_TRUE(net.ok());
  EXPECT_FALSE(
      EmotionRecognizer::FromNetwork(SmallOptions(), net.TakeValue()).ok());
}

TEST(EmotionRecognizer, DeterministicTrainingGivenSeed) {
  auto train_once = [] {
    Rng rng(42);
    auto rec = EmotionRecognizer::Train(SmallOptions(), &rng);
    ImageRgb crop = RenderFaceCrop(48, Emotion::kSad, 1.0);
    return rec.value().Recognize(crop).class_probabilities;
  };
  auto a = train_once();
  auto b = train_once();
  for (size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace dievent
