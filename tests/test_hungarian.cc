#include "ml/hungarian.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace dievent {
namespace {

double AssignmentCost(const std::vector<std::vector<double>>& cost,
                      const std::vector<int>& match) {
  double total = 0;
  for (size_t r = 0; r < match.size(); ++r) {
    if (match[r] >= 0) total += cost[r][match[r]];
  }
  return total;
}

/// Brute-force optimum for small square instances.
double BruteForce(const std::vector<std::vector<double>>& cost) {
  int n = static_cast<int>(cost.size());
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  double best = 1e300;
  do {
    double total = 0;
    for (int i = 0; i < n; ++i) total += cost[i][perm[i]];
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(Hungarian, TrivialCases) {
  EXPECT_TRUE(SolveAssignment({}).empty());
  auto one = SolveAssignment({{5.0}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0);
}

TEST(Hungarian, PicksObviousDiagonal) {
  std::vector<std::vector<double>> cost = {
      {0, 9, 9}, {9, 0, 9}, {9, 9, 0}};
  auto m = SolveAssignment(cost);
  EXPECT_EQ(m, (std::vector<int>{0, 1, 2}));
}

TEST(Hungarian, AntiDiagonal) {
  std::vector<std::vector<double>> cost = {
      {9, 9, 0}, {9, 0, 9}, {0, 9, 9}};
  auto m = SolveAssignment(cost);
  EXPECT_EQ(m, (std::vector<int>{2, 1, 0}));
}

TEST(Hungarian, MatchesBruteForceOnRandomSquares) {
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    int n = 2 + static_cast<int>(rng.NextBelow(5));  // 2..6
    std::vector<std::vector<double>> cost(n, std::vector<double>(n));
    for (auto& row : cost)
      for (double& c : row) c = rng.Uniform(0, 10);
    auto m = SolveAssignment(cost);
    // Valid permutation.
    std::vector<bool> used(n, false);
    for (int r = 0; r < n; ++r) {
      ASSERT_GE(m[r], 0);
      ASSERT_LT(m[r], n);
      ASSERT_FALSE(used[m[r]]);
      used[m[r]] = true;
    }
    EXPECT_NEAR(AssignmentCost(cost, m), BruteForce(cost), 1e-9) << trial;
  }
}

TEST(Hungarian, RectangularWideAssignsAllRows) {
  // 2 rows, 4 columns: every row gets a distinct column.
  std::vector<std::vector<double>> cost = {
      {5, 1, 7, 9}, {5, 2, 7, 0}};
  auto m = SolveAssignment(cost);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], 1);
  EXPECT_EQ(m[1], 3);
}

TEST(Hungarian, RectangularTallLeavesRowsUnassigned) {
  // 3 rows, 1 column: only one row can win it (the cheapest).
  std::vector<std::vector<double>> cost = {{5}, {1}, {3}};
  auto m = SolveAssignment(cost);
  ASSERT_EQ(m.size(), 3u);
  int assigned = 0;
  for (int r = 0; r < 3; ++r) {
    if (m[r] == 0) {
      ++assigned;
      EXPECT_EQ(r, 1);  // cheapest row
    } else {
      EXPECT_EQ(m[r], -1);
    }
  }
  EXPECT_EQ(assigned, 1);
}

TEST(Hungarian, HandlesNegativeCosts) {
  std::vector<std::vector<double>> cost = {{-5, 0}, {0, -5}};
  auto m = SolveAssignment(cost);
  EXPECT_EQ(m, (std::vector<int>{0, 1}));
}

TEST(Hungarian, LargeInstanceRunsAndIsValid) {
  Rng rng(102);
  int n = 64;
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost)
    for (double& c : row) c = rng.Uniform(0, 100);
  auto m = SolveAssignment(cost);
  std::vector<bool> used(n, false);
  for (int r = 0; r < n; ++r) {
    ASSERT_GE(m[r], 0);
    ASSERT_FALSE(used[m[r]]);
    used[m[r]] = true;
  }
  // Sanity: beats a greedy row-by-row baseline (or at least matches it).
  double greedy = 0;
  std::vector<bool> taken(n, false);
  for (int r = 0; r < n; ++r) {
    int best = -1;
    for (int c = 0; c < n; ++c) {
      if (!taken[c] && (best < 0 || cost[r][c] < cost[r][best])) best = c;
    }
    taken[best] = true;
    greedy += cost[r][best];
  }
  EXPECT_LE(AssignmentCost(cost, m), greedy + 1e-9);
}

}  // namespace
}  // namespace dievent
