#include "geometry/mat3.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

void ExpectMatNear(const Mat3& a, const Mat3& b, double tol = 1e-12) {
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c)
      EXPECT_NEAR(a(r, c), b(r, c), tol) << "(" << r << "," << c << ")";
}

TEST(Mat3, IdentityActsTrivially) {
  Mat3 i = Mat3::Identity();
  Vec3 v{1, -2, 3};
  EXPECT_EQ(i * v, v);
  ExpectMatNear(i * i, i);
}

TEST(Mat3, RowColConstruction) {
  Mat3 m = Mat3::FromRows({1, 2, 3}, {4, 5, 6}, {7, 8, 9});
  EXPECT_EQ(m(1, 2), 6);
  EXPECT_EQ(m.Row(2), (Vec3{7, 8, 9}));
  EXPECT_EQ(m.Col(0), (Vec3{1, 4, 7}));
  Mat3 mc = Mat3::FromCols({1, 4, 7}, {2, 5, 8}, {3, 6, 9});
  ExpectMatNear(m, mc);
}

TEST(Mat3, MatrixVectorProduct) {
  Mat3 m = Mat3::FromRows({1, 0, 0}, {0, 2, 0}, {0, 0, 3});
  EXPECT_EQ(m * Vec3(1, 1, 1), (Vec3{1, 2, 3}));
}

TEST(Mat3, TransposeAndProduct) {
  Mat3 a = Mat3::FromRows({1, 2, 0}, {0, 1, 4}, {5, 0, 1});
  ExpectMatNear(a.Transposed().Transposed(), a);
  // (AB)^T == B^T A^T
  Mat3 b = Mat3::FromRows({2, 0, 1}, {1, 1, 0}, {0, 3, 1});
  ExpectMatNear((a * b).Transposed(), b.Transposed() * a.Transposed());
}

TEST(Mat3, DeterminantAndInverse) {
  Mat3 a = Mat3::FromRows({2, 0, 0}, {0, 3, 0}, {0, 0, 4});
  EXPECT_DOUBLE_EQ(a.Determinant(), 24.0);
  ExpectMatNear(a * a.Inverse(), Mat3::Identity());
  Mat3 b = Mat3::FromRows({1, 2, 3}, {0, 1, 4}, {5, 6, 0});
  ExpectMatNear(b * b.Inverse(), Mat3::Identity(), 1e-9);
  ExpectMatNear(b.Inverse() * b, Mat3::Identity(), 1e-9);
}

TEST(Mat3, SingularInverseIsZero) {
  Mat3 s = Mat3::FromRows({1, 2, 3}, {2, 4, 6}, {0, 0, 1});
  ExpectMatNear(s.Inverse(), Mat3::Zero());
}

TEST(Mat3, RotationsAreOrthonormal) {
  for (double rad : {0.1, 1.0, 2.5, -0.7}) {
    for (const Mat3& r :
         {Mat3::RotX(rad), Mat3::RotY(rad), Mat3::RotZ(rad)}) {
      ExpectMatNear(r * r.Transposed(), Mat3::Identity(), 1e-12);
      EXPECT_NEAR(r.Determinant(), 1.0, 1e-12);
    }
  }
}

TEST(Mat3, RotZQuarterTurn) {
  Mat3 r = Mat3::RotZ(DegToRad(90));
  Vec3 v = r * Vec3{1, 0, 0};
  EXPECT_NEAR(v.x, 0, 1e-12);
  EXPECT_NEAR(v.y, 1, 1e-12);
  EXPECT_NEAR(v.z, 0, 1e-12);
}

TEST(Mat3, RotXQuarterTurn) {
  Vec3 v = Mat3::RotX(DegToRad(90)) * Vec3{0, 1, 0};
  EXPECT_NEAR(v.z, 1, 1e-12);
  EXPECT_NEAR(v.y, 0, 1e-12);
}

TEST(Mat3, AdditionAndScaling) {
  Mat3 a = Mat3::Identity();
  Mat3 two = a * 2.0;
  ExpectMatNear(a + a, two);
}

}  // namespace
}  // namespace dievent
