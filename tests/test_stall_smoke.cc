// Real-clock stall smoke test. The deterministic stall-vs-deadline
// verdicts live in test_pipelined_executor.cc under SimClock; this keeps
// one wall-clock variant alive so the RealClock wait/interrupt plumbing
// (std::condition_variable timeouts, real watchdog pacing) stays
// exercised. It asserts only load-tolerant facts — the run completes and
// the stalled camera degrades — never exact counters, and it is
// registered serially under a ctest RESOURCE_LOCK so suite parallelism
// cannot starve its deadlines.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "sim/scenario.h"

namespace dievent {
namespace {

// Sanitizer builds run the pipeline several times slower; the deadline
// scales so a healthy read still fits its budget.
#ifndef __has_feature
#define __has_feature(x) 0  // GCC signals sanitizers via __SANITIZE_*__
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__) || \
    __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr double kTimingSlack = 10.0;
#else
constexpr double kTimingSlack = 1.0;
#endif

TEST(StallSmoke, RealClockDeadlineCutsOffAStalledCamera) {
  DiningScene scene = MakeMeetingScenario();
  PipelineOptions opt;
  opt.mode = PipelineMode::kFullVision;
  opt.frame_stride = 100;  // 7 synchronized reads
  opt.eye_contact.angular_tolerance_deg = 12.0;
  opt.analyze_emotions = false;
  opt.parse_video = false;
  opt.camera_faults.resize(4);
  opt.camera_faults[1].stall_probability = 1.0;
  opt.camera_faults[1].stall_duration_s = 0.5 * kTimingSlack;
  opt.acquisition.read_deadline_s = 0.03 * kTimingSlack;
  opt.acquisition.retry_budget = 0;
  opt.num_threads = 2;
  opt.prefetch_depth = 2;

  MetadataRepository repo;
  auto report = DiEventPipeline(&scene, opt).Run(&repo);
  ASSERT_TRUE(report.ok()) << report.status();
  // Load-tolerant assertions only: every frame was analyzed (the other
  // three cameras always deliver), and the stalled camera degraded at
  // least one set. Exact miss counts belong to the SimClock tests.
  EXPECT_EQ(report.value().frames_processed, 7);
  EXPECT_GT(report.value().degradation.frames_degraded, 0);
  EXPECT_GT(report.value().degradation.deadline_misses, 0);
}

}  // namespace
}  // namespace dievent
