#include "render/face_renderer.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace dievent {
namespace {

using face_model::kHair;
using face_model::kIris;
using face_model::kSkin;

int CountNear(const ImageRgb& img, const Rgb& ref, int tol) {
  int n = 0;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      Rgb c = GetRgb(img, x, y);
      if (std::abs(c.r - ref.r) <= tol && std::abs(c.g - ref.g) <= tol &&
          std::abs(c.b - ref.b) <= tol) {
        ++n;
      }
    }
  }
  return n;
}

TEST(RenderFaceCrop, FrontalContainsExpectedColors) {
  Rgb marker{10, 200, 10};
  ImageRgb crop = RenderFaceCrop(64, Emotion::kNeutral, 1.0, 0, 0, marker);
  EXPECT_GT(CountNear(crop, kSkin, 2), 800);
  EXPECT_GT(CountNear(crop, marker, 2), 50);
  EXPECT_GT(CountNear(crop, kIris, 2), 4);
  EXPECT_GT(CountNear(crop, face_model::kEyeWhite, 2), 10);
  EXPECT_EQ(CountNear(crop, kHair, 2), 0);
}

TEST(RenderFace, BackOfHeadShowsHairNoFaceFeatures) {
  ImageRgb img(64, 64, 3);
  FaceRenderParams p;
  p.center_px = {32, 32};
  p.radius_px = 28;
  p.marker_color = Rgb{200, 10, 10};
  p.front_facing = false;
  RenderFace(&img, p);
  EXPECT_GT(CountNear(img, kHair, 2), 800);
  EXPECT_EQ(CountNear(img, kSkin, 2), 0);
  EXPECT_EQ(CountNear(img, face_model::kEyeWhite, 2), 0);
  EXPECT_GT(CountNear(img, p.marker_color, 2), 50);
}

TEST(RenderFace, TinyRadiusIsNoop) {
  ImageRgb img(16, 16, 3);
  FaceRenderParams p;
  p.center_px = {8, 8};
  p.radius_px = 0.5;
  RenderFace(&img, p);
  for (uint8_t v : img.data()) EXPECT_EQ(v, 0);
}

TEST(RenderFace, GazeMovesIrisCentroid) {
  auto iris_centroid_x = [](double gx) {
    ImageRgb crop = RenderFaceCrop(96, Emotion::kNeutral, 1.0, gx, 0.0);
    double sx = 0;
    int n = 0;
    for (int y = 0; y < 96; ++y) {
      for (int x = 0; x < 96; ++x) {
        Rgb c = GetRgb(crop, x, y);
        if (std::abs(c.r - kIris.r) <= 2 && std::abs(c.g - kIris.g) <= 2) {
          sx += x;
          ++n;
        }
      }
    }
    return n > 0 ? sx / n : -1.0;
  };
  double left = iris_centroid_x(-0.8);
  double center = iris_centroid_x(0.0);
  double right = iris_centroid_x(0.8);
  EXPECT_LT(left, center);
  EXPECT_LT(center, right);
  EXPECT_GT(right - left, 2.0);
}

TEST(RenderFace, EmotionsProduceDistinctAppearance) {
  // Each emotion's crop must differ from neutral's (otherwise the
  // recognizer has nothing to learn).
  ImageRgb neutral = RenderFaceCrop(48, Emotion::kNeutral, 1.0);
  for (Emotion e : {Emotion::kHappy, Emotion::kSad, Emotion::kAngry,
                    Emotion::kDisgust, Emotion::kFear, Emotion::kSurprise}) {
    ImageRgb other = RenderFaceCrop(48, e, 1.0);
    EXPECT_FALSE(other == neutral) << EmotionName(e);
  }
}

TEST(RenderFace, IntensityZeroNearNeutral) {
  // At zero intensity, the happy mouth collapses onto a line like
  // neutral's (brows may differ by a hair's breadth).
  ImageRgb happy0 = RenderFaceCrop(48, Emotion::kHappy, 0.0);
  ImageRgb happy1 = RenderFaceCrop(48, Emotion::kHappy, 1.0);
  ImageRgb neutral = RenderFaceCrop(48, Emotion::kNeutral, 1.0);
  int diff0 = 0, diff1 = 0;
  for (size_t i = 0; i < neutral.data().size(); ++i) {
    if (happy0.data()[i] != neutral.data()[i]) ++diff0;
    if (happy1.data()[i] != neutral.data()[i]) ++diff1;
  }
  EXPECT_LT(diff0, diff1);
}

TEST(RenderFace, ClipsAtCanvasBorder) {
  ImageRgb img(32, 32, 3);
  FaceRenderParams p;
  p.center_px = {0, 0};  // mostly off-canvas
  p.radius_px = 20;
  p.front_facing = true;
  RenderFace(&img, p);  // must not crash; some skin visible
  EXPECT_GT(CountNear(img, kSkin, 2), 10);
}

}  // namespace
}  // namespace dievent
