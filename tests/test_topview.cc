// Tests for the look-at top-view map (paper Fig. 7b / 8b).

#include "analysis/topview_map.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/scenario.h"

namespace dievent {
namespace {

int CountNear(const ImageRgb& img, const Rgb& ref, int tol) {
  int n = 0;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      Rgb c = GetRgb(img, x, y);
      if (std::abs(c.r - ref.r) <= tol && std::abs(c.g - ref.g) <= tol &&
          std::abs(c.b - ref.b) <= tol) {
        ++n;
      }
    }
  }
  return n;
}

LookAtMatrix Fig7Matrix() {
  LookAtMatrix m(4);
  m.Set(0, 2, true);  // P1 -> P3
  m.Set(2, 0, true);  // P3 -> P1 (mutual EC)
  m.Set(3, 1, true);  // P4 -> P2
  m.Set(1, 2, true);  // P2 -> P3
  return m;
}

TEST(TopViewMap, HasRequestedDimensionsAndBackground) {
  DiningScene scene = MakeMeetingScenario();
  TopViewOptions opt;
  opt.width = 320;
  opt.height = 240;
  ImageRgb map = RenderTopViewMap(scene, Fig7Matrix(), opt);
  EXPECT_EQ(map.width(), 320);
  EXPECT_EQ(map.height(), 240);
  EXPECT_GT(CountNear(map, opt.background, 2), 320 * 240 / 3);
}

TEST(TopViewMap, DrawsAllParticipantDiscs) {
  DiningScene scene = MakeMeetingScenario();
  TopViewOptions opt;
  ImageRgb map = RenderTopViewMap(scene, Fig7Matrix(), opt);
  double disc_area = 3.14159 * opt.participant_radius_px *
                     opt.participant_radius_px;
  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(CountNear(map, scene.profile(i).marker_color, 2),
              disc_area * 0.5)
        << "participant " << i;
  }
  EXPECT_GT(CountNear(map, opt.table_color, 2), 1000);
}

TEST(TopViewMap, ArrowsOnlyWhenEdgesExist) {
  DiningScene scene = MakeMeetingScenario();
  TopViewOptions opt;
  ImageRgb empty_map = RenderTopViewMap(scene, LookAtMatrix(4), opt);
  ImageRgb busy_map = RenderTopViewMap(scene, Fig7Matrix(), opt);
  // Arrows are dark strokes; the busy map has many more dark pixels.
  int dark_empty = CountNear(empty_map, Rgb{40, 40, 40}, 12);
  int dark_busy = CountNear(busy_map, Rgb{40, 40, 40}, 12);
  EXPECT_GT(dark_busy, dark_empty + 50);
}

TEST(TopViewMap, HandlesMatrixSmallerThanScene) {
  DiningScene scene = MakeMeetingScenario();
  LookAtMatrix two(2);
  two.Set(0, 1, true);
  ImageRgb map = RenderTopViewMap(scene, two, TopViewOptions{});
  EXPECT_FALSE(map.empty());  // no crash, best-effort rendering
}

}  // namespace
}  // namespace dievent
