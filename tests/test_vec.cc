#include "geometry/vec.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

TEST(Vec2, Arithmetic) {
  Vec2 a{1, 2}, b{3, -4};
  EXPECT_EQ((a + b).x, 4);
  EXPECT_EQ((a + b).y, -2);
  EXPECT_EQ((a - b).x, -2);
  EXPECT_EQ((a * 2.0).y, 4);
  EXPECT_EQ((2.0 * a).y, 4);
  EXPECT_EQ((-a).x, -1);
}

TEST(Vec2, NormAndNormalize) {
  Vec2 v{3, 4};
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  Vec2 u = v.Normalized();
  EXPECT_NEAR(u.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(u.x, 0.6, 1e-12);
  // Zero vector normalizes to itself without NaN.
  Vec2 z{0, 0};
  EXPECT_EQ(z.Normalized().x, 0.0);
}

TEST(Vec3, DotAndCross) {
  Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_DOUBLE_EQ(x.Dot(y), 0.0);
  EXPECT_EQ(x.Cross(y), z);
  EXPECT_EQ(y.Cross(z), x);
  EXPECT_EQ(z.Cross(x), y);
  // Anti-commutativity.
  EXPECT_EQ(y.Cross(x), -z);
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1, 1, 1};
  v += Vec3{1, 2, 3};
  EXPECT_EQ(v, (Vec3{2, 3, 4}));
  v -= Vec3{2, 2, 2};
  EXPECT_EQ(v, (Vec3{0, 1, 2}));
  v *= 3.0;
  EXPECT_EQ(v, (Vec3{0, 3, 6}));
}

TEST(Vec3, NormalizedZeroSafe) {
  Vec3 z{0, 0, 0};
  Vec3 n = z.Normalized();
  EXPECT_EQ(n, z);
}

TEST(AngleBetween, KnownAngles) {
  Vec3 x{1, 0, 0}, y{0, 1, 0};
  EXPECT_NEAR(AngleBetween(x, y), DegToRad(90), 1e-12);
  EXPECT_NEAR(AngleBetween(x, x), 0.0, 1e-7);
  EXPECT_NEAR(AngleBetween(x, -x), DegToRad(180), 1e-7);
  EXPECT_NEAR(AngleBetween(x, Vec3{1, 1, 0}), DegToRad(45), 1e-12);
  // Magnitude-invariant.
  EXPECT_NEAR(AngleBetween(x * 10.0, y * 0.01), DegToRad(90), 1e-12);
}

TEST(AngleBetween, DegenerateInputsReturnZero) {
  EXPECT_EQ(AngleBetween(Vec3{}, Vec3{1, 0, 0}), 0.0);
}

TEST(AngleBetween, ClampsRoundoff) {
  // Nearly-parallel vectors whose normalized dot may exceed 1 by roundoff.
  Vec3 a{1, 1e-9, 0};
  Vec3 b{1, 0, 0};
  double ang = AngleBetween(a, b);
  EXPECT_GE(ang, 0.0);
  EXPECT_LT(ang, 1e-6);
}

TEST(DegRadConversion, RoundTrips) {
  EXPECT_NEAR(RadToDeg(DegToRad(123.4)), 123.4, 1e-12);
  EXPECT_NEAR(DegToRad(180.0), 3.14159265358979, 1e-10);
}

}  // namespace
}  // namespace dievent
