#include "video/shot_detection.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/scenario.h"
#include "video/synthetic_source.h"

namespace dievent {
namespace {

/// A synthetic video of solid-color "shots" with optional per-pixel noise.
MemoryVideoSource MakeCutVideo(const std::vector<std::pair<int, Rgb>>& shots,
                               double noise, uint64_t seed) {
  std::vector<ImageRgb> frames;
  Rng rng(seed);
  for (const auto& [count, color] : shots) {
    for (int i = 0; i < count; ++i) {
      ImageRgb f(64, 48, 3);
      for (int y = 0; y < 48; ++y) {
        for (int x = 0; x < 64; ++x) {
          auto jitter = [&](uint8_t v) {
            double nv = v + rng.Gaussian(0, noise);
            return static_cast<uint8_t>(std::clamp(nv, 0.0, 255.0));
          };
          PutRgb(&f, x, y, Rgb{jitter(color.r), jitter(color.g),
                               jitter(color.b)});
        }
      }
      frames.push_back(std::move(f));
    }
  }
  return MemoryVideoSource(std::move(frames), 25.0);
}

TEST(ShotDetection, FindsHardCuts) {
  auto src = MakeCutVideo(
      {{30, Rgb{50, 60, 70}}, {25, Rgb{200, 180, 40}}, {30, Rgb{20, 120, 200}}},
      2.0, 7);
  ShotBoundaryDetector det;
  auto cuts = det.Detect(&src);
  ASSERT_TRUE(cuts.ok());
  ASSERT_EQ(cuts.value().size(), 2u);
  EXPECT_EQ(cuts.value()[0].frame, 30);
  EXPECT_EQ(cuts.value()[1].frame, 55);
}

TEST(ShotDetection, QuietVideoHasNoCuts) {
  auto src = MakeCutVideo({{60, Rgb{90, 90, 90}}}, 3.0, 8);
  ShotBoundaryDetector det;
  auto cuts = det.Detect(&src);
  ASSERT_TRUE(cuts.ok());
  EXPECT_TRUE(cuts.value().empty());
}

TEST(ShotDetection, MinShotLengthDebounces) {
  // A two-frame flash would produce two boundaries closer than
  // min_shot_length; only the first survives.
  auto src = MakeCutVideo(
      {{20, Rgb{50, 50, 50}}, {2, Rgb{255, 255, 255}}, {20, Rgb{50, 50, 50}}},
      0.0, 9);
  ShotDetectorOptions opt;
  opt.min_shot_length = 5;
  ShotBoundaryDetector det(opt);
  auto cuts = det.Detect(&src);
  ASSERT_TRUE(cuts.ok());
  EXPECT_EQ(cuts.value().size(), 1u);
}

TEST(ShotDetection, FixedThresholdMode) {
  auto src = MakeCutVideo({{10, Rgb{0, 0, 0}}, {10, Rgb{255, 255, 255}}},
                          0.0, 10);
  ShotDetectorOptions opt;
  opt.threshold_mode = ThresholdMode::kFixed;
  opt.fixed_threshold = 0.5;
  ShotBoundaryDetector det(opt);
  auto cuts = det.Detect(&src);
  ASSERT_TRUE(cuts.ok());
  ASSERT_EQ(cuts.value().size(), 1u);
  EXPECT_EQ(cuts.value()[0].frame, 10);
}

TEST(ShotDetection, L1MetricAlsoDetects) {
  auto src = MakeCutVideo({{15, Rgb{30, 40, 50}}, {15, Rgb{220, 10, 90}}},
                          1.0, 11);
  ShotDetectorOptions opt;
  opt.metric = HistogramMetric::kL1;
  ShotBoundaryDetector det(opt);
  auto cuts = det.Detect(&src);
  ASSERT_TRUE(cuts.ok());
  ASSERT_EQ(cuts.value().size(), 1u);
  EXPECT_EQ(cuts.value()[0].frame, 15);
}

TEST(ShotDetection, MeetingVideoIsOneShot) {
  // The paper's prototype video is one continuous recording: the
  // detector must not hallucinate cuts from participant motion.
  DiningScene scene = MakeMeetingScenario();
  SyntheticVideoSource src(&scene, 0);
  std::vector<Histogram> sigs;
  ShotBoundaryDetector det;
  for (int f = 0; f < 200; f += 2) {
    sigs.push_back(det.Signature(src.GetFrame(f).value().image));
  }
  EXPECT_TRUE(det.DetectFromHistograms(sigs).empty());
}

TEST(BoundariesToShots, PartitionsFrameRange) {
  std::vector<ShotBoundary> cuts = {{10, 1.0}, {25, 1.0}};
  auto shots = BoundariesToShots(cuts, 40);
  ASSERT_EQ(shots.size(), 3u);
  EXPECT_EQ(shots[0].begin_frame, 0);
  EXPECT_EQ(shots[0].end_frame, 10);
  EXPECT_EQ(shots[1].begin_frame, 10);
  EXPECT_EQ(shots[1].end_frame, 25);
  EXPECT_EQ(shots[2].begin_frame, 25);
  EXPECT_EQ(shots[2].end_frame, 40);
  // Coverage is exact and disjoint.
  int covered = 0;
  for (const auto& s : shots) covered += s.Length();
  EXPECT_EQ(covered, 40);
}

TEST(BoundariesToShots, NoCutsMeansOneShot) {
  auto shots = BoundariesToShots({}, 17);
  ASSERT_EQ(shots.size(), 1u);
  EXPECT_EQ(shots[0].Length(), 17);
}

TEST(BoundariesToShots, IgnoresOutOfRangeCuts) {
  std::vector<ShotBoundary> cuts = {{0, 1.0}, {50, 1.0}, {10, 1.0}};
  auto shots = BoundariesToShots(cuts, 20);
  ASSERT_EQ(shots.size(), 2u);
  EXPECT_EQ(shots[1].begin_frame, 10);
}

}  // namespace
}  // namespace dievent
