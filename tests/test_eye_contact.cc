// Tests for eye-contact detection — the paper's Eq. 1-5 machinery.

#include "analysis/eye_contact.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/scenario.h"

namespace dievent {
namespace {

ParticipantGeometry At(Vec3 pos, Vec3 gaze) {
  ParticipantGeometry g;
  g.head_position = pos;
  g.gaze_direction = gaze.Normalized();
  return g;
}

ParticipantGeometry Blind(Vec3 pos) {
  ParticipantGeometry g;
  g.head_position = pos;
  return g;
}

TEST(EyeContact, MutualGazeFillsBothCells) {
  EyeContactDetector det;
  std::vector<ParticipantGeometry> people = {
      At({0, 0, 1}, {1, 0, 0}), At({2, 0, 1}, {-1, 0, 0})};
  LookAtMatrix m = det.ComputeLookAt(people);
  EXPECT_TRUE(m.At(0, 1));
  EXPECT_TRUE(m.At(1, 0));
  EXPECT_EQ(m.EyeContactPairs().size(), 1u);
}

TEST(EyeContact, OneWayGazeIsNotEyeContact) {
  EyeContactDetector det;
  std::vector<ParticipantGeometry> people = {
      At({0, 0, 1}, {1, 0, 0}), At({2, 0, 1}, {0, 1, 0})};
  LookAtMatrix m = det.ComputeLookAt(people);
  EXPECT_TRUE(m.At(0, 1));
  EXPECT_FALSE(m.At(1, 0));
  EXPECT_TRUE(m.EyeContactPairs().empty());
}

TEST(EyeContact, MissingGazeLooksAtNobody) {
  EyeContactDetector det;
  std::vector<ParticipantGeometry> people = {
      Blind({0, 0, 1}), At({2, 0, 1}, {-1, 0, 0})};
  LookAtMatrix m = det.ComputeLookAt(people);
  EXPECT_FALSE(m.At(0, 1));
  EXPECT_TRUE(m.At(1, 0));
}

TEST(EyeContact, HeadRadiusControlsAngularWindow) {
  // Gaze 5 degrees off-target at 2 m distance: misses a 12 cm head
  // (angular radius 3.4 deg) but hits a 25 cm one (7.1 deg).
  Vec3 gaze{std::cos(DegToRad(5)), std::sin(DegToRad(5)), 0};
  std::vector<ParticipantGeometry> people = {At({0, 0, 1}, gaze),
                                             Blind({2, 0, 1})};
  EyeContactOptions small;
  small.head_radius = 0.12;
  EXPECT_FALSE(EyeContactDetector(small).ComputeLookAt(people).At(0, 1));
  EyeContactOptions big;
  big.head_radius = 0.25;
  EXPECT_TRUE(EyeContactDetector(big).ComputeLookAt(people).At(0, 1));
}

TEST(EyeContact, AngularToleranceAbsorbsGazeNoise) {
  Vec3 gaze{std::cos(DegToRad(8)), std::sin(DegToRad(8)), 0};
  std::vector<ParticipantGeometry> people = {At({0, 0, 1}, gaze),
                                             Blind({2, 0, 1})};
  EyeContactOptions strict;  // tolerance 0
  EXPECT_FALSE(EyeContactDetector(strict).ComputeLookAt(people).At(0, 1));
  EyeContactOptions slack;
  slack.angular_tolerance_deg = 10.0;
  EXPECT_TRUE(EyeContactDetector(slack).ComputeLookAt(people).At(0, 1));
}

TEST(EyeContact, AgreesWithSceneGroundTruth) {
  DiningScene scene = MakeMeetingScenario();
  EyeContactDetector det;  // head radius matches profile default
  for (int f = 0; f < scene.num_frames(); f += 50) {
    double t = scene.TimeOfFrame(f);
    auto states = scene.StateAt(t);
    std::vector<ParticipantGeometry> people;
    for (const auto& s : states) {
      people.push_back(At(s.head_position, s.gaze_direction));
    }
    LookAtMatrix m = det.ComputeLookAt(people);
    auto gt = scene.GroundTruthLookAt(t);
    for (int x = 0; x < 4; ++x) {
      for (int y = 0; y < 4; ++y) {
        if (x != y) {
          EXPECT_EQ(m.At(x, y), gt[x][y]) << f << x << y;
        }
      }
    }
  }
}

TEST(EyeContact, CameraFramePathMatchesWorldPath) {
  // The paper's Eq. 2 chain: observations expressed in per-camera frames,
  // chained into the reference camera, must yield the same matrix as the
  // world-frame computation.
  DiningScene scene = MakeMeetingScenario();
  const Rig& rig = scene.rig();
  EyeContactDetector det;
  Rng rng(3);
  for (int f = 0; f < scene.num_frames(); f += 77) {
    auto states = scene.StateAt(scene.TimeOfFrame(f));
    std::vector<ParticipantGeometry> world;
    std::vector<CameraFrameGeometry> in_cameras;
    for (const auto& s : states) {
      world.push_back(At(s.head_position, s.gaze_direction));
      CameraFrameGeometry cfg;
      // Each participant observed by a random camera.
      cfg.camera_index = static_cast<int>(rng.NextBelow(4));
      const Pose& cam_T_world =
          rig.camera(cfg.camera_index).camera_from_world();
      cfg.head_position = cam_T_world.TransformPoint(s.head_position);
      cfg.gaze_direction =
          cam_T_world.TransformDirection(s.gaze_direction);
      in_cameras.push_back(cfg);
    }
    LookAtMatrix world_m = det.ComputeLookAt(world);
    for (int ref = 0; ref < 4; ++ref) {
      auto cam_m = det.ComputeLookAtInCameraFrame(rig, ref, in_cameras);
      ASSERT_TRUE(cam_m.ok()) << cam_m.status();
      EXPECT_TRUE(cam_m.value() == world_m) << "ref " << ref;
    }
  }
}

TEST(EyeContact, CameraFramePathValidatesIndexes) {
  DiningScene scene = MakeMeetingScenario();
  EyeContactDetector det;
  std::vector<CameraFrameGeometry> obs(1);
  obs[0].camera_index = 99;
  EXPECT_FALSE(
      det.ComputeLookAtInCameraFrame(scene.rig(), 0, obs).ok());
  obs[0].camera_index = 0;
  EXPECT_FALSE(
      det.ComputeLookAtInCameraFrame(scene.rig(), -1, obs).ok());
  EXPECT_TRUE(
      det.ComputeLookAtInCameraFrame(scene.rig(), 0, obs).ok());
}

TEST(EyeContact, NPersonMatrixDoesNPairsChecks) {
  // Everyone in a circle looking at their clockwise neighbour: exactly n
  // directed edges, no mutual pairs (n > 2).
  const int n = 6;
  std::vector<ParticipantGeometry> people;
  for (int i = 0; i < n; ++i) {
    double a = 2 * 3.14159265 * i / n;
    people.push_back(Blind({std::cos(a), std::sin(a), 1.0}));
  }
  for (int i = 0; i < n; ++i) {
    int next = (i + 1) % n;
    people[i].gaze_direction =
        (people[next].head_position - people[i].head_position).Normalized();
  }
  EyeContactDetector det;
  LookAtMatrix m = det.ComputeLookAt(people);
  EXPECT_EQ(m.DirectedEdges().size(), static_cast<size_t>(n));
  EXPECT_TRUE(m.EyeContactPairs().empty());
}

}  // namespace
}  // namespace dievent
