#include "geometry/camera.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace dievent {
namespace {

CameraModel MakeTestCamera() {
  Intrinsics k = Intrinsics::FromFov(640, 480, DegToRad(70));
  // At (0,0,1) looking along +x, z-up world.
  return CameraModel("test", k, Pose::LookAt({0, 0, 1}, {5, 0, 1}));
}

TEST(Intrinsics, FromFovCentersPrincipalPoint) {
  Intrinsics k = Intrinsics::FromFov(640, 480, DegToRad(90));
  EXPECT_EQ(k.width, 640);
  EXPECT_EQ(k.height, 480);
  EXPECT_DOUBLE_EQ(k.cx, 320);
  EXPECT_DOUBLE_EQ(k.cy, 240);
  // 90 deg hfov: fx = (w/2)/tan(45) = w/2.
  EXPECT_NEAR(k.fx, 320, 1e-9);
  EXPECT_DOUBLE_EQ(k.fx, k.fy);
}

TEST(Camera, PointOnAxisProjectsToPrincipalPoint) {
  CameraModel cam = MakeTestCamera();
  auto px = cam.ProjectWorldPoint({3, 0, 1});
  ASSERT_TRUE(px.has_value());
  EXPECT_NEAR(px->x, 320, 1e-9);
  EXPECT_NEAR(px->y, 240, 1e-9);
}

TEST(Camera, PointBehindCameraDoesNotProject) {
  CameraModel cam = MakeTestCamera();
  EXPECT_FALSE(cam.ProjectWorldPoint({-3, 0, 1}).has_value());
  EXPECT_FALSE(cam.ProjectCameraPoint({0, 0, 0}).has_value());
}

TEST(Camera, LeftOfViewProjectsLeftOfCenter) {
  CameraModel cam = MakeTestCamera();
  // World +y is to the camera's left when looking along +x with z-up.
  auto px = cam.ProjectWorldPoint({3, 1, 1});
  ASSERT_TRUE(px.has_value());
  EXPECT_LT(px->x, 320);
  // Above the axis projects above the centre (smaller y).
  auto py = cam.ProjectWorldPoint({3, 0, 2});
  ASSERT_TRUE(py.has_value());
  EXPECT_LT(py->y, 240);
}

TEST(Camera, DepthOfMatchesDistanceAlongAxis) {
  CameraModel cam = MakeTestCamera();
  EXPECT_NEAR(cam.DepthOf({4, 0, 1}), 4.0, 1e-12);
  EXPECT_LT(cam.DepthOf({-2, 0, 1}), 0.0);
}

TEST(Camera, BackprojectInvertsProject) {
  CameraModel cam = MakeTestCamera();
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    Vec3 p{rng.Uniform(1, 10), rng.Uniform(-3, 3), rng.Uniform(-1, 3)};
    auto px = cam.ProjectWorldPoint(p);
    ASSERT_TRUE(px.has_value());
    Vec3 back = cam.BackprojectToWorld(*px, cam.DepthOf(p));
    EXPECT_NEAR((back - p).Norm(), 0.0, 1e-9) << i;
  }
}

TEST(Camera, PixelRayPassesThroughPoint) {
  CameraModel cam = MakeTestCamera();
  Vec3 p{6, 1.5, 0.5};
  auto px = cam.ProjectWorldPoint(p);
  ASSERT_TRUE(px.has_value());
  Ray ray = cam.PixelRayWorld(*px);
  // Distance from p to the ray should be ~0.
  Vec3 to_p = p - ray.origin;
  Vec3 closest = ray.origin + ray.direction * to_p.Dot(ray.direction);
  EXPECT_NEAR((closest - p).Norm(), 0.0, 1e-9);
  EXPECT_NEAR(ray.direction.Norm(), 1.0, 1e-12);
}

TEST(Camera, IsVisibleRespectsBounds) {
  CameraModel cam = MakeTestCamera();
  EXPECT_TRUE(cam.IsVisible({3, 0, 1}));
  EXPECT_FALSE(cam.IsVisible({-3, 0, 1}));    // behind
  EXPECT_FALSE(cam.IsVisible({1, 30, 1}));    // far off to the side
}

TEST(Camera, ViewDirectionIsUnitAndForward) {
  CameraModel cam = MakeTestCamera();
  Vec3 dir = cam.ViewDirection();
  EXPECT_NEAR(dir.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(dir.x, 1.0, 1e-9);
}

TEST(Camera, ProjectedSizeShrinksWithDistance) {
  // The head-pose estimator depends on radius_px = fx * R / depth.
  CameraModel cam = MakeTestCamera();
  const double kR = 0.12;
  auto apparent = [&](double depth) {
    auto top = cam.ProjectWorldPoint({depth, 0, 1 + kR});
    auto bot = cam.ProjectWorldPoint({depth, 0, 1 - kR});
    return (bot->y - top->y) / 2.0;
  };
  double r2 = apparent(2.0), r4 = apparent(4.0);
  EXPECT_NEAR(r2 / r4, 2.0, 1e-9);
  EXPECT_NEAR(r2, cam.intrinsics().fx * kR / 2.0, 1e-9);
}

}  // namespace
}  // namespace dievent
