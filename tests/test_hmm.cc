// Tests for the discrete HMM (the Gao et al. [16] baseline machinery).

#include "ml/hmm.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dievent {
namespace {

/// A strongly identifiable 2-state model: state 0 emits symbol 0, state 1
/// emits symbol 1, with sticky transitions.
DiscreteHmm StickyModel() {
  auto hmm = DiscreteHmm::Create(
      {0.5, 0.5},
      {{0.95, 0.05}, {0.05, 0.95}},
      {{0.9, 0.1}, {0.1, 0.9}});
  EXPECT_TRUE(hmm.ok());
  return hmm.TakeValue();
}

TEST(DiscreteHmm, CreateValidates) {
  Rng rng(1);
  EXPECT_FALSE(DiscreteHmm::CreateRandom(0, 3, &rng).ok());
  EXPECT_FALSE(DiscreteHmm::CreateRandom(3, 0, &rng).ok());
  EXPECT_FALSE(DiscreteHmm::CreateRandom(3, 3, nullptr).ok());
  EXPECT_FALSE(DiscreteHmm::Create({1.0}, {{1.0}}, {{}}).ok());
  EXPECT_FALSE(DiscreteHmm::Create({1.0, 1.0}, {{1.0}}, {{1.0}}).ok());
  EXPECT_FALSE(
      DiscreteHmm::Create({1.0}, {{-0.5}}, {{1.0}}).ok());  // negative
  auto ok = DiscreteHmm::Create({2.0}, {{3.0}}, {{4.0, 4.0}});
  ASSERT_TRUE(ok.ok());  // rows renormalized
  EXPECT_DOUBLE_EQ(ok.value().initial()[0], 1.0);
  EXPECT_DOUBLE_EQ(ok.value().emission()[0][1], 0.5);
}

TEST(DiscreteHmm, LikelihoodPrefersModelConsistentSequences) {
  DiscreteHmm hmm = StickyModel();
  // A sticky sequence fits; a rapidly alternating one fits worse.
  std::vector<int> sticky = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  std::vector<int> alternating = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  auto l_sticky = hmm.LogLikelihood(sticky);
  auto l_alt = hmm.LogLikelihood(alternating);
  ASSERT_TRUE(l_sticky.ok());
  ASSERT_TRUE(l_alt.ok());
  EXPECT_GT(l_sticky.value(), l_alt.value());
}

TEST(DiscreteHmm, LikelihoodMatchesHandComputation) {
  // One state, deterministic emission: L = product of emission probs.
  auto hmm = DiscreteHmm::Create({1.0}, {{1.0}}, {{0.25, 0.75}});
  ASSERT_TRUE(hmm.ok());
  auto ll = hmm.value().LogLikelihood({0, 1, 1});
  ASSERT_TRUE(ll.ok());
  EXPECT_NEAR(ll.value(), std::log(0.25 * 0.75 * 0.75), 1e-12);
}

TEST(DiscreteHmm, ValidatesObservations) {
  DiscreteHmm hmm = StickyModel();
  EXPECT_FALSE(hmm.LogLikelihood({}).ok());
  EXPECT_EQ(hmm.LogLikelihood({0, 5}).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_FALSE(hmm.Viterbi({-1}).ok());
}

TEST(DiscreteHmm, ViterbiRecoversStatesFromCleanEmissions) {
  DiscreteHmm hmm = StickyModel();
  std::vector<int> obs = {0, 0, 0, 1, 1, 1, 1, 0, 0, 0};
  auto path = hmm.Viterbi(obs);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value(),
            (std::vector<int>{0, 0, 0, 1, 1, 1, 1, 0, 0, 0}));
}

TEST(DiscreteHmm, ViterbiSmoothsIsolatedOutliers) {
  // With sticky transitions, a single contrary symbol inside a long run
  // is explained by emission noise, not a state flip.
  DiscreteHmm hmm = StickyModel();
  std::vector<int> obs = {0, 0, 0, 0, 1, 0, 0, 0, 0};
  auto path = hmm.Viterbi(obs);
  ASSERT_TRUE(path.ok());
  for (int s : path.value()) EXPECT_EQ(s, 0);
}

TEST(DiscreteHmm, SampleIsDeterministicAndValid) {
  DiscreteHmm hmm = StickyModel();
  Rng rng1(9), rng2(9);
  std::vector<int> s1, o1, s2, o2;
  hmm.Sample(200, &rng1, &s1, &o1);
  hmm.Sample(200, &rng2, &s2, &o2);
  EXPECT_EQ(o1, o2);
  EXPECT_EQ(s1, s2);
  for (size_t i = 0; i < o1.size(); ++i) {
    EXPECT_GE(o1[i], 0);
    EXPECT_LT(o1[i], 2);
  }
}

TEST(DiscreteHmm, BaumWelchIncreasesLikelihood) {
  // Train a random model on data sampled from the sticky model; the
  // log-likelihood must be monotone (up to tolerance) and the fitted
  // model must beat the initial one.
  DiscreteHmm truth = StickyModel();
  Rng rng(10);
  std::vector<int> states, symbols;
  truth.Sample(600, &rng, &states, &symbols);

  auto learned = DiscreteHmm::CreateRandom(2, 2, &rng);
  ASSERT_TRUE(learned.ok());
  auto initial_ll = learned.value().LogLikelihood(symbols);
  ASSERT_TRUE(initial_ll.ok());
  auto history = learned.value().BaumWelch({symbols}, 50);
  ASSERT_TRUE(history.ok());
  ASSERT_GE(history.value().size(), 2u);
  for (size_t i = 1; i < history.value().size(); ++i) {
    EXPECT_GE(history.value()[i], history.value()[i - 1] - 1e-6) << i;
  }
  auto final_ll = learned.value().LogLikelihood(symbols);
  ASSERT_TRUE(final_ll.ok());
  EXPECT_GT(final_ll.value(), initial_ll.value());
}

TEST(DiscreteHmm, BaumWelchRecoversStickyStructure) {
  DiscreteHmm truth = StickyModel();
  Rng rng(20);
  std::vector<std::vector<int>> dataset;
  for (int seq = 0; seq < 5; ++seq) {
    std::vector<int> states, symbols;
    truth.Sample(400, &rng, &states, &symbols);
    dataset.push_back(symbols);
  }
  auto learned = DiscreteHmm::CreateRandom(2, 2, &rng);
  ASSERT_TRUE(learned.ok());
  ASSERT_TRUE(learned.value().BaumWelch(dataset, 80).ok());
  // Self-transition dominance is recovered in both states (up to state
  // relabeling, self-transitions are label-invariant).
  for (int s = 0; s < 2; ++s) {
    EXPECT_GT(learned.value().transition()[s][s], 0.75) << s;
  }
}

TEST(DiscreteHmm, BaumWelchValidates) {
  DiscreteHmm hmm = StickyModel();
  EXPECT_FALSE(hmm.BaumWelch({}, 10).ok());
  EXPECT_FALSE(hmm.BaumWelch({{0, 9}}, 10).ok());
}

}  // namespace
}  // namespace dievent
