// Tests for SE(3) poses — the paper's iTj frame transforms (Eq. 1-2).

#include "geometry/pose.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dievent {
namespace {

void ExpectVecNear(const Vec3& a, const Vec3& b, double tol = 1e-10) {
  EXPECT_NEAR(a.x, b.x, tol);
  EXPECT_NEAR(a.y, b.y, tol);
  EXPECT_NEAR(a.z, b.z, tol);
}

Pose RandomPose(Rng* rng) {
  Vec3 axis{rng->Uniform(-1, 1), rng->Uniform(-1, 1), rng->Uniform(-1, 1)};
  if (axis.Norm() < 1e-6) axis = {1, 0, 0};
  Quaternion q = Quaternion::FromAxisAngle(axis, rng->Uniform(-3, 3));
  Vec3 t{rng->Uniform(-5, 5), rng->Uniform(-5, 5), rng->Uniform(-5, 5)};
  return Pose::FromQuaternion(q, t);
}

TEST(Pose, IdentityIsNeutral) {
  Pose id = Pose::Identity();
  ExpectVecNear(id.TransformPoint({1, 2, 3}), {1, 2, 3});
  ExpectVecNear(id.TransformDirection({1, 2, 3}), {1, 2, 3});
}

TEST(Pose, TranslationAffectsPointsNotDirections) {
  Pose p(Mat3::Identity(), {10, 0, 0});
  ExpectVecNear(p.TransformPoint({1, 0, 0}), {11, 0, 0});
  ExpectVecNear(p.TransformDirection({1, 0, 0}), {1, 0, 0});
}

TEST(Pose, InverseUndoesTransform) {
  Rng rng(21);
  for (int i = 0; i < 30; ++i) {
    Pose p = RandomPose(&rng);
    Vec3 v{rng.Uniform(-3, 3), rng.Uniform(-3, 3), rng.Uniform(-3, 3)};
    ExpectVecNear(p.Inverse().TransformPoint(p.TransformPoint(v)), v, 1e-9);
    ExpectVecNear(p.TransformPoint(p.Inverse().TransformPoint(v)), v, 1e-9);
  }
}

TEST(Pose, CompositionAssociatesLikeEquation1) {
  // Paper Eq. 2: 1V = 1T2 * 2T4 * 4V — chained transforms.
  Rng rng(22);
  for (int i = 0; i < 30; ++i) {
    Pose t12 = RandomPose(&rng);
    Pose t24 = RandomPose(&rng);
    Vec3 v4{rng.Uniform(-3, 3), rng.Uniform(-3, 3), rng.Uniform(-3, 3)};
    Vec3 chained = (t12 * t24).TransformPoint(v4);
    Vec3 sequential = t12.TransformPoint(t24.TransformPoint(v4));
    ExpectVecNear(chained, sequential, 1e-9);
  }
}

TEST(Pose, InverseOfCompositionReversesOrder) {
  Rng rng(23);
  Pose a = RandomPose(&rng), b = RandomPose(&rng);
  Pose lhs = (a * b).Inverse();
  Pose rhs = b.Inverse() * a.Inverse();
  EXPECT_LT(PoseDistance(lhs, rhs), 1e-9);
}

TEST(Pose, LookAtAimsZAxisAtTarget) {
  Vec3 eye{0, 0, 2};
  Vec3 target{3, 1, 0};
  Pose p = Pose::LookAt(eye, target);
  Vec3 fwd = p.rotation.Col(2);
  ExpectVecNear(fwd, (target - eye).Normalized(), 1e-9);
  ExpectVecNear(p.translation, eye);
  // Rotation is orthonormal.
  Mat3 should_be_identity = p.rotation * p.rotation.Transposed();
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c)
      EXPECT_NEAR(should_be_identity(r, c), r == c ? 1.0 : 0.0, 1e-9);
}

TEST(Pose, LookAtStraightDownHandlesDegenerateUp) {
  Pose p = Pose::LookAt({0, 0, 5}, {0, 0, 0});  // forward anti-parallel to up
  Vec3 fwd = p.rotation.Col(2);
  ExpectVecNear(fwd, {0, 0, -1}, 1e-9);
  // Still orthonormal.
  EXPECT_NEAR(p.rotation.Determinant(), 1.0, 1e-9);
}

TEST(Pose, LookAtYAxisPointsImageDown) {
  // With Z-up world and a horizontal view, the +Y camera axis (image
  // "down") must point toward -Z (the floor).
  Pose p = Pose::LookAt({0, 0, 1}, {5, 0, 1});
  Vec3 down = p.rotation.Col(1);
  EXPECT_LT(down.z, -0.99);
}

TEST(Pose, OrientationQuaternionMatchesRotation) {
  Rng rng(24);
  Pose p = RandomPose(&rng);
  Quaternion q = p.Orientation();
  Vec3 v{1, 2, 3};
  ExpectVecNear(q.Rotate(v), p.rotation * v, 1e-9);
}

TEST(PoseDistance, ZeroForEqualPoses) {
  Rng rng(25);
  Pose p = RandomPose(&rng);
  EXPECT_NEAR(PoseDistance(p, p), 0.0, 1e-12);
  EXPECT_GT(PoseDistance(p, RandomPose(&rng)), 0.0);
}

}  // namespace
}  // namespace dievent
