#include "image/image.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

TEST(Image, ConstructionZeroInitializes) {
  ImageU8 img(4, 3);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.channels(), 1);
  EXPECT_EQ(img.size(), 12u);
  for (uint8_t v : img.data()) EXPECT_EQ(v, 0);
}

TEST(Image, DefaultIsEmpty) {
  ImageU8 img;
  EXPECT_TRUE(img.empty());
  EXPECT_EQ(img.width(), 0);
}

TEST(Image, AtReadsAndWritesInterleaved) {
  ImageRgb img(2, 2, 3);
  img.at(1, 0, 0) = 10;
  img.at(1, 0, 1) = 20;
  img.at(1, 0, 2) = 30;
  EXPECT_EQ(img.at(1, 0, 0), 10);
  EXPECT_EQ(GetRgb(img, 1, 0), (Rgb{10, 20, 30}));
  // Layout: row-major interleaved.
  EXPECT_EQ(img.data()[3], 10);
}

TEST(Image, InsideBoundsCheck) {
  ImageU8 img(3, 2);
  EXPECT_TRUE(img.Inside(0, 0));
  EXPECT_TRUE(img.Inside(2, 1));
  EXPECT_FALSE(img.Inside(3, 0));
  EXPECT_FALSE(img.Inside(0, 2));
  EXPECT_FALSE(img.Inside(-1, 0));
}

TEST(Image, FillSetsEverything) {
  ImageU8 img(5, 5);
  img.Fill(77);
  for (uint8_t v : img.data()) EXPECT_EQ(v, 77);
}

TEST(Image, AtClampedExtendsBorder) {
  ImageU8 img(2, 2);
  img.at(0, 0) = 1;
  img.at(1, 0) = 2;
  img.at(0, 1) = 3;
  img.at(1, 1) = 4;
  EXPECT_EQ(img.AtClamped(-5, -5), 1);
  EXPECT_EQ(img.AtClamped(10, -1), 2);
  EXPECT_EQ(img.AtClamped(-1, 10), 3);
  EXPECT_EQ(img.AtClamped(10, 10), 4);
}

TEST(Image, CropCopiesWindow) {
  ImageU8 img(4, 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x)
      img.at(x, y) = static_cast<uint8_t>(y * 4 + x);
  ImageU8 crop = img.Crop(1, 1, 2, 2);
  EXPECT_EQ(crop.width(), 2);
  EXPECT_EQ(crop.at(0, 0), 5);
  EXPECT_EQ(crop.at(1, 1), 10);
}

TEST(Image, CropClampsOutOfBounds) {
  ImageU8 img(2, 2);
  img.at(1, 1) = 9;
  ImageU8 crop = img.Crop(1, 1, 3, 3);
  EXPECT_EQ(crop.width(), 3);
  // Everything clamps to the (1,1) corner value.
  for (uint8_t v : crop.data()) EXPECT_EQ(v, 9);
}

TEST(Image, EqualityIsDeep) {
  ImageU8 a(2, 2), b(2, 2);
  EXPECT_TRUE(a == b);
  b.at(0, 0) = 1;
  EXPECT_FALSE(a == b);
  ImageU8 c(2, 3);
  EXPECT_FALSE(a == c);
}

TEST(ToGray, UsesBt601Weights) {
  ImageRgb img(1, 1, 3);
  PutRgb(&img, 0, 0, Rgb{255, 0, 0});
  EXPECT_EQ(ToGray(img).at(0, 0), 76);  // 0.299 * 255 rounded
  PutRgb(&img, 0, 0, Rgb{0, 255, 0});
  EXPECT_EQ(ToGray(img).at(0, 0), 150);
  PutRgb(&img, 0, 0, Rgb{255, 255, 255});
  EXPECT_EQ(ToGray(img).at(0, 0), 255);
}

TEST(PutRgb, OutOfBoundsIsNoop) {
  ImageRgb img(2, 2, 3);
  PutRgb(&img, -1, 0, Rgb{9, 9, 9});
  PutRgb(&img, 5, 5, Rgb{9, 9, 9});
  for (uint8_t v : img.data()) EXPECT_EQ(v, 0);
}

}  // namespace
}  // namespace dievent
