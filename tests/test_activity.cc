// Tests for dining-activity analysis: gaze statistics, symbolization,
// phase rules, and the phased-scenario ground truth they run against.

#include "analysis/activity.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

LookAtMatrix Matrix(int n, std::vector<std::pair<int, int>> edges) {
  LookAtMatrix m(n);
  for (auto [a, b] : edges) m.Set(a, b, true);
  return m;
}

TEST(GazeStats, CountsEdgesPairsAndHeadsDown) {
  LookAtMatrix m = Matrix(4, {{0, 1}, {1, 0}, {2, 0}});
  GazeFrameStats s = ComputeGazeStats(m);
  EXPECT_EQ(s.participants, 4);
  EXPECT_EQ(s.directed_edges, 3);
  EXPECT_EQ(s.mutual_pairs, 1);
  EXPECT_EQ(s.heads_down, 1);  // P4 looks at nobody
  EXPECT_EQ(s.max_in_degree, 2);   // P1 watched by P2 and P3
  EXPECT_EQ(s.attention_target, 0);
  EXPECT_EQ(s.second_in_degree, 1);
  EXPECT_FALSE(s.attention_converged);
}

TEST(GazeStats, ConvergenceRequiresAllOthers) {
  LookAtMatrix m = Matrix(4, {{1, 0}, {2, 0}, {3, 0}});
  GazeFrameStats s = ComputeGazeStats(m);
  EXPECT_TRUE(s.attention_converged);
  EXPECT_EQ(s.attention_target, 0);
  // Two-person "convergence" is not meaningful.
  LookAtMatrix two = Matrix(2, {{1, 0}});
  EXPECT_FALSE(ComputeGazeStats(two).attention_converged);
}

TEST(Symbolize, ProducesDistinctSymbolsForPhasePrototypes) {
  // Eating: nobody looks at anybody.
  int eating = SymbolizeLookAt(Matrix(6, {}));
  // Discussion: a mutual pair plus onlookers split between the speakers.
  int discussion = SymbolizeLookAt(
      Matrix(6, {{0, 1}, {1, 0}, {2, 0}, {3, 1}, {4, 0}, {5, 1}}));
  // Presentation: everyone on P1, P1 on one audience member.
  int presentation = SymbolizeLookAt(
      Matrix(6, {{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}, {0, 3}}));
  EXPECT_NE(eating, discussion);
  EXPECT_NE(discussion, presentation);
  EXPECT_NE(eating, presentation);
  for (int s : {eating, discussion, presentation}) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, kActivitySymbols);
  }
}

TEST(PhaseRule, ClassifiesPrototypes) {
  EXPECT_EQ(ClassifyPhaseRule(Matrix(6, {})), DiningPhase::kEating);
  EXPECT_EQ(ClassifyPhaseRule(Matrix(6, {{2, 3}})),
            DiningPhase::kEating);  // one glance, rest heads-down
  EXPECT_EQ(ClassifyPhaseRule(Matrix(
                6, {{0, 1}, {1, 0}, {2, 0}, {3, 1}, {4, 0}, {5, 1}})),
            DiningPhase::kDiscussion);
  EXPECT_EQ(ClassifyPhaseRule(Matrix(
                6, {{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}, {0, 3}})),
            DiningPhase::kPresentation);
  // Presenter holding mutual gaze with one audience member is still a
  // presentation (the regression the second-hub margin fixes).
  EXPECT_EQ(ClassifyPhaseRule(Matrix(
                6, {{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}, {0, 5}})),
            DiningPhase::kPresentation);
}

TEST(SmoothPhases, MajorityVoteRemovesBlips) {
  using P = DiningPhase;
  std::vector<P> raw = {P::kEating, P::kEating, P::kDiscussion,
                        P::kEating, P::kEating, P::kEating};
  auto smooth = SmoothPhases(raw, 2);
  for (P p : smooth) EXPECT_EQ(p, P::kEating);
  // Zero window is the identity.
  EXPECT_EQ(SmoothPhases(raw, 0), raw);
}

TEST(PhaseAccuracy, CountsMatches) {
  using P = DiningPhase;
  std::vector<P> truth = {P::kEating, P::kEating, P::kDiscussion};
  std::vector<P> pred = {P::kEating, P::kDiscussion, P::kDiscussion};
  EXPECT_NEAR(PhaseAccuracy(pred, truth), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(PhaseAccuracy({}, {}), 0.0);
  EXPECT_EQ(PhaseAccuracy(pred, {}), 0.0);
}

TEST(MapStatesToPhases, MajorityAssignment) {
  using P = DiningPhase;
  std::vector<int> states = {0, 0, 0, 1, 1, 1};
  std::vector<P> truth = {P::kEating, P::kEating, P::kDiscussion,
                          P::kPresentation, P::kPresentation, P::kEating};
  auto mapped = MapStatesToPhases(states, truth, 2);
  EXPECT_EQ(mapped[0], P::kEating);        // state 0 -> eating (2 of 3)
  EXPECT_EQ(mapped[3], P::kPresentation);  // state 1 -> presentation
}

TEST(PhasedScenario, GroundTruthStatsMatchPhases) {
  Rng rng(77);
  PhasedScene phased = MakePhasedDinnerScenario(
      6,
      {{DiningPhase::kEating, 20},
       {DiningPhase::kDiscussion, 20},
       {DiningPhase::kPresentation, 20}},
      10.0, &rng);
  ASSERT_EQ(phased.scene.num_frames(), 600);
  ASSERT_EQ(phased.frame_phase.size(), 600u);

  // Aggregate per-phase statistics on ground truth.
  double eating_down = 0, pres_concentration = 0;
  int eating_n = 0, disc_mutual = 0, disc_n = 0, pres_n = 0;
  for (int f = 0; f < 600; ++f) {
    auto gt = phased.scene.GroundTruthLookAt(phased.scene.TimeOfFrame(f));
    LookAtMatrix m(6);
    for (int x = 0; x < 6; ++x)
      for (int y = 0; y < 6; ++y) m.Set(x, y, gt[x][y]);
    GazeFrameStats s = ComputeGazeStats(m);
    switch (phased.frame_phase[f]) {
      case DiningPhase::kEating:
        eating_down += s.heads_down;
        ++eating_n;
        break;
      case DiningPhase::kDiscussion:
        disc_mutual += s.mutual_pairs > 0 ? 1 : 0;
        ++disc_n;
        break;
      case DiningPhase::kPresentation:
        pres_concentration +=
            static_cast<double>(s.max_in_degree) / 5.0;
        ++pres_n;
        break;
    }
  }
  EXPECT_GT(eating_down / eating_n, 3.5);           // mostly heads-down
  EXPECT_GT(static_cast<double>(disc_mutual) / disc_n, 0.8);
  EXPECT_GT(pres_concentration / pres_n, 0.7);
}

TEST(PhasedScenario, RulePipelineBeatsChanceComfortably) {
  Rng rng(88);
  PhasedScene phased = MakePhasedDinnerScenario(
      5,
      {{DiningPhase::kDiscussion, 15},
       {DiningPhase::kEating, 15},
       {DiningPhase::kPresentation, 15}},
      10.0, &rng);
  std::vector<DiningPhase> predicted;
  for (int f = 0; f < phased.scene.num_frames(); ++f) {
    auto gt = phased.scene.GroundTruthLookAt(phased.scene.TimeOfFrame(f));
    LookAtMatrix m(5);
    for (int x = 0; x < 5; ++x)
      for (int y = 0; y < 5; ++y) m.Set(x, y, gt[x][y]);
    predicted.push_back(ClassifyPhaseRule(m));
  }
  predicted = SmoothPhases(predicted, 10);
  EXPECT_GT(PhaseAccuracy(predicted, phased.frame_phase), 0.8);
}

}  // namespace
}  // namespace dievent
