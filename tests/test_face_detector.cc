#include "vision/face_detector.h"

#include <gtest/gtest.h>

#include "image/draw.h"
#include "render/face_renderer.h"
#include "render/scene_renderer.h"
#include "sim/scenario.h"

namespace dievent {
namespace {

ImageRgb Background(int w, int h) {
  ImageRgb img(w, h, 3);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      PutRgb(&img, x, y, face_model::kDefaultBackground);
  return img;
}

TEST(IoU, BoxOverlapCases) {
  BBox a{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(IoU(a, a), 1.0);
  EXPECT_DOUBLE_EQ(IoU(a, BBox{20, 20, 5, 5}), 0.0);
  // Half overlap: inter 50, union 150.
  EXPECT_NEAR(IoU(a, BBox{5, 0, 10, 10}), 50.0 / 150.0, 1e-12);
}

TEST(FaceDetector, FindsFrontalFaceWithAccurateGeometry) {
  ImageRgb img = Background(200, 200);
  FaceRenderParams p;
  p.center_px = {100, 110};
  p.radius_px = 30;
  p.marker_color = Rgb{250, 210, 40};
  p.front_facing = true;
  RenderFace(&img, p);
  FaceDetector det;
  auto found = det.Detect(img);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(found[0].front_facing);
  EXPECT_NEAR(found[0].center_px.x, 100, 1.5);
  EXPECT_NEAR(found[0].center_px.y, 110, 1.5);
  EXPECT_NEAR(found[0].radius_px, 30, 1.5);
}

TEST(FaceDetector, ClassifiesBackOfHead) {
  ImageRgb img = Background(200, 200);
  FaceRenderParams p;
  p.center_px = {80, 90};
  p.radius_px = 25;
  p.marker_color = Rgb{30, 30, 200};
  p.front_facing = false;
  RenderFace(&img, p);
  FaceDetector det;
  auto found = det.Detect(img);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_FALSE(found[0].front_facing);
  EXPECT_NEAR(found[0].radius_px, 25, 1.5);
}

TEST(FaceDetector, EmptyFrameYieldsNothing) {
  FaceDetector det;
  EXPECT_TRUE(det.Detect(Background(100, 100)).empty());
}

TEST(FaceDetector, IgnoresTinyBlobs) {
  ImageRgb img = Background(100, 100);
  FillCircle(&img, 50, 50, 2.0, face_model::kSkin);  // below min radius
  FaceDetector det;
  EXPECT_TRUE(det.Detect(img).empty());
}

TEST(FaceDetector, RejectsElongatedStreaks) {
  ImageRgb img = Background(100, 100);
  FillRect(&img, 10, 48, 60, 4, face_model::kSkin);  // aspect 15
  FaceDetector det;
  EXPECT_TRUE(det.Detect(img).empty());
}

TEST(FaceDetector, MultipleFacesAllFound) {
  ImageRgb img = Background(400, 200);
  for (int i = 0; i < 4; ++i) {
    FaceRenderParams p;
    p.center_px = {60.0 + i * 90, 100};
    p.radius_px = 22;
    p.marker_color = Rgb{static_cast<uint8_t>(60 * i), 200, 120};
    p.front_facing = (i % 2 == 0);
    RenderFace(&img, p);
  }
  FaceDetector det;
  auto found = det.Detect(img);
  EXPECT_EQ(found.size(), 4u);
}

TEST(FaceDetector, SurvivesPixelNoise) {
  DiningScene scene = MakeMeetingScenario();
  RenderOptions opt;
  opt.noise_sigma = 8.0;
  Rng rng(5);
  ImageRgb frame = RenderViewAt(scene, 10.0, 1, opt, &rng);
  FaceDetector det;
  auto found = det.Detect(frame);
  // All four participants visible in camera 1 at t=10.
  EXPECT_EQ(found.size(), 4u);
}

TEST(FaceDetector, DetectionsMatchProjectedGroundTruth) {
  DiningScene scene = MakeMeetingScenario();
  ImageRgb frame = RenderViewAt(scene, 10.0, 0, RenderOptions{});
  FaceDetector det;
  auto found = det.Detect(frame);
  auto states = scene.StateAt(10.0);
  const CameraModel& cam = scene.rig().camera(0);
  int matched = 0;
  for (int i = 0; i < scene.NumParticipants(); ++i) {
    auto px = cam.ProjectWorldPoint(states[i].head_position);
    ASSERT_TRUE(px.has_value());
    for (const auto& d : found) {
      if ((d.center_px - *px).Norm() < 3.0) ++matched;
    }
  }
  EXPECT_EQ(matched, 4);
}

}  // namespace
}  // namespace dievent
