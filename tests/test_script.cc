#include "sim/script.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

TEST(Script, EmptyReturnsDefault) {
  Script<int> s(42);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Sample(0.0), 42);
  EXPECT_EQ(s.Sample(100.0), 42);
}

TEST(Script, SampleInsideSegments) {
  Script<int> s(0);
  ASSERT_TRUE(s.Add(1.0, 2.0, 10).ok());
  ASSERT_TRUE(s.Add(2.0, 3.0, 20).ok());
  ASSERT_TRUE(s.Add(5.0, 6.0, 30).ok());
  EXPECT_EQ(s.Sample(0.5), 0);    // before first
  EXPECT_EQ(s.Sample(1.0), 10);   // inclusive start
  EXPECT_EQ(s.Sample(1.999), 10);
  EXPECT_EQ(s.Sample(2.0), 20);   // exclusive end / next start
  EXPECT_EQ(s.Sample(4.0), 0);    // gap
  EXPECT_EQ(s.Sample(5.5), 30);
  EXPECT_EQ(s.Sample(6.0), 0);    // after last (exclusive)
}

TEST(Script, RejectsEmptyAndBackwardSegments) {
  Script<int> s(0);
  EXPECT_EQ(s.Add(2.0, 2.0, 1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.Add(3.0, 1.0, 1).code(), StatusCode::kInvalidArgument);
}

TEST(Script, RejectsOverlapAndDisorder) {
  Script<int> s(0);
  ASSERT_TRUE(s.Add(1.0, 3.0, 1).ok());
  EXPECT_EQ(s.Add(2.0, 4.0, 2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.Add(0.0, 0.5, 3).code(), StatusCode::kInvalidArgument);
  // Touching segments are fine.
  EXPECT_TRUE(s.Add(3.0, 4.0, 4).ok());
}

TEST(Script, ManySegmentsBinarySearch) {
  Script<int> s(-1);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(s.Add(i, i + 0.5, i).ok());
  }
  EXPECT_EQ(s.Sample(0.25), 0);
  EXPECT_EQ(s.Sample(500.25), 500);
  EXPECT_EQ(s.Sample(500.75), -1);  // in the gap
  EXPECT_EQ(s.Sample(999.49), 999);
}

TEST(GazeTarget, SentinelsAndParticipants) {
  GazeTarget table{GazeTarget::kTableCenter};
  GazeTarget away{GazeTarget::kAway};
  GazeTarget person{3};
  EXPECT_FALSE(table.IsParticipant());
  EXPECT_FALSE(away.IsParticipant());
  EXPECT_TRUE(person.IsParticipant());
}

TEST(EmotionScript, CarriesIntensity) {
  EmotionScript s(EmotionSample{});
  ASSERT_TRUE(s.Add(0.0, 5.0, {Emotion::kHappy, 0.7}).ok());
  EmotionSample at = s.Sample(2.0);
  EXPECT_EQ(at.emotion, Emotion::kHappy);
  EXPECT_DOUBLE_EQ(at.intensity, 0.7);
  EXPECT_EQ(s.Sample(6.0).emotion, Emotion::kNeutral);
}

}  // namespace
}  // namespace dievent
