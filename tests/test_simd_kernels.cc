// Scalar-vs-SIMD equivalence for every kernel in common/simd.h.
//
// The contract is bit-identical output (memcmp, not tolerance): integer
// kernels are exact by construction, and the float matvec pins a shared
// lane-partitioned summation order (see simd.h). Each kernel is checked
// exhaustively over small sizes — every vector-width boundary, tail
// length, and border case — and with seeded randoms over large,
// unaligned, and odd-tailed inputs.

#include "common/simd.h"

#include <cstring>
#include <vector>

#include "gtest/gtest.h"

namespace dievent {
namespace {

/// Deterministic stream so failures reproduce.
struct XorShift {
  uint32_t s;
  explicit XorShift(uint32_t seed) : s(seed ? seed : 1) {}
  uint32_t Next() {
    s ^= s << 13;
    s ^= s >> 17;
    s ^= s << 5;
    return s;
  }
  uint8_t NextByte() { return static_cast<uint8_t>(Next()); }
  float NextFloat() {  // in [-4, 4), varied exponents
    return static_cast<float>(static_cast<int>(Next() % 8192) - 4096) /
           1024.0f;
  }
};

TEST(SimdSelfCheck, Passes) { EXPECT_TRUE(simd::SelfCheck()); }

TEST(SimdMatVec, ExhaustiveSmallShapes) {
  XorShift rng(7);
  for (int in = 0; in <= 18; ++in) {
    for (int out_n = 0; out_n <= 9; ++out_n) {
      std::vector<float> w(static_cast<size_t>(in) * out_n), bias(out_n),
          x(in);
      for (auto& v : w) v = rng.NextFloat();
      for (auto& v : bias) v = rng.NextFloat();
      for (auto& v : x) v = rng.NextFloat();
      std::vector<float> ref(out_n, -99.0f), got(out_n, 99.0f);
      simd::MatVecScalar(w.data(), bias.data(), x.data(), in, out_n,
                         ref.data());
      simd::MatVec(w.data(), bias.data(), x.data(), in, out_n, got.data());
      ASSERT_EQ(0, std::memcmp(ref.data(), got.data(),
                               out_n * sizeof(float)))
          << "in=" << in << " out=" << out_n;
    }
  }
}

TEST(SimdMatVec, LargeAndTailShapes) {
  XorShift rng(11);
  const int shapes[][2] = {{2124, 48}, {48, 7}, {127, 33}, {129, 5},
                           {1, 100},   {100, 1}, {65, 64}};
  for (const auto& shape : shapes) {
    const int in = shape[0], out_n = shape[1];
    std::vector<float> w(static_cast<size_t>(in) * out_n), bias(out_n),
        x(in);
    for (auto& v : w) v = rng.NextFloat();
    for (auto& v : bias) v = rng.NextFloat();
    for (auto& v : x) v = rng.NextFloat();
    std::vector<float> ref(out_n), got(out_n);
    simd::MatVecScalar(w.data(), bias.data(), x.data(), in, out_n,
                       ref.data());
    simd::MatVec(w.data(), bias.data(), x.data(), in, out_n, got.data());
    EXPECT_EQ(0,
              std::memcmp(ref.data(), got.data(), out_n * sizeof(float)))
        << "in=" << in << " out=" << out_n;
  }
}

TEST(SimdMatVec, UnalignedViews) {
  // Kernel inputs offset by 1..3 floats from a vector-aligned base: the
  // loads must all be unaligned-safe.
  XorShift rng(13);
  const int in = 67, out_n = 6;
  for (int off = 1; off <= 3; ++off) {
    std::vector<float> w(static_cast<size_t>(in) * out_n + off),
        bias(out_n + off), x(in + off);
    for (auto& v : w) v = rng.NextFloat();
    for (auto& v : bias) v = rng.NextFloat();
    for (auto& v : x) v = rng.NextFloat();
    std::vector<float> ref(out_n), got(out_n);
    simd::MatVecScalar(w.data() + off, bias.data() + off, x.data() + off,
                       in, out_n, ref.data());
    simd::MatVec(w.data() + off, bias.data() + off, x.data() + off, in,
                 out_n, got.data());
    EXPECT_EQ(0,
              std::memcmp(ref.data(), got.data(), out_n * sizeof(float)))
        << "offset=" << off;
  }
}

void CheckLbp(int w, int h, uint32_t seed) {
  XorShift rng(seed);
  std::vector<uint8_t> img(static_cast<size_t>(w) * h);
  for (auto& v : img) v = rng.NextByte();
  std::vector<uint8_t> ref(img.size()), got(img.size());
  simd::LbpCodesScalar(img.data(), w, h, ref.data());
  simd::LbpCodes(img.data(), w, h, got.data());
  ASSERT_EQ(0, std::memcmp(ref.data(), got.data(), img.size()))
      << "w=" << w << " h=" << h;
}

TEST(SimdLbp, ExhaustiveSmallSizes) {
  for (int w = 1; w <= 24; ++w) {
    for (int h = 1; h <= 6; ++h) CheckLbp(w, h, 17 + w * 31 + h);
  }
}

TEST(SimdLbp, LargeAndOddSizes) {
  CheckLbp(640, 480, 19);
  CheckLbp(641, 3, 23);   // one past a vector boundary, minimal height
  CheckLbp(48, 48, 29);   // the emotion crop size
  CheckLbp(18, 100, 31);  // narrowest width that takes the vector path
}

TEST(SimdLbp, ConstantAndExtremeImages) {
  for (uint8_t fill : {0, 128, 255}) {
    std::vector<uint8_t> img(static_cast<size_t>(37) * 5, fill);
    std::vector<uint8_t> ref(img.size()), got(img.size());
    simd::LbpCodesScalar(img.data(), 37, 5, ref.data());
    simd::LbpCodes(img.data(), 37, 5, got.data());
    EXPECT_EQ(0, std::memcmp(ref.data(), got.data(), img.size()))
        << "fill=" << static_cast<int>(fill);
  }
}

void CheckIntegralRow(int w, uint32_t seed, uint8_t fill = 0,
                      bool use_fill = false) {
  XorShift rng(seed);
  std::vector<uint8_t> src(w);
  std::vector<uint32_t> prev(w);
  for (auto& v : src) v = use_fill ? fill : rng.NextByte();
  for (auto& v : prev) v = rng.Next() % 1000000;
  std::vector<uint32_t> ref(w, 1), got(w, 2);
  simd::IntegralRowScalar(src.data(), prev.data(), ref.data(), w);
  simd::IntegralRow(src.data(), prev.data(), got.data(), w);
  ASSERT_EQ(0, std::memcmp(ref.data(), got.data(), w * sizeof(uint32_t)))
      << "w=" << w;
}

TEST(SimdIntegralRow, ExhaustiveSmallWidths) {
  for (int w = 1; w <= 40; ++w) CheckIntegralRow(w, 41 + w);
}

TEST(SimdIntegralRow, LargeWidthsAndSaturation) {
  CheckIntegralRow(640, 43);
  CheckIntegralRow(1280, 47);
  CheckIntegralRow(639, 53);  // 16-tail of 15
  // All-255 rows exercise the widest partial sums in the u16 scan.
  CheckIntegralRow(640, 0, 255, true);
}

void CheckColorMasks(size_t n_px, int a_tol, int b_tol, uint32_t seed,
                     int spread = 64) {
  XorShift rng(seed);
  std::vector<uint8_t> rgb(n_px * 3);
  // Narrow value range so the gates actually fire both ways.
  for (auto& v : rgb) {
    v = static_cast<uint8_t>(rng.Next() % (2 * spread) + (128 - spread));
  }
  std::vector<uint8_t> ra(n_px, 9), rb(n_px, 9), ga(n_px, 7), gb(n_px, 7);
  simd::ColorMasks2Scalar(rgb.data(), n_px, 130, 120, 110, a_tol, 70, 60,
                          50, b_tol, ra.data(), rb.data());
  simd::ColorMasks2(rgb.data(), n_px, 130, 120, 110, a_tol, 70, 60, 50,
                    b_tol, ga.data(), gb.data());
  ASSERT_EQ(0, std::memcmp(ra.data(), ga.data(), n_px)) << "n=" << n_px;
  ASSERT_EQ(0, std::memcmp(rb.data(), gb.data(), n_px)) << "n=" << n_px;
}

TEST(SimdColorMasks, ExhaustiveSmallCounts) {
  for (size_t n = 0; n <= 40; ++n) CheckColorMasks(n, 32, 26, 59 + n);
}

TEST(SimdColorMasks, LargeCountsAndTolerances) {
  CheckColorMasks(640 * 480, 32, 26, 61);
  CheckColorMasks(1000, 0, 255, 67);    // degenerate tolerances
  CheckColorMasks(1000, 300, -5, 71);   // clamped / negative tolerances
  CheckColorMasks(1017, 32, 26, 73);    // odd tail
}

void CheckOccupancy(size_t n, uint32_t seed, double density) {
  XorShift rng(seed);
  std::vector<uint8_t> mask(n, 0);
  const uint32_t threshold =
      static_cast<uint32_t>(density * 4294967295.0);
  for (auto& v : mask) v = rng.Next() < threshold ? 1 : 0;
  const size_t chunks = simd::OccupancyEntries(n);
  std::vector<uint8_t> ref(chunks, 9), got(chunks, 7);
  simd::OccupancyMapScalar(mask.data(), n, ref.data());
  simd::OccupancyMap(mask.data(), n, got.data());
  ASSERT_EQ(0, std::memcmp(ref.data(), got.data(), chunks)) << "n=" << n;
}

TEST(SimdOccupancy, ExhaustiveSmallSizes) {
  for (size_t n = 1; n <= 200; ++n) CheckOccupancy(n, 79 + n, 0.05);
}

TEST(SimdOccupancy, LargeAndDensitySweep) {
  for (double density : {0.0, 0.001, 0.5, 1.0}) {
    CheckOccupancy(640 * 480, 83, density);
    CheckOccupancy(640 * 480 + 37, 89, density);  // short last chunk
  }
}

TEST(SimdOccupancy, NonBooleanMaskValues) {
  // Any nonzero byte counts as occupied, not just 1.
  std::vector<uint8_t> mask(130, 0);
  mask[0] = 255;
  mask[129] = 7;
  const size_t chunks = simd::OccupancyEntries(mask.size());
  std::vector<uint8_t> ref(chunks), got(chunks);
  simd::OccupancyMapScalar(mask.data(), mask.size(), ref.data());
  simd::OccupancyMap(mask.data(), mask.size(), got.data());
  EXPECT_EQ(0, std::memcmp(ref.data(), got.data(), chunks));
  EXPECT_EQ(1, ref[0]);
  EXPECT_EQ(0, ref[1]);
  EXPECT_EQ(1, ref[2]);
}

}  // namespace
}  // namespace dievent
