// DurableEventStore: journaled mutations, recovery, checkpoint
// protocol, replay dedup, and failure wedging (metadata/durable_store.h).

#include "metadata/durable_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "io/faulty_file.h"
#include "io/journal.h"
#include "metadata/record_codec.h"

namespace dievent {
namespace {

std::string FreshDir(const std::string& name) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = testing::TempDir() + "/" + name;
  if (fs->Exists(dir)) {
    auto names = fs->ListDir(dir);
    EXPECT_TRUE(names.ok()) << names.status().ToString();
    for (const std::string& n : names.value()) {
      EXPECT_TRUE(fs->Remove(JoinPath(dir, n)).ok());
    }
  }
  return dir;
}

LookAtRecord La(int frame, double t, int n,
                std::vector<std::pair<int, int>> edges) {
  LookAtMatrix m(n);
  for (auto [a, b] : edges) m.Set(a, b, true);
  return LookAtRecord::FromMatrix(frame, t, m);
}

EventContext Ctx() {
  EventContext ctx;
  ctx.event_id = "evt-durable";
  ctx.location = "dining room";
  ctx.date = "2026-08-08";
  ctx.occasion = "dinner";
  ctx.menu = {"soup", "bread"};
  ctx.temperature_c = 20.0;
  ctx.num_participants = 3;
  ctx.participant_names = {"A", "B", "C"};
  ctx.relations.push_back({0, 2, "siblings"});
  return ctx;
}

/// Writes a few of everything through the store. Returns the number of
/// journaled records (= final sequence number on a fresh store).
uint64_t PopulateStore(DurableEventStore* store, int frames) {
  uint64_t n = 0;
  EXPECT_TRUE(store->SetContext(Ctx()).ok());
  ++n;
  EXPECT_TRUE(store->SetFps(10.0).ok());
  ++n;
  for (int f = 0; f < frames; ++f) {
    EXPECT_TRUE(store->AddLookAt(La(f, f * 0.1, 3, {{0, 1}, {1, 0}})).ok());
    ++n;
    EmotionRecord er;
    er.frame = f;
    er.timestamp_s = f * 0.1;
    er.participant = f % 3;
    er.emotion = Emotion::kHappy;
    er.confidence = 0.75;
    EXPECT_TRUE(store->AddEmotion(er).ok());
    ++n;
    OverallEmotionRecord oe;
    oe.frame = f;
    oe.timestamp_s = f * 0.1;
    oe.overall_happiness = 0.4 + 0.01 * f;
    oe.mean_valence = 0.2;
    oe.observed = 3;
    EXPECT_TRUE(store->AddOverallEmotion(oe).ok());
    ++n;
  }
  return n;
}

void ExpectSameState(const MetadataRepository& got,
                     const MetadataRepository& want) {
  EXPECT_EQ(got.context().event_id, want.context().event_id);
  EXPECT_EQ(got.context().participant_names,
            want.context().participant_names);
  EXPECT_EQ(got.fps(), want.fps());
  ASSERT_EQ(got.lookat_records().size(), want.lookat_records().size());
  for (size_t i = 0; i < want.lookat_records().size(); ++i) {
    EXPECT_EQ(got.lookat_records()[i].frame, want.lookat_records()[i].frame);
    EXPECT_EQ(got.lookat_records()[i].cells, want.lookat_records()[i].cells);
  }
  ASSERT_EQ(got.emotion_records().size(), want.emotion_records().size());
  ASSERT_EQ(got.overall_records().size(), want.overall_records().size());
  for (size_t i = 0; i < want.overall_records().size(); ++i) {
    EXPECT_EQ(got.overall_records()[i].overall_happiness,
              want.overall_records()[i].overall_happiness);
  }
  EXPECT_EQ(got.shots().size(), want.shots().size());
  EXPECT_EQ(got.NumScenes(), want.NumScenes());
}

TEST(DurableStore, JournalOnlyStateSurvivesReopen) {
  const std::string dir = FreshDir("store_roundtrip");
  uint64_t appended = 0;
  {
    auto store = DurableEventStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_FALSE(store.value()->recovery().snapshot_loaded);
    appended = PopulateStore(store.value().get(), 4);
    EXPECT_EQ(store.value()->stats().records_appended, appended);
    ASSERT_TRUE(store.value()->Close().ok());
  }
  auto reopened = DurableEventStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const RecoveryInfo& rec = reopened.value()->recovery();
  EXPECT_FALSE(rec.snapshot_loaded);
  EXPECT_EQ(rec.records_replayed, appended);
  EXPECT_EQ(rec.records_deduped, 0u);
  EXPECT_FALSE(rec.tail_truncated);
  EXPECT_EQ(reopened.value()->repository().lookat_records().size(), 4u);
  EXPECT_EQ(reopened.value()->repository().context().event_id,
            "evt-durable");
  EXPECT_EQ(reopened.value()->repository().fps(), 10.0);
}

TEST(DurableStore, CheckpointFoldsJournalIntoSnapshot) {
  const std::string dir = FreshDir("store_checkpoint");
  MetadataRepository want;
  {
    auto store = DurableEventStore::Open(dir);
    ASSERT_TRUE(store.ok());
    PopulateStore(store.value().get(), 3);
    ASSERT_TRUE(store.value()->Checkpoint().ok());
    // Post-checkpoint mutations land in the fresh journal.
    ASSERT_TRUE(
        store.value()->AddLookAt(La(3, 0.3, 3, {{2, 0}})).ok());
    EXPECT_EQ(store.value()->stats().checkpoints, 1u);
    want = store.value()->repository();
    ASSERT_TRUE(store.value()->Close().ok());
  }
  // The old segments were retired: only the snapshot and the one
  // post-checkpoint segment remain.
  FileSystem* fs = FileSystem::Default();
  auto names = fs->ListDir(dir);
  ASSERT_TRUE(names.ok());
  int segments = 0;
  bool snapshot = false;
  for (const std::string& n : names.value()) {
    if (ParseJournalSegmentName(n) >= 0) ++segments;
    if (n == kSnapshotFileName) snapshot = true;
  }
  EXPECT_EQ(segments, 1);
  EXPECT_TRUE(snapshot);

  auto reopened = DurableEventStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const RecoveryInfo& rec = reopened.value()->recovery();
  EXPECT_TRUE(rec.snapshot_loaded);
  EXPECT_EQ(rec.snapshot_version, 2u);
  EXPECT_EQ(rec.records_replayed, 1u);  // only the post-checkpoint record
  EXPECT_EQ(rec.records_deduped, 0u);
  ExpectSameState(reopened.value()->repository(), want);
}

TEST(DurableStore, StaleSegmentsDedupAgainstTheSnapshot) {
  // Crash-mid-checkpoint shape: a snapshot that already folded the
  // whole journal in, with the journal segments still on disk. Every
  // journal record must dedup; none may apply twice.
  const std::string dir = FreshDir("store_dedup");
  MetadataRepository want;
  uint64_t appended = 0;
  {
    auto store = DurableEventStore::Open(dir);
    ASSERT_TRUE(store.ok());
    appended = PopulateStore(store.value().get(), 3);
    want = store.value()->repository();
    ASSERT_TRUE(store.value()->Close().ok());
  }
  // Hand-write the snapshot the checkpoint would have produced, leaving
  // the journal untouched (as if the crash hit before segment removal).
  FileSystem* fs = FileSystem::Default();
  ASSERT_TRUE(
      want.Save(fs, JoinPath(dir, kSnapshotFileName), appended).ok());

  auto reopened = DurableEventStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const RecoveryInfo& rec = reopened.value()->recovery();
  EXPECT_TRUE(rec.snapshot_loaded);
  EXPECT_EQ(rec.snapshot_sequence, appended);
  EXPECT_EQ(rec.records_replayed, 0u);
  EXPECT_EQ(rec.records_deduped, appended);
  ExpectSameState(reopened.value()->repository(), want);
}

TEST(DurableStore, TornTailIsSalvagedTruncatedAndWritableAgain) {
  const std::string dir = FreshDir("store_torn");
  {
    auto store = DurableEventStore::Open(dir);
    ASSERT_TRUE(store.ok());
    PopulateStore(store.value().get(), 2);
    ASSERT_TRUE(store.value()->Close().ok());
  }
  FileSystem* fs = FileSystem::Default();
  const std::string seg = JoinPath(dir, JournalSegmentName(0));
  auto size = fs->FileSize(seg);
  ASSERT_TRUE(size.ok());
  {
    auto f = fs->OpenForAppend(seg);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->Append("torn!").ok());
    ASSERT_TRUE(f.value()->Close().ok());
  }

  auto store = DurableEventStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(store.value()->recovery().tail_truncated);
  EXPECT_EQ(store.value()->recovery().bytes_discarded, 5u);
  // The tail was physically truncated, and the store keeps accepting
  // writes whose sequence continues from the salvaged prefix.
  EXPECT_EQ(fs->FileSize(seg).value(), size.value());
  ASSERT_TRUE(store.value()->AddLookAt(La(2, 0.2, 3, {{0, 2}})).ok());
  ASSERT_TRUE(store.value()->Close().ok());

  auto again = DurableEventStore::Open(dir);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(again.value()->recovery().tail_truncated);
  EXPECT_EQ(again.value()->repository().lookat_records().size(), 3u);
}

/// Hand-frames a store journal payload: [type][seq][body].
std::string StorePayload(uint8_t type, uint64_t seq,
                         const std::string& body) {
  std::string payload;
  BinWriter w(&payload);
  w.U8(type);
  w.U64(seq);
  payload.append(body);
  return payload;
}

TEST(DurableStore, SequenceGapIsCorruptionNotSilence) {
  const std::string dir = FreshDir("store_gap");
  FileSystem* fs = FileSystem::Default();
  ASSERT_TRUE(fs->CreateDir(dir).ok());
  auto writer = JournalWriter::Open(fs, dir, 0, JournalOptions{});
  ASSERT_TRUE(writer.ok());
  std::string fps_body;
  BinWriter(&fps_body).F64(10.0);
  ASSERT_TRUE(writer.value()->Append(StorePayload(5, 1, fps_body)).ok());
  ASSERT_TRUE(writer.value()->Append(StorePayload(5, 3, fps_body)).ok());
  ASSERT_TRUE(writer.value()->Close().ok());

  auto store = DurableEventStore::Open(dir);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kCorruption);
  EXPECT_NE(store.status().message().find("sequence gap"),
            std::string::npos)
      << store.status().ToString();
}

TEST(DurableStore, UnknownRecordTypeIsCorruption) {
  const std::string dir = FreshDir("store_unknown_type");
  FileSystem* fs = FileSystem::Default();
  ASSERT_TRUE(fs->CreateDir(dir).ok());
  auto writer = JournalWriter::Open(fs, dir, 0, JournalOptions{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(StorePayload(99, 1, "???")).ok());
  ASSERT_TRUE(writer.value()->Close().ok());

  auto store = DurableEventStore::Open(dir);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kCorruption);
}

TEST(DurableStore, StrayCheckpointTempIsSweptOnOpen) {
  const std::string dir = FreshDir("store_stray_tmp");
  FileSystem* fs = FileSystem::Default();
  ASSERT_TRUE(fs->CreateDir(dir).ok());
  const std::string stray =
      JoinPath(dir, std::string(kSnapshotFileName) + ".tmp");
  {
    auto f = fs->OpenForWrite(stray);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->Append("half a snapshot").ok());
    ASSERT_TRUE(f.value()->Close().ok());
  }
  auto store = DurableEventStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_FALSE(fs->Exists(stray));
  ASSERT_TRUE(store.value()->Close().ok());
}

TEST(DurableStore, FirstFailureWedgesEveryLaterMutation) {
  const std::string dir = FreshDir("store_wedge");
  FileFaultSpec spec;
  // Enough budget for open + a few records, then the disk dies.
  spec.crash_after_bytes = 220;
  FaultyFileSystem fs(FileSystem::Default(), spec);
  DurableStoreOptions options;
  options.fs = &fs;
  auto store = DurableEventStore::Open(dir, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  uint64_t acked = 0;
  Status first_error = Status::OK();
  for (int f = 0; f < 100; ++f) {
    Status s = store.value()->AddLookAt(La(f, f * 0.1, 2, {{0, 1}}));
    if (!s.ok()) {
      first_error = s;
      break;
    }
    ++acked;
  }
  ASSERT_FALSE(first_error.ok()) << "crash_after_bytes never hit";
  EXPECT_TRUE(fs.crashed());
  EXPECT_FALSE(store.value()->broken().ok());
  // Wedged: later mutations and checkpoints echo the original error.
  EXPECT_EQ(store.value()->AddLookAt(La(100, 10.0, 2, {})).code(),
            first_error.code());
  EXPECT_EQ(store.value()->SetFps(1.0).code(), first_error.code());
  EXPECT_EQ(store.value()->Checkpoint().code(), first_error.code());
  EXPECT_EQ(store.value()->stats().records_appended, acked);

  // Recovery over the real filesystem sees exactly the acked records
  // (the torn append was never acknowledged).
  store.value().reset();
  auto recovered = DurableEventStore::Open(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->repository().lookat_records().size(), acked);
}

/// A three-type batch whose frames continue from `first_frame`.
RecordBatch Batch(int first_frame, int frames) {
  RecordBatch batch;
  for (int i = 0; i < frames; ++i) {
    const int f = first_frame + i;
    batch.lookat.push_back(La(f, f * 0.1, 3, {{0, 1}, {1, 0}}));
    if (f % 2 == 0) {
      EmotionRecord er;
      er.frame = f;
      er.timestamp_s = f * 0.1;
      er.participant = f % 3;
      er.emotion = Emotion::kSurprise;
      er.confidence = 0.6;
      batch.emotions.push_back(er);
    }
    OverallEmotionRecord oe;
    oe.frame = f;
    oe.timestamp_s = f * 0.1;
    oe.overall_happiness = 0.3 + 0.01 * f;
    oe.mean_valence = 0.1;
    oe.observed = 3;
    batch.overall.push_back(oe);
  }
  return batch;
}

TEST(DurableStore, AppendBatchRecoversLikeSerialAdds) {
  // Oracle: the same records applied one by one to a bare repository.
  MetadataRepository want;
  want.SetContext(Ctx());
  want.set_fps(10.0);
  for (int first : {0, 6}) {
    const RecordBatch b = Batch(first, 6);
    for (const auto& r : b.lookat) ASSERT_TRUE(want.AddLookAt(r).ok());
    for (const auto& r : b.emotions) ASSERT_TRUE(want.AddEmotion(r).ok());
    for (const auto& r : b.overall) {
      ASSERT_TRUE(want.AddOverallEmotion(r).ok());
    }
  }

  const std::string dir = FreshDir("store_batch");
  {
    auto store = DurableEventStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->SetContext(Ctx()).ok());
    ASSERT_TRUE(store.value()->SetFps(10.0).ok());
    ASSERT_TRUE(store.value()->AppendBatch(Batch(0, 6)).ok());
    ASSERT_TRUE(store.value()->AppendBatch(Batch(6, 6)).ok());
    ExpectSameState(store.value()->repository(), want);
    ASSERT_TRUE(store.value()->Close().ok());
  }
  // Crash-free reopen replays the batch frames back to the same state.
  auto reopened = DurableEventStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectSameState(reopened.value()->repository(), want);
}

TEST(DurableStore, AppendBatchValidatesUpFrontAndChangesNothing) {
  const std::string dir = FreshDir("store_batch_invalid");
  auto store = DurableEventStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->AppendBatch(Batch(0, 4)).ok());
  const size_t before = store.value()->repository().TotalRecords();
  const uint64_t journaled = store.value()->stats().records_appended;

  // Frame regression inside the batch: rejected whole.
  RecordBatch bad = Batch(4, 2);
  bad.lookat.push_back(La(3, 0.3, 3, {}));
  EXPECT_EQ(store.value()->AppendBatch(bad).code(),
            StatusCode::kFailedPrecondition);
  // Frame regression against already-stored records: also rejected.
  EXPECT_EQ(store.value()->AppendBatch(Batch(1, 2)).code(),
            StatusCode::kFailedPrecondition);
  // A malformed record: rejected without applying the valid prefix.
  RecordBatch malformed = Batch(4, 2);
  malformed.lookat[1].cells.pop_back();
  EXPECT_EQ(store.value()->AppendBatch(malformed).code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(store.value()->repository().TotalRecords(), before);
  EXPECT_EQ(store.value()->stats().records_appended, journaled);
  // An empty batch is an acknowledged no-op.
  EXPECT_TRUE(store.value()->AppendBatch(RecordBatch{}).ok());
  // The store is not wedged: a well-formed batch still lands.
  EXPECT_TRUE(store.value()->AppendBatch(Batch(4, 2)).ok());
  ASSERT_TRUE(store.value()->Close().ok());
}

TEST(DurableStore, LoadStateReadsWithoutDisturbingALiveWriter) {
  const std::string dir = FreshDir("store_loadstate");
  auto store = DurableEventStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->SetContext(Ctx()).ok());
  ASSERT_TRUE(store.value()->AppendBatch(Batch(0, 5)).ok());

  // Read-only recovery while the writer is still open (corpus readers
  // inspecting an unsealed shard).
  auto snapshot = DurableEventStore::LoadState(nullptr, dir);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ExpectSameState(snapshot.value(), store.value()->repository());

  // The writer keeps going afterwards, and LoadState sees the growth.
  ASSERT_TRUE(store.value()->AppendBatch(Batch(5, 3)).ok());
  auto again = DurableEventStore::LoadState(nullptr, dir);
  ASSERT_TRUE(again.ok());
  ExpectSameState(again.value(), store.value()->repository());
  ASSERT_TRUE(store.value()->Close().ok());
}

TEST(DurableStore, MutationsAfterCloseFailCleanly) {
  const std::string dir = FreshDir("store_closed");
  auto store = DurableEventStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->Close().ok());
  EXPECT_EQ(store.value()->SetFps(1.0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.value()->Checkpoint().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(store.value()->Close().ok());  // idempotent
}

}  // namespace
}  // namespace dievent
