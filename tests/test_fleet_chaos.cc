// Fleet chaos drill: ten tenants run concurrently under seeded storage
// faults — one tenant permanently wedged (parked after its error budget
// is spent), one crash-restarted mid-run with a power cut, one flaky
// then healed — and the bulkheads must hold: every healthy or recovered
// tenant's durable state is bit-identical to an uninterrupted solo run
// of the same scene (zero acked-record loss, zero duplicate replay),
// and the wedged tenant's blast radius is exactly itself. Fleet-level
// fsck must report every surviving store clean, flag deliberate damage,
// and repair it.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "fleet/scheduler.h"
#include "io/faulty_file.h"
#include "metadata/durable_store.h"
#include "metadata/fsck.h"
#include "sim/scenario.h"

namespace dievent {
namespace {

/// Empties `dir` and one level of subdirectories (a fleet root holds
/// one flat store directory per tenant). The FileSystem interface has
/// no directory removal, so emptied directories stay behind — harmless,
/// the drill reuses the same tenant names every run.
std::string FreshTree(const std::string& name) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = testing::TempDir() + "/" + name;
  if (!fs->Exists(dir)) return dir;
  auto names = fs->ListDir(dir);
  EXPECT_TRUE(names.ok()) << names.status().ToString();
  for (const std::string& n : names.value()) {
    const std::string path = JoinPath(dir, n);
    auto sub = fs->ListDir(path);
    if (!sub.ok()) {
      EXPECT_TRUE(fs->Remove(path).ok());
      continue;
    }
    for (const std::string& s : sub.value()) {
      EXPECT_TRUE(fs->Remove(JoinPath(path, s)).ok());
    }
  }
  return dir;
}

/// Serializes a repository's logical state: the byte-identity oracle
/// for "recovered exactly the acknowledged records".
std::string StateBytes(const MetadataRepository& repo,
                       const std::string& scratch_name) {
  FileSystem* fs = FileSystem::Default();
  const std::string path = testing::TempDir() + "/" + scratch_name;
  EXPECT_TRUE(repo.Save(fs, path, 0).ok());
  auto data = fs->ReadFile(path);
  EXPECT_TRUE(data.ok());
  EXPECT_TRUE(fs->Remove(path).ok());
  return data.ok() ? data.value() : std::string();
}

constexpr int kTenants = 10;
constexpr int kWedged = 3;  ///< every attempt fails: parked
constexpr int kCrashy = 5;  ///< attempt 0 dies mid-run + power cut
constexpr int kFlaky = 7;   ///< attempt 0 on a lossy disk, then healed

DiningScene TenantScene(int i) {
  return MakeDinnerScenario(3 + i % 3, 2.0, 10.0);
}

std::string TenantName(int i) { return StrFormat("tenant%02d", i); }

JobPriority TenantPriority(int i) {
  if (i == 2 || i == 8) return JobPriority::kLow;
  if (i == 4) return JobPriority::kHigh;
  return JobPriority::kNormal;
}

EventJobSpec BaseSpec(const std::string& name, const DiningScene* scene) {
  EventJobSpec spec;
  spec.name = name;
  spec.scene = scene;
  spec.pipeline.mode = PipelineMode::kGroundTruth;
  spec.pipeline.parse_video = false;
  return spec;
}

/// Uninterrupted in-memory run of one tenant's scene: the ground truth
/// the fleet's durable output must match byte for byte.
MetadataRepository SoloOracle(const DiningScene* scene) {
  EventJobSpec spec = BaseSpec("solo", scene);
  EventJobRunContext ctx;
  ctx.clock = RealClock::Get();
  EventJobResult solo = RunEventJobOnce(spec, ctx);
  EXPECT_TRUE(solo.status.ok()) << solo.status.ToString();
  return std::move(solo.repository);
}

TEST(FleetChaosTest, BulkheadsHoldUnderStorageFaults) {
  FileSystem* fs = FileSystem::Default();
  const std::string root = FreshTree("fleet_chaos");
  // The wedged tenant lives outside the fleet root: its store never
  // becomes consistent, and the fleet-fsck sweep below asserts every
  // *surviving* store is clean.
  const std::string wedged_dir = FreshTree("fleet_chaos_wedged");
  ASSERT_TRUE(fs->CreateDir(root).ok() || fs->Exists(root));

  std::deque<DiningScene> scenes;
  for (int i = 0; i < kTenants; ++i) scenes.push_back(TenantScene(i));

  // Calibrate the crash point from an uninterrupted store-backed run of
  // the crashy tenant's scene: dying after half the journal bytes lands
  // mid-run with at least one durable checkpoint behind it. This
  // measuring run doubles as the crashy tenant's oracle.
  MetadataRepository crashy_oracle;
  long long crashy_total_bytes = 0;
  {
    FaultyFileSystem counting_fs(fs, FileFaultSpec{});  // no faults
    EventJobSpec probe =
        BaseSpec("probe", &scenes[kCrashy]);
    probe.store_dir = FreshTree("fleet_chaos_probe");
    probe.fs_for_attempt = [&counting_fs](int) -> FileSystem* {
      return &counting_fs;
    };
    EventJobRunContext ctx;
    ctx.clock = RealClock::Get();
    ctx.default_checkpoint_every_frames = 4;
    EventJobResult measured = RunEventJobOnce(probe, ctx);
    ASSERT_TRUE(measured.status.ok()) << measured.status.ToString();
    crashy_oracle = std::move(measured.repository);
    crashy_total_bytes = counting_fs.bytes_appended();
    ASSERT_GT(crashy_total_bytes, 0);
  }

  FaultyFileSystem wedged_fs(fs, [] {
    FileFaultSpec spec;
    spec.seed = 11;
    spec.write_error_probability = 1.0;
    return spec;
  }());
  FaultyFileSystem crash_fs(fs, [&] {
    FileFaultSpec spec;
    spec.seed = 12;
    spec.crash_after_bytes = crashy_total_bytes / 2;
    return spec;
  }());
  FaultyFileSystem flaky_fs(fs, [] {
    FileFaultSpec spec;
    spec.seed = 13;
    spec.write_error_probability = 0.15;
    spec.sync_error_probability = 0.05;
    return spec;
  }());
  bool power_cut_done = false;

  SchedulerOptions options;
  options.max_concurrent = 4;
  options.checkpoint_every_frames = 4;
  options.max_attempts = 3;
  EventScheduler scheduler(options);

  std::vector<int> ids;
  for (int i = 0; i < kTenants; ++i) {
    EventJobSpec spec = BaseSpec(TenantName(i), &scenes[i]);
    spec.priority = TenantPriority(i);
    spec.store_dir =
        i == kWedged ? wedged_dir : JoinPath(root, TenantName(i));
    if (i == kWedged) {
      spec.fs_for_attempt = [&wedged_fs](int) -> FileSystem* {
        return &wedged_fs;
      };
    } else if (i == kCrashy) {
      spec.fs_for_attempt = [&crash_fs, &power_cut_done,
                             fs](int attempt) -> FileSystem* {
        if (attempt == 0) return &crash_fs;
        if (!power_cut_done) {
          // Power cut between death and restart: everything the dead
          // writer did not fsync is gone; only acknowledged (= synced)
          // records may be recovered.
          power_cut_done = true;
          EXPECT_TRUE(crash_fs.LoseUnsyncedData().ok());
        }
        return fs;
      };
    } else if (i == kFlaky) {
      spec.fs_for_attempt = [&flaky_fs, fs](int attempt) -> FileSystem* {
        return attempt == 0 ? &flaky_fs : fs;
      };
    }
    ids.push_back(scheduler.Submit(std::move(spec)));
  }

  const Status drained = scheduler.RunUntilDrained();
  // The wedged tenant parks, and only it: the drain reports exactly
  // that, while every other tenant completed.
  EXPECT_FALSE(drained.ok());
  EXPECT_NE(drained.ToString().find(TenantName(kWedged)),
            std::string::npos)
      << drained.ToString();

  FleetStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, kTenants);
  EXPECT_EQ(stats.completed, kTenants - 1);
  EXPECT_EQ(stats.parked, 1);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_FALSE(stats.AllHealthy());

  const JobStats& wedged = stats.jobs[ids[kWedged]];
  EXPECT_EQ(wedged.state, JobState::kParked);
  EXPECT_EQ(wedged.attempts, options.max_attempts);
  EXPECT_FALSE(wedged.last_error.ok());

  const JobStats& crashy = stats.jobs[ids[kCrashy]];
  EXPECT_EQ(crashy.state, JobState::kCompleted);
  EXPECT_EQ(crashy.attempts, 2) << "died once, recovered once";
  EXPECT_TRUE(crash_fs.crashed());
  const EventJobResult* crashy_result = scheduler.result(ids[kCrashy]);
  ASSERT_NE(crashy_result, nullptr);
  EXPECT_GE(crashy_result->report.degradation.resumed_from_frame, 0)
      << "the restart must resume from a durable checkpoint, not redo "
         "the whole event";
  EXPECT_GT(crashy_result->report.degradation.resume_reused_frames, 0);

  const JobStats& flaky = stats.jobs[ids[kFlaky]];
  EXPECT_EQ(flaky.state, JobState::kCompleted);
  EXPECT_GE(flaky.attempts, 2) << "the lossy disk must have bitten";

  // --- zero loss, zero duplicates, bulkheads held ----------------------
  // Reopen every surviving store from disk and compare its recovered
  // state byte-for-byte against an uninterrupted solo run.
  for (int i = 0; i < kTenants; ++i) {
    if (i == kWedged) continue;
    SCOPED_TRACE(TenantName(i));
    MetadataRepository oracle =
        i == kCrashy ? std::move(crashy_oracle) : SoloOracle(&scenes[i]);
    auto reopened =
        DurableEventStore::Open(JoinPath(root, TenantName(i)));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(
        StateBytes(reopened.value()->repository(),
                   StrFormat("chaos_fleet_%02d.dmr", i)),
        StateBytes(oracle, StrFormat("chaos_solo_%02d.dmr", i)));
    EXPECT_TRUE(reopened.value()->Close().ok());
  }

  // --- fleet fsck: clean sweep, then deliberate damage -----------------
  auto sweep = RunFleetFsck(fs, root);
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  EXPECT_EQ(sweep.value().stores.size(),
            static_cast<size_t>(kTenants - 1));
  EXPECT_EQ(sweep.value().damaged, 0) << sweep.value().ToString();
  EXPECT_TRUE(sweep.value().clean());

  // Tear one surviving store's journal tail, as a crashed writer would.
  const std::string victim = JoinPath(root, TenantName(0));
  auto victim_files = fs->ListDir(victim);
  ASSERT_TRUE(victim_files.ok());
  std::string segment;
  for (const std::string& n : victim_files.value()) {
    if (n.rfind("journal", 0) == 0) segment = JoinPath(victim, n);
  }
  ASSERT_FALSE(segment.empty()) << "no journal segment in " << victim;
  {
    auto f = fs->OpenForAppend(segment);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->Append("garbage from a torn write").ok());
    ASSERT_TRUE(f.value()->Close().ok());
  }
  auto damaged = RunFleetFsck(fs, root);
  ASSERT_TRUE(damaged.ok());
  EXPECT_EQ(damaged.value().damaged, 1) << damaged.value().ToString();
  EXPECT_FALSE(damaged.value().clean());
  for (const FleetFsckEntry& entry : damaged.value().stores) {
    EXPECT_EQ(entry.damaged, entry.name == TenantName(0)) << entry.name;
  }

  // Repair heals the fleet: every store verifies, and a fresh verify
  // sweep is clean again.
  FsckOptions repair;
  repair.repair = true;
  auto repaired = RunFleetFsck(fs, root, repair);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired.value().damaged, 0) << repaired.value().ToString();
  EXPECT_TRUE(repaired.value().clean());
  EXPECT_TRUE(RunFleetFsck(fs, root).value().clean());
}

TEST(FleetChaosTest, FleetFsckMissingRootIsAnEnvironmentalError) {
  auto report = RunFleetFsck(FileSystem::Default(),
                             testing::TempDir() + "/fleet_no_such_root");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dievent
