#include "vision/head_pose.h"

#include <gtest/gtest.h>

#include "render/scene_renderer.h"
#include "sim/scenario.h"
#include "vision/face_detector.h"

namespace dievent {
namespace {

TEST(HeadPose, DepthFromRadiusFollowsPinholeModel) {
  CameraModel cam("c", Intrinsics::FromFov(640, 480, DegToRad(70)),
                  Pose::Identity());
  HeadPoseEstimator est;  // default 0.12 m prior
  FaceDetection det;
  det.center_px = {cam.intrinsics().cx, cam.intrinsics().cy};
  det.radius_px = cam.intrinsics().fx * 0.12 / 3.0;  // head at 3 m
  Vec3 p = est.EstimateCameraPosition(cam, det);
  EXPECT_NEAR(p.z, 3.0, 1e-9);
  EXPECT_NEAR(p.x, 0.0, 1e-9);
  EXPECT_NEAR(p.y, 0.0, 1e-9);
}

TEST(HeadPose, OffAxisPositionBackprojects) {
  CameraModel cam("c", Intrinsics::FromFov(640, 480, DegToRad(70)),
                  Pose::Identity());
  HeadPoseEstimator est;
  FaceDetection det;
  det.center_px = {400, 300};
  det.radius_px = cam.intrinsics().fx * 0.12 / 2.0;
  Vec3 p = est.EstimateCameraPosition(cam, det);
  auto back = cam.ProjectCameraPoint(p);
  ASSERT_TRUE(back.has_value());
  EXPECT_NEAR(back->x, 400, 1e-9);
  EXPECT_NEAR(back->y, 300, 1e-9);
  EXPECT_NEAR(p.z, 2.0, 1e-9);
}

TEST(HeadPose, ZeroRadiusGivesZeroDepth) {
  CameraModel cam("c", Intrinsics{}, Pose::Identity());
  HeadPoseEstimator est;
  FaceDetection det;
  det.radius_px = 0;
  EXPECT_EQ(est.EstimateCameraPosition(cam, det).z, 0.0);
}

TEST(HeadPose, WorldPositionOnRenderedScene) {
  // End-to-end: detect rendered heads and recover their 3-D positions
  // within a few centimetres.
  DiningScene scene = MakeMeetingScenario();
  HeadPoseEstimator est;
  FaceDetector det;
  for (int c = 0; c < 4; ++c) {
    ImageRgb frame = RenderViewAt(scene, 10.0, c, RenderOptions{});
    auto states = scene.StateAt(10.0);
    for (const FaceDetection& d : det.Detect(frame)) {
      Vec3 world = est.EstimateWorldPosition(scene.rig().camera(c), d);
      // Must be within 12 cm of *some* ground-truth head.
      double best = 1e9;
      for (const auto& s : states) {
        best = std::min(best, (world - s.head_position).Norm());
      }
      EXPECT_LT(best, 0.12) << "camera " << c;
    }
  }
}

TEST(HeadPose, RadiusPriorScalesDepth) {
  CameraModel cam("c", Intrinsics::FromFov(640, 480, DegToRad(70)),
                  Pose::Identity());
  HeadPoseOptions small;
  small.head_radius_m = 0.06;
  HeadPoseOptions big;
  big.head_radius_m = 0.24;
  FaceDetection det;
  det.center_px = {320, 240};
  det.radius_px = 20;
  double d_small =
      HeadPoseEstimator(small).EstimateCameraPosition(cam, det).z;
  double d_big = HeadPoseEstimator(big).EstimateCameraPosition(cam, det).z;
  EXPECT_NEAR(d_big / d_small, 4.0, 1e-9);
}

}  // namespace
}  // namespace dievent
