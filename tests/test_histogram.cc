#include "image/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dievent {
namespace {

TEST(GrayHistogram, NormalizedAndBinned) {
  ImageU8 img(10, 10);
  img.Fill(0);
  Histogram h = ComputeGrayHistogram(img, 64);
  ASSERT_EQ(h.NumBins(), 64);
  EXPECT_DOUBLE_EQ(h.bins[0], 1.0);
  for (int i = 1; i < 64; ++i) EXPECT_DOUBLE_EQ(h.bins[i], 0.0);
}

TEST(GrayHistogram, SplitsBetweenBins) {
  ImageU8 img(2, 1);
  img.at(0, 0) = 0;
  img.at(1, 0) = 255;
  Histogram h = ComputeGrayHistogram(img, 4);
  EXPECT_DOUBLE_EQ(h.bins[0], 0.5);
  EXPECT_DOUBLE_EQ(h.bins[3], 0.5);
}

TEST(ColorHistogram, JointBinsSumToOne) {
  Rng rng(61);
  ImageRgb img(16, 16, 3);
  for (uint8_t& v : img.data()) v = static_cast<uint8_t>(rng.NextBelow(256));
  Histogram h = ComputeColorHistogram(img, 8);
  ASSERT_EQ(h.NumBins(), 512);
  double total = 0;
  for (double b : h.bins) total += b;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ColorHistogram, SolidColorHitsOneBin) {
  ImageRgb img(4, 4, 3);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) PutRgb(&img, x, y, Rgb{255, 0, 128});
  Histogram h = ComputeColorHistogram(img, 4);
  int nonzero = 0;
  for (double b : h.bins) {
    if (b > 0) ++nonzero;
  }
  EXPECT_EQ(nonzero, 1);
}

TEST(ColorHistogram, SoftBinningStillNormalized) {
  Rng rng(62);
  ImageRgb img(16, 16, 3);
  for (uint8_t& v : img.data()) v = static_cast<uint8_t>(rng.NextBelow(256));
  Histogram h = ComputeColorHistogram(img, 8, /*soft_binning=*/true);
  double total = 0;
  for (double b : h.bins) total += b;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ColorHistogram, SoftBinningSmoothsRamp) {
  // A uniform background brightening by one intensity level per frame:
  // hard binning jumps an entire bin at the 32-level boundary while soft
  // binning moves mass gradually. Measure the worst consecutive-frame
  // chi-square distance across the ramp.
  auto solid = [](uint8_t v) {
    ImageRgb img(16, 16, 3);
    for (int y = 0; y < 16; ++y)
      for (int x = 0; x < 16; ++x) PutRgb(&img, x, y, Rgb{v, v, v});
    return img;
  };
  double worst_hard = 0, worst_soft = 0;
  for (uint8_t v = 24; v < 40; ++v) {
    Histogram ha = ComputeColorHistogram(solid(v), 8, false);
    Histogram hb = ComputeColorHistogram(solid(v + 1), 8, false);
    worst_hard = std::max(worst_hard, ChiSquareDistance(ha, hb));
    Histogram sa = ComputeColorHistogram(solid(v), 8, true);
    Histogram sb = ComputeColorHistogram(solid(v + 1), 8, true);
    worst_soft = std::max(worst_soft, ChiSquareDistance(sa, sb));
  }
  EXPECT_GT(worst_hard, 1.0);   // the full mass jumps bins at 31->32
  EXPECT_LT(worst_soft, 0.05);  // soft binning moves ~3% of mass per step
}

TEST(ColorHistogram, SoftBinningBoundaryValuesClamped) {
  // Extreme channel values (0, 255) must not index out of range.
  ImageRgb img(2, 1, 3);
  PutRgb(&img, 0, 0, Rgb{0, 0, 0});
  PutRgb(&img, 1, 0, Rgb{255, 255, 255});
  Histogram h = ComputeColorHistogram(img, 8, true);
  double total = 0;
  for (double b : h.bins) total += b;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Distances, IdenticalHistogramsScoreZeroAndOne) {
  ImageRgb img(8, 8, 3);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x)
      PutRgb(&img, x, y, Rgb{static_cast<uint8_t>(x * 30), 100, 50});
  Histogram h = ComputeColorHistogram(img, 8);
  EXPECT_DOUBLE_EQ(ChiSquareDistance(h, h), 0.0);
  EXPECT_DOUBLE_EQ(L1Distance(h, h), 0.0);
  EXPECT_NEAR(IntersectionSimilarity(h, h), 1.0, 1e-9);
}

TEST(Distances, DisjointHistogramsAreMaximal) {
  Histogram a, b;
  a.bins = {1.0, 0.0};
  b.bins = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(L1Distance(a, b), 2.0);
  EXPECT_DOUBLE_EQ(IntersectionSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquareDistance(a, b), 2.0);
}

TEST(Distances, SymmetricAndOrdered) {
  Histogram a, b, c;
  a.bins = {0.5, 0.5, 0.0};
  b.bins = {0.4, 0.5, 0.1};
  c.bins = {0.0, 0.2, 0.8};
  EXPECT_DOUBLE_EQ(ChiSquareDistance(a, b), ChiSquareDistance(b, a));
  EXPECT_DOUBLE_EQ(L1Distance(a, b), L1Distance(b, a));
  // b is closer to a than c is.
  EXPECT_LT(ChiSquareDistance(a, b), ChiSquareDistance(a, c));
  EXPECT_LT(L1Distance(a, b), L1Distance(a, c));
  EXPECT_GT(IntersectionSimilarity(a, b), IntersectionSimilarity(a, c));
}

TEST(Distances, SmallShiftSmallerThanSceneChange) {
  // The shot detector's working assumption: small lighting drift produces
  // far smaller distances than a background swap.
  ImageRgb base(32, 32, 3);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) PutRgb(&base, x, y, Rgb{100, 120, 90});
  ImageRgb drift = base;
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x)
      if ((x + y) % 7 == 0) PutRgb(&drift, x, y, Rgb{104, 124, 94});
  ImageRgb changed(32, 32, 3);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) PutRgb(&changed, x, y, Rgb{20, 200, 220});
  Histogram hb = ComputeColorHistogram(base, 8);
  Histogram hd = ComputeColorHistogram(drift, 8);
  Histogram hc = ComputeColorHistogram(changed, 8);
  EXPECT_LT(ChiSquareDistance(hb, hd) * 10, ChiSquareDistance(hb, hc));
}

}  // namespace
}  // namespace dievent
