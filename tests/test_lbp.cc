#include "ml/lbp.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/rng.h"

namespace dievent {
namespace {

TEST(UniformLbpBin, MapsUniformCodesDistinctly) {
  // 0 and 255 (0 transitions) are uniform; 0b01010101 (8 transitions) is
  // not. There are exactly 58 uniform codes mapping to bins [0, 58) and
  // everything else maps to bin 58.
  std::set<int> uniform_bins;
  int nonuniform = 0;
  for (int code = 0; code < 256; ++code) {
    int bin = UniformLbpBin(static_cast<uint8_t>(code));
    ASSERT_GE(bin, 0);
    ASSERT_LT(bin, kUniformLbpBins);
    int transitions = 0;
    for (int b = 0; b < 8; ++b) {
      if (((code >> b) & 1) != ((code >> ((b + 1) % 8)) & 1)) ++transitions;
    }
    if (transitions <= 2) {
      uniform_bins.insert(bin);
      EXPECT_LT(bin, 58);
    } else {
      EXPECT_EQ(bin, 58);
      ++nonuniform;
    }
  }
  EXPECT_EQ(uniform_bins.size(), 58u);
  EXPECT_EQ(nonuniform, 256 - 58);
}

TEST(ComputeLbpCodes, FlatImageIsAllOnes) {
  // Equal neighbours compare >= centre, so a flat image yields code 255.
  ImageU8 img(5, 5);
  img.Fill(100);
  ImageU8 codes = ComputeLbpCodes(img);
  for (uint8_t c : codes.data()) EXPECT_EQ(c, 255);
}

TEST(ComputeLbpCodes, BrightCenterIsZero) {
  ImageU8 img(3, 3);
  img.Fill(10);
  img.at(1, 1) = 200;
  EXPECT_EQ(ComputeLbpCodes(img).at(1, 1), 0);
}

TEST(ComputeLbpCodes, InvariantToMonotoneBrightnessShift) {
  // LBP's selling point: invariance to monotonic illumination changes.
  Rng rng(91);
  ImageU8 a(16, 16);
  for (uint8_t& v : a.data()) v = static_cast<uint8_t>(rng.NextBelow(200));
  ImageU8 b = a;
  for (uint8_t& v : b.data()) v = static_cast<uint8_t>(v + 55);
  EXPECT_TRUE(ComputeLbpCodes(a) == ComputeLbpCodes(b));
}

TEST(LbpHistogram, NormalizedAndSized) {
  Rng rng(92);
  ImageU8 img(20, 20);
  for (uint8_t& v : img.data()) v = static_cast<uint8_t>(rng.NextBelow(256));
  auto h = LbpHistogram(img);
  ASSERT_EQ(h.size(), static_cast<size_t>(kUniformLbpBins));
  float total = std::accumulate(h.begin(), h.end(), 0.0f);
  EXPECT_NEAR(total, 1.0f, 1e-5);
}

TEST(LbpGridFeatures, ConcatenatesPerCellHistograms) {
  Rng rng(93);
  ImageU8 img(24, 24);
  for (uint8_t& v : img.data()) v = static_cast<uint8_t>(rng.NextBelow(256));
  auto f = LbpGridFeatures(img, 4, 3);
  EXPECT_EQ(f.size(), static_cast<size_t>(4 * 3 * kUniformLbpBins));
  // Each cell sums to 1.
  for (int cell = 0; cell < 12; ++cell) {
    float total = 0;
    for (int b = 0; b < kUniformLbpBins; ++b)
      total += f[cell * kUniformLbpBins + b];
    EXPECT_NEAR(total, 1.0f, 1e-5) << cell;
  }
}

TEST(LbpGridFeatures, DistinguishesTextures) {
  // Horizontal stripes vs vertical stripes produce different features.
  ImageU8 horiz(24, 24), vert(24, 24);
  for (int y = 0; y < 24; ++y)
    for (int x = 0; x < 24; ++x) {
      horiz.at(x, y) = (y % 4 < 2) ? 200 : 30;
      vert.at(x, y) = (x % 4 < 2) ? 200 : 30;
    }
  auto fh = LbpGridFeatures(horiz, 2, 2);
  auto fv = LbpGridFeatures(vert, 2, 2);
  double dist = 0;
  for (size_t i = 0; i < fh.size(); ++i) dist += std::abs(fh[i] - fv[i]);
  EXPECT_GT(dist, 0.5);
}

TEST(LbpGridFeatures, GridOneEqualsWholeHistogram) {
  Rng rng(94);
  ImageU8 img(17, 19);
  for (uint8_t& v : img.data()) v = static_cast<uint8_t>(rng.NextBelow(256));
  auto whole = LbpHistogram(img);
  auto grid = LbpGridFeatures(img, 1, 1);
  ASSERT_EQ(whole.size(), grid.size());
  for (size_t i = 0; i < whole.size(); ++i)
    EXPECT_NEAR(whole[i], grid[i], 1e-6);
}

}  // namespace
}  // namespace dievent
