#include "geometry/quaternion.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dievent {
namespace {

void ExpectVecNear(const Vec3& a, const Vec3& b, double tol = 1e-10) {
  EXPECT_NEAR(a.x, b.x, tol);
  EXPECT_NEAR(a.y, b.y, tol);
  EXPECT_NEAR(a.z, b.z, tol);
}

TEST(Quaternion, IdentityRotatesNothing) {
  Quaternion q = Quaternion::Identity();
  ExpectVecNear(q.Rotate({1, 2, 3}), {1, 2, 3});
}

TEST(Quaternion, AxisAngleQuarterTurnZ) {
  Quaternion q = Quaternion::FromAxisAngle({0, 0, 1}, DegToRad(90));
  ExpectVecNear(q.Rotate({1, 0, 0}), {0, 1, 0});
}

TEST(Quaternion, RotateAgreesWithMatrix) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    Vec3 axis{rng.Uniform(-1, 1), rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    if (axis.Norm() < 1e-6) continue;
    double angle = rng.Uniform(-3.1, 3.1);
    Quaternion q = Quaternion::FromAxisAngle(axis, angle);
    Mat3 m = q.ToMatrix();
    Vec3 v{rng.Uniform(-2, 2), rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
    ExpectVecNear(q.Rotate(v), m * v, 1e-9);
  }
}

TEST(Quaternion, MatrixRoundTrip) {
  Rng rng(18);
  for (int i = 0; i < 50; ++i) {
    Vec3 axis{rng.Uniform(-1, 1), rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    if (axis.Norm() < 1e-6) continue;
    Quaternion q = Quaternion::FromAxisAngle(axis, rng.Uniform(-3, 3));
    Quaternion q2 = Quaternion::FromMatrix(q.ToMatrix());
    // q and -q encode the same rotation; compare their action.
    Vec3 v{1, -2, 0.5};
    ExpectVecNear(q.Rotate(v), q2.Rotate(v), 1e-9);
  }
}

TEST(Quaternion, CompositionMatchesSequentialRotation) {
  Quaternion qa = Quaternion::FromAxisAngle({0, 0, 1}, DegToRad(90));
  Quaternion qb = Quaternion::FromAxisAngle({1, 0, 0}, DegToRad(90));
  Vec3 v{0, 1, 0};
  ExpectVecNear((qa * qb).Rotate(v), qa.Rotate(qb.Rotate(v)));
}

TEST(Quaternion, ConjugateInverts) {
  Quaternion q = Quaternion::FromAxisAngle({1, 2, 3}, 0.8);
  Vec3 v{4, 5, 6};
  ExpectVecNear(q.Conjugate().Rotate(q.Rotate(v)), v, 1e-9);
}

TEST(Quaternion, NormalizedHasUnitNorm) {
  Quaternion q{3, 4, 0, 0};
  EXPECT_NEAR(q.Normalized().Norm(), 1.0, 1e-12);
  // Zero quaternion normalizes to identity instead of NaN.
  Quaternion z{0, 0, 0, 0};
  EXPECT_NEAR(z.Normalized().w, 1.0, 1e-12);
}

TEST(Quaternion, SlerpEndpoints) {
  Quaternion a = Quaternion::Identity();
  Quaternion b = Quaternion::FromAxisAngle({0, 0, 1}, DegToRad(90));
  Vec3 v{1, 0, 0};
  ExpectVecNear(Quaternion::Slerp(a, b, 0.0).Rotate(v), v, 1e-9);
  ExpectVecNear(Quaternion::Slerp(a, b, 1.0).Rotate(v), {0, 1, 0}, 1e-9);
}

TEST(Quaternion, SlerpHalfwayIsHalfAngle) {
  Quaternion a = Quaternion::Identity();
  Quaternion b = Quaternion::FromAxisAngle({0, 0, 1}, DegToRad(90));
  Quaternion mid = Quaternion::Slerp(a, b, 0.5);
  Vec3 v = mid.Rotate({1, 0, 0});
  EXPECT_NEAR(RadToDeg(AngleBetween(v, {1, 0, 0})), 45.0, 1e-6);
}

TEST(Quaternion, SlerpNearlyParallelStable) {
  Quaternion a = Quaternion::Identity();
  Quaternion b = Quaternion::FromAxisAngle({0, 0, 1}, 1e-7);
  Quaternion mid = Quaternion::Slerp(a, b, 0.5);
  EXPECT_NEAR(mid.Norm(), 1.0, 1e-12);
}

TEST(Quaternion, FromYawPitchRollYawOnly) {
  Quaternion q = Quaternion::FromYawPitchRoll(DegToRad(90), 0, 0);
  ExpectVecNear(q.Rotate({1, 0, 0}), {0, 1, 0}, 1e-9);
}

}  // namespace
}  // namespace dievent
