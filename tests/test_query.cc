// Tests for the query vocabulary over the metadata repository — the
// paper's "querying scenes w.r.t. a particular context".

#include "metadata/query.h"

#include <gtest/gtest.h>

namespace dievent {
namespace {

LookAtRecord Rec(int frame, double t, int n,
                 std::vector<std::pair<int, int>> edges) {
  LookAtMatrix m(n);
  for (auto [a, b] : edges) m.Set(a, b, true);
  return LookAtRecord::FromMatrix(frame, t, m);
}

/// 10 frames at 10 fps: P1<->P2 EC in frames 2-5; P3 watches P1 in 4-9;
/// P1 is happy in frames 0-4; overall happiness ramps 0.0 .. 0.9.
MetadataRepository DemoRepo() {
  MetadataRepository repo;
  repo.set_fps(10.0);
  for (int f = 0; f < 10; ++f) {
    std::vector<std::pair<int, int>> edges;
    if (f >= 2 && f <= 5) {
      edges.push_back({0, 1});
      edges.push_back({1, 0});
    }
    if (f >= 4) edges.push_back({2, 0});
    EXPECT_TRUE(repo.AddLookAt(Rec(f, f / 10.0, 3, edges)).ok());
    if (f <= 4) {
      EmotionRecord er;
      er.frame = f;
      er.timestamp_s = f / 10.0;
      er.participant = 0;
      er.emotion = Emotion::kHappy;
      er.confidence = 1.0;
      EXPECT_TRUE(repo.AddEmotion(er).ok());
    }
    OverallEmotionRecord oe;
    oe.frame = f;
    oe.timestamp_s = f / 10.0;
    oe.overall_happiness = f * 0.1;
    oe.mean_valence = f * 0.1 - 0.5;
    oe.observed = 3;
    EXPECT_TRUE(repo.AddOverallEmotion(oe).ok());
  }
  // Two shots [0,6) and [6,10) in two scenes.
  VideoStructure vs;
  vs.num_frames = 10;
  vs.fps = 10.0;
  SceneSegment s1, s2;
  s1.shots.push_back(Shot{0, 6, {0}});
  s2.shots.push_back(Shot{6, 10, {6}});
  vs.scenes = {s1, s2};
  repo.SetVideoStructure(vs);
  return repo;
}

TEST(Query, UnconstrainedReturnsEveryFrame) {
  MetadataRepository repo = DemoRepo();
  EXPECT_EQ(Query(&repo).Execute().size(), 10u);
}

TEST(Query, TimeRangeFilters) {
  MetadataRepository repo = DemoRepo();
  auto frames = Query(&repo).TimeRange(0.3, 0.7).Execute();
  ASSERT_EQ(frames.size(), 4u);  // t = 0.3, 0.4, 0.5, 0.6
  EXPECT_EQ(frames.front().frame, 3);
  EXPECT_EQ(frames.back().frame, 6);
}

TEST(Query, LookingPredicate) {
  MetadataRepository repo = DemoRepo();
  auto frames = Query(&repo).Looking(2, 0).Execute();
  EXPECT_EQ(frames.size(), 6u);  // frames 4..9
  EXPECT_TRUE(Query(&repo).Looking(1, 2).Execute().empty());
}

TEST(Query, EyeContactRequiresMutual) {
  MetadataRepository repo = DemoRepo();
  auto frames = Query(&repo).EyeContact(0, 1).Execute();
  EXPECT_EQ(frames.size(), 4u);  // frames 2..5
  // Order of the pair does not matter.
  EXPECT_EQ(Query(&repo).EyeContact(1, 0).Execute().size(), 4u);
  EXPECT_TRUE(Query(&repo).EyeContact(0, 2).Execute().empty());
}

TEST(Query, FeelingPredicateJoinsEmotions) {
  MetadataRepository repo = DemoRepo();
  auto frames = Query(&repo).Feeling(0, Emotion::kHappy).Execute();
  EXPECT_EQ(frames.size(), 5u);  // frames 0..4
  EXPECT_TRUE(Query(&repo).Feeling(1, Emotion::kHappy).Execute().empty());
  EXPECT_TRUE(Query(&repo).Feeling(0, Emotion::kSad).Execute().empty());
}

TEST(Query, OverallHappinessThreshold) {
  MetadataRepository repo = DemoRepo();
  auto frames = Query(&repo).MinOverallHappiness(0.65).Execute();
  EXPECT_EQ(frames.size(), 3u);  // frames 7, 8, 9
  auto valence = Query(&repo).MinValence(0.35).Execute();
  EXPECT_EQ(valence.size(), 1u);  // frame 9 (0.4)
}

TEST(Query, AnyoneLookingAtAttention) {
  MetadataRepository repo = DemoRepo();
  // P1 receives attention from P2 (2-5) or P3 (4-9): frames 2..9.
  EXPECT_EQ(Query(&repo).AnyoneLookingAt(0).Execute().size(), 8u);
  // Nobody ever looks at P3.
  EXPECT_TRUE(Query(&repo).AnyoneLookingAt(2).Execute().empty());
}

TEST(Query, ConjunctionOfPredicates) {
  MetadataRepository repo = DemoRepo();
  auto frames = Query(&repo)
                    .EyeContact(0, 1)
                    .Feeling(0, Emotion::kHappy)
                    .Execute();
  EXPECT_EQ(frames.size(), 3u);  // frames 2, 3, 4
  auto narrowed = Query(&repo)
                      .EyeContact(0, 1)
                      .Feeling(0, Emotion::kHappy)
                      .TimeRange(0.3, 10.0)
                      .Execute();
  EXPECT_EQ(narrowed.size(), 2u);  // frames 3, 4
}

TEST(Query, OutOfRangeParticipantsMatchNothing) {
  MetadataRepository repo = DemoRepo();
  EXPECT_TRUE(Query(&repo).Looking(7, 0).Execute().empty());
  EXPECT_TRUE(Query(&repo).EyeContact(0, 9).Execute().empty());
  EXPECT_TRUE(Query(&repo).AnyoneLookingAt(-1).Execute().empty());
}

TEST(Query, ShotRollupUsesCoverage) {
  MetadataRepository repo = DemoRepo();
  // EC(0,1) matches frames 2-5, all inside shot [0,6): coverage 4/6.
  auto shots = Query(&repo).EyeContact(0, 1).ExecuteShots(0.5);
  ASSERT_EQ(shots.size(), 1u);
  EXPECT_EQ(shots[0].begin_frame, 0);
  EXPECT_NEAR(shots[0].coverage, 4.0 / 6.0, 1e-9);
  EXPECT_TRUE(
      Query(&repo).EyeContact(0, 1).ExecuteShots(0.9).empty());
}

TEST(Query, SceneRollupFindsAttentionScene) {
  MetadataRepository repo = DemoRepo();
  // "Scenes where someone looks at P1": scene 0 covers frames 2-5 of 6
  // (0.67), scene 1 covers 6-9 of 4 (1.0).
  auto scenes = Query(&repo).AnyoneLookingAt(0).ExecuteScenes(0.9);
  ASSERT_EQ(scenes.size(), 1u);
  EXPECT_EQ(scenes[0].index, 1);
  auto both = Query(&repo).AnyoneLookingAt(0).ExecuteScenes(0.5);
  EXPECT_EQ(both.size(), 2u);
}

}  // namespace
}  // namespace dievent
