# Empty compiler generated dependencies file for test_emotion_recognizer.
# This may be replaced when dependencies are built.
