file(REMOVE_RECURSE
  "CMakeFiles/test_emotion_recognizer.dir/test_emotion_recognizer.cc.o"
  "CMakeFiles/test_emotion_recognizer.dir/test_emotion_recognizer.cc.o.d"
  "test_emotion_recognizer"
  "test_emotion_recognizer.pdb"
  "test_emotion_recognizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emotion_recognizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
