file(REMOVE_RECURSE
  "CMakeFiles/test_overall_emotion.dir/test_overall_emotion.cc.o"
  "CMakeFiles/test_overall_emotion.dir/test_overall_emotion.cc.o.d"
  "test_overall_emotion"
  "test_overall_emotion.pdb"
  "test_overall_emotion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overall_emotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
