# Empty compiler generated dependencies file for test_overall_emotion.
# This may be replaced when dependencies are built.
