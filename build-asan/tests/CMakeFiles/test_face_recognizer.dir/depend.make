# Empty dependencies file for test_face_recognizer.
# This may be replaced when dependencies are built.
