file(REMOVE_RECURSE
  "CMakeFiles/test_face_recognizer.dir/test_face_recognizer.cc.o"
  "CMakeFiles/test_face_recognizer.dir/test_face_recognizer.cc.o.d"
  "test_face_recognizer"
  "test_face_recognizer.pdb"
  "test_face_recognizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_face_recognizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
