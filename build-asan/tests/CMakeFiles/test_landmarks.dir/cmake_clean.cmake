file(REMOVE_RECURSE
  "CMakeFiles/test_landmarks.dir/test_landmarks.cc.o"
  "CMakeFiles/test_landmarks.dir/test_landmarks.cc.o.d"
  "test_landmarks"
  "test_landmarks.pdb"
  "test_landmarks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_landmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
