# Empty compiler generated dependencies file for test_landmarks.
# This may be replaced when dependencies are built.
