file(REMOVE_RECURSE
  "CMakeFiles/test_resize.dir/test_resize.cc.o"
  "CMakeFiles/test_resize.dir/test_resize.cc.o.d"
  "test_resize"
  "test_resize.pdb"
  "test_resize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
