# Empty compiler generated dependencies file for test_eye_contact.
# This may be replaced when dependencies are built.
