file(REMOVE_RECURSE
  "CMakeFiles/test_eye_contact.dir/test_eye_contact.cc.o"
  "CMakeFiles/test_eye_contact.dir/test_eye_contact.cc.o.d"
  "test_eye_contact"
  "test_eye_contact.pdb"
  "test_eye_contact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eye_contact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
