file(REMOVE_RECURSE
  "CMakeFiles/test_draw.dir/test_draw.cc.o"
  "CMakeFiles/test_draw.dir/test_draw.cc.o.d"
  "test_draw"
  "test_draw.pdb"
  "test_draw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_draw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
