file(REMOVE_RECURSE
  "CMakeFiles/test_head_pose.dir/test_head_pose.cc.o"
  "CMakeFiles/test_head_pose.dir/test_head_pose.cc.o.d"
  "test_head_pose"
  "test_head_pose.pdb"
  "test_head_pose[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_head_pose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
