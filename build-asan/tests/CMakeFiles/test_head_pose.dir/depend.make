# Empty dependencies file for test_head_pose.
# This may be replaced when dependencies are built.
