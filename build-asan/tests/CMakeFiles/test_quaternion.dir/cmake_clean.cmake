file(REMOVE_RECURSE
  "CMakeFiles/test_quaternion.dir/test_quaternion.cc.o"
  "CMakeFiles/test_quaternion.dir/test_quaternion.cc.o.d"
  "test_quaternion"
  "test_quaternion.pdb"
  "test_quaternion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quaternion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
