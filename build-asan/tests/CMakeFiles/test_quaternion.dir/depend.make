# Empty dependencies file for test_quaternion.
# This may be replaced when dependencies are built.
