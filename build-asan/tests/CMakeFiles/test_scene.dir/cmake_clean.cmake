file(REMOVE_RECURSE
  "CMakeFiles/test_scene.dir/test_scene.cc.o"
  "CMakeFiles/test_scene.dir/test_scene.cc.o.d"
  "test_scene"
  "test_scene.pdb"
  "test_scene[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
