file(REMOVE_RECURSE
  "CMakeFiles/test_lbp.dir/test_lbp.cc.o"
  "CMakeFiles/test_lbp.dir/test_lbp.cc.o.d"
  "test_lbp"
  "test_lbp.pdb"
  "test_lbp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
