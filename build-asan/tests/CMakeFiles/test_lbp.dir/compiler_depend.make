# Empty compiler generated dependencies file for test_lbp.
# This may be replaced when dependencies are built.
