# Empty dependencies file for test_pnm.
# This may be replaced when dependencies are built.
