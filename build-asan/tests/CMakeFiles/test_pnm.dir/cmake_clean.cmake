file(REMOVE_RECURSE
  "CMakeFiles/test_pnm.dir/test_pnm.cc.o"
  "CMakeFiles/test_pnm.dir/test_pnm.cc.o.d"
  "test_pnm"
  "test_pnm.pdb"
  "test_pnm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pnm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
