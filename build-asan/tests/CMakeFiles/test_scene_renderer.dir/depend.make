# Empty dependencies file for test_scene_renderer.
# This may be replaced when dependencies are built.
