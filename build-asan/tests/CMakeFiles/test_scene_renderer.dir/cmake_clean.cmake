file(REMOVE_RECURSE
  "CMakeFiles/test_scene_renderer.dir/test_scene_renderer.cc.o"
  "CMakeFiles/test_scene_renderer.dir/test_scene_renderer.cc.o.d"
  "test_scene_renderer"
  "test_scene_renderer.pdb"
  "test_scene_renderer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scene_renderer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
