file(REMOVE_RECURSE
  "CMakeFiles/test_scene_config.dir/test_scene_config.cc.o"
  "CMakeFiles/test_scene_config.dir/test_scene_config.cc.o.d"
  "test_scene_config"
  "test_scene_config.pdb"
  "test_scene_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scene_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
