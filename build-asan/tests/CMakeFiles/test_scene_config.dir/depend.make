# Empty dependencies file for test_scene_config.
# This may be replaced when dependencies are built.
