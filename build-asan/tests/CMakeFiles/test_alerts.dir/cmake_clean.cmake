file(REMOVE_RECURSE
  "CMakeFiles/test_alerts.dir/test_alerts.cc.o"
  "CMakeFiles/test_alerts.dir/test_alerts.cc.o.d"
  "test_alerts"
  "test_alerts.pdb"
  "test_alerts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alerts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
