# Empty dependencies file for test_alerts.
# This may be replaced when dependencies are built.
