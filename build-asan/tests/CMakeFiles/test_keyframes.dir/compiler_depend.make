# Empty compiler generated dependencies file for test_keyframes.
# This may be replaced when dependencies are built.
