file(REMOVE_RECURSE
  "CMakeFiles/test_keyframes.dir/test_keyframes.cc.o"
  "CMakeFiles/test_keyframes.dir/test_keyframes.cc.o.d"
  "test_keyframes"
  "test_keyframes.pdb"
  "test_keyframes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keyframes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
