# Empty compiler generated dependencies file for test_lookat.
# This may be replaced when dependencies are built.
