file(REMOVE_RECURSE
  "CMakeFiles/test_lookat.dir/test_lookat.cc.o"
  "CMakeFiles/test_lookat.dir/test_lookat.cc.o.d"
  "test_lookat"
  "test_lookat.pdb"
  "test_lookat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lookat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
