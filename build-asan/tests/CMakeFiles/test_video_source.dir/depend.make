# Empty dependencies file for test_video_source.
# This may be replaced when dependencies are built.
