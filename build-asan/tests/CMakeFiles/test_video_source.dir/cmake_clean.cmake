file(REMOVE_RECURSE
  "CMakeFiles/test_video_source.dir/test_video_source.cc.o"
  "CMakeFiles/test_video_source.dir/test_video_source.cc.o.d"
  "test_video_source"
  "test_video_source.pdb"
  "test_video_source[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_video_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
