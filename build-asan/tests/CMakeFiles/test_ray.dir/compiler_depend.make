# Empty compiler generated dependencies file for test_ray.
# This may be replaced when dependencies are built.
