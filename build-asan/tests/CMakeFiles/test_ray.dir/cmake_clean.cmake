file(REMOVE_RECURSE
  "CMakeFiles/test_ray.dir/test_ray.cc.o"
  "CMakeFiles/test_ray.dir/test_ray.cc.o.d"
  "test_ray"
  "test_ray.pdb"
  "test_ray[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
