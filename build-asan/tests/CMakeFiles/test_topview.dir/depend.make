# Empty dependencies file for test_topview.
# This may be replaced when dependencies are built.
