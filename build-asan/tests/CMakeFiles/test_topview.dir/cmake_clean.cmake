file(REMOVE_RECURSE
  "CMakeFiles/test_topview.dir/test_topview.cc.o"
  "CMakeFiles/test_topview.dir/test_topview.cc.o.d"
  "test_topview"
  "test_topview.pdb"
  "test_topview[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
