file(REMOVE_RECURSE
  "CMakeFiles/test_event_collection.dir/test_event_collection.cc.o"
  "CMakeFiles/test_event_collection.dir/test_event_collection.cc.o.d"
  "test_event_collection"
  "test_event_collection.pdb"
  "test_event_collection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
