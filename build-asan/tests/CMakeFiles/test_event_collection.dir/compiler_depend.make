# Empty compiler generated dependencies file for test_event_collection.
# This may be replaced when dependencies are built.
