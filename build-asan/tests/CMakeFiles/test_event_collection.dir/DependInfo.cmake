
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_event_collection.cc" "tests/CMakeFiles/test_event_collection.dir/test_event_collection.cc.o" "gcc" "tests/CMakeFiles/test_event_collection.dir/test_event_collection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/dievent_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/metadata/CMakeFiles/dievent_metadata.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/analysis/CMakeFiles/dievent_analysis.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ml/CMakeFiles/dievent_ml.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/vision/CMakeFiles/dievent_vision.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/video/CMakeFiles/dievent_video.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/render/CMakeFiles/dievent_render.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/dievent_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/image/CMakeFiles/dievent_image.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/geometry/CMakeFiles/dievent_geometry.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/dievent_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
