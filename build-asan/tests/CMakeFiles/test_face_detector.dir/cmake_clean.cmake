file(REMOVE_RECURSE
  "CMakeFiles/test_face_detector.dir/test_face_detector.cc.o"
  "CMakeFiles/test_face_detector.dir/test_face_detector.cc.o.d"
  "test_face_detector"
  "test_face_detector.pdb"
  "test_face_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_face_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
