# Empty dependencies file for test_face_detector.
# This may be replaced when dependencies are built.
