# Empty compiler generated dependencies file for test_summarization.
# This may be replaced when dependencies are built.
