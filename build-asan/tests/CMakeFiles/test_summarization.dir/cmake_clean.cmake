file(REMOVE_RECURSE
  "CMakeFiles/test_summarization.dir/test_summarization.cc.o"
  "CMakeFiles/test_summarization.dir/test_summarization.cc.o.d"
  "test_summarization"
  "test_summarization.pdb"
  "test_summarization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_summarization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
