file(REMOVE_RECURSE
  "CMakeFiles/test_neural_net.dir/test_neural_net.cc.o"
  "CMakeFiles/test_neural_net.dir/test_neural_net.cc.o.d"
  "test_neural_net"
  "test_neural_net.pdb"
  "test_neural_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neural_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
