# Empty dependencies file for test_neural_net.
# This may be replaced when dependencies are built.
