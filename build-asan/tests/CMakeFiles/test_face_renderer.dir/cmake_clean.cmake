file(REMOVE_RECURSE
  "CMakeFiles/test_face_renderer.dir/test_face_renderer.cc.o"
  "CMakeFiles/test_face_renderer.dir/test_face_renderer.cc.o.d"
  "test_face_renderer"
  "test_face_renderer.pdb"
  "test_face_renderer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_face_renderer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
