# Empty compiler generated dependencies file for test_face_renderer.
# This may be replaced when dependencies are built.
