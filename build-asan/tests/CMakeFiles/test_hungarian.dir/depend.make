# Empty dependencies file for test_hungarian.
# This may be replaced when dependencies are built.
