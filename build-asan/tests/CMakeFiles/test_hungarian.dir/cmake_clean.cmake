file(REMOVE_RECURSE
  "CMakeFiles/test_hungarian.dir/test_hungarian.cc.o"
  "CMakeFiles/test_hungarian.dir/test_hungarian.cc.o.d"
  "test_hungarian"
  "test_hungarian.pdb"
  "test_hungarian[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hungarian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
