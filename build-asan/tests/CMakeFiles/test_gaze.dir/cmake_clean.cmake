file(REMOVE_RECURSE
  "CMakeFiles/test_gaze.dir/test_gaze.cc.o"
  "CMakeFiles/test_gaze.dir/test_gaze.cc.o.d"
  "test_gaze"
  "test_gaze.pdb"
  "test_gaze[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gaze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
