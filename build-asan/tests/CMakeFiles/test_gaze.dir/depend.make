# Empty dependencies file for test_gaze.
# This may be replaced when dependencies are built.
