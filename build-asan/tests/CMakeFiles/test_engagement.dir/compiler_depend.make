# Empty compiler generated dependencies file for test_engagement.
# This may be replaced when dependencies are built.
