file(REMOVE_RECURSE
  "CMakeFiles/test_engagement.dir/test_engagement.cc.o"
  "CMakeFiles/test_engagement.dir/test_engagement.cc.o.d"
  "test_engagement"
  "test_engagement.pdb"
  "test_engagement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engagement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
