file(REMOVE_RECURSE
  "CMakeFiles/test_hmm.dir/test_hmm.cc.o"
  "CMakeFiles/test_hmm.dir/test_hmm.cc.o.d"
  "test_hmm"
  "test_hmm.pdb"
  "test_hmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
