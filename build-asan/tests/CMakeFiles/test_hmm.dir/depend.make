# Empty dependencies file for test_hmm.
# This may be replaced when dependencies are built.
