file(REMOVE_RECURSE
  "CMakeFiles/test_scene_segmentation.dir/test_scene_segmentation.cc.o"
  "CMakeFiles/test_scene_segmentation.dir/test_scene_segmentation.cc.o.d"
  "test_scene_segmentation"
  "test_scene_segmentation.pdb"
  "test_scene_segmentation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scene_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
