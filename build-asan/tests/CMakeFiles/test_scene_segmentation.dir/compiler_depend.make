# Empty compiler generated dependencies file for test_scene_segmentation.
# This may be replaced when dependencies are built.
