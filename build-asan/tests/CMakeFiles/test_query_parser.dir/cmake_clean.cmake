file(REMOVE_RECURSE
  "CMakeFiles/test_query_parser.dir/test_query_parser.cc.o"
  "CMakeFiles/test_query_parser.dir/test_query_parser.cc.o.d"
  "test_query_parser"
  "test_query_parser.pdb"
  "test_query_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
