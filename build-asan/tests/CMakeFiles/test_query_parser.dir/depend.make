# Empty dependencies file for test_query_parser.
# This may be replaced when dependencies are built.
