# Empty compiler generated dependencies file for test_integral.
# This may be replaced when dependencies are built.
