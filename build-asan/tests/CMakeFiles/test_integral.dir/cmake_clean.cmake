file(REMOVE_RECURSE
  "CMakeFiles/test_integral.dir/test_integral.cc.o"
  "CMakeFiles/test_integral.dir/test_integral.cc.o.d"
  "test_integral"
  "test_integral.pdb"
  "test_integral[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
