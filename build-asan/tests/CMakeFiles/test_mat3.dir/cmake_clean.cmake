file(REMOVE_RECURSE
  "CMakeFiles/test_mat3.dir/test_mat3.cc.o"
  "CMakeFiles/test_mat3.dir/test_mat3.cc.o.d"
  "test_mat3"
  "test_mat3.pdb"
  "test_mat3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mat3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
