# Empty dependencies file for test_mat3.
# This may be replaced when dependencies are built.
