# Empty dependencies file for test_frame_analyzer.
# This may be replaced when dependencies are built.
