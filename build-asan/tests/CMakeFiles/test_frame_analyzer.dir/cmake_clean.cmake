file(REMOVE_RECURSE
  "CMakeFiles/test_frame_analyzer.dir/test_frame_analyzer.cc.o"
  "CMakeFiles/test_frame_analyzer.dir/test_frame_analyzer.cc.o.d"
  "test_frame_analyzer"
  "test_frame_analyzer.pdb"
  "test_frame_analyzer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frame_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
