file(REMOVE_RECURSE
  "CMakeFiles/test_records.dir/test_records.cc.o"
  "CMakeFiles/test_records.dir/test_records.cc.o.d"
  "test_records"
  "test_records.pdb"
  "test_records[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
