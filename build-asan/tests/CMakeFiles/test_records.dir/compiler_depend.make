# Empty compiler generated dependencies file for test_records.
# This may be replaced when dependencies are built.
