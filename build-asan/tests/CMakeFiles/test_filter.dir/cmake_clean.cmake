file(REMOVE_RECURSE
  "CMakeFiles/test_filter.dir/test_filter.cc.o"
  "CMakeFiles/test_filter.dir/test_filter.cc.o.d"
  "test_filter"
  "test_filter.pdb"
  "test_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
