# Empty compiler generated dependencies file for test_shot_detection.
# This may be replaced when dependencies are built.
