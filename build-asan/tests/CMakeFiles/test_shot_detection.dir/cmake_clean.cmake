file(REMOVE_RECURSE
  "CMakeFiles/test_shot_detection.dir/test_shot_detection.cc.o"
  "CMakeFiles/test_shot_detection.dir/test_shot_detection.cc.o.d"
  "test_shot_detection"
  "test_shot_detection.pdb"
  "test_shot_detection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shot_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
