# Empty dependencies file for dievent_render.
# This may be replaced when dependencies are built.
