file(REMOVE_RECURSE
  "CMakeFiles/dievent_render.dir/face_renderer.cc.o"
  "CMakeFiles/dievent_render.dir/face_renderer.cc.o.d"
  "CMakeFiles/dievent_render.dir/scene_renderer.cc.o"
  "CMakeFiles/dievent_render.dir/scene_renderer.cc.o.d"
  "libdievent_render.a"
  "libdievent_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dievent_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
