file(REMOVE_RECURSE
  "libdievent_render.a"
)
