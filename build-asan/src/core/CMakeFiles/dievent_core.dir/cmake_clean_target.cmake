file(REMOVE_RECURSE
  "libdievent_core.a"
)
