# Empty dependencies file for dievent_core.
# This may be replaced when dependencies are built.
