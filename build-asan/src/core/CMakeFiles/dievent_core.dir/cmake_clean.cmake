file(REMOVE_RECURSE
  "CMakeFiles/dievent_core.dir/frame_analyzer.cc.o"
  "CMakeFiles/dievent_core.dir/frame_analyzer.cc.o.d"
  "CMakeFiles/dievent_core.dir/pipeline.cc.o"
  "CMakeFiles/dievent_core.dir/pipeline.cc.o.d"
  "libdievent_core.a"
  "libdievent_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dievent_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
