# Empty dependencies file for dievent_common.
# This may be replaced when dependencies are built.
