file(REMOVE_RECURSE
  "libdievent_common.a"
)
