file(REMOVE_RECURSE
  "CMakeFiles/dievent_common.dir/logging.cc.o"
  "CMakeFiles/dievent_common.dir/logging.cc.o.d"
  "CMakeFiles/dievent_common.dir/rng.cc.o"
  "CMakeFiles/dievent_common.dir/rng.cc.o.d"
  "CMakeFiles/dievent_common.dir/status.cc.o"
  "CMakeFiles/dievent_common.dir/status.cc.o.d"
  "CMakeFiles/dievent_common.dir/strings.cc.o"
  "CMakeFiles/dievent_common.dir/strings.cc.o.d"
  "CMakeFiles/dievent_common.dir/thread_pool.cc.o"
  "CMakeFiles/dievent_common.dir/thread_pool.cc.o.d"
  "libdievent_common.a"
  "libdievent_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dievent_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
