
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/fault_injection.cc" "src/video/CMakeFiles/dievent_video.dir/fault_injection.cc.o" "gcc" "src/video/CMakeFiles/dievent_video.dir/fault_injection.cc.o.d"
  "/root/repo/src/video/image_sequence_source.cc" "src/video/CMakeFiles/dievent_video.dir/image_sequence_source.cc.o" "gcc" "src/video/CMakeFiles/dievent_video.dir/image_sequence_source.cc.o.d"
  "/root/repo/src/video/keyframes.cc" "src/video/CMakeFiles/dievent_video.dir/keyframes.cc.o" "gcc" "src/video/CMakeFiles/dievent_video.dir/keyframes.cc.o.d"
  "/root/repo/src/video/parser.cc" "src/video/CMakeFiles/dievent_video.dir/parser.cc.o" "gcc" "src/video/CMakeFiles/dievent_video.dir/parser.cc.o.d"
  "/root/repo/src/video/scene_segmentation.cc" "src/video/CMakeFiles/dievent_video.dir/scene_segmentation.cc.o" "gcc" "src/video/CMakeFiles/dievent_video.dir/scene_segmentation.cc.o.d"
  "/root/repo/src/video/shot_detection.cc" "src/video/CMakeFiles/dievent_video.dir/shot_detection.cc.o" "gcc" "src/video/CMakeFiles/dievent_video.dir/shot_detection.cc.o.d"
  "/root/repo/src/video/synthetic_source.cc" "src/video/CMakeFiles/dievent_video.dir/synthetic_source.cc.o" "gcc" "src/video/CMakeFiles/dievent_video.dir/synthetic_source.cc.o.d"
  "/root/repo/src/video/video_source.cc" "src/video/CMakeFiles/dievent_video.dir/video_source.cc.o" "gcc" "src/video/CMakeFiles/dievent_video.dir/video_source.cc.o.d"
  "/root/repo/src/video/video_structure.cc" "src/video/CMakeFiles/dievent_video.dir/video_structure.cc.o" "gcc" "src/video/CMakeFiles/dievent_video.dir/video_structure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/render/CMakeFiles/dievent_render.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/image/CMakeFiles/dievent_image.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/dievent_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/geometry/CMakeFiles/dievent_geometry.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/dievent_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
