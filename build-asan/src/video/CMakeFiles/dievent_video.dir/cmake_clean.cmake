file(REMOVE_RECURSE
  "CMakeFiles/dievent_video.dir/fault_injection.cc.o"
  "CMakeFiles/dievent_video.dir/fault_injection.cc.o.d"
  "CMakeFiles/dievent_video.dir/image_sequence_source.cc.o"
  "CMakeFiles/dievent_video.dir/image_sequence_source.cc.o.d"
  "CMakeFiles/dievent_video.dir/keyframes.cc.o"
  "CMakeFiles/dievent_video.dir/keyframes.cc.o.d"
  "CMakeFiles/dievent_video.dir/parser.cc.o"
  "CMakeFiles/dievent_video.dir/parser.cc.o.d"
  "CMakeFiles/dievent_video.dir/scene_segmentation.cc.o"
  "CMakeFiles/dievent_video.dir/scene_segmentation.cc.o.d"
  "CMakeFiles/dievent_video.dir/shot_detection.cc.o"
  "CMakeFiles/dievent_video.dir/shot_detection.cc.o.d"
  "CMakeFiles/dievent_video.dir/synthetic_source.cc.o"
  "CMakeFiles/dievent_video.dir/synthetic_source.cc.o.d"
  "CMakeFiles/dievent_video.dir/video_source.cc.o"
  "CMakeFiles/dievent_video.dir/video_source.cc.o.d"
  "CMakeFiles/dievent_video.dir/video_structure.cc.o"
  "CMakeFiles/dievent_video.dir/video_structure.cc.o.d"
  "libdievent_video.a"
  "libdievent_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dievent_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
