file(REMOVE_RECURSE
  "libdievent_video.a"
)
