# Empty dependencies file for dievent_video.
# This may be replaced when dependencies are built.
