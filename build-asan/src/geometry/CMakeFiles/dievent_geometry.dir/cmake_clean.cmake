file(REMOVE_RECURSE
  "CMakeFiles/dievent_geometry.dir/calibration.cc.o"
  "CMakeFiles/dievent_geometry.dir/calibration.cc.o.d"
  "CMakeFiles/dievent_geometry.dir/camera.cc.o"
  "CMakeFiles/dievent_geometry.dir/camera.cc.o.d"
  "CMakeFiles/dievent_geometry.dir/pose.cc.o"
  "CMakeFiles/dievent_geometry.dir/pose.cc.o.d"
  "CMakeFiles/dievent_geometry.dir/quaternion.cc.o"
  "CMakeFiles/dievent_geometry.dir/quaternion.cc.o.d"
  "CMakeFiles/dievent_geometry.dir/ray.cc.o"
  "CMakeFiles/dievent_geometry.dir/ray.cc.o.d"
  "CMakeFiles/dievent_geometry.dir/rig.cc.o"
  "CMakeFiles/dievent_geometry.dir/rig.cc.o.d"
  "libdievent_geometry.a"
  "libdievent_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dievent_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
