# Empty dependencies file for dievent_geometry.
# This may be replaced when dependencies are built.
