file(REMOVE_RECURSE
  "libdievent_geometry.a"
)
