
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/calibration.cc" "src/geometry/CMakeFiles/dievent_geometry.dir/calibration.cc.o" "gcc" "src/geometry/CMakeFiles/dievent_geometry.dir/calibration.cc.o.d"
  "/root/repo/src/geometry/camera.cc" "src/geometry/CMakeFiles/dievent_geometry.dir/camera.cc.o" "gcc" "src/geometry/CMakeFiles/dievent_geometry.dir/camera.cc.o.d"
  "/root/repo/src/geometry/pose.cc" "src/geometry/CMakeFiles/dievent_geometry.dir/pose.cc.o" "gcc" "src/geometry/CMakeFiles/dievent_geometry.dir/pose.cc.o.d"
  "/root/repo/src/geometry/quaternion.cc" "src/geometry/CMakeFiles/dievent_geometry.dir/quaternion.cc.o" "gcc" "src/geometry/CMakeFiles/dievent_geometry.dir/quaternion.cc.o.d"
  "/root/repo/src/geometry/ray.cc" "src/geometry/CMakeFiles/dievent_geometry.dir/ray.cc.o" "gcc" "src/geometry/CMakeFiles/dievent_geometry.dir/ray.cc.o.d"
  "/root/repo/src/geometry/rig.cc" "src/geometry/CMakeFiles/dievent_geometry.dir/rig.cc.o" "gcc" "src/geometry/CMakeFiles/dievent_geometry.dir/rig.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/dievent_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
