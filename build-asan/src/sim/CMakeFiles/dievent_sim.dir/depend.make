# Empty dependencies file for dievent_sim.
# This may be replaced when dependencies are built.
