file(REMOVE_RECURSE
  "libdievent_sim.a"
)
