file(REMOVE_RECURSE
  "CMakeFiles/dievent_sim.dir/scenario.cc.o"
  "CMakeFiles/dievent_sim.dir/scenario.cc.o.d"
  "CMakeFiles/dievent_sim.dir/scene.cc.o"
  "CMakeFiles/dievent_sim.dir/scene.cc.o.d"
  "CMakeFiles/dievent_sim.dir/scene_config.cc.o"
  "CMakeFiles/dievent_sim.dir/scene_config.cc.o.d"
  "libdievent_sim.a"
  "libdievent_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dievent_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
