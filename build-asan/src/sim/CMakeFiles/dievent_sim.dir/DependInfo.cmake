
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/scenario.cc" "src/sim/CMakeFiles/dievent_sim.dir/scenario.cc.o" "gcc" "src/sim/CMakeFiles/dievent_sim.dir/scenario.cc.o.d"
  "/root/repo/src/sim/scene.cc" "src/sim/CMakeFiles/dievent_sim.dir/scene.cc.o" "gcc" "src/sim/CMakeFiles/dievent_sim.dir/scene.cc.o.d"
  "/root/repo/src/sim/scene_config.cc" "src/sim/CMakeFiles/dievent_sim.dir/scene_config.cc.o" "gcc" "src/sim/CMakeFiles/dievent_sim.dir/scene_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/geometry/CMakeFiles/dievent_geometry.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/image/CMakeFiles/dievent_image.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/dievent_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
