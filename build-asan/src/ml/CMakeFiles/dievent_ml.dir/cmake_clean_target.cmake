file(REMOVE_RECURSE
  "libdievent_ml.a"
)
