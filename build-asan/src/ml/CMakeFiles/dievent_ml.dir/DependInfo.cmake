
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/emotion_recognizer.cc" "src/ml/CMakeFiles/dievent_ml.dir/emotion_recognizer.cc.o" "gcc" "src/ml/CMakeFiles/dievent_ml.dir/emotion_recognizer.cc.o.d"
  "/root/repo/src/ml/face_recognizer.cc" "src/ml/CMakeFiles/dievent_ml.dir/face_recognizer.cc.o" "gcc" "src/ml/CMakeFiles/dievent_ml.dir/face_recognizer.cc.o.d"
  "/root/repo/src/ml/hmm.cc" "src/ml/CMakeFiles/dievent_ml.dir/hmm.cc.o" "gcc" "src/ml/CMakeFiles/dievent_ml.dir/hmm.cc.o.d"
  "/root/repo/src/ml/hungarian.cc" "src/ml/CMakeFiles/dievent_ml.dir/hungarian.cc.o" "gcc" "src/ml/CMakeFiles/dievent_ml.dir/hungarian.cc.o.d"
  "/root/repo/src/ml/lbp.cc" "src/ml/CMakeFiles/dievent_ml.dir/lbp.cc.o" "gcc" "src/ml/CMakeFiles/dievent_ml.dir/lbp.cc.o.d"
  "/root/repo/src/ml/neural_net.cc" "src/ml/CMakeFiles/dievent_ml.dir/neural_net.cc.o" "gcc" "src/ml/CMakeFiles/dievent_ml.dir/neural_net.cc.o.d"
  "/root/repo/src/ml/tracker.cc" "src/ml/CMakeFiles/dievent_ml.dir/tracker.cc.o" "gcc" "src/ml/CMakeFiles/dievent_ml.dir/tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/vision/CMakeFiles/dievent_vision.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/render/CMakeFiles/dievent_render.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/image/CMakeFiles/dievent_image.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/dievent_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/dievent_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/geometry/CMakeFiles/dievent_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
