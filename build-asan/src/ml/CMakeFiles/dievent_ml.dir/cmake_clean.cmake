file(REMOVE_RECURSE
  "CMakeFiles/dievent_ml.dir/emotion_recognizer.cc.o"
  "CMakeFiles/dievent_ml.dir/emotion_recognizer.cc.o.d"
  "CMakeFiles/dievent_ml.dir/face_recognizer.cc.o"
  "CMakeFiles/dievent_ml.dir/face_recognizer.cc.o.d"
  "CMakeFiles/dievent_ml.dir/hmm.cc.o"
  "CMakeFiles/dievent_ml.dir/hmm.cc.o.d"
  "CMakeFiles/dievent_ml.dir/hungarian.cc.o"
  "CMakeFiles/dievent_ml.dir/hungarian.cc.o.d"
  "CMakeFiles/dievent_ml.dir/lbp.cc.o"
  "CMakeFiles/dievent_ml.dir/lbp.cc.o.d"
  "CMakeFiles/dievent_ml.dir/neural_net.cc.o"
  "CMakeFiles/dievent_ml.dir/neural_net.cc.o.d"
  "CMakeFiles/dievent_ml.dir/tracker.cc.o"
  "CMakeFiles/dievent_ml.dir/tracker.cc.o.d"
  "libdievent_ml.a"
  "libdievent_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dievent_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
