# Empty dependencies file for dievent_ml.
# This may be replaced when dependencies are built.
