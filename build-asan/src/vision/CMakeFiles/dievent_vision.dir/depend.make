# Empty dependencies file for dievent_vision.
# This may be replaced when dependencies are built.
