file(REMOVE_RECURSE
  "libdievent_vision.a"
)
