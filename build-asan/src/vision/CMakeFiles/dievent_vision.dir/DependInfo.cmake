
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/face_analyzer.cc" "src/vision/CMakeFiles/dievent_vision.dir/face_analyzer.cc.o" "gcc" "src/vision/CMakeFiles/dievent_vision.dir/face_analyzer.cc.o.d"
  "/root/repo/src/vision/face_detector.cc" "src/vision/CMakeFiles/dievent_vision.dir/face_detector.cc.o" "gcc" "src/vision/CMakeFiles/dievent_vision.dir/face_detector.cc.o.d"
  "/root/repo/src/vision/gaze_estimator.cc" "src/vision/CMakeFiles/dievent_vision.dir/gaze_estimator.cc.o" "gcc" "src/vision/CMakeFiles/dievent_vision.dir/gaze_estimator.cc.o.d"
  "/root/repo/src/vision/head_pose.cc" "src/vision/CMakeFiles/dievent_vision.dir/head_pose.cc.o" "gcc" "src/vision/CMakeFiles/dievent_vision.dir/head_pose.cc.o.d"
  "/root/repo/src/vision/landmarks.cc" "src/vision/CMakeFiles/dievent_vision.dir/landmarks.cc.o" "gcc" "src/vision/CMakeFiles/dievent_vision.dir/landmarks.cc.o.d"
  "/root/repo/src/vision/overlay.cc" "src/vision/CMakeFiles/dievent_vision.dir/overlay.cc.o" "gcc" "src/vision/CMakeFiles/dievent_vision.dir/overlay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/render/CMakeFiles/dievent_render.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/geometry/CMakeFiles/dievent_geometry.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/image/CMakeFiles/dievent_image.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/dievent_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/dievent_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
