file(REMOVE_RECURSE
  "CMakeFiles/dievent_vision.dir/face_analyzer.cc.o"
  "CMakeFiles/dievent_vision.dir/face_analyzer.cc.o.d"
  "CMakeFiles/dievent_vision.dir/face_detector.cc.o"
  "CMakeFiles/dievent_vision.dir/face_detector.cc.o.d"
  "CMakeFiles/dievent_vision.dir/gaze_estimator.cc.o"
  "CMakeFiles/dievent_vision.dir/gaze_estimator.cc.o.d"
  "CMakeFiles/dievent_vision.dir/head_pose.cc.o"
  "CMakeFiles/dievent_vision.dir/head_pose.cc.o.d"
  "CMakeFiles/dievent_vision.dir/landmarks.cc.o"
  "CMakeFiles/dievent_vision.dir/landmarks.cc.o.d"
  "CMakeFiles/dievent_vision.dir/overlay.cc.o"
  "CMakeFiles/dievent_vision.dir/overlay.cc.o.d"
  "libdievent_vision.a"
  "libdievent_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dievent_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
