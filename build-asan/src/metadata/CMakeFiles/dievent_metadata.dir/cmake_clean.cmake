file(REMOVE_RECURSE
  "CMakeFiles/dievent_metadata.dir/engagement.cc.o"
  "CMakeFiles/dievent_metadata.dir/engagement.cc.o.d"
  "CMakeFiles/dievent_metadata.dir/event_collection.cc.o"
  "CMakeFiles/dievent_metadata.dir/event_collection.cc.o.d"
  "CMakeFiles/dievent_metadata.dir/export.cc.o"
  "CMakeFiles/dievent_metadata.dir/export.cc.o.d"
  "CMakeFiles/dievent_metadata.dir/query.cc.o"
  "CMakeFiles/dievent_metadata.dir/query.cc.o.d"
  "CMakeFiles/dievent_metadata.dir/query_parser.cc.o"
  "CMakeFiles/dievent_metadata.dir/query_parser.cc.o.d"
  "CMakeFiles/dievent_metadata.dir/records.cc.o"
  "CMakeFiles/dievent_metadata.dir/records.cc.o.d"
  "CMakeFiles/dievent_metadata.dir/repository.cc.o"
  "CMakeFiles/dievent_metadata.dir/repository.cc.o.d"
  "CMakeFiles/dievent_metadata.dir/summarization.cc.o"
  "CMakeFiles/dievent_metadata.dir/summarization.cc.o.d"
  "libdievent_metadata.a"
  "libdievent_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dievent_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
