# Empty dependencies file for dievent_metadata.
# This may be replaced when dependencies are built.
