file(REMOVE_RECURSE
  "libdievent_metadata.a"
)
