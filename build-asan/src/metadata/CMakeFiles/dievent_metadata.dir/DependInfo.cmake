
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metadata/engagement.cc" "src/metadata/CMakeFiles/dievent_metadata.dir/engagement.cc.o" "gcc" "src/metadata/CMakeFiles/dievent_metadata.dir/engagement.cc.o.d"
  "/root/repo/src/metadata/event_collection.cc" "src/metadata/CMakeFiles/dievent_metadata.dir/event_collection.cc.o" "gcc" "src/metadata/CMakeFiles/dievent_metadata.dir/event_collection.cc.o.d"
  "/root/repo/src/metadata/export.cc" "src/metadata/CMakeFiles/dievent_metadata.dir/export.cc.o" "gcc" "src/metadata/CMakeFiles/dievent_metadata.dir/export.cc.o.d"
  "/root/repo/src/metadata/query.cc" "src/metadata/CMakeFiles/dievent_metadata.dir/query.cc.o" "gcc" "src/metadata/CMakeFiles/dievent_metadata.dir/query.cc.o.d"
  "/root/repo/src/metadata/query_parser.cc" "src/metadata/CMakeFiles/dievent_metadata.dir/query_parser.cc.o" "gcc" "src/metadata/CMakeFiles/dievent_metadata.dir/query_parser.cc.o.d"
  "/root/repo/src/metadata/records.cc" "src/metadata/CMakeFiles/dievent_metadata.dir/records.cc.o" "gcc" "src/metadata/CMakeFiles/dievent_metadata.dir/records.cc.o.d"
  "/root/repo/src/metadata/repository.cc" "src/metadata/CMakeFiles/dievent_metadata.dir/repository.cc.o" "gcc" "src/metadata/CMakeFiles/dievent_metadata.dir/repository.cc.o.d"
  "/root/repo/src/metadata/summarization.cc" "src/metadata/CMakeFiles/dievent_metadata.dir/summarization.cc.o" "gcc" "src/metadata/CMakeFiles/dievent_metadata.dir/summarization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/analysis/CMakeFiles/dievent_analysis.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/video/CMakeFiles/dievent_video.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/dievent_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/vision/CMakeFiles/dievent_vision.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/render/CMakeFiles/dievent_render.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/dievent_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/image/CMakeFiles/dievent_image.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/geometry/CMakeFiles/dievent_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
