file(REMOVE_RECURSE
  "libdievent_image.a"
)
