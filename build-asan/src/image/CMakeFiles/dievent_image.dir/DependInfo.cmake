
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/draw.cc" "src/image/CMakeFiles/dievent_image.dir/draw.cc.o" "gcc" "src/image/CMakeFiles/dievent_image.dir/draw.cc.o.d"
  "/root/repo/src/image/filter.cc" "src/image/CMakeFiles/dievent_image.dir/filter.cc.o" "gcc" "src/image/CMakeFiles/dievent_image.dir/filter.cc.o.d"
  "/root/repo/src/image/histogram.cc" "src/image/CMakeFiles/dievent_image.dir/histogram.cc.o" "gcc" "src/image/CMakeFiles/dievent_image.dir/histogram.cc.o.d"
  "/root/repo/src/image/integral.cc" "src/image/CMakeFiles/dievent_image.dir/integral.cc.o" "gcc" "src/image/CMakeFiles/dievent_image.dir/integral.cc.o.d"
  "/root/repo/src/image/pnm_io.cc" "src/image/CMakeFiles/dievent_image.dir/pnm_io.cc.o" "gcc" "src/image/CMakeFiles/dievent_image.dir/pnm_io.cc.o.d"
  "/root/repo/src/image/resize.cc" "src/image/CMakeFiles/dievent_image.dir/resize.cc.o" "gcc" "src/image/CMakeFiles/dievent_image.dir/resize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/dievent_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/geometry/CMakeFiles/dievent_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
