# Empty dependencies file for dievent_image.
# This may be replaced when dependencies are built.
