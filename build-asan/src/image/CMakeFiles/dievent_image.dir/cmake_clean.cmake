file(REMOVE_RECURSE
  "CMakeFiles/dievent_image.dir/draw.cc.o"
  "CMakeFiles/dievent_image.dir/draw.cc.o.d"
  "CMakeFiles/dievent_image.dir/filter.cc.o"
  "CMakeFiles/dievent_image.dir/filter.cc.o.d"
  "CMakeFiles/dievent_image.dir/histogram.cc.o"
  "CMakeFiles/dievent_image.dir/histogram.cc.o.d"
  "CMakeFiles/dievent_image.dir/integral.cc.o"
  "CMakeFiles/dievent_image.dir/integral.cc.o.d"
  "CMakeFiles/dievent_image.dir/pnm_io.cc.o"
  "CMakeFiles/dievent_image.dir/pnm_io.cc.o.d"
  "CMakeFiles/dievent_image.dir/resize.cc.o"
  "CMakeFiles/dievent_image.dir/resize.cc.o.d"
  "libdievent_image.a"
  "libdievent_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dievent_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
