file(REMOVE_RECURSE
  "libdievent_analysis.a"
)
