# Empty dependencies file for dievent_analysis.
# This may be replaced when dependencies are built.
