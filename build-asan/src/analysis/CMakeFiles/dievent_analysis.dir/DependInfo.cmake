
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/activity.cc" "src/analysis/CMakeFiles/dievent_analysis.dir/activity.cc.o" "gcc" "src/analysis/CMakeFiles/dievent_analysis.dir/activity.cc.o.d"
  "/root/repo/src/analysis/alerts.cc" "src/analysis/CMakeFiles/dievent_analysis.dir/alerts.cc.o" "gcc" "src/analysis/CMakeFiles/dievent_analysis.dir/alerts.cc.o.d"
  "/root/repo/src/analysis/eye_contact.cc" "src/analysis/CMakeFiles/dievent_analysis.dir/eye_contact.cc.o" "gcc" "src/analysis/CMakeFiles/dievent_analysis.dir/eye_contact.cc.o.d"
  "/root/repo/src/analysis/fusion.cc" "src/analysis/CMakeFiles/dievent_analysis.dir/fusion.cc.o" "gcc" "src/analysis/CMakeFiles/dievent_analysis.dir/fusion.cc.o.d"
  "/root/repo/src/analysis/lookat_matrix.cc" "src/analysis/CMakeFiles/dievent_analysis.dir/lookat_matrix.cc.o" "gcc" "src/analysis/CMakeFiles/dievent_analysis.dir/lookat_matrix.cc.o.d"
  "/root/repo/src/analysis/overall_emotion.cc" "src/analysis/CMakeFiles/dievent_analysis.dir/overall_emotion.cc.o" "gcc" "src/analysis/CMakeFiles/dievent_analysis.dir/overall_emotion.cc.o.d"
  "/root/repo/src/analysis/topview_map.cc" "src/analysis/CMakeFiles/dievent_analysis.dir/topview_map.cc.o" "gcc" "src/analysis/CMakeFiles/dievent_analysis.dir/topview_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/vision/CMakeFiles/dievent_vision.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/dievent_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/geometry/CMakeFiles/dievent_geometry.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/image/CMakeFiles/dievent_image.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/dievent_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/render/CMakeFiles/dievent_render.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
