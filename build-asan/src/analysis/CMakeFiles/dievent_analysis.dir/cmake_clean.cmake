file(REMOVE_RECURSE
  "CMakeFiles/dievent_analysis.dir/activity.cc.o"
  "CMakeFiles/dievent_analysis.dir/activity.cc.o.d"
  "CMakeFiles/dievent_analysis.dir/alerts.cc.o"
  "CMakeFiles/dievent_analysis.dir/alerts.cc.o.d"
  "CMakeFiles/dievent_analysis.dir/eye_contact.cc.o"
  "CMakeFiles/dievent_analysis.dir/eye_contact.cc.o.d"
  "CMakeFiles/dievent_analysis.dir/fusion.cc.o"
  "CMakeFiles/dievent_analysis.dir/fusion.cc.o.d"
  "CMakeFiles/dievent_analysis.dir/lookat_matrix.cc.o"
  "CMakeFiles/dievent_analysis.dir/lookat_matrix.cc.o.d"
  "CMakeFiles/dievent_analysis.dir/overall_emotion.cc.o"
  "CMakeFiles/dievent_analysis.dir/overall_emotion.cc.o.d"
  "CMakeFiles/dievent_analysis.dir/topview_map.cc.o"
  "CMakeFiles/dievent_analysis.dir/topview_map.cc.o.d"
  "libdievent_analysis.a"
  "libdievent_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dievent_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
