/// \file dievent_fleet.cc
/// Run a directory of scenario configs as a multi-tenant fleet.
///
/// Usage:
///   dievent_fleet [options] <scenario-dir>
///
/// Every `*.scene` file under <scenario-dir> (see sim/scene_config.h for
/// the format) becomes one tenant of the event scheduler: its own
/// ground-truth pipeline, its own durable store directory under --out,
/// its own error budget. Tenants run up to --max-concurrent at a time;
/// failures are retried with capped exponential backoff and parked when
/// the budget is spent, while healthy tenants keep draining. A tenant's
/// priority comes from its file name: `name.low.scene` and
/// `name.high.scene` mark low/high; everything else is normal.
///
/// Exit codes:
///   0  every admitted tenant completed
///   1  at least one tenant was parked (its error budget ran out)
///   2  usage or environmental error (bad flag, unreadable directory,
///      unparsable scene)
///
/// Inspect the stores afterwards with `dievent_fsck --fleet <out>`.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "fleet/scheduler.h"
#include "io/file.h"
#include "metadata/corpus.h"
#include "sim/scene_config.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fputs(
      "usage: dievent_fleet [options] <scenario-dir>\n"
      "  Runs every *.scene config in <scenario-dir> as one tenant of\n"
      "  the multi-tenant event scheduler (ground-truth mode).\n"
      "options:\n"
      "  --out DIR             fleet root for per-tenant durable stores\n"
      "                        (default: in-memory only)\n"
      "  --max-concurrent N    runner parallelism (default 2)\n"
      "  --queue-capacity N    ready-queue bound (default 8)\n"
      "  --max-attempts N      error budget per tenant (default 3)\n"
      "  --watchdog S          interrupt a tenant committing no frame\n"
      "                        for S seconds (default: off)\n"
      "  --checkpoint-every N  checkpoint stores every N frames\n"
      "                        (default 8)\n"
      "  --shed-above N        shed low-priority admissions while N or\n"
      "                        more tenants wait (default: off)\n"
      "  --defer-latency S     defer low-priority dispatch while the\n"
      "                        fleet P95 frame latency exceeds S seconds\n"
      "                        (default: off)\n"
      "  --corpus DIR          register each completed tenant's store\n"
      "                        into the event corpus at DIR (needs --out;\n"
      "                        query it with dievent_query)\n"
      "  --parse-video         enable video composition analysis\n",
      out);
}

bool ParseIntFlag(const char* value, int* out) {
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') return false;
  *out = static_cast<int>(parsed);
  return true;
}

bool ParseDoubleFlag(const char* value, double* out) {
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  dievent::SchedulerOptions sched;
  sched.checkpoint_every_frames = 8;
  std::string scenario_dir;
  std::string out_dir;
  std::string corpus_dir;
  bool parse_video = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage(stdout);
      return 0;
    } else if (std::strcmp(arg, "--out") == 0) {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "dievent_fleet: --out needs a value\n");
        return 2;
      }
      out_dir = v;
    } else if (std::strcmp(arg, "--corpus") == 0) {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "dievent_fleet: --corpus needs a value\n");
        return 2;
      }
      corpus_dir = v;
    } else if (std::strcmp(arg, "--parse-video") == 0) {
      parse_video = true;
    } else {
      int* int_target = nullptr;
      double* double_target = nullptr;
      int queue_capacity = 0;
      int shed_above = 0;
      if (std::strcmp(arg, "--max-concurrent") == 0) {
        int_target = &sched.max_concurrent;
      } else if (std::strcmp(arg, "--queue-capacity") == 0) {
        int_target = &queue_capacity;
      } else if (std::strcmp(arg, "--max-attempts") == 0) {
        int_target = &sched.max_attempts;
      } else if (std::strcmp(arg, "--checkpoint-every") == 0) {
        int_target = &sched.checkpoint_every_frames;
      } else if (std::strcmp(arg, "--shed-above") == 0) {
        int_target = &shed_above;
      } else if (std::strcmp(arg, "--watchdog") == 0) {
        double_target = &sched.watchdog_deadline_s;
      } else if (std::strcmp(arg, "--defer-latency") == 0) {
        double_target = &sched.defer_latency_above_s;
      } else if (arg[0] == '-') {
        std::fprintf(stderr, "dievent_fleet: unknown option '%s'\n", arg);
        PrintUsage(stderr);
        return 2;
      } else if (!scenario_dir.empty()) {
        std::fprintf(stderr,
                     "dievent_fleet: more than one directory given\n");
        return 2;
      } else {
        scenario_dir = arg;
        continue;
      }
      const char* v = next();
      if (v == nullptr ||
          (int_target != nullptr && !ParseIntFlag(v, int_target)) ||
          (double_target != nullptr &&
           !ParseDoubleFlag(v, double_target))) {
        std::fprintf(stderr, "dievent_fleet: bad value for %s\n", arg);
        return 2;
      }
      if (int_target == &queue_capacity) {
        sched.queue_capacity = static_cast<size_t>(queue_capacity);
      } else if (int_target == &shed_above) {
        sched.shed_waiting_above = static_cast<size_t>(shed_above);
      }
    }
  }
  if (scenario_dir.empty()) {
    PrintUsage(stderr);
    return 2;
  }
  if (!corpus_dir.empty() && out_dir.empty()) {
    std::fprintf(stderr,
                 "dievent_fleet: --corpus needs --out (only tenants with "
                 "a durable store can be registered)\n");
    return 2;
  }

  // The corpus must outlive the scheduler that registers into it.
  std::unique_ptr<dievent::EventCorpus> corpus;
  if (!corpus_dir.empty()) {
    auto opened = dievent::EventCorpus::Open(corpus_dir);
    if (!opened.ok()) {
      std::fprintf(stderr, "dievent_fleet: --corpus %s: %s\n",
                   corpus_dir.c_str(),
                   opened.status().ToString().c_str());
      return 2;
    }
    corpus = std::move(opened).TakeValue();
    sched.corpus = corpus.get();
  }

  dievent::FileSystem* fs = dievent::FileSystem::Default();
  auto listing = fs->ListDir(scenario_dir);
  if (!listing.ok()) {
    std::fprintf(stderr, "dievent_fleet: %s\n",
                 listing.status().ToString().c_str());
    return 2;
  }
  std::vector<std::string> names = std::move(listing).TakeValue();
  std::sort(names.begin(), names.end());

  // Scenes live in a deque so the pointers handed to job specs stay
  // valid while the fleet runs.
  std::deque<dievent::DiningScene> scenes;
  dievent::EventScheduler scheduler(sched);
  int admitted = 0;
  for (const std::string& name : names) {
    if (!EndsWith(name, ".scene")) continue;
    auto scene =
        dievent::LoadSceneConfig(dievent::JoinPath(scenario_dir, name));
    if (!scene.ok()) {
      std::fprintf(stderr, "dievent_fleet: %s: %s\n", name.c_str(),
                   scene.status().ToString().c_str());
      return 2;
    }
    scenes.push_back(std::move(scene).TakeValue());

    dievent::EventJobSpec spec;
    spec.name = name.substr(0, name.size() - std::strlen(".scene"));
    spec.scene = &scenes.back();
    spec.pipeline.mode = dievent::PipelineMode::kGroundTruth;
    spec.pipeline.parse_video = parse_video;
    if (EndsWith(spec.name, ".low")) {
      spec.priority = dievent::JobPriority::kLow;
      spec.name.resize(spec.name.size() - std::strlen(".low"));
    } else if (EndsWith(spec.name, ".high")) {
      spec.priority = dievent::JobPriority::kHigh;
      spec.name.resize(spec.name.size() - std::strlen(".high"));
    }
    if (!out_dir.empty()) {
      spec.store_dir = dievent::JoinPath(out_dir, spec.name);
    }
    scheduler.Submit(std::move(spec));
    ++admitted;
  }
  if (admitted == 0) {
    std::fprintf(stderr, "dievent_fleet: no *.scene files in %s\n",
                 scenario_dir.c_str());
    return 2;
  }

  dievent::Status drained = scheduler.RunUntilDrained();
  dievent::FleetStats stats = scheduler.stats();
  std::printf("%s\n", stats.ToString().c_str());
  if (!drained.ok()) {
    std::fprintf(stderr, "dievent_fleet: %s\n",
                 drained.ToString().c_str());
    return 1;
  }
  return 0;
}
