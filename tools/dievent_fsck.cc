/// \file dievent_fsck.cc
/// Scrub / verify / repair a DurableEventStore directory from the
/// command line.
///
/// Usage:
///   dievent_fsck <store-dir>            verify only (disk untouched)
///   dievent_fsck --repair <store-dir>   verify, apply safe repairs,
///                                       then reopen the store to prove
///                                       recovery works
///   dievent_fsck --fleet <root>         scan every per-event store
///                                       directory under a fleet root
///                                       (combines with --repair)
///
/// Exit codes:
///   0  clean store(s), or repairs applied and the store(s) reopen
///      cleanly
///   1  problems found (verify mode) or post-repair verification failed
///      — in fleet mode, in any store
///   2  usage or environmental error (missing directory, unreadable)

#include <cstdio>
#include <cstring>
#include <string>

#include "io/file.h"
#include "metadata/fsck.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fputs(
      "usage: dievent_fsck [--repair] [--fleet] <store-dir|fleet-root>\n"
      "  Verifies a durable event store: snapshot section checksums,\n"
      "  journal frame CRCs, record decode, and sequence continuity.\n"
      "  With --repair, additionally removes stray checkpoint temps,\n"
      "  truncates torn journal tails, quarantines unreachable segments\n"
      "  and corrupt snapshots, and re-verifies by reopening the store.\n"
      "  With --fleet, the argument is a scheduler fleet root: every\n"
      "  subdirectory is scanned as one tenant's store, and the exit\n"
      "  code is non-zero iff any store is damaged.\n",
      out);
}

}  // namespace

int main(int argc, char** argv) {
  bool repair = false;
  bool fleet = false;
  std::string dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repair") == 0) {
      repair = true;
    } else if (std::strcmp(argv[i], "--fleet") == 0) {
      fleet = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      PrintUsage(stdout);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "dievent_fsck: unknown option '%s'\n", argv[i]);
      PrintUsage(stderr);
      return 2;
    } else if (!dir.empty()) {
      std::fprintf(stderr, "dievent_fsck: more than one directory given\n");
      PrintUsage(stderr);
      return 2;
    } else {
      dir = argv[i];
    }
  }
  if (dir.empty()) {
    PrintUsage(stderr);
    return 2;
  }

  dievent::FsckOptions options;
  options.repair = repair;
  if (fleet) {
    auto result = dievent::RunFleetFsck(dievent::FileSystem::Default(),
                                        dir, options);
    if (!result.ok()) {
      std::fprintf(stderr, "dievent_fsck: %s\n",
                   result.status().ToString().c_str());
      return 2;
    }
    const dievent::FleetFsckReport& report = result.value();
    std::fputs(report.ToString().c_str(), stdout);
    return report.clean() ? 0 : 1;
  }
  auto result =
      dievent::RunFsck(dievent::FileSystem::Default(), dir, options);
  if (!result.ok()) {
    std::fprintf(stderr, "dievent_fsck: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  const dievent::FsckReport& report = result.value();
  std::fputs(report.ToString().c_str(), stdout);
  if (repair) return report.verified ? 0 : 1;
  return report.clean() ? 0 : 1;
}
