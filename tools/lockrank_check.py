#!/usr/bin/env python3
"""DiEvent lock-rank check: static lock-order analysis over the rank table.

The discipline (src/common/lock_ranks.h, DESIGN.md section 14): every named
mutex carries a `LockRank`, and a thread may only acquire a mutex ranked
strictly above everything it already holds. This tool proves the *static*
side of that contract:

 1. parses the rank table from src/common/lock_ranks.h;
 2. finds every `Mutex` declaration in the scanned trees and maps member
    names to ranks per file pair (x.cc shares x.h's table, so a lock
    declared in the header resolves inside its implementation file);
 3. extracts the static acquisition graph — an edge A -> B for every site
    where B is taken while A is held. Held sets come from `MutexLock`
    scopes and `REQUIRES(...)` annotations (including class-qualified
    definitions whose REQUIRES lives on the header declaration).
    Acquisitions come from `MutexLock` sites, from the `VirtualClock`
    waiter protocol (`Wait`/`WaitUntil`/`NotifyAll(mu, cv, ...)` lock the
    clock's own mutex while `mu` is held, so each such call is an edge
    mu -> kClockWaiters), from calls to `EXCLUDES`-annotated methods (the
    callee acquires what it excludes), and from `DIEVENT_LOG` /
    `DIEVENT_CHECK` (the serialized sink is a lock, ranked kLogSink);
 4. fails on rank-decreasing (or rank-equal) edges, on cycles in the
    graph, and on unranked `Mutex` declarations.

Findings
--------
unranked       A `Mutex` member without a rank. Rank it, or waive with
               `// lockrank: allow(unranked)` naming why it is outside the
               discipline (test-local fences, fixtures).
unknown-rank   A declaration names a `LockRank::k...` missing from the
               enum in src/common/lock_ranks.h.
order          An acquisition edge whose destination rank is <= its
               source rank. Reorder the locks or re-slot the ranks; waive
               a modeling false positive with `// lockrank: allow(order)`
               and a comment naming the real guarantee.
cycle          The acquisition graph has a rank cycle (reported once per
               strongly connected component, anchored at its first edge).
ambiguous      One member name maps to two different ranks inside one
               header/impl file pair; rename one member (the per-file
               tables cannot tell them apart).

Waivers are per-line: `// lockrank: allow(<finding>)` on the flagged line
or on a comment-only line directly above it, and should say why.

Limitations (by design, mirrored in DESIGN.md): matching is lexical and
per-line — a `MutexLock` split across lines, a lock behind an unannotated
helper, or a callee resolved only through a virtual base is invisible.
The runtime tracker (DIEVENT_LOCK_RANKS=ON) is the backstop for those.

`--self-test` scans tests/lint_fixtures/bad_lockorder.cc (plus good.h,
which must stay clean) and requires findings to match the
`// lockrank-expect(<finding>)` markers exactly.

Exit status: 0 clean, 1 findings or self-test mismatch, 2 usage errors.
"""

import argparse
import os
import re
import sys

SOURCE_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")
RANK_TABLE_PATH = "src/common/lock_ranks.h"
SELF_TEST_FILES = (
    "tests/lint_fixtures/bad_lockorder.cc",
    "tests/lint_fixtures/good.h",
)

RANK_ENTRY = re.compile(r"^\s*(?P<name>k\w+)\s*=\s*(?P<value>\d+)\s*,")
RANKED_DECL = re.compile(
    r"^\s*(?:mutable\s+)?Mutex\s+(?P<name>\w+)\s*\{\s*"
    r"LockRank::(?P<rank>k\w+)\s*\}\s*;")
UNRANKED_DECL = re.compile(r"^\s*(?:mutable\s+)?Mutex\s+(?P<name>\w+)\s*;")
MUTEXLOCK_SITE = re.compile(
    r"\bMutexLock\s+\w+\s*\(\s*(?P<arg>[^()]+?)\s*\)")
# The VirtualClock waiter protocol: first argument is the caller's held
# mutex; the clock locks its own mutex (kClockWaiters) while it is held.
# The comma requirement keeps single-argument CondVar::Wait(mu) out.
CLOCK_CALL = re.compile(
    r"\b(?:Wait|WaitUntil|NotifyAll)\s*\(\s*(?P<arg>[A-Za-z_][\w.>-]*)\s*,")
METHOD_CALL = re.compile(r"(?:\.|->)\s*(?P<name>\w+)\s*\(")
LOG_MACRO = re.compile(r"\b(?:DIEVENT_LOG|DIEVENT_CHECK)\s*\(")
ANNOTATION = re.compile(
    r"\b(?P<kind>REQUIRES|EXCLUDES)\s*\(\s*(?P<args>[^)]*)\)")
# `Ret Class::Method(` at namespace depth — an out-of-line definition whose
# REQUIRES annotation lives on the in-class declaration.
QUALIFIED_DEF = re.compile(r"\b(?P<cls>\w+)::(?P<name>~?\w+)\s*\(")
# Method name owning an annotation: the last `name(` before it on the line.
DECL_NAME = re.compile(r"(?P<name>\w+)\s*\($")
WAIVER = re.compile(r"//\s*lockrank:\s*allow\((?P<kind>[a-z-]+)\)")
EXPECT_MARKER = re.compile(r"//\s*lockrank-expect\((?P<kind>[a-z-]+)\)")
STRING_LITERAL = re.compile(r'"(?:[^"\\]|\\.)*"' + r"|'(?:[^'\\]|\\.)'")

CLOCK_METHODS = {"Wait", "WaitFor", "WaitUntil", "NotifyAll"}
# EXCLUDES-annotated names too generic to attribute at a call site
# (`items_.size()` is a std::deque call, not MpmcQueue::size).
GENERIC_METHODS = {"size", "empty"}
CLOCK_RANK = "kClockWaiters"
LOG_RANK = "kLogSink"


class Finding:
    def __init__(self, path, line, kind, message):
        self.path = path
        self.line = line
        self.kind = kind
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.kind}] {self.message}"

    def key(self):
        return (self.path, self.line, self.kind)


def clean_lines(text):
    """Source lines with strings, /* */ blocks, and // comments removed
    (the raw lines stay the waiver/marker surface)."""
    raw = text.splitlines()
    cleaned = []
    in_block = False
    for line in raw:
        line = STRING_LITERAL.sub('""', line)
        out = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    i = end + 2
                    in_block = False
                continue
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            if line.startswith("//", i):
                break
            out.append(line[i])
            i += 1
        cleaned.append("".join(out))
    return raw, cleaned


def base_name(expr):
    """Trailing identifier of a lock expression: pump_->mutex -> mutex."""
    names = re.findall(r"\w+", expr)
    return names[-1] if names else None


def parse_rank_table(root):
    path = os.path.join(root, RANK_TABLE_PATH)
    ranks = {}
    try:
        with open(path, encoding="utf-8") as fh:
            in_enum = False
            for line in fh:
                if "enum class LockRank" in line:
                    in_enum = True
                    continue
                if in_enum and line.strip().startswith("}"):
                    break
                if in_enum:
                    match = RANK_ENTRY.match(line)
                    if match:
                        ranks[match.group("name")] = int(match.group("value"))
    except OSError as err:
        print(f"lockrank: cannot read {RANK_TABLE_PATH}: {err}",
              file=sys.stderr)
        return None
    if len(ranks) < 2:
        print(f"lockrank: no rank table found in {RANK_TABLE_PATH}",
              file=sys.stderr)
        return None
    return ranks


def collect_files(root, subdirs):
    files = []
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTENSIONS):
                    full = os.path.join(dirpath, name)
                    files.append(
                        os.path.relpath(full, root).replace(os.sep, "/"))
    return sorted(files)


def pair_key(relpath):
    """Header/impl pair share one name->rank table: src/x/foo.{h,cc}."""
    stem, _ = os.path.splitext(relpath)
    return stem


def load_sources(root, relpaths):
    sources = {}
    for relpath in relpaths:
        try:
            with open(os.path.join(root, relpath), encoding="utf-8",
                      errors="replace") as fh:
                sources[relpath] = clean_lines(fh.read())
        except OSError as err:
            print(f"lockrank: unreadable {relpath}: {err}", file=sys.stderr)
    return sources


def collect_declarations(sources, ranks, findings):
    """Per-pair name->rank tables plus unranked/unknown-rank findings."""
    tables = {}  # pair_key -> {member name -> rank name}
    for relpath, (raw, cleaned) in sources.items():
        table = tables.setdefault(pair_key(relpath), {})
        for lineno, code in enumerate(cleaned, start=1):
            match = RANKED_DECL.match(code)
            if match:
                name, rank = match.group("name"), match.group("rank")
                if rank not in ranks or rank == "kUnranked":
                    findings.append(Finding(
                        relpath, lineno, "unknown-rank",
                        f"mutex '{name}' uses LockRank::{rank}, which is "
                        f"not a usable rank in {RANK_TABLE_PATH}"))
                    continue
                if table.get(name, rank) != rank:
                    findings.append(Finding(
                        relpath, lineno, "ambiguous",
                        f"member name '{name}' maps to both "
                        f"{table[name]} and {rank} in this file pair: "
                        "rename one member"))
                    table[name] = None  # poisoned: skip at use sites
                else:
                    table[name] = rank
                continue
            match = UNRANKED_DECL.match(code)
            if match and not WAIVER_ON(raw, lineno, "unranked"):
                findings.append(Finding(
                    relpath, lineno, "unranked",
                    f"mutex '{match.group('name')}' has no LockRank: rank "
                    f"it in {RANK_TABLE_PATH} (or waive with "
                    "'// lockrank: allow(unranked)' and say why)"))
    return tables


def WAIVER_ON(raw_lines, lineno, kind):
    """Waiver on the flagged line itself, or on a directly preceding
    comment-only line (long call sites have no room for a trailing one)."""
    idx = lineno - 1
    while 0 <= idx < len(raw_lines):
        line = raw_lines[idx]
        if any(m.group("kind") == kind for m in WAIVER.finditer(line)):
            return True
        idx -= 1
        if idx < 0 or not raw_lines[idx].strip().startswith("//"):
            break
    return False


def collect_annotations(sources, tables):
    """Method name -> REQUIRES arg names / EXCLUDES rank names.

    Names are matched without class qualification, so an over-generic
    method name unions its candidates — conservative for edge discovery.
    """
    requires = {}  # name -> set of arg base names
    excludes = {}  # name -> set of rank names
    for relpath, (_, cleaned) in sources.items():
        table = tables.get(pair_key(relpath), {})
        for lineno, code in enumerate(cleaned, start=1):
            for match in ANNOTATION.finditer(code):
                before = code[:match.start()].rstrip()
                owner = DECL_NAME.search(re.sub(r"\([^()]*\)", "(", before))
                if owner is None and lineno >= 2:
                    # Annotation on a continuation line: the declarator
                    # (and its parameter list) ended on the line above.
                    prev = re.sub(r"\([^()]*\)\s*(?:const)?\s*$", "(",
                                  cleaned[lineno - 2].rstrip())
                    owner = DECL_NAME.search(prev)
                if owner is None:
                    continue
                name = owner.group("name")
                for arg in match.group("args").split(","):
                    base = base_name(arg)
                    if not base:
                        continue
                    if match.group("kind") == "REQUIRES":
                        requires.setdefault(name, set()).add(base)
                    else:
                        rank = table.get(base)
                        if rank:
                            excludes.setdefault(name, set()).add(rank)
    return requires, excludes


class Edge:
    def __init__(self, src, dst, path, line, waived):
        self.src = src
        self.dst = dst
        self.path = path
        self.line = line
        self.waived = waived


def scan_file(relpath, raw, cleaned, table, requires, excludes, edges):
    """Walks one file, tracking brace depth and the held-rank set."""
    depth = 0
    held = []  # (rank name, capture depth, lineno)
    pending = None  # REQUIRES ranks awaiting the definition's open brace

    def resolve(expr):
        base = base_name(expr)
        return table.get(base) if base else None

    def add_edges(dst, lineno, order_waived):
        for rank, _, _ in held:
            if rank != dst:
                edges.append(Edge(rank, dst, relpath, lineno, order_waived))

    for lineno, code in enumerate(cleaned, start=1):
        events = []
        for i, ch in enumerate(code):
            if ch in "{};":
                events.append((i, "brace", ch))
        for match in QUALIFIED_DEF.finditer(code):
            events.append((match.start(), "qualified", match))
        for match in ANNOTATION.finditer(code):
            events.append((match.start(), "annotation", match))
        for match in MUTEXLOCK_SITE.finditer(code):
            events.append((match.start(), "mutexlock", match))
        for match in CLOCK_CALL.finditer(code):
            events.append((match.start(), "clock", match))
        for match in METHOD_CALL.finditer(code):
            events.append((match.end("name"), "call", match))
        for match in LOG_MACRO.finditer(code):
            events.append((match.start(), "log", match))
        events.sort(key=lambda e: e[0])
        order_waived = WAIVER_ON(raw, lineno, "order")

        for offset, kind, payload in events:
            if kind == "brace":
                if payload == "{":
                    depth += 1
                    if pending is not None:
                        held.extend((r, depth, lineno) for r in pending)
                        pending = None
                elif payload == "}":
                    depth -= 1
                    held[:] = [h for h in held if h[1] <= depth]
                elif payload == ";":
                    pending = None
            elif kind == "qualified":
                if depth <= 1:
                    args = requires.get(payload.group("name"), ())
                    ranks = [table[a] for a in args
                             if table.get(a) is not None]
                    if ranks:
                        pending = (pending or []) + ranks
            elif kind == "annotation":
                if payload.group("kind") != "REQUIRES":
                    continue
                ranks = [table[base_name(a)] for a
                         in payload.group("args").split(",")
                         if table.get(base_name(a)) is not None]
                if ranks:
                    pending = (pending or []) + ranks
            elif kind == "mutexlock":
                rank = resolve(payload.group("arg"))
                if rank is None:
                    continue
                add_edges(rank, lineno, order_waived)
                held.append((rank, depth, lineno))
            elif kind == "clock":
                rank = resolve(payload.group("arg"))
                if rank is not None:
                    edges.append(Edge(rank, CLOCK_RANK, relpath, lineno,
                                      order_waived))
                add_edges(CLOCK_RANK, lineno, order_waived)
            elif kind == "call":
                name = payload.group("name")
                # Clock-protocol names are modeled by the clock rule above;
                # generic names cannot be attributed to one class.
                if (name in CLOCK_METHODS or name in GENERIC_METHODS
                        or not held):
                    continue
                for rank in excludes.get(name, ()):
                    add_edges(rank, lineno, order_waived)
            elif kind == "log":
                add_edges(LOG_RANK, lineno, order_waived)


def find_cycles(edge_list, ranks, findings):
    """One finding per strongly connected component of the graph."""
    graph = {}
    sites = {}
    for e in edge_list:
        if e.waived:
            continue
        graph.setdefault(e.src, set()).add(e.dst)
        graph.setdefault(e.dst, set())
        sites.setdefault((e.src, e.dst), (e.path, e.line))
    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    def strongconnect(v):
        # Iterative Tarjan (explicit stack) to stay safe on deep graphs.
        work = [(v, iter(sorted(graph[v])))]
        index[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = lowlink[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[node] = min(lowlink[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component, key=lambda n: ranks[n]))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    for component in sccs:
        members = set(component)
        where = min(site for (src, dst), site in sites.items()
                    if src in members and dst in members)
        findings.append(Finding(
            where[0], where[1], "cycle",
            "lock-order cycle between " + " / ".join(component) +
            ": no rank assignment can order these acquisitions"))


def run_scan(root, relpaths, ranks):
    sources = load_sources(root, relpaths)
    findings = []
    tables = collect_declarations(sources, ranks, findings)
    requires, excludes = collect_annotations(sources, tables)
    edges = []
    for relpath in sorted(sources):
        raw, cleaned = sources[relpath]
        scan_file(relpath, raw, cleaned, tables.get(pair_key(relpath), {}),
                  requires, excludes, edges)
    seen = set()
    for e in edges:
        if e.waived or (e.src, e.dst, e.path, e.line) in seen:
            continue
        seen.add((e.src, e.dst, e.path, e.line))
        if ranks[e.dst] <= ranks[e.src]:
            findings.append(Finding(
                e.path, e.line, "order",
                f"{e.dst} (rank {ranks[e.dst]}) acquired while {e.src} "
                f"(rank {ranks[e.src]}) is held: ranks must strictly "
                "increase in acquisition order"))
    find_cycles(edges, ranks, findings)
    return findings, len(sources)


def run_check(root, subdirs, ranks):
    findings, nfiles = run_scan(root, collect_files(root, subdirs), ranks)
    for finding in sorted(findings, key=Finding.key):
        print(finding)
    if findings:
        print(f"lockrank: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lockrank: clean ({nfiles} files, {len(ranks)} ranks)")
    return 0


def run_self_test(root, ranks):
    expected = set()
    for relpath in SELF_TEST_FILES:
        try:
            with open(os.path.join(root, relpath), encoding="utf-8") as fh:
                for lineno, line in enumerate(fh.read().splitlines(),
                                              start=1):
                    for match in EXPECT_MARKER.finditer(line):
                        expected.add((relpath, lineno, match.group("kind")))
        except OSError as err:
            print(f"lockrank: missing fixture {relpath}: {err}",
                  file=sys.stderr)
            return 1
    findings, _ = run_scan(root, list(SELF_TEST_FILES), ranks)
    actual = {f.key() for f in findings}
    missing = expected - actual
    unexpected = actual - expected
    for path, line, kind in sorted(missing):
        print(f"{path}:{line}: [self-test] expected a {kind} finding here, "
              "check did not fire")
    for path, line, kind in sorted(unexpected):
        print(f"{path}:{line}: [self-test] unexpected {kind} finding "
              "(no lockrank-expect marker)")
    if missing or unexpected:
        print(f"lockrank --self-test: FAILED ({len(missing)} missing, "
              f"{len(unexpected)} unexpected)", file=sys.stderr)
        return 1
    print(f"lockrank --self-test: OK ({len(expected)} expected findings "
          "all fired, no extras)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--subdir", action="append", default=None,
                        help="tree(s) to scan relative to root "
                             "(default: src and tools)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the findings fire against "
                             "tests/lint_fixtures/")
    parser.add_argument("--dump-graph", action="store_true",
                        help="print the extracted acquisition edges and "
                             "exit (debugging aid)")
    args = parser.parse_args(argv)
    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"lockrank: no such root: {root}", file=sys.stderr)
        return 2
    ranks = parse_rank_table(root)
    if ranks is None:
        return 2
    if args.self_test:
        return run_self_test(root, ranks)
    if args.dump_graph:
        relpaths = collect_files(root, args.subdir or ["src", "tools"])
        sources = load_sources(root, relpaths)
        findings = []
        tables = collect_declarations(sources, ranks, findings)
        requires, excludes = collect_annotations(sources, tables)
        edges = []
        for relpath in sorted(sources):
            raw, cleaned = sources[relpath]
            scan_file(relpath, raw, cleaned,
                      tables.get(pair_key(relpath), {}), requires, excludes,
                      edges)
        for e in edges:
            flag = " (waived)" if e.waived else ""
            print(f"{e.path}:{e.line}: {e.src} -> {e.dst}{flag}")
        return 0
    return run_check(root, args.subdir or ["src", "tools"], ranks)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
