/// \file dievent_query.cc
/// Run a cross-event query against a sharded event corpus from the
/// command line.
///
/// Usage:
///   dievent_query [options] <corpus-dir> <query...>
///   dievent_query --list <corpus-dir>
///
/// The query uses the corpus grammar from metadata/query_parser.h:
///
///   dievent_query corpus/ 'events'
///   dievent_query corpus/ 'events where venue = "sala roja"'
///   dievent_query corpus/ 'events where occasion = "birthday" : ec(P1,P2)'
///   dievent_query --scenes corpus/ 'events : oh >= 0.5'
///
/// Remaining arguments after the corpus directory are joined with
/// spaces, so the query may be given unquoted. Output is one header
/// line per in-scope event (match counts), the first frame matches per
/// event, and a footer with shard-pruning statistics.
///
/// Exit codes:
///   0  query ran and matched at least one frame (or --list succeeded)
///   1  query ran but nothing matched
///   2  usage error, unparsable query, or a damaged corpus

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "metadata/corpus.h"
#include "metadata/query_parser.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fputs(
      "usage: dievent_query [options] <corpus-dir> <query...>\n"
      "  Evaluates a cross-event query over a sharded event corpus.\n"
      "  Query grammar: events [where <scope>] [: <frame terms>]\n"
      "    scope:  event/venue/occasion/date = \"...\", participants >= N\n"
      "    frame:  ec(P1,P2), look(P1,P2), watched(P1), feel(P1,happy),\n"
      "            time[a,b), oh >= x, valence >= x; joined with '&'\n"
      "options:\n"
      "  --list             list sealed shards and exit (no query)\n"
      "  --scenes           also roll matches up into scenes\n"
      "  --min-coverage F   scene coverage threshold (default 0.5)\n"
      "  --threads N        evaluate shards on N threads (default: serial)\n"
      "  --max-frames N     frame matches printed per event (default 5)\n",
      out);
}

bool ParsePositiveInt(const char* text, int* out) {
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value <= 0 || value > 1 << 20) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

int ListShards(const dievent::EventCorpus& corpus) {
  const auto shards = corpus.shards();
  for (const auto& entry : shards) {
    std::printf("%-24s dir=%s records=%llu participants=%d",
                entry.event_id.c_str(), entry.dir.c_str(),
                static_cast<unsigned long long>(entry.records),
                entry.max_lookat_n);
    if (entry.time_bounds) {
      std::printf(" time=[%.3f,%.3f]", entry.time_bounds->first,
                  entry.time_bounds->second);
    }
    if (!entry.context.location.empty()) {
      std::printf(" venue=\"%s\"", entry.context.location.c_str());
    }
    if (!entry.context.occasion.empty()) {
      std::printf(" occasion=\"%s\"", entry.context.occasion.c_str());
    }
    std::printf("\n");
  }
  std::printf("%zu sealed shard(s)\n", shards.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  dievent::CorpusQueryOptions query_options;
  int threads = 0;
  int max_frames = 5;
  std::string dir;
  std::string query_text;
  for (int i = 1; i < argc; ++i) {
    if (dir.empty() && std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else if (dir.empty() && std::strcmp(argv[i], "--scenes") == 0) {
      query_options.scenes = true;
    } else if (dir.empty() && std::strcmp(argv[i], "--min-coverage") == 0 &&
               i + 1 < argc) {
      char* end = nullptr;
      query_options.min_coverage = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "dievent_query: bad coverage '%s'\n", argv[i]);
        return 2;
      }
    } else if (dir.empty() && std::strcmp(argv[i], "--threads") == 0 &&
               i + 1 < argc) {
      if (!ParsePositiveInt(argv[++i], &threads)) {
        std::fprintf(stderr, "dievent_query: bad thread count '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (dir.empty() && std::strcmp(argv[i], "--max-frames") == 0 &&
               i + 1 < argc) {
      if (!ParsePositiveInt(argv[++i], &max_frames)) {
        std::fprintf(stderr, "dievent_query: bad frame count '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (dir.empty() && (std::strcmp(argv[i], "--help") == 0 ||
                               std::strcmp(argv[i], "-h") == 0)) {
      PrintUsage(stdout);
      return 0;
    } else if (dir.empty() && argv[i][0] == '-') {
      std::fprintf(stderr, "dievent_query: unknown option '%s'\n", argv[i]);
      PrintUsage(stderr);
      return 2;
    } else if (dir.empty()) {
      dir = argv[i];
    } else {
      if (!query_text.empty()) query_text += ' ';
      query_text += argv[i];
    }
  }
  if (dir.empty() || (query_text.empty() && !list)) {
    PrintUsage(stderr);
    return 2;
  }

  auto parsed = list ? dievent::Result<dievent::CorpusQuerySpec>(
                           dievent::CorpusQuerySpec{})
                     : dievent::ParseCorpusQuery(query_text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "dievent_query: %s\n",
                 parsed.status().ToString().c_str());
    return 2;
  }

  std::unique_ptr<dievent::ThreadPool> pool;
  dievent::CorpusOptions corpus_options;
  if (threads > 0) {
    pool = std::make_unique<dievent::ThreadPool>(threads);
    corpus_options.pool = pool.get();
  }
  auto corpus = dievent::EventCorpus::Open(dir, corpus_options);
  if (!corpus.ok()) {
    std::fprintf(stderr, "dievent_query: %s\n",
                 corpus.status().ToString().c_str());
    return 2;
  }
  if (list) return ListShards(*corpus.value());

  auto result = corpus.value()->Query(parsed.value(), query_options);
  if (!result.ok()) {
    std::fprintf(stderr, "dievent_query: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  const dievent::CorpusQueryResult& out = result.value();
  std::printf("query: %s\n",
              dievent::FormatCorpusQuery(parsed.value()).c_str());
  for (const auto& event : out.events) {
    std::printf("%s: %zu frame(s)", event.event_id.c_str(),
                event.frames.size());
    if (query_options.scenes) {
      std::printf(", %zu scene(s)", event.scenes.size());
    }
    std::printf("\n");
    int printed = 0;
    for (const auto& frame : event.frames) {
      if (printed++ >= max_frames) {
        std::printf("  ... %zu more\n", event.frames.size() - max_frames);
        break;
      }
      std::printf("  frame %d @ %.3fs\n", frame.frame, frame.timestamp_s);
    }
    for (const auto& scene : event.scenes) {
      std::printf("  scene %d [%d, %d) coverage %.2f\n", scene.index,
                  scene.begin_frame, scene.end_frame, scene.coverage);
    }
  }
  std::printf(
      "%llu event(s) in scope, %llu shard(s) pruned, %llu opened, "
      "%llu total frame match(es)\n",
      static_cast<unsigned long long>(out.shards_in_scope),
      static_cast<unsigned long long>(out.shards_pruned),
      static_cast<unsigned long long>(out.shards_opened),
      static_cast<unsigned long long>(out.total_frames));
  return out.total_frames > 0 ? 0 : 1;
}
