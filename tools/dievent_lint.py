#!/usr/bin/env python3
"""DiEvent repository lint: project-specific invariants the compiler can't see.

Rules
-----
mutex-guard       Every mutex member must either guard something (appear in a
                  GUARDED_BY / PT_GUARDED_BY annotation in the same file) or
                  carry an explicit `// lint: unguarded` waiver explaining why
                  it guards no data. Raw `std::mutex` members are rejected
                  outright: use `dievent::Mutex` from common/thread_annotations.h
                  so Clang's thread-safety analysis can check the locking.
nondeterminism    `rand()`, `srand()`, `std::random_device`, and wall-clock
                  `time(...)` seeds are banned outside common/rng: every run of
                  the pipeline must be reproducible from an explicit Rng seed.
status-discard    A naked `<expr>.status();` expression statement silently drops
                  an error. Propagate it, or log it with a comment saying why
                  the drop is deliberate.
include-hygiene   No parent-relative includes (`#include "../..."`), no
                  `<bits/...>` internals, and headers must carry the canonical
                  guard `DIEVENT_<PATH>_H_` derived from their path.
steady-clock      Direct `steady_clock::now()` (or system/high_resolution
                  clock) reads are banned outside src/common/clock.*: go
                  through the injected `VirtualClock` so timing-dependent code
                  stays testable under SimClock. Benchmarks that measure real
                  wall time carry per-line `// lint: allow(steady-clock)`
                  waivers.
hot-path-alloc    Inside a region bracketed by `// lint: hot-path-begin(name)`
                  and `// lint: hot-path-end`, per-frame heap allocation is
                  banned: no `new`, no `std::vector<...>` construction
                  (references and pointers are fine), no `.resize(...)`
                  growth. Hot-path scratch belongs on the frame Arena or in a
                  reused per-thread scratch struct (see DESIGN.md §13). Lines
                  that are allocation-free in steady state (e.g. a resize that
                  never exceeds warmed-up capacity) may waive per line with
                  `// lint: allow(hot-path-alloc)` and a comment saying why.
                  Unbalanced begin/end markers are themselves findings.

Waivers
-------
Append `// lint: unguarded` to a mutex declaration that intentionally guards no
data, or `// lint: allow(<rule>)` to any other line to suppress a finding.
Waivers are per-line and must say why: either trailing text on the waiver line
itself or a comment-only line directly above. `--waiver-report` lists every
waiver (including the lock-rank checker's `// lockrank: allow(...)`) with its
justification and fails on any waiver that has none — an unexplained waiver is
a finding, not an exemption.

Self-test
---------
`--self-test` scans tests/lint_fixtures/ and requires the findings to match the
`// lint-expect(<rule>)` markers in the fixtures exactly — proving each rule
still fires (and that good.h stays clean) before the real tree is trusted.

Exit status: 0 when clean, 1 on findings or self-test mismatch, 2 on usage
errors.
"""

import argparse
import os
import re
import sys

SOURCE_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

# Files allowed to use raw randomness: the seeded Rng wrapper itself.
NONDETERMINISM_ALLOWLIST = ("src/common/rng",)

# Files allowed to read std::chrono clocks directly: the VirtualClock
# implementation (RealClock must bottom out somewhere).
STEADY_CLOCK_ALLOWLIST = ("src/common/clock.",)

WAIVER_UNGUARDED = re.compile(r"//\s*lint:\s*unguarded\b")
WAIVER_ALLOW = re.compile(r"//\s*lint:\s*allow\((?P<rule>[a-z-]+)\)")
EXPECT_MARKER = re.compile(r"//\s*lint-expect\((?P<rule>[a-z-]+)\)")

# Matches plain members and rank-initialized ones
# (`Mutex mu_{LockRank::kFoo};`, see common/lock_ranks.h).
MUTEX_DECL = re.compile(
    r"^\s*(?:mutable\s+)?(?P<type>(?:::)?(?:dievent::)?Mutex|std::mutex)\s+"
    r"(?P<name>\w+)\s*(?:\{[^{}]*\})?\s*;")
GUARD_ANNOTATION = re.compile(r"(?:PT_)?GUARDED_BY\(\s*(?P<name>\w+)\s*\)")

NONDETERMINISM_PATTERNS = (
    (re.compile(r"(?<!\w)(?:std::)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"(?<![\w.>])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "wall-clock time()"),
)

STATUS_DISCARD = re.compile(r"^\s*[\w\->.:\[\]()]*\.status\(\)\s*;\s*$")

DIRECT_CLOCK_NOW = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)::now\s*\(")

HOT_PATH_BEGIN = re.compile(r"//\s*lint:\s*hot-path-begin\((?P<name>[\w-]+)\)")
HOT_PATH_END = re.compile(r"//\s*lint:\s*hot-path-end\b")
# `new` as an expression (placement or plain); \b keeps identifiers like
# new_size out.
HOT_NEW = re.compile(r"\bnew\b")
# A std::vector type not immediately followed by & or * — i.e. a
# declaration or temporary that owns heap storage, as opposed to a
# reference/pointer to one someone else owns. Handles one level of nested
# template arguments.
HOT_VECTOR = re.compile(
    r"std::vector\s*<(?:[^<>]|<[^<>]*>)*>+(?!\s*[>&*])")
HOT_RESIZE = re.compile(r"\.\s*resize\s*\(")

PARENT_INCLUDE = re.compile(r"^\s*#\s*include\s+\"\.\./")
BITS_INCLUDE = re.compile(r"^\s*#\s*include\s+<bits/")
IFNDEF_GUARD = re.compile(r"^\s*#\s*ifndef\s+(?P<guard>\w+)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def key(self):
        return (self.path, self.line, self.rule)


def strip_comment(line):
    """Code portion of a line (before any // comment). Keeps string contents;
    good enough for the patterns above, which never appear inside literals in
    this codebase."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def expected_guard(relpath):
    """Canonical header guard for a repo-relative header path.

    src/common/foo_bar.h -> DIEVENT_COMMON_FOO_BAR_H_ (the leading src/ is
    dropped to match the include-root layout); other trees keep their full
    path (tests/lint_fixtures/good.h -> DIEVENT_TESTS_LINT_FIXTURES_GOOD_H_).
    """
    parts = relpath.split("/")
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"\.(h|hpp)$", "", stem)
    return "DIEVENT_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


def check_mutex_guard(relpath, lines, findings):
    guarded_names = set()
    for line in lines:
        for match in GUARD_ANNOTATION.finditer(strip_comment(line)):
            guarded_names.add(match.group("name"))
    for lineno, line in enumerate(lines, start=1):
        match = MUTEX_DECL.match(strip_comment(line))
        if not match:
            continue
        if WAIVER_UNGUARDED.search(line):
            continue
        mutex_type = match.group("type")
        name = match.group("name")
        if mutex_type == "std::mutex":
            findings.append(Finding(
                relpath, lineno, "mutex-guard",
                f"raw std::mutex member '{name}': use dievent::Mutex from "
                "common/thread_annotations.h so thread-safety analysis "
                "applies"))
        elif name not in guarded_names:
            findings.append(Finding(
                relpath, lineno, "mutex-guard",
                f"mutex '{name}' guards no declared state: add GUARDED_BY"
                f"({name}) to the data it protects, or waive with "
                "'// lint: unguarded' and say why"))


def check_nondeterminism(relpath, lines, findings):
    if any(relpath.startswith(prefix) for prefix in NONDETERMINISM_ALLOWLIST):
        return
    for lineno, line in enumerate(lines, start=1):
        code = strip_comment(line)
        for pattern, what in NONDETERMINISM_PATTERNS:
            if pattern.search(code):
                findings.append(Finding(
                    relpath, lineno, "nondeterminism",
                    f"{what} breaks run-to-run reproducibility: thread an "
                    "explicit dievent::Rng through instead"))


def check_status_discard(relpath, lines, findings):
    for lineno, line in enumerate(lines, start=1):
        if STATUS_DISCARD.match(strip_comment(line)):
            findings.append(Finding(
                relpath, lineno, "status-discard",
                "naked '.status();' drops the error: propagate it or log it "
                "with a comment explaining the deliberate drop"))


def check_include_hygiene(relpath, lines, findings):
    for lineno, line in enumerate(lines, start=1):
        code = strip_comment(line)
        if PARENT_INCLUDE.match(code):
            findings.append(Finding(
                relpath, lineno, "include-hygiene",
                "parent-relative include: include from the source root "
                "(e.g. \"common/foo.h\") instead"))
        if BITS_INCLUDE.match(code):
            findings.append(Finding(
                relpath, lineno, "include-hygiene",
                "<bits/...> is a libstdc++ internal: include the standard "
                "header instead"))
    if relpath.endswith((".h", ".hpp")):
        want = expected_guard(relpath)
        guard_line = None
        guard_name = None
        for lineno, line in enumerate(lines, start=1):
            match = IFNDEF_GUARD.match(strip_comment(line))
            if match:
                guard_line = lineno
                guard_name = match.group("guard")
                break
        if guard_name is None:
            findings.append(Finding(
                relpath, 1, "include-hygiene",
                f"missing header guard: expected #ifndef {want}"))
        elif guard_name != want:
            findings.append(Finding(
                relpath, guard_line, "include-hygiene",
                f"header guard '{guard_name}' does not match the canonical "
                f"'{want}'"))


def check_steady_clock(relpath, lines, findings):
    if any(relpath.startswith(prefix) for prefix in STEADY_CLOCK_ALLOWLIST):
        return
    for lineno, line in enumerate(lines, start=1):
        if DIRECT_CLOCK_NOW.search(strip_comment(line)):
            findings.append(Finding(
                relpath, lineno, "steady-clock",
                "direct chrono clock read: take a VirtualClock* and call "
                "Now() so the code runs under SimClock in tests (benchmarks "
                "measuring wall time may waive per line)"))


def check_hot_path_alloc(relpath, lines, findings):
    region = None  # (name, begin_lineno)
    for lineno, line in enumerate(lines, start=1):
        begin = HOT_PATH_BEGIN.search(line)
        if begin:
            if region is not None:
                findings.append(Finding(
                    relpath, lineno, "hot-path-alloc",
                    f"hot-path-begin({begin.group('name')}) opens inside "
                    f"region '{region[0]}' (begun at line {region[1]}): "
                    "regions do not nest, close the outer one first"))
            region = (begin.group("name"), lineno)
            continue
        if HOT_PATH_END.search(line):
            if region is None:
                findings.append(Finding(
                    relpath, lineno, "hot-path-alloc",
                    "hot-path-end without a matching hot-path-begin"))
            region = None
            continue
        if region is None:
            continue
        code = strip_comment(line)
        if HOT_NEW.search(code):
            findings.append(Finding(
                relpath, lineno, "hot-path-alloc",
                f"'new' in hot path '{region[0]}': allocate from the frame "
                "Arena or a reused scratch struct instead"))
        if HOT_VECTOR.search(code):
            findings.append(Finding(
                relpath, lineno, "hot-path-alloc",
                f"std::vector constructed in hot path '{region[0]}': use "
                "ArenaVector, an arena array, or caller-owned scratch"))
        if HOT_RESIZE.search(code):
            findings.append(Finding(
                relpath, lineno, "hot-path-alloc",
                f".resize() in hot path '{region[0]}' can grow the heap "
                "mid-frame: size scratch up front, or waive with a comment "
                "if capacity is provably stable"))
    if region is not None:
        findings.append(Finding(
            relpath, region[1], "hot-path-alloc",
            f"unterminated hot-path region '{region[0]}': add "
            "'// lint: hot-path-end'"))


RULES = {
    "mutex-guard": check_mutex_guard,
    "nondeterminism": check_nondeterminism,
    "status-discard": check_status_discard,
    "include-hygiene": check_include_hygiene,
    "steady-clock": check_steady_clock,
    "hot-path-alloc": check_hot_path_alloc,
}


def apply_waivers(lines, findings):
    kept = []
    for finding in findings:
        line = lines[finding.line - 1] if finding.line - 1 < len(lines) else ""
        waived = any(
            match.group("rule") == finding.rule
            for match in WAIVER_ALLOW.finditer(line))
        if not waived:
            kept.append(finding)
    return kept


def lint_file(root, relpath):
    path = os.path.join(root, relpath)
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            lines = fh.read().splitlines()
    except OSError as err:
        return [Finding(relpath, 1, "io", f"unreadable: {err}")]
    findings = []
    for checker in RULES.values():
        checker(relpath, lines, findings)
    return apply_waivers(lines, findings)


def collect_files(root, subdirs):
    files = []
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTENSIONS):
                    full = os.path.join(dirpath, name)
                    files.append(os.path.relpath(full, root).replace(os.sep, "/"))
    return sorted(files)


def run_lint(root, subdirs):
    findings = []
    for relpath in collect_files(root, subdirs):
        findings.extend(lint_file(root, relpath))
    for finding in findings:
        print(finding)
    if findings:
        print(f"dievent_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"dievent_lint: clean ({len(collect_files(root, subdirs))} files)")
    return 0


# Every waiver form in the tree, for --waiver-report: this lint's two
# markers plus the lock-rank checker's (tools/lockrank_check.py).
WAIVER_FORMS = (
    ("lint: unguarded",
     re.compile(r"//\s*lint:\s*unguarded\b")),
    ("lint: allow",
     re.compile(r"//\s*lint:\s*allow\((?P<rule>[a-z-]+)\)")),
    ("lockrank: allow",
     re.compile(r"//\s*lockrank:\s*allow\((?P<rule>[a-z-]+)\)")),
)


def waiver_justification(lines, lineno, match):
    """The waiver's stated reason: trailing text on the waiver line, else
    the nearest comment-only line(s) directly above. None when absent."""
    trailing = lines[lineno - 1][match.end():].strip().lstrip(":").strip()
    if re.search(r"\w", trailing):
        return trailing
    comment = []
    idx = lineno - 2
    while idx >= 0 and lines[idx].strip().startswith("//"):
        text = lines[idx].strip().lstrip("/").strip()
        # Another waiver marker is not a justification for this one.
        if any(pat.search(lines[idx]) for _, pat in WAIVER_FORMS):
            text = ""
        if re.search(r"\w", text):
            comment.insert(0, text)
        idx -= 1
    return " ".join(comment) if comment else None


def run_waiver_report(root, subdirs):
    entries = []  # (relpath, lineno, label, justification or None)
    for relpath in collect_files(root, subdirs):
        with open(os.path.join(root, relpath), encoding="utf-8",
                  errors="replace") as fh:
            lines = fh.read().splitlines()
        for lineno, line in enumerate(lines, start=1):
            if line.lstrip().startswith("///"):
                continue  # doc comments quote waiver syntax in prose
            for kind, pattern in WAIVER_FORMS:
                for match in pattern.finditer(line):
                    rule = (match.groupdict().get("rule") or "").strip()
                    label = f"{kind}({rule})" if rule else kind
                    entries.append((relpath, lineno, label,
                                    waiver_justification(lines, lineno,
                                                         match)))
    unjustified = [e for e in entries if e[3] is None]
    for relpath, lineno, label, justification in entries:
        why = justification if justification else "<NO JUSTIFICATION>"
        print(f"{relpath}:{lineno}: [{label}] {why}")
    if unjustified:
        print(f"dievent_lint --waiver-report: {len(unjustified)} of "
              f"{len(entries)} waiver(s) have no justification (say why "
              "on the waiver line or a comment directly above)",
              file=sys.stderr)
        return 1
    print(f"dievent_lint --waiver-report: {len(entries)} waiver(s), "
          "all justified")
    return 0


def run_self_test(root):
    fixtures = "tests/lint_fixtures"
    expected = set()
    for relpath in collect_files(root, [fixtures]):
        with open(os.path.join(root, relpath), encoding="utf-8") as fh:
            for lineno, line in enumerate(fh.read().splitlines(), start=1):
                for match in EXPECT_MARKER.finditer(line):
                    expected.add((relpath, lineno, match.group("rule")))
    actual = set()
    for relpath in collect_files(root, [fixtures]):
        for finding in lint_file(root, relpath):
            actual.add(finding.key())
    missing = expected - actual
    unexpected = actual - expected
    for path, line, rule in sorted(missing):
        print(f"{path}:{line}: [self-test] expected a {rule} finding here, "
              "rule did not fire")
    for path, line, rule in sorted(unexpected):
        print(f"{path}:{line}: [self-test] unexpected {rule} finding "
              "(no lint-expect marker)")
    if missing or unexpected:
        print(f"dievent_lint --self-test: FAILED "
              f"({len(missing)} missing, {len(unexpected)} unexpected)",
              file=sys.stderr)
        return 1
    print(f"dievent_lint --self-test: OK ({len(expected)} expected findings "
          "all fired, no extras)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--subdir", action="append", default=None,
                        help="tree(s) to scan relative to root "
                             "(default: src, bench, and tools)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules against tests/lint_fixtures/")
    parser.add_argument("--waiver-report", action="store_true",
                        help="list every waiver with its justification; "
                             "fail on waivers that give none")
    args = parser.parse_args(argv)
    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"dievent_lint: no such root: {root}", file=sys.stderr)
        return 2
    if args.self_test:
        return run_self_test(root)
    subdirs = args.subdir or ["src", "bench", "tools"]
    if args.waiver_report:
        return run_waiver_report(root, subdirs)
    return run_lint(root, subdirs)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
