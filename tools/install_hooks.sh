#!/bin/sh
# Installs the repository git hooks from tools/hooks/ into .git/hooks/.
#
# Copies (not symlinks) so a checkout on filesystems without symlink
# support still works; re-run after pulling hook changes. Refuses to
# clobber a hook it did not install unless --force is given.

set -e

force=0
[ "$1" = "--force" ] && force=1

root="$(git rev-parse --show-toplevel)"
hooks_src="$root/tools/hooks"
hooks_dst="$(git rev-parse --git-path hooks)"
marker="DiEvent pre-commit hook"

for hook in "$hooks_src"/*; do
    name="$(basename "$hook")"
    dst="$hooks_dst/$name"
    if [ -e "$dst" ] && [ "$force" -ne 1 ] && \
       ! grep -q "$marker" "$dst" 2>/dev/null; then
        echo "install_hooks: $dst exists and is not ours; use --force" >&2
        exit 1
    fi
    cp "$hook" "$dst"
    chmod +x "$dst"
    echo "installed $name -> $dst"
done
