#include "metadata/summarization.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace dievent {

namespace {

/// Index of the stored look-at record closest to `frame`, or -1.
int NearestLookAt(const MetadataRepository& repo, int frame) {
  const auto& records = repo.lookat_records();
  if (records.empty()) return -1;
  auto it = std::lower_bound(
      records.begin(), records.end(), frame,
      [](const LookAtRecord& r, int f) { return r.frame < f; });
  if (it == records.end()) return static_cast<int>(records.size()) - 1;
  if (it == records.begin()) return 0;
  auto prev = it - 1;
  return (it->frame - frame < frame - prev->frame)
             ? static_cast<int>(it - records.begin())
             : static_cast<int>(prev - records.begin());
}

/// Overall happiness at the stored record nearest to `frame`;
/// fallback 0 when none exists.
double OverallHappinessNear(const MetadataRepository& repo, int frame) {
  const auto& records = repo.overall_records();
  if (records.empty()) return 0.0;
  auto it = std::lower_bound(
      records.begin(), records.end(), frame,
      [](const OverallEmotionRecord& r, int f) { return r.frame < f; });
  if (it == records.end()) --it;
  return it->overall_happiness;
}

}  // namespace

Result<std::vector<SummaryEntry>> VideoSummarizer::Summarize(
    const VideoStructure& structure,
    const std::vector<Histogram>& signatures,
    const MetadataRepository& repository) const {
  if (options_.max_entries <= 0) {
    return Status::InvalidArgument("max_entries must be positive");
  }
  const double fps = structure.fps > 0 ? structure.fps : 1.0;

  // Candidate pool: every key frame of every shot.
  struct Candidate {
    int frame;
    double semantic = 0.0;
    std::string reason;
  };
  std::vector<Candidate> candidates;
  for (const Shot& shot : structure.AllShots()) {
    for (int kf : shot.key_frames) candidates.push_back({kf, 0.0, ""});
  }
  if (candidates.empty()) return std::vector<SummaryEntry>{};

  // Semantic importance from the metadata layers.
  std::vector<EyeContactEpisode> episodes =
      repository.EyeContactEpisodes(/*min_length=*/1, /*max_gap=*/2);
  const auto& names = repository.context().participant_names;
  auto name = [&](int i) {
    return i < static_cast<int>(names.size()) ? names[i]
                                              : StrFormat("P%d", i + 1);
  };
  for (Candidate& c : candidates) {
    // Eye-contact onset nearby.
    for (const EyeContactEpisode& ep : episodes) {
      if (std::abs(ep.begin_frame - c.frame) <= options_.event_window) {
        c.semantic += 0.5;
        if (c.reason.empty()) {
          c.reason = StrFormat("eye contact begins (%s,%s)",
                               name(ep.a).c_str(), name(ep.b).c_str());
        }
      }
    }
    // Attention concentration: one participant drawing most looks.
    int li = NearestLookAt(repository, c.frame);
    if (li >= 0) {
      const LookAtRecord& r = repository.lookat_records()[li];
      if (r.n > 1) {
        int best_col = 0, best_count = 0;
        for (int y = 0; y < r.n; ++y) {
          int count = 0;
          for (int x = 0; x < r.n; ++x) {
            if (x != y && r.At(x, y)) ++count;
          }
          if (count > best_count) {
            best_count = count;
            best_col = y;
          }
        }
        double concentration =
            static_cast<double>(best_count) / (r.n - 1);
        if (concentration >= 0.6) {
          c.semantic += 0.3 * concentration;
          if (c.reason.empty()) {
            c.reason = StrFormat("group attention on %s",
                                 name(best_col).c_str());
          }
        }
      }
    }
    // Group-emotion swing around the frame.
    double before =
        OverallHappinessNear(repository, c.frame - options_.event_window);
    double after =
        OverallHappinessNear(repository, c.frame + options_.event_window);
    double swing = std::abs(after - before);
    if (swing > 0.1) {
      c.semantic += 0.4 * swing;
      if (c.reason.empty()) {
        c.reason = after > before ? "group mood rises" : "group mood drops";
      }
    }
    if (c.reason.empty()) c.reason = "representative key frame";
  }

  // Greedy selection maximizing semantic * w + novelty * (1 - w).
  const bool have_sigs = !signatures.empty();
  std::vector<SummaryEntry> summary;
  std::vector<bool> used(candidates.size(), false);
  std::vector<int> selected_frames;
  const int budget =
      std::min<int>(options_.max_entries,
                    static_cast<int>(candidates.size()));
  for (int pick = 0; pick < budget; ++pick) {
    int best = -1;
    double best_score = -1;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      double novelty = 1.0;
      if (have_sigs &&
          candidates[i].frame < static_cast<int>(signatures.size())) {
        for (int sel : selected_frames) {
          if (sel < static_cast<int>(signatures.size())) {
            novelty = std::min(
                novelty,
                ChiSquareDistance(signatures[candidates[i].frame],
                                  signatures[sel]));
          }
        }
      }
      double score = options_.semantic_weight * candidates[i].semantic +
                     (1.0 - options_.semantic_weight) * novelty;
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best < 0 || best_score < options_.min_score) break;
    used[best] = true;
    selected_frames.push_back(candidates[best].frame);
    SummaryEntry entry;
    entry.frame = candidates[best].frame;
    entry.timestamp_s = candidates[best].frame / fps;
    entry.score = best_score;
    entry.reason = candidates[best].reason;
    summary.push_back(std::move(entry));
  }
  std::sort(summary.begin(), summary.end(),
            [](const SummaryEntry& a, const SummaryEntry& b) {
              return a.frame < b.frame;
            });
  return summary;
}

}  // namespace dievent
