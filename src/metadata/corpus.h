/// \file corpus.h
/// The sharded event corpus: cross-event storage and retrieval over
/// per-event DurableEventStore directories (the fleet's natural shard
/// unit). This is the layer that answers the paper's "querying scenes
/// w.r.t. a particular context" across MANY dining events instead of
/// one.
///
/// On-disk layout of a corpus directory:
///
///   MANIFEST              shard index (atomic replace, CRC-framed)
///   <shard-dir>/          one DurableEventStore per event
///     snapshot.dmr
///     journal-NNNNNN.wal
///
/// The MANIFEST lists only SEALED shards: a shard becomes visible to
/// queries after SealShard (checkpoint + close + index) or
/// RegisterShard (fleet completion). Each entry carries the event's
/// context plus time/frame/participant bounds, so scope predicates and
/// frame-level pruning run against the manifest alone — a query only
/// opens the shards it cannot prune. Unsealed directories (a writer
/// that crashed before sealing) are invisible to queries and
/// recoverable via ResumeShard; a crash between writing shard data and
/// the manifest rename leaves the corpus exactly as if the seal never
/// happened.
///
/// Query fan-out: per-shard evaluation runs over the shared ThreadPool
/// (serially when none is given), merging per-event FrameMatch /
/// SegmentMatch streams into a deterministic, event-id-ordered result
/// that is bit-identical to evaluating every shard serially — pruning
/// and parallelism are pure optimizations.
///
/// Locking (LockRank::kCorpus): mu_ guards the manifest, the open
/// writer table, and the repository cache. It is never held across
/// store I/O, pool submits, or TaskGroup::Wait.

#ifndef DIEVENT_METADATA_CORPUS_H_
#define DIEVENT_METADATA_CORPUS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "metadata/durable_store.h"
#include "metadata/query.h"
#include "metadata/repository.h"

namespace dievent {

/// One sealed shard as recorded in the MANIFEST.
struct ShardIndexEntry {
  std::string dir;        ///< shard directory, relative to the corpus root
  std::string event_id;   ///< context.event_id (falls back to `dir`)
  EventContext context;   ///< scope predicates evaluate against this
  uint64_t records = 0;   ///< total records at seal time
  /// Inclusive look-at timestamp bounds; unset when the shard has no
  /// look-at records (then any frame query trivially matches nothing).
  std::optional<std::pair<double, double>> time_bounds;
  /// Inclusive frame bounds over all frame-stamped records.
  std::optional<std::pair<int, int>> frame_bounds;
  /// Largest look-at matrix size any record has — the exact bound for
  /// participant-reference pruning (context.num_participants is
  /// advisory and may disagree with the records).
  int max_lookat_n = 0;
};

struct CorpusOptions {
  /// Filesystem for the manifest and every shard; null = default.
  FileSystem* fs = nullptr;
  /// Pool for per-shard query fan-out; null = evaluate serially.
  ThreadPool* pool = nullptr;
  /// Per-shard store knobs (fsync policy, rotation). The corpus
  /// filesystem overrides `store.fs`.
  DurableStoreOptions store;
};

/// Which result streams a corpus query materializes.
struct CorpusQueryOptions {
  bool scenes = false;         ///< also roll matches up into scenes
  double min_coverage = 0.5;   ///< scene coverage threshold
};

/// Per-event slice of a corpus query result.
struct EventMatches {
  std::string event_id;
  std::string shard_dir;
  std::vector<FrameMatch> frames;
  std::vector<SegmentMatch> scenes;  ///< filled when options.scenes
};

struct CorpusQueryResult {
  /// One entry per event in scope, ordered by (event_id, shard_dir) —
  /// deterministic regardless of evaluation order. Events whose shard
  /// was pruned appear with empty match lists.
  std::vector<EventMatches> events;
  uint64_t shards_in_scope = 0;
  uint64_t shards_pruned = 0;   ///< answered from the manifest alone
  uint64_t shards_opened = 0;   ///< shards actually evaluated
  uint64_t total_frames = 0;    ///< sum of frames across events
};

class EventCorpus {
 public:
  /// Opens (creating if needed) the corpus in `dir` and loads the
  /// manifest. A damaged manifest is Corruption, never a partial load.
  static Result<std::unique_ptr<EventCorpus>> Open(
      const std::string& dir, const CorpusOptions& options = {});

  ~EventCorpus();

  EventCorpus(const EventCorpus&) = delete;
  EventCorpus& operator=(const EventCorpus&) = delete;

  // --- ingest ---------------------------------------------------------
  /// Creates a new shard directory for `event_id` and opens its store.
  /// The corpus owns the store; the pointer stays valid until
  /// SealShard / destruction. AlreadyExists if the event has an open
  /// writer or a sealed shard.
  Result<DurableEventStore*> BeginShard(const std::string& event_id)
      EXCLUDES(mu_);

  /// Reopens the unsealed shard for `event_id` (e.g. after a crash),
  /// recovering its store state. NotFound if no such directory.
  Result<DurableEventStore*> ResumeShard(const std::string& event_id)
      EXCLUDES(mu_);

  /// Checkpoints and closes the shard's store, then publishes it to
  /// queries by rewriting the manifest atomically. After OK the shard
  /// is durable and visible; on error the writer is dropped but the
  /// shard stays unsealed (ResumeShard recovers it).
  Status SealShard(const std::string& event_id) EXCLUDES(mu_);

  /// Publishes an externally written DurableEventStore directory (the
  /// fleet scheduler's completion hook). `store_dir` may be absolute or
  /// relative to the corpus root; it is indexed read-only — the owner
  /// may keep the directory open. Re-registering an already-registered
  /// directory refreshes its index entry.
  Status RegisterShard(const std::string& store_dir) EXCLUDES(mu_);

  // --- query ----------------------------------------------------------
  /// Evaluates a cross-event query: scope-filters shards against the
  /// manifest, prunes shards whose bounds cannot match the frame
  /// predicates, fans the rest over the pool, and merges the streams.
  Result<CorpusQueryResult> Query(const CorpusQuerySpec& spec,
                                  const CorpusQueryOptions& options = {})
      const EXCLUDES(mu_);

  /// Sealed shards, manifest order.
  std::vector<ShardIndexEntry> shards() const EXCLUDES(mu_);
  const std::string& dir() const { return dir_; }

  /// True when the manifest alone proves the shard cannot contribute a
  /// frame match (no look-at records, disjoint time range, or a
  /// referenced participant the event does not have). Exposed for the
  /// pruning regression tests.
  static bool CanPruneShard(const ShardIndexEntry& entry,
                            const QuerySpec& frame);
  /// True when the entry's context satisfies the scope predicates.
  static bool ShardInScope(const ShardIndexEntry& entry,
                           const CorpusScopeSpec& scope);

 private:
  EventCorpus(std::string dir, CorpusOptions options)
      : dir_(std::move(dir)), options_(options) {}

  FileSystem* fs() const;
  Status LoadManifest();
  Status WriteManifestLocked() REQUIRES(mu_);
  /// Builds the index entry a repository seals into the manifest.
  static ShardIndexEntry IndexRepository(const MetadataRepository& repo,
                                         const std::string& shard_dir);
  /// Cache lookup; loads read-only (and prewarms the time index)
  /// outside the lock on miss.
  Result<std::shared_ptr<const MetadataRepository>> ShardRepository(
      const ShardIndexEntry& entry) const EXCLUDES(mu_);

  const std::string dir_;
  const CorpusOptions options_;

  mutable Mutex mu_{LockRank::kCorpus};
  std::vector<ShardIndexEntry> manifest_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<DurableEventStore>> writers_
      GUARDED_BY(mu_);
  /// Read-only repositories keyed by shard dir, shared with in-flight
  /// query tasks. Entries are immutable once published (time index
  /// prewarmed before insert).
  mutable std::map<std::string, std::shared_ptr<const MetadataRepository>>
      cache_ GUARDED_BY(mu_);
};

/// Shard directory name for an event id ("shard-" + sanitized id).
std::string ShardDirName(const std::string& event_id);

/// Manifest file name within a corpus directory.
extern const char kManifestFileName[];

}  // namespace dievent

#endif  // DIEVENT_METADATA_CORPUS_H_
