/// \file query_parser.h
/// A small textual query language over the metadata repository — the
/// human-facing face of the paper's "rich query vocabulary" (Section
/// II-E), so a sociologist can type retrieval requests instead of
/// composing builder calls.
///
/// Frame grammar (conjunctive; '&' or 'and' between terms;
/// case-insensitive):
///
///   ec(P1, P3)          mutual eye contact between P1 and P3
///   look(P2, P1)        P2 looking at P1
///   watched(P1)         anyone looking at P1
///   feel(P2, happy)     P2 showing the named emotion
///   time[10, 20)        timestamp in [10 s, 20 s)
///   oh >= 0.5           overall happiness at least 0.5
///   valence >= -0.2     mean valence at least -0.2
///
/// Participants are written 1-based with an optional 'P' prefix ("P1" or
/// "1") and mapped to the repository's 0-based ids.
///
/// Corpus grammar (query_parser.cc; evaluated by metadata/corpus.h):
///
///   events
///   events where venue = "sala roja" & participants >= 4
///   events where occasion = "birthday" : ec(P1, P2) & oh >= 0.5
///
/// Scope fields: event, venue, occasion, date (string equality, quoted)
/// and participants >= N. An optional 'context.' prefix on a scope
/// field name is accepted ("context.venue"). Everything after ':' is a
/// frame query applied within each matching event.
///
/// FormatQuerySpec / FormatCorpusQuery print the canonical spelling:
/// parse -> print is a fixpoint (print(parse(print(q))) == print(q)),
/// which is what the grammar fuzz tests pin.
///
/// Example: "ec(P1,P3) & time[8,12) and oh >= 0.25"

#ifndef DIEVENT_METADATA_QUERY_PARSER_H_
#define DIEVENT_METADATA_QUERY_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "metadata/query.h"

namespace dievent {

/// Parses `text` into a repository-independent frame predicate spec.
/// Errors are InvalidArgument and carry the offending token; malformed
/// input never crashes or returns a partial spec.
Result<QuerySpec> ParseQuerySpec(std::string_view text);

/// Parses `text` into a Query over `repository`. The repository must
/// outlive the returned query.
Result<Query> ParseQuery(std::string_view text,
                         const MetadataRepository* repository);

/// Parses a cross-event corpus query ("events [where ...] [: ...]").
Result<CorpusQuerySpec> ParseCorpusQuery(std::string_view text);

/// Canonical text for a frame spec; empty string for an empty spec.
/// ParseQuerySpec(FormatQuerySpec(s)) reproduces `s` exactly.
std::string FormatQuerySpec(const QuerySpec& spec);

/// Canonical text for a corpus query ("events" when fully empty).
std::string FormatCorpusQuery(const CorpusQuerySpec& spec);

}  // namespace dievent

#endif  // DIEVENT_METADATA_QUERY_PARSER_H_
