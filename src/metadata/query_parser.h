/// \file query_parser.h
/// A small textual query language over the metadata repository — the
/// human-facing face of the paper's "rich query vocabulary" (Section
/// II-E), so a sociologist can type retrieval requests instead of
/// composing builder calls.
///
/// Grammar (conjunctive; '&' or 'and' between terms; case-insensitive):
///
///   ec(P1, P3)          mutual eye contact between P1 and P3
///   look(P2, P1)        P2 looking at P1
///   watched(P1)         anyone looking at P1
///   feel(P2, happy)     P2 showing the named emotion
///   time[10, 20)        timestamp in [10 s, 20 s)
///   oh >= 0.5           overall happiness at least 0.5
///   valence >= -0.2     mean valence at least -0.2
///
/// Participants are written 1-based with an optional 'P' prefix ("P1" or
/// "1") and mapped to the repository's 0-based ids.
///
/// Example: "ec(P1,P3) & time[8,12) and oh >= 0.25"

#ifndef DIEVENT_METADATA_QUERY_PARSER_H_
#define DIEVENT_METADATA_QUERY_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "metadata/query.h"

namespace dievent {

/// Parses `text` into a Query over `repository`. The repository must
/// outlive the returned query. Errors carry the offending token.
Result<Query> ParseQuery(std::string_view text,
                         const MetadataRepository* repository);

}  // namespace dievent

#endif  // DIEVENT_METADATA_QUERY_PARSER_H_
