#include "metadata/event_collection.h"

#include <algorithm>
#include <filesystem>

#include "common/strings.h"

namespace dievent {

EventStats ComputeEventStats(const MetadataRepository& repo) {
  EventStats stats;
  const EventContext& ctx = repo.context();
  stats.event_id = ctx.event_id;
  stats.location = ctx.location;
  stats.occasion = ctx.occasion;
  stats.participants = ctx.num_participants;
  stats.frames = static_cast<int>(repo.lookat_records().size());
  const double fps = repo.fps() > 0 ? repo.fps() : 1.0;
  stats.duration_s = stats.frames / fps;

  for (const OverallEmotionRecord& r : repo.overall_records()) {
    stats.mean_overall_happiness += r.overall_happiness;
    stats.mean_valence += r.mean_valence;
  }
  if (!repo.overall_records().empty()) {
    stats.mean_overall_happiness /=
        static_cast<double>(repo.overall_records().size());
    stats.mean_valence /=
        static_cast<double>(repo.overall_records().size());
  }

  for (const EyeContactEpisode& ep : repo.EyeContactEpisodes(2, 1)) {
    stats.eye_contact_s += ep.Length() / fps;
  }

  LookAtSummary summary = repo.Summarize();
  if (summary.size() > 0) {
    int dom = summary.DominantParticipant();
    stats.dominant =
        dom < static_cast<int>(ctx.participant_names.size())
            ? ctx.participant_names[dom]
            : StrFormat("P%d", dom + 1);
  }
  return stats;
}

Result<int> EventCollection::LoadDirectory(const std::string& directory) {
  std::error_code ec;
  std::filesystem::directory_iterator it(directory, ec);
  if (ec) {
    return Status::IoError(
        StrFormat("cannot list %s: %s", directory.c_str(),
                  ec.message().c_str()));
  }
  int loaded = 0;
  std::string failures;
  for (const auto& entry : std::filesystem::directory_iterator(directory)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".dmr") {
      continue;
    }
    auto repo = MetadataRepository::Load(entry.path().string());
    if (!repo.ok()) {
      failures += entry.path().filename().string() + " ";
      continue;
    }
    Add(ComputeEventStats(repo.value()));
    ++loaded;
  }
  if (loaded == 0 && !failures.empty()) {
    return Status::Corruption("no loadable events; failed: " + failures);
  }
  return loaded;
}

std::vector<EventStats> EventCollection::RankedBySatisfaction() const {
  std::vector<EventStats> ranked = events_;
  std::sort(ranked.begin(), ranked.end(),
            [](const EventStats& a, const EventStats& b) {
              return a.mean_valence > b.mean_valence;
            });
  return ranked;
}

std::string EventCollection::ComparisonTable() const {
  std::string out = StrFormat(
      "%-18s %-8s %-10s %-10s %-10s %-10s %-8s\n", "event", "guests",
      "dur(s)", "happy", "valence", "ec(s)", "dominant");
  for (const EventStats& e : RankedBySatisfaction()) {
    out += StrFormat("%-18s %-8d %-10.1f %-10.2f %-+10.2f %-10.1f %-8s\n",
                     e.event_id.c_str(), e.participants, e.duration_s,
                     e.mean_overall_happiness, e.mean_valence,
                     e.eye_contact_s, e.dominant.c_str());
  }
  return out;
}

}  // namespace dievent
