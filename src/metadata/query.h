/// \file query.h
/// The repository's query vocabulary (paper Section II-E: "a rich query
/// vocabulary so that the queries will return more semantic results").
///
/// A Query is a conjunction of predicates over the per-frame layers; it
/// evaluates to matching frames, which can additionally be rolled up into
/// matching shots or scenes ("querying scenes w.r.t. a particular
/// context").

#ifndef DIEVENT_METADATA_QUERY_H_
#define DIEVENT_METADATA_QUERY_H_

#include <optional>
#include <vector>

#include "common/emotion.h"
#include "metadata/repository.h"

namespace dievent {

/// One matched frame.
struct FrameMatch {
  int frame = 0;
  double timestamp_s = 0.0;
};

/// A matched structural unit (shot or scene) with predicate coverage.
struct SegmentMatch {
  int index = 0;        ///< shot or scene index
  int begin_frame = 0;
  int end_frame = 0;
  double coverage = 0;  ///< fraction of the segment's frames that match
};

/// Fluent conjunction of predicates evaluated against a repository.
class Query {
 public:
  explicit Query(const MetadataRepository* repo) : repo_(repo) {}

  /// Restricts to timestamps in [t0, t1) seconds.
  Query& TimeRange(double t0, double t1);

  /// Requires participant `looker` to be looking at `target`.
  Query& Looking(int looker, int target);

  /// Requires mutual eye contact between a and b.
  Query& EyeContact(int a, int b);

  /// Requires `participant` to show `emotion` (any confidence).
  Query& Feeling(int participant, Emotion emotion);

  /// Requires the overall happiness to be at least `min_oh`.
  Query& MinOverallHappiness(double min_oh);

  /// Requires the mean valence to be at least `min_valence`.
  Query& MinValence(double min_valence);

  /// Requires anybody to be looking at `target` (attention query; useful
  /// for dominance analysis).
  Query& AnyoneLookingAt(int target);

  /// Frames satisfying every predicate.
  std::vector<FrameMatch> Execute() const;

  /// Shots whose matching-frame coverage is at least `min_coverage`.
  std::vector<SegmentMatch> ExecuteShots(double min_coverage = 0.5) const;

  /// Scenes whose matching-frame coverage is at least `min_coverage` —
  /// the paper's "querying scenes w.r.t. a particular context".
  std::vector<SegmentMatch> ExecuteScenes(double min_coverage = 0.5) const;

 private:
  bool FrameMatches(const LookAtRecord& lookat) const;

  const MetadataRepository* repo_;
  std::optional<std::pair<double, double>> time_range_;
  std::vector<std::pair<int, int>> looking_;
  std::vector<std::pair<int, int>> eye_contact_;
  std::vector<std::pair<int, Emotion>> feeling_;
  std::optional<double> min_oh_;
  std::optional<double> min_valence_;
  std::vector<int> anyone_at_;
};

}  // namespace dievent

#endif  // DIEVENT_METADATA_QUERY_H_
