/// \file query.h
/// The repository's query vocabulary (paper Section II-E: "a rich query
/// vocabulary so that the queries will return more semantic results").
///
/// A QuerySpec is a repository-independent conjunction of predicates
/// over the per-frame layers; binding it to a repository yields a Query
/// that evaluates to matching frames, which can additionally be rolled
/// up into matching shots or scenes ("querying scenes w.r.t. a
/// particular context"). Keeping the spec separate from the binding is
/// what lets the corpus engine (metadata/corpus.h) evaluate one parsed
/// query against many event shards in parallel.

#ifndef DIEVENT_METADATA_QUERY_H_
#define DIEVENT_METADATA_QUERY_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/emotion.h"
#include "metadata/repository.h"

namespace dievent {

/// One matched frame.
struct FrameMatch {
  int frame = 0;
  double timestamp_s = 0.0;
};

inline bool operator==(const FrameMatch& a, const FrameMatch& b) {
  return a.frame == b.frame && a.timestamp_s == b.timestamp_s;
}

/// A matched structural unit (shot or scene) with predicate coverage.
struct SegmentMatch {
  int index = 0;        ///< shot or scene index
  int begin_frame = 0;
  int end_frame = 0;
  double coverage = 0;  ///< fraction of the segment's frames that match
};

inline bool operator==(const SegmentMatch& a, const SegmentMatch& b) {
  return a.index == b.index && a.begin_frame == b.begin_frame &&
         a.end_frame == b.end_frame && a.coverage == b.coverage;
}

/// The frame-level predicate conjunction, independent of any repository.
/// Predicate vectors keep insertion order; FormatQuerySpec
/// (query_parser.h) prints them in that order, so parse -> print is a
/// fixpoint.
struct QuerySpec {
  std::optional<std::pair<double, double>> time_range;
  std::vector<std::pair<int, int>> looking;      ///< (looker, target)
  std::vector<std::pair<int, int>> eye_contact;  ///< unordered pair
  std::vector<std::pair<int, Emotion>> feeling;
  std::optional<double> min_oh;
  std::optional<double> min_valence;
  std::vector<int> anyone_at;

  bool Empty() const {
    return !time_range && looking.empty() && eye_contact.empty() &&
           feeling.empty() && !min_oh && !min_valence && anyone_at.empty();
  }

  /// Largest participant id referenced by a look-matrix predicate
  /// (looking / eye_contact / anyone_at), or -1 when none. These
  /// predicates fail on every record whose matrix is smaller than the
  /// reference, so a shard whose largest matrix is <= this id can be
  /// pruned without opening it. `feeling` is deliberately excluded:
  /// emotion records carry their own participant ids, unbounded by the
  /// look-at matrix, so pruning on them would not be exact.
  int MaxParticipantRef() const;
};

inline bool operator==(const QuerySpec& a, const QuerySpec& b) {
  return a.time_range == b.time_range && a.looking == b.looking &&
         a.eye_contact == b.eye_contact && a.feeling == b.feeling &&
         a.min_oh == b.min_oh && a.min_valence == b.min_valence &&
         a.anyone_at == b.anyone_at;
}

/// Fluent conjunction of predicates evaluated against a repository.
class Query {
 public:
  explicit Query(const MetadataRepository* repo) : repo_(repo) {}
  Query(const MetadataRepository* repo, QuerySpec spec)
      : repo_(repo), spec_(std::move(spec)) {}

  const QuerySpec& spec() const { return spec_; }

  /// Restricts to timestamps in [t0, t1) seconds.
  Query& TimeRange(double t0, double t1);

  /// Requires participant `looker` to be looking at `target`.
  Query& Looking(int looker, int target);

  /// Requires mutual eye contact between a and b.
  Query& EyeContact(int a, int b);

  /// Requires `participant` to show `emotion` (any confidence).
  Query& Feeling(int participant, Emotion emotion);

  /// Requires the overall happiness to be at least `min_oh`.
  Query& MinOverallHappiness(double min_oh);

  /// Requires the mean valence to be at least `min_valence`.
  Query& MinValence(double min_valence);

  /// Requires anybody to be looking at `target` (attention query; useful
  /// for dominance analysis).
  Query& AnyoneLookingAt(int target);

  /// Frames satisfying every predicate.
  std::vector<FrameMatch> Execute() const;

  /// Shots whose matching-frame coverage is at least `min_coverage`.
  std::vector<SegmentMatch> ExecuteShots(double min_coverage = 0.5) const;

  /// Scenes whose matching-frame coverage is at least `min_coverage` —
  /// the paper's "querying scenes w.r.t. a particular context".
  std::vector<SegmentMatch> ExecuteScenes(double min_coverage = 0.5) const;

 private:
  bool FrameMatches(const LookAtRecord& lookat) const;

  const MetadataRepository* repo_;
  QuerySpec spec_;
};

/// Corpus scope: which events a cross-event query runs over. Context
/// predicates evaluate against the shard manifest (metadata/corpus.h),
/// which carries each sealed event's context — so scope filtering never
/// needs to open a shard.
struct CorpusScopeSpec {
  std::optional<std::string> event_id;   ///< exact EventContext.event_id
  std::optional<std::string> venue;      ///< exact EventContext.location
  std::optional<std::string> occasion;   ///< exact EventContext.occasion
  std::optional<std::string> date;       ///< exact EventContext.date
  std::optional<int> min_participants;   ///< at least this many

  bool Empty() const {
    return !event_id && !venue && !occasion && !date && !min_participants;
  }
};

inline bool operator==(const CorpusScopeSpec& a, const CorpusScopeSpec& b) {
  return a.event_id == b.event_id && a.venue == b.venue &&
         a.occasion == b.occasion && a.date == b.date &&
         a.min_participants == b.min_participants;
}

/// A full cross-event query: scope (which events) + frame predicates
/// (which frames within them). An empty frame spec matches every frame
/// that has a look-at record.
struct CorpusQuerySpec {
  CorpusScopeSpec scope;
  QuerySpec frame;
};

inline bool operator==(const CorpusQuerySpec& a, const CorpusQuerySpec& b) {
  return a.scope == b.scope && a.frame == b.frame;
}

}  // namespace dievent

#endif  // DIEVENT_METADATA_QUERY_H_
