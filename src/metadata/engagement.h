/// \file engagement.h
/// Per-participant engagement metrics over the stored gaze layer — the
/// quantities the paper's sociology use case reads off the look-at data:
/// attention given/received, eye-contact time, gaze reciprocity, and a
/// composite engagement score.

#ifndef DIEVENT_METADATA_ENGAGEMENT_H_
#define DIEVENT_METADATA_ENGAGEMENT_H_

#include <string>
#include <vector>

#include "metadata/repository.h"

namespace dievent {

/// One participant's interaction profile across the event.
struct ParticipantEngagement {
  int id = -1;
  std::string name;
  /// Fraction of frames this participant looked at somebody.
  double attention_given = 0;
  /// Fraction of frames somebody looked at this participant.
  double attention_received = 0;
  /// Fraction of frames this participant was in mutual eye contact.
  double eye_contact = 0;
  /// Of the frames where this participant looked at someone, the
  /// fraction where that gaze was returned (Argyle & Dean's reciprocity).
  double reciprocity = 0;
  /// Composite in [0, 1]: mean of given, received, and eye contact.
  double score = 0;
};

/// Event-level engagement report.
struct EngagementReport {
  std::vector<ParticipantEngagement> participants;
  /// Fraction of frames with at least one mutual eye contact.
  double group_eye_contact = 0;
  /// Pairwise mutual-gaze frame fractions, indexed [a][b] (symmetric).
  std::vector<std::vector<double>> pair_contact;

  /// Participant with the highest composite score, or -1 when empty.
  int MostEngaged() const;

  std::string ToString() const;
};

/// Computes the report from a repository's look-at records.
EngagementReport ComputeEngagement(const MetadataRepository& repository);

}  // namespace dievent

#endif  // DIEVENT_METADATA_ENGAGEMENT_H_
