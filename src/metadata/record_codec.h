/// \file record_codec.h
/// Bounds-checked binary encoding of repository records, shared by the
/// snapshot format (repository.cc) and the write-ahead journal
/// (durable_store.cc) so one record has exactly one byte layout.

#ifndef DIEVENT_METADATA_RECORD_CODEC_H_
#define DIEVENT_METADATA_RECORD_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/layers.h"
#include "common/result.h"
#include "metadata/records.h"

namespace dievent {

/// Appends little-endian fields to a std::string.
class BinWriter {
 public:
  explicit BinWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Bytes(const std::vector<uint8_t>& v) {
    U32(static_cast<uint32_t>(v.size()));
    Raw(v.data(), v.size());
  }
  void Ints(const std::vector<int>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (int x : v) I32(x);
  }

 private:
  void Raw(const void* p, size_t n) {
    out_->append(static_cast<const char*>(p), n);
  }
  std::string* out_;
};

/// Reads little-endian fields from a buffer. Out-of-bounds or absurd
/// field lengths flip ok() to false and make every later read return
/// zero values — callers check ok() once at the end of a parse.
class BinReader {
 public:
  explicit BinReader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool ok() const { return ok_; }
  size_t offset() const { return pos_; }
  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int32_t I32() {
    int32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (!Check(n)) return {};
    std::string s(n, '\0');
    Raw(s.data(), n);
    return ok_ ? s : std::string();
  }
  std::vector<uint8_t> Bytes() {
    uint32_t n = U32();
    if (!Check(n)) return {};
    std::vector<uint8_t> v(n);
    Raw(v.data(), n);
    return ok_ ? v : std::vector<uint8_t>();
  }
  std::vector<int> Ints() {
    uint32_t n = U32();
    if (!Check(n)) return {};
    std::vector<int> v(n);
    for (uint32_t i = 0; i < n && ok_; ++i) v[i] = I32();
    return ok_ ? v : std::vector<int>();
  }
  /// A raw sub-span of `n` bytes (for nested, checksummed sections).
  std::string_view Span(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return {};
    }
    std::string_view s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

 private:
  bool Check(uint32_t n) {
    // Field-length sanity: a corrupt length must never trigger a
    // multi-gigabyte allocation.
    if (n > (64u << 20)) ok_ = false;
    return ok_;
  }
  void Raw(void* p, size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return;
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- per-record encode/decode -------------------------------------------
// Decoders validate shape (matrix cell counts, emotion ids) and return
// Corruption with the offending detail, never a malformed record.

void EncodeLookAt(const LookAtRecord& r, std::string* out);
Status DecodeLookAt(BinReader* in, LookAtRecord* out);

void EncodeEmotion(const EmotionRecord& r, std::string* out);
Status DecodeEmotion(BinReader* in, EmotionRecord* out);

void EncodeOverallEmotion(const OverallEmotionRecord& r, std::string* out);
Status DecodeOverallEmotion(BinReader* in, OverallEmotionRecord* out);

void EncodeContext(const EventContext& ctx, std::string* out);
Status DecodeContext(BinReader* in, EventContext* out);

void EncodeShots(const std::vector<StoredShot>& shots, int num_scenes,
                 std::string* out);
Status DecodeShots(BinReader* in, std::vector<StoredShot>* shots,
                   int* num_scenes);

}  // namespace dievent

#endif  // DIEVENT_METADATA_RECORD_CODEC_H_
