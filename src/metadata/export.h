/// \file export.h
/// Tabular and structured export of the metadata repository, so the
/// paper's downstream users (sociologists with statistics software,
/// restaurant dashboards) can consume DiEvent output without linking the
/// library: per-layer CSV files and a JSON event report.

#ifndef DIEVENT_METADATA_EXPORT_H_
#define DIEVENT_METADATA_EXPORT_H_

#include <string>

#include "common/result.h"
#include "metadata/repository.h"

namespace dievent {

/// CSV of the directed gaze layer: frame,timestamp,looker,target
/// (one row per set look-at cell).
Status ExportLookAtCsv(const MetadataRepository& repository,
                       const std::string& path);

/// CSV of per-participant emotions: frame,timestamp,participant,emotion,
/// confidence.
Status ExportEmotionsCsv(const MetadataRepository& repository,
                         const std::string& path);

/// CSV of the group-emotion timeline: frame,timestamp,overall_happiness,
/// mean_valence,observed.
Status ExportOverallCsv(const MetadataRepository& repository,
                        const std::string& path);

/// CSV of derived eye-contact episodes: a,b,begin_frame,end_frame,
/// begin_s,end_s,duration_s.
Status ExportEpisodesCsv(const MetadataRepository& repository,
                         const std::string& path, int min_length = 2,
                         int max_gap = 1);

/// JSON event report: context, per-pair look-at summary, dominance,
/// episode list, emotion aggregates. Self-contained (no external schema).
std::string EventReportJson(const MetadataRepository& repository);

/// Writes EventReportJson to a file.
Status ExportEventReportJson(const MetadataRepository& repository,
                             const std::string& path);

}  // namespace dievent

#endif  // DIEVENT_METADATA_EXPORT_H_
