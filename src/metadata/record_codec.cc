#include "metadata/record_codec.h"

#include "common/emotion.h"
#include "common/strings.h"

namespace dievent {

void EncodeLookAt(const LookAtRecord& r, std::string* out) {
  BinWriter w(out);
  w.I32(r.frame);
  w.F64(r.timestamp_s);
  w.I32(r.n);
  w.Bytes(r.cells);
}

Status DecodeLookAt(BinReader* in, LookAtRecord* out) {
  out->frame = in->I32();
  out->timestamp_s = in->F64();
  out->n = in->I32();
  out->cells = in->Bytes();
  if (!in->ok()) return Status::Corruption("truncated look-at record");
  if (out->n < 0 ||
      out->cells.size() !=
          static_cast<size_t>(out->n) * static_cast<size_t>(out->n)) {
    return Status::Corruption("malformed look-at record");
  }
  return Status::OK();
}

void EncodeEmotion(const EmotionRecord& r, std::string* out) {
  BinWriter w(out);
  w.I32(r.frame);
  w.F64(r.timestamp_s);
  w.I32(r.participant);
  w.I32(static_cast<int32_t>(r.emotion));
  w.F64(r.confidence);
}

Status DecodeEmotion(BinReader* in, EmotionRecord* out) {
  out->frame = in->I32();
  out->timestamp_s = in->F64();
  out->participant = in->I32();
  int32_t e = in->I32();
  out->confidence = in->F64();
  if (!in->ok()) return Status::Corruption("truncated emotion record");
  if (e < 0 || e >= kNumEmotions) {
    return Status::Corruption(StrFormat("invalid emotion id %d", e));
  }
  out->emotion = static_cast<Emotion>(e);
  return Status::OK();
}

void EncodeOverallEmotion(const OverallEmotionRecord& r, std::string* out) {
  BinWriter w(out);
  w.I32(r.frame);
  w.F64(r.timestamp_s);
  w.F64(r.overall_happiness);
  w.F64(r.mean_valence);
  w.I32(r.observed);
}

Status DecodeOverallEmotion(BinReader* in, OverallEmotionRecord* out) {
  out->frame = in->I32();
  out->timestamp_s = in->F64();
  out->overall_happiness = in->F64();
  out->mean_valence = in->F64();
  out->observed = in->I32();
  if (!in->ok()) {
    return Status::Corruption("truncated overall-emotion record");
  }
  return Status::OK();
}

void EncodeContext(const EventContext& ctx, std::string* out) {
  BinWriter w(out);
  w.Str(ctx.event_id);
  w.Str(ctx.location);
  w.Str(ctx.date);
  w.Str(ctx.occasion);
  w.U32(static_cast<uint32_t>(ctx.menu.size()));
  for (const auto& m : ctx.menu) w.Str(m);
  w.F64(ctx.temperature_c);
  w.I32(ctx.num_participants);
  w.U32(static_cast<uint32_t>(ctx.participant_names.size()));
  for (const auto& nm : ctx.participant_names) w.Str(nm);
  w.U32(static_cast<uint32_t>(ctx.relations.size()));
  for (const auto& rel : ctx.relations) {
    w.I32(rel.a);
    w.I32(rel.b);
    w.Str(rel.relation);
  }
}

Status DecodeContext(BinReader* in, EventContext* out) {
  EventContext ctx;
  ctx.event_id = in->Str();
  ctx.location = in->Str();
  ctx.date = in->Str();
  ctx.occasion = in->Str();
  uint32_t n_menu = in->U32();
  for (uint32_t i = 0; i < n_menu && in->ok(); ++i) {
    ctx.menu.push_back(in->Str());
  }
  ctx.temperature_c = in->F64();
  ctx.num_participants = in->I32();
  uint32_t n_names = in->U32();
  for (uint32_t i = 0; i < n_names && in->ok(); ++i) {
    ctx.participant_names.push_back(in->Str());
  }
  uint32_t n_rel = in->U32();
  for (uint32_t i = 0; i < n_rel && in->ok(); ++i) {
    SocialRelation rel;
    rel.a = in->I32();
    rel.b = in->I32();
    rel.relation = in->Str();
    ctx.relations.push_back(std::move(rel));
  }
  if (!in->ok()) return Status::Corruption("truncated event context");
  *out = std::move(ctx);
  return Status::OK();
}

void EncodeShots(const std::vector<StoredShot>& shots, int num_scenes,
                 std::string* out) {
  BinWriter w(out);
  w.U32(static_cast<uint32_t>(shots.size()));
  w.I32(num_scenes);
  for (const auto& s : shots) {
    w.I32(s.begin_frame);
    w.I32(s.end_frame);
    w.I32(s.scene_index);
    w.Ints(s.key_frames);
  }
}

Status DecodeShots(BinReader* in, std::vector<StoredShot>* shots,
                   int* num_scenes) {
  uint32_t n_shots = in->U32();
  *num_scenes = in->I32();
  if (!in->ok() || n_shots > (64u << 20)) {
    return Status::Corruption("truncated shot table");
  }
  shots->clear();
  for (uint32_t i = 0; i < n_shots && in->ok(); ++i) {
    StoredShot s;
    s.begin_frame = in->I32();
    s.end_frame = in->I32();
    s.scene_index = in->I32();
    s.key_frames = in->Ints();
    shots->push_back(std::move(s));
  }
  if (!in->ok()) return Status::Corruption("truncated shot table");
  return Status::OK();
}

}  // namespace dievent
