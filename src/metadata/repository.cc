#include "metadata/repository.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/strings.h"
#include "io/crc32.h"
#include "io/file.h"
#include "metadata/record_codec.h"

namespace dievent {

namespace {

constexpr uint32_t kMagicV1 = 0x444D5231;  // "DMR1": legacy, unchecksummed
constexpr uint32_t kMagicV2 = 0x444D5232;  // "DMR2": per-section CRC32
constexpr uint32_t kVersionV2 = 2;

// Version-2 section identifiers. Each section is framed as
// [u8 id][u32 payload length][u32 masked crc32][payload]; the file ends
// with an empty kSectionEnd.
enum : uint8_t {
  kSectionEnd = 0,
  kSectionContext = 1,
  kSectionFps = 2,
  kSectionLookAt = 3,
  kSectionEmotions = 4,
  kSectionOverall = 5,
  kSectionShots = 6,
};

const char* SectionName(uint8_t id) {
  switch (id) {
    case kSectionContext: return "context";
    case kSectionFps: return "fps";
    case kSectionLookAt: return "look-at";
    case kSectionEmotions: return "emotions";
    case kSectionOverall: return "overall-emotion";
    case kSectionShots: return "shots";
    default: return "unknown";
  }
}

void AppendSection(uint8_t id, const std::string& payload,
                   std::string* out) {
  BinWriter w(out);
  w.U8(id);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(Crc32Mask(Crc32(payload.data(), payload.size())));
  out->append(payload);
}

}  // namespace

Status MetadataRepository::AddLookAt(LookAtRecord record) {
  if (record.n <= 0 ||
      record.cells.size() != static_cast<size_t>(record.n) * record.n) {
    return Status::InvalidArgument("malformed look-at record");
  }
  if (!lookat_.empty() && record.frame < lookat_.back().frame) {
    return Status::FailedPrecondition(
        "look-at records must arrive in frame order");
  }
  lookat_.push_back(std::move(record));
  InvalidateIndexes();
  return Status::OK();
}

Status MetadataRepository::AddEmotion(EmotionRecord record) {
  if (!emotions_.empty() && record.frame < emotions_.back().frame) {
    return Status::FailedPrecondition(
        "emotion records must arrive in frame order");
  }
  emotions_.push_back(record);
  return Status::OK();
}

Status MetadataRepository::AddOverallEmotion(OverallEmotionRecord record) {
  if (!overall_.empty() && record.frame < overall_.back().frame) {
    return Status::FailedPrecondition(
        "overall-emotion records must arrive in frame order");
  }
  overall_.push_back(record);
  return Status::OK();
}

void MetadataRepository::SetVideoStructure(const VideoStructure& structure) {
  shots_.clear();
  num_scenes_ = static_cast<int>(structure.scenes.size());
  if (structure.fps > 0) fps_ = structure.fps;
  for (int si = 0; si < num_scenes_; ++si) {
    for (const Shot& shot : structure.scenes[si].shots) {
      StoredShot s;
      s.begin_frame = shot.begin_frame;
      s.end_frame = shot.end_frame;
      s.scene_index = si;
      s.key_frames = shot.key_frames;
      shots_.push_back(std::move(s));
    }
  }
}

void MetadataRepository::SetStoredShots(std::vector<StoredShot> shots,
                                        int num_scenes) {
  shots_ = std::move(shots);
  num_scenes_ = num_scenes;
}

Result<int> MetadataRepository::FindLookAtIndex(int frame) const {
  auto it = std::lower_bound(
      lookat_.begin(), lookat_.end(), frame,
      [](const LookAtRecord& r, int f) { return r.frame < f; });
  if (it == lookat_.end() || it->frame != frame) {
    return Status::NotFound(StrFormat("no look-at record for frame %d",
                                      frame));
  }
  return static_cast<int>(it - lookat_.begin());
}

LookAtSummary MetadataRepository::Summarize(int begin_frame,
                                            int end_frame) const {
  if (lookat_.empty()) return LookAtSummary(0);
  LookAtSummary summary(lookat_.front().n);
  // Records are frame-sorted, so the requested window is a contiguous
  // index range — no need to test every record against the bounds.
  auto lo = std::lower_bound(
      lookat_.begin(), lookat_.end(), begin_frame,
      [](const LookAtRecord& r, int f) { return r.frame < f; });
  auto hi = std::lower_bound(
      lo, lookat_.end(), end_frame,
      [](const LookAtRecord& r, int f) { return r.frame < f; });
  for (auto it = lo; it != hi; ++it) {
    LookAtMatrix m = it->ToMatrix();
    (void)summary.Accumulate(m);
  }
  return summary;
}

std::optional<std::pair<int, int>> MetadataRepository::FrameBounds() const {
  std::optional<std::pair<int, int>> bounds;
  auto fold = [&bounds](int first, int last) {
    if (!bounds) {
      bounds = {first, last};
    } else {
      bounds->first = std::min(bounds->first, first);
      bounds->second = std::max(bounds->second, last);
    }
  };
  if (!lookat_.empty()) fold(lookat_.front().frame, lookat_.back().frame);
  if (!emotions_.empty()) {
    fold(emotions_.front().frame, emotions_.back().frame);
  }
  if (!overall_.empty()) fold(overall_.front().frame, overall_.back().frame);
  return bounds;
}

std::optional<std::pair<double, double>>
MetadataRepository::LookAtTimeBounds() const {
  if (lookat_.empty()) return std::nullopt;
  if (!time_index_valid_) BuildTimeIndex();
  if (time_monotonic_) {
    return std::make_pair(lookat_.front().timestamp_s,
                          lookat_.back().timestamp_s);
  }
  double lo = lookat_.front().timestamp_s, hi = lo;
  for (const LookAtRecord& r : lookat_) {
    lo = std::min(lo, r.timestamp_s);
    hi = std::max(hi, r.timestamp_s);
  }
  return std::make_pair(lo, hi);
}

std::pair<int, int> MetadataRepository::LookAtIndexRangeForTime(
    double t0, double t1) const {
  const int size = static_cast<int>(lookat_.size());
  if (size == 0 || t1 <= t0) return {0, 0};
  if (!time_index_valid_) BuildTimeIndex();
  if (!time_monotonic_) return {0, size};
  auto lo = std::lower_bound(
      lookat_.begin(), lookat_.end(), t0,
      [](const LookAtRecord& r, double t) { return r.timestamp_s < t; });
  auto hi = std::lower_bound(
      lo, lookat_.end(), t1,
      [](const LookAtRecord& r, double t) { return r.timestamp_s < t; });
  return {static_cast<int>(lo - lookat_.begin()),
          static_cast<int>(hi - lookat_.begin())};
}

void MetadataRepository::BuildTimeIndex() const {
  time_monotonic_ = true;
  for (size_t i = 1; i < lookat_.size(); ++i) {
    if (lookat_[i].timestamp_s < lookat_[i - 1].timestamp_s) {
      time_monotonic_ = false;
      break;
    }
  }
  time_index_valid_ = true;
}

void MetadataRepository::InvalidateIndexes() {
  pair_index_valid_ = false;
  time_index_valid_ = false;
}

void MetadataRepository::BuildPairIndex() const {
  pair_index_.clear();
  for (size_t i = 0; i < lookat_.size(); ++i) {
    const LookAtRecord& r = lookat_[i];
    for (int x = 0; x < r.n; ++x) {
      for (int y = 0; y < r.n; ++y) {
        if (x != y && r.At(x, y)) {
          pair_index_[{x, y}].push_back(static_cast<int>(i));
        }
      }
    }
  }
  pair_index_valid_ = true;
}

const std::vector<int>& MetadataRepository::FramesWithLook(
    int looker, int target) const {
  static const std::vector<int> kEmpty;
  if (!pair_index_valid_) BuildPairIndex();
  auto it = pair_index_.find({looker, target});
  return it == pair_index_.end() ? kEmpty : it->second;
}

std::vector<EyeContactEpisode> MetadataRepository::EyeContactEpisodes(
    int min_length, int max_gap) const {
  std::vector<EyeContactEpisode> episodes;
  if (lookat_.empty()) return episodes;
  const int n = lookat_.front().n;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      int run_begin = -1;
      int last_hit = -1;
      for (const LookAtRecord& r : lookat_) {
        bool ec = r.At(a, b) && r.At(b, a);
        if (ec) {
          if (run_begin < 0) {
            run_begin = r.frame;
          } else if (last_hit >= 0 && r.frame - last_hit - 1 > max_gap) {
            if (last_hit + 1 - run_begin >= min_length) {
              episodes.push_back(
                  EyeContactEpisode{a, b, run_begin, last_hit + 1});
            }
            run_begin = r.frame;
          }
          last_hit = r.frame;
        }
      }
      if (run_begin >= 0 && last_hit + 1 - run_begin >= min_length) {
        episodes.push_back(EyeContactEpisode{a, b, run_begin, last_hit + 1});
      }
    }
  }
  std::sort(episodes.begin(), episodes.end(),
            [](const EyeContactEpisode& x, const EyeContactEpisode& y) {
              return x.begin_frame < y.begin_frame;
            });
  return episodes;
}

Status MetadataRepository::Save(const std::string& path) const {
  return Save(FileSystem::Default(), path, 0);
}

Status MetadataRepository::Save(FileSystem* fs, const std::string& path,
                                uint64_t last_sequence) const {
  std::string data;
  {
    BinWriter w(&data);
    w.U32(kMagicV2);
    w.U32(kVersionV2);
    w.U64(last_sequence);
    w.U32(Crc32Mask(Crc32(data.data(), data.size())));
  }

  std::string payload;
  EncodeContext(context_, &payload);
  AppendSection(kSectionContext, payload, &data);

  payload.clear();
  BinWriter(&payload).F64(fps_);
  AppendSection(kSectionFps, payload, &data);

  payload.clear();
  BinWriter(&payload).U32(static_cast<uint32_t>(lookat_.size()));
  for (const auto& r : lookat_) EncodeLookAt(r, &payload);
  AppendSection(kSectionLookAt, payload, &data);

  payload.clear();
  BinWriter(&payload).U32(static_cast<uint32_t>(emotions_.size()));
  for (const auto& r : emotions_) EncodeEmotion(r, &payload);
  AppendSection(kSectionEmotions, payload, &data);

  payload.clear();
  BinWriter(&payload).U32(static_cast<uint32_t>(overall_.size()));
  for (const auto& r : overall_) EncodeOverallEmotion(r, &payload);
  AppendSection(kSectionOverall, payload, &data);

  payload.clear();
  EncodeShots(shots_, num_scenes_, &payload);
  AppendSection(kSectionShots, payload, &data);

  AppendSection(kSectionEnd, std::string(), &data);
  return AtomicWriteFile(fs, path, data);
}

namespace {

/// Legacy v1 body (everything after magic+version): the exact field
/// sequence the codec encoders use, with no checksums.
Result<MetadataRepository> LoadV1Body(BinReader* r,
                                      const std::string& path) {
  MetadataRepository repo;
  EventContext ctx;
  DIEVENT_RETURN_NOT_OK(DecodeContext(r, &ctx));
  repo.SetContext(std::move(ctx));
  repo.set_fps(r->F64());

  uint32_t n_look = r->U32();
  for (uint32_t i = 0; i < n_look && r->ok(); ++i) {
    LookAtRecord rec;
    Status s = DecodeLookAt(r, &rec);
    if (!s.ok()) {
      return Status::Corruption(s.message() + " in " + path);
    }
    DIEVENT_RETURN_NOT_OK(repo.AddLookAt(std::move(rec)));
  }
  uint32_t n_emo = r->U32();
  for (uint32_t i = 0; i < n_emo && r->ok(); ++i) {
    EmotionRecord rec;
    Status s = DecodeEmotion(r, &rec);
    if (!s.ok()) {
      return Status::Corruption(s.message() + " in " + path);
    }
    DIEVENT_RETURN_NOT_OK(repo.AddEmotion(rec));
  }
  uint32_t n_overall = r->U32();
  for (uint32_t i = 0; i < n_overall && r->ok(); ++i) {
    OverallEmotionRecord rec;
    Status s = DecodeOverallEmotion(r, &rec);
    if (!s.ok()) {
      return Status::Corruption(s.message() + " in " + path);
    }
    DIEVENT_RETURN_NOT_OK(repo.AddOverallEmotion(rec));
  }
  std::vector<StoredShot> shots;
  int num_scenes = 0;
  Status s = DecodeShots(r, &shots, &num_scenes);
  if (!s.ok()) return Status::Corruption(s.message() + " in " + path);
  repo.SetStoredShots(std::move(shots), num_scenes);
  if (!r->ok()) return Status::Corruption("truncated repository: " + path);
  return repo;
}

/// Parses one v2 section payload into `repo`.
Status ParseV2Section(uint8_t id, std::string_view payload,
                      MetadataRepository* repo) {
  BinReader r(payload);
  switch (id) {
    case kSectionContext: {
      EventContext ctx;
      DIEVENT_RETURN_NOT_OK(DecodeContext(&r, &ctx));
      repo->SetContext(std::move(ctx));
      break;
    }
    case kSectionFps:
      repo->set_fps(r.F64());
      break;
    case kSectionLookAt: {
      uint32_t n = r.U32();
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        LookAtRecord rec;
        DIEVENT_RETURN_NOT_OK(DecodeLookAt(&r, &rec));
        DIEVENT_RETURN_NOT_OK(repo->AddLookAt(std::move(rec)));
      }
      break;
    }
    case kSectionEmotions: {
      uint32_t n = r.U32();
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        EmotionRecord rec;
        DIEVENT_RETURN_NOT_OK(DecodeEmotion(&r, &rec));
        DIEVENT_RETURN_NOT_OK(repo->AddEmotion(rec));
      }
      break;
    }
    case kSectionOverall: {
      uint32_t n = r.U32();
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        OverallEmotionRecord rec;
        DIEVENT_RETURN_NOT_OK(DecodeOverallEmotion(&r, &rec));
        DIEVENT_RETURN_NOT_OK(repo->AddOverallEmotion(rec));
      }
      break;
    }
    case kSectionShots: {
      std::vector<StoredShot> shots;
      int num_scenes = 0;
      DIEVENT_RETURN_NOT_OK(DecodeShots(&r, &shots, &num_scenes));
      repo->SetStoredShots(std::move(shots), num_scenes);
      break;
    }
    default:
      return Status::Corruption(
          StrFormat("unknown snapshot section id %u", id));
  }
  if (!r.ok()) {
    return Status::Corruption(StrFormat("truncated %s section",
                                        SectionName(id)));
  }
  if (!r.AtEnd()) {
    return Status::Corruption(
        StrFormat("%s section has %zu trailing bytes", SectionName(id),
                  r.remaining()));
  }
  return Status::OK();
}

}  // namespace

Result<MetadataRepository> MetadataRepository::Load(
    const std::string& path) {
  return Load(FileSystem::Default(), path, nullptr);
}

Result<MetadataRepository> MetadataRepository::Load(FileSystem* fs,
                                                    const std::string& path,
                                                    SnapshotInfo* info) {
  DIEVENT_ASSIGN_OR_RETURN(std::string data, fs->ReadFile(path));
  BinReader r(data);
  const uint32_t magic = r.U32();
  if (!r.ok()) {
    return Status::Corruption("bad repository magic: " + path);
  }

  if (magic == kMagicV1) {
    if (r.U32() != 1 || !r.ok()) {
      return Status::Corruption("unsupported repository version: " + path);
    }
    if (info != nullptr) *info = SnapshotInfo{0, 1};
    return LoadV1Body(&r, path);
  }
  if (magic != kMagicV2) {
    return Status::Corruption("bad repository magic: " + path);
  }

  const uint32_t version = r.U32();
  const uint64_t last_sequence = r.U64();
  const uint32_t header_crc = r.U32();
  if (!r.ok() || version != kVersionV2) {
    return Status::Corruption("unsupported repository version: " + path);
  }
  if (Crc32Unmask(header_crc) != Crc32(data.data(), 16)) {
    return Status::Corruption("snapshot header checksum mismatch: " + path);
  }
  if (info != nullptr) *info = SnapshotInfo{last_sequence, version};

  MetadataRepository repo;
  bool saw_end = false;
  while (!saw_end) {
    const uint8_t id = r.U8();
    const uint32_t len = r.U32();
    const uint32_t masked_crc = r.U32();
    if (!r.ok()) {
      return Status::Corruption("truncated snapshot section header: " +
                                path);
    }
    std::string_view payload = r.Span(len);
    if (!r.ok()) {
      return Status::Corruption(
          StrFormat("truncated %s section in %s", SectionName(id),
                    path.c_str()));
    }
    if (Crc32Unmask(masked_crc) != Crc32(payload.data(), payload.size())) {
      return Status::Corruption(
          StrFormat("%s section checksum mismatch in %s", SectionName(id),
                    path.c_str()));
    }
    if (id == kSectionEnd) {
      saw_end = true;
      break;
    }
    DIEVENT_RETURN_NOT_OK(ParseV2Section(id, payload, &repo));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after snapshot end: " + path);
  }
  return repo;
}

}  // namespace dievent
