#include "metadata/repository.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "common/strings.h"

namespace dievent {

namespace {

constexpr uint32_t kMagic = 0x444D5231;  // "DMR1"
constexpr uint32_t kVersion = 1;

// --- little binary writer/reader helpers -------------------------------

class Writer {
 public:
  explicit Writer(std::ostream* out) : out_(out) {}

  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Bytes(const std::vector<uint8_t>& v) {
    U32(static_cast<uint32_t>(v.size()));
    Raw(v.data(), v.size());
  }
  void Ints(const std::vector<int>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (int x : v) I32(x);
  }

 private:
  void Raw(const void* p, size_t n) {
    out_->write(static_cast<const char*>(p),
                static_cast<std::streamsize>(n));
  }
  std::ostream* out_;
};

class Reader {
 public:
  explicit Reader(std::istream* in) : in_(in) {}

  bool ok() const { return ok_ && in_->good(); }

  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int32_t I32() {
    int32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (!Check(n)) return {};
    std::string s(n, '\0');
    Raw(s.data(), n);
    return s;
  }
  std::vector<uint8_t> Bytes() {
    uint32_t n = U32();
    if (!Check(n)) return {};
    std::vector<uint8_t> v(n);
    Raw(v.data(), n);
    return v;
  }
  std::vector<int> Ints() {
    uint32_t n = U32();
    if (!Check(n)) return {};
    std::vector<int> v(n);
    for (uint32_t i = 0; i < n; ++i) v[i] = I32();
    return v;
  }

 private:
  bool Check(uint32_t n) {
    // Field-length sanity: refuse absurd sizes so a corrupt file cannot
    // trigger a multi-gigabyte allocation.
    if (n > (64u << 20)) {
      ok_ = false;
      return false;
    }
    return true;
  }
  void Raw(void* p, size_t n) {
    in_->read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    if (in_->gcount() != static_cast<std::streamsize>(n)) ok_ = false;
  }
  std::istream* in_;
  bool ok_ = true;
};

}  // namespace

Status MetadataRepository::AddLookAt(LookAtRecord record) {
  if (record.n <= 0 ||
      record.cells.size() != static_cast<size_t>(record.n) * record.n) {
    return Status::InvalidArgument("malformed look-at record");
  }
  if (!lookat_.empty() && record.frame < lookat_.back().frame) {
    return Status::FailedPrecondition(
        "look-at records must arrive in frame order");
  }
  lookat_.push_back(std::move(record));
  InvalidateIndexes();
  return Status::OK();
}

Status MetadataRepository::AddEmotion(EmotionRecord record) {
  if (!emotions_.empty() && record.frame < emotions_.back().frame) {
    return Status::FailedPrecondition(
        "emotion records must arrive in frame order");
  }
  emotions_.push_back(record);
  return Status::OK();
}

Status MetadataRepository::AddOverallEmotion(OverallEmotionRecord record) {
  if (!overall_.empty() && record.frame < overall_.back().frame) {
    return Status::FailedPrecondition(
        "overall-emotion records must arrive in frame order");
  }
  overall_.push_back(record);
  return Status::OK();
}

void MetadataRepository::SetVideoStructure(const VideoStructure& structure) {
  shots_.clear();
  num_scenes_ = static_cast<int>(structure.scenes.size());
  if (structure.fps > 0) fps_ = structure.fps;
  for (int si = 0; si < num_scenes_; ++si) {
    for (const Shot& shot : structure.scenes[si].shots) {
      StoredShot s;
      s.begin_frame = shot.begin_frame;
      s.end_frame = shot.end_frame;
      s.scene_index = si;
      s.key_frames = shot.key_frames;
      shots_.push_back(std::move(s));
    }
  }
}

Result<int> MetadataRepository::FindLookAtIndex(int frame) const {
  auto it = std::lower_bound(
      lookat_.begin(), lookat_.end(), frame,
      [](const LookAtRecord& r, int f) { return r.frame < f; });
  if (it == lookat_.end() || it->frame != frame) {
    return Status::NotFound(StrFormat("no look-at record for frame %d",
                                      frame));
  }
  return static_cast<int>(it - lookat_.begin());
}

LookAtSummary MetadataRepository::Summarize(int begin_frame,
                                            int end_frame) const {
  if (lookat_.empty()) return LookAtSummary(0);
  LookAtSummary summary(lookat_.front().n);
  for (const LookAtRecord& r : lookat_) {
    if (r.frame < begin_frame || r.frame >= end_frame) continue;
    // Cheap accumulate without materializing a LookAtMatrix.
    LookAtMatrix m = r.ToMatrix();
    (void)summary.Accumulate(m);
  }
  return summary;
}

void MetadataRepository::InvalidateIndexes() { pair_index_valid_ = false; }

void MetadataRepository::BuildPairIndex() const {
  pair_index_.clear();
  for (size_t i = 0; i < lookat_.size(); ++i) {
    const LookAtRecord& r = lookat_[i];
    for (int x = 0; x < r.n; ++x) {
      for (int y = 0; y < r.n; ++y) {
        if (x != y && r.At(x, y)) {
          pair_index_[{x, y}].push_back(static_cast<int>(i));
        }
      }
    }
  }
  pair_index_valid_ = true;
}

const std::vector<int>& MetadataRepository::FramesWithLook(
    int looker, int target) const {
  static const std::vector<int> kEmpty;
  if (!pair_index_valid_) BuildPairIndex();
  auto it = pair_index_.find({looker, target});
  return it == pair_index_.end() ? kEmpty : it->second;
}

std::vector<EyeContactEpisode> MetadataRepository::EyeContactEpisodes(
    int min_length, int max_gap) const {
  std::vector<EyeContactEpisode> episodes;
  if (lookat_.empty()) return episodes;
  const int n = lookat_.front().n;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      int run_begin = -1;
      int last_hit = -1;
      for (const LookAtRecord& r : lookat_) {
        bool ec = r.At(a, b) && r.At(b, a);
        if (ec) {
          if (run_begin < 0) {
            run_begin = r.frame;
          } else if (last_hit >= 0 && r.frame - last_hit - 1 > max_gap) {
            if (last_hit + 1 - run_begin >= min_length) {
              episodes.push_back(
                  EyeContactEpisode{a, b, run_begin, last_hit + 1});
            }
            run_begin = r.frame;
          }
          last_hit = r.frame;
        }
      }
      if (run_begin >= 0 && last_hit + 1 - run_begin >= min_length) {
        episodes.push_back(EyeContactEpisode{a, b, run_begin, last_hit + 1});
      }
    }
  }
  std::sort(episodes.begin(), episodes.end(),
            [](const EyeContactEpisode& x, const EyeContactEpisode& y) {
              return x.begin_frame < y.begin_frame;
            });
  return episodes;
}

Status MetadataRepository::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  Writer w(&out);
  w.U32(kMagic);
  w.U32(kVersion);

  // Context.
  w.Str(context_.event_id);
  w.Str(context_.location);
  w.Str(context_.date);
  w.Str(context_.occasion);
  w.U32(static_cast<uint32_t>(context_.menu.size()));
  for (const auto& m : context_.menu) w.Str(m);
  w.F64(context_.temperature_c);
  w.I32(context_.num_participants);
  w.U32(static_cast<uint32_t>(context_.participant_names.size()));
  for (const auto& nm : context_.participant_names) w.Str(nm);
  w.U32(static_cast<uint32_t>(context_.relations.size()));
  for (const auto& rel : context_.relations) {
    w.I32(rel.a);
    w.I32(rel.b);
    w.Str(rel.relation);
  }

  w.F64(fps_);

  w.U32(static_cast<uint32_t>(lookat_.size()));
  for (const auto& r : lookat_) {
    w.I32(r.frame);
    w.F64(r.timestamp_s);
    w.I32(r.n);
    w.Bytes(r.cells);
  }
  w.U32(static_cast<uint32_t>(emotions_.size()));
  for (const auto& r : emotions_) {
    w.I32(r.frame);
    w.F64(r.timestamp_s);
    w.I32(r.participant);
    w.I32(static_cast<int32_t>(r.emotion));
    w.F64(r.confidence);
  }
  w.U32(static_cast<uint32_t>(overall_.size()));
  for (const auto& r : overall_) {
    w.I32(r.frame);
    w.F64(r.timestamp_s);
    w.F64(r.overall_happiness);
    w.F64(r.mean_valence);
    w.I32(r.observed);
  }
  w.U32(static_cast<uint32_t>(shots_.size()));
  w.I32(num_scenes_);
  for (const auto& s : shots_) {
    w.I32(s.begin_frame);
    w.I32(s.end_frame);
    w.I32(s.scene_index);
    w.Ints(s.key_frames);
  }
  if (!out) return Status::IoError("short write: " + path);
  return Status::OK();
}

Result<MetadataRepository> MetadataRepository::Load(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  Reader r(&in);
  if (r.U32() != kMagic) {
    return Status::Corruption("bad repository magic: " + path);
  }
  if (r.U32() != kVersion) {
    return Status::Corruption("unsupported repository version: " + path);
  }

  MetadataRepository repo;
  EventContext ctx;
  ctx.event_id = r.Str();
  ctx.location = r.Str();
  ctx.date = r.Str();
  ctx.occasion = r.Str();
  uint32_t n_menu = r.U32();
  for (uint32_t i = 0; i < n_menu && r.ok(); ++i) {
    ctx.menu.push_back(r.Str());
  }
  ctx.temperature_c = r.F64();
  ctx.num_participants = r.I32();
  uint32_t n_names = r.U32();
  for (uint32_t i = 0; i < n_names && r.ok(); ++i) {
    ctx.participant_names.push_back(r.Str());
  }
  uint32_t n_rel = r.U32();
  for (uint32_t i = 0; i < n_rel && r.ok(); ++i) {
    SocialRelation rel;
    rel.a = r.I32();
    rel.b = r.I32();
    rel.relation = r.Str();
    ctx.relations.push_back(std::move(rel));
  }
  repo.SetContext(std::move(ctx));

  repo.fps_ = r.F64();

  uint32_t n_look = r.U32();
  for (uint32_t i = 0; i < n_look && r.ok(); ++i) {
    LookAtRecord rec;
    rec.frame = r.I32();
    rec.timestamp_s = r.F64();
    rec.n = r.I32();
    rec.cells = r.Bytes();
    if (rec.n < 0 ||
        rec.cells.size() != static_cast<size_t>(rec.n) * rec.n) {
      return Status::Corruption("malformed look-at record in " + path);
    }
    repo.lookat_.push_back(std::move(rec));
  }
  uint32_t n_emo = r.U32();
  for (uint32_t i = 0; i < n_emo && r.ok(); ++i) {
    EmotionRecord rec;
    rec.frame = r.I32();
    rec.timestamp_s = r.F64();
    rec.participant = r.I32();
    int32_t e = r.I32();
    if (e < 0 || e >= kNumEmotions) {
      return Status::Corruption("invalid emotion id in " + path);
    }
    rec.emotion = static_cast<Emotion>(e);
    rec.confidence = r.F64();
    repo.emotions_.push_back(rec);
  }
  uint32_t n_overall = r.U32();
  for (uint32_t i = 0; i < n_overall && r.ok(); ++i) {
    OverallEmotionRecord rec;
    rec.frame = r.I32();
    rec.timestamp_s = r.F64();
    rec.overall_happiness = r.F64();
    rec.mean_valence = r.F64();
    rec.observed = r.I32();
    repo.overall_.push_back(rec);
  }
  uint32_t n_shots = r.U32();
  repo.num_scenes_ = r.I32();
  for (uint32_t i = 0; i < n_shots && r.ok(); ++i) {
    StoredShot s;
    s.begin_frame = r.I32();
    s.end_frame = r.I32();
    s.scene_index = r.I32();
    s.key_frames = r.Ints();
    repo.shots_.push_back(std::move(s));
  }
  if (!r.ok()) return Status::Corruption("truncated repository: " + path);
  return repo;
}

}  // namespace dievent
