/// \file durable_store.h
/// Crash-safe persistence for the metadata repository.
///
/// A DurableEventStore owns one event's on-disk state in a directory:
///
///   snapshot.dmr        checksummed v2 snapshot (atomic replace)
///   journal-NNNNNN.wal  write-ahead journal segments since the snapshot
///
/// Every mutation (AddLookAt / AddEmotion / AddOverallEmotion /
/// SetContext / SetFps / SetVideoStructure) is applied to the in-memory
/// repository, then appended to the journal as a sequence-numbered
/// record; the call returns OK only after the configured fsync policy
/// ran, so an acknowledged record survives process death.
///
/// Checkpoint() folds the journal into a fresh snapshot (write-temp /
/// fsync / rename / fsync-dir) that carries the last folded sequence
/// number, then resets the journal. Replay on Open skips records whose
/// sequence is <= the snapshot's — so a crash anywhere in the
/// checkpoint protocol yields zero lost acknowledged records and zero
/// duplicates:
///
///   crash before rename      -> temp ignored, journal replays fully
///   crash after rename,      -> stale segments replay but every record
///     before journal reset      dedups against the snapshot sequence
///   crash mid journal reset  -> same
///
/// A torn journal tail (the expected artifact of dying mid-append) is
/// salvaged: the valid prefix replays, the damage is reported in
/// RecoveryInfo, and the tail is physically truncated so the next
/// writer never appends after garbage. Mid-stream corruption fails
/// Open with a descriptive Status; `dievent_fsck` repairs.

#ifndef DIEVENT_METADATA_DURABLE_STORE_H_
#define DIEVENT_METADATA_DURABLE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/journal.h"
#include "metadata/repository.h"

namespace dievent {

/// A multi-record ingest unit (the corpus batched-ingest fast path).
/// Records are applied lookat -> emotions -> overall, each vector in
/// frame order. The whole batch is journaled with ONE buffered write
/// and at most one fsync; on-disk it becomes one or more kRecBatch
/// frames, each individually CRC-atomic, so replay after a crash never
/// yields a torn record — and under a power cut (nothing synced since
/// the previous acknowledged call) the recovered state is exactly the
/// acknowledged batches.
struct RecordBatch {
  std::vector<LookAtRecord> lookat;
  std::vector<EmotionRecord> emotions;
  std::vector<OverallEmotionRecord> overall;

  bool Empty() const {
    return lookat.empty() && emotions.empty() && overall.empty();
  }
  size_t TotalRecords() const {
    return lookat.size() + emotions.size() + overall.size();
  }
};

struct DurableStoreOptions {
  /// Journal durability/rotation knobs (fsync policy, segment size).
  JournalOptions journal;
  /// Filesystem to operate on; null = FileSystem::Default(). Tests
  /// inject a FaultyFileSystem here.
  FileSystem* fs = nullptr;
};

/// What recovery found when the store was opened.
struct RecoveryInfo {
  bool snapshot_loaded = false;
  uint32_t snapshot_version = 0;
  uint64_t snapshot_sequence = 0;  ///< sequences folded into the snapshot
  uint64_t records_replayed = 0;   ///< journal records applied
  uint64_t records_deduped = 0;    ///< stale pre-snapshot records skipped
  uint64_t segments_seen = 0;
  bool tail_truncated = false;     ///< a torn tail was salvaged
  uint64_t bytes_discarded = 0;    ///< torn-tail bytes dropped
};

/// Lifetime write-side tallies.
struct DurableStoreStats {
  uint64_t records_appended = 0;  ///< journal records acknowledged
  uint64_t bytes_appended = 0;    ///< framed journal bytes written
  uint32_t checkpoints = 0;
  uint32_t segments_created = 0;
};

class DurableEventStore {
 public:
  /// Opens (creating if needed) the store in `dir`, recovering state
  /// from the snapshot plus journal replay.
  static Result<std::unique_ptr<DurableEventStore>> Open(
      const std::string& dir, const DurableStoreOptions& options = {});

  ~DurableEventStore();

  DurableEventStore(const DurableEventStore&) = delete;
  DurableEventStore& operator=(const DurableEventStore&) = delete;

  // --- journaled mutations (OK => durable per fsync policy) -----------
  Status AddLookAt(const LookAtRecord& record);
  Status AddEmotion(const EmotionRecord& record);
  Status AddOverallEmotion(const OverallEmotionRecord& record);
  Status SetContext(const EventContext& context);
  Status SetFps(double fps);
  Status SetVideoStructure(const VideoStructure& structure);

  /// Applies and journals every record of `batch` with one buffered
  /// journal write and at most one fsync, amortizing framing and sync
  /// cost over the whole batch. The batch is validated up front — on
  /// InvalidArgument / FailedPrecondition neither memory nor disk has
  /// changed. On OK the entire batch is durable per fsync policy.
  Status AppendBatch(const RecordBatch& batch);

  /// Atomically folds all journaled state into a new snapshot and
  /// resets the journal. Safe to crash at any byte of this protocol.
  Status Checkpoint();

  /// Durably discards every frame record with `record.frame > frame`
  /// (look-at, emotion, overall emotion; context/fps/shots are kept)
  /// by snapshotting the trimmed state and resetting the journal.
  /// Used by pipeline resume to drop the partial tail a crash left
  /// between one frame's first and last journaled record, so the frame
  /// is reprocessed whole instead of resumed half-written. Crash-safe
  /// like Checkpoint. `frame` may be -1 to drop all frame records.
  Status RewindToFrame(int frame);

  /// Syncs and closes the journal. Mutations after Close fail.
  Status Close();

  /// Read-only recovery: the state a fresh Open would recover from
  /// `dir` (snapshot + journal replay with sequence dedup), without
  /// truncating torn tails or opening a journal writer. This is what
  /// corpus readers use to inspect a store another process may still
  /// own. Null `fs` means FileSystem::Default().
  static Result<MetadataRepository> LoadState(FileSystem* fs,
                                              const std::string& dir);

  /// The recovered + live in-memory state.
  const MetadataRepository& repository() const { return repo_; }

  const RecoveryInfo& recovery() const { return recovery_; }
  DurableStoreStats stats() const;
  const std::string& dir() const { return dir_; }

  /// Once a journal append or checkpoint fails, the store is wedged:
  /// every later mutation returns the original error. The in-memory
  /// repository may then be ahead of disk by exactly the unacknowledged
  /// records.
  const Status& broken() const { return broken_; }

 private:
  DurableEventStore(std::string dir, DurableStoreOptions options)
      : dir_(std::move(dir)), options_(options) {}

  FileSystem* fs() const;
  Status Recover();
  Status AppendRecord(uint8_t type, const std::string& body);
  Status ApplyReplay(std::string_view payload, uint64_t* expected_seq);
  Status ValidateBatch(const RecordBatch& batch) const;
  /// Snapshot `state` at the current sequence and reset the journal
  /// (steps 2-3 of the checkpoint protocol). Wedges the store on error.
  Status CommitSnapshot(const MetadataRepository& state);

  std::string dir_;
  DurableStoreOptions options_;
  MetadataRepository repo_;
  std::unique_ptr<JournalWriter> journal_;
  uint64_t last_sequence_ = 0;
  RecoveryInfo recovery_;
  uint32_t checkpoints_ = 0;
  uint64_t records_appended_ = 0;
  // Journal bytes/segments surviving across journal resets.
  uint64_t retired_journal_bytes_ = 0;
  uint32_t retired_segments_ = 0;
  Status broken_ = Status::OK();
  bool closed_ = false;
};

/// Snapshot file name within a store directory.
extern const char kSnapshotFileName[];

}  // namespace dievent

#endif  // DIEVENT_METADATA_DURABLE_STORE_H_
