#include "metadata/export.h"

#include <fstream>

#include "common/strings.h"

namespace dievent {

namespace {

Result<std::ofstream> OpenForWrite(const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return out;
}

Status Finish(std::ofstream* out, const std::string& path) {
  out->flush();
  if (!*out) return Status::IoError("short write: " + path);
  return Status::OK();
}

/// Escapes a string for embedding in JSON output.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ParticipantName(const MetadataRepository& repo, int i) {
  const auto& names = repo.context().participant_names;
  return i >= 0 && i < static_cast<int>(names.size())
             ? names[i]
             : StrFormat("P%d", i + 1);
}

}  // namespace

Status ExportLookAtCsv(const MetadataRepository& repo,
                       const std::string& path) {
  DIEVENT_ASSIGN_OR_RETURN(std::ofstream out, OpenForWrite(path));
  out << "frame,timestamp_s,looker,target\n";
  for (const LookAtRecord& r : repo.lookat_records()) {
    for (int x = 0; x < r.n; ++x) {
      for (int y = 0; y < r.n; ++y) {
        if (x != y && r.At(x, y)) {
          out << r.frame << ',' << r.timestamp_s << ','
              << ParticipantName(repo, x) << ','
              << ParticipantName(repo, y) << '\n';
        }
      }
    }
  }
  return Finish(&out, path);
}

Status ExportEmotionsCsv(const MetadataRepository& repo,
                         const std::string& path) {
  DIEVENT_ASSIGN_OR_RETURN(std::ofstream out, OpenForWrite(path));
  out << "frame,timestamp_s,participant,emotion,confidence\n";
  for (const EmotionRecord& r : repo.emotion_records()) {
    out << r.frame << ',' << r.timestamp_s << ','
        << ParticipantName(repo, r.participant) << ','
        << EmotionName(r.emotion) << ',' << r.confidence << '\n';
  }
  return Finish(&out, path);
}

Status ExportOverallCsv(const MetadataRepository& repo,
                        const std::string& path) {
  DIEVENT_ASSIGN_OR_RETURN(std::ofstream out, OpenForWrite(path));
  out << "frame,timestamp_s,overall_happiness,mean_valence,observed\n";
  for (const OverallEmotionRecord& r : repo.overall_records()) {
    out << r.frame << ',' << r.timestamp_s << ',' << r.overall_happiness
        << ',' << r.mean_valence << ',' << r.observed << '\n';
  }
  return Finish(&out, path);
}

Status ExportEpisodesCsv(const MetadataRepository& repo,
                         const std::string& path, int min_length,
                         int max_gap) {
  DIEVENT_ASSIGN_OR_RETURN(std::ofstream out, OpenForWrite(path));
  const double fps = repo.fps() > 0 ? repo.fps() : 1.0;
  out << "a,b,begin_frame,end_frame,begin_s,end_s,duration_s\n";
  for (const EyeContactEpisode& ep :
       repo.EyeContactEpisodes(min_length, max_gap)) {
    out << ParticipantName(repo, ep.a) << ','
        << ParticipantName(repo, ep.b) << ',' << ep.begin_frame << ','
        << ep.end_frame << ',' << ep.begin_frame / fps << ','
        << ep.end_frame / fps << ',' << ep.Length() / fps << '\n';
  }
  return Finish(&out, path);
}

std::string EventReportJson(const MetadataRepository& repo) {
  const EventContext& ctx = repo.context();
  const double fps = repo.fps() > 0 ? repo.fps() : 1.0;
  std::string json = "{\n";
  json += StrFormat("  \"event_id\": \"%s\",\n",
                    JsonEscape(ctx.event_id).c_str());
  json += StrFormat("  \"location\": \"%s\",\n",
                    JsonEscape(ctx.location).c_str());
  json += StrFormat("  \"occasion\": \"%s\",\n",
                    JsonEscape(ctx.occasion).c_str());
  json += StrFormat("  \"num_participants\": %d,\n",
                    ctx.num_participants);
  json += StrFormat("  \"frames\": %zu,\n", repo.lookat_records().size());
  json += StrFormat("  \"fps\": %.4f,\n", fps);

  // Look-at summary and dominance.
  LookAtSummary summary = repo.Summarize();
  json += "  \"lookat_summary\": [\n";
  for (int x = 0; x < summary.size(); ++x) {
    json += "    [";
    for (int y = 0; y < summary.size(); ++y) {
      json += StrFormat("%lld%s", summary.At(x, y),
                        y + 1 < summary.size() ? ", " : "");
    }
    json += x + 1 < summary.size() ? "],\n" : "]\n";
  }
  json += "  ],\n";
  if (summary.size() > 0) {
    json += StrFormat(
        "  \"dominant_participant\": \"%s\",\n",
        ParticipantName(repo, summary.DominantParticipant()).c_str());
  }

  // Episodes.
  json += "  \"eye_contact_episodes\": [\n";
  auto episodes = repo.EyeContactEpisodes(2, 1);
  for (size_t i = 0; i < episodes.size(); ++i) {
    const EyeContactEpisode& ep = episodes[i];
    json += StrFormat(
        "    {\"a\": \"%s\", \"b\": \"%s\", \"begin_s\": %.3f, "
        "\"end_s\": %.3f}%s\n",
        ParticipantName(repo, ep.a).c_str(),
        ParticipantName(repo, ep.b).c_str(), ep.begin_frame / fps,
        ep.end_frame / fps, i + 1 < episodes.size() ? "," : "");
  }
  json += "  ],\n";

  // Emotion aggregates.
  double mean_oh = 0, mean_valence = 0;
  if (!repo.overall_records().empty()) {
    for (const OverallEmotionRecord& r : repo.overall_records()) {
      mean_oh += r.overall_happiness;
      mean_valence += r.mean_valence;
    }
    mean_oh /= static_cast<double>(repo.overall_records().size());
    mean_valence /= static_cast<double>(repo.overall_records().size());
  }
  json += StrFormat("  \"mean_overall_happiness\": %.4f,\n", mean_oh);
  json += StrFormat("  \"mean_valence\": %.4f\n", mean_valence);
  json += "}\n";
  return json;
}

Status ExportEventReportJson(const MetadataRepository& repo,
                             const std::string& path) {
  DIEVENT_ASSIGN_OR_RETURN(std::ofstream out, OpenForWrite(path));
  out << EventReportJson(repo);
  return Finish(&out, path);
}

}  // namespace dievent
