/// \file event_collection.h
/// Cross-event analysis: a collection of analyzed dining events (each a
/// saved MetadataRepository) with aggregate statistics, ranking, and a
/// comparison table — the smart-restaurant longitudinal use case ("which
/// service, which menu, which table works").

#ifndef DIEVENT_METADATA_EVENT_COLLECTION_H_
#define DIEVENT_METADATA_EVENT_COLLECTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "metadata/repository.h"

namespace dievent {

/// Aggregate statistics of one analyzed event.
struct EventStats {
  std::string event_id;
  std::string location;
  std::string occasion;
  int participants = 0;
  int frames = 0;
  double duration_s = 0;
  double mean_overall_happiness = 0;
  double mean_valence = 0;
  /// Total mutual-eye-contact time across all pairs, seconds.
  double eye_contact_s = 0;
  /// Most-watched participant's name (the dominance result).
  std::string dominant;
};

/// Computes the aggregate statistics of one repository.
EventStats ComputeEventStats(const MetadataRepository& repository);

/// An in-memory set of events for side-by-side analysis.
class EventCollection {
 public:
  /// Adds an already-loaded event.
  void Add(EventStats stats) { events_.push_back(std::move(stats)); }

  /// Loads every `*.dmr` repository in `directory` and adds its stats.
  /// Returns the number of events loaded; files that fail to parse are
  /// skipped (their paths are reported in the status message only if
  /// *none* load).
  Result<int> LoadDirectory(const std::string& directory);

  int NumEvents() const { return static_cast<int>(events_.size()); }
  const std::vector<EventStats>& events() const { return events_; }

  /// Events sorted by mean valence, best first — the satisfaction
  /// ranking a restaurant would act on.
  std::vector<EventStats> RankedBySatisfaction() const;

  /// Formats the collection as an aligned comparison table.
  std::string ComparisonTable() const;

 private:
  std::vector<EventStats> events_;
};

}  // namespace dievent

#endif  // DIEVENT_METADATA_EVENT_COLLECTION_H_
