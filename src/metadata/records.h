/// \file records.h
/// Typed records stored in the metadata repository (paper Section II-E):
/// extracted time-variant observations (gaze matrices, emotions, overall
/// emotion) plus the parsed video structure. The time-invariant
/// EventContext lives in analysis/layers.h and is stored alongside.

#ifndef DIEVENT_METADATA_RECORDS_H_
#define DIEVENT_METADATA_RECORDS_H_

#include <cstdint>
#include <vector>

#include "analysis/lookat_matrix.h"
#include "common/emotion.h"

namespace dievent {

/// One frame's look-at matrix, flattened for storage.
struct LookAtRecord {
  int frame = 0;
  double timestamp_s = 0.0;
  int n = 0;
  std::vector<uint8_t> cells;  ///< row-major n*n booleans

  static LookAtRecord FromMatrix(int frame, double t,
                                 const LookAtMatrix& m);
  LookAtMatrix ToMatrix() const;

  bool At(int looker, int target) const {
    return cells[static_cast<size_t>(looker) * n + target] != 0;
  }
};

/// One participant's recognized emotion in one frame.
struct EmotionRecord {
  int frame = 0;
  double timestamp_s = 0.0;
  int participant = -1;
  Emotion emotion = Emotion::kNeutral;
  double confidence = 0.0;
};

/// Group-level emotion for one frame.
struct OverallEmotionRecord {
  int frame = 0;
  double timestamp_s = 0.0;
  double overall_happiness = 0.0;
  double mean_valence = 0.0;
  int observed = 0;
};

/// A maximal run of frames during which a pair held eye contact
/// (derived from the stored look-at records).
struct EyeContactEpisode {
  int a = -1;
  int b = -1;
  int begin_frame = 0;  ///< inclusive
  int end_frame = 0;    ///< exclusive

  /// Acquisition-health annotation (filled by
  /// AnnotateEpisodeAcquisition): frames of this episode that were
  /// analyzed on a degraded frame set or skipped entirely (below camera
  /// quorum), and the resulting fraction of fully healthy frames.
  /// Episodes derived without health information keep confidence 1.
  int degraded_frames = 0;
  int skipped_frames = 0;
  double confidence = 1.0;

  int Length() const { return end_frame - begin_frame; }
};

/// Stored form of the parsed video structure.
struct StoredShot {
  int begin_frame = 0;
  int end_frame = 0;
  int scene_index = 0;
  std::vector<int> key_frames;
};

}  // namespace dievent

#endif  // DIEVENT_METADATA_RECORDS_H_
