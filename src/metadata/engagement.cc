#include "metadata/engagement.h"

#include "common/strings.h"

namespace dievent {

int EngagementReport::MostEngaged() const {
  int best = -1;
  double best_score = -1;
  for (const ParticipantEngagement& p : participants) {
    if (p.score > best_score) {
      best_score = p.score;
      best = p.id;
    }
  }
  return best;
}

std::string EngagementReport::ToString() const {
  std::string out = StrFormat("%-10s %-8s %-10s %-8s %-12s %-8s\n",
                              "who", "gives", "receives", "ec", "reciprocity",
                              "score");
  for (const ParticipantEngagement& p : participants) {
    out += StrFormat("%-10s %-8.2f %-10.2f %-8.2f %-12.2f %-8.2f\n",
                     p.name.c_str(), p.attention_given,
                     p.attention_received, p.eye_contact, p.reciprocity,
                     p.score);
  }
  out += StrFormat("group eye-contact coverage: %.2f\n", group_eye_contact);
  return out;
}

EngagementReport ComputeEngagement(const MetadataRepository& repo) {
  EngagementReport report;
  const auto& records = repo.lookat_records();
  if (records.empty()) return report;
  const int n = records.front().n;
  const auto& names = repo.context().participant_names;

  std::vector<long long> gives(n, 0), receives(n, 0), contact(n, 0),
      returned(n, 0), gave_any(n, 0);
  std::vector<std::vector<long long>> pair(n,
                                           std::vector<long long>(n, 0));
  long long group_contact_frames = 0;

  for (const LookAtRecord& r : records) {
    bool any_contact = false;
    std::vector<bool> gave(n, false), got(n, false), ec(n, false);
    for (int x = 0; x < n; ++x) {
      for (int y = 0; y < n; ++y) {
        if (x == y || !r.At(x, y)) continue;
        gave[x] = true;
        got[y] = true;
        if (r.At(y, x)) {
          ec[x] = true;
          any_contact = true;
          if (x < y) {
            ++pair[x][y];
            ++pair[y][x];
          }
        }
      }
    }
    for (int i = 0; i < n; ++i) {
      if (gave[i]) {
        ++gives[i];
        ++gave_any[i];
        if (ec[i]) ++returned[i];
      }
      if (got[i]) ++receives[i];
      if (ec[i]) ++contact[i];
    }
    if (any_contact) ++group_contact_frames;
  }

  const double frames = static_cast<double>(records.size());
  report.group_eye_contact = group_contact_frames / frames;
  report.pair_contact.assign(n, std::vector<double>(n, 0.0));
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      report.pair_contact[a][b] = pair[a][b] / frames;
    }
  }
  for (int i = 0; i < n; ++i) {
    ParticipantEngagement p;
    p.id = i;
    p.name = i < static_cast<int>(names.size()) ? names[i]
                                                : StrFormat("P%d", i + 1);
    p.attention_given = gives[i] / frames;
    p.attention_received = receives[i] / frames;
    p.eye_contact = contact[i] / frames;
    p.reciprocity =
        gave_any[i] > 0
            ? static_cast<double>(returned[i]) / gave_any[i]
            : 0.0;
    p.score =
        (p.attention_given + p.attention_received + p.eye_contact) / 3.0;
    report.participants.push_back(std::move(p));
  }
  return report;
}

}  // namespace dievent
