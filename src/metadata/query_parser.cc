#include "metadata/query_parser.h"

#include <cctype>
#include <string>

#include "common/strings.h"

namespace dievent {

namespace {

/// Minimal scanner over the query text.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  /// Consumes `token` (case-insensitive) if present.
  bool Consume(std::string_view token) {
    SkipSpace();
    if (pos_ + token.size() > text_.size()) return false;
    for (size_t i = 0; i < token.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(token[i]))) {
        return false;
      }
    }
    pos_ += token.size();
    return true;
  }

  /// Reads a lowercase identifier (letters only).
  std::string Identifier() {
    SkipSpace();
    std::string out;
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(text_[pos_]))));
      ++pos_;
    }
    return out;
  }

  /// Reads a (possibly signed, possibly fractional) number.
  Result<double> Number() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument(
          StrFormat("expected a number at offset %zu", start));
    }
    return std::stod(std::string(text_.substr(start, pos_ - start)));
  }

  /// Reads a participant: optional 'P' prefix, 1-based index.
  Result<int> Participant() {
    SkipSpace();
    if (pos_ < text_.size() &&
        std::tolower(static_cast<unsigned char>(text_[pos_])) == 'p') {
      ++pos_;
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument(StrFormat(
          "expected a participant (e.g. P1) at offset %zu", start));
    }
    int one_based = std::stoi(std::string(text_.substr(start, pos_ - start)));
    if (one_based < 1) {
      return Status::InvalidArgument("participants are numbered from P1");
    }
    return one_based - 1;
  }

  std::string Context() const {
    size_t begin = pos_ >= 10 ? pos_ - 10 : 0;
    return std::string(text_.substr(begin, 20));
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Result<Emotion> ParseEmotion(const std::string& name) {
  for (Emotion e : kAllEmotions) {
    if (name == EmotionName(e)) return e;
  }
  return Status::InvalidArgument("unknown emotion: " + name);
}

#define PARSER_EXPECT(scanner, token)                              \
  do {                                                             \
    if (!(scanner).Consume(token)) {                               \
      return Status::InvalidArgument(                              \
          StrFormat("expected '%s' near \"%s\"", token,            \
                    (scanner).Context().c_str()));                 \
    }                                                              \
  } while (false)

}  // namespace

Result<Query> ParseQuery(std::string_view text,
                         const MetadataRepository* repository) {
  if (repository == nullptr) {
    return Status::InvalidArgument("repository must not be null");
  }
  Query query(repository);
  Scanner scanner(text);
  bool first = true;
  while (!scanner.AtEnd()) {
    if (!first) {
      if (!scanner.Consume("&&") && !scanner.Consume("&") &&
          !scanner.Consume("and")) {
        return Status::InvalidArgument(StrFormat(
            "expected '&' between terms near \"%s\"",
            scanner.Context().c_str()));
      }
    }
    first = false;

    std::string keyword = scanner.Identifier();
    if (keyword == "ec") {
      PARSER_EXPECT(scanner, "(");
      DIEVENT_ASSIGN_OR_RETURN(int a, scanner.Participant());
      PARSER_EXPECT(scanner, ",");
      DIEVENT_ASSIGN_OR_RETURN(int b, scanner.Participant());
      PARSER_EXPECT(scanner, ")");
      query.EyeContact(a, b);
    } else if (keyword == "look") {
      PARSER_EXPECT(scanner, "(");
      DIEVENT_ASSIGN_OR_RETURN(int a, scanner.Participant());
      PARSER_EXPECT(scanner, ",");
      DIEVENT_ASSIGN_OR_RETURN(int b, scanner.Participant());
      PARSER_EXPECT(scanner, ")");
      query.Looking(a, b);
    } else if (keyword == "watched") {
      PARSER_EXPECT(scanner, "(");
      DIEVENT_ASSIGN_OR_RETURN(int a, scanner.Participant());
      PARSER_EXPECT(scanner, ")");
      query.AnyoneLookingAt(a);
    } else if (keyword == "feel") {
      PARSER_EXPECT(scanner, "(");
      DIEVENT_ASSIGN_OR_RETURN(int a, scanner.Participant());
      PARSER_EXPECT(scanner, ",");
      std::string emotion_name = scanner.Identifier();
      DIEVENT_ASSIGN_OR_RETURN(Emotion emotion,
                               ParseEmotion(emotion_name));
      PARSER_EXPECT(scanner, ")");
      query.Feeling(a, emotion);
    } else if (keyword == "time") {
      PARSER_EXPECT(scanner, "[");
      DIEVENT_ASSIGN_OR_RETURN(double t0, scanner.Number());
      PARSER_EXPECT(scanner, ",");
      DIEVENT_ASSIGN_OR_RETURN(double t1, scanner.Number());
      if (!scanner.Consume(")") && !scanner.Consume("]")) {
        return Status::InvalidArgument("expected ')' or ']' after time");
      }
      if (t1 <= t0) {
        return Status::InvalidArgument("time range must have t1 > t0");
      }
      query.TimeRange(t0, t1);
    } else if (keyword == "oh") {
      PARSER_EXPECT(scanner, ">=");
      DIEVENT_ASSIGN_OR_RETURN(double v, scanner.Number());
      query.MinOverallHappiness(v);
    } else if (keyword == "valence") {
      PARSER_EXPECT(scanner, ">=");
      DIEVENT_ASSIGN_OR_RETURN(double v, scanner.Number());
      query.MinValence(v);
    } else if (keyword.empty()) {
      return Status::InvalidArgument(StrFormat(
          "expected a query term near \"%s\"", scanner.Context().c_str()));
    } else {
      return Status::InvalidArgument("unknown query term: " + keyword);
    }
  }
  if (first) {
    return Status::InvalidArgument("empty query");
  }
  return query;
}

}  // namespace dievent
