#include "metadata/query_parser.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/strings.h"

namespace dievent {

namespace {

/// Minimal scanner over the query text.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  /// Consumes `token` (case-insensitive) if present.
  bool Consume(std::string_view token) {
    SkipSpace();
    if (pos_ + token.size() > text_.size()) return false;
    for (size_t i = 0; i < token.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(token[i]))) {
        return false;
      }
    }
    pos_ += token.size();
    return true;
  }

  /// Reads a lowercase identifier (letters only).
  std::string Identifier() {
    SkipSpace();
    std::string out;
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(text_[pos_]))));
      ++pos_;
    }
    return out;
  }

  /// Reads a (possibly signed, possibly fractional) number. Uses strtod
  /// rather than stod so malformed spellings (".", "--") and
  /// out-of-range digit strings surface as InvalidArgument instead of
  /// thrown exceptions.
  Result<double> Number() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.')) {
      ++pos_;
    }
    // Exponent part ("1e-10"): only consumed when a digit follows, so a
    // trailing 'e' stays in the stream and fails as an unknown term.
    if (pos_ > start && pos_ < text_.size() &&
        (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      size_t p = pos_ + 1;
      if (p < text_.size() && (text_[p] == '-' || text_[p] == '+')) ++p;
      if (p < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[p]))) {
        pos_ = p;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
      }
    }
    if (pos_ == start) {
      return Status::InvalidArgument(
          StrFormat("expected a number at offset %zu", start));
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE ||
        !std::isfinite(value)) {
      return Status::InvalidArgument("malformed number: " + token);
    }
    return value;
  }

  /// Reads a participant: optional 'P' prefix, 1-based index.
  Result<int> Participant() {
    SkipSpace();
    if (pos_ < text_.size() &&
        std::tolower(static_cast<unsigned char>(text_[pos_])) == 'p') {
      ++pos_;
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument(StrFormat(
          "expected a participant (e.g. P1) at offset %zu", start));
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    const long one_based = std::strtol(token.c_str(), nullptr, 10);
    if (errno == ERANGE || one_based > 4096) {
      return Status::InvalidArgument("participant id out of range: P" +
                                     token);
    }
    if (one_based < 1) {
      return Status::InvalidArgument("participants are numbered from P1");
    }
    return static_cast<int>(one_based - 1);
  }

  /// Reads a double-quoted string with \" and \\ escapes.
  Result<std::string> QuotedString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Status::InvalidArgument(StrFormat(
          "expected a quoted string near \"%s\"", Context().c_str()));
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        if (esc != '"' && esc != '\\') {
          return Status::InvalidArgument(
              StrFormat("bad string escape '\\%c'", esc));
        }
        c = esc;
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated string literal");
    }
    ++pos_;  // closing quote
    return out;
  }

  std::string Context() const {
    size_t begin = pos_ >= 10 ? pos_ - 10 : 0;
    return std::string(text_.substr(begin, 20));
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Result<Emotion> ParseEmotion(const std::string& name) {
  for (Emotion e : kAllEmotions) {
    if (name == EmotionName(e)) return e;
  }
  return Status::InvalidArgument("unknown emotion: " + name);
}

#define PARSER_EXPECT(scanner, token)                              \
  do {                                                             \
    if (!(scanner).Consume(token)) {                               \
      return Status::InvalidArgument(                              \
          StrFormat("expected '%s' near \"%s\"", token,            \
                    (scanner).Context().c_str()));                 \
    }                                                              \
  } while (false)

/// Parses one '&'-joined conjunction of frame terms, stopping at end of
/// input. The scanner is shared so the corpus parser can hand off after
/// its ':' separator.
Result<QuerySpec> ParseFrameTerms(Scanner& scanner) {
  QuerySpec spec;
  bool first = true;
  while (!scanner.AtEnd()) {
    if (!first) {
      if (!scanner.Consume("&&") && !scanner.Consume("&") &&
          !scanner.Consume("and")) {
        return Status::InvalidArgument(StrFormat(
            "expected '&' between terms near \"%s\"",
            scanner.Context().c_str()));
      }
    }
    first = false;

    std::string keyword = scanner.Identifier();
    if (keyword == "ec") {
      PARSER_EXPECT(scanner, "(");
      DIEVENT_ASSIGN_OR_RETURN(int a, scanner.Participant());
      PARSER_EXPECT(scanner, ",");
      DIEVENT_ASSIGN_OR_RETURN(int b, scanner.Participant());
      PARSER_EXPECT(scanner, ")");
      spec.eye_contact.emplace_back(a, b);
    } else if (keyword == "look") {
      PARSER_EXPECT(scanner, "(");
      DIEVENT_ASSIGN_OR_RETURN(int a, scanner.Participant());
      PARSER_EXPECT(scanner, ",");
      DIEVENT_ASSIGN_OR_RETURN(int b, scanner.Participant());
      PARSER_EXPECT(scanner, ")");
      spec.looking.emplace_back(a, b);
    } else if (keyword == "watched") {
      PARSER_EXPECT(scanner, "(");
      DIEVENT_ASSIGN_OR_RETURN(int a, scanner.Participant());
      PARSER_EXPECT(scanner, ")");
      spec.anyone_at.push_back(a);
    } else if (keyword == "feel") {
      PARSER_EXPECT(scanner, "(");
      DIEVENT_ASSIGN_OR_RETURN(int a, scanner.Participant());
      PARSER_EXPECT(scanner, ",");
      std::string emotion_name = scanner.Identifier();
      DIEVENT_ASSIGN_OR_RETURN(Emotion emotion,
                               ParseEmotion(emotion_name));
      PARSER_EXPECT(scanner, ")");
      spec.feeling.emplace_back(a, emotion);
    } else if (keyword == "time") {
      PARSER_EXPECT(scanner, "[");
      DIEVENT_ASSIGN_OR_RETURN(double t0, scanner.Number());
      PARSER_EXPECT(scanner, ",");
      DIEVENT_ASSIGN_OR_RETURN(double t1, scanner.Number());
      if (!scanner.Consume(")") && !scanner.Consume("]")) {
        return Status::InvalidArgument("expected ')' or ']' after time");
      }
      if (t1 <= t0) {
        return Status::InvalidArgument("time range must have t1 > t0");
      }
      spec.time_range = {t0, t1};
    } else if (keyword == "oh") {
      PARSER_EXPECT(scanner, ">=");
      DIEVENT_ASSIGN_OR_RETURN(double v, scanner.Number());
      spec.min_oh = v;
    } else if (keyword == "valence") {
      PARSER_EXPECT(scanner, ">=");
      DIEVENT_ASSIGN_OR_RETURN(double v, scanner.Number());
      spec.min_valence = v;
    } else if (keyword.empty()) {
      return Status::InvalidArgument(StrFormat(
          "expected a query term near \"%s\"", scanner.Context().c_str()));
    } else {
      return Status::InvalidArgument("unknown query term: " + keyword);
    }
  }
  if (first) {
    return Status::InvalidArgument("empty query");
  }
  return spec;
}

/// Canonical double spelling: round-trips exactly through strtod, so
/// printed queries reparse to the same spec.
std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string QuoteString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void AppendTerm(std::string* out, const std::string& term) {
  if (!out->empty()) out->append(" & ");
  out->append(term);
}

}  // namespace

Result<QuerySpec> ParseQuerySpec(std::string_view text) {
  Scanner scanner(text);
  return ParseFrameTerms(scanner);
}

Result<Query> ParseQuery(std::string_view text,
                         const MetadataRepository* repository) {
  if (repository == nullptr) {
    return Status::InvalidArgument("repository must not be null");
  }
  DIEVENT_ASSIGN_OR_RETURN(QuerySpec spec, ParseQuerySpec(text));
  return Query(repository, std::move(spec));
}

Result<CorpusQuerySpec> ParseCorpusQuery(std::string_view text) {
  Scanner scanner(text);
  std::string head = scanner.Identifier();
  if (head != "events") {
    return Status::InvalidArgument(
        "corpus queries start with 'events', got: " +
        (head.empty() ? "<nothing>" : head));
  }

  CorpusQuerySpec spec;
  if (scanner.Consume("where")) {
    bool first = true;
    while (!scanner.AtEnd() && !scanner.Consume(":")) {
      if (!first) {
        if (!scanner.Consume("&&") && !scanner.Consume("&") &&
            !scanner.Consume("and")) {
          return Status::InvalidArgument(StrFormat(
              "expected '&' between scope terms near \"%s\"",
              scanner.Context().c_str()));
        }
      }
      std::string field = scanner.Identifier();
      if (field == "context" && scanner.Consume(".")) {
        field = scanner.Identifier();
      }
      if (field == "participants") {
        PARSER_EXPECT(scanner, ">=");
        DIEVENT_ASSIGN_OR_RETURN(int n, scanner.Participant());
        spec.scope.min_participants = n + 1;  // Participant() is 0-based
      } else if (field == "event" || field == "venue" ||
                 field == "occasion" || field == "date") {
        PARSER_EXPECT(scanner, "=");
        DIEVENT_ASSIGN_OR_RETURN(std::string value, scanner.QuotedString());
        if (field == "event") {
          spec.scope.event_id = std::move(value);
        } else if (field == "venue") {
          spec.scope.venue = std::move(value);
        } else if (field == "occasion") {
          spec.scope.occasion = std::move(value);
        } else {
          spec.scope.date = std::move(value);
        }
      } else if (field.empty()) {
        return Status::InvalidArgument(StrFormat(
            "expected a scope field near \"%s\"",
            scanner.Context().c_str()));
      } else {
        return Status::InvalidArgument("unknown scope field: " + field);
      }
      first = false;
    }
    if (first) {
      return Status::InvalidArgument("'where' needs at least one term");
    }
    // Consume(":") above already swallowed the separator when present;
    // fall through to frame terms either way.
    if (!scanner.AtEnd()) {
      DIEVENT_ASSIGN_OR_RETURN(spec.frame, ParseFrameTerms(scanner));
    }
    return spec;
  }

  if (scanner.Consume(":")) {
    DIEVENT_ASSIGN_OR_RETURN(spec.frame, ParseFrameTerms(scanner));
    return spec;
  }
  if (!scanner.AtEnd()) {
    return Status::InvalidArgument(StrFormat(
        "expected 'where', ':' or end of query near \"%s\"",
        scanner.Context().c_str()));
  }
  return spec;
}

std::string FormatQuerySpec(const QuerySpec& spec) {
  std::string out;
  if (spec.time_range) {
    AppendTerm(&out, StrFormat("time[%s, %s)",
                               FormatDouble(spec.time_range->first).c_str(),
                               FormatDouble(spec.time_range->second).c_str()));
  }
  for (const auto& [a, b] : spec.looking) {
    AppendTerm(&out, StrFormat("look(P%d, P%d)", a + 1, b + 1));
  }
  for (const auto& [a, b] : spec.eye_contact) {
    AppendTerm(&out, StrFormat("ec(P%d, P%d)", a + 1, b + 1));
  }
  for (const auto& [p, e] : spec.feeling) {
    AppendTerm(&out, StrFormat("feel(P%d, %s)", p + 1,
                               std::string(EmotionName(e)).c_str()));
  }
  if (spec.min_oh) {
    AppendTerm(&out,
               StrFormat("oh >= %s", FormatDouble(*spec.min_oh).c_str()));
  }
  if (spec.min_valence) {
    AppendTerm(&out, StrFormat("valence >= %s",
                               FormatDouble(*spec.min_valence).c_str()));
  }
  for (int t : spec.anyone_at) {
    AppendTerm(&out, StrFormat("watched(P%d)", t + 1));
  }
  return out;
}

std::string FormatCorpusQuery(const CorpusQuerySpec& spec) {
  std::string out = "events";
  if (!spec.scope.Empty()) {
    out.append(" where ");
    std::string terms;
    if (spec.scope.event_id) {
      AppendTerm(&terms, "event = " + QuoteString(*spec.scope.event_id));
    }
    if (spec.scope.venue) {
      AppendTerm(&terms, "venue = " + QuoteString(*spec.scope.venue));
    }
    if (spec.scope.occasion) {
      AppendTerm(&terms, "occasion = " + QuoteString(*spec.scope.occasion));
    }
    if (spec.scope.date) {
      AppendTerm(&terms, "date = " + QuoteString(*spec.scope.date));
    }
    if (spec.scope.min_participants) {
      AppendTerm(&terms, StrFormat("participants >= %d",
                                   *spec.scope.min_participants));
    }
    out.append(terms);
  }
  if (!spec.frame.Empty()) {
    out.append(" : ");
    out.append(FormatQuerySpec(spec.frame));
  }
  return out;
}

}  // namespace dievent
