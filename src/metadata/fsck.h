/// \file fsck.h
/// Scrub / verify / repair for a DurableEventStore directory.
///
/// Verify mode (`repair = false`) reads every byte of the snapshot and
/// journal — section CRCs, frame CRCs, payload decode, sequence
/// continuity — and reports problems without touching the disk.
///
/// Repair mode additionally applies the safe subset of fixes:
///   - stray checkpoint temp files are removed
///   - a torn journal tail is truncated to its valid prefix
///   - a mid-stream corrupt segment is truncated at the damage and all
///     later segments (now unreachable past the sequence break) are
///     quarantined to `<name>.corrupt`
///   - a corrupt snapshot is quarantined and replaced by an empty one
///     anchored at the journal's first sequence, so the surviving
///     journal records still replay (checkpointed state before them is
///     reported as lost, never silently resurrected)
/// and finally verifies the repaired directory by opening it as a
/// DurableEventStore.

#ifndef DIEVENT_METADATA_FSCK_H_
#define DIEVENT_METADATA_FSCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/journal.h"

namespace dievent {

struct FsckOptions {
  bool repair = false;
  /// Journal options used for the post-repair verification open.
  JournalOptions journal;
};

struct FsckReport {
  bool snapshot_present = false;
  bool snapshot_ok = false;
  uint64_t snapshot_sequence = 0;
  uint64_t journal_segments = 0;
  uint64_t journal_records = 0;  ///< structurally valid records scanned
  /// Human-readable findings; empty => the store is clean.
  std::vector<std::string> problems;
  /// Repairs applied (repair mode only).
  std::vector<std::string> repairs;
  /// Repair mode: the repaired directory reopened cleanly.
  bool verified = false;

  bool clean() const { return problems.empty(); }
  std::string ToString() const;
};

/// Scrubs the store directory `dir`. Returns a non-OK Status only for
/// environmental failures (directory missing, unreadable files);
/// corruption findings land in the report.
Result<FsckReport> RunFsck(FileSystem* fs, const std::string& dir,
                           const FsckOptions& options = {});

/// One tenant's store within a fleet scan.
struct FleetFsckEntry {
  std::string name;  ///< subdirectory name under the fleet root
  FsckReport report;
  /// Mirrors the single-store CLI verdict: verify mode = any problem
  /// found; repair mode = the store failed post-repair verification.
  bool damaged = false;
};

/// Aggregate of a fleet-root scan.
struct FleetFsckReport {
  std::vector<FleetFsckEntry> stores;
  /// Stores with problems (verify mode) or that failed post-repair
  /// verification (repair mode).
  int damaged = 0;

  bool clean() const { return damaged == 0; }
  /// One summary line plus each damaged store's full report.
  std::string ToString() const;
};

/// Scrubs a fleet root as laid out by the event scheduler: every
/// subdirectory of `root` is one tenant's DurableEventStore, scanned
/// with RunFsck under the same options. Non-directory entries are
/// ignored. Like RunFsck, a non-OK Status means an environmental
/// failure; per-store damage lands in the report.
Result<FleetFsckReport> RunFleetFsck(FileSystem* fs,
                                     const std::string& root,
                                     const FsckOptions& options = {});

}  // namespace dievent

#endif  // DIEVENT_METADATA_FSCK_H_
