/// \file repository.h
/// The metadata repository (paper Section II-E): stores the collected
/// (time-invariant) and extracted (time-variant) metadata of one analyzed
/// event, maintains lookup indexes, derives eye-contact episodes, and
/// persists everything to a single binary file.

#ifndef DIEVENT_METADATA_REPOSITORY_H_
#define DIEVENT_METADATA_REPOSITORY_H_

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/layers.h"
#include "common/result.h"
#include "metadata/records.h"
#include "video/video_structure.h"

namespace dievent {

class FileSystem;

class MetadataRepository {
 public:
  MetadataRepository() = default;

  // --- time-invariant layer -------------------------------------------
  void SetContext(EventContext context) { context_ = std::move(context); }
  const EventContext& context() const { return context_; }

  // --- ingestion (records must arrive in non-decreasing frame order) ---
  Status AddLookAt(LookAtRecord record);
  Status AddEmotion(EmotionRecord record);
  Status AddOverallEmotion(OverallEmotionRecord record);
  void SetVideoStructure(const VideoStructure& structure);

  /// Replaces the stored shot table directly — used by persistence
  /// replay (durable_store.cc), which journals the derived form.
  void SetStoredShots(std::vector<StoredShot> shots, int num_scenes);

  // --- access -----------------------------------------------------------
  const std::vector<LookAtRecord>& lookat_records() const {
    return lookat_;
  }
  const std::vector<EmotionRecord>& emotion_records() const {
    return emotions_;
  }
  const std::vector<OverallEmotionRecord>& overall_records() const {
    return overall_;
  }
  const std::vector<StoredShot>& shots() const { return shots_; }
  int NumScenes() const { return num_scenes_; }
  double fps() const { return fps_; }
  void set_fps(double fps) { fps_ = fps; }

  /// Index of the look-at record for `frame`, or NotFound.
  Result<int> FindLookAtIndex(int frame) const;

  /// Inclusive frame bounds over every frame-stamped record type, or
  /// nullopt when the repository holds no frame records. Feeds the
  /// corpus shard manifest (metadata/corpus.h).
  std::optional<std::pair<int, int>> FrameBounds() const;

  /// Inclusive timestamp bounds over the look-at records, or nullopt
  /// when there are none.
  std::optional<std::pair<double, double>> LookAtTimeBounds() const;

  /// [lo, hi) index range into lookat_records() whose timestamps can
  /// fall inside [t0, t1). Binary-searched when timestamps are
  /// non-decreasing (the steady-state ingest order); falls back to the
  /// full range otherwise, so callers can always filter within it.
  std::pair<int, int> LookAtIndexRangeForTime(double t0, double t1) const;

  /// Builds the Fig. 9 summary over a frame range ([0, INT_MAX) = all).
  LookAtSummary Summarize(int begin_frame = 0,
                          int end_frame = 0x7fffffff) const;

  /// Frames (indices into lookat_records) where `looker` looks at
  /// `target`; served from the lazily-built pair index.
  const std::vector<int>& FramesWithLook(int looker, int target) const;

  /// Derives maximal eye-contact episodes of at least `min_length`
  /// frames, allowing gaps up to `max_gap` frames (detector dropouts).
  std::vector<EyeContactEpisode> EyeContactEpisodes(int min_length = 1,
                                                    int max_gap = 0) const;

  // --- persistence ------------------------------------------------------
  /// Sidecar facts a snapshot carries beyond the records themselves.
  struct SnapshotInfo {
    uint64_t last_sequence = 0;  ///< journal sequence folded in (0 = none)
    uint32_t version = 0;        ///< on-disk format version loaded
  };

  /// Atomically writes the version-2 snapshot (write-temp / fsync /
  /// rename): per-section CRC32s, a version tag, and `last_sequence`
  /// for journal replay dedup. Readers never observe a partial file.
  Status Save(const std::string& path) const;
  Status Save(FileSystem* fs, const std::string& path,
              uint64_t last_sequence) const;

  /// Loads a snapshot, accepting both the legacy unchecksummed v1
  /// format and checksummed v2. Any framing, checksum, or shape
  /// violation returns a descriptive Corruption — never a partial or
  /// silently wrong repository.
  static Result<MetadataRepository> Load(const std::string& path);
  static Result<MetadataRepository> Load(FileSystem* fs,
                                         const std::string& path,
                                         SnapshotInfo* info = nullptr);

  /// Total stored record count across all types.
  size_t TotalRecords() const {
    return lookat_.size() + emotions_.size() + overall_.size() +
           shots_.size();
  }

 private:
  void InvalidateIndexes();
  void BuildPairIndex() const;
  void BuildTimeIndex() const;

  EventContext context_;
  double fps_ = 0.0;
  std::vector<LookAtRecord> lookat_;
  std::vector<EmotionRecord> emotions_;
  std::vector<OverallEmotionRecord> overall_;
  std::vector<StoredShot> shots_;
  int num_scenes_ = 0;

  // Lazy pair index: (looker, target) -> sorted record indices.
  mutable bool pair_index_valid_ = false;
  mutable std::map<std::pair<int, int>, std::vector<int>> pair_index_;

  // Lazy time index: whether look-at timestamps are non-decreasing,
  // which is what makes LookAtIndexRangeForTime binary-searchable.
  mutable bool time_index_valid_ = false;
  mutable bool time_monotonic_ = false;
};

}  // namespace dievent

#endif  // DIEVENT_METADATA_REPOSITORY_H_
