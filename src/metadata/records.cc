#include "metadata/records.h"

namespace dievent {

LookAtRecord LookAtRecord::FromMatrix(int frame, double t,
                                      const LookAtMatrix& m) {
  LookAtRecord r;
  r.frame = frame;
  r.timestamp_s = t;
  r.n = m.size();
  r.cells.resize(static_cast<size_t>(r.n) * r.n);
  for (int x = 0; x < r.n; ++x)
    for (int y = 0; y < r.n; ++y)
      r.cells[static_cast<size_t>(x) * r.n + y] = m.At(x, y) ? 1 : 0;
  return r;
}

LookAtMatrix LookAtRecord::ToMatrix() const {
  LookAtMatrix m(n);
  for (int x = 0; x < n; ++x)
    for (int y = 0; y < n; ++y)
      m.Set(x, y, cells[static_cast<size_t>(x) * n + y] != 0);
  return m;
}

}  // namespace dievent
