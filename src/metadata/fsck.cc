#include "metadata/fsck.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "io/file.h"
#include "metadata/durable_store.h"
#include "metadata/record_codec.h"
#include "metadata/repository.h"

namespace dievent {

namespace {

/// Structurally validates one journal payload (type tag, sequence,
/// record body decodes, no trailing bytes) without applying it.
Status ValidatePayload(std::string_view payload, uint64_t* seq_out) {
  BinReader r(payload);
  const uint8_t type = r.U8();
  *seq_out = r.U64();
  if (!r.ok()) return Status::Corruption("truncated journal payload");
  switch (type) {
    case 1: {  // look-at
      LookAtRecord rec;
      DIEVENT_RETURN_NOT_OK(DecodeLookAt(&r, &rec));
      break;
    }
    case 2: {  // emotion
      EmotionRecord rec;
      DIEVENT_RETURN_NOT_OK(DecodeEmotion(&r, &rec));
      break;
    }
    case 3: {  // overall emotion
      OverallEmotionRecord rec;
      DIEVENT_RETURN_NOT_OK(DecodeOverallEmotion(&r, &rec));
      break;
    }
    case 4: {  // context
      EventContext ctx;
      DIEVENT_RETURN_NOT_OK(DecodeContext(&r, &ctx));
      break;
    }
    case 5:  // fps
      (void)r.F64();
      break;
    case 6: {  // video structure
      (void)r.F64();
      std::vector<StoredShot> shots;
      int num_scenes = 0;
      DIEVENT_RETURN_NOT_OK(DecodeShots(&r, &shots, &num_scenes));
      break;
    }
    default:
      return Status::Corruption(
          StrFormat("unknown journal record type %u", type));
  }
  if (!r.ok() || !r.AtEnd()) {
    return Status::Corruption("journal payload size mismatch");
  }
  return Status::OK();
}

}  // namespace

std::string FsckReport::ToString() const {
  std::string out = StrFormat(
      "fsck: snapshot=%s seq=%llu, journal: %llu segment(s), %llu "
      "record(s)\n",
      !snapshot_present ? "absent" : (snapshot_ok ? "ok" : "CORRUPT"),
      static_cast<unsigned long long>(snapshot_sequence),
      static_cast<unsigned long long>(journal_segments),
      static_cast<unsigned long long>(journal_records));
  if (problems.empty()) {
    out += "clean\n";
  } else {
    for (const auto& p : problems) out += "problem: " + p + "\n";
  }
  for (const auto& a : repairs) out += "repaired: " + a + "\n";
  if (!repairs.empty() || verified) {
    out += verified ? "verification: store reopens cleanly\n"
                    : "verification: NOT verified\n";
  }
  return out;
}

Result<FsckReport> RunFsck(FileSystem* fs, const std::string& dir,
                           const FsckOptions& options) {
  if (!fs->Exists(dir)) {
    return Status::NotFound("no such store directory: " + dir);
  }
  FsckReport report;

  // --- stray checkpoint temp --------------------------------------------
  const std::string snapshot_path = JoinPath(dir, kSnapshotFileName);
  const std::string tmp_path = snapshot_path + ".tmp";
  if (fs->Exists(tmp_path)) {
    report.problems.push_back(
        "stray checkpoint temp file (checkpoint died before rename)");
    if (options.repair) {
      DIEVENT_RETURN_NOT_OK(fs->Remove(tmp_path));
      report.repairs.push_back("removed " + tmp_path);
    }
  }

  // --- snapshot ----------------------------------------------------------
  report.snapshot_present = fs->Exists(snapshot_path);
  if (report.snapshot_present) {
    MetadataRepository::SnapshotInfo info;
    auto loaded = MetadataRepository::Load(fs, snapshot_path, &info);
    if (loaded.ok()) {
      report.snapshot_ok = true;
      report.snapshot_sequence = info.last_sequence;
    } else {
      report.problems.push_back("snapshot: " + loaded.status().message());
      if (options.repair) {
        DIEVENT_RETURN_NOT_OK(
            fs->Rename(snapshot_path, snapshot_path + ".corrupt"));
        report.repairs.push_back(
            "quarantined corrupt snapshot (checkpointed state before the "
            "journal is lost)");
      }
    }
  }

  // --- journal segments --------------------------------------------------
  DIEVENT_ASSIGN_OR_RETURN(std::vector<std::string> names,
                           fs->ListDir(dir));
  std::vector<std::pair<uint32_t, std::string>> segments;
  for (const std::string& name : names) {
    long long index = ParseJournalSegmentName(name);
    if (index >= 0) {
      segments.emplace_back(static_cast<uint32_t>(index), name);
    }
  }
  std::sort(segments.begin(), segments.end());

  // Sequence continuity, tracked inside the per-record callback so the
  // segment scan reports the exact byte offset of any violation.
  bool adopted = false;
  uint64_t first_seq = 0;
  uint64_t expected = 0;
  auto validate = [&](std::string_view payload) -> Status {
    uint64_t seq = 0;
    DIEVENT_RETURN_NOT_OK(ValidatePayload(payload, &seq));
    if (report.snapshot_ok && seq <= report.snapshot_sequence) {
      return Status::OK();  // stale pre-snapshot record; replay dedups
    }
    if (!adopted) {
      if (report.snapshot_ok && seq != report.snapshot_sequence + 1) {
        return Status::Corruption(StrFormat(
            "sequence gap after snapshot: expected %llu, found %llu",
            static_cast<unsigned long long>(report.snapshot_sequence + 1),
            static_cast<unsigned long long>(seq)));
      }
      adopted = true;
      first_seq = seq;
      expected = seq + 1;
      return Status::OK();
    }
    if (seq != expected) {
      return Status::Corruption(
          StrFormat("sequence gap: expected %llu, found %llu",
                    static_cast<unsigned long long>(expected),
                    static_cast<unsigned long long>(seq)));
    }
    ++expected;
    return Status::OK();
  };

  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& [index, name] = segments[i];
    const std::string path = JoinPath(dir, name);
    DIEVENT_ASSIGN_OR_RETURN(JournalSegmentScan scan,
                             ScanJournalSegment(fs, path, index, validate));
    ++report.journal_segments;
    report.journal_records += scan.valid_records;
    if (!scan.damaged && !scan.payload_rejected) continue;

    const bool last = i + 1 == segments.size();
    report.problems.push_back(StrFormat(
        "segment %s: %s%s", name.c_str(), scan.damage.c_str(),
        (last && scan.damaged) ? " (torn tail)" : ""));
    if (!last) {
      report.problems.push_back(StrFormat(
          "%zu later segment(s) unreachable past the damage",
          segments.size() - i - 1));
    }
    if (options.repair) {
      if (scan.valid_bytes == 0) {
        DIEVENT_RETURN_NOT_OK(fs->Remove(path));
        report.repairs.push_back("removed unreadable segment " + name);
      } else {
        DIEVENT_RETURN_NOT_OK(fs->Truncate(path, scan.valid_bytes));
        report.repairs.push_back(StrFormat(
            "truncated %s to its %llu-byte valid prefix", name.c_str(),
            static_cast<unsigned long long>(scan.valid_bytes)));
      }
      for (size_t j = i + 1; j < segments.size(); ++j) {
        const std::string later = JoinPath(dir, segments[j].second);
        DIEVENT_RETURN_NOT_OK(fs->Rename(later, later + ".corrupt"));
        report.repairs.push_back("quarantined " + segments[j].second);
      }
    }
    break;  // everything after the damage is quarantined or reported
  }

  // --- re-anchor a lost snapshot ----------------------------------------
  // If the snapshot is gone (corrupt, quarantined) but the journal
  // starts past sequence 1, replay needs an anchor carrying the folded
  // sequence so the surviving records still apply without a gap.
  if (options.repair && report.snapshot_present && !report.snapshot_ok &&
      adopted && first_seq > 1) {
    MetadataRepository empty;
    DIEVENT_RETURN_NOT_OK(empty.Save(fs, snapshot_path, first_seq - 1));
    report.repairs.push_back(StrFormat(
        "wrote empty anchor snapshot at sequence %llu",
        static_cast<unsigned long long>(first_seq - 1)));
  }

  // --- verification ------------------------------------------------------
  if (options.repair) {
    DurableStoreOptions store_options;
    store_options.fs = fs;
    store_options.journal = options.journal;
    auto store = DurableEventStore::Open(dir, store_options);
    if (store.ok()) {
      report.verified = true;
      (void)store.value()->Close();
    } else {
      report.problems.push_back("post-repair verification failed: " +
                                store.status().message());
    }
  }
  return report;
}

std::string FleetFsckReport::ToString() const {
  std::string out = StrFormat("fleet fsck: %zu store(s), %d damaged\n",
                              stores.size(), damaged);
  for (const FleetFsckEntry& entry : stores) {
    out += StrFormat("store %s: %s\n", entry.name.c_str(),
                     entry.damaged ? "DAMAGED" : "clean");
    if (entry.damaged) out += entry.report.ToString();
  }
  return out;
}

Result<FleetFsckReport> RunFleetFsck(FileSystem* fs,
                                     const std::string& root,
                                     const FsckOptions& options) {
  if (!fs->Exists(root)) {
    return Status::NotFound("no such fleet root: " + root);
  }
  DIEVENT_ASSIGN_OR_RETURN(std::vector<std::string> names,
                           fs->ListDir(root));
  std::sort(names.begin(), names.end());

  FleetFsckReport fleet;
  for (const std::string& name : names) {
    const std::string dir = JoinPath(root, name);
    // A store is a subdirectory; regular files under the root (logs,
    // configs) are not ours to judge. Listing is the only directory
    // probe the FileSystem interface offers.
    if (!fs->ListDir(dir).ok()) continue;
    FleetFsckEntry entry;
    entry.name = name;
    DIEVENT_ASSIGN_OR_RETURN(entry.report, RunFsck(fs, dir, options));
    entry.damaged =
        options.repair ? !entry.report.verified : !entry.report.clean();
    if (entry.damaged) ++fleet.damaged;
    fleet.stores.push_back(std::move(entry));
  }
  return fleet;
}

}  // namespace dievent
