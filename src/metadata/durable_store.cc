#include "metadata/durable_store.h"

#include <utility>

#include "common/strings.h"
#include "metadata/record_codec.h"

namespace dievent {

const char kSnapshotFileName[] = "snapshot.dmr";

namespace {

// Journal payload framing: [u8 record type][u64 sequence][record body].
// A kRecBatch body is a run of [u8 frame-record type][record] entries
// (look-at / emotion / overall only) sharing the frame's sequence
// number, so a whole batch chunk commits or vanishes with its CRC.
enum : uint8_t {
  kRecLookAt = 1,
  kRecEmotion = 2,
  kRecOverall = 3,
  kRecContext = 4,
  kRecFps = 5,
  kRecShots = 6,
  kRecBatch = 7,
};

// A batch larger than this is split into multiple kRecBatch frames —
// each individually atomic — still written and synced as one call.
constexpr size_t kBatchChunkBytes = 1u << 20;

/// Decodes and applies one typed record body into `repo`.
Status ApplyOneRecord(uint8_t type, BinReader* r, MetadataRepository* repo) {
  switch (type) {
    case kRecLookAt: {
      LookAtRecord rec;
      DIEVENT_RETURN_NOT_OK(DecodeLookAt(r, &rec));
      DIEVENT_RETURN_NOT_OK(repo->AddLookAt(std::move(rec)));
      break;
    }
    case kRecEmotion: {
      EmotionRecord rec;
      DIEVENT_RETURN_NOT_OK(DecodeEmotion(r, &rec));
      DIEVENT_RETURN_NOT_OK(repo->AddEmotion(rec));
      break;
    }
    case kRecOverall: {
      OverallEmotionRecord rec;
      DIEVENT_RETURN_NOT_OK(DecodeOverallEmotion(r, &rec));
      DIEVENT_RETURN_NOT_OK(repo->AddOverallEmotion(rec));
      break;
    }
    case kRecContext: {
      EventContext ctx;
      DIEVENT_RETURN_NOT_OK(DecodeContext(r, &ctx));
      repo->SetContext(std::move(ctx));
      break;
    }
    case kRecFps:
      repo->set_fps(r->F64());
      break;
    case kRecShots: {
      const double fps = r->F64();
      std::vector<StoredShot> shots;
      int num_scenes = 0;
      DIEVENT_RETURN_NOT_OK(DecodeShots(r, &shots, &num_scenes));
      repo->set_fps(fps);
      repo->SetStoredShots(std::move(shots), num_scenes);
      break;
    }
    default:
      return Status::Corruption(
          StrFormat("unknown journal record type %u", type));
  }
  return Status::OK();
}

/// The replay core shared by writer recovery and read-only LoadState:
/// sequence dedup against the snapshot, gap detection, record apply.
/// `applied`/`deduped` are optional tallies.
Status ApplyJournalPayload(std::string_view payload,
                           uint64_t snapshot_sequence,
                           uint64_t* expected_seq, MetadataRepository* repo,
                           uint64_t* applied, uint64_t* deduped) {
  BinReader r(payload);
  const uint8_t type = r.U8();
  const uint64_t seq = r.U64();
  if (!r.ok()) return Status::Corruption("truncated journal payload");

  if (seq <= snapshot_sequence) {
    // A stale segment surviving a crash mid checkpoint: the snapshot
    // already folded this record in. Skipping it is what makes replay
    // duplicate-free.
    if (deduped != nullptr) ++*deduped;
    return Status::OK();
  }
  if (seq != *expected_seq) {
    return Status::Corruption(
        StrFormat("journal sequence gap: expected %llu, found %llu",
                  static_cast<unsigned long long>(*expected_seq),
                  static_cast<unsigned long long>(seq)));
  }

  if (type == kRecBatch) {
    while (r.ok() && !r.AtEnd()) {
      const uint8_t entry = r.U8();
      if (entry != kRecLookAt && entry != kRecEmotion &&
          entry != kRecOverall) {
        return Status::Corruption(
            StrFormat("unexpected record type %u in batch frame", entry));
      }
      DIEVENT_RETURN_NOT_OK(ApplyOneRecord(entry, &r, repo));
    }
  } else {
    DIEVENT_RETURN_NOT_OK(ApplyOneRecord(type, &r, repo));
  }
  if (!r.ok() || !r.AtEnd()) {
    return Status::Corruption("journal payload size mismatch");
  }

  *expected_seq = seq + 1;
  if (applied != nullptr) ++*applied;
  return Status::OK();
}

}  // namespace

FileSystem* DurableEventStore::fs() const {
  return options_.fs != nullptr ? options_.fs : FileSystem::Default();
}

Result<std::unique_ptr<DurableEventStore>> DurableEventStore::Open(
    const std::string& dir, const DurableStoreOptions& options) {
  std::unique_ptr<DurableEventStore> store(
      new DurableEventStore(dir, options));
  DIEVENT_RETURN_NOT_OK(store->Recover());
  return store;
}

DurableEventStore::~DurableEventStore() {
  if (journal_ != nullptr && !closed_) (void)journal_->Close();
}

Status DurableEventStore::Recover() {
  FileSystem* f = fs();
  DIEVENT_RETURN_NOT_OK(f->CreateDir(dir_));

  // A stray temp file is a checkpoint that died before its rename —
  // by construction it carries nothing the journal doesn't.
  const std::string stray =
      JoinPath(dir_, std::string(kSnapshotFileName) + ".tmp");
  if (f->Exists(stray)) DIEVENT_RETURN_NOT_OK(f->Remove(stray));

  const std::string snapshot_path = JoinPath(dir_, kSnapshotFileName);
  if (f->Exists(snapshot_path)) {
    MetadataRepository::SnapshotInfo info;
    auto loaded = MetadataRepository::Load(f, snapshot_path, &info);
    if (!loaded.ok()) {
      return loaded.status().WithContext("recovering snapshot");
    }
    repo_ = std::move(loaded).value();
    recovery_.snapshot_loaded = true;
    recovery_.snapshot_version = info.version;
    recovery_.snapshot_sequence = info.last_sequence;
    last_sequence_ = info.last_sequence;
  }

  uint64_t expected_seq = recovery_.snapshot_sequence + 1;
  JournalReplayInfo replay;
  DIEVENT_RETURN_NOT_OK(ReplayJournal(
      f, dir_,
      [this, &expected_seq](std::string_view payload) {
        return ApplyReplay(payload, &expected_seq);
      },
      &replay));
  recovery_.segments_seen = replay.segments;
  recovery_.tail_truncated = replay.tail_truncated;
  recovery_.bytes_discarded = replay.bytes_discarded;

  // Make the on-disk bytes match what replay accepted, so the next
  // append never lands after garbage.
  DIEVENT_RETURN_NOT_OK(TruncateTornTail(f, dir_, replay));

  DIEVENT_ASSIGN_OR_RETURN(
      journal_, JournalWriter::Open(f, dir_, replay.next_segment_index,
                                    options_.journal));
  return Status::OK();
}

Status DurableEventStore::ApplyReplay(std::string_view payload,
                                      uint64_t* expected_seq) {
  const uint64_t before = *expected_seq;
  DIEVENT_RETURN_NOT_OK(ApplyJournalPayload(
      payload, recovery_.snapshot_sequence, expected_seq, &repo_,
      &recovery_.records_replayed, &recovery_.records_deduped));
  if (*expected_seq != before) last_sequence_ = *expected_seq - 1;
  return Status::OK();
}

Status DurableEventStore::AppendRecord(uint8_t type,
                                       const std::string& body) {
  if (!broken_.ok()) return broken_;
  if (closed_) return Status::FailedPrecondition("store is closed");

  std::string payload;
  BinWriter w(&payload);
  w.U8(type);
  w.U64(last_sequence_ + 1);
  payload.append(body);

  Status s = journal_->Append(payload);
  if (!s.ok()) {
    // The record may or may not have reached disk; it was never
    // acknowledged, and recovery's CRC framing will discard any torn
    // prefix. Wedge the store so the caller cannot keep writing into
    // an undefined disk state.
    broken_ = s;
    return s;
  }
  ++last_sequence_;
  ++records_appended_;
  return Status::OK();
}

Status DurableEventStore::AddLookAt(const LookAtRecord& record) {
  DIEVENT_RETURN_NOT_OK(broken_);
  DIEVENT_RETURN_NOT_OK(repo_.AddLookAt(record));
  std::string body;
  EncodeLookAt(record, &body);
  return AppendRecord(kRecLookAt, body);
}

Status DurableEventStore::AddEmotion(const EmotionRecord& record) {
  DIEVENT_RETURN_NOT_OK(broken_);
  DIEVENT_RETURN_NOT_OK(repo_.AddEmotion(record));
  std::string body;
  EncodeEmotion(record, &body);
  return AppendRecord(kRecEmotion, body);
}

Status DurableEventStore::AddOverallEmotion(
    const OverallEmotionRecord& record) {
  DIEVENT_RETURN_NOT_OK(broken_);
  DIEVENT_RETURN_NOT_OK(repo_.AddOverallEmotion(record));
  std::string body;
  EncodeOverallEmotion(record, &body);
  return AppendRecord(kRecOverall, body);
}

Status DurableEventStore::SetContext(const EventContext& context) {
  DIEVENT_RETURN_NOT_OK(broken_);
  repo_.SetContext(context);
  std::string body;
  EncodeContext(context, &body);
  return AppendRecord(kRecContext, body);
}

Status DurableEventStore::SetFps(double fps) {
  DIEVENT_RETURN_NOT_OK(broken_);
  repo_.set_fps(fps);
  std::string body;
  BinWriter(&body).F64(fps);
  return AppendRecord(kRecFps, body);
}

Status DurableEventStore::SetVideoStructure(
    const VideoStructure& structure) {
  DIEVENT_RETURN_NOT_OK(broken_);
  repo_.SetVideoStructure(structure);
  // Journal the derived form (shot table + scene count + resulting
  // fps) so replay does not depend on VideoStructure's own layout.
  std::string body;
  BinWriter(&body).F64(repo_.fps());
  EncodeShots(repo_.shots(), repo_.NumScenes(), &body);
  return AppendRecord(kRecShots, body);
}

Status DurableEventStore::ValidateBatch(const RecordBatch& batch) const {
  // Mirrors the MetadataRepository::Add* checks so the later in-memory
  // apply cannot fail halfway through the batch.
  int last = repo_.lookat_records().empty()
                 ? -0x7fffffff
                 : repo_.lookat_records().back().frame;
  for (const LookAtRecord& r : batch.lookat) {
    if (r.n <= 0 ||
        r.cells.size() != static_cast<size_t>(r.n) * r.n) {
      return Status::InvalidArgument("malformed look-at record in batch");
    }
    if (r.frame < last) {
      return Status::FailedPrecondition(
          "batch look-at records out of frame order");
    }
    last = r.frame;
  }
  last = repo_.emotion_records().empty()
             ? -0x7fffffff
             : repo_.emotion_records().back().frame;
  for (const EmotionRecord& r : batch.emotions) {
    if (r.frame < last) {
      return Status::FailedPrecondition(
          "batch emotion records out of frame order");
    }
    last = r.frame;
  }
  last = repo_.overall_records().empty()
             ? -0x7fffffff
             : repo_.overall_records().back().frame;
  for (const OverallEmotionRecord& r : batch.overall) {
    if (r.frame < last) {
      return Status::FailedPrecondition(
          "batch overall-emotion records out of frame order");
    }
    last = r.frame;
  }
  return Status::OK();
}

Status DurableEventStore::AppendBatch(const RecordBatch& batch) {
  DIEVENT_RETURN_NOT_OK(broken_);
  if (closed_) return Status::FailedPrecondition("store is closed");
  if (batch.Empty()) return Status::OK();
  DIEVENT_RETURN_NOT_OK(ValidateBatch(batch));

  // Pack [type][record] entries into chunk bodies; each chunk becomes
  // one CRC-framed kRecBatch journal record.
  std::vector<std::string> chunks;
  std::string body;
  std::string rec;
  auto add = [&chunks, &body, &rec](uint8_t type) {
    if (!body.empty() && body.size() + rec.size() + 1 > kBatchChunkBytes) {
      chunks.push_back(std::move(body));
      body.clear();
    }
    BinWriter(&body).U8(type);
    body.append(rec);
    rec.clear();
  };
  for (const LookAtRecord& r : batch.lookat) {
    EncodeLookAt(r, &rec);
    add(kRecLookAt);
  }
  for (const EmotionRecord& r : batch.emotions) {
    EncodeEmotion(r, &rec);
    add(kRecEmotion);
  }
  for (const OverallEmotionRecord& r : batch.overall) {
    EncodeOverallEmotion(r, &rec);
    add(kRecOverall);
  }
  if (!body.empty()) chunks.push_back(std::move(body));

  // In-memory apply; ValidateBatch made these infallible.
  for (const LookAtRecord& r : batch.lookat) {
    DIEVENT_RETURN_NOT_OK(repo_.AddLookAt(r));
  }
  for (const EmotionRecord& r : batch.emotions) {
    DIEVENT_RETURN_NOT_OK(repo_.AddEmotion(r));
  }
  for (const OverallEmotionRecord& r : batch.overall) {
    DIEVENT_RETURN_NOT_OK(repo_.AddOverallEmotion(r));
  }

  std::vector<std::string> payloads;
  payloads.reserve(chunks.size());
  for (std::string& chunk : chunks) {
    std::string payload;
    BinWriter w(&payload);
    w.U8(kRecBatch);
    w.U64(last_sequence_ + 1 + payloads.size());
    payload.append(chunk);
    payloads.push_back(std::move(payload));
  }
  std::vector<std::string_view> views(payloads.begin(), payloads.end());
  Status s = journal_->AppendBatch(views);
  if (!s.ok()) {
    // Same contract as AppendRecord: nothing was acknowledged, disk
    // state is undefined past the last sync — wedge.
    broken_ = s;
    return s;
  }
  last_sequence_ += payloads.size();
  records_appended_ += payloads.size();
  return Status::OK();
}

Result<MetadataRepository> DurableEventStore::LoadState(
    FileSystem* fs, const std::string& dir) {
  if (fs == nullptr) fs = FileSystem::Default();
  MetadataRepository repo;
  uint64_t snapshot_sequence = 0;
  const std::string snapshot_path = JoinPath(dir, kSnapshotFileName);
  if (fs->Exists(snapshot_path)) {
    MetadataRepository::SnapshotInfo info;
    auto loaded = MetadataRepository::Load(fs, snapshot_path, &info);
    if (!loaded.ok()) {
      return loaded.status().WithContext("loading snapshot");
    }
    repo = std::move(loaded).value();
    snapshot_sequence = info.last_sequence;
  }
  uint64_t expected_seq = snapshot_sequence + 1;
  JournalReplayInfo replay;
  DIEVENT_RETURN_NOT_OK(ReplayJournal(
      fs, dir,
      [&](std::string_view payload) {
        return ApplyJournalPayload(payload, snapshot_sequence,
                                   &expected_seq, &repo, nullptr, nullptr);
      },
      &replay));
  return repo;
}

Status DurableEventStore::Checkpoint() {
  if (!broken_.ok()) return broken_;
  if (closed_) return Status::FailedPrecondition("store is closed");

  // Everything acknowledged must be on disk before the snapshot claims
  // to cover it.
  Status s = journal_->Sync();
  if (!s.ok()) {
    broken_ = s.WithContext("checkpoint");
    return broken_;
  }
  return CommitSnapshot(repo_);
}

Status DurableEventStore::RewindToFrame(int frame) {
  if (!broken_.ok()) return broken_;
  if (closed_) return Status::FailedPrecondition("store is closed");

  MetadataRepository trimmed;
  trimmed.SetContext(repo_.context());
  trimmed.set_fps(repo_.fps());
  trimmed.SetStoredShots(repo_.shots(), repo_.NumScenes());
  Status s = Status::OK();
  for (const LookAtRecord& r : repo_.lookat_records()) {
    if (r.frame <= frame && s.ok()) s = trimmed.AddLookAt(r);
  }
  for (const EmotionRecord& r : repo_.emotion_records()) {
    if (r.frame <= frame && s.ok()) s = trimmed.AddEmotion(r);
  }
  for (const OverallEmotionRecord& r : repo_.overall_records()) {
    if (r.frame <= frame && s.ok()) s = trimmed.AddOverallEmotion(r);
  }
  if (!s.ok()) return s.WithContext("rewind");

  // The discarded tail needs no durability; the snapshot of the trimmed
  // state — anchored at the CURRENT sequence, so every stale journal
  // record (kept or dropped) dedups on replay — is the durable commit
  // of the rewind.
  DIEVENT_RETURN_NOT_OK(CommitSnapshot(trimmed));
  repo_ = std::move(trimmed);
  return Status::OK();
}

Status DurableEventStore::CommitSnapshot(const MetadataRepository& state) {
  FileSystem* f = fs();

  // Atomic snapshot carrying the folded sequence number.
  Status s =
      state.Save(f, JoinPath(dir_, kSnapshotFileName), last_sequence_);

  // Reset the journal: retire every existing segment and start a
  // fresh one. A crash anywhere here is safe — stale segments dedup
  // against the snapshot sequence on replay.
  uint32_t next_index = 0;
  if (s.ok()) {
    retired_journal_bytes_ += journal_->bytes_appended();
    retired_segments_ += journal_->segments_created();
    next_index = journal_->segment_index() + 1;
    s = journal_->Close();
    journal_.reset();
  }
  if (s.ok()) {
    auto names = f->ListDir(dir_);
    if (!names.ok()) {
      s = names.status();
    } else {
      for (const std::string& name : names.value()) {
        long long index = ParseJournalSegmentName(name);
        if (index >= 0 && index < next_index) {
          s = f->Remove(JoinPath(dir_, name));
          if (!s.ok()) break;
        }
      }
    }
  }
  if (s.ok()) {
    auto writer =
        JournalWriter::Open(f, dir_, next_index, options_.journal);
    if (writer.ok()) {
      journal_ = std::move(writer).value();
    } else {
      s = writer.status();
    }
  }

  if (!s.ok()) {
    broken_ = s.WithContext("checkpoint");
    return broken_;
  }
  ++checkpoints_;
  return Status::OK();
}

Status DurableEventStore::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  if (journal_ == nullptr) return Status::OK();
  Status s = journal_->Close();
  journal_.reset();
  return s;
}

DurableStoreStats DurableEventStore::stats() const {
  DurableStoreStats stats;
  stats.records_appended = records_appended_;
  stats.bytes_appended = retired_journal_bytes_;
  stats.segments_created = retired_segments_;
  if (journal_ != nullptr) {
    stats.bytes_appended += journal_->bytes_appended();
    stats.segments_created += journal_->segments_created();
  }
  stats.checkpoints = checkpoints_;
  return stats;
}

}  // namespace dievent
