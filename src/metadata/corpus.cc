#include "metadata/corpus.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "common/strings.h"
#include "io/crc32.h"
#include "io/file.h"
#include "metadata/record_codec.h"

namespace dievent {

const char kManifestFileName[] = "MANIFEST";

namespace {

constexpr uint32_t kManifestMagic = 0x44434D31;  // "DCM1"
constexpr uint32_t kManifestVersion = 1;

void EncodeShardEntry(const ShardIndexEntry& e, std::string* out) {
  BinWriter w(out);
  w.Str(e.dir);
  EncodeContext(e.context, out);
  w.U64(e.records);
  w.U8(e.time_bounds ? 1 : 0);
  if (e.time_bounds) {
    w.F64(e.time_bounds->first);
    w.F64(e.time_bounds->second);
  }
  w.U8(e.frame_bounds ? 1 : 0);
  if (e.frame_bounds) {
    w.I32(e.frame_bounds->first);
    w.I32(e.frame_bounds->second);
  }
  w.I32(e.max_lookat_n);
}

Status DecodeShardEntry(BinReader* r, ShardIndexEntry* e) {
  e->dir = r->Str();
  DIEVENT_RETURN_NOT_OK(DecodeContext(r, &e->context));
  e->records = r->U64();
  if (r->U8() != 0) {
    double lo = r->F64(), hi = r->F64();
    e->time_bounds = {lo, hi};
  }
  if (r->U8() != 0) {
    int lo = r->I32(), hi = r->I32();
    e->frame_bounds = {lo, hi};
  }
  e->max_lookat_n = r->I32();
  if (!r->ok() || e->dir.empty()) {
    return Status::Corruption("truncated manifest entry");
  }
  e->event_id =
      e->context.event_id.empty() ? e->dir : e->context.event_id;
  return Status::OK();
}

/// Runs the frame query (and optional scene roll-up) for one shard.
void EvaluateShard(const MetadataRepository* repo,
                   const CorpusQuerySpec& spec,
                   const CorpusQueryOptions& options,
                   std::vector<FrameMatch>* frames,
                   std::vector<SegmentMatch>* scenes) {
  Query query(repo, spec.frame);
  *frames = query.Execute();
  if (options.scenes) *scenes = query.ExecuteScenes(options.min_coverage);
}

}  // namespace

std::string ShardDirName(const std::string& event_id) {
  std::string out = "shard-";
  for (char c : event_id) {
    const bool keep = std::isalnum(static_cast<unsigned char>(c)) ||
                      c == '-' || c == '_' || c == '.';
    out.push_back(keep ? c : '_');
  }
  if (out.size() == 6) out.append("event");
  return out;
}

FileSystem* EventCorpus::fs() const {
  return options_.fs != nullptr ? options_.fs : FileSystem::Default();
}

Result<std::unique_ptr<EventCorpus>> EventCorpus::Open(
    const std::string& dir, const CorpusOptions& options) {
  std::unique_ptr<EventCorpus> corpus(new EventCorpus(dir, options));
  DIEVENT_RETURN_NOT_OK(corpus->fs()->CreateDir(dir));
  DIEVENT_RETURN_NOT_OK(corpus->LoadManifest());
  return corpus;
}

EventCorpus::~EventCorpus() {
  // Take the writers out under the lock, close outside it: mu_ is never
  // held across store I/O, destruction included.
  std::map<std::string, std::unique_ptr<DurableEventStore>> writers;
  {
    MutexLock lock(mu_);
    writers = std::move(writers_);
  }
  for (auto& [id, store] : writers) (void)store->Close();
}

Status EventCorpus::LoadManifest() {
  FileSystem* f = fs();
  const std::string path = JoinPath(dir_, kManifestFileName);
  if (!f->Exists(path)) return Status::OK();
  DIEVENT_ASSIGN_OR_RETURN(std::string data, f->ReadFile(path));

  BinReader r(data);
  if (r.U32() != kManifestMagic || !r.ok()) {
    return Status::Corruption("bad manifest magic: " + path);
  }
  const uint32_t len = r.U32();
  const uint32_t masked_crc = r.U32();
  std::string_view payload = r.Span(len);
  if (!r.ok() || !r.AtEnd()) {
    return Status::Corruption("truncated manifest: " + path);
  }
  if (Crc32Unmask(masked_crc) != Crc32(payload.data(), payload.size())) {
    return Status::Corruption("manifest checksum mismatch: " + path);
  }

  BinReader body(payload);
  if (body.U32() != kManifestVersion) {
    return Status::Corruption("unsupported manifest version: " + path);
  }
  const uint32_t count = body.U32();
  std::vector<ShardIndexEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ShardIndexEntry e;
    Status s = DecodeShardEntry(&body, &e);
    if (!s.ok()) return s.WithContext("manifest " + path);
    entries.push_back(std::move(e));
  }
  if (!body.ok() || !body.AtEnd()) {
    return Status::Corruption("manifest has trailing bytes: " + path);
  }

  MutexLock lock(mu_);
  manifest_ = std::move(entries);
  return Status::OK();
}

Status EventCorpus::WriteManifestLocked() {
  std::string payload;
  {
    BinWriter w(&payload);
    w.U32(kManifestVersion);
    w.U32(static_cast<uint32_t>(manifest_.size()));
  }
  for (const ShardIndexEntry& e : manifest_) {
    EncodeShardEntry(e, &payload);
  }
  std::string data;
  BinWriter w(&data);
  w.U32(kManifestMagic);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(Crc32Mask(Crc32(payload.data(), payload.size())));
  data.append(payload);
  return AtomicWriteFile(fs(), JoinPath(dir_, kManifestFileName), data);
}

ShardIndexEntry EventCorpus::IndexRepository(const MetadataRepository& repo,
                                             const std::string& shard_dir) {
  ShardIndexEntry e;
  e.dir = shard_dir;
  e.context = repo.context();
  e.event_id =
      e.context.event_id.empty() ? shard_dir : e.context.event_id;
  e.records = repo.TotalRecords();
  e.time_bounds = repo.LookAtTimeBounds();
  e.frame_bounds = repo.FrameBounds();
  for (const LookAtRecord& r : repo.lookat_records()) {
    e.max_lookat_n = std::max(e.max_lookat_n, r.n);
  }
  return e;
}

Result<DurableEventStore*> EventCorpus::BeginShard(
    const std::string& event_id) {
  const std::string shard_dir = ShardDirName(event_id);
  {
    MutexLock lock(mu_);
    if (writers_.count(event_id) != 0) {
      return Status::AlreadyExists("shard writer already open: " +
                                   event_id);
    }
    for (const ShardIndexEntry& e : manifest_) {
      if (e.dir == shard_dir) {
        return Status::AlreadyExists("event already sealed: " + event_id);
      }
    }
  }
  const std::string path = JoinPath(dir_, shard_dir);
  if (fs()->Exists(path)) {
    return Status::AlreadyExists(
        "unsealed shard directory exists (ResumeShard): " + shard_dir);
  }

  DurableStoreOptions store_options = options_.store;
  store_options.fs = fs();
  DIEVENT_ASSIGN_OR_RETURN(auto store,
                           DurableEventStore::Open(path, store_options));

  MutexLock lock(mu_);
  auto [it, inserted] = writers_.emplace(event_id, std::move(store));
  if (!inserted) {
    return Status::AlreadyExists("shard writer already open: " + event_id);
  }
  return it->second.get();
}

Result<DurableEventStore*> EventCorpus::ResumeShard(
    const std::string& event_id) {
  const std::string shard_dir = ShardDirName(event_id);
  {
    MutexLock lock(mu_);
    auto it = writers_.find(event_id);
    if (it != writers_.end()) return it->second.get();
    for (const ShardIndexEntry& e : manifest_) {
      if (e.dir == shard_dir) {
        return Status::FailedPrecondition(
            "shard is sealed; it is read-only: " + event_id);
      }
    }
  }
  const std::string path = JoinPath(dir_, shard_dir);
  if (!fs()->Exists(path)) {
    return Status::NotFound("no shard directory for event: " + event_id);
  }

  DurableStoreOptions store_options = options_.store;
  store_options.fs = fs();
  DIEVENT_ASSIGN_OR_RETURN(auto store,
                           DurableEventStore::Open(path, store_options));

  MutexLock lock(mu_);
  auto [it, inserted] = writers_.emplace(event_id, std::move(store));
  if (!inserted) {
    return Status::AlreadyExists("shard writer already open: " + event_id);
  }
  return it->second.get();
}

Status EventCorpus::SealShard(const std::string& event_id) {
  std::unique_ptr<DurableEventStore> store;
  {
    MutexLock lock(mu_);
    auto it = writers_.find(event_id);
    if (it == writers_.end()) {
      return Status::NotFound("no open shard writer: " + event_id);
    }
    store = std::move(it->second);
    writers_.erase(it);
  }

  // Fold the journal into a snapshot and close — a sealed shard is
  // snapshot-only, so readers never race the writer's truncations.
  DIEVENT_RETURN_NOT_OK(
      store->Checkpoint().WithContext("sealing " + event_id));
  DIEVENT_RETURN_NOT_OK(store->Close().WithContext("sealing " + event_id));

  const std::string shard_dir = ShardDirName(event_id);
  ShardIndexEntry entry = IndexRepository(store->repository(), shard_dir);
  auto repo = std::make_shared<MetadataRepository>(store->repository());
  // Prewarm the lazy time index before the repository is shared with
  // concurrent query tasks (it is immutable afterwards).
  (void)repo->LookAtTimeBounds();

  MutexLock lock(mu_);
  manifest_.push_back(std::move(entry));
  Status s = WriteManifestLocked();
  if (!s.ok()) {
    // The shard directory is intact and unsealed; ResumeShard recovers.
    manifest_.pop_back();
    return s.WithContext("publishing " + event_id);
  }
  cache_[shard_dir] = std::move(repo);
  return Status::OK();
}

Status EventCorpus::RegisterShard(const std::string& store_dir) {
  // Prefer a root-relative entry so the corpus directory is relocatable.
  std::string rel = store_dir;
  const std::string prefix = dir_ + "/";
  if (rel.compare(0, prefix.size(), prefix) == 0) {
    rel = rel.substr(prefix.size());
  }
  const std::string path =
      (!rel.empty() && rel[0] == '/') ? rel : JoinPath(dir_, rel);

  DIEVENT_ASSIGN_OR_RETURN(MetadataRepository loaded,
                           DurableEventStore::LoadState(fs(), path));
  ShardIndexEntry entry = IndexRepository(loaded, rel);
  auto repo = std::make_shared<MetadataRepository>(std::move(loaded));
  (void)repo->LookAtTimeBounds();

  MutexLock lock(mu_);
  bool replaced = false;
  for (ShardIndexEntry& e : manifest_) {
    if (e.dir == rel) {
      std::swap(e, entry);
      replaced = true;
      break;
    }
  }
  if (!replaced) manifest_.push_back(std::move(entry));
  Status s = WriteManifestLocked();
  if (!s.ok()) {
    if (replaced) {
      for (ShardIndexEntry& e : manifest_) {
        if (e.dir == rel) std::swap(e, entry);
      }
    } else {
      manifest_.pop_back();
    }
    return s.WithContext("registering " + rel);
  }
  cache_[rel] = std::move(repo);
  return Status::OK();
}

bool EventCorpus::ShardInScope(const ShardIndexEntry& entry,
                               const CorpusScopeSpec& scope) {
  if (scope.event_id && entry.event_id != *scope.event_id) return false;
  if (scope.venue && entry.context.location != *scope.venue) return false;
  if (scope.occasion && entry.context.occasion != *scope.occasion) {
    return false;
  }
  if (scope.date && entry.context.date != *scope.date) return false;
  if (scope.min_participants &&
      entry.context.num_participants < *scope.min_participants) {
    return false;
  }
  return true;
}

bool EventCorpus::CanPruneShard(const ShardIndexEntry& entry,
                                const QuerySpec& frame) {
  // No look-at records: no frame can ever match.
  if (!entry.time_bounds) return true;
  if (frame.time_range &&
      (frame.time_range->second <= entry.time_bounds->first ||
       frame.time_range->first > entry.time_bounds->second)) {
    return true;
  }
  // Look-matrix predicates fail on every record smaller than the
  // largest referenced participant — exact, per MaxParticipantRef().
  const int ref = frame.MaxParticipantRef();
  if (ref >= 0 && ref >= entry.max_lookat_n) return true;
  return false;
}

Result<std::shared_ptr<const MetadataRepository>>
EventCorpus::ShardRepository(const ShardIndexEntry& entry) const {
  {
    MutexLock lock(mu_);
    auto it = cache_.find(entry.dir);
    if (it != cache_.end()) return it->second;
  }
  const std::string path = (!entry.dir.empty() && entry.dir[0] == '/')
                               ? entry.dir
                               : JoinPath(dir_, entry.dir);
  auto loaded = DurableEventStore::LoadState(fs(), path);
  if (!loaded.ok()) {
    return loaded.status().WithContext("opening shard " + entry.dir);
  }
  auto repo =
      std::make_shared<MetadataRepository>(std::move(loaded).value());
  (void)repo->LookAtTimeBounds();

  MutexLock lock(mu_);
  auto [it, inserted] = cache_.emplace(entry.dir, std::move(repo));
  return it->second;
}

Result<CorpusQueryResult> EventCorpus::Query(
    const CorpusQuerySpec& spec, const CorpusQueryOptions& options) const {
  std::vector<ShardIndexEntry> entries;
  {
    MutexLock lock(mu_);
    entries = manifest_;
  }

  // A zero scene-coverage threshold matches every scene even with no
  // matching frames, so a pruned (unopened) shard would wrongly return
  // nothing — pruning is only an optimization when it cannot change
  // the result.
  const bool allow_prune = !(options.scenes && options.min_coverage <= 0.0);

  struct Slot {
    const ShardIndexEntry* entry = nullptr;
    bool pruned = false;
    Status status = Status::OK();
    std::vector<FrameMatch> frames;
    std::vector<SegmentMatch> scenes;
  };
  std::vector<Slot> slots;
  for (const ShardIndexEntry& e : entries) {
    if (!ShardInScope(e, spec.scope)) continue;
    Slot slot;
    slot.entry = &e;
    slot.pruned = allow_prune && CanPruneShard(e, spec.frame);
    slots.push_back(std::move(slot));
  }

  auto evaluate = [this, &spec, &options](Slot* slot) {
    auto repo = ShardRepository(*slot->entry);
    if (!repo.ok()) {
      slot->status = repo.status();
      return;
    }
    EvaluateShard(repo.value().get(), spec, options, &slot->frames,
                  &slot->scenes);
  };

  if (options_.pool != nullptr) {
    TaskGroup group(options_.pool);
    for (Slot& slot : slots) {
      if (slot.pruned) continue;
      group.Submit([&evaluate, &slot] { evaluate(&slot); });
    }
    group.Wait();
  } else {
    for (Slot& slot : slots) {
      if (!slot.pruned) evaluate(&slot);
    }
  }

  CorpusQueryResult result;
  result.shards_in_scope = slots.size();
  for (Slot& slot : slots) {
    if (slot.pruned) {
      ++result.shards_pruned;
    } else {
      DIEVENT_RETURN_NOT_OK(slot.status);
      ++result.shards_opened;
    }
    EventMatches em;
    em.event_id = slot.entry->event_id;
    em.shard_dir = slot.entry->dir;
    em.frames = std::move(slot.frames);
    em.scenes = std::move(slot.scenes);
    result.total_frames += em.frames.size();
    result.events.push_back(std::move(em));
  }
  std::sort(result.events.begin(), result.events.end(),
            [](const EventMatches& a, const EventMatches& b) {
              return a.event_id != b.event_id ? a.event_id < b.event_id
                                              : a.shard_dir < b.shard_dir;
            });
  return result;
}

std::vector<ShardIndexEntry> EventCorpus::shards() const {
  MutexLock lock(mu_);
  return manifest_;
}

}  // namespace dievent
