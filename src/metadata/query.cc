#include "metadata/query.h"

#include <algorithm>

namespace dievent {

namespace {

/// Returns the [first, last) range of records with the given frame in a
/// frame-sorted vector.
template <typename T>
std::pair<int, int> FrameRange(const std::vector<T>& v, int frame) {
  auto lo = std::lower_bound(
      v.begin(), v.end(), frame,
      [](const T& r, int f) { return r.frame < f; });
  auto hi = std::upper_bound(
      v.begin(), v.end(), frame,
      [](int f, const T& r) { return f < r.frame; });
  return {static_cast<int>(lo - v.begin()),
          static_cast<int>(hi - v.begin())};
}

}  // namespace

int QuerySpec::MaxParticipantRef() const {
  int max_ref = -1;
  for (const auto& [a, b] : looking) max_ref = std::max({max_ref, a, b});
  for (const auto& [a, b] : eye_contact) max_ref = std::max({max_ref, a, b});
  for (int t : anyone_at) max_ref = std::max(max_ref, t);
  return max_ref;
}

Query& Query::TimeRange(double t0, double t1) {
  spec_.time_range = {t0, t1};
  return *this;
}

Query& Query::Looking(int looker, int target) {
  spec_.looking.emplace_back(looker, target);
  return *this;
}

Query& Query::EyeContact(int a, int b) {
  spec_.eye_contact.emplace_back(a, b);
  return *this;
}

Query& Query::Feeling(int participant, Emotion emotion) {
  spec_.feeling.emplace_back(participant, emotion);
  return *this;
}

Query& Query::MinOverallHappiness(double min_oh) {
  spec_.min_oh = min_oh;
  return *this;
}

Query& Query::MinValence(double min_valence) {
  spec_.min_valence = min_valence;
  return *this;
}

Query& Query::AnyoneLookingAt(int target) {
  spec_.anyone_at.push_back(target);
  return *this;
}

bool Query::FrameMatches(const LookAtRecord& r) const {
  if (spec_.time_range &&
      (r.timestamp_s < spec_.time_range->first ||
       r.timestamp_s >= spec_.time_range->second)) {
    return false;
  }
  for (const auto& [looker, target] : spec_.looking) {
    if (looker < 0 || looker >= r.n || target < 0 || target >= r.n ||
        !r.At(looker, target)) {
      return false;
    }
  }
  for (const auto& [a, b] : spec_.eye_contact) {
    if (a < 0 || a >= r.n || b < 0 || b >= r.n || !r.At(a, b) ||
        !r.At(b, a)) {
      return false;
    }
  }
  for (int target : spec_.anyone_at) {
    if (target < 0 || target >= r.n) return false;
    bool any = false;
    for (int x = 0; x < r.n && !any; ++x) {
      if (x != target && r.At(x, target)) any = true;
    }
    if (!any) return false;
  }

  if (!spec_.feeling.empty()) {
    const auto& emotions = repo_->emotion_records();
    auto [lo, hi] = FrameRange(emotions, r.frame);
    for (const auto& [participant, emotion] : spec_.feeling) {
      bool found = false;
      for (int i = lo; i < hi && !found; ++i) {
        if (emotions[i].participant == participant &&
            emotions[i].emotion == emotion) {
          found = true;
        }
      }
      if (!found) return false;
    }
  }

  if (spec_.min_oh || spec_.min_valence) {
    const auto& overall = repo_->overall_records();
    auto [lo, hi] = FrameRange(overall, r.frame);
    if (lo == hi) return false;
    const OverallEmotionRecord& rec = overall[lo];
    if (spec_.min_oh && rec.overall_happiness < *spec_.min_oh) return false;
    if (spec_.min_valence && rec.mean_valence < *spec_.min_valence) {
      return false;
    }
  }
  return true;
}

std::vector<FrameMatch> Query::Execute() const {
  const auto& records = repo_->lookat_records();
  // A time-ranged query only needs to scan the candidate window — the
  // repository's time index narrows it to [lo, hi) instead of a full
  // linear pass (falling back to the full range when timestamps are not
  // monotone).
  int lo = 0, hi = static_cast<int>(records.size());
  if (spec_.time_range) {
    std::tie(lo, hi) = repo_->LookAtIndexRangeForTime(
        spec_.time_range->first, spec_.time_range->second);
  }
  std::vector<FrameMatch> out;
  for (int i = lo; i < hi; ++i) {
    const LookAtRecord& r = records[i];
    if (FrameMatches(r)) out.push_back(FrameMatch{r.frame, r.timestamp_s});
  }
  return out;
}

namespace {

std::vector<SegmentMatch> RollUp(
    const std::vector<FrameMatch>& frames,
    const std::vector<std::pair<int, std::pair<int, int>>>& segments,
    double min_coverage) {
  // `frames` is produced in record order, so frame numbers are
  // non-decreasing: each segment's hit count is two binary searches,
  // not a scan over every match.
  std::vector<SegmentMatch> out;
  for (const auto& [index, range] : segments) {
    const auto [begin, end] = range;
    if (end <= begin) continue;
    auto lo = std::lower_bound(
        frames.begin(), frames.end(), begin,
        [](const FrameMatch& f, int b) { return f.frame < b; });
    auto hi = std::lower_bound(
        frames.begin(), frames.end(), end,
        [](const FrameMatch& f, int e) { return f.frame < e; });
    const int hits = static_cast<int>(hi - lo);
    double coverage = static_cast<double>(hits) / (end - begin);
    if (coverage >= min_coverage) {
      out.push_back(SegmentMatch{index, begin, end, coverage});
    }
  }
  return out;
}

}  // namespace

std::vector<SegmentMatch> Query::ExecuteShots(double min_coverage) const {
  std::vector<FrameMatch> frames = Execute();
  std::vector<std::pair<int, std::pair<int, int>>> segs;
  const auto& shots = repo_->shots();
  for (size_t i = 0; i < shots.size(); ++i) {
    segs.emplace_back(static_cast<int>(i),
                      std::make_pair(shots[i].begin_frame,
                                     shots[i].end_frame));
  }
  return RollUp(frames, segs, min_coverage);
}

std::vector<SegmentMatch> Query::ExecuteScenes(double min_coverage) const {
  std::vector<FrameMatch> frames = Execute();
  // Scene extents are the union of their shots.
  std::vector<std::pair<int, std::pair<int, int>>> segs;
  for (int scene = 0; scene < repo_->NumScenes(); ++scene) {
    int begin = 0x7fffffff, end = 0;
    for (const StoredShot& s : repo_->shots()) {
      if (s.scene_index != scene) continue;
      begin = std::min(begin, s.begin_frame);
      end = std::max(end, s.end_frame);
    }
    if (end > 0) segs.emplace_back(scene, std::make_pair(begin, end));
  }
  return RollUp(frames, segs, min_coverage);
}

}  // namespace dievent
