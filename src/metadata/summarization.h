/// \file summarization.h
/// Video summarization — the sixth component of the paper's framework
/// ("detecting and highlighting the most important scenes, shots, and
/// events inside videos; reducing the time needed for analyzing a video
/// by sociologists or locating the relevant scenes").
///
/// A summary is a ranked selection of key frames. Each candidate key
/// frame (from the parsed video structure) is scored by combining visual
/// novelty (histogram distance from the previously selected entry) with
/// semantic importance mined from the metadata repository: eye-contact
/// onsets, attention concentration, and group-emotion swings near the
/// frame.

#ifndef DIEVENT_METADATA_SUMMARIZATION_H_
#define DIEVENT_METADATA_SUMMARIZATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "image/histogram.h"
#include "metadata/repository.h"
#include "video/video_structure.h"

namespace dievent {

/// One selected summary frame with its provenance.
struct SummaryEntry {
  int frame = 0;
  double timestamp_s = 0.0;
  double score = 0.0;
  /// Human-readable justification, e.g. "eye contact begins (P1,P3)".
  std::string reason;
};

struct SummaryOptions {
  /// Maximum entries in the summary (<= number of key frames).
  int max_entries = 8;
  /// Weight of semantic (metadata) importance vs visual novelty.
  double semantic_weight = 0.6;
  /// Half-window (frames) around a key frame in which metadata events
  /// count toward its importance.
  int event_window = 12;
  /// Entries scoring below this are dropped even if the budget remains.
  double min_score = 0.05;
};

/// Builds a summary from a parsed structure, the per-frame signature
/// table (indexed absolutely, as produced by the parser), and the
/// repository's time-variant layers. `signatures` may be empty, in which
/// case only semantic importance is used.
class VideoSummarizer {
 public:
  explicit VideoSummarizer(SummaryOptions options = {})
      : options_(options) {}

  Result<std::vector<SummaryEntry>> Summarize(
      const VideoStructure& structure,
      const std::vector<Histogram>& signatures,
      const MetadataRepository& repository) const;

 private:
  SummaryOptions options_;
};

}  // namespace dievent

#endif  // DIEVENT_METADATA_SUMMARIZATION_H_
