#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace dievent {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(&s);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % n;
}

double Rng::NextGaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  has_spare_ = true;
  return u * mul;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace dievent
