/// \file spsc_queue.h
/// A bounded lock-free single-producer/single-consumer ring buffer.
///
/// The acquisition supervisor runs one reader thread per camera; each
/// reader hands completed frame reads back to the supervisor through one
/// of these queues. Exactly one thread pushes and exactly one pops, which
/// is what lets the implementation get away with two atomics and no lock:
/// the producer owns `head_`, the consumer owns `tail_`, and each only
/// needs an acquire-load of the other's counter to know how much room or
/// data exists.
///
/// The single-thread-per-endpoint contract is checked at runtime:
/// `TryPush`/`TryPop` each carry a ThreadOwner assertion, and a deliberate
/// endpoint handoff (reader restart, prefetch pump takeover) must call
/// `ResetProducerOwner`/`ResetConsumerOwner` at the externally
/// synchronized handoff point.

#ifndef DIEVENT_COMMON_SPSC_QUEUE_H_
#define DIEVENT_COMMON_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/thread_ownership.h"

namespace dievent {

/// Fixed-capacity SPSC queue. `TryPush`/`TryPop` never block and never
/// allocate after construction. Capacity is rounded up to a power of two
/// so the ring index is a mask, not a modulo.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the ring is full — the caller must
  /// decide whether to retry, drop, or block; ignoring it loses `value`.
  [[nodiscard]] bool TryPush(T value) {
    DCHECK_OWNED_BY(producer_owner_);
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail == slots_.size()) return false;
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when the ring is empty.
  [[nodiscard]] std::optional<T> TryPop() {
    DCHECK_OWNED_BY(consumer_owner_);
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    if (head == tail) return std::nullopt;
    T out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return out;
  }

  /// Approximate occupancy; exact when called from either endpoint thread
  /// while the other is idle.
  size_t SizeApprox() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

  /// Endpoint handoff hooks; the caller must have synchronized with the
  /// previous owner (thread join/spawn) before resetting.
  void ResetProducerOwner() { producer_owner_.Reset(); }
  void ResetConsumerOwner() { consumer_owner_.Reset(); }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  std::atomic<size_t> head_{0};  ///< next slot to write (producer-owned)
  std::atomic<size_t> tail_{0};  ///< next slot to read (consumer-owned)
  ThreadOwner producer_owner_{"spsc-producer"};
  ThreadOwner consumer_owner_{"spsc-consumer"};
};

}  // namespace dievent

#endif  // DIEVENT_COMMON_SPSC_QUEUE_H_
