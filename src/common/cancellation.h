/// \file cancellation.h
/// Cooperative cancellation for long-running jobs.
///
/// A CancellationToken is a sticky flag shared between a controller (the
/// fleet scheduler's watchdog, an operator CLI) and a worker (a pipeline
/// run). The controller calls Cancel(); the worker polls cancelled() at
/// its frame boundaries and unwinds with Status::Cancelled. Cancellation
/// is cooperative on purpose: the pipeline only stops at a committed
/// frame boundary, so the durable store is always left on the
/// commit-marker protocol's happy path and a restart resumes exactly
/// after the last acknowledged frame.
///
/// Reset() re-arms the token between attempts of the same job. The
/// controller must not call Reset() while a worker still polls the token
/// (the scheduler resets only between attempts, when no runner holds the
/// job).

#ifndef DIEVENT_COMMON_CANCELLATION_H_
#define DIEVENT_COMMON_CANCELLATION_H_

#include <atomic>

namespace dievent {

/// Sticky cancel flag. All operations are lock-free and safe to call
/// from any thread.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation. Idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// True once Cancel() has been called (until Reset).
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Re-arms the token for a new attempt. Caller must have synchronized
  /// with every worker that polled the previous generation.
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace dievent

#endif  // DIEVENT_COMMON_CANCELLATION_H_
