#include "common/quantile.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dievent {

P2Quantile::P2Quantile(double quantile) : quantile_(quantile) {
  DIEVENT_CHECK(quantile > 0.0 && quantile < 1.0);
  const double p = quantile_;
  desired_inc_[0] = 0.0;
  desired_inc_[1] = p / 2.0;
  desired_inc_[2] = p;
  desired_inc_[3] = (1.0 + p) / 2.0;
  desired_inc_[4] = 1.0;
}

double P2Quantile::Parabolic(int i, double d) const {
  // Piecewise-parabolic prediction of the marker height at position
  // n_[i] + d (Jain & Chlamtac, eq. at step B.3).
  return q_[i] + d / (n_[i + 1] - n_[i - 1]) *
                     ((n_[i] - n_[i - 1] + d) * (q_[i + 1] - q_[i]) /
                          (n_[i + 1] - n_[i]) +
                      (n_[i + 1] - n_[i] - d) * (q_[i] - q_[i - 1]) /
                          (n_[i] - n_[i - 1]));
}

double P2Quantile::Linear(int i, int d) const {
  return q_[i] + d * (q_[i + d] - q_[i]) / (n_[i + d] - n_[i]);
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    q_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(q_, q_ + 5);
      const double p = quantile_;
      for (int i = 0; i < 5; ++i) n_[i] = i + 1;
      desired_[0] = 1.0;
      desired_[1] = 1.0 + 2.0 * p;
      desired_[2] = 1.0 + 4.0 * p;
      desired_[3] = 3.0 + 2.0 * p;
      desired_[4] = 5.0;
    }
    return;
  }

  int k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= q_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) n_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += desired_inc_[i];

  for (int i = 1; i <= 3; ++i) {
    const double diff = desired_[i] - n_[i];
    if ((diff >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
        (diff <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
      const int d = diff >= 0 ? 1 : -1;
      const double candidate = Parabolic(i, d);
      if (q_[i - 1] < candidate && candidate < q_[i + 1]) {
        q_[i] = candidate;
      } else {
        q_[i] = Linear(i, d);
      }
      n_[i] += d;
    }
  }
  ++count_;
}

double P2Quantile::Estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact nearest-rank order statistic of the samples seen so far.
    double sorted[5];
    std::copy(q_, q_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const long long rank = static_cast<long long>(
        std::ceil(quantile_ * static_cast<double>(count_)));
    const long long index = std::max<long long>(rank, 1) - 1;
    return sorted[std::min<long long>(index, count_ - 1)];
  }
  return q_[2];
}

}  // namespace dievent
