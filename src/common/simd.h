/// \file simd.h
/// Portable SIMD kernels for the vision/ML hot paths.
///
/// Each kernel ships two implementations: a plain scalar reference
/// (`*Scalar`) and a vectorized variant (SSE2 on x86, NEON on ARM) behind
/// the unqualified name. The `DIEVENT_SIMD` CMake option (ON by default)
/// selects between them at compile time; with the option off, or on a
/// target with neither instruction set, the unqualified names alias the
/// scalar reference.
///
/// Equivalence contract: every vectorized kernel produces output
/// BIT-IDENTICAL to its scalar reference on the same input.
///  - Integer kernels (LBP codes, color masks, integral rows, occupancy)
///    are exact by construction.
///  - The float matvec fixes a lane-partitioned summation order (four
///    interleaved partial sums combined as (l0+l2)+(l1+l3)) that both
///    implementations share, so IEEE-754 determinism makes them agree to
///    the last bit. This requires the build to disable FP contraction
///    (-ffp-contract=off, set in the top-level CMakeLists); a fused
///    multiply-add in only one of the two paths would break the contract.
/// tests/test_simd_kernels.cc asserts the contract exhaustively over
/// small sizes and with seeded randoms over large/unaligned/tail sizes,
/// and SelfCheck() re-asserts a compact probe at runtime (benchmarks run
/// it before trusting a speedup measurement).

#ifndef DIEVENT_COMMON_SIMD_H_
#define DIEVENT_COMMON_SIMD_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

// DIEVENT_SIMD is normally injected by CMake (0 or 1); default to the
// vectorized build when compiled standalone.
#ifndef DIEVENT_SIMD
#define DIEVENT_SIMD 1
#endif

#if DIEVENT_SIMD && (defined(__SSE2__) || defined(_M_X64))
#define DIEVENT_SIMD_SSE2 1
#include <emmintrin.h>
#elif DIEVENT_SIMD && defined(__ARM_NEON)
#define DIEVENT_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace dievent {
namespace simd {

/// True when a vectorized backend is compiled in (the unqualified kernel
/// names differ from the scalar references).
#if defined(DIEVENT_SIMD_SSE2) || defined(DIEVENT_SIMD_NEON)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Name of the active backend: "sse2", "neon", or "scalar".
inline const char* ActiveBackend() {
#if defined(DIEVENT_SIMD_SSE2)
  return "sse2";
#elif defined(DIEVENT_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

// ---------------------------------------------------------------------------
// Dense matvec: y[o] = bias[o] + sum_i w[o*in + i] * x[i]
//
// Summation semantics (shared by both implementations): each row keeps
// four partial sums, element i accumulating into lane i mod 4; the lanes
// combine as (l0 + l2) + (l1 + l3), and the bias is added last. Rows are
// processed in blocks of four so one streaming read of x feeds four
// accumulators (quartering x's cache traffic); blocking never reorders
// any row's additions.
// ---------------------------------------------------------------------------

namespace internal {

/// Scalar lane-partitioned dot product for one row, continuing from lane
/// partial sums already in `lanes` and element index `i0` (i0 % 4 == 0).
inline float RowFinish(const float* w, const float* x, int i0, int in,
                       float lanes[4]) {
  // The & 3 keeps element i0+k in lane (i0+k) % 4 (i0 is a multiple of
  // four) and bounds the lanes index for any tail length, so GCC cannot
  // derive a trip count from the array extent and misdiagnose the loop
  // (-Waggressive-loop-optimizations fires on the i-indexed form).
  const int tail = in - i0;
  for (int k = 0; k < tail; ++k) lanes[k & 3] += w[i0 + k] * x[i0 + k];
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

}  // namespace internal

inline void MatVecScalar(const float* w, const float* bias, const float* x,
                         int in, int out_n, float* y) {
  for (int o = 0; o < out_n; ++o) {
    const float* row = w + static_cast<size_t>(o) * in;
    float lanes[4] = {0.0f, 0.0f, 0.0f, 0.0f};
    int i = 0;
    for (; i + 4 <= in; i += 4) {
      lanes[0] += row[i] * x[i];
      lanes[1] += row[i + 1] * x[i + 1];
      lanes[2] += row[i + 2] * x[i + 2];
      lanes[3] += row[i + 3] * x[i + 3];
    }
    y[o] = bias[o] + internal::RowFinish(row, x, i, in, lanes);
  }
}

#if defined(DIEVENT_SIMD_SSE2)

inline void MatVec(const float* w, const float* bias, const float* x,
                   int in, int out_n, float* y) {
  const int vec_end = in & ~3;
  int o = 0;
  // Eight rows per block: one streaming read of x feeds eight
  // accumulators (eight accumulators + xv fit the 16 xmm registers).
  // Each row still owns exactly one accumulator — a second one per row
  // would reorder that row's per-lane additions and break bit-identity.
  for (; o + 8 <= out_n; o += 8) {
    const float* r0 = w + static_cast<size_t>(o) * in;
    const float* r1 = r0 + in;
    const float* r2 = r1 + in;
    const float* r3 = r2 + in;
    const float* r4 = r3 + in;
    const float* r5 = r4 + in;
    const float* r6 = r5 + in;
    const float* r7 = r6 + in;
    __m128 a0 = _mm_setzero_ps(), a1 = _mm_setzero_ps();
    __m128 a2 = _mm_setzero_ps(), a3 = _mm_setzero_ps();
    __m128 a4 = _mm_setzero_ps(), a5 = _mm_setzero_ps();
    __m128 a6 = _mm_setzero_ps(), a7 = _mm_setzero_ps();
    for (int i = 0; i < vec_end; i += 4) {
      const __m128 xv = _mm_loadu_ps(x + i);
      a0 = _mm_add_ps(a0, _mm_mul_ps(_mm_loadu_ps(r0 + i), xv));
      a1 = _mm_add_ps(a1, _mm_mul_ps(_mm_loadu_ps(r1 + i), xv));
      a2 = _mm_add_ps(a2, _mm_mul_ps(_mm_loadu_ps(r2 + i), xv));
      a3 = _mm_add_ps(a3, _mm_mul_ps(_mm_loadu_ps(r3 + i), xv));
      a4 = _mm_add_ps(a4, _mm_mul_ps(_mm_loadu_ps(r4 + i), xv));
      a5 = _mm_add_ps(a5, _mm_mul_ps(_mm_loadu_ps(r5 + i), xv));
      a6 = _mm_add_ps(a6, _mm_mul_ps(_mm_loadu_ps(r6 + i), xv));
      a7 = _mm_add_ps(a7, _mm_mul_ps(_mm_loadu_ps(r7 + i), xv));
    }
    // The tail and the lane combine run scalar, exactly as the reference
    // does, so the result matches it bit for bit.
    alignas(16) float l[8][4];
    _mm_store_ps(l[0], a0);
    _mm_store_ps(l[1], a1);
    _mm_store_ps(l[2], a2);
    _mm_store_ps(l[3], a3);
    _mm_store_ps(l[4], a4);
    _mm_store_ps(l[5], a5);
    _mm_store_ps(l[6], a6);
    _mm_store_ps(l[7], a7);
    for (int k = 0; k < 8; ++k) {
      y[o + k] = bias[o + k] + internal::RowFinish(r0 + static_cast<size_t>(k) * in,
                                                   x, vec_end, in, l[k]);
    }
  }
  for (; o + 4 <= out_n; o += 4) {
    const float* r0 = w + static_cast<size_t>(o) * in;
    const float* r1 = r0 + in;
    const float* r2 = r1 + in;
    const float* r3 = r2 + in;
    __m128 a0 = _mm_setzero_ps(), a1 = _mm_setzero_ps();
    __m128 a2 = _mm_setzero_ps(), a3 = _mm_setzero_ps();
    for (int i = 0; i < vec_end; i += 4) {
      const __m128 xv = _mm_loadu_ps(x + i);
      a0 = _mm_add_ps(a0, _mm_mul_ps(_mm_loadu_ps(r0 + i), xv));
      a1 = _mm_add_ps(a1, _mm_mul_ps(_mm_loadu_ps(r1 + i), xv));
      a2 = _mm_add_ps(a2, _mm_mul_ps(_mm_loadu_ps(r2 + i), xv));
      a3 = _mm_add_ps(a3, _mm_mul_ps(_mm_loadu_ps(r3 + i), xv));
    }
    alignas(16) float l0[4], l1[4], l2[4], l3[4];
    _mm_store_ps(l0, a0);
    _mm_store_ps(l1, a1);
    _mm_store_ps(l2, a2);
    _mm_store_ps(l3, a3);
    y[o] = bias[o] + internal::RowFinish(r0, x, vec_end, in, l0);
    y[o + 1] = bias[o + 1] + internal::RowFinish(r1, x, vec_end, in, l1);
    y[o + 2] = bias[o + 2] + internal::RowFinish(r2, x, vec_end, in, l2);
    y[o + 3] = bias[o + 3] + internal::RowFinish(r3, x, vec_end, in, l3);
  }
  for (; o < out_n; ++o) {
    const float* row = w + static_cast<size_t>(o) * in;
    __m128 acc = _mm_setzero_ps();
    for (int i = 0; i < vec_end; i += 4) {
      acc = _mm_add_ps(acc,
                       _mm_mul_ps(_mm_loadu_ps(row + i), _mm_loadu_ps(x + i)));
    }
    alignas(16) float lanes[4];
    _mm_store_ps(lanes, acc);
    y[o] = bias[o] + internal::RowFinish(row, x, vec_end, in, lanes);
  }
}

#elif defined(DIEVENT_SIMD_NEON)

inline void MatVec(const float* w, const float* bias, const float* x,
                   int in, int out_n, float* y) {
  const int vec_end = in & ~3;
  int o = 0;
  for (; o + 4 <= out_n; o += 4) {
    const float* r0 = w + static_cast<size_t>(o) * in;
    const float* r1 = r0 + in;
    const float* r2 = r1 + in;
    const float* r3 = r2 + in;
    float32x4_t a0 = vdupq_n_f32(0.0f), a1 = vdupq_n_f32(0.0f);
    float32x4_t a2 = vdupq_n_f32(0.0f), a3 = vdupq_n_f32(0.0f);
    for (int i = 0; i < vec_end; i += 4) {
      const float32x4_t xv = vld1q_f32(x + i);
      // Explicit mul + add (not vmlaq/fma): contraction would break the
      // bit-identical contract with the scalar reference.
      a0 = vaddq_f32(a0, vmulq_f32(vld1q_f32(r0 + i), xv));
      a1 = vaddq_f32(a1, vmulq_f32(vld1q_f32(r1 + i), xv));
      a2 = vaddq_f32(a2, vmulq_f32(vld1q_f32(r2 + i), xv));
      a3 = vaddq_f32(a3, vmulq_f32(vld1q_f32(r3 + i), xv));
    }
    float l0[4], l1[4], l2[4], l3[4];
    vst1q_f32(l0, a0);
    vst1q_f32(l1, a1);
    vst1q_f32(l2, a2);
    vst1q_f32(l3, a3);
    y[o] = bias[o] + internal::RowFinish(r0, x, vec_end, in, l0);
    y[o + 1] = bias[o + 1] + internal::RowFinish(r1, x, vec_end, in, l1);
    y[o + 2] = bias[o + 2] + internal::RowFinish(r2, x, vec_end, in, l2);
    y[o + 3] = bias[o + 3] + internal::RowFinish(r3, x, vec_end, in, l3);
  }
  for (; o < out_n; ++o) {
    const float* row = w + static_cast<size_t>(o) * in;
    float32x4_t acc = vdupq_n_f32(0.0f);
    for (int i = 0; i < vec_end; i += 4) {
      acc = vaddq_f32(acc, vmulq_f32(vld1q_f32(row + i), vld1q_f32(x + i)));
    }
    float lanes[4];
    vst1q_f32(lanes, acc);
    y[o] = bias[o] + internal::RowFinish(row, x, vec_end, in, lanes);
  }
}

#else

inline void MatVec(const float* w, const float* bias, const float* x, int in,
                   int out_n, float* y) {
  MatVecScalar(w, bias, x, in, out_n, y);
}

#endif

// ---------------------------------------------------------------------------
// LBP(8,1) code image: codes[y*w+x] gets bit b set when the b-th ring
// neighbour (clockwise from top-left, reads clamped to the border) is >=
// the center pixel. Byte-exact by construction.
// ---------------------------------------------------------------------------

namespace internal {

/// Ring neighbour offsets, clockwise from top-left.
inline constexpr int kLbpDx[8] = {-1, 0, 1, 1, 1, 0, -1, -1};
inline constexpr int kLbpDy[8] = {-1, -1, -1, 0, 1, 1, 1, 0};

inline uint8_t LbpCodeAt(const uint8_t* gray, int w, int h, int x, int y) {
  const uint8_t center = gray[static_cast<size_t>(y) * w + x];
  uint8_t code = 0;
  for (int b = 0; b < 8; ++b) {
    int nx = x + kLbpDx[b];
    int ny = y + kLbpDy[b];
    nx = nx < 0 ? 0 : (nx >= w ? w - 1 : nx);
    ny = ny < 0 ? 0 : (ny >= h ? h - 1 : ny);
    if (gray[static_cast<size_t>(ny) * w + nx] >= center) {
      code |= static_cast<uint8_t>(1u << b);
    }
  }
  return code;
}

}  // namespace internal

inline void LbpCodesScalar(const uint8_t* gray, int w, int h,
                           uint8_t* codes) {
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      codes[static_cast<size_t>(y) * w + x] =
          internal::LbpCodeAt(gray, w, h, x, y);
    }
  }
}

#if defined(DIEVENT_SIMD_SSE2)

inline void LbpCodes(const uint8_t* gray, int w, int h, uint8_t* codes) {
  if (w < 18 || h < 3) {
    LbpCodesScalar(gray, w, h, codes);
    return;
  }
  for (int y = 0; y < h; ++y) {
    const uint8_t* rm = gray + static_cast<size_t>(y == 0 ? 0 : y - 1) * w;
    const uint8_t* rc = gray + static_cast<size_t>(y) * w;
    const uint8_t* rp =
        gray + static_cast<size_t>(y == h - 1 ? h - 1 : y + 1) * w;
    uint8_t* out = codes + static_cast<size_t>(y) * w;
    out[0] = internal::LbpCodeAt(gray, w, h, 0, y);
    int x = 1;
    // Ring rows for the interior: the b-th neighbour of pixels
    // [x, x+15] is the contiguous span row[x+dx .. x+dx+15].
    const uint8_t* rows[8] = {rm, rm, rm, rc, rp, rp, rp, rc};
    for (; x + 16 <= w - 1; x += 16) {
      const __m128i center =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(rc + x));
      __m128i code = _mm_setzero_si128();
      for (int b = 0; b < 8; ++b) {
        const __m128i n = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
            rows[b] + x + internal::kLbpDx[b]));
        // n >= center (unsigned bytes): max(n, center) == n.
        const __m128i ge =
            _mm_cmpeq_epi8(_mm_max_epu8(n, center), n);
        code = _mm_or_si128(
            code, _mm_and_si128(ge, _mm_set1_epi8(
                                        static_cast<char>(1u << b))));
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + x), code);
    }
    for (; x < w; ++x) out[x] = internal::LbpCodeAt(gray, w, h, x, y);
  }
}

#elif defined(DIEVENT_SIMD_NEON)

inline void LbpCodes(const uint8_t* gray, int w, int h, uint8_t* codes) {
  if (w < 18 || h < 3) {
    LbpCodesScalar(gray, w, h, codes);
    return;
  }
  for (int y = 0; y < h; ++y) {
    const uint8_t* rm = gray + static_cast<size_t>(y == 0 ? 0 : y - 1) * w;
    const uint8_t* rc = gray + static_cast<size_t>(y) * w;
    const uint8_t* rp =
        gray + static_cast<size_t>(y == h - 1 ? h - 1 : y + 1) * w;
    uint8_t* out = codes + static_cast<size_t>(y) * w;
    out[0] = internal::LbpCodeAt(gray, w, h, 0, y);
    int x = 1;
    const uint8_t* rows[8] = {rm, rm, rm, rc, rp, rp, rp, rc};
    for (; x + 16 <= w - 1; x += 16) {
      const uint8x16_t center = vld1q_u8(rc + x);
      uint8x16_t code = vdupq_n_u8(0);
      for (int b = 0; b < 8; ++b) {
        const uint8x16_t n = vld1q_u8(rows[b] + x + internal::kLbpDx[b]);
        const uint8x16_t ge = vcgeq_u8(n, center);
        code = vorrq_u8(
            code, vandq_u8(ge, vdupq_n_u8(static_cast<uint8_t>(1u << b))));
      }
      vst1q_u8(out + x, code);
    }
    for (; x < w; ++x) out[x] = internal::LbpCodeAt(gray, w, h, x, y);
  }
}

#else

inline void LbpCodes(const uint8_t* gray, int w, int h, uint8_t* codes) {
  LbpCodesScalar(gray, w, h, codes);
}

#endif

// ---------------------------------------------------------------------------
// Integral-image row: out[x] = prev[x] + (src[0] + ... + src[x]), the
// inner recurrence of a summed-area table build expressed as an inclusive
// prefix scan plus the previous table row. uint32 arithmetic, exact.
// ---------------------------------------------------------------------------

inline void IntegralRowScalar(const uint8_t* src, const uint32_t* prev,
                              uint32_t* out, int w) {
  uint32_t run = 0;
  for (int x = 0; x < w; ++x) {
    run += src[x];
    out[x] = prev[x] + run;
  }
}

#if defined(DIEVENT_SIMD_SSE2)

inline void IntegralRow(const uint8_t* src, const uint32_t* prev,
                        uint32_t* out, int w) {
  const __m128i zero = _mm_setzero_si128();
  // The running row sum lives in the vector domain (broadcast across all
  // four u32 lanes): the loop-carried dependency is then one paddd per 16
  // pixels instead of an extract / scalar add / rebroadcast round trip.
  __m128i runv = _mm_setzero_si128();
  int x = 0;
  for (; x + 16 <= w; x += 16) {
    const __m128i bytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + x));
    // Inclusive prefix scan of 16 bytes at u16 granularity (max partial
    // sum 8*255 fits u16), low and high halves separately.
    __m128i lo = _mm_unpacklo_epi8(bytes, zero);
    __m128i hi = _mm_unpackhi_epi8(bytes, zero);
    lo = _mm_add_epi16(lo, _mm_slli_si128(lo, 2));
    lo = _mm_add_epi16(lo, _mm_slli_si128(lo, 4));
    lo = _mm_add_epi16(lo, _mm_slli_si128(lo, 8));
    hi = _mm_add_epi16(hi, _mm_slli_si128(hi, 2));
    hi = _mm_add_epi16(hi, _mm_slli_si128(hi, 4));
    hi = _mm_add_epi16(hi, _mm_slli_si128(hi, 8));
    // Carry the low half's total (lane 7) into every high lane.
    const __m128i lo_total = _mm_shuffle_epi32(
        _mm_shufflehi_epi16(lo, _MM_SHUFFLE(3, 3, 3, 3)),
        _MM_SHUFFLE(3, 3, 3, 3));
    hi = _mm_add_epi16(hi, lo_total);
    // Widen to u32, add the running row sum and the previous table row.
    const __m128i p0 = _mm_add_epi32(_mm_unpacklo_epi16(lo, zero), runv);
    const __m128i p1 = _mm_add_epi32(_mm_unpackhi_epi16(lo, zero), runv);
    const __m128i p2 = _mm_add_epi32(_mm_unpacklo_epi16(hi, zero), runv);
    const __m128i p3 = _mm_add_epi32(_mm_unpackhi_epi16(hi, zero), runv);
    __m128i* o = reinterpret_cast<__m128i*>(out + x);
    const __m128i* pv = reinterpret_cast<const __m128i*>(prev + x);
    _mm_storeu_si128(o + 0, _mm_add_epi32(p0, _mm_loadu_si128(pv + 0)));
    _mm_storeu_si128(o + 1, _mm_add_epi32(p1, _mm_loadu_si128(pv + 1)));
    _mm_storeu_si128(o + 2, _mm_add_epi32(p2, _mm_loadu_si128(pv + 2)));
    _mm_storeu_si128(o + 3, _mm_add_epi32(p3, _mm_loadu_si128(pv + 3)));
    // hi's lane 7 (this block's total) as a broadcast u32: replicate the
    // u16 across every lane, then shift out the duplicated high half.
    const __m128i hi_total = _mm_shuffle_epi32(
        _mm_shufflehi_epi16(hi, _MM_SHUFFLE(3, 3, 3, 3)),
        _MM_SHUFFLE(3, 3, 3, 3));
    runv = _mm_add_epi32(runv, _mm_srli_epi32(hi_total, 16));
  }
  uint32_t run = static_cast<uint32_t>(_mm_cvtsi128_si32(runv));
  for (; x < w; ++x) {
    run += src[x];
    out[x] = prev[x] + run;
  }
}

#elif defined(DIEVENT_SIMD_NEON)

inline void IntegralRow(const uint8_t* src, const uint32_t* prev,
                        uint32_t* out, int w) {
  uint32_t run = 0;
  int x = 0;
  for (; x + 8 <= w; x += 8) {
    // Inclusive prefix scan of 8 bytes at u16 granularity.
    uint16x8_t v = vmovl_u8(vld1_u8(src + x));
    v = vaddq_u16(v, vextq_u16(vdupq_n_u16(0), v, 7));
    v = vaddq_u16(v, vextq_u16(vdupq_n_u16(0), v, 6));
    v = vaddq_u16(v, vextq_u16(vdupq_n_u16(0), v, 4));
    const uint32x4_t runv = vdupq_n_u32(run);
    const uint32x4_t p0 = vaddq_u32(vmovl_u16(vget_low_u16(v)), runv);
    const uint32x4_t p1 = vaddq_u32(vmovl_u16(vget_high_u16(v)), runv);
    vst1q_u32(out + x, vaddq_u32(p0, vld1q_u32(prev + x)));
    vst1q_u32(out + x + 4, vaddq_u32(p1, vld1q_u32(prev + x + 4)));
    run += vgetq_lane_u16(v, 7);
  }
  for (; x < w; ++x) {
    run += src[x];
    out[x] = prev[x] + run;
  }
}

#else

inline void IntegralRow(const uint8_t* src, const uint32_t* prev,
                        uint32_t* out, int w) {
  IntegralRowScalar(src, prev, out, w);
}

#endif

// ---------------------------------------------------------------------------
// Detector color gates: one pass over an interleaved RGB buffer producing
// two binary masks (1 where every channel is within tolerance of the
// reference color, 0 otherwise). Byte-exact by construction.
// ---------------------------------------------------------------------------

inline void ColorMasks2Scalar(const uint8_t* rgb, size_t n_px, uint8_t ar,
                              uint8_t ag, uint8_t ab, int a_tol, uint8_t br,
                              uint8_t bg, uint8_t bb, int b_tol,
                              uint8_t* mask_a, uint8_t* mask_b) {
  auto absdiff = [](int p, int q) { return p > q ? p - q : q - p; };
  const uint8_t* px = rgb;
  for (size_t i = 0; i < n_px; ++i, px += 3) {
    const int r = px[0], g = px[1], b = px[2];
    mask_a[i] = absdiff(r, ar) <= a_tol && absdiff(g, ag) <= a_tol &&
                        absdiff(b, ab) <= a_tol
                    ? 1
                    : 0;
    mask_b[i] = absdiff(r, br) <= b_tol && absdiff(g, bg) <= b_tol &&
                        absdiff(b, bb) <= b_tol
                    ? 1
                    : 0;
  }
}

#if defined(DIEVENT_SIMD_SSE2) || defined(DIEVENT_SIMD_NEON)

namespace internal {

/// Fills pattern[0..47] with the 3-byte color repeated (period 48 = lcm
/// of the 3-byte pixel and the 16-byte vector).
inline void FillRgbPattern(uint8_t r, uint8_t g, uint8_t b,
                           uint8_t pattern[48]) {
  for (int i = 0; i < 16; ++i) {
    pattern[3 * i] = r;
    pattern[3 * i + 1] = g;
    pattern[3 * i + 2] = b;
  }
}

#if defined(DIEVENT_SIMD_SSE2)
/// Maps 12 verdict-word bits (four pixels, one verdict at every third
/// bit) to four little-endian 0/1 mask bytes. 16 KiB, rodata.
inline constexpr std::array<uint32_t, 4096> kEvery3rdBitToBytes = [] {
  std::array<uint32_t, 4096> t{};
  for (uint32_t v = 0; v < 4096; ++v) {
    t[v] = (v & 1u) | (((v >> 3) & 1u) << 8) | (((v >> 6) & 1u) << 16) |
           (((v >> 9) & 1u) << 24);
  }
  return t;
}();
#endif

}  // namespace internal

inline void ColorMasks2(const uint8_t* rgb, size_t n_px, uint8_t ar,
                        uint8_t ag, uint8_t ab, int a_tol, uint8_t br,
                        uint8_t bg, uint8_t bb, int b_tol, uint8_t* mask_a,
                        uint8_t* mask_b) {
  alignas(16) uint8_t pat_a[48], pat_b[48];
  internal::FillRgbPattern(ar, ag, ab, pat_a);
  internal::FillRgbPattern(br, bg, bb, pat_b);
  // The gates clamp tolerances into u8 range; tolerances are small
  // positive constants in practice, and a negative tolerance matches
  // nothing (handled by the scalar path below).
  if (a_tol < 0 || b_tol < 0) {
    ColorMasks2Scalar(rgb, n_px, ar, ag, ab, a_tol, br, bg, bb, b_tol,
                      mask_a, mask_b);
    return;
  }
  const uint8_t ta = a_tol > 255 ? 255 : static_cast<uint8_t>(a_tol);
  const uint8_t tb = b_tol > 255 ? 255 : static_cast<uint8_t>(b_tol);
#if defined(DIEVENT_SIMD_SSE2)
  const __m128i tol_a = _mm_set1_epi8(static_cast<char>(ta));
  const __m128i tol_b = _mm_set1_epi8(static_cast<char>(tb));
  __m128i ref_a[3], ref_b[3];
  for (int v = 0; v < 3; ++v) {
    ref_a[v] = _mm_load_si128(reinterpret_cast<const __m128i*>(pat_a) + v);
    ref_b[v] = _mm_load_si128(reinterpret_cast<const __m128i*>(pat_b) + v);
  }
  size_t i = 0;
  for (; i + 16 <= n_px; i += 16) {
    const uint8_t* base = rgb + 3 * i;
    // Compress each 16-byte verdict vector straight to 16 bits; the three
    // pieces form a 48-bit word whose bit k mirrors channel-verdict byte
    // k. The pixel combine and the spread back to bytes then run in the
    // scalar domain — cheaper than shuffling bytes across vector
    // boundaries on SSE2, and free of store-forwarding stalls.
    uint64_t wa = 0, wb = 0;
    for (int v = 0; v < 3; ++v) {
      const __m128i d =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(base) + v);
      // |d - ref| via saturating subtractions, then <= tol as
      // min(diff, tol) == diff.
      const __m128i da = _mm_or_si128(_mm_subs_epu8(d, ref_a[v]),
                                      _mm_subs_epu8(ref_a[v], d));
      const __m128i db = _mm_or_si128(_mm_subs_epu8(d, ref_b[v]),
                                      _mm_subs_epu8(ref_b[v], d));
      const __m128i oka = _mm_cmpeq_epi8(_mm_min_epu8(da, tol_a), da);
      const __m128i okb = _mm_cmpeq_epi8(_mm_min_epu8(db, tol_b), db);
      wa |= static_cast<uint64_t>(
                static_cast<uint32_t>(_mm_movemask_epi8(oka)))
            << (16 * v);
      wb |= static_cast<uint64_t>(
                static_cast<uint32_t>(_mm_movemask_epi8(okb)))
            << (16 * v);
    }
    // Pixel p passes when bits 3p, 3p+1, 3p+2 are all set — bit 3p of
    // w & (w >> 1) & (w >> 2). The table spreads each group of four such
    // bits (12 word bits = 4 pixels) to four 0/1 output bytes.
    const uint64_t va = wa & (wa >> 1) & (wa >> 2);
    const uint64_t vb = wb & (wb >> 1) & (wb >> 2);
    for (int g = 0; g < 4; ++g) {
      const uint32_t ea =
          internal::kEvery3rdBitToBytes[(va >> (12 * g)) & 0xFFF];
      const uint32_t eb =
          internal::kEvery3rdBitToBytes[(vb >> (12 * g)) & 0xFFF];
      std::memcpy(mask_a + i + 4 * g, &ea, 4);
      std::memcpy(mask_b + i + 4 * g, &eb, 4);
    }
  }
#else   // DIEVENT_SIMD_NEON
  const uint8x16_t tol_a = vdupq_n_u8(ta);
  const uint8x16_t tol_b = vdupq_n_u8(tb);
  uint8x16_t ref_a[3], ref_b[3];
  for (int v = 0; v < 3; ++v) {
    ref_a[v] = vld1q_u8(pat_a + 16 * v);
    ref_b[v] = vld1q_u8(pat_b + 16 * v);
  }
  size_t i = 0;
  const uint8x16_t zero = vdupq_n_u8(0);
  alignas(16) uint8_t c_a[48], c_b[48];
  for (; i + 16 <= n_px; i += 16) {
    const uint8_t* base = rgb + 3 * i;
    uint8x16_t oka[3], okb[3];
    for (int v = 0; v < 3; ++v) {
      const uint8x16_t d = vld1q_u8(base + 16 * v);
      oka[v] = vcleq_u8(vabdq_u8(d, ref_a[v]), tol_a);
      okb[v] = vcleq_u8(vabdq_u8(d, ref_b[v]), tol_b);
    }
    // Pixel p passes when verdict bytes 3p, 3p+1, 3p+2 are all 0xFF.
    // vext provides the shifted-by-one/-two views in registers (bytes
    // past 47 read as zero and only feed positions 46/47, which no pixel
    // start uses), so byte 3p of the stored combine holds the whole
    // pixel and the pack loop reads one byte per pixel instead of three.
    for (int v = 0; v < 3; ++v) {
      const uint8x16_t na = v < 2 ? oka[v + 1] : zero;
      const uint8x16_t nb = v < 2 ? okb[v + 1] : zero;
      vst1q_u8(c_a + 16 * v,
               vandq_u8(oka[v], vandq_u8(vextq_u8(oka[v], na, 1),
                                         vextq_u8(oka[v], na, 2))));
      vst1q_u8(c_b + 16 * v,
               vandq_u8(okb[v], vandq_u8(vextq_u8(okb[v], nb, 1),
                                         vextq_u8(okb[v], nb, 2))));
    }
    for (int p = 0; p < 16; ++p) {
      mask_a[i + p] = c_a[3 * p] & 1;
      mask_b[i + p] = c_b[3 * p] & 1;
    }
  }
#endif
  if (i < n_px) {
    ColorMasks2Scalar(rgb + 3 * i, n_px - i, ar, ag, ab, a_tol, br, bg, bb,
                      b_tol, mask_a + i, mask_b + i);
  }
}

#else

inline void ColorMasks2(const uint8_t* rgb, size_t n_px, uint8_t ar,
                        uint8_t ag, uint8_t ab, int a_tol, uint8_t br,
                        uint8_t bg, uint8_t bb, int b_tol, uint8_t* mask_a,
                        uint8_t* mask_b) {
  ColorMasks2Scalar(rgb, n_px, ar, ag, ab, a_tol, br, bg, bb, b_tol, mask_a,
                    mask_b);
}

#endif

// ---------------------------------------------------------------------------
// Occupancy map: occ[c] = 1 when any of mask[64c .. 64c+63] is nonzero
// (the last chunk may be short). The detector's component-seed scan walks
// occupied chunks only, so an almost-empty mask costs a strided OR-reduce
// instead of a full-frame pixel walk.
// ---------------------------------------------------------------------------

/// Chunk width (bytes of mask per occupancy entry).
inline constexpr int kOccChunk = 64;

/// Number of occupancy entries covering an n-byte mask.
inline size_t OccupancyEntries(size_t n) {
  return (n + kOccChunk - 1) / kOccChunk;
}

inline void OccupancyMapScalar(const uint8_t* mask, size_t n, uint8_t* occ) {
  const size_t chunks = OccupancyEntries(n);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * kOccChunk;
    const size_t end = begin + kOccChunk < n ? begin + kOccChunk : n;
    uint8_t any = 0;
    for (size_t i = begin; i < end; ++i) any |= mask[i];
    occ[c] = any ? 1 : 0;
  }
}

#if defined(DIEVENT_SIMD_SSE2)

inline void OccupancyMap(const uint8_t* mask, size_t n, uint8_t* occ) {
  size_t c = 0;
  const size_t full = n / kOccChunk;
  for (; c < full; ++c) {
    const __m128i* p =
        reinterpret_cast<const __m128i*>(mask + c * kOccChunk);
    const __m128i any = _mm_or_si128(
        _mm_or_si128(_mm_loadu_si128(p + 0), _mm_loadu_si128(p + 1)),
        _mm_or_si128(_mm_loadu_si128(p + 2), _mm_loadu_si128(p + 3)));
    occ[c] = _mm_movemask_epi8(
                 _mm_cmpeq_epi8(any, _mm_setzero_si128())) != 0xFFFF
                 ? 1
                 : 0;
  }
  if (c * kOccChunk < n) {
    OccupancyMapScalar(mask + c * kOccChunk, n - c * kOccChunk, occ + c);
  }
}

#elif defined(DIEVENT_SIMD_NEON)

inline void OccupancyMap(const uint8_t* mask, size_t n, uint8_t* occ) {
  size_t c = 0;
  const size_t full = n / kOccChunk;
  for (; c < full; ++c) {
    const uint8_t* p = mask + c * kOccChunk;
    const uint8x16_t any =
        vorrq_u8(vorrq_u8(vld1q_u8(p), vld1q_u8(p + 16)),
                 vorrq_u8(vld1q_u8(p + 32), vld1q_u8(p + 48)));
    // OR-reduce the vector to one byte pair via max.
    const uint8x8_t fold = vorr_u8(vget_low_u8(any), vget_high_u8(any));
    uint8_t bytes[8];
    vst1_u8(bytes, fold);
    uint8_t acc = 0;
    for (int i = 0; i < 8; ++i) acc |= bytes[i];
    occ[c] = acc ? 1 : 0;
  }
  if (c * kOccChunk < n) {
    OccupancyMapScalar(mask + c * kOccChunk, n - c * kOccChunk, occ + c);
  }
}

#else

inline void OccupancyMap(const uint8_t* mask, size_t n, uint8_t* occ) {
  OccupancyMapScalar(mask, n, occ);
}

#endif

// ---------------------------------------------------------------------------
// Runtime self-check: a compact probe of every kernel against its scalar
// reference. Benchmarks call this before trusting speedups; tests cover
// the same contract far more thoroughly.
// ---------------------------------------------------------------------------

inline bool SelfCheck() {
  // Deterministic pseudo-random fill (xorshift; no <random>, no seed
  // plumbing needed for a fixed probe).
  uint32_t s = 0x9E3779B9u;
  auto next = [&s]() {
    s ^= s << 13;
    s ^= s >> 17;
    s ^= s << 5;
    return s;
  };

  {  // MatVec: 37 inputs (tail 1), 11 outputs (row tail 3).
    const int in = 37, out_n = 11;
    float w[37 * 11], bias[11], x[37], y_ref[11], y_simd[11];
    for (auto& v : w) v = static_cast<float>(static_cast<int>(next() % 17) - 8) * 0.25f;
    for (auto& v : bias) v = static_cast<float>(static_cast<int>(next() % 9) - 4) * 0.5f;
    for (auto& v : x) v = static_cast<float>(static_cast<int>(next() % 13) - 6) * 0.125f;
    MatVecScalar(w, bias, x, in, out_n, y_ref);
    MatVec(w, bias, x, in, out_n, y_simd);
    if (std::memcmp(y_ref, y_simd, sizeof(y_ref)) != 0) return false;
  }
  {  // LBP codes on a 29x7 image (vector body + scalar borders/tail).
    const int w = 29, h = 7;
    uint8_t img[29 * 7], ref[29 * 7], got[29 * 7];
    for (auto& v : img) v = static_cast<uint8_t>(next());
    LbpCodesScalar(img, w, h, ref);
    LbpCodes(img, w, h, got);
    if (std::memcmp(ref, got, sizeof(ref)) != 0) return false;
  }
  {  // Integral row of width 37 (one full vector + tail).
    const int w = 37;
    uint8_t src[37];
    uint32_t prev[37], ref[37], got[37];
    for (auto& v : src) v = static_cast<uint8_t>(next());
    for (auto& v : prev) v = next() % 100000;
    IntegralRowScalar(src, prev, ref, w);
    IntegralRow(src, prev, got, w);
    if (std::memcmp(ref, got, sizeof(ref)) != 0) return false;
  }
  {  // Color masks over 53 pixels (three vectors + tail).
    const size_t n = 53;
    uint8_t rgb[53 * 3], ra[53], rb[53], ga[53], gb[53];
    for (auto& v : rgb) v = static_cast<uint8_t>(next() % 64 + 96);
    ColorMasks2Scalar(rgb, n, 120, 110, 100, 20, 60, 50, 40, 26, ra, rb);
    ColorMasks2(rgb, n, 120, 110, 100, 20, 60, 50, 40, 26, ga, gb);
    if (std::memcmp(ra, ga, n) != 0 || std::memcmp(rb, gb, n) != 0) {
      return false;
    }
  }
  {  // Occupancy over 150 bytes (two full chunks + a short one).
    uint8_t mask[150] = {};
    mask[70] = 1;
    mask[149] = 1;
    uint8_t ref[3], got[3];
    OccupancyMapScalar(mask, sizeof(mask), ref);
    OccupancyMap(mask, sizeof(mask), got);
    if (std::memcmp(ref, got, sizeof(ref)) != 0) return false;
  }
  return true;
}

}  // namespace simd
}  // namespace dievent

#endif  // DIEVENT_COMMON_SIMD_H_
