/// \file thread_annotations.h
/// Clang Thread Safety Analysis annotations and annotated locking shims.
///
/// Every locking invariant in the concurrent acquisition/executor stack
/// (which mutex guards which field, which functions must hold which lock)
/// is declared with these macros so that `-Wthread-safety
/// -Werror=thread-safety` rejects an unguarded access at *compile time* —
/// on every build, not only when a TSan run happens to hit the race.
/// Under non-Clang compilers the macros expand to nothing and the shims
/// are zero-cost wrappers over the std primitives.
///
/// Conventions (enforced by tools/dievent_lint.py):
///  - every `Mutex`/`std::mutex` member has at least one field
///    `GUARDED_BY` it, or carries an explicit `// lint: unguarded` waiver
///    naming the external synchronization that replaces the lock;
///  - lock-based classes use the annotated `Mutex`/`MutexLock`/`CondVar`
///    shims below instead of raw `std::mutex`/`std::unique_lock`, because
///    the std types carry no capability annotations;
///  - condition waits are written as explicit `while (!cond) cv.Wait(mu)`
///    loops. Predicate-taking waits hide the condition inside a lambda,
///    which Clang analyzes as a separate function with an empty capability
///    set, defeating the check.

#ifndef DIEVENT_COMMON_THREAD_ANNOTATIONS_H_
#define DIEVENT_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/lock_ranks.h"

#if defined(__clang__) && !defined(SWIG)
#define DIEVENT_TS_ATTRIBUTE_(x) __attribute__((x))
#else
#define DIEVENT_TS_ATTRIBUTE_(x)  // no-op outside Clang
#endif

/// Declares a type to be a lockable capability ("mutex" role).
#define CAPABILITY(x) DIEVENT_TS_ATTRIBUTE_(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define SCOPED_CAPABILITY DIEVENT_TS_ATTRIBUTE_(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define GUARDED_BY(x) DIEVENT_TS_ATTRIBUTE_(guarded_by(x))

/// Pointer annotation: the pointed-to data requires holding `x`.
#define PT_GUARDED_BY(x) DIEVENT_TS_ATTRIBUTE_(pt_guarded_by(x))

/// Function annotation: caller must hold the given capabilities.
#define REQUIRES(...) \
  DIEVENT_TS_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DIEVENT_TS_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// Function annotation: acquires the capabilities (not already held).
#define ACQUIRE(...) DIEVENT_TS_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  DIEVENT_TS_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

/// Function annotation: releases the capabilities (currently held).
#define RELEASE(...) DIEVENT_TS_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  DIEVENT_TS_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

/// Function annotation: attempts to acquire; `b` is the success value.
#define TRY_ACQUIRE(...) \
  DIEVENT_TS_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// Function annotation: caller must NOT hold the given capabilities
/// (deadlock prevention for self-locking functions).
#define EXCLUDES(...) DIEVENT_TS_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Function annotation: asserts (at runtime, by contract) that the
/// capability is held, teaching the analysis about external invariants.
#define ASSERT_CAPABILITY(x) DIEVENT_TS_ATTRIBUTE_(assert_capability(x))

/// Function annotation: returns a reference to the given capability.
#define RETURN_CAPABILITY(x) DIEVENT_TS_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Prefer a
/// `// lint: unguarded` waiver plus a comment naming the real guarantee.
#define NO_THREAD_SAFETY_ANALYSIS \
  DIEVENT_TS_ATTRIBUTE_(no_thread_safety_analysis)

/// Statement form of ASSERT_CAPABILITY for annotated Mutex members:
/// `TS_ASSERT_HELD(mutex_);` documents (and, under Clang, informs the
/// analysis) that the current scope holds `mutex_` through a path the
/// analysis cannot see.
#define TS_ASSERT_HELD(mu) ((mu).AssertHeld())

namespace dievent {

class CondVar;

/// Annotated exclusive mutex. A thin wrapper over std::mutex that carries
/// the `capability` attribute, so GUARDED_BY/REQUIRES declarations against
/// it are compiler-checked under Clang.
class CAPABILITY("mutex") Mutex {
 public:
  /// Unranked: invisible to the lock-rank tracker. Reserved for
  /// test-local and scratch mutexes; every named mutex in the tree takes
  /// the ranked constructor (enforced by tools/lockrank_check.py).
  Mutex() = default;
  /// Ranked: participates in the lock-rank discipline (lock_ranks.h).
  explicit Mutex(LockRank rank) { SetRank(rank); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    NoteAcquire();  // before the lock: a violation aborts, not deadlocks
    mu_.lock();
  }
  void Unlock() RELEASE() {
    NoteRelease();
    mu_.unlock();
  }
  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    NoteAcquireTry();
    return true;
  }

  /// Declares to the analysis that this mutex is held. The contract is the
  /// caller's to uphold; use only where the holding path is invisible to
  /// the analysis (e.g. a lock taken through a std primitive).
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;  // lint: unguarded (the raw mutex this shim wraps)

#if DIEVENT_LOCK_RANKS
  void SetRank(LockRank rank) { rank_ = rank; }
  void NoteAcquire() const { lockrank::NoteAcquire(rank_, this); }
  void NoteAcquireTry() const { lockrank::NoteAcquireTry(rank_, this); }
  void NoteRelease() const { lockrank::NoteRelease(rank_, this); }
  void NoteWait() const { lockrank::NoteWait(rank_, this); }
  LockRank rank_ = LockRank::kUnranked;
#else
  void SetRank(LockRank) {}
  void NoteAcquire() const {}
  void NoteAcquireTry() const {}
  void NoteRelease() const {}
  void NoteWait() const {}
#endif
};

/// RAII lock over an annotated Mutex (the std::lock_guard counterpart).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to the annotated Mutex. Waits REQUIRE the
/// mutex: the analysis treats the wait as held throughout (it cannot model
/// the internal release/reacquire, which is exactly the guarantee the
/// caller observes — the lock is held before and after).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    mu.NoteWait();  // mu must be the innermost held lock (lock_ranks.h)
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  template <class Rep, class Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& d)
      REQUIRES(mu) {
    mu.NoteWait();
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status st = cv_.wait_for(lock, d);
    lock.release();
    return st;
  }

  template <class ClockT, class Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<ClockT, Duration>& tp)
      REQUIRES(mu) {
    mu.NoteWait();
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status st = cv_.wait_until(lock, tp);
    lock.release();
    return st;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dievent

#endif  // DIEVENT_COMMON_THREAD_ANNOTATIONS_H_
