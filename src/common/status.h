/// \file status.h
/// Error-handling primitives used across all DiEvent libraries.
///
/// DiEvent does not throw exceptions across public API boundaries. Fallible
/// operations return a Status (when there is no payload) or a Result<T>
/// (Status plus a value). The style follows the conventions used by
/// Arrow/RocksDB-era database codebases.

#ifndef DIEVENT_COMMON_STATUS_H_
#define DIEVENT_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dievent {

/// Machine-readable classification of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kCorruption = 7,
  kUnimplemented = 8,
  kInternal = 9,
  kDeadlineExceeded = 10,
  kCancelled = 11,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus a context message.
///
/// Ok statuses are cheap to copy (no allocation). Construct errors through the
/// named factories, e.g. `Status::InvalidArgument("fps must be positive")`.
///
/// The class is [[nodiscard]]: any call returning a Status by value must be
/// consumed. To drop an error deliberately, log it and say why:
///   Status s = DoThing();
///   if (!s.ok()) DIEVENT_LOG(Warning) << "best-effort: " << s;
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// A cooperative cancellation request was observed (not a failure of
  /// the work itself): the caller decides whether to retry or resume.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prefixes the message with additional context, returning a new status.
  /// No-op for OK statuses.
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status to the caller.
#define DIEVENT_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::dievent::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (false)

}  // namespace dievent

#endif  // DIEVENT_COMMON_STATUS_H_
