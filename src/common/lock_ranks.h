/// \file lock_ranks.h
/// The repo-wide lock-rank table and the debug-build lock-order tracker.
///
/// Every named mutex in the tree is assigned a `LockRank`. The discipline:
/// a thread may only acquire a mutex whose rank is *strictly greater* than
/// the rank of every ranked mutex it already holds. Because ranks form a
/// total order, any program that obeys the discipline is deadlock-free by
/// construction (a wait-for cycle would need a rank-decreasing edge).
///
/// The table is checked twice:
///  - statically, by `tools/lockrank_check.py`, which parses this enum,
///    matches it against `Mutex` declarations and acquisition sites, and
///    fails on cycles / unranked mutexes / rank-decreasing edges;
///  - dynamically, by the `lockrank` tracker below, which keeps a
///    per-thread stack of held ranks and aborts on the first out-of-order
///    acquisition. Enabled when `DIEVENT_LOCK_RANKS` is 1 (the CMake
///    option of the same name, default ON for test builds); compiles to
///    nothing when 0, so release/perf builds pay zero cost.
///
/// Picking a rank for a new mutex (see DESIGN.md section 14): find every
/// lock that can be held when yours is acquired (callers, clock-mediated
/// waits) and every lock your critical sections acquire (callees, logging),
/// then slot the new rank strictly between them. Ranks are spaced by 10 so
/// a new lock usually fits without renumbering. The `VirtualClock` waiter
/// protocol (`Wait`/`WaitUntil`/`NotifyAll(mu, cv, ...)` lock the clock's
/// own mutex while `mu` is held) means every mutex ever passed to the
/// clock must rank *below* `kClockWaiters`; the serialized log sink is
/// acquired by `DIEVENT_LOG`/`DIEVENT_CHECK` from arbitrary critical
/// sections, so it ranks above everything.

#ifndef DIEVENT_COMMON_LOCK_RANKS_H_
#define DIEVENT_COMMON_LOCK_RANKS_H_

#include <cstdio>
#include <cstdlib>

/// Tracker switch. The build system defines DIEVENT_LOCK_RANKS=0/1
/// explicitly (CMake option DIEVENT_LOCK_RANKS, default ON). When the
/// macro is absent (out-of-tree compile of a single header), fall back to
/// "on unless NDEBUG".
#if !defined(DIEVENT_LOCK_RANKS)
#if defined(NDEBUG)
#define DIEVENT_LOCK_RANKS 0
#else
#define DIEVENT_LOCK_RANKS 1
#endif
#endif

namespace dievent {

/// One rank per named mutex in the tree, lowest-first in acquisition
/// order. tools/lockrank_check.py parses this enum verbatim: keep the
/// `kName = value,` one-per-line format and the strictly-increasing
/// values.
enum class LockRank : int {
  /// Not part of the discipline. Test-local and scratch mutexes default
  /// here; the tracker ignores them except that acquiring one while a
  /// *ranked* mutex is held is fatal (an invisible lock under a ranked
  /// critical section could hide an ordering cycle).
  kUnranked = 0,

  /// TaskGroup::group_mutex_ — per-group completion barrier; never held
  /// across a pool submit (Submit closes its critical section first).
  kTaskGroup = 10,
  /// ThreadPool::mutex_ — pool queue; tasks run with it released.
  kThreadPool = 20,
  /// EventScheduler::mu_ — fleet state; dispatch pushes to the ready
  /// queue (kReadyQueue) and parks on the clock (kClockWaiters) under it.
  kFleetScheduler = 30,
  /// MpmcQueue::mutex_ — the fleet ready queue; parks on the clock.
  kReadyQueue = 40,
  /// EventCorpus::mu_ — shard manifest + repository cache. Never held
  /// across pool submits, store I/O, or TaskGroup::Wait; fleet job
  /// completion registers shards with no scheduler lock held, so the
  /// rank only has to sit above the locks held when workers touch the
  /// cache (none) and below nothing it acquires (it logs only outside
  /// its critical sections).
  kCorpus = 45,
  /// MultiCameraSource::PumpState::mutex — prefetch pump handshake.
  kPrefetchPump = 50,
  /// AcquisitionSupervisor::Reader::mutex — per-reader request/response
  /// handshake; interrupts a wedged source (kSourceInterrupt) under it.
  kAcqReader = 60,
  /// FaultyVideoSource::stall_mutex_ — cancellable-stall handshake,
  /// acquired by Interrupt() while a reader lock is held.
  kSourceInterrupt = 70,
  /// AcquisitionSupervisor::wait_mutex_ — response notify fence.
  kAcqWaitFence = 80,
  /// SimClock::sleep_mutex_ — parks SleepUntil callers; the self-call
  /// into WaitUntil then locks the clock's own mutex.
  kClockSleep = 90,
  /// SimClock::mu_ — the clock's waiter registry. Every mutex handed to
  /// the VirtualClock waiter protocol must rank below this.
  kClockWaiters = 100,
  /// LogSink::mutex_ — serialized log sink; DIEVENT_LOG/DIEVENT_CHECK
  /// acquire it from arbitrary critical sections, so it is the top rank.
  kLogSink = 110,
};

/// Human-readable rank name for tracker diagnostics.
inline const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked: return "kUnranked";
    case LockRank::kTaskGroup: return "kTaskGroup";
    case LockRank::kThreadPool: return "kThreadPool";
    case LockRank::kFleetScheduler: return "kFleetScheduler";
    case LockRank::kReadyQueue: return "kReadyQueue";
    case LockRank::kCorpus: return "kCorpus";
    case LockRank::kPrefetchPump: return "kPrefetchPump";
    case LockRank::kAcqReader: return "kAcqReader";
    case LockRank::kSourceInterrupt: return "kSourceInterrupt";
    case LockRank::kAcqWaitFence: return "kAcqWaitFence";
    case LockRank::kClockSleep: return "kClockSleep";
    case LockRank::kClockWaiters: return "kClockWaiters";
    case LockRank::kLogSink: return "kLogSink";
  }
  return "<invalid>";
}

#if DIEVENT_LOCK_RANKS

namespace lockrank {

/// Deepest legal ranked-lock nesting. The real tree nests at most four
/// deep (scheduler -> queue -> clock -> sink); 16 leaves headroom and
/// turns a runaway into a diagnosable abort instead of silent corruption.
inline constexpr int kMaxHeldLocks = 16;

struct HeldLock {
  LockRank rank;
  const void* mu;
};

struct ThreadLockStack {
  HeldLock held[kMaxHeldLocks];
  int depth = 0;
};

inline ThreadLockStack& Stack() {
  thread_local ThreadLockStack stack;
  return stack;
}

/// Fatal diagnostic. Deliberately fprintf+abort rather than DIEVENT_LOG:
/// the log sink itself is a ranked mutex, and a tracker failure may fire
/// while it is held. abort() also makes violations EXPECT_DEATH-testable.
[[noreturn]] inline void Fail(const char* what, LockRank acquiring,
                              LockRank top) {
  std::fprintf(stderr,
               "lockrank: fatal: %s (acquiring %s while innermost held "
               "rank is %s)\n",
               what, LockRankName(acquiring), LockRankName(top));
  std::fflush(stderr);
  std::abort();
}

/// Checks rank order, then records the acquisition. Called *before* the
/// underlying lock is taken so a violation aborts instead of deadlocking.
inline void NoteAcquire(LockRank rank, const void* mu) {
  ThreadLockStack& s = Stack();
  if (rank == LockRank::kUnranked) {
    if (s.depth > 0) {
      Fail("unranked mutex acquired while a ranked mutex is held "
           "(give it a rank in src/common/lock_ranks.h)",
           rank, s.held[s.depth - 1].rank);
    }
    return;  // unranked mutexes are invisible to the tracker
  }
  if (s.depth > 0) {
    const HeldLock& top = s.held[s.depth - 1];
    if (mu == top.mu) {
      Fail("recursive acquisition (self-deadlock)", rank, top.rank);
    }
    if (static_cast<int>(rank) <= static_cast<int>(top.rank)) {
      Fail("rank-decreasing acquisition (lock-order violation)", rank,
           top.rank);
    }
  }
  if (s.depth >= kMaxHeldLocks) {
    Fail("ranked-lock nesting exceeds kMaxHeldLocks", rank,
         s.held[s.depth - 1].rank);
  }
  s.held[s.depth++] = HeldLock{rank, mu};
}

/// Records a successful TryLock. No order check: a try-acquire cannot
/// deadlock (it fails instead of blocking), and opportunistic high-to-low
/// try patterns are legitimate. The lock still joins the held stack so
/// everything acquired *under* it is order-checked.
inline void NoteAcquireTry(LockRank rank, const void* mu) {
  ThreadLockStack& s = Stack();
  if (rank == LockRank::kUnranked) return;
  if (s.depth >= kMaxHeldLocks) {
    Fail("ranked-lock nesting exceeds kMaxHeldLocks", rank,
         s.held[s.depth - 1].rank);
  }
  s.held[s.depth++] = HeldLock{rank, mu};
}

/// Removes a held entry (innermost-first search, so the common LIFO
/// release is O(1) and out-of-order releases such as SimClock's
/// DeliverWakes fence stay legal).
inline void NoteRelease(LockRank rank, const void* mu) {
  if (rank == LockRank::kUnranked) return;
  ThreadLockStack& s = Stack();
  for (int i = s.depth - 1; i >= 0; --i) {
    if (s.held[i].mu != mu) continue;
    for (int j = i; j + 1 < s.depth; ++j) s.held[j] = s.held[j + 1];
    --s.depth;
    return;
  }
  Fail("release of a ranked mutex that is not held", rank, rank);
}

/// Asserts the condition-wait protocol: the waited mutex must be the
/// innermost held lock. CondVar::Wait releases and reacquires `mu`
/// internally; if another ranked lock were nested inside, the reacquire
/// would happen *under* it in wait-for order — a hidden rank decrease.
/// The rank stays on the stack across the wait: that is exactly the
/// guarantee the caller observes (held before, held after).
inline void NoteWait(LockRank rank, const void* mu) {
  ThreadLockStack& s = Stack();
  if (rank == LockRank::kUnranked) {
    if (s.depth > 0) {
      Fail("condition wait on an unranked mutex while ranked mutexes "
           "are held",
           rank, s.held[s.depth - 1].rank);
    }
    return;
  }
  if (s.depth == 0 || s.held[s.depth - 1].mu != mu) {
    Fail("condition wait on a mutex that is not the innermost held lock",
         rank, s.depth > 0 ? s.held[s.depth - 1].rank : LockRank::kUnranked);
  }
}

}  // namespace lockrank

#endif  // DIEVENT_LOCK_RANKS

}  // namespace dievent

#endif  // DIEVENT_COMMON_LOCK_RANKS_H_
