#include "common/backoff.h"

#include <algorithm>
#include <cmath>

namespace dievent {

namespace {

/// splitmix64 finalizer (same construction as the fault schedules).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double HashUniform01(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t h = Mix(a ^ Mix(b ^ Mix(c ^ 0xb0ffull)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

double BackoffPolicy::Delay(int attempt, uint64_t stream, uint64_t op) const {
  if (attempt < 1 || base_s <= 0.0) return 0.0;
  double d = base_s * std::pow(multiplier, attempt - 1);
  d = std::min(d, max_s);
  if (jitter > 0.0) {
    const double u =
        HashUniform01(seed, stream, op * 1315423911ull + attempt);
    d *= 1.0 + jitter * (2.0 * u - 1.0);
  }
  return d;
}

}  // namespace dievent
