/// \file thread_pool.h
/// A small fixed-size worker pool for the pipeline's per-camera
/// parallelism. The paper's acquisition platform produces one stream per
/// camera; the per-frame vision work on those streams is embarrassingly
/// parallel.

#ifndef DIEVENT_COMMON_THREAD_POOL_H_
#define DIEVENT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dievent {

/// Fixed worker pool. Tasks are void() callables; exceptions escaping a
/// task terminate (library code reports errors via Status, never throws).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; values < 1 are clamped to 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(0) .. fn(count-1) across the pool and blocks until all
  /// complete. `fn` must be safe to invoke concurrently.
  void ParallelFor(int count, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> tasks_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dievent

#endif  // DIEVENT_COMMON_THREAD_POOL_H_
