/// \file thread_pool.h
/// A small fixed-size worker pool for the pipeline's per-camera
/// parallelism. The paper's acquisition platform produces one stream per
/// camera; the per-frame vision work on those streams is embarrassingly
/// parallel.

#ifndef DIEVENT_COMMON_THREAD_POOL_H_
#define DIEVENT_COMMON_THREAD_POOL_H_

#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace dievent {

/// Fixed worker pool. Tasks are void() callables; exceptions escaping a
/// task terminate (library code reports errors via Status, never throws).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; values < 1 are clamped to 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task.
  void Submit(std::function<void()> task) EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished.
  void Wait() EXCLUDES(mutex_);

  /// Runs fn(0) .. fn(count-1) across the pool and blocks until all
  /// complete. `fn` must be safe to invoke concurrently. Multiple callers
  /// may issue ParallelFor batches on the same pool concurrently; each
  /// call blocks only on its own iterations.
  void ParallelFor(int count, const std::function<void(int)>& fn);

 private:
  void WorkerLoop() EXCLUDES(mutex_);

  Mutex mutex_{LockRank::kThreadPool};
  CondVar task_ready_;
  CondVar all_done_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mutex_);
  int in_flight_ GUARDED_BY(mutex_) = 0;
  bool shutting_down_ GUARDED_BY(mutex_) = false;
  /// Written only by the constructor, before any worker exists; read-only
  /// afterwards, so no guard is needed.
  std::vector<std::thread> workers_;
};

/// Tracks completion of one batch of tasks submitted through a shared
/// pool. ThreadPool::Wait blocks on *everything* in flight; the pipelined
/// executor keeps several frames of per-camera tasks in flight at once
/// and must wait for exactly one frame's batch, so each frame gets its
/// own group. The group must outlive its tasks: the destructor waits.
/// Never call Wait from inside a pool worker — the pool has no work
/// stealing, so a worker blocked on its own pool deadlocks.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues one task on the pool and counts it against this group.
  void Submit(std::function<void()> task) EXCLUDES(group_mutex_);

  /// Blocks until every task submitted through *this group* has finished.
  /// Tasks other callers submitted to the pool are not waited on.
  void Wait() EXCLUDES(group_mutex_);

 private:
  ThreadPool* pool_;
  // Named group_mutex_ (not mutex_) so the per-file lock-rank tables in
  // tools/lockrank_check.py never see two ranks for one member name.
  Mutex group_mutex_{LockRank::kTaskGroup};
  CondVar done_;
  int pending_ GUARDED_BY(group_mutex_) = 0;
};

}  // namespace dievent

#endif  // DIEVENT_COMMON_THREAD_POOL_H_
