#include "common/clock.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace dievent {

RealClock* RealClock::Get() {
  static RealClock* const kInstance = new RealClock;
  return kInstance;
}

void RealClock::SleepUntil(TimePoint tp) { std::this_thread::sleep_until(tp); }

SimClock::SimClock(Options options) : auto_advance_(options.auto_advance) {
  MutexLock lock(mu_);
  now_ = TimePoint{} + FromSeconds(options.start_s);
}

SimClock::TimePoint SimClock::Now() {
  MutexLock lock(mu_);
  return now_;
}

std::vector<SimClock::WakeTarget> SimClock::AdvanceLocked(TimePoint target) {
  std::vector<WakeTarget> due;
  if (target <= now_) return due;
  now_ = target;
  for (Waiter* w : waiters_) {
    if (w->deadline <= now_ && !w->woken) {
      // The wake re-credits the token the waiter released at registration:
      // from this instant the woken thread counts as runnable work, so no
      // further step can slip in before it resumes and deregisters.
      w->woken = true;
      ++pending_work_;
      due.push_back(WakeTarget{w->mu, w->cv, w->deadline});
    }
  }
  return due;
}

std::vector<SimClock::WakeTarget> SimClock::MaybeAutoAdvanceLocked() {
  if (!auto_advance_ || pending_work_ > 0) return {};
  TimePoint target = TimePoint::max();
  for (const Waiter* w : waiters_) {
    if (w->deadline > now_) target = std::min(target, w->deadline);
  }
  if (target == TimePoint::max()) return {};  // no timed waiter ahead of now
  return AdvanceLocked(target);
}

std::vector<SimClock::WakeTarget> SimClock::DeregisterLocked(Waiter* w) {
  waiters_.erase(std::find(waiters_.begin(), waiters_.end(), w));
  if (!w->woken) ++pending_work_;  // resuming thread is work again
  changed_.NotifyAll();
  return MaybeAutoAdvanceLocked();
}

void SimClock::WakeTargets(std::vector<WakeTarget> targets) {
  std::sort(targets.begin(), targets.end(),
            [](const WakeTarget& a, const WakeTarget& b) {
              return a.deadline < b.deadline;
            });
  for (const WakeTarget& t : targets) {
    // Empty critical section: a waiter that has registered but not yet
    // blocked either still holds its mutex (so acquiring it here orders
    // the notify after the wait begins) or has released it to deliver
    // wakes of its own and will re-check its woken flag before blocking.
    // Either way the notify is never lost. Callers hold no waiter mutex
    // (see DeliverWakes), so taking each target's in turn cannot form a
    // lock cycle.
    t.mu->Lock();
    t.mu->Unlock();
    t.cv->NotifyAll();
  }
}

void SimClock::DeliverWakes(Mutex& mu, std::vector<WakeTarget> targets) {
  if (targets.empty()) return;
  // Fencing another waiter's mutex while holding our own would invert
  // lock order against that waiter doing the same toward us; release
  // `mu` for the delivery. Wakes aimed at *us* in the window are not
  // lost: they set `woken`, which callers re-check before blocking.
  mu.Unlock();
  WakeTargets(std::move(targets));
  mu.Lock();
}

std::cv_status SimClock::WaitUntil(Mutex& mu, CondVar& cv, TimePoint tp) {
  Waiter w{&mu, &cv, tp};
  std::vector<WakeTarget> targets;
  {
    MutexLock lock(mu_);
    if (now_ >= tp) return std::cv_status::timeout;
    waiters_.push_back(&w);
    --pending_work_;
    changed_.NotifyAll();
    targets = MaybeAutoAdvanceLocked();
  }
  DeliverWakes(mu, std::move(targets));

  // Block unless a wake already claimed this waiter: our own registration
  // may have made the system quiescent and stepped time to our deadline,
  // or a notify may have landed while DeliverWakes had `mu` released.
  bool wake_pending;
  {
    MutexLock lock(mu_);
    wake_pending = w.woken;
  }
  if (!wake_pending) {
    // Single wait: spurious wakeups surface to the caller exactly as with
    // a raw condition variable; callers keep their predicate loops.
    cv.Wait(mu);
  }

  std::cv_status status;
  {
    MutexLock lock(mu_);
    status = now_ >= tp ? std::cv_status::timeout : std::cv_status::no_timeout;
    targets = DeregisterLocked(&w);
  }
  DeliverWakes(mu, std::move(targets));
  return status;
}

void SimClock::Wait(Mutex& mu, CondVar& cv) {
  Waiter w{&mu, &cv, TimePoint::max()};
  std::vector<WakeTarget> targets;
  {
    MutexLock lock(mu_);
    waiters_.push_back(&w);
    --pending_work_;
    changed_.NotifyAll();
    targets = MaybeAutoAdvanceLocked();  // never wakes us: max is never due
  }
  DeliverWakes(mu, std::move(targets));
  bool wake_pending;
  {
    MutexLock lock(mu_);
    // A NotifyAll may have landed while DeliverWakes had `mu` released.
    wake_pending = w.woken;
  }
  if (!wake_pending) cv.Wait(mu);
  {
    MutexLock lock(mu_);
    targets = DeregisterLocked(&w);
  }
  DeliverWakes(mu, std::move(targets));
}

void SimClock::NotifyAll([[maybe_unused]] Mutex& mu, CondVar& cv) {
  {
    MutexLock lock(mu_);
    for (Waiter* w : waiters_) {
      if (w->cv == &cv && !w->woken) {
        // Same re-credit as a deadline wake: the notified thread is
        // runnable work from this instant, which pins simulated time
        // until it deregisters — a concurrent token release can no
        // longer step to this waiter's deadline "behind" the notify.
        w->woken = true;
        ++pending_work_;
      }
    }
  }
  // Holding `mu` (required) is the lost-wakeup fence: a thread between
  // its predicate check and its block still holds `mu`, so this notify
  // cannot land in that window.
  cv.NotifyAll();
}

void SimClock::SleepUntil(TimePoint tp) {
  MutexLock lock(sleep_mutex_);
  while (WaitUntil(sleep_mutex_, sleep_cv_, tp) != std::cv_status::timeout) {
  }
}

void SimClock::AddPendingWork(int delta) {
  std::vector<WakeTarget> targets;
  {
    MutexLock lock(mu_);
    pending_work_ += delta;
    if (delta < 0) targets = MaybeAutoAdvanceLocked();
  }
  // Contract: negative deltas must be posted while holding no waiter's
  // mutex — the wake fence acquires those mutexes.
  WakeTargets(std::move(targets));
}

void SimClock::AdvanceTo(TimePoint tp) {
  std::vector<WakeTarget> targets;
  {
    MutexLock lock(mu_);
    targets = AdvanceLocked(tp);
  }
  WakeTargets(std::move(targets));
}

int SimClock::NumWaiters() const {
  MutexLock lock(mu_);
  return static_cast<int>(waiters_.size());
}

void SimClock::AwaitWaiters(int n) {
  MutexLock lock(mu_);
  while (static_cast<int>(waiters_.size()) < n) changed_.Wait(mu_);
}

int SimClock::pending_work() const {
  MutexLock lock(mu_);
  return pending_work_;
}

}  // namespace dievent
