#include "common/clock.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace dievent {

RealClock* RealClock::Get() {
  static RealClock* const kInstance = new RealClock;
  return kInstance;
}

void RealClock::SleepUntil(TimePoint tp) { std::this_thread::sleep_until(tp); }

SimClock::SimClock(Options options) : auto_advance_(options.auto_advance) {
  MutexLock lock(mu_);
  now_ = TimePoint{} + FromSeconds(options.start_s);
}

SimClock::TimePoint SimClock::Now() {
  MutexLock lock(mu_);
  return now_;
}

std::vector<SimClock::WakeTarget> SimClock::AdvanceLocked(TimePoint target) {
  std::vector<WakeTarget> due;
  if (target <= now_) return due;
  now_ = target;
  for (Waiter* w : waiters_) {
    if (w->deadline <= now_ && !w->woken) {
      // The wake re-credits the token the waiter released at registration:
      // from this instant the woken thread counts as runnable work, so no
      // further step can slip in before it resumes and deregisters.
      w->woken = true;
      ++pending_work_;
      due.push_back(WakeTarget{w->mu, w->cv, w->deadline});
    }
  }
  return due;
}

std::vector<SimClock::WakeTarget> SimClock::MaybeAutoAdvanceLocked() {
  if (!auto_advance_ || pending_work_ > 0) return {};
  TimePoint target = TimePoint::max();
  for (const Waiter* w : waiters_) {
    if (w->deadline > now_) target = std::min(target, w->deadline);
  }
  if (target == TimePoint::max()) return {};  // no timed waiter ahead of now
  return AdvanceLocked(target);
}

std::vector<SimClock::WakeTarget> SimClock::DeregisterLocked(Waiter* w) {
  waiters_.erase(std::find(waiters_.begin(), waiters_.end(), w));
  if (!w->woken) ++pending_work_;  // resuming thread is work again
  changed_.NotifyAll();
  return MaybeAutoAdvanceLocked();
}

void SimClock::WakeTargets(std::vector<WakeTarget> targets, const Mutex* held) {
  std::sort(targets.begin(), targets.end(),
            [](const WakeTarget& a, const WakeTarget& b) {
              return a.deadline < b.deadline;
            });
  for (const WakeTarget& t : targets) {
    if (t.mu != held) {
      // Empty critical section: a waiter that has registered but not yet
      // blocked still holds its mutex, so acquiring it here orders the
      // notify after the wait begins — no lost wakeup. Waiters on `held`
      // are already blocked (registration requires the mutex this caller
      // still holds), so the fence is skipped to avoid self-deadlock.
      t.mu->Lock();
      t.mu->Unlock();
    }
    t.cv->NotifyAll();
  }
}

std::cv_status SimClock::WaitUntil(Mutex& mu, CondVar& cv, TimePoint tp) {
  Waiter w{&mu, &cv, tp};
  std::vector<WakeTarget> targets;
  bool due_at_registration = false;
  {
    MutexLock lock(mu_);
    if (now_ >= tp) return std::cv_status::timeout;
    waiters_.push_back(&w);
    --pending_work_;
    changed_.NotifyAll();
    targets = MaybeAutoAdvanceLocked();
    if (w.woken) {
      // Registering made the system quiescent and our own deadline was
      // the earliest: time just stepped to it. Timeout without blocking.
      due_at_registration = true;
      std::vector<WakeTarget> more = DeregisterLocked(&w);
      targets.insert(targets.end(), more.begin(), more.end());
    }
  }
  WakeTargets(std::move(targets), &mu);
  if (due_at_registration) return std::cv_status::timeout;

  // Single wait: spurious wakeups surface to the caller exactly as with a
  // raw condition variable; callers keep their predicate loops.
  cv.Wait(mu);

  std::cv_status status;
  {
    MutexLock lock(mu_);
    status = now_ >= tp ? std::cv_status::timeout : std::cv_status::no_timeout;
    targets = DeregisterLocked(&w);
  }
  WakeTargets(std::move(targets), &mu);
  return status;
}

void SimClock::Wait(Mutex& mu, CondVar& cv) {
  Waiter w{&mu, &cv, TimePoint::max()};
  std::vector<WakeTarget> targets;
  {
    MutexLock lock(mu_);
    waiters_.push_back(&w);
    --pending_work_;
    changed_.NotifyAll();
    targets = MaybeAutoAdvanceLocked();  // never wakes us: max is never due
  }
  WakeTargets(std::move(targets), &mu);
  cv.Wait(mu);
  {
    MutexLock lock(mu_);
    targets = DeregisterLocked(&w);
  }
  WakeTargets(std::move(targets), &mu);
}

void SimClock::NotifyAll([[maybe_unused]] Mutex& mu, CondVar& cv) {
  {
    MutexLock lock(mu_);
    for (Waiter* w : waiters_) {
      if (w->cv == &cv && !w->woken) {
        // Same re-credit as a deadline wake: the notified thread is
        // runnable work from this instant, which pins simulated time
        // until it deregisters — a concurrent token release can no
        // longer step to this waiter's deadline "behind" the notify.
        w->woken = true;
        ++pending_work_;
      }
    }
  }
  // Holding `mu` (required) is the lost-wakeup fence: a thread between
  // its predicate check and its block still holds `mu`, so this notify
  // cannot land in that window.
  cv.NotifyAll();
}

void SimClock::SleepUntil(TimePoint tp) {
  MutexLock lock(sleep_mutex_);
  while (WaitUntil(sleep_mutex_, sleep_cv_, tp) != std::cv_status::timeout) {
  }
}

void SimClock::AddPendingWork(int delta) {
  std::vector<WakeTarget> targets;
  {
    MutexLock lock(mu_);
    pending_work_ += delta;
    if (delta < 0) targets = MaybeAutoAdvanceLocked();
  }
  // Contract: negative deltas must be posted while holding no waiter's
  // mutex — the wake fence acquires those mutexes.
  WakeTargets(std::move(targets), nullptr);
}

void SimClock::AdvanceTo(TimePoint tp) {
  std::vector<WakeTarget> targets;
  {
    MutexLock lock(mu_);
    targets = AdvanceLocked(tp);
  }
  WakeTargets(std::move(targets), nullptr);
}

int SimClock::NumWaiters() const {
  MutexLock lock(mu_);
  return static_cast<int>(waiters_.size());
}

void SimClock::AwaitWaiters(int n) {
  MutexLock lock(mu_);
  while (static_cast<int>(waiters_.size()) < n) changed_.Wait(mu_);
}

int SimClock::pending_work() const {
  MutexLock lock(mu_);
  return pending_work_;
}

}  // namespace dievent
