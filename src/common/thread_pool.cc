#include "common/thread_pool.h"

#include <algorithm>

namespace dievent {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int count,
                             const std::function<void(int)>& fn) {
  if (count <= 0) return;
  if (count == 1) {
    fn(0);
    return;
  }
  // A per-batch group (not Wait()) so concurrent ParallelFor callers
  // don't block on each other's iterations.
  TaskGroup group(this);
  for (int i = 0; i < count; ++i) {
    group.Submit([&fn, i] { fn(i); });
  }
  group.Wait();
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)] {
    task();
    // Notify while holding the lock: the waiter may destroy the group the
    // instant Wait returns, so the notify must complete before the waiter
    // can re-acquire the mutex.
    std::unique_lock<std::mutex> lock(mutex_);
    if (--pending_ == 0) done_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dievent
