#include "common/thread_pool.h"

#include <algorithm>

namespace dievent {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  task_ready_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.Wait(mutex_);
}

void ThreadPool::ParallelFor(int count,
                             const std::function<void(int)>& fn) {
  if (count <= 0) return;
  if (count == 1) {
    fn(0);
    return;
  }
  // A per-batch group (not Wait()) so concurrent ParallelFor callers
  // don't block on each other's iterations.
  TaskGroup group(this);
  for (int i = 0; i < count; ++i) {
    group.Submit([&fn, i] { fn(i); });
  }
  group.Wait();
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    MutexLock lock(group_mutex_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)] {
    task();
    // Notify while holding the lock: the waiter may destroy the group the
    // instant Wait returns, so the notify must complete before the waiter
    // can re-acquire the mutex.
    MutexLock lock(group_mutex_);
    if (--pending_ == 0) done_.NotifyAll();
  });
}

void TaskGroup::Wait() {
  MutexLock lock(group_mutex_);
  while (pending_ != 0) done_.Wait(group_mutex_);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && tasks_.empty()) task_ready_.Wait(mutex_);
      if (tasks_.empty()) return;  // shutting down and fully drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mutex_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace dievent
