#include "common/logging.h"

#include <atomic>
#include <cstring>
#include <iostream>

#include "common/thread_annotations.h"

namespace dievent {

namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarning)};

/// Process-wide log sink. Emission is serialized under an annotated mutex
/// so concurrent log statements (supervisor readers, the prefetch pump,
/// pool workers) produce whole lines; the stream override used by tests
/// shares the same guard so a redirect cannot race an in-flight write.
class LogSink {
 public:
  void Emit(const std::string& line) {
    MutexLock lock(mutex_);
    std::ostream* out = stream_ != nullptr ? stream_ : &std::cerr;
    (*out) << line << std::endl;
  }

  void SetStream(std::ostream* stream) {
    MutexLock lock(mutex_);
    stream_ = stream;
  }

 private:
  Mutex mutex_{LockRank::kLogSink};
  std::ostream* stream_ GUARDED_BY(mutex_) = nullptr;  ///< null = stderr
};

LogSink& Sink() {
  static LogSink* sink = new LogSink;  // leaked: outlives static dtors
  return *sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogThreshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogThreshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void SetLogStream(std::ostream* stream) { Sink().SetStream(stream); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_threshold.load(std::memory_order_relaxed)) {
    std::string line = "[";
    line += LevelName(level_);
    line += ' ';
    line += Basename(file_);
    line += ':';
    line += std::to_string(line_);
    line += "] ";
    line += stream_.str();
    Sink().Emit(line);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal

}  // namespace dievent
