#include "common/logging.h"

#include <atomic>
#include <cstring>
#include <iostream>

namespace dievent {

namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogThreshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogThreshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_threshold.load(std::memory_order_relaxed)) {
    std::cerr << "[" << LevelName(level_) << " " << Basename(file_) << ":"
              << line_ << "] " << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal

}  // namespace dievent
