#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace dievent {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  const char* ws = " \t\r\n";
  size_t b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  size_t e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace dievent
