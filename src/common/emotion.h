/// \file emotion.h
/// The six basic emotions recognized by DiEvent (Section II-C) plus
/// neutral. Shared vocabulary between the simulator, the recognizer, the
/// overall-emotion fusion, and the metadata repository.

#ifndef DIEVENT_COMMON_EMOTION_H_
#define DIEVENT_COMMON_EMOTION_H_

#include <array>
#include <string_view>

namespace dievent {

enum class Emotion : int {
  kNeutral = 0,
  kHappy = 1,
  kSad = 2,
  kAngry = 3,
  kDisgust = 4,
  kFear = 5,
  kSurprise = 6,
};

inline constexpr int kNumEmotions = 7;

inline constexpr std::array<Emotion, kNumEmotions> kAllEmotions = {
    Emotion::kNeutral, Emotion::kHappy,    Emotion::kSad,  Emotion::kAngry,
    Emotion::kDisgust, Emotion::kFear,     Emotion::kSurprise};

constexpr std::string_view EmotionName(Emotion e) {
  switch (e) {
    case Emotion::kNeutral:
      return "neutral";
    case Emotion::kHappy:
      return "happy";
    case Emotion::kSad:
      return "sad";
    case Emotion::kAngry:
      return "angry";
    case Emotion::kDisgust:
      return "disgust";
    case Emotion::kFear:
      return "fear";
    case Emotion::kSurprise:
      return "surprise";
  }
  return "unknown";
}

/// Valence in [-1, 1] used by overall-emotion fusion: positive emotions
/// raise the group's satisfaction estimate, negative ones lower it.
constexpr double EmotionValence(Emotion e) {
  switch (e) {
    case Emotion::kHappy:
      return 1.0;
    case Emotion::kSurprise:
      return 0.3;
    case Emotion::kNeutral:
      return 0.0;
    case Emotion::kSad:
      return -0.7;
    case Emotion::kFear:
      return -0.6;
    case Emotion::kAngry:
      return -0.9;
    case Emotion::kDisgust:
      return -1.0;
  }
  return 0.0;
}

}  // namespace dievent

#endif  // DIEVENT_COMMON_EMOTION_H_
