/// \file thread_ownership.h
/// Runtime check for single-thread-ownership contracts that Clang's
/// thread-safety analysis cannot express: "this side of the structure is
/// only ever touched by one thread" (an SPSC queue endpoint, the
/// supervisor's control-thread-only sequence counter).
///
/// A ThreadOwner is claimed by the first thread that checks it; every
/// later check aborts (DIEVENT_CHECK — enabled in all build types) if a
/// different thread shows up. Deliberate handoffs (a reader restart, the
/// pump thread taking over the control role) call Reset() at the handoff
/// point, which must itself be externally synchronized — in practice a
/// thread join or spawn, whose happens-before edge is exactly the
/// synchronization the new owner relies on.

#ifndef DIEVENT_COMMON_THREAD_OWNERSHIP_H_
#define DIEVENT_COMMON_THREAD_OWNERSHIP_H_

#include <atomic>
#include <thread>

#include "common/logging.h"

namespace dievent {

/// Tracks the single thread allowed to touch a role. First CheckOwned()
/// claims; later calls from other threads abort with the role name.
class ThreadOwner {
 public:
  /// `role` must be a string literal (stored, not copied).
  explicit ThreadOwner(const char* role) : role_(role) {}

  ThreadOwner(const ThreadOwner&) = delete;
  ThreadOwner& operator=(const ThreadOwner&) = delete;

  /// Claims ownership for the calling thread on first use; aborts if a
  /// different thread already owns the role. Relaxed ordering suffices:
  /// the check detects contract violations, it does not publish data —
  /// the owning thread's own accesses are naturally ordered, and a racing
  /// claim from two threads loses the compare-exchange and aborts.
  void CheckOwned() {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected;  // default id = unclaimed
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
      return;  // first touch claims
    }
    DIEVENT_CHECK(expected == self)
        << "thread-ownership violation: role '" << role_
        << "' is owned by another thread";
  }

  /// Releases the role so the next toucher claims it. Caller must
  /// synchronize the handoff externally (join the old owner / spawn the
  /// new one) — Reset only forgets the id.
  void Reset() { owner_.store(std::thread::id(), std::memory_order_relaxed); }

 private:
  const char* role_;
  std::atomic<std::thread::id> owner_{std::thread::id()};
};

/// Statement form, mirroring TS_ASSERT_HELD: `DCHECK_OWNED_BY(owner_);`
/// asserts the calling thread owns (or now claims) the role.
#define DCHECK_OWNED_BY(owner) ((owner).CheckOwned())

}  // namespace dievent

#endif  // DIEVENT_COMMON_THREAD_OWNERSHIP_H_
