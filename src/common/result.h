/// \file result.h
/// Result<T>: a Status combined with a value, for fallible producers.

#ifndef DIEVENT_COMMON_RESULT_H_
#define DIEVENT_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dievent {

/// Holds either a value of type T or a non-OK Status describing why the
/// value could not be produced.
///
/// Typical usage:
/// \code
///   Result<Image<uint8_t>> img = ReadPgm(path);
///   if (!img.ok()) return img.status();
///   Use(img.value());
/// \endcode
/// [[nodiscard]] like Status: a dropped Result silently swallows both the
/// value and the error that explains its absence.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. Aborts in debug builds if `status` is
  /// OK — an OK Result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK Result must be built from a value");
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out, leaving the Result in a valid but unspecified
  /// state.
  T TakeValue() {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define DIEVENT_ASSIGN_OR_RETURN(lhs, expr)          \
  auto DIEVENT_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!DIEVENT_CONCAT_(_res_, __LINE__).ok())        \
    return DIEVENT_CONCAT_(_res_, __LINE__).status(); \
  lhs = DIEVENT_CONCAT_(_res_, __LINE__).TakeValue()

#define DIEVENT_CONCAT_(a, b) DIEVENT_CONCAT_IMPL_(a, b)
#define DIEVENT_CONCAT_IMPL_(a, b) a##b

}  // namespace dievent

#endif  // DIEVENT_COMMON_RESULT_H_
