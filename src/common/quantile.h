/// \file quantile.h
/// Streaming quantile estimation via the P² algorithm (Jain & Chlamtac,
/// CACM 1985): five markers track the min, the target quantile, the max,
/// and two intermediate quantiles, adjusted per observation with a
/// piecewise-parabolic fit. O(1) memory, O(1) per sample — no stored
/// sample window — which is what lets the adaptive-deadline controller
/// track a healthy read-latency percentile per camera indefinitely.
///
/// Exactness properties the tests rely on: below five samples the
/// estimate is the exact nearest-rank order statistic of the samples seen;
/// for a constant input stream the estimate equals that constant exactly
/// (all markers coincide, and both the parabolic and linear adjustments
/// preserve equality).

#ifndef DIEVENT_COMMON_QUANTILE_H_
#define DIEVENT_COMMON_QUANTILE_H_

namespace dievent {

/// P² estimator for a single quantile. Not thread-safe; confine to one
/// thread or guard externally.
class P2Quantile {
 public:
  /// `quantile` in (0, 1), e.g. 0.9 for P90.
  explicit P2Quantile(double quantile);

  void Add(double x);

  /// Samples observed so far.
  long long count() const { return count_; }

  /// Current estimate of the target quantile. Returns 0 before any
  /// sample; exact order statistic below five samples.
  double Estimate() const;

 private:
  double Parabolic(int i, double d) const;
  double Linear(int i, int d) const;

  const double quantile_;
  long long count_ = 0;
  // Marker heights, actual positions (1-based), and desired positions.
  double q_[5] = {0, 0, 0, 0, 0};
  double n_[5] = {0, 0, 0, 0, 0};
  double desired_[5] = {0, 0, 0, 0, 0};
  double desired_inc_[5] = {0, 0, 0, 0, 0};
};

}  // namespace dievent

#endif  // DIEVENT_COMMON_QUANTILE_H_
