/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// All stochastic components (simulator noise, ML weight init, benchmark
/// workload generation) draw from Rng so that every run of the test suite
/// and benchmark harness is reproducible from a seed.

#ifndef DIEVENT_COMMON_RNG_H_
#define DIEVENT_COMMON_RNG_H_

#include <cstdint>

namespace dievent {

/// xoshiro256++ generator. Small, fast, and adequately distributed for
/// simulation workloads; not cryptographic.
class Rng {
 public:
  /// Seeds the full 256-bit state from a 64-bit seed via splitmix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Standard normal deviate (Box–Muller, cached spare).
  double NextGaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli draw with probability p of returning true.
  bool NextBool(double p = 0.5);

 private:
  uint64_t state_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace dievent

#endif  // DIEVENT_COMMON_RNG_H_
