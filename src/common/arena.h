/// \file arena.h
/// Per-frame bump allocator for vision/ML scratch memory.
///
/// An Arena hands out pointer-bumped allocations from a chain of large
/// blocks and frees them all at once with Reset(). The hot path owns one
/// arena per worker, resets it at the top of each frame, and carves every
/// mask, label map, feature vector, and scratch buffer out of it — after
/// the first few frames the block chain reaches steady state and frame
/// analysis performs zero heap allocations.
///
/// Lifetime rules (see DESIGN.md §13):
///  - Arena memory is valid until the next Reset(); nothing that outlives
///    the frame may live on the arena.
///  - Reset() retains the blocks, so capacity warms up once and is reused.
///  - Under AddressSanitizer, Reset() poisons everything it reclaims;
///    touching a stale pointer after Reset() reports use-after-poison
///    instead of silently reading the next frame's data.
///
/// ArenaAllocator<T> adapts an arena to the standard allocator interface
/// so `ArenaVector<T>` (std::vector on arena memory) works for dynamic
/// scratch like flood-fill stacks. Deallocation is a no-op; vector growth
/// abandons the old buffer until the next Reset(), which is fine for the
/// bounded, short-lived scratch this is meant for.

#ifndef DIEVENT_COMMON_ARENA_H_
#define DIEVENT_COMMON_ARENA_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define DIEVENT_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DIEVENT_ARENA_ASAN 1
#endif
#endif

#if defined(DIEVENT_ARENA_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace dievent {

class Arena {
 public:
  /// \p block_bytes is the granularity of backing allocations; requests
  /// larger than it get a dedicated block of their own size.
  explicit Arena(size_t block_bytes = 256 * 1024)
      : default_block_bytes_(block_bytes == 0 ? 1 : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
#if defined(DIEVENT_ARENA_ASAN)
    // Blocks must be unpoisoned before the backing memory is returned to
    // the system allocator.
    for (Block& b : blocks_) {
      __asan_unpoison_memory_region(b.data.get(), b.size);
    }
#endif
  }

  /// Returns \p bytes of uninitialized storage aligned to \p align (a
  /// power of two). Zero-byte requests return a unique, valid pointer.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    assert(align != 0 && (align & (align - 1)) == 0);
    if (bytes == 0) bytes = 1;
    while (active_ < blocks_.size()) {
      Block& b = blocks_[active_];
      // Align the absolute address, not the block offset: new[] storage
      // is only guaranteed aligned to max_align_t, and callers may ask
      // for more (e.g. 64 for cache-line scratch).
      const uintptr_t base = reinterpret_cast<uintptr_t>(b.data.get());
      const size_t aligned = AlignUp(base + b.used, align) - base;
      if (aligned + bytes <= b.size) {
        b.used = aligned + bytes;
        frame_bytes_ += bytes;
        uint8_t* p = b.data.get() + aligned;
#if defined(DIEVENT_ARENA_ASAN)
        __asan_unpoison_memory_region(p, bytes);
#endif
        return p;
      }
      ++active_;
    }
    // The slack guarantees the request fits after address alignment even
    // in a dedicated block.
    AddBlock(bytes < default_block_bytes_ ? default_block_bytes_ + align
                                          : bytes + align);
    return Allocate(bytes, align);
  }

  /// Typed array allocation (uninitialized — callers that need zeroing or
  /// construction do it themselves; the hot path usually overwrites).
  template <typename T>
  T* AllocateArray(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Reclaims everything allocated since the last Reset(). Blocks are
  /// retained, so steady-state frames never touch the heap.
  void Reset() {
    for (Block& b : blocks_) {
#if defined(DIEVENT_ARENA_ASAN)
      __asan_poison_memory_region(b.data.get(), b.size);
#endif
      b.used = 0;
    }
    active_ = 0;
    frame_bytes_ = 0;
  }

  /// Bytes handed out since the last Reset() (excludes alignment gaps).
  size_t bytes_allocated() const { return frame_bytes_; }

  /// Total capacity held across all retained blocks.
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  static size_t AlignUp(size_t v, size_t align) {
    return (v + align - 1) & ~(align - 1);
  }

  void AddBlock(size_t size) {
    Block b;
    // operator new[] storage is aligned for max_align_t; larger requests
    // re-align inside the block.
    b.data = std::make_unique<uint8_t[]>(size);
    b.size = size;
#if defined(DIEVENT_ARENA_ASAN)
    __asan_poison_memory_region(b.data.get(), b.size);
#endif
    blocks_.push_back(std::move(b));
    active_ = blocks_.size() - 1;
  }

  const size_t default_block_bytes_;
  std::vector<Block> blocks_;
  size_t active_ = 0;
  size_t frame_bytes_ = 0;
};

/// Standard-allocator adapter over Arena. deallocate() is a no-op; memory
/// comes back at the owning arena's next Reset().
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other)  // NOLINT(google-explicit-constructor)
      : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) {}

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  Arena* arena_;
};

/// std::vector whose storage lives on an Arena.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace dievent

#endif  // DIEVENT_COMMON_ARENA_H_
