/// \file backoff.h
/// Deterministic exponential backoff with jitter.
///
/// Retry pacing for the acquisition path: hammering a failing camera in a
/// tight loop wastes the read deadline and synchronizes retries across
/// cameras (every reader probing a shared flaky link at the same instant).
/// Exponential growth spreads attempts out; jitter decorrelates cameras.
/// Like the fault schedules, the jitter is a pure function of
/// (seed, stream, attempt), so a degraded run replays bit-for-bit.

#ifndef DIEVENT_COMMON_BACKOFF_H_
#define DIEVENT_COMMON_BACKOFF_H_

#include <cstdint>

namespace dievent {

/// Delay schedule for retries of a failing operation.
struct BackoffPolicy {
  double base_s = 0.001;   ///< delay before the first retry
  double max_s = 0.050;    ///< cap on any single delay
  double multiplier = 2.0; ///< growth per retry
  /// Jitter fraction in [0, 1]: the delay is scaled by a deterministic
  /// factor drawn from [1 - jitter, 1 + jitter].
  double jitter = 0.5;
  uint64_t seed = 1;       ///< decorrelates streams with equal policies

  /// Delay in seconds before retry `attempt` (1 = first retry) of
  /// operation `op` on stream `stream`. Pure in all inputs.
  double Delay(int attempt, uint64_t stream, uint64_t op) const;
};

}  // namespace dievent

#endif  // DIEVENT_COMMON_BACKOFF_H_
