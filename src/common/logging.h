/// \file logging.h
/// Minimal leveled logging with a process-wide threshold.
///
/// Usage: `DIEVENT_LOG(INFO) << "processed " << n << " frames";`
/// Messages at or above the global threshold go to stderr, prefixed with the
/// level and the source location. Logging is for diagnostics only; library
/// code reports errors via Status, never via log-and-continue.

#ifndef DIEVENT_COMMON_LOGGING_H_
#define DIEVENT_COMMON_LOGGING_H_

#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>

namespace dievent {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum level that is emitted. Default: kWarning (libraries are
/// quiet unless asked).
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

/// Redirects log output to `stream` (nullptr restores stderr). The sink is
/// mutex-serialized: concurrent DIEVENT_LOG statements from reader/pump/
/// worker threads emit whole lines, never interleaved fragments.
/// Thread-safe; intended for tests and embedding applications.
void SetLogStream(std::ostream* stream);

namespace internal {

/// Accumulates one log statement and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define DIEVENT_LOG(severity)                                        \
  ::dievent::internal::LogMessage(::dievent::LogLevel::k##severity, \
                                  __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. Enabled in all build types;
/// use for internal invariants, not for validating user input.
#define DIEVENT_CHECK(cond)                                            \
  if (!(cond))                                                         \
  ::dievent::internal::LogMessage(::dievent::LogLevel::kFatal,         \
                                  __FILE__, __LINE__)                  \
      << "Check failed: " #cond " "

}  // namespace dievent

#endif  // DIEVENT_COMMON_LOGGING_H_
