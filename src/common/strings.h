/// \file strings.h
/// Small string helpers shared across libraries.

#ifndef DIEVENT_COMMON_STRINGS_H_
#define DIEVENT_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace dievent {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace dievent

#endif  // DIEVENT_COMMON_STRINGS_H_
