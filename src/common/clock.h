/// \file clock.h
/// Injectable time: a VirtualClock interface over steady_clock, with a
/// production RealClock and a test-only SimClock.
///
/// Every timing decision in the acquisition path — read deadlines,
/// watchdog stalls, backoff pacing, breaker readmission cooldowns, stall
/// injection, stage timers — goes through a VirtualClock instead of
/// calling `steady_clock::now()` directly (tools/dievent_lint.py bans the
/// direct call outside this file). Production code injects nothing and
/// gets RealClock; timing tests inject a SimClock whose `Now()` advances
/// only when explicitly stepped, which turns wall-clock-dependent tests
/// (deadline misses under load, stall/backoff interleavings) into exact,
/// load-independent assertions.
///
/// SimClock auto-advance: with `Options::auto_advance`, the clock steps
/// itself to the earliest waiter deadline whenever the system is
/// *quiescent* — no pending work (see AddPendingWork) and at least one
/// thread blocked in a timed wait. Work in flight holds a pending-work
/// token, so simulated time can never pass a deadline while the read that
/// must beat it is still executing; that is the property that makes the
/// deadline tests deterministic on a loaded machine.
///
/// Blocking-wait protocol: `WaitUntil(mu, cv, tp)` is the clock-mediated
/// form of `cv.WaitUntil(mu, tp)`. SimClock registers the waiter, releases
/// one pending-work token while blocked (a blocked thread is not work),
/// and wakes it with the same empty-critical-section fence the supervisor
/// uses, so a step can never slip between a caller's predicate check and
/// its wait. The clock must outlive every component it is injected into.

#ifndef DIEVENT_COMMON_CLOCK_H_
#define DIEVENT_COMMON_CLOCK_H_

#include <chrono>
#include <condition_variable>  // std::cv_status
#include <vector>

#include "common/thread_annotations.h"

namespace dievent {

/// The time source every timing-sensitive component reads through.
/// Durations and time points are steady_clock's types, so swapping the
/// clock never changes arithmetic or storage — only where "now" comes
/// from and what a blocked wait means.
class VirtualClock {
 public:
  using Duration = std::chrono::steady_clock::duration;
  using TimePoint = std::chrono::steady_clock::time_point;

  virtual ~VirtualClock() = default;

  virtual TimePoint Now() = 0;

  /// Blocks the calling thread until `tp` (or `d` from now).
  virtual void SleepUntil(TimePoint tp) = 0;
  void SleepFor(Duration d) { SleepUntil(Now() + d); }

  /// Clock-mediated `cv.WaitUntil(mu, tp)`: blocks until notified or until
  /// the clock reaches `tp`. Spurious wakeups are possible exactly as with
  /// the raw condition variable; callers keep their predicate loops.
  virtual std::cv_status WaitUntil(Mutex& mu, CondVar& cv, TimePoint tp)
      REQUIRES(mu) = 0;

  /// Clock-mediated `cv.Wait(mu)` (no deadline). Under SimClock the
  /// blocked thread releases its pending-work token like a timed wait, so
  /// auto-advance can run work the waiter depends on.
  virtual void Wait(Mutex& mu, CondVar& cv) REQUIRES(mu) = 0;

  /// Clock-mediated `cv.NotifyAll()`. Any condition variable some thread
  /// clock-Waits on must be notified through this (holding `mu`, which
  /// doubles as the lost-wakeup fence): under SimClock the notify marks
  /// the blocked waiters woken and re-credits their pending-work tokens
  /// *atomically*, so a concurrent token release cannot step time to a
  /// waiter's deadline in the window between its wakeup and its
  /// deregistration — which would otherwise make wake-vs-advance races
  /// visible as nondeterministic timestamps.
  virtual void NotifyAll(Mutex& mu, CondVar& cv) REQUIRES(mu) = 0;

  /// Pending-work accounting for SimClock auto-advance; no-op on the real
  /// clock. A positive balance means some thread is mid-task and simulated
  /// time must hold still; the balance may transiently go negative when
  /// waits outnumber registered work (standalone use), which still counts
  /// as quiescent.
  virtual void AddPendingWork(int delta) { (void)delta; }

  double NowSeconds() { return ToSeconds(Now().time_since_epoch()); }

  static double ToSeconds(Duration d) {
    return std::chrono::duration<double>(d).count();
  }
  static Duration FromSeconds(double s) {
    return std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(s));
  }
};

/// The production clock: steady_clock reads, real sleeps, real waits.
class RealClock : public VirtualClock {
 public:
  /// Process-wide instance (stateless; shared freely across threads).
  static RealClock* Get();

  TimePoint Now() override { return std::chrono::steady_clock::now(); }
  void SleepUntil(TimePoint tp) override;
  std::cv_status WaitUntil(Mutex& mu, CondVar& cv, TimePoint tp) override
      REQUIRES(mu) {
    return cv.WaitUntil(mu, tp);
  }
  void Wait(Mutex& mu, CondVar& cv) override REQUIRES(mu) { cv.Wait(mu); }
  void NotifyAll([[maybe_unused]] Mutex& mu, CondVar& cv) override
      REQUIRES(mu) {
    cv.NotifyAll();
  }
};

/// Test clock: time is a number that moves only via AdvanceBy/AdvanceTo
/// (or auto-advance). Timed waits block until a step reaches their
/// deadline or their condition variable is notified; steps wake exactly
/// the waiters whose deadlines were reached, earliest first.
class SimClock : public VirtualClock {
 public:
  struct Options {
    /// Simulated time at construction, seconds past the epoch.
    double start_s = 0.0;
    /// Step to the earliest waiter deadline whenever no pending work
    /// remains and someone is blocked (see AddPendingWork).
    bool auto_advance = false;
  };

  SimClock() : SimClock(Options{}) {}
  explicit SimClock(Options options);

  TimePoint Now() override;
  void SleepUntil(TimePoint tp) override;
  std::cv_status WaitUntil(Mutex& mu, CondVar& cv, TimePoint tp) override
      REQUIRES(mu);
  void Wait(Mutex& mu, CondVar& cv) override REQUIRES(mu);
  void NotifyAll(Mutex& mu, CondVar& cv) override REQUIRES(mu);
  void AddPendingWork(int delta) override;

  /// Steps simulated time forward and wakes every waiter whose deadline
  /// was reached, in deadline order. Steps to the past are ignored.
  void AdvanceTo(TimePoint tp);
  void AdvanceBy(Duration d) { AdvanceTo(Now() + d); }
  void AdvanceBySeconds(double s) { AdvanceBy(FromSeconds(s)); }

  /// Number of threads currently blocked in a clock-mediated wait.
  int NumWaiters() const;
  /// Blocks (in real time) until at least `n` waiters are registered —
  /// how a stepping test knows its worker threads have reached their
  /// waits before it advances.
  void AwaitWaiters(int n);

  int pending_work() const;

 private:
  /// One blocked thread: where to find it (its mutex + condvar) and when
  /// it is due. Lives on the waiter's stack; registered under mu_.
  struct Waiter {
    Mutex* mu;
    CondVar* cv;
    TimePoint deadline;  ///< TimePoint::max() = untimed Wait
    /// Set (under mu_) when a step reaches the deadline or a clock
    /// NotifyAll targets this waiter. The wake also re-credits the
    /// waiter's pending-work token right then — the woken thread is
    /// runnable work — so time cannot advance again in the window before
    /// the waiter deregisters itself.
    bool woken = false;
  };
  /// A wake to deliver after mu_ is released (never notify under mu_:
  /// the fence locks waiter mutexes, which must stay ordered before mu_).
  struct WakeTarget {
    Mutex* mu;
    CondVar* cv;
    TimePoint deadline;  ///< for earliest-first ordering
  };

  /// Core step: sets now_ to `target` (if in the future) and collects the
  /// due waiters. Callers deliver the wakes after releasing mu_.
  std::vector<WakeTarget> AdvanceLocked(TimePoint target) REQUIRES(mu_);
  /// Auto-advance decision: quiescent (pending_work_ <= 0) with at least
  /// one timed waiter -> step to the earliest deadline.
  std::vector<WakeTarget> MaybeAutoAdvanceLocked() REQUIRES(mu_);
  /// Removes `w`, restores its token unless a wake already did (woken),
  /// and re-checks auto-advance.
  std::vector<WakeTarget> DeregisterLocked(Waiter* w) REQUIRES(mu_);
  /// Delivers wakes, earliest deadline first. An empty lock/unlock of each
  /// target's mutex fences the notify past a waiter that has registered
  /// but not yet blocked. Must be called with no waiter mutex held —
  /// fencing B's mutex while holding A's inverts lock order against a
  /// thread fencing A's while holding B's.
  void WakeTargets(std::vector<WakeTarget> targets);
  /// WakeTargets for wait paths that hold their own waiter mutex: releases
  /// `mu` around the delivery, so callers must re-check their Waiter's
  /// `woken` flag before blocking (a wake may land in the window).
  void DeliverWakes(Mutex& mu, std::vector<WakeTarget> targets) REQUIRES(mu);

  const bool auto_advance_;
  mutable Mutex mu_{LockRank::kClockWaiters};
  /// Signals waiter-set changes to AwaitWaiters.
  CondVar changed_;
  TimePoint now_ GUARDED_BY(mu_);
  std::vector<Waiter*> waiters_ GUARDED_BY(mu_);
  int pending_work_ GUARDED_BY(mu_) = 0;
  /// Shared parking spot for SleepUntil (which has no caller mutex).
  Mutex sleep_mutex_{LockRank::kClockSleep};  // lint: unguarded (parks sleepers; guards no data)
  CondVar sleep_cv_;
};

}  // namespace dievent

#endif  // DIEVENT_COMMON_CLOCK_H_
