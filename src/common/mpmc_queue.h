/// \file mpmc_queue.h
/// A bounded multi-producer/multi-consumer work queue.
///
/// The fleet scheduler feeds admitted event jobs to its runner threads
/// through one of these: the dispatcher (and, in principle, several
/// control threads) pushes, M runners pop. Unlike the SPSC ring in
/// spsc_queue.h — whose whole point is that each endpoint is a single
/// thread — this queue takes a lock, because admission is a control-path
/// operation measured in jobs per second, not frames per second, and a
/// mutex keeps the blocking semantics (bounded backpressure, clean
/// close) trivially correct and thread-safety-annotatable.
///
/// Blocking waits are clock-mediated: under a SimClock, a runner parked
/// in Pop() releases its pending-work token exactly like the acquisition
/// supervisor's waiters, so simulated time can auto-advance across an
/// idle fleet. Pass no clock (or RealClock) for production behavior.
///
/// Close() wakes everyone: blocked Push() calls fail, blocked Pop()
/// calls drain the remaining items and then return nullopt — the
/// standard "queue closed" shutdown handshake.

#ifndef DIEVENT_COMMON_MPMC_QUEUE_H_
#define DIEVENT_COMMON_MPMC_QUEUE_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/clock.h"
#include "common/thread_annotations.h"

namespace dievent {

/// Bounded MPMC queue of `T`. All methods are safe from any thread.
template <typename T>
class MpmcQueue {
 public:
  /// `capacity` >= 1 (values < 1 are clamped to 1). `clock` null = the
  /// real clock; the clock must outlive the queue.
  explicit MpmcQueue(size_t capacity, VirtualClock* clock = nullptr)
      : capacity_(capacity < 1 ? 1 : capacity),
        clock_(clock != nullptr ? clock : RealClock::Get()) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  size_t capacity() const { return capacity_; }

  /// Non-blocking push. False when the queue is full or closed.
  [[nodiscard]] bool TryPush(T value) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    if (items_.size() > max_depth_seen_) max_depth_seen_ = items_.size();
    clock_->NotifyAll(mutex_, not_empty_);
    return true;
  }

  /// Blocking push: waits while the queue is full. False when the queue
  /// was closed before the item could be enqueued (the item is dropped).
  [[nodiscard]] bool Push(T value) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!closed_ && items_.size() >= capacity_) {
      clock_->Wait(mutex_, not_full_);
    }
    if (closed_) return false;
    items_.push_back(std::move(value));
    if (items_.size() > max_depth_seen_) max_depth_seen_ = items_.size();
    clock_->NotifyAll(mutex_, not_empty_);
    return true;
  }

  /// Non-blocking pop. nullopt when the queue is empty (closed or not).
  [[nodiscard]] std::optional<T> TryPop() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return PopLocked();
  }

  /// Blocking pop: waits while the queue is empty and open. nullopt only
  /// after Close() once every queued item has been drained.
  [[nodiscard]] std::optional<T> Pop() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) {
      clock_->Wait(mutex_, not_empty_);
    }
    return PopLocked();
  }

  /// Closes the queue and wakes every blocked producer and consumer.
  /// Items already queued remain poppable. Idempotent.
  void Close() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    closed_ = true;
    clock_->NotifyAll(mutex_, not_empty_);
    clock_->NotifyAll(mutex_, not_full_);
  }

  bool closed() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  size_t size() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

  /// Occupancy high-water mark since construction.
  size_t max_depth_seen() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return max_depth_seen_;
  }

 private:
  std::optional<T> PopLocked() REQUIRES(mutex_) {
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    clock_->NotifyAll(mutex_, not_full_);
    return out;
  }

  const size_t capacity_;
  VirtualClock* const clock_;
  mutable Mutex mutex_{LockRank::kReadyQueue};
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
  size_t max_depth_seen_ GUARDED_BY(mutex_) = 0;
};

}  // namespace dievent

#endif  // DIEVENT_COMMON_MPMC_QUEUE_H_
