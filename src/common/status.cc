#include "common/status.h"

namespace dievent {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace dievent
