#include "render/face_renderer.h"

#include <algorithm>
#include <cmath>

#include "image/draw.h"

namespace dievent {

namespace {

using namespace face_model;  // NOLINT — appearance constants

/// Draws a parabolic mouth curve. `bend` > 0 bends the centre downward in
/// image coordinates (a smile: corners up); < 0 bends it upward (a frown).
void DrawMouthCurve(ImageRgb* c, const Vec2& center, double r, double bend,
                    double half_width, double thickness) {
  const int segments = 12;
  Vec2 prev;
  for (int i = 0; i <= segments; ++i) {
    double u = -1.0 + 2.0 * i / segments;  // -1..1 across the mouth
    Vec2 p{center.x + u * half_width * r,
           center.y + kMouthY * r + bend * r * (1.0 - u * u)};
    if (i > 0) DrawLine(c, prev, p, kMouth, thickness);
    prev = p;
  }
}

/// Draws one eyebrow. `tilt` shifts the *inner* end vertically (image
/// coords: positive = down = angry, negative = up = sad) and `raise`
/// shifts the whole brow up.
void DrawBrow(ImageRgb* c, const Vec2& face_center, double r, int side,
              double tilt, double raise, double thickness) {
  double ex = side * kEyeOffsetX * r;
  double ey = (kEyeOffsetY - 0.20) * r - raise * r;
  Vec2 outer{face_center.x + ex + side * 0.14 * r, face_center.y + ey};
  Vec2 inner{face_center.x + ex - side * 0.14 * r,
             face_center.y + ey + tilt * r};
  DrawLine(c, outer, inner, kBrow, thickness);
}

void DrawExpression(ImageRgb* c, const Vec2& center, double r,
                    Emotion emotion, double intensity) {
  const double i = std::clamp(intensity, 0.0, 1.0);
  const double th = std::max(1.0, 0.07 * r);
  switch (emotion) {
    case Emotion::kNeutral:
      DrawMouthCurve(c, center, r, 0.0, 0.30, th);
      DrawBrow(c, center, r, -1, 0.0, 0.0, th);
      DrawBrow(c, center, r, +1, 0.0, 0.0, th);
      break;
    case Emotion::kHappy:
      DrawMouthCurve(c, center, r, 0.16 * i, 0.36, th);
      DrawBrow(c, center, r, -1, 0.0, 0.02 * i, th);
      DrawBrow(c, center, r, +1, 0.0, 0.02 * i, th);
      break;
    case Emotion::kSad:
      DrawMouthCurve(c, center, r, -0.14 * i, 0.30, th);
      DrawBrow(c, center, r, -1, -0.10 * i, 0.0, th);
      DrawBrow(c, center, r, +1, -0.10 * i, 0.0, th);
      break;
    case Emotion::kAngry:
      DrawMouthCurve(c, center, r, -0.04 * i, 0.26, th * 1.3);
      DrawBrow(c, center, r, -1, 0.12 * i, -0.02 * i, th * 1.2);
      DrawBrow(c, center, r, +1, 0.12 * i, -0.02 * i, th * 1.2);
      break;
    case Emotion::kDisgust: {
      // Tilted mouth + one lowered brow (asymmetric).
      Vec2 a{center.x - 0.28 * r, center.y + (kMouthY - 0.04 * i) * r};
      Vec2 b{center.x + 0.28 * r, center.y + (kMouthY + 0.06 * i) * r};
      DrawLine(c, a, b, kMouth, th * 1.2);
      DrawBrow(c, center, r, -1, 0.10 * i, -0.04 * i, th);
      DrawBrow(c, center, r, +1, -0.02 * i, 0.06 * i, th);
      break;
    }
    case Emotion::kFear:
      // Wide flat open mouth, raised brows.
      FillEllipse(c, center.x, center.y + kMouthY * r, 0.22 * r,
                  (0.05 + 0.06 * i) * r, kMouth);
      DrawBrow(c, center, r, -1, -0.04 * i, 0.10 * i, th);
      DrawBrow(c, center, r, +1, -0.04 * i, 0.10 * i, th);
      break;
    case Emotion::kSurprise:
      // Round open mouth, strongly raised brows.
      FillEllipse(c, center.x, center.y + kMouthY * r, 0.11 * r,
                  (0.08 + 0.10 * i) * r, kMouth);
      DrawBrow(c, center, r, -1, 0.0, 0.14 * i, th);
      DrawBrow(c, center, r, +1, 0.0, 0.14 * i, th);
      break;
  }
}

}  // namespace

void RenderFace(ImageRgb* canvas, const FaceRenderParams& p) {
  const double r = p.radius_px;
  if (r < 1.0) return;
  const Vec2 c = p.center_px;

  if (!p.front_facing) {
    // Back of the head: hair disc plus the identity cap.
    FillCircle(canvas, c.x, c.y, r, kHair);
    FillCircle(canvas, c.x, c.y + kHatOffsetY * r, kHatRadius * r,
               p.marker_color);
    return;
  }

  FillCircle(canvas, c.x, c.y, r, kSkin);
  FillCircle(canvas, c.x, c.y + kHatOffsetY * r, kHatRadius * r,
             p.marker_color);

  // Eyes with gaze-encoding irises.
  const double er = kEyeRadius * r;
  for (int side : {-1, +1}) {
    double ex = c.x + side * kEyeOffsetX * r;
    double ey = c.y + kEyeOffsetY * r;
    FillEllipse(canvas, ex, ey, er, er * 0.75, kEyeWhite);
    double ix = ex + std::clamp(p.gaze_x, -1.0, 1.0) * kIrisSwing * er;
    double iy = ey + std::clamp(p.gaze_y, -1.0, 1.0) * kIrisSwing * er * 0.75;
    FillCircle(canvas, ix, iy, kIrisRadius * er, kIris);
  }

  DrawExpression(canvas, c, r, p.emotion, p.intensity);
}

ImageRgb RenderFaceCrop(int size, Emotion emotion, double intensity,
                        double gaze_x, double gaze_y, Rgb marker_color,
                        Rgb background) {
  ImageRgb crop(size, size, 3);
  for (int y = 0; y < size; ++y)
    for (int x = 0; x < size; ++x) PutRgb(&crop, x, y, background);
  FaceRenderParams p;
  p.center_px = {size / 2.0, size / 2.0};
  p.radius_px = size * 0.46;
  p.marker_color = marker_color;
  p.emotion = emotion;
  p.intensity = intensity;
  p.gaze_x = gaze_x;
  p.gaze_y = gaze_y;
  p.front_facing = true;
  RenderFace(&crop, p);
  return crop;
}

}  // namespace dievent
