/// \file face_renderer.h
/// Parametric face rasterization.
///
/// Faces are drawn as a skin-tone disc carrying an identity marker (a
/// colored cap, standing in for the paper's color-coded participants), two
/// eyes whose iris offsets encode the camera-frame gaze direction, and a
/// mouth/brow configuration that depends on the facial expression. The
/// constants below form a *shared appearance model*: the gaze estimator and
/// emotion recognizer invert exactly this parameterization, the way
/// OpenFace's landmark model inverts real face appearance.

#ifndef DIEVENT_RENDER_FACE_RENDERER_H_
#define DIEVENT_RENDER_FACE_RENDERER_H_

#include "common/emotion.h"
#include "geometry/vec.h"
#include "image/image.h"

namespace dievent {

/// Appearance-model constants, all expressed as fractions of the face
/// radius (or of the eye radius where noted).
namespace face_model {
inline constexpr double kEyeOffsetX = 0.35;   ///< eye centres at +-this * r
inline constexpr double kEyeOffsetY = -0.18;  ///< above face centre
inline constexpr double kEyeRadius = 0.18;    ///< eye half-width * r
inline constexpr double kIrisRadius = 0.50;   ///< iris radius * eye radius
inline constexpr double kIrisSwing = 0.55;    ///< iris offset per unit gaze,
                                              ///< * eye radius
inline constexpr double kMouthY = 0.45;       ///< mouth baseline below centre
/// Identity cap. Its lower edge (kHatOffsetY + kHatRadius = -0.47 r) sits
/// well above the eye search windows so a dark cap (the paper's "black"
/// participant) can never pollute an iris centroid.
inline constexpr double kHatOffsetY = -0.85;
inline constexpr double kHatRadius = 0.38;
inline constexpr Rgb kSkin{215, 170, 140};
inline constexpr Rgb kHair{70, 50, 35};
/// Default scene background; deliberately far (> any detector tolerance)
/// from both kSkin and kHair so color-gated masks never bleed into it.
inline constexpr Rgb kDefaultBackground{90, 105, 125};
inline constexpr Rgb kEyeWhite{245, 245, 245};
inline constexpr Rgb kIris{25, 20, 20};
inline constexpr Rgb kMouth{120, 40, 40};
/// Brow brown is kept > the detector's hair tolerance away from kHair so
/// tilted brows can never masquerade as small back-of-head blobs.
inline constexpr Rgb kBrow{110, 75, 55};
/// A face is rendered frontally only when the camera-frame gaze z component
/// is below this (gaze clearly toward the camera); otherwise the back of
/// the head (hair + identity cap) is drawn.
inline constexpr double kFrontFacingMaxZ = -0.15;
/// The eye-white centroid shifts *away* from the iris because the iris
/// covers part of the white ellipse: with iris/white area ratio
/// rho = A_iris / (A_eye - A_iris) = 0.25/(0.75-0.25) = 0.5, the true iris
/// offset is (iris_centroid - white_centroid) / (1 + rho). Estimators
/// divide by this factor.
inline constexpr double kIrisWhiteSeparationGain = 1.5;
}  // namespace face_model

/// Everything needed to draw one face into a frame.
struct FaceRenderParams {
  Vec2 center_px;         ///< projected head centre
  double radius_px = 20;  ///< projected head radius
  Rgb marker_color;       ///< identity cap color
  Emotion emotion = Emotion::kNeutral;
  double intensity = 1.0;  ///< expression strength, 0..1
  /// Camera-frame gaze x/y components (image right / image down). Only
  /// meaningful when `front_facing`.
  double gaze_x = 0.0;
  double gaze_y = 0.0;
  bool front_facing = true;
};

/// Draws one face (or the back of a head) into `canvas`, clipped.
void RenderFace(ImageRgb* canvas, const FaceRenderParams& params);

/// Renders a standalone face crop of the given square size — the training
/// and evaluation sample source for the emotion recognizer.
ImageRgb RenderFaceCrop(int size, Emotion emotion, double intensity,
                        double gaze_x = 0.0, double gaze_y = 0.0,
                        Rgb marker_color = Rgb{230, 200, 40},
                        Rgb background = face_model::kDefaultBackground);

}  // namespace dievent

#endif  // DIEVENT_RENDER_FACE_RENDERER_H_
