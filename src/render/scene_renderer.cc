#include "render/scene_renderer.h"

#include <algorithm>
#include <cmath>

#include "image/draw.h"
#include "render/face_renderer.h"

namespace dievent {

namespace {

Rgb Scale(const Rgb& c, double s) {
  auto f = [s](uint8_t v) {
    return static_cast<uint8_t>(std::clamp(v * s, 0.0, 255.0));
  };
  return Rgb{f(c.r), f(c.g), f(c.b)};
}

void ApplyNoise(ImageRgb* img, double sigma, Rng* rng) {
  if (sigma <= 0.0 || rng == nullptr) return;
  for (uint8_t& v : img->data()) {
    double nv = v + rng->Gaussian(0.0, sigma);
    v = static_cast<uint8_t>(std::clamp(nv, 0.0, 255.0));
  }
}

}  // namespace

bool IsFrontFacing(const CameraModel& camera, const ParticipantState& state) {
  Vec3 gaze_cam =
      camera.camera_from_world().TransformDirection(state.gaze_direction);
  return gaze_cam.z < face_model::kFrontFacingMaxZ;
}

ImageRgb RenderView(const DiningScene& scene,
                    const std::vector<ParticipantState>& states,
                    int camera_index, const RenderOptions& options,
                    Rng* rng) {
  const CameraModel& cam = scene.rig().camera(camera_index);
  const Intrinsics& k = cam.intrinsics();
  ImageRgb frame(k.width, k.height, 3);

  const Rgb bg = Scale(options.background, options.illumination);
  for (int y = 0; y < k.height; ++y)
    for (int x = 0; x < k.width; ++x) PutRgb(&frame, x, y, bg);

  if (options.draw_table) {
    const Table& t = scene.table();
    const double hx = t.size.x / 2.0, hy = t.size.y / 2.0;
    const Vec3 corners[4] = {
        t.center + Vec3{-hx, -hy, 0}, t.center + Vec3{hx, -hy, 0},
        t.center + Vec3{hx, hy, 0}, t.center + Vec3{-hx, hy, 0}};
    std::vector<Vec2> pts;
    bool all_front = true;
    for (const Vec3& c : corners) {
      auto px = cam.ProjectWorldPoint(c);
      if (!px) {
        all_front = false;
        break;
      }
      pts.push_back(*px);
    }
    if (all_front) {
      FillConvexPolygon(&frame, pts,
                        Scale(options.table_color, options.illumination));
    }
  }

  // Depth-sort participants, far first, so near heads occlude far ones.
  std::vector<int> order(states.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return cam.DepthOf(states[a].head_position) >
           cam.DepthOf(states[b].head_position);
  });

  for (int id : order) {
    const ParticipantState& s = states[id];
    double depth = cam.DepthOf(s.head_position);
    if (depth <= 0.05) continue;
    auto center = cam.ProjectWorldPoint(s.head_position);
    if (!center) continue;
    double radius_px =
        k.fx * scene.profile(id).head_radius / depth;
    if (radius_px < 2.0) continue;
    if (center->x < -radius_px || center->x > k.width + radius_px ||
        center->y < -radius_px || center->y > k.height + radius_px) {
      continue;
    }

    FaceRenderParams p;
    p.center_px = *center;
    p.radius_px = radius_px;
    p.marker_color = Scale(scene.profile(id).marker_color,
                           options.illumination);
    p.emotion = s.emotion;
    p.intensity = s.emotion_intensity;
    p.front_facing = IsFrontFacing(cam, s);
    if (p.front_facing) {
      Vec3 gaze_cam =
          cam.camera_from_world().TransformDirection(s.gaze_direction);
      p.gaze_x = gaze_cam.x;
      p.gaze_y = gaze_cam.y;
    }
    RenderFace(&frame, p);
  }

  ApplyNoise(&frame, options.noise_sigma, rng);
  return frame;
}

ImageRgb RenderViewAt(const DiningScene& scene, double t, int camera_index,
                      const RenderOptions& options, Rng* rng) {
  return RenderView(scene, scene.StateAt(t), camera_index, options, rng);
}

}  // namespace dievent
