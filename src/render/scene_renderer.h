/// \file scene_renderer.h
/// Projects a simulated dining scene into per-camera frames — the stand-in
/// for the paper's surveillance cameras. Output frames are 640x480 RGB
/// unless the rig's intrinsics say otherwise.

#ifndef DIEVENT_RENDER_SCENE_RENDERER_H_
#define DIEVENT_RENDER_SCENE_RENDERER_H_

#include <vector>

#include "common/rng.h"
#include "geometry/camera.h"
#include "image/image.h"
#include "sim/scene.h"

namespace dievent {

/// Knobs affecting frame appearance (used to stress the vision stack and to
/// script shot changes for video parsing).
struct RenderOptions {
  Rgb background{90, 105, 125};
  bool draw_table = true;
  Rgb table_color{150, 105, 60};
  /// Additive Gaussian pixel noise (sigma in intensity levels, 0 = off).
  double noise_sigma = 0.0;
  /// Global illumination scale (1 = nominal). Scripted lighting changes
  /// produce gradual transitions for the shot-boundary detector.
  double illumination = 1.0;
};

/// Renders what camera `camera_index` sees given the instantaneous
/// participant states. Faces are drawn far-to-near so closer heads occlude
/// farther ones. When `rng` is null the frame is noise-free regardless of
/// `options.noise_sigma`.
ImageRgb RenderView(const DiningScene& scene,
                    const std::vector<ParticipantState>& states,
                    int camera_index, const RenderOptions& options,
                    Rng* rng = nullptr);

/// Convenience: renders camera `camera_index` at time t.
ImageRgb RenderViewAt(const DiningScene& scene, double t, int camera_index,
                      const RenderOptions& options, Rng* rng = nullptr);

/// True when the participant's gaze (and hence face) is oriented toward the
/// camera closely enough for the frontal appearance model to be drawn.
bool IsFrontFacing(const CameraModel& camera, const ParticipantState& state);

}  // namespace dievent

#endif  // DIEVENT_RENDER_SCENE_RENDERER_H_
