/// \file activity.h
/// Dining-activity analysis over the gaze layer: per-frame gaze
/// statistics, the discrete symbolization consumed by the HMM baseline
/// (Gao et al. [16]), and DiEvent's own rule-based phase classifier for
/// the comparison.

#ifndef DIEVENT_ANALYSIS_ACTIVITY_H_
#define DIEVENT_ANALYSIS_ACTIVITY_H_

#include <vector>

#include "analysis/lookat_matrix.h"
#include "sim/scenario.h"

namespace dievent {

/// Frame-level gaze-structure statistics.
struct GazeFrameStats {
  int participants = 0;
  int directed_edges = 0;   ///< set off-diagonal cells
  int mutual_pairs = 0;     ///< eye contacts
  int heads_down = 0;       ///< participants looking at nobody
  bool attention_converged = false;  ///< all others on one target
  int attention_target = -1;  ///< most-watched participant (if any looks)
  int max_in_degree = 0;      ///< looks received by attention_target
  int second_in_degree = 0;   ///< looks received by the runner-up — a
                              ///< second "hub" signals dialogue, not a
                              ///< presentation
};

GazeFrameStats ComputeGazeStats(const LookAtMatrix& lookat);

/// Number of observation symbols produced by SymbolizeLookAt.
inline constexpr int kActivitySymbols = 12;

/// Quantizes a look-at matrix into one of kActivitySymbols symbols:
/// (edge-density bucket: none/low/high) x (any mutual pair) x
/// (attention converged).
int SymbolizeLookAt(const LookAtMatrix& lookat);

/// DiEvent's direct rule-based phase classifier over the same statistics
/// (the "multilayer analysis" contender in the baseline comparison):
/// attention convergence -> presentation; any eye contact -> discussion;
/// mostly heads-down -> eating; sparse residual -> discussion.
DiningPhase ClassifyPhaseRule(const LookAtMatrix& lookat);

/// Majority-vote temporal smoothing over a (2*half_window+1) window —
/// phases are seconds-long, so single-frame blips are noise.
std::vector<DiningPhase> SmoothPhases(const std::vector<DiningPhase>& raw,
                                      int half_window);

/// Fraction of frames where `predicted` matches `truth`.
double PhaseAccuracy(const std::vector<DiningPhase>& predicted,
                     const std::vector<DiningPhase>& truth);

/// Maps unsupervised HMM states to phases by majority ground truth (the
/// standard clustering-accuracy assignment) and returns the decoded
/// phase sequence.
std::vector<DiningPhase> MapStatesToPhases(
    const std::vector<int>& states, const std::vector<DiningPhase>& truth,
    int num_states);

}  // namespace dievent

#endif  // DIEVENT_ANALYSIS_ACTIVITY_H_
