/// \file eye_contact.h
/// Eye-contact detection (paper Section II-D-1, Eq. 1–5).
///
/// Two equivalent entry points are provided:
///  - the world-frame path, for callers who already fused observations
///    into a shared frame;
///  - the reference-camera path, which follows the paper literally:
///    per-participant head positions and gaze vectors are given in *their
///    observing camera's* frame, and everything is chained into camera
///    F1's frame via the rig's iTj transforms (Eq. 2) before the
///    ray-sphere test (Eq. 5). A unit test pins both paths to agree.

#ifndef DIEVENT_ANALYSIS_EYE_CONTACT_H_
#define DIEVENT_ANALYSIS_EYE_CONTACT_H_

#include <optional>
#include <vector>

#include "analysis/lookat_matrix.h"
#include "common/result.h"
#include "geometry/rig.h"
#include "metadata/records.h"
#include "sim/participant.h"

namespace dievent {

/// Per-participant geometric state in the world frame (after fusion).
/// `gaze` may be absent when no camera had a frontal view this frame.
struct ParticipantGeometry {
  Vec3 head_position;
  std::optional<Vec3> gaze_direction;
};

/// Per-participant geometric state expressed in one camera's frame — the
/// paper's raw OpenFace output shape.
struct CameraFrameGeometry {
  int camera_index = -1;   ///< which camera observed this participant
  Vec3 head_position;      ///< in that camera's frame (the paper's jHP)
  std::optional<Vec3> gaze_direction;  ///< in that camera's frame (jV)
};

struct EyeContactOptions {
  /// Head-sphere radius r of Eq. 3, metres.
  double head_radius = 0.12;
  /// Optional angular slack: inflates the sphere so gaze estimation noise
  /// of roughly this many degrees still hits. 0 = exact paper semantics.
  double angular_tolerance_deg = 0.0;
};

/// How the acquisition layer delivered one analyzed (or skipped) frame.
enum class AcquisitionFrameHealth {
  kHealthy,   ///< every camera contributed a fresh decode
  kDegraded,  ///< analyzed, but with held/missing/quarantined slots
  kSkipped,   ///< below camera quorum; no analysis ran at all
};

/// One entry of the pipeline's per-frame acquisition-health timeline.
struct FrameHealthRecord {
  int frame = 0;
  AcquisitionFrameHealth health = AcquisitionFrameHealth::kHealthy;
};

/// Folds an acquisition-health timeline into derived eye-contact episodes:
/// each episode learns how many of its frames were degraded or skipped,
/// and its confidence becomes the fraction of fully healthy frames. An
/// episode spanning a below-quorum stretch is thereby flagged — the gap
/// was bridged by the extractor's max_gap tolerance, not observed.
/// `timeline` must be sorted by frame (the pipeline appends in order);
/// episodes outside the timeline keep confidence 1.
void AnnotateEpisodeAcquisition(std::vector<EyeContactEpisode>* episodes,
                                const std::vector<FrameHealthRecord>& timeline);

class EyeContactDetector {
 public:
  explicit EyeContactDetector(EyeContactOptions options = {})
      : options_(options) {}

  /// World-frame path: fills the n x n look-at matrix with n(n-1)
  /// ray-sphere tests. Participants without gaze look at nobody.
  LookAtMatrix ComputeLookAt(
      const std::vector<ParticipantGeometry>& participants) const;

  /// Reference-camera path (paper Eq. 2): transforms every observation
  /// into camera `reference_camera`'s frame using the rig calibration,
  /// then runs the same test. Fails when an observation names an unknown
  /// camera.
  Result<LookAtMatrix> ComputeLookAtInCameraFrame(
      const Rig& rig, int reference_camera,
      const std::vector<CameraFrameGeometry>& participants) const;

  const EyeContactOptions& options() const { return options_; }

 private:
  double EffectiveRadius(double distance) const;

  EyeContactOptions options_;
};

}  // namespace dievent

#endif  // DIEVENT_ANALYSIS_EYE_CONTACT_H_
