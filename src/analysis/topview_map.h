/// \file topview_map.h
/// Look-at top-view map rendering (paper Fig. 7b / 8b): a bird's-eye view
/// of the table with one disc per participant in their identity color and
/// an arrow for every directed look-at edge; mutual edges (eye contact)
/// are drawn double-stroked.

#ifndef DIEVENT_ANALYSIS_TOPVIEW_MAP_H_
#define DIEVENT_ANALYSIS_TOPVIEW_MAP_H_

#include <vector>

#include "analysis/lookat_matrix.h"
#include "image/image.h"
#include "sim/scene.h"

namespace dievent {

struct TopViewOptions {
  int width = 480;
  int height = 360;
  Rgb background{235, 235, 230};
  Rgb table_color{190, 160, 120};
  double participant_radius_px = 16.0;
};

/// Renders the top-view map for one frame's look-at matrix.
ImageRgb RenderTopViewMap(const DiningScene& scene, const LookAtMatrix& m,
                          const TopViewOptions& options = {});

}  // namespace dievent

#endif  // DIEVENT_ANALYSIS_TOPVIEW_MAP_H_
