#include "analysis/alerts.h"

#include "common/strings.h"

namespace dievent {

std::string_view AlertTypeName(AlertType type) {
  switch (type) {
    case AlertType::kEyeContactStarted:
      return "eye-contact-started";
    case AlertType::kEyeContactEnded:
      return "eye-contact-ended";
    case AlertType::kEmotionChanged:
      return "emotion-changed";
    case AlertType::kGroupMoodDrop:
      return "group-mood-drop";
    case AlertType::kGroupMoodRecovered:
      return "group-mood-recovered";
    case AlertType::kAttentionConverged:
      return "attention-converged";
  }
  return "unknown";
}

std::string Alert::ToString(const std::vector<std::string>& names) const {
  auto name = [&](int i) {
    if (i < 0) return std::string("-");
    return i < static_cast<int>(names.size()) ? names[i]
                                              : StrFormat("P%d", i + 1);
  };
  std::string out = StrFormat("[t=%6.2fs] %s", timestamp_s,
                              std::string(AlertTypeName(type)).c_str());
  switch (type) {
    case AlertType::kEyeContactStarted:
    case AlertType::kEyeContactEnded:
      out += StrFormat(" %s<->%s", name(a).c_str(), name(b).c_str());
      break;
    case AlertType::kEmotionChanged:
      out += StrFormat(" %s: %s -> %s", name(a).c_str(),
                       std::string(EmotionName(from)).c_str(),
                       std::string(EmotionName(to)).c_str());
      break;
    case AlertType::kGroupMoodDrop:
    case AlertType::kGroupMoodRecovered:
      out += StrFormat(" valence=%.2f", value);
      break;
    case AlertType::kAttentionConverged:
      out += StrFormat(" on %s", name(a).c_str());
      break;
  }
  return out;
}

AlertMonitor::AlertMonitor(int num_participants, AlertOptions options)
    : n_(num_participants),
      options_(options),
      pairs_(static_cast<size_t>(num_participants) * num_participants),
      last_emotion_(num_participants),
      emotion_streak_(num_participants, 0),
      candidate_emotion_(num_participants) {}

std::vector<Alert> AlertMonitor::Update(
    int frame, double timestamp_s, const LookAtMatrix& lookat,
    const std::vector<std::optional<Emotion>>& emotions,
    const OverallEmotion* overall) {
  std::vector<Alert> fired;
  auto fire = [&](Alert alert) {
    alert.frame = frame;
    alert.timestamp_s = timestamp_s;
    fired.push_back(alert);
  };

  // --- eye contact onsets/offsets (debounced per pair) ------------------
  const int m = std::min(n_, lookat.size());
  for (int a = 0; a < m; ++a) {
    for (int b = a + 1; b < m; ++b) {
      PairState& ps = pairs_[PairIndex(a, b)];
      bool ec = lookat.At(a, b) && lookat.At(b, a);
      if (ec != ps.active) {
        ps.streak += 1;
        if (ps.streak >= options_.debounce_frames) {
          ps.active = ec;
          ps.streak = 0;
          Alert alert;
          alert.type = ec ? AlertType::kEyeContactStarted
                          : AlertType::kEyeContactEnded;
          alert.a = a;
          alert.b = b;
          fire(alert);
        }
      } else {
        ps.streak = 0;
      }
    }
  }

  // --- per-participant emotion changes (debounced) ----------------------
  for (int p = 0; p < n_ && p < static_cast<int>(emotions.size()); ++p) {
    if (!emotions[p]) continue;  // unobserved frames don't advance state
    if (!last_emotion_[p]) {
      last_emotion_[p] = emotions[p];  // first observation: baseline
      continue;
    }
    if (*emotions[p] != *last_emotion_[p]) {
      if (candidate_emotion_[p] == emotions[p]) {
        emotion_streak_[p] += 1;
      } else {
        candidate_emotion_[p] = emotions[p];
        emotion_streak_[p] = 1;
      }
      if (emotion_streak_[p] >= options_.debounce_frames) {
        Alert alert;
        alert.type = AlertType::kEmotionChanged;
        alert.a = p;
        alert.from = *last_emotion_[p];
        alert.to = *emotions[p];
        fire(alert);
        last_emotion_[p] = emotions[p];
        emotion_streak_[p] = 0;
        candidate_emotion_[p].reset();
      }
    } else {
      emotion_streak_[p] = 0;
      candidate_emotion_[p].reset();
    }
  }

  // --- group mood thresholds (already smoothed upstream) ----------------
  if (overall != nullptr) {
    if (!mood_low_ &&
        overall->mean_valence < options_.mood_drop_threshold) {
      mood_low_ = true;
      Alert alert;
      alert.type = AlertType::kGroupMoodDrop;
      alert.value = overall->mean_valence;
      fire(alert);
    } else if (mood_low_ &&
               overall->mean_valence > options_.mood_recover_threshold) {
      mood_low_ = false;
      Alert alert;
      alert.type = AlertType::kGroupMoodRecovered;
      alert.value = overall->mean_valence;
      fire(alert);
    }
  }

  // --- attention convergence ---------------------------------------------
  if (options_.attention_alerts && m > 2) {
    int target = -1;
    for (int y = 0; y < m && target == -1; ++y) {
      bool all = true;
      for (int x = 0; x < m; ++x) {
        if (x != y && !lookat.At(x, y)) {
          all = false;
          break;
        }
      }
      if (all) target = y;
    }
    if (target >= 0 && target == attention_target_) {
      attention_streak_ += 1;
      if (!attention_active_ &&
          attention_streak_ >= options_.debounce_frames) {
        attention_active_ = true;
        Alert alert;
        alert.type = AlertType::kAttentionConverged;
        alert.a = target;
        fire(alert);
      }
    } else {
      attention_target_ = target;
      attention_streak_ = target >= 0 ? 1 : 0;
      if (target < 0) attention_active_ = false;
    }
  }

  history_.insert(history_.end(), fired.begin(), fired.end());
  return fired;
}

void AlertMonitor::Reset() {
  pairs_.assign(pairs_.size(), PairState{});
  last_emotion_.assign(n_, std::nullopt);
  emotion_streak_.assign(n_, 0);
  candidate_emotion_.assign(n_, std::nullopt);
  mood_low_ = false;
  attention_target_ = -1;
  attention_streak_ = 0;
  attention_active_ = false;
  history_.clear();
}

}  // namespace dievent
