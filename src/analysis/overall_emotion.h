/// \file overall_emotion.h
/// Overall-emotion estimation (paper Section II-D-2, Fig. 5): fuses the
/// per-participant emotion stream into a group-level satisfaction signal —
/// the "OH" (overall happiness) percentage of Fig. 5 plus a valence-based
/// satisfaction score, optionally smoothed over time.

#ifndef DIEVENT_ANALYSIS_OVERALL_EMOTION_H_
#define DIEVENT_ANALYSIS_OVERALL_EMOTION_H_

#include <array>
#include <optional>
#include <vector>

#include "common/emotion.h"

namespace dievent {

/// One participant's recognized emotion in one frame; `emotion` is empty
/// when no camera produced a usable face crop.
struct EmotionObservation {
  int participant = -1;
  std::optional<Emotion> emotion;
  double confidence = 0.0;
};

/// Group-level emotion for one frame.
struct OverallEmotion {
  int frame = 0;
  double timestamp_s = 0.0;
  /// Fraction of *observed* participants that are happy — Fig. 5's OH.
  double overall_happiness = 0.0;
  /// Confidence-weighted mean valence in [-1, 1]: the satisfaction proxy.
  double mean_valence = 0.0;
  int observed = 0;  ///< participants with an emotion this frame
  std::array<int, kNumEmotions> counts{};  ///< per-emotion headcount
};

struct OverallEmotionOptions {
  /// Exponential smoothing factor in (0, 1]; 1 = no smoothing.
  double smoothing_alpha = 0.3;
};

/// Streaming estimator: feed one frame's observations at a time.
class OverallEmotionEstimator {
 public:
  explicit OverallEmotionEstimator(OverallEmotionOptions options = {})
      : options_(options) {}

  /// Ingests one frame and returns its (smoothed) overall emotion.
  OverallEmotion Update(int frame, double timestamp_s,
                        const std::vector<EmotionObservation>& observations);

  /// Everything seen so far, in frame order.
  const std::vector<OverallEmotion>& timeline() const { return timeline_; }

  /// Mean overall happiness across the timeline (the event-level score a
  /// smart restaurant would report per table).
  double MeanHappiness() const;
  double MeanValence() const;

  void Reset();

  /// Restores streaming state for a resumed run. The entries become the
  /// timeline and the EWMA is seeded from the last one — whose
  /// `overall_happiness` / `mean_valence` are already the smoothed
  /// values — so subsequent Update calls produce exactly what an
  /// uninterrupted run would have. Per-emotion `counts` of restored
  /// entries are whatever the caller recovered (typically zero; they are
  /// not persisted). An empty vector is equivalent to Reset().
  void Restore(std::vector<OverallEmotion> timeline);

 private:
  OverallEmotionOptions options_;
  std::vector<OverallEmotion> timeline_;
  double smoothed_happiness_ = 0.0;
  double smoothed_valence_ = 0.0;
  bool has_state_ = false;
};

}  // namespace dievent

#endif  // DIEVENT_ANALYSIS_OVERALL_EMOTION_H_
