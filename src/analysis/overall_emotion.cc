#include "analysis/overall_emotion.h"

namespace dievent {

OverallEmotion OverallEmotionEstimator::Update(
    int frame, double timestamp_s,
    const std::vector<EmotionObservation>& observations) {
  OverallEmotion out;
  out.frame = frame;
  out.timestamp_s = timestamp_s;

  int happy = 0;
  double valence_sum = 0.0, conf_sum = 0.0;
  for (const EmotionObservation& obs : observations) {
    if (!obs.emotion) continue;
    out.observed += 1;
    out.counts[static_cast<int>(*obs.emotion)] += 1;
    if (*obs.emotion == Emotion::kHappy) ++happy;
    double c = obs.confidence > 0.0 ? obs.confidence : 1.0;
    valence_sum += EmotionValence(*obs.emotion) * c;
    conf_sum += c;
  }
  double raw_happiness =
      out.observed > 0 ? static_cast<double>(happy) / out.observed : 0.0;
  double raw_valence = conf_sum > 0.0 ? valence_sum / conf_sum : 0.0;

  const double a = options_.smoothing_alpha;
  if (!has_state_ || a >= 1.0) {
    smoothed_happiness_ = raw_happiness;
    smoothed_valence_ = raw_valence;
    has_state_ = true;
  } else {
    smoothed_happiness_ = a * raw_happiness + (1.0 - a) * smoothed_happiness_;
    smoothed_valence_ = a * raw_valence + (1.0 - a) * smoothed_valence_;
  }
  out.overall_happiness = smoothed_happiness_;
  out.mean_valence = smoothed_valence_;
  timeline_.push_back(out);
  return out;
}

double OverallEmotionEstimator::MeanHappiness() const {
  if (timeline_.empty()) return 0.0;
  double s = 0.0;
  for (const OverallEmotion& e : timeline_) s += e.overall_happiness;
  return s / static_cast<double>(timeline_.size());
}

double OverallEmotionEstimator::MeanValence() const {
  if (timeline_.empty()) return 0.0;
  double s = 0.0;
  for (const OverallEmotion& e : timeline_) s += e.mean_valence;
  return s / static_cast<double>(timeline_.size());
}

void OverallEmotionEstimator::Reset() {
  timeline_.clear();
  smoothed_happiness_ = 0.0;
  smoothed_valence_ = 0.0;
  has_state_ = false;
}

void OverallEmotionEstimator::Restore(std::vector<OverallEmotion> timeline) {
  timeline_ = std::move(timeline);
  if (timeline_.empty()) {
    smoothed_happiness_ = 0.0;
    smoothed_valence_ = 0.0;
    has_state_ = false;
    return;
  }
  smoothed_happiness_ = timeline_.back().overall_happiness;
  smoothed_valence_ = timeline_.back().mean_valence;
  has_state_ = true;
}

}  // namespace dievent
