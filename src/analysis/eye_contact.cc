#include "analysis/eye_contact.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "geometry/ray.h"

namespace dievent {

double EyeContactDetector::EffectiveRadius(double distance) const {
  if (options_.angular_tolerance_deg <= 0.0) return options_.head_radius;
  // A gaze error of theta degrees displaces the ray by distance*tan(theta)
  // at the target; inflating the sphere by that amount keeps such rays
  // counted as hits.
  return options_.head_radius +
         distance * std::tan(DegToRad(options_.angular_tolerance_deg));
}

LookAtMatrix EyeContactDetector::ComputeLookAt(
    const std::vector<ParticipantGeometry>& participants) const {
  const int n = static_cast<int>(participants.size());
  LookAtMatrix m(n);
  // The paper repeats the ray-sphere procedure n(n-1) times (Sec. II-D-1).
  for (int k = 0; k < n; ++k) {
    const ParticipantGeometry& pk = participants[k];
    if (!pk.gaze_direction) continue;
    Ray gaze{pk.head_position, *pk.gaze_direction};
    for (int l = 0; l < n; ++l) {
      if (k == l) continue;
      const ParticipantGeometry& pl = participants[l];
      double dist = (pl.head_position - pk.head_position).Norm();
      Sphere head{pl.head_position, EffectiveRadius(dist)};
      m.Set(k, l, LooksAt(gaze, head));
    }
  }
  return m;
}

Result<LookAtMatrix> EyeContactDetector::ComputeLookAtInCameraFrame(
    const Rig& rig, int reference_camera,
    const std::vector<CameraFrameGeometry>& participants) const {
  if (reference_camera < 0 || reference_camera >= rig.NumCameras()) {
    return Status::InvalidArgument(
        StrFormat("reference camera %d out of range", reference_camera));
  }
  std::vector<ParticipantGeometry> in_ref(participants.size());
  for (size_t i = 0; i < participants.size(); ++i) {
    const CameraFrameGeometry& obs = participants[i];
    if (obs.camera_index < 0 || obs.camera_index >= rig.NumCameras()) {
      return Status::InvalidArgument(StrFormat(
          "participant %zu observed by unknown camera %d", i,
          obs.camera_index));
    }
    // Paper Eq. 2: 1V = 1T2 * 2V — chain the observing camera's frame
    // into the reference camera's frame.
    Pose ref_T_obs = rig.CameraFromCamera(reference_camera,
                                          obs.camera_index);
    in_ref[i].head_position = ref_T_obs.TransformPoint(obs.head_position);
    if (obs.gaze_direction) {
      in_ref[i].gaze_direction =
          ref_T_obs.TransformDirection(*obs.gaze_direction);
    }
  }
  return ComputeLookAt(in_ref);
}

void AnnotateEpisodeAcquisition(
    std::vector<EyeContactEpisode>* episodes,
    const std::vector<FrameHealthRecord>& timeline) {
  if (episodes == nullptr || timeline.empty()) return;
  for (EyeContactEpisode& episode : *episodes) {
    auto lo = std::lower_bound(
        timeline.begin(), timeline.end(), episode.begin_frame,
        [](const FrameHealthRecord& r, int frame) { return r.frame < frame; });
    auto hi = std::lower_bound(
        lo, timeline.end(), episode.end_frame,
        [](const FrameHealthRecord& r, int frame) { return r.frame < frame; });
    episode.degraded_frames = 0;
    episode.skipped_frames = 0;
    int total = 0;
    for (auto it = lo; it != hi; ++it) {
      ++total;
      if (it->health == AcquisitionFrameHealth::kDegraded) {
        ++episode.degraded_frames;
      } else if (it->health == AcquisitionFrameHealth::kSkipped) {
        ++episode.skipped_frames;
      }
    }
    episode.confidence =
        total > 0 ? static_cast<double>(total - episode.degraded_frames -
                                        episode.skipped_frames) /
                        total
                  : 1.0;
  }
}

}  // namespace dievent
